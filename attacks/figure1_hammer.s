# The paper's Figure 1: the basic heat-stroke kernel.
# A long run of independent integer adds keeps the register file's
# read/write ports saturated; prolonged execution forms a hot spot.
# Run with:  tools/hs_run --asm attacks/figure1_hammer.s --spec gcc
L$1:
    addl $10, $24, $25
    addl $11, $24, $25
    addl $12, $24, $25
    addl $13, $24, $25
    addl $14, $24, $25
    addl $15, $24, $25
    addl $16, $24, $25
    addl $17, $24, $25
    addl $10, $24, $25
    addl $11, $24, $25
    addl $12, $24, $25
    addl $13, $24, $25
    addl $14, $24, $25
    addl $15, $24, $25
    addl $16, $24, $25
    addl $17, $24, $25
    br L$1
