# The paper's Figure 2: the moderately malicious two-phase kernel.
# Phase 1 hammers the integer register file; phase 2 issues nine loads
# that map to one set of the 8-way L2 (stride = numSets * lineBytes =
# 256 KB), guaranteeing misses and keeping the average IPC low so the
# attack cannot be blamed on ICOUNT fetch monopolisation.
# Run with:  tools/hs_run --asm attacks/figure2_two_phase.s --spec gcc
outer:
    addi r9, r0, 120000      # hammer iterations (scaled for HS_SCALE=50)
hammer:
    addl $10, $24, $25
    addl $11, $24, $25
    addl $12, $24, $25
    addl $13, $24, $25
    addl $14, $24, $25
    addl $15, $24, $25
    addl $16, $24, $25
    addl $17, $24, $25
    addi r9, r9, -1
    bne r9, r0, hammer
    addi r9, r0, 160         # conflict-miss iterations
miss:
    ldq $10, 0($20)
    ldq $11, 262144($20)
    ldq $12, 524288($20)
    ldq $13, 786432($20)
    ldq $14, 1048576($20)
    ldq $15, 1310720($20)
    ldq $16, 1572864($20)
    ldq $17, 1835008($20)
    ldq $10, 2097152($20)
    addi r9, r9, -1
    bne r9, r0, miss
    br outer
