# A "variant 3"-style evasive kernel: short hammer bursts separated by
# long quiet phases of pointer-chasing. Heats slowly and keeps its flat
# average access rate inside the SPEC range; selective sedation still
# catches the burst through the weighted average when the temperature
# trigger fires.
# Run with:  tools/hs_run --asm attacks/stealthy_burst.s --spec gcc --dtm sedation
outer:
    addi r9, r0, 50000
hammer:
    addl $10, $24, $25
    addl $11, $24, $25
    addl $12, $24, $25
    addl $13, $24, $25
    addi r9, r9, -1
    bne r9, r0, hammer
    addi r9, r0, 400
quiet:
    ldq $10, 0($20)
    ldq $11, 262144($20)
    ldq $12, 524288($20)
    ldq $13, 786432($20)
    ldq $14, 1048576($20)
    ldq $15, 1310720($20)
    ldq $16, 1572864($20)
    ldq $17, 1835008($20)
    ldq $10, 2097152($20)
    addi r9, r9, -1
    bne r9, r0, quiet
    br outer
