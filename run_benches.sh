#!/bin/sh
# Regenerate every paper table/figure; outputs land in results/.
#
# Usage: run_benches.sh [--jobs N]
#   --jobs N   worker threads for the experiment engine (exported as
#              HS_JOBS; default: engine picks all hardware threads)
cd "$(dirname "$0")"

while [ $# -gt 0 ]; do
    case "$1" in
        --jobs)
            [ $# -ge 2 ] || { echo "--jobs needs a value" >&2; exit 2; }
            case "$2" in
                ''|*[!0-9]*|0)
                    echo "--jobs must be a positive integer" >&2
                    exit 2
                    ;;
            esac
            HS_JOBS="$2"
            export HS_JOBS
            shift 2
            ;;
        *)
            echo "usage: $0 [--jobs N]" >&2
            exit 2
            ;;
    esac
done

mkdir -p results
for b in bench_calibration bench_fig3_access_rates bench_fig4_emergencies \
         bench_fig5_ipc bench_fig6_time_breakdown bench_sens_thresholds \
         bench_sens_heatsink bench_spec_pairs bench_dtm_policies \
         bench_workloads bench_smt_contexts bench_tech_scaling \
         bench_multicore; do
    echo "=== $b ==="
    ./build/bench/$b 2>&1 | tee results/$b.txt | tail -2
done
# Machine-readable throughput snapshot from the transcripts above
# (best effort: the sweep results matter even if the snapshot fails).
sh scripts/bench_snapshot.sh || echo "bench snapshot failed" >&2
echo ALL_BENCHES_DONE
