#!/bin/sh
# Regenerate every paper table/figure; outputs land in results/.
cd "$(dirname "$0")"
mkdir -p results
for b in bench_calibration bench_fig3_access_rates bench_fig4_emergencies \
         bench_fig5_ipc bench_fig6_time_breakdown bench_sens_thresholds \
         bench_sens_heatsink bench_spec_pairs bench_dtm_policies \
         bench_workloads bench_smt_contexts bench_tech_scaling; do
    echo "=== $b ==="
    ./build/bench/$b 2>&1 | tee results/$b.txt | tail -2
done
echo ALL_BENCHES_DONE
