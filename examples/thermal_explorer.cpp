/**
 * @file
 * Thermal explorer: runs a workload pairing with temperature tracing
 * enabled and writes a CSV of the integer-register-file / hottest /
 * sink temperatures over the quantum — the raw material of the paper's
 * heat/cool duty-cycle discussion (Section 3.1).
 *
 * Usage: thermal_explorer [spec] [variant 0..3] [csv-path] [scale]
 * (variant 0 = run the SPEC program alone)
 */

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "sim/episodes.hh"
#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    std::string spec = argc > 1 ? argv[1] : "gcc";
    int variant = argc > 2 ? std::atoi(argv[2]) : 2;
    std::string path = argc > 3 ? argv[3] : "thermal_trace.csv";
    double scale = argc > 4 ? std::atof(argv[4])
                            : hs::envTimeScale(50.0);

    hs::ExperimentOptions opts;
    opts.timeScale = scale;
    opts.dtm = hs::DtmMode::StopAndGo;
    opts.recordTempTrace = true;

    hs::RunResult res =
        variant == 0 ? hs::runSolo(spec, opts)
                     : hs::runWithVariant(spec, variant, opts);

    std::ofstream csv(path);
    if (!csv) {
        std::cerr << "cannot open " << path << " for writing\n";
        return 1;
    }
    csv << "cycle,intreg_K,hottest_K,sink_K\n";
    for (const hs::TempSample &s : res.tempTrace) {
        csv << s.cycle << "," << s.intRegTemp << "," << s.hottestTemp
            << "," << s.sinkTemp << "\n";
    }

    std::cout << "wrote " << res.tempTrace.size() << " samples to "
              << path << "\n";
    std::cout << "peak " << hs::blockName(res.hottestBlock) << " = "
              << res.peakTempOverall << " K, " << res.emergencies
              << " emergencies, " << res.stopAndGoTriggers
              << " stop-and-go stalls\n";

    // Episode structure of the run (paper Section 3.1).
    std::vector<hs::Episode> episodes =
        hs::extractEpisodes(res.tempTrace, 358.0, 351.0);
    hs::EpisodeStats stats = hs::summarizeEpisodes(episodes);
    if (stats.count) {
        std::cout << stats.count << " heat/cool episodes: mean heat-up "
                  << hs::TablePrinter::num(stats.meanHeatCycles / 1e3, 0)
                  << " Kcycles, mean cool-down "
                  << hs::TablePrinter::num(stats.meanCoolCycles / 1e3, 0)
                  << " Kcycles, mean duty cycle "
                  << hs::TablePrinter::num(stats.meanDutyCycle, 3)
                  << " (paper Section 3.1: ~0.088 under back-to-back "
                     "heat strokes)\n";
    } else {
        std::cout << "no completed heat/cool episodes in this trace\n";
    }
    return 0;
}
