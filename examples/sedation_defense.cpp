/**
 * @file
 * Demonstrates selective sedation (Section 3.2) defeating heat stroke:
 * the same victim/attacker pairing as heat_stroke_attack, but the
 * sedation policy identifies the culprit thread from its weighted-
 * average register-file access rate, stops fetching from it while the
 * hot spot cools, and reports the offender to the OS.
 *
 * Usage: sedation_defense [spec] [variant] [scale]
 */

#include <cstdlib>
#include <iostream>

#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    std::string spec = argc > 1 ? argv[1] : "gcc";
    int variant = argc > 2 ? std::atoi(argv[2]) : 2;
    double scale = argc > 3 ? std::atof(argv[3])
                            : hs::envTimeScale(50.0);

    hs::ExperimentOptions opts;
    opts.timeScale = scale;

    opts.dtm = hs::DtmMode::StopAndGo;
    hs::RunResult solo = hs::runSolo(spec, opts);
    hs::RunResult attacked = hs::runWithVariant(spec, variant, opts);

    // Sedated run, with a live OS report: construct the simulator
    // directly so we can hook the callback.
    opts.dtm = hs::DtmMode::SelectiveSedation;
    hs::Simulator sim(hs::makeSimConfig(opts));
    sim.setWorkload(0, hs::synthesizeSpec(spec));
    sim.setWorkload(1,
                    hs::makeVariant(variant,
                                    hs::makeMaliciousParams(opts)));
    int reports = 0;
    sim.setOsReport(
        [&](const hs::SedationEvent &e) {
            if (reports++ < 5) {
                std::cout << "[OS report] cycle " << e.cycle
                          << ": thread " << e.thread << " sedated for "
                          << hs::blockName(e.resource)
                          << " (weighted avg "
                          << hs::TablePrinter::num(e.weightedAvg, 1)
                          << " accesses/window)\n";
            }
        });
    hs::RunResult defended = sim.run();
    if (reports > 5)
        std::cout << "[OS report] ... " << (reports - 5) << " more\n";
    std::cout << "\n";

    hs::TablePrinter table(std::cout);
    table.header({"configuration", spec + " IPC", "emergencies",
                  "victim stalled %"});
    table.row({"solo (realistic sink)",
               hs::TablePrinter::num(solo.threads[0].ipc),
               std::to_string(solo.emergencies),
               hs::TablePrinter::num(solo.coolingFraction(0) * 100, 1)});
    table.row({"+variant" + std::to_string(variant) + ", stop-and-go",
               hs::TablePrinter::num(attacked.threads[0].ipc),
               std::to_string(attacked.emergencies),
               hs::TablePrinter::num(attacked.coolingFraction(0) * 100,
                                     1)});
    table.row({"+variant" + std::to_string(variant) +
                   ", selective sedation",
               hs::TablePrinter::num(defended.threads[0].ipc),
               std::to_string(defended.emergencies),
               hs::TablePrinter::num(
                   (defended.coolingFraction(0) +
                    defended.sedationFraction(0)) * 100, 1)});

    std::cout << "\nattacker (thread 1) spent "
              << hs::TablePrinter::num(defended.sedationFraction(1) *
                                           100, 1)
              << "% of the quantum sedated; " << defended.sedationEvents
                     .size()
              << " sedation action(s) were reported to the OS\n";
    return 0;
}
