/**
 * @file
 * Demonstrates the heat-stroke attack (Section 3.1): a SPEC victim
 * shares the SMT with malicious variant 2 under conventional
 * stop-and-go DTM, and its performance collapses. The same pairing on
 * an ideal heat sink shows the attack is thermal, not a fetch-policy
 * artefact.
 *
 * Usage: heat_stroke_attack [spec] [variant] [scale]
 */

#include <cstdlib>
#include <iostream>

#include "sim/experiment.hh"

int
main(int argc, char **argv)
{
    std::string spec = argc > 1 ? argv[1] : "gcc";
    int variant = argc > 2 ? std::atoi(argv[2]) : 2;
    double scale = argc > 3 ? std::atof(argv[3])
                            : hs::envTimeScale(50.0);

    hs::ExperimentOptions opts;
    opts.timeScale = scale;

    std::cout << "The malicious kernel (paper Figure "
              << (variant == 1 ? 1 : 2) << " style):\n"
              << "----------------------------------------\n";
    hs::MaliciousParams mp = hs::makeMaliciousParams(opts);
    mp.unroll = 4; // shorten the listing for display
    std::cout << (variant == 1 ? hs::variant1Asm(mp)
                               : hs::variant2Asm(mp))
              << "----------------------------------------\n\n";

    opts.sink = hs::SinkType::Realistic;
    opts.dtm = hs::DtmMode::StopAndGo;
    hs::RunResult solo = hs::runSolo(spec, opts);

    hs::RunResult attacked = hs::runWithVariant(spec, variant, opts);

    opts.sink = hs::SinkType::Ideal;
    hs::RunResult ideal = hs::runWithVariant(spec, variant, opts);

    double solo_ipc = solo.threads[0].ipc;
    double atk_ipc = attacked.threads[0].ipc;
    double ideal_ipc = ideal.threads[0].ipc;

    hs::TablePrinter table(std::cout);
    table.header({"configuration", spec + " IPC", "emergencies",
                  "cooling-stall %"});
    table.row({"solo, realistic sink", hs::TablePrinter::num(solo_ipc),
               std::to_string(solo.emergencies),
               hs::TablePrinter::num(solo.coolingFraction(0) * 100, 1)});
    table.row({"+variant" + std::to_string(variant) + ", ideal sink",
               hs::TablePrinter::num(ideal_ipc),
               std::to_string(ideal.emergencies),
               hs::TablePrinter::num(ideal.coolingFraction(0) * 100, 1)});
    table.row({"+variant" + std::to_string(variant) +
                   ", realistic sink (stop-and-go)",
               hs::TablePrinter::num(atk_ipc),
               std::to_string(attacked.emergencies),
               hs::TablePrinter::num(attacked.coolingFraction(0) * 100,
                                     1)});

    if (solo_ipc > 0) {
        std::cout << "\nheat-stroke degradation: "
                  << hs::TablePrinter::num(
                         (1.0 - atk_ipc / solo_ipc) * 100.0, 1)
                  << "% IPC loss vs solo (ideal-sink run shows "
                  << hs::TablePrinter::num(
                         (1.0 - ideal_ipc / solo_ipc) * 100.0, 1)
                  << "%, so the damage is thermal)\n";
    }
    return 0;
}
