/**
 * @file
 * Quickstart: declare a small experiment matrix — two SPEC-like
 * workloads sharing the 2-way SMT, with and without an attacker — and
 * run it through the parallel experiment engine.
 *
 * Usage: quickstart [specA] [specB] [scale]
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "sim/runner.hh"

int
main(int argc, char **argv)
{
    std::string a = argc > 1 ? argv[1] : "gcc";
    std::string b = argc > 2 ? argv[2] : "mesa";
    double scale = argc > 3 ? std::atof(argv[3])
                            : hs::envTimeScale(50.0);

    hs::ExperimentOptions opts;
    opts.timeScale = scale;
    opts.dtm = hs::DtmMode::StopAndGo;

    std::cout << "heatstroke quickstart: " << a << " + " << b
              << " on a 2-way SMT (time scale 1/" << scale << ")\n";

    // Declare the matrix: the pair alone, then the victim co-scheduled
    // with malicious variant 2. The engine (HS_JOBS workers) returns
    // results in submission order, bit-identical to a serial loop.
    std::vector<hs::RunSpec> specs = {
        hs::specPairSpec(a, b, opts),
        hs::withVariantSpec(a, 2, opts),
    };
    std::vector<hs::RunResult> results = hs::runMatrix(specs);

    for (size_t i = 0; i < specs.size(); ++i) {
        const hs::RunResult &res = results[i];
        std::cout << "\n--- " << specs[i].label << " ---\n";
        std::cout << "cycles simulated : " << res.cycles << "\n";
        std::cout << "avg chip power   : " << res.avgTotalPowerW
                  << " W\n";
        std::cout << "peak temperature : " << res.peakTempOverall
                  << " K (" << hs::blockName(res.hottestBlock) << ")\n";
        std::cout << "emergencies      : " << res.emergencies << "\n\n";

        hs::TablePrinter table(std::cout);
        table.header({"thread", "program", "IPC", "IntReg acc/cyc",
                      "normal%", "cooling%"});
        for (size_t t = 0; t < res.threads.size(); ++t) {
            const hs::ThreadResult &tr = res.threads[t];
            table.row(
                {std::to_string(t), tr.program,
                 hs::TablePrinter::num(tr.ipc),
                 hs::TablePrinter::num(tr.intRegAccessRate),
                 hs::TablePrinter::num(res.normalFraction(t) * 100, 1),
                 hs::TablePrinter::num(res.coolingFraction(t) * 100,
                                       1)});
        }
    }
    return 0;
}
