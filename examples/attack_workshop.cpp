/**
 * @file
 * Attack workshop: assemble your own kernel (the paper's Figure 1/2
 * syntax) and test it against a SPEC victim under selective sedation.
 *
 * Usage: attack_workshop [asm-file] [victim] [scale]
 * With no asm-file, a built-in Figure 1 listing is used.
 *
 * Reports the victim's degradation under stop-and-go, whether the
 * sedation monitor identified your kernel as the culprit, and how much
 * of the quantum it spent sedated.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "isa/assembler.hh"
#include "sim/experiment.hh"

namespace {

const char *defaultAttack = R"(# Figure 1: the basic register-file hammer
L$1:
    addl $10, $24, $25
    addl $11, $24, $25
    addl $12, $24, $25
    addl $13, $24, $25
    addl $14, $24, $25
    addl $15, $24, $25
    addl $16, $24, $25
    addl $17, $24, $25
    br L$1
)";

} // namespace

int
main(int argc, char **argv)
{
    std::string source = defaultAttack;
    if (argc > 1) {
        std::ifstream in(argv[1]);
        if (!in) {
            std::cerr << "cannot open " << argv[1] << "\n";
            return 1;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        source = buf.str();
    }
    std::string victim = argc > 2 ? argv[2] : "gcc";
    double scale = argc > 3 ? std::atof(argv[3])
                            : hs::envTimeScale(50.0);

    hs::Program attack;
    try {
        attack = hs::assemble(source, "custom-attack");
    } catch (const hs::AsmError &e) {
        std::cerr << "assembly failed: " << e.what() << "\n";
        return 1;
    }
    attack.setInitReg(24, 7);
    attack.setInitReg(25, 13);
    std::cout << "assembled " << attack.size()
              << " instructions:\n----\n" << source << "----\n\n";

    hs::ExperimentOptions opts;
    opts.timeScale = scale;
    opts.dtm = hs::DtmMode::StopAndGo;

    hs::RunResult solo = hs::runSolo(victim, opts);

    auto run_pair = [&](hs::DtmMode dtm) {
        opts.dtm = dtm;
        hs::Simulator sim(hs::makeSimConfig(opts));
        sim.setWorkload(0, hs::synthesizeSpec(victim));
        sim.setWorkload(1, attack);
        return sim.run();
    };
    hs::RunResult attacked = run_pair(hs::DtmMode::StopAndGo);
    hs::RunResult defended = run_pair(hs::DtmMode::SelectiveSedation);

    double solo_ipc = solo.threads[0].ipc;
    std::cout << victim << " solo IPC              : "
              << hs::TablePrinter::num(solo_ipc) << "\n";
    std::cout << "under attack (stop-and-go) : "
              << hs::TablePrinter::num(attacked.threads[0].ipc) << " ("
              << hs::TablePrinter::num(
                     (1 - attacked.threads[0].ipc / solo_ipc) * 100, 1)
              << "% loss, " << attacked.emergencies
              << " emergencies)\n";
    std::cout << "under selective sedation   : "
              << hs::TablePrinter::num(defended.threads[0].ipc) << " ("
              << defended.emergencies << " emergencies)\n\n";

    bool caught = false;
    for (const hs::SedationEvent &e : defended.sedationEvents)
        caught = caught || e.thread == 1;
    if (caught) {
        std::cout << "verdict: your kernel was identified and sedated ("
                  << hs::TablePrinter::num(
                         defended.sedationFraction(1) * 100, 1)
                  << "% of the quantum).\n";
    } else if (attacked.emergencies == 0) {
        std::cout << "verdict: your kernel never formed a hot spot — "
                     "no heat stroke, nothing to sedate.\n";
    } else {
        std::cout << "verdict: your kernel heated the chip but evaded "
                     "sedation — the safety net handled it ("
                  << defended.stopAndGoTriggers
                  << " global stalls).\n";
    }
    return 0;
}
