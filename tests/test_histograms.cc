/**
 * @file
 * Run-health histogram tests: bucket geometry, percentile bracketing,
 * exact merge algebra (associativity / commutativity down to the bit),
 * registry folding, snapshot round-trips of the simulator's
 * instrumentation, and byte-identical merged metrics across engine
 * worker counts.
 *
 * Simulation-backed tests run at HS scale 2000 (250 K-cycle quanta) so
 * the whole file stays fast.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/progress.hh"
#include "sim/result_store.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"
#include "trace/metrics.hh"

namespace {

using namespace hs;

/** Deterministic 64-bit mixer (no global RNG in tests). */
uint64_t
mix(uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

ExperimentOptions
fastOpts()
{
    ExperimentOptions opts;
    opts.timeScale = 2000.0;
    return opts;
}

// --- bucket geometry ---------------------------------------------------

TEST(Histogram, BucketGeometry)
{
    // Non-positive values share bucket 0.
    EXPECT_EQ(Histogram::bucketFor(0.0), 0);
    EXPECT_EQ(Histogram::bucketFor(-3.5), 0);

    // Powers of two land on bucket boundaries: [2^(e-1), 2^e).
    for (double v : {1.0, 2.0, 1024.0, 0.25, 1e-6, 3.75e8}) {
        int b = Histogram::bucketFor(v);
        EXPECT_GE(b, 1);
        EXPECT_LT(b, Histogram::kBuckets);
        EXPECT_GE(v, Histogram::bucketLo(b)) << "v=" << v;
        EXPECT_LT(v, Histogram::bucketHi(b)) << "v=" << v;
    }

    // Extremes clamp to the edge buckets instead of overflowing.
    EXPECT_EQ(Histogram::bucketFor(1e300), Histogram::kBuckets - 1);
    EXPECT_EQ(Histogram::bucketFor(1e-300), 1);
    EXPECT_TRUE(std::isinf(Histogram::bucketHi(Histogram::kBuckets - 1)));
}

TEST(Histogram, BasicMoments)
{
    Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.percentile(0.5), 0.0);

    for (double v : {4.0, 1.0, 16.0, 1.0})
        h.observe(v);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_DOUBLE_EQ(h.sum(), 22.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 16.0);
    EXPECT_DOUBLE_EQ(h.mean(), 5.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 16.0);
}

/**
 * Percentile bracketing: for any sample set, the estimate for p must
 * lie inside the bucket containing the true order statistic (and
 * always inside [min, max]).
 */
TEST(Histogram, PercentileWithinTrueOrderStatisticBucket)
{
    for (uint64_t seed : {1ull, 7ull, 42ull}) {
        Histogram h;
        std::vector<double> values;
        for (int i = 0; i < 500; ++i) {
            // Log-uniform-ish positive values across many buckets.
            uint64_t r = mix(seed * 1000 + i);
            double v = std::ldexp(1.0 + double(r % 1000) / 1000.0,
                                  int(r % 30) - 10);
            values.push_back(v);
            h.observe(v);
        }
        std::sort(values.begin(), values.end());
        for (double p : {0.1, 0.25, 0.5, 0.9, 0.99}) {
            size_t rank = std::min(
                values.size() - 1,
                size_t(std::ceil(p * double(values.size()))) - 1);
            double truth = values[rank];
            double est = h.percentile(p);
            EXPECT_GE(est, Histogram::bucketLo(
                               Histogram::bucketFor(truth)))
                << "p=" << p << " seed=" << seed;
            EXPECT_LE(est, Histogram::bucketHi(
                               Histogram::bucketFor(truth)))
                << "p=" << p << " seed=" << seed;
            EXPECT_GE(est, h.min());
            EXPECT_LE(est, h.max());
        }
    }
}

// --- merge algebra -----------------------------------------------------

Histogram
fromValues(const std::vector<double> &vs)
{
    Histogram h;
    for (double v : vs)
        h.observe(v);
    return h;
}

/**
 * Merge is associative and commutative to the bit for integer-valued
 * observations below 2^53 — exactly what the simulator's cycle-count
 * and occupancy histograms record. operator== compares count, sum,
 * min, max, and every bucket.
 */
TEST(Histogram, MergeAssociativeAndCommutativeBitExact)
{
    for (uint64_t seed : {3ull, 11ull}) {
        std::vector<double> va, vb, vc;
        for (int i = 0; i < 200; ++i) {
            va.push_back(double(mix(seed + i) % 2000000));
            vb.push_back(double(mix(seed + 1000 + i) % (1u << 20)));
            vc.push_back(double(mix(seed + 2000 + i) % 97));
        }
        Histogram a = fromValues(va), b = fromValues(vb),
                  c = fromValues(vc);

        Histogram ab = a;
        ab.merge(b);
        Histogram ba = b;
        ba.merge(a);
        EXPECT_EQ(ab, ba) << "commutativity, seed=" << seed;

        Histogram ab_c = ab;
        ab_c.merge(c);
        Histogram bc = b;
        bc.merge(c);
        Histogram a_bc = a;
        a_bc.merge(bc);
        EXPECT_EQ(ab_c, a_bc) << "associativity, seed=" << seed;

        // Splitting a stream and merging the parts equals observing
        // the whole stream.
        std::vector<double> all = va;
        all.insert(all.end(), vb.begin(), vb.end());
        EXPECT_EQ(ab, fromValues(all));
    }
}

TEST(Histogram, MergeWithEmptyIsIdentity)
{
    Histogram a = fromValues({1.0, 2.0, 3.0});
    Histogram empty;
    Histogram m = a;
    m.merge(empty);
    EXPECT_EQ(m, a);
    Histogram m2 = empty;
    m2.merge(a);
    EXPECT_EQ(m2, a);
}

// --- registry ----------------------------------------------------------

TEST(MetricsRegistry, HistogramObserveMergeAndJson)
{
    MetricsRegistry reg;
    reg.histogramObserve("t.lat", 4.0, "test latency");
    reg.histogramObserve("t.lat", 16.0);
    Histogram extra = fromValues({1.0});
    reg.histogramMerge("t.lat", extra);

    Histogram h = reg.histogram("t.lat");
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 16.0);

    std::ostringstream os;
    reg.writeJson(os);
    EXPECT_NE(os.str().find("\"t.lat\": {\"count\": 3"),
              std::string::npos)
        << os.str();
}

TEST(MetricsRegistry, MergeFromFoldsAllKinds)
{
    MetricsRegistry a, b;
    a.counterAdd("c", 2);
    a.gaugeMax("g", 5.0);
    a.histogramObserve("h", 8.0);
    b.counterAdd("c", 3);
    b.gaugeMax("g", 7.0);
    b.histogramObserve("h", 2.0);

    a.mergeFrom(b);
    EXPECT_EQ(a.counter("c"), 5u);
    EXPECT_DOUBLE_EQ(a.gauge("g"), 7.0);
    EXPECT_EQ(a.histogram("h").count(), 2u);
    EXPECT_DOUBLE_EQ(a.histogram("h").min(), 2.0);
}

// --- simulator instrumentation -----------------------------------------

TEST(RunHealth, SimulatorExportsNamedHistograms)
{
    RunSpec spec = withVariantSpec("gcc", 2, fastOpts());
    RunResult r = executeRunSpec(spec);

    auto find = [&](const std::string &name) -> const Histogram * {
        for (const NamedHistogram &h : r.histograms)
            if (h.name == name)
                return &h.hist;
        return nullptr;
    };
    for (const char *name :
         {"sim.episode_heat_cycles", "sim.episode_cool_cycles",
          "sim.sedation_span_cycles", "sim.ruu_occupancy",
          "sim.lsq_occupancy", "sim.fetch_slot_share"})
        EXPECT_NE(find(name), nullptr) << name;

    // The attack mix heats: occupancy is sampled every sensor period
    // and both threads got fetch slots.
    EXPECT_GT(find("sim.ruu_occupancy")->count(), 0u);
    EXPECT_EQ(find("sim.fetch_slot_share")->count(), 2u);
    EXPECT_NEAR(find("sim.fetch_slot_share")->sum(), 1.0, 1e-9);

    // Completed heat episodes must balance: every heating span has a
    // cooling span.
    const Histogram *heat = find("sim.episode_heat_cycles");
    const Histogram *cool = find("sim.episode_cool_cycles");
    EXPECT_EQ(heat->count(), cool->count());
}

TEST(RunHealth, SedationSpansRecordedUnderSedationDtm)
{
    ExperimentOptions opts = fastOpts();
    opts.dtm = DtmMode::SelectiveSedation;
    RunSpec spec = withVariantSpec("gcc", 2, opts);
    RunResult r = executeRunSpec(spec);

    const Histogram *sed = nullptr;
    for (const NamedHistogram &h : r.histograms)
        if (h.name == "sim.sedation_span_cycles")
            sed = &h.hist;
    ASSERT_NE(sed, nullptr);
    ASSERT_GT(sed->count(), 0u);
    // Span lengths are cycle counts inside one quantum.
    EXPECT_GE(sed->min(), 1.0);
    EXPECT_LT(sed->max(), 1e9);
}

/**
 * Snapshot round-trip: a run forked from a mid-run prefix snapshot
 * must reproduce the cold run's histograms exactly — the histogram
 * state, open sedation spans, and episode-detector state all travel
 * through save()/restore().
 */
TEST(RunHealth, HistogramsSurvivePrefixForkBitExact)
{
    // The innocent pair at convection R = 1.2 K/W climbs slowly enough
    // for runPrefix to bank a snapshot before the 353 K divergence
    // temperature, yet the episode detector has already seen a rise
    // begin — so histogram and detector state genuinely travel through
    // the snapshot (the attack mix crosses 353 K before the first
    // snapshot point and would fork nothing).
    ExperimentOptions opts = fastOpts();
    opts.dtm = DtmMode::SelectiveSedation;
    opts.convectionR = 1.2;
    RunSpec spec = specPairSpec("gcc", "mesa", opts);

    SimSnapshot snap;
    Cycles fork =
        makePrefixSimulator(spec)->runPrefix(353.0, /*stride=*/1, snap);
    ASSERT_GT(fork, 0u);

    RunResult cold = executeRunSpec(spec);
    RunResult warm = executeFromSnapshot(spec, snap);
    ASSERT_EQ(cold, warm);
    // operator== excludes histograms; compare them explicitly.
    ASSERT_EQ(cold.histograms.size(), warm.histograms.size());
    for (size_t i = 0; i < cold.histograms.size(); ++i) {
        EXPECT_EQ(cold.histograms[i].name, warm.histograms[i].name);
        EXPECT_EQ(cold.histograms[i].hist, warm.histograms[i].hist)
            << cold.histograms[i].name;
    }
}

// --- engine folding ----------------------------------------------------

std::vector<RunSpec>
smallMatrix()
{
    ExperimentOptions opts = fastOpts();
    std::vector<RunSpec> specs;
    specs.push_back(soloSpec("gcc", opts));
    specs.push_back(withVariantSpec("gcc", 2, opts));
    specs.push_back(withVariantSpec("crafty", 3, opts));
    specs.push_back(
        withVariantSpec("applu", 2, opts)
            .withDtm(DtmMode::SelectiveSedation));
    specs.push_back(soloSpec("mcf", opts));
    specs.push_back(specPairSpec("gcc", "mesa", opts));
    return specs;
}

/**
 * The cross-talk fix: per-cell histograms live in each RunResult and
 * are folded in submission order, so the merged registry is
 * byte-identical no matter how many workers raced to produce the
 * results. ("host"-named metrics are machine-dependent and are only
 * added when the caller passes cell timings — not here.)
 */
TEST(RunHealth, MergedMetricsIdenticalAcrossWorkerCounts)
{
    std::vector<RunSpec> specs = smallMatrix();

    ParallelRunner serial(1);
    std::vector<RunResult> r1 = serial.run(specs);
    ParallelRunner wide(4);
    std::vector<RunResult> r4 = wide.run(specs);

    MetricsRegistry m1, m4;
    foldRunMetrics(m1, r1);
    foldRunMetrics(m4, r4);

    std::ostringstream j1, j4;
    m1.writeJson(j1);
    m4.writeJson(j4);
    EXPECT_EQ(j1.str(), j4.str());
    EXPECT_NE(j1.str().find("sim.episode_heat_cycles"),
              std::string::npos);
}

// --- lifecycle events and progress -------------------------------------

TEST(RunHealth, CellObserverSeesEveryLifecycleEvent)
{
    std::vector<RunSpec> specs = smallMatrix();
    ResultStore store;
    ParallelRunner runner(2, &store);

    std::vector<CellEvent::Kind> kinds;
    size_t queued = 0, started = 0, finished = 0, cache_hits = 0;
    runner.setCellObserver([&](const CellEvent &ev) {
        // The callback is serialized by the runner; no locking here.
        kinds.push_back(ev.kind);
        EXPECT_EQ(ev.total, specs.size());
        EXPECT_LT(ev.index, specs.size());
        switch (ev.kind) {
          case CellEvent::Kind::Queued: ++queued; break;
          case CellEvent::Kind::Started: ++started; break;
          case CellEvent::Kind::Finished:
            EXPECT_GE(ev.hostSeconds, 0.0);
            ++finished;
            break;
          case CellEvent::Kind::CacheHit: ++cache_hits; break;
          default: break;
        }
    });

    runner.run(specs);
    EXPECT_EQ(queued, specs.size());
    EXPECT_EQ(started, specs.size());
    EXPECT_EQ(finished, specs.size());
    EXPECT_EQ(cache_hits, 0u);
    EXPECT_EQ(runner.cellSecondsHistogram().count(), specs.size());

    // A second pass over the same matrix is served from the store.
    queued = started = finished = cache_hits = 0;
    runner.run(specs);
    EXPECT_EQ(queued, specs.size());
    EXPECT_EQ(cache_hits, specs.size());
    EXPECT_EQ(finished, 0u);
}

TEST(RunHealth, ProgressReporterPlainModeHasNoAnsi)
{
    std::FILE *out = std::tmpfile();
    ASSERT_NE(out, nullptr);
    {
        ProgressOptions popts;
        popts.ansi = false;
        popts.minPlainInterval = 0.0; // paint every event
        popts.out = out;
        ProgressReporter rep(2, 1, popts);
        CellEvent ev{CellEvent::Kind::Started, 0, 2, "a", 0.0};
        rep.onEvent(ev);
        ev = {CellEvent::Kind::Finished, 0, 2, "a", 0.01};
        rep.onEvent(ev);
        ev = {CellEvent::Kind::Started, 1, 2, "b", 0.0};
        rep.onEvent(ev);
        ev = {CellEvent::Kind::Finished, 1, 2, "b", 0.01};
        rep.onEvent(ev);
        rep.finish();
    }
    std::rewind(out);
    std::string text;
    char buf[512];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), out)) > 0)
        text.append(buf, n);
    std::fclose(out);

    EXPECT_NE(text.find("[progress] 2/2 cells"), std::string::npos)
        << text;
    EXPECT_EQ(text.find('\x1b'), std::string::npos) << "ANSI escape";
    EXPECT_EQ(text.find('\r'), std::string::npos) << "carriage return";
}

TEST(RunHealth, WatchdogEnvIsStrict)
{
    setenv("HS_WATCHDOG", "2.5", 1);
    EXPECT_DOUBLE_EQ(envWatchdogFactor(), 2.5);
    setenv("HS_WATCHDOG", "0", 1);
    EXPECT_DOUBLE_EQ(envWatchdogFactor(), 0.0);
    unsetenv("HS_WATCHDOG");
    EXPECT_DOUBLE_EQ(envWatchdogFactor(3.0), 3.0);

    setenv("HS_WATCHDOG", "fast", 1);
    EXPECT_EXIT(envWatchdogFactor(), testing::ExitedWithCode(1),
                "HS_WATCHDOG");
    setenv("HS_WATCHDOG", "-1", 1);
    EXPECT_EXIT(envWatchdogFactor(), testing::ExitedWithCode(1),
                "HS_WATCHDOG");
    unsetenv("HS_WATCHDOG");
}

} // namespace
