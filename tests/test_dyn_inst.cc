/** @file Unit tests for DynInst slot state and handles. */

#include <gtest/gtest.h>

#include "smt/dyn_inst.hh"

namespace hs {
namespace {

TEST(DynInst, ResetClearsTransients)
{
    DynInst inst;
    inst.live = true;
    inst.seq = 42;
    inst.tid = 1;
    inst.srcPending = 2;
    inst.srcWaiting[0] = true;
    inst.intResult = 99;
    inst.hasDest = true;
    inst.mispredicted = true;
    inst.dependents.push_back(InstHandle{3, 4});
    uint32_t gen = inst.gen = 7;

    inst.reset();
    EXPECT_FALSE(inst.live);
    EXPECT_EQ(inst.seq, 0u);
    EXPECT_EQ(inst.tid, invalidThreadId);
    EXPECT_EQ(inst.srcPending, 0);
    EXPECT_FALSE(inst.srcWaiting[0]);
    EXPECT_EQ(inst.intResult, 0);
    EXPECT_FALSE(inst.hasDest);
    EXPECT_FALSE(inst.mispredicted);
    EXPECT_TRUE(inst.dependents.empty());
    // Generation survives reset (it tracks the slot, not the inst).
    EXPECT_EQ(inst.gen, gen);
}

TEST(InstHandle, EqualityNeedsSlotAndGeneration)
{
    InstHandle a{5, 10};
    InstHandle b{5, 10};
    InstHandle stale{5, 11};
    InstHandle other{6, 10};
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == stale);
    EXPECT_FALSE(a == other);
}

TEST(DynInst, DefaultStageIsWaiting)
{
    DynInst inst;
    EXPECT_EQ(inst.stage, InstStage::Waiting);
}

} // namespace
} // namespace hs
