/** @file Tests for the simulator's full statistics dump. */

#include <sstream>

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace hs {
namespace {

TEST(StatsDump, ContainsAllSections)
{
    ExperimentOptions opts;
    opts.timeScale = 500.0;
    opts.dtm = DtmMode::SelectiveSedation;
    Simulator sim(makeSimConfig(opts));
    sim.setWorkload(0, synthesizeSpec("gzip"));
    sim.setWorkload(1, synthesizeSpec("mesa"));
    sim.run();

    std::ostringstream os;
    sim.dumpStats(os);
    std::string out = os.str();

    for (const char *needle :
         {"sim.cycles", "sim.avg_power_w", "thread0.committed",
          "thread0.ipc", "thread1.committed", "mem.l1d.miss_rate",
          "mem.l2.misses", "bpred.accuracy", "thermal.IntReg.peak_k",
          "dtm.stop_and_go.triggers", "dtm.sedation.events"}) {
        EXPECT_NE(out.find(needle), std::string::npos)
            << "missing stat " << needle;
    }
    // Program names appear as descriptions.
    EXPECT_NE(out.find("gzip"), std::string::npos);
    EXPECT_NE(out.find("mesa"), std::string::npos);
}

TEST(StatsDump, ValuesConsistentWithRunResult)
{
    ExperimentOptions opts;
    opts.timeScale = 500.0;
    Simulator sim(makeSimConfig(opts));
    sim.setWorkload(0, synthesizeSpec("gzip"));
    RunResult r = sim.run();

    std::ostringstream os;
    sim.dumpStats(os);
    std::string out = os.str();

    // The cycle count printed must match the result record.
    std::string cycles = std::to_string(r.cycles);
    EXPECT_NE(out.find(cycles), std::string::npos);
    std::string committed = std::to_string(r.threads[0].committed);
    EXPECT_NE(out.find(committed), std::string::npos);
}

TEST(StatsDump, IdleThreadsOmitted)
{
    ExperimentOptions opts;
    opts.timeScale = 500.0;
    Simulator sim(makeSimConfig(opts));
    sim.setWorkload(0, synthesizeSpec("gzip")); // thread 1 unbound
    sim.run();
    std::ostringstream os;
    sim.dumpStats(os);
    EXPECT_EQ(os.str().find("thread1."), std::string::npos);
}

} // namespace
} // namespace hs
