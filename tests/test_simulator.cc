/** @file Tests for the top-level simulator plumbing. */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/simulator.hh"
#include "workload/generator.hh"

namespace hs {
namespace {

SimConfig
tinyConfig(DtmMode dtm = DtmMode::StopAndGo)
{
    SimConfig cfg;
    cfg.quantumCycles = 400000;
    cfg.thermal.timeScale = 1000.0;
    cfg.dtm = dtm;
    cfg.sedation.recheckCycles = 100000;
    cfg.sedation.ewmaShift = 6;
    return cfg;
}

TEST(Simulator, RunsOneQuantum)
{
    Simulator sim(tinyConfig());
    sim.setWorkload(0, synthesizeSpec("gzip"));
    RunResult r = sim.run();
    EXPECT_EQ(r.cycles, 400000u);
    ASSERT_EQ(r.threads.size(), 1u);
    EXPECT_EQ(r.threads[0].program, "gzip");
    EXPECT_GT(r.threads[0].committed, 1000u);
    EXPECT_GT(r.threads[0].ipc, 0.0);
}

TEST(Simulator, HaltedProgramEndsRunEarly)
{
    Simulator sim(tinyConfig());
    Program p = assemble("addi r1, r0, 1\nhalt\n");
    sim.setWorkload(0, std::move(p));
    RunResult r = sim.run();
    EXPECT_LT(r.cycles, 100000u);
    EXPECT_EQ(r.threads[0].committed, 2u);
}

TEST(Simulator, TwoThreadResultsReported)
{
    Simulator sim(tinyConfig());
    sim.setWorkload(0, synthesizeSpec("gzip"));
    sim.setWorkload(1, synthesizeSpec("mesa"));
    RunResult r = sim.run();
    ASSERT_EQ(r.threads.size(), 2u);
    EXPECT_EQ(r.threads[0].program, "gzip");
    EXPECT_EQ(r.threads[1].program, "mesa");
    EXPECT_GT(r.threads[0].committed, 0u);
    EXPECT_GT(r.threads[1].committed, 0u);
}

TEST(Simulator, NormalRunHasNormalTemps)
{
    Simulator sim(tinyConfig());
    sim.setWorkload(0, synthesizeSpec("gzip"));
    RunResult r = sim.run();
    EXPECT_EQ(r.emergencies, 0u);
    EXPECT_GT(r.peakTempOverall, 330.0);
    EXPECT_LT(r.peakTempOverall, 358.0);
    EXPECT_GT(r.avgTotalPowerW, 10.0);
    EXPECT_LT(r.avgTotalPowerW, 60.0);
}

TEST(Simulator, StallAccountingConsistent)
{
    Simulator sim(tinyConfig());
    sim.setWorkload(0, synthesizeSpec("gzip"));
    RunResult r = sim.run();
    const ThreadResult &t = r.threads[0];
    EXPECT_EQ(t.normalCycles + t.coolingCycles + t.sedationCycles,
              r.cycles);
}

TEST(Simulator, TempTraceRecordsWhenEnabled)
{
    SimConfig cfg = tinyConfig();
    cfg.recordTempTrace = true;
    cfg.tempTraceInterval = 40000;
    Simulator sim(cfg);
    sim.setWorkload(0, synthesizeSpec("gzip"));
    RunResult r = sim.run();
    EXPECT_GE(r.tempTrace.size(), 8u);
    for (const TempSample &s : r.tempTrace) {
        EXPECT_GT(s.intRegTemp, 300.0);
        EXPECT_GE(s.hottestTemp, s.intRegTemp - 1e-9);
    }
}

TEST(Simulator, TraceDisabledByDefault)
{
    Simulator sim(tinyConfig());
    sim.setWorkload(0, synthesizeSpec("gzip"));
    RunResult r = sim.run();
    EXPECT_TRUE(r.tempTrace.empty());
}

TEST(Simulator, DtmModeNoneNeverStalls)
{
    Simulator sim(tinyConfig(DtmMode::None));
    sim.setWorkload(0, synthesizeSpec("gzip"));
    RunResult r = sim.run();
    EXPECT_EQ(r.threads[0].coolingCycles, 0u);
    EXPECT_EQ(r.stopAndGoTriggers, 0u);
}

TEST(Simulator, SedationModeBuildsBothPolicies)
{
    Simulator sim(tinyConfig(DtmMode::SelectiveSedation));
    EXPECT_NE(sim.sedationPolicy(), nullptr);
    EXPECT_NE(sim.stopAndGoPolicy(), nullptr);
}

TEST(Simulator, StopAndGoModeHasNoSedation)
{
    Simulator sim(tinyConfig(DtmMode::StopAndGo));
    EXPECT_EQ(sim.sedationPolicy(), nullptr);
    EXPECT_NE(sim.stopAndGoPolicy(), nullptr);
}

TEST(Simulator, RejectsBadIntervals)
{
    SimConfig cfg = tinyConfig();
    cfg.sensorInterval = 1500; // not a multiple of monitorInterval
    EXPECT_DEATH(Simulator sim(cfg), "multiple");
}

TEST(Simulator, RejectsBadWorkloadThread)
{
    Simulator sim(tinyConfig());
    EXPECT_DEATH(sim.setWorkload(5, synthesizeSpec("gzip")),
                 "out of range");
}

TEST(Simulator, DtmModeNames)
{
    EXPECT_STREQ(dtmModeName(DtmMode::None), "none");
    EXPECT_STREQ(dtmModeName(DtmMode::StopAndGo), "stop-and-go");
    EXPECT_STREQ(dtmModeName(DtmMode::SelectiveSedation),
                 "selective-sedation");
    EXPECT_STREQ(dtmModeName(DtmMode::DvfsThrottle), "dvfs-throttle");
}

} // namespace
} // namespace hs
