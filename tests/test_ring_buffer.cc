/** @file Unit tests for the fixed-capacity ring buffer backing the
 *  per-thread ROB and LSQ. */

#include <gtest/gtest.h>

#include "common/ring_buffer.hh"

namespace hs {
namespace {

TEST(RingBuffer, StartsEmpty)
{
    RingBuffer<int> rb;
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.size(), 0u);
    EXPECT_EQ(rb.capacity(), 0u);
}

TEST(RingBuffer, ReserveRoundsUpToPowerOfTwo)
{
    RingBuffer<int> rb;
    rb.reserve(3);
    EXPECT_EQ(rb.capacity(), 4u);
    rb.reserve(32);
    EXPECT_EQ(rb.capacity(), 32u);
    rb.reserve(33);
    EXPECT_EQ(rb.capacity(), 64u);
    rb.reserve(1);
    EXPECT_EQ(rb.capacity(), 1u);
}

TEST(RingBuffer, FifoOrder)
{
    RingBuffer<int> rb;
    rb.reserve(8);
    for (int i = 0; i < 5; ++i)
        rb.push_back(i);
    EXPECT_EQ(rb.size(), 5u);
    EXPECT_EQ(rb.front(), 0);
    EXPECT_EQ(rb.back(), 4);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(rb[static_cast<size_t>(i)], i);
    rb.pop_front();
    EXPECT_EQ(rb.front(), 1);
    rb.pop_back();
    EXPECT_EQ(rb.back(), 3);
    EXPECT_EQ(rb.size(), 3u);
}

TEST(RingBuffer, WrapsAroundCapacity)
{
    // Push/pop far more elements than the capacity: indices must stay
    // consistent across many wraps.
    RingBuffer<int> rb;
    rb.reserve(4);
    int next_in = 0, next_out = 0;
    for (int round = 0; round < 100; ++round) {
        while (rb.size() < rb.capacity())
            rb.push_back(next_in++);
        EXPECT_EQ(rb.front(), next_out);
        EXPECT_EQ(rb.back(), next_in - 1);
        for (size_t i = 0; i < rb.size(); ++i)
            EXPECT_EQ(rb[i], next_out + static_cast<int>(i));
        rb.pop_front();
        ++next_out;
        rb.pop_front();
        ++next_out;
    }
}

TEST(RingBuffer, ClearKeepsCapacity)
{
    RingBuffer<int> rb;
    rb.reserve(4);
    rb.push_back(1);
    rb.push_back(2);
    rb.clear();
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.capacity(), 4u);
    rb.push_back(7);
    EXPECT_EQ(rb.front(), 7);
    EXPECT_EQ(rb.back(), 7);
}

TEST(RingBuffer, OverflowPanics)
{
    RingBuffer<int> rb;
    rb.reserve(2);
    rb.push_back(1);
    rb.push_back(2);
    EXPECT_DEATH(rb.push_back(3), "overflow");
}

TEST(RingBuffer, PushWithoutReservePanics)
{
    RingBuffer<int> rb;
    EXPECT_DEATH(rb.push_back(1), "overflow");
}

TEST(RingBuffer, PopEmptyPanics)
{
    RingBuffer<int> rb;
    rb.reserve(2);
    EXPECT_DEATH(rb.pop_front(), "empty");
    EXPECT_DEATH(rb.pop_back(), "empty");
}

} // namespace
} // namespace hs
