/** @file Unit tests for the statistics registry. */

#include <sstream>

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace hs {
namespace {

TEST(StatScalar, IncrementsAndResets)
{
    StatScalar s("count", "a counter");
    EXPECT_EQ(s.value(), 0.0);
    s.inc();
    s.inc(2.5);
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(StatDistribution, TracksMoments)
{
    StatDistribution d("lat", "latency");
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 4.0);
    EXPECT_NEAR(d.variance(), 1.25, 1e-12);
}

TEST(StatDistribution, EmptyIsSafe)
{
    StatDistribution d("x", "");
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.min(), 0.0);
    EXPECT_EQ(d.max(), 0.0);
    EXPECT_EQ(d.variance(), 0.0);
}

TEST(StatGroup, DumpContainsNamesAndValues)
{
    StatScalar s("ipc", "instructions per cycle");
    s.set(1.5);
    StatDistribution d("temp", "block temperature");
    d.sample(300);
    d.sample(310);

    StatGroup group("core0");
    group.add(&s);
    group.add(&d);

    std::ostringstream os;
    group.dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("core0.ipc"), std::string::npos);
    EXPECT_NE(out.find("1.5"), std::string::npos);
    EXPECT_NE(out.find("core0.temp"), std::string::npos);
    EXPECT_NE(out.find("mean=305"), std::string::npos);
}

TEST(StatGroup, ResetAllClearsEverything)
{
    StatScalar s("a", "");
    s.inc(5);
    StatDistribution d("b", "");
    d.sample(1);
    StatGroup group("g");
    group.add(&s);
    group.add(&d);
    group.resetAll();
    EXPECT_EQ(s.value(), 0.0);
    EXPECT_EQ(d.count(), 0u);
}

} // namespace
} // namespace hs
