/**
 * @file
 * Unit tests for the event tracer ring, the category filter parser,
 * the trace writers, and the metrics registry — the pieces the golden
 * and CLI tests exercise only end to end.
 */

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/state_buffer.hh"
#include "trace/metrics.hh"
#include "trace/tracer.hh"
#include "trace/writers.hh"

namespace hs {
namespace {

TraceEvent
ev(Cycles cycle, TraceKind kind, int thread = -1)
{
    return traceEvent(cycle, kind, thread, traceNoBlock,
                      static_cast<double>(cycle), cycle);
}

// --- ring semantics ----------------------------------------------------

TEST(Tracer, DropsOldestOnOverflow)
{
    Tracer t(4);
    for (Cycles c = 1; c <= 6; ++c)
        t.emit(ev(c, TraceKind::EmergencyUp));

    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.emitted(), 6u);
    EXPECT_EQ(t.dropped(), 2u);
    // The tail of the timeline survives: events 3..6.
    for (size_t i = 0; i < t.size(); ++i)
        EXPECT_EQ(t.at(i).cycle, i + 3);

    std::vector<TraceEvent> out;
    t.exportTo(out);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out.front().cycle, 3u);
    EXPECT_EQ(out.back().cycle, 6u);
}

TEST(Tracer, DropCategoryErasesAsIfNeverRecorded)
{
    Tracer t(8);
    t.emit(ev(1, TraceKind::MonitorSample, 0));
    t.emit(ev(2, TraceKind::EmergencyUp));
    t.emit(ev(3, TraceKind::MonitorSample, 1));
    t.emit(ev(4, TraceKind::ThreadSedated, 1));

    t.dropCategory(TraceCategory::Monitor);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.emitted(), 2u); // deducted, not counted as dropped
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_EQ(t.at(0).kind, TraceKind::EmergencyUp);
    EXPECT_EQ(t.at(1).kind, TraceKind::ThreadSedated);
}

TEST(Tracer, StateRoundTripsExactly)
{
    Tracer a(4);
    for (Cycles c = 1; c <= 6; ++c)
        a.emit(ev(c, TraceKind::StopGoTrigger));

    std::vector<uint8_t> buf;
    StateWriter w(buf);
    a.saveState(w);
    Tracer b(4);
    StateReader r(buf);
    b.restoreState(r);

    EXPECT_EQ(b.size(), a.size());
    EXPECT_EQ(b.emitted(), a.emitted());
    EXPECT_EQ(b.dropped(), a.dropped());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(b.at(i), a.at(i)) << "event " << i;

    // The restored ring keeps behaving like a ring.
    b.emit(ev(7, TraceKind::StopGoRelease));
    EXPECT_EQ(b.at(b.size() - 1).cycle, 7u);
    EXPECT_EQ(b.dropped(), 3u);
}

// --- category filter parsing -------------------------------------------

TEST(TraceFilter, ParsesNamesAndRejectsJunk)
{
    uint32_t mask = 0;
    ASSERT_TRUE(parseTraceFilter("dtm", mask));
    EXPECT_EQ(mask, traceCategoryBit(TraceCategory::Dtm));

    ASSERT_TRUE(parseTraceFilter("dtm,thermal,episode", mask));
    EXPECT_EQ(mask, traceCategoryBit(TraceCategory::Dtm) |
                        traceCategoryBit(TraceCategory::Thermal) |
                        traceCategoryBit(TraceCategory::Episode));

    ASSERT_TRUE(parseTraceFilter("monitor,fetch", mask));
    EXPECT_EQ(mask, traceCategoryBit(TraceCategory::Monitor) |
                        traceCategoryBit(TraceCategory::Fetch));

    uint32_t before = mask;
    EXPECT_FALSE(parseTraceFilter("dtm,bogus", mask));
    EXPECT_FALSE(parseTraceFilter("", mask));
    EXPECT_FALSE(parseTraceFilter("dtm,,thermal", mask));
    EXPECT_EQ(mask, before) << "failed parse must not touch the mask";
}

// --- writers -----------------------------------------------------------

TEST(TraceWriters, JsonlHonoursMaskAndFormat)
{
    std::vector<TraceEvent> events;
    events.push_back(traceEvent(100, TraceKind::SedUpperCross, -1,
                                traceBlock(Block::IntReg), 356.25, 0));
    events.push_back(traceEvent(200, TraceKind::MonitorSample, 1,
                                traceBlock(Block::IntReg), 1234.5, 7));

    std::stringstream all;
    writeTraceJsonl(all, events);
    EXPECT_EQ(all.str(),
              "{\"cycle\": 100, \"cat\": \"dtm\", \"kind\": "
              "\"sed_upper_cross\", \"thread\": -1, \"block\": "
              "\"IntReg\", \"value\": 356.25, \"arg\": 0}\n"
              "{\"cycle\": 200, \"cat\": \"monitor\", \"kind\": "
              "\"monitor_sample\", \"thread\": 1, \"block\": "
              "\"IntReg\", \"value\": 1234.5, \"arg\": 7}\n");

    std::stringstream only_dtm;
    writeTraceJsonl(only_dtm, events,
                    traceCategoryBit(TraceCategory::Dtm));
    EXPECT_EQ(only_dtm.str().find("monitor"), std::string::npos);
    EXPECT_NE(only_dtm.str().find("sed_upper_cross"), std::string::npos);
}

TEST(TraceWriters, ChromeTracePairsSpansAndCounters)
{
    std::vector<TraceEvent> events;
    events.push_back(ev(1000, TraceKind::ThreadSedated, 1));
    events.push_back(ev(2000, TraceKind::MonitorSample, 1));
    events.push_back(ev(3000, TraceKind::ThreadReleased, 1));

    std::stringstream ss;
    writeChromeTrace(ss, events, /*cycles_per_us=*/1000.0);
    std::string doc = ss.str();
    // One B/E pair for the sedation window, a counter sample between.
    EXPECT_NE(doc.find("\"name\": \"sedated\", \"ph\": \"B\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"sedated\", \"ph\": \"E\""),
              std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"ewma_t1\", \"ph\": \"C\""),
              std::string::npos);
    // cycles_per_us converts 1000 cycles to ts 1.0.
    EXPECT_NE(doc.find("\"ts\": 1.000000"), std::string::npos);
}

// --- metrics registry --------------------------------------------------

TEST(Metrics, CountersAccumulateAndGaugesTrackPeaks)
{
    MetricsRegistry m;
    m.counterAdd("runs", 2, "simulated quanta");
    m.counterAdd("runs", 3);
    EXPECT_EQ(m.counter("runs"), 5u);
    EXPECT_EQ(m.counter("absent"), 0u);

    m.gaugeSet("temp", 350.0);
    m.gaugeMax("temp", 356.5);
    m.gaugeMax("temp", 340.0); // lower: ignored
    EXPECT_EQ(m.gauge("temp"), 356.5);

    auto snap = m.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].name, "runs"); // name-sorted
    EXPECT_EQ(snap[1].name, "temp");
    EXPECT_EQ(snap[0].desc, "simulated quanta");

    m.reset();
    EXPECT_TRUE(m.snapshot().empty());
}

TEST(Metrics, WriteJsonIsSortedAndTyped)
{
    MetricsRegistry m;
    m.gaugeSet("b.gauge", 1.5);
    m.counterAdd("a.counter", 42);

    std::stringstream ss;
    m.writeJson(ss);
    EXPECT_EQ(ss.str(), "{\n  \"a.counter\": 42,\n  \"b.gauge\": 1.5\n}");
}

} // namespace
} // namespace hs
