/**
 * @file
 * Store garbage-collection tests: pruneStore() must honour the
 * retention boundary exactly, delete corrupt records only in sweep
 * mode, refuse everything that is not a visible `*.hsr` record inside
 * a bucket directory (manifests, temp litter, user strays), and count
 * honestly in dry-run mode. validateRecordFile() is the structural
 * gate the sweep relies on.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "sim/disk_store.hh"
#include "sim/run_spec.hh"
#include "sim/runner.hh"

namespace {

using namespace hs;

ExperimentOptions
fastOpts()
{
    ExperimentOptions opts;
    opts.timeScale = 20000.0;
    return opts;
}

std::string
freshDir(const std::string &tag)
{
    std::string dir = "hs_prune_test_" + tag + "_" +
                      std::to_string(::getpid());
    std::string cmd = "rm -rf " + dir;
    if (std::system(cmd.c_str()) != 0)
        ADD_FAILURE() << "cannot clear " << dir;
    return dir;
}

bool
exists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

/** Rewind a file's mtime by @p seconds (utimensat, atime untouched). */
void
ageFile(const std::string &path, double seconds)
{
    struct stat st;
    ASSERT_EQ(::stat(path.c_str(), &st), 0) << path;
    timespec times[2];
    times[0].tv_nsec = UTIME_OMIT;
    times[0].tv_sec = 0;
    times[1].tv_sec =
        st.st_mtime - static_cast<time_t>(seconds);
    times[1].tv_nsec = 0;
    ASSERT_EQ(::utimensat(AT_FDCWD, path.c_str(), times, 0), 0)
        << path;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    ASSERT_TRUE(out.good()) << path;
}

/** A store holding one record per spec; paths returned in order. */
std::vector<std::string>
populate(const std::string &dir, const std::vector<RunSpec> &specs)
{
    DiskResultStore store(dir);
    std::vector<std::string> paths;
    for (const RunSpec &spec : specs) {
        EXPECT_TRUE(store.store(spec, executeRunSpec(spec)));
        paths.push_back(store.entryPath(spec));
    }
    return paths;
}

TEST(ValidateRecord, AcceptsFreshAndRejectsDamage)
{
    std::string dir = freshDir("validate");
    RunSpec spec = soloSpec("gcc", fastOpts());
    std::string path = populate(dir, {spec})[0];

    std::string why;
    EXPECT_TRUE(validateRecordFile(path, why)) << why;

    // Truncation.
    struct stat st;
    ASSERT_EQ(::stat(path.c_str(), &st), 0);
    ASSERT_EQ(::truncate(path.c_str(), st.st_size / 2), 0);
    EXPECT_FALSE(validateRecordFile(path, why));
    EXPECT_FALSE(why.empty());

    // Not a record at all.
    writeFile(path, "not a record");
    EXPECT_FALSE(validateRecordFile(path, why));

    // Missing file.
    EXPECT_FALSE(validateRecordFile(dir + "/no/such.hsr", why));
}

TEST(Prune, RetentionBoundaryIsStrict)
{
    std::string dir = freshDir("retention");
    ExperimentOptions opts = fastOpts();
    std::vector<RunSpec> specs = {soloSpec("gcc", opts),
                                  soloSpec("mesa", opts)};
    std::vector<std::string> paths = populate(dir, specs);

    // One record just inside the 5-day window, one just outside (a
    // minute of slack on each side keeps the test clock-race free).
    ageFile(paths[0], 5.0 * 86400.0 - 60.0);
    ageFile(paths[1], 5.0 * 86400.0 + 60.0);

    PruneOptions popts;
    popts.olderThanDays = 5.0;
    PruneStats stats = pruneStore(dir, popts);
    EXPECT_EQ(stats.scanned, 2u);
    EXPECT_EQ(stats.pruned, 1u);
    EXPECT_EQ(stats.kept, 1u);
    EXPECT_EQ(stats.corrupt, 0u);
    EXPECT_GT(stats.bytesFreed, 0u);
    EXPECT_TRUE(exists(paths[0]));
    EXPECT_FALSE(exists(paths[1]));
}

TEST(Prune, ZeroDaysPrunesEverythingAged)
{
    std::string dir = freshDir("zerodays");
    std::vector<std::string> paths =
        populate(dir, {soloSpec("gcc", fastOpts())});
    ageFile(paths[0], 60.0);

    PruneOptions popts;
    popts.olderThanDays = 0.0;
    PruneStats stats = pruneStore(dir, popts);
    EXPECT_EQ(stats.pruned, 1u);
    EXPECT_FALSE(exists(paths[0]));
}

TEST(Prune, DryRunCountsWithoutDeleting)
{
    std::string dir = freshDir("dryrun");
    std::vector<std::string> paths =
        populate(dir, {soloSpec("gcc", fastOpts())});
    ageFile(paths[0], 10.0 * 86400.0);

    PruneOptions popts;
    popts.olderThanDays = 1.0;
    popts.dryRun = true;
    PruneStats stats = pruneStore(dir, popts);
    EXPECT_EQ(stats.pruned, 1u);
    EXPECT_GT(stats.bytesFreed, 0u);
    EXPECT_TRUE(exists(paths[0])); // nothing actually deleted

    popts.dryRun = false;
    stats = pruneStore(dir, popts);
    EXPECT_EQ(stats.pruned, 1u);
    EXPECT_FALSE(exists(paths[0]));
}

TEST(Prune, SweepCorruptDeletesRegardlessOfAge)
{
    std::string dir = freshDir("sweep");
    ExperimentOptions opts = fastOpts();
    std::vector<RunSpec> specs = {soloSpec("gcc", opts),
                                  soloSpec("mesa", opts)};
    std::vector<std::string> paths = populate(dir, specs);

    // Damage the first record; both are brand new.
    writeFile(paths[0], "garbage");

    PruneOptions popts; // no age rule at all
    popts.sweepCorrupt = true;
    PruneStats stats = pruneStore(dir, popts);
    EXPECT_EQ(stats.scanned, 2u);
    EXPECT_EQ(stats.pruned, 1u);
    EXPECT_EQ(stats.corrupt, 1u);
    EXPECT_EQ(stats.kept, 1u);
    EXPECT_FALSE(exists(paths[0]));
    EXPECT_TRUE(exists(paths[1]));
}

TEST(Prune, RefusesEverythingThatIsNotARecord)
{
    std::string dir = freshDir("refuse");
    std::vector<std::string> paths =
        populate(dir, {soloSpec("gcc", fastOpts())});
    std::string bucket = paths[0].substr(0, paths[0].rfind('/'));

    // Litter the tree with things prune must never touch: a campaign
    // manifest at the root, a user file at the root, a non-record and
    // a hidden temp file inside a bucket, and a record-named file in
    // a directory that is not a bucket.
    writeFile(dir + "/manifest.hsm", "manifest bytes");
    writeFile(dir + "/README", "user notes");
    writeFile(bucket + "/notes.txt", "not a record");
    writeFile(bucket + "/.tmp.1234.deadbeef.hsr", "torn temp");
    ASSERT_EQ(::mkdir((dir + "/stray").c_str(), 0777), 0);
    writeFile(dir + "/stray/fake.hsr", "outside any bucket");

    PruneOptions popts;
    popts.olderThanDays = 0.0;
    popts.sweepCorrupt = true;
    for (const std::string &p : paths)
        ageFile(p, 86400.0);
    PruneStats stats = pruneStore(dir, popts);

    EXPECT_EQ(stats.scanned, 1u);
    EXPECT_EQ(stats.pruned, 1u);
    EXPECT_GE(stats.skipped, 5u);
    EXPECT_TRUE(exists(dir + "/manifest.hsm"));
    EXPECT_TRUE(exists(dir + "/README"));
    EXPECT_TRUE(exists(bucket + "/notes.txt"));
    EXPECT_TRUE(exists(bucket + "/.tmp.1234.deadbeef.hsr"));
    EXPECT_TRUE(exists(dir + "/stray/fake.hsr"));
}

TEST(Prune, PrunedStoreStillServesAndRecomputes)
{
    std::string dir = freshDir("serve");
    ExperimentOptions opts = fastOpts();
    std::vector<RunSpec> specs = {soloSpec("gcc", opts),
                                  soloSpec("mesa", opts)};
    std::vector<RunResult> originals;
    std::vector<std::string> paths;
    {
        DiskResultStore store(dir);
        for (const RunSpec &spec : specs) {
            originals.push_back(executeRunSpec(spec));
            ASSERT_TRUE(store.store(spec, originals.back()));
            paths.push_back(store.entryPath(spec));
        }
    }
    ageFile(paths[0], 10.0 * 86400.0);

    PruneOptions popts;
    popts.olderThanDays = 1.0;
    ASSERT_EQ(pruneStore(dir, popts).pruned, 1u);

    // The survivor still serves; the pruned cell is a clean miss.
    DiskResultStore store(dir);
    RunResult back;
    EXPECT_EQ(store.load(specs[0], back),
              DiskResultStore::LoadStatus::Miss);
    ASSERT_EQ(store.load(specs[1], back),
              DiskResultStore::LoadStatus::Hit);
    EXPECT_TRUE(back == originals[1]);
}

using PruneDeathTest = ::testing::Test;

TEST(PruneDeathTest, MissingStoreRootIsFatal)
{
    EXPECT_EXIT(pruneStore("hs_prune_no_such_dir", PruneOptions{}),
                ::testing::ExitedWithCode(1), "not a store directory");
}

} // namespace
