/** @file Property tests for the time-scaling machinery: scaled runs
 *  must preserve the thermal trajectory shape and the experiment
 *  configuration must scale every knob together (DESIGN.md item 5). */

#include <gtest/gtest.h>

#include "power/energy_model.hh"
#include "sim/experiment.hh"
#include "thermal/thermal_model.hh"

namespace hs {
namespace {

std::array<double, numBlocks>
hammerRates()
{
    auto rates = SimConfig::defaultNominalRates();
    rates[static_cast<size_t>(blockIndex(Block::IntReg))] = 16.5;
    return rates;
}

class ScaleSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ScaleSweep, HeatUpTimeScalesLinearly)
{
    double scale = GetParam();
    EnergyModel em;

    auto heat_time = [&](double s) {
        ThermalParams tp;
        tp.timeScale = s;
        ThermalModel tm(Floorplan::ev6(), tp);
        tm.initSteadyState(
            em.steadyPower(SimConfig::defaultNominalRates()));
        std::vector<Watts> attack = em.steadyPower(hammerRates());
        double t = 0;
        const double dt = 5e-6 / s; // scaled sensor interval
        while (tm.blockTemp(Block::IntReg) < 358.0 && t < 1.0) {
            tm.step(attack, dt);
            t += dt;
        }
        return t;
    };

    double scaled = heat_time(scale);
    double plain = heat_time(1.0);
    EXPECT_NEAR(scaled * scale, plain, 0.15 * plain)
        << "scale " << scale;
}

INSTANTIATE_TEST_SUITE_P(Scales, ScaleSweep,
                         ::testing::Values(2.0, 10.0, 50.0, 200.0));

TEST(Scaling, SteadyStateUnaffectedByScale)
{
    // Scaling touches capacitances only: equilibria are identical.
    EnergyModel em;
    ThermalParams fast;
    fast.timeScale = 100.0;
    ThermalModel scaled(Floorplan::ev6(), fast);
    ThermalModel plain(Floorplan::ev6(), {});
    auto p = em.steadyPower(SimConfig::defaultNominalRates());
    scaled.initSteadyState(p);
    plain.initSteadyState(p);
    for (int b = 0; b < numBlocks; ++b)
        EXPECT_NEAR(scaled.blockTemp(blockFromIndex(b)),
                    plain.blockTemp(blockFromIndex(b)), 1e-6);
}

TEST(Scaling, ExperimentScalesQuantumRecheckAndPhasesTogether)
{
    ExperimentOptions a, b;
    a.timeScale = 10.0;
    b.timeScale = 100.0;
    SimConfig ca = makeSimConfig(a);
    SimConfig cb = makeSimConfig(b);
    EXPECT_NEAR(static_cast<double>(ca.quantumCycles) /
                    static_cast<double>(cb.quantumCycles),
                10.0, 0.01);
    EXPECT_NEAR(static_cast<double>(ca.sedation.recheckCycles) /
                    static_cast<double>(cb.sedation.recheckCycles),
                10.0, 0.01);
    MaliciousParams ma = makeMaliciousParams(a);
    MaliciousParams mb = makeMaliciousParams(b);
    EXPECT_NEAR(static_cast<double>(ma.hammerIters) /
                    static_cast<double>(mb.hammerIters),
                10.0, 0.05);
}

TEST(Scaling, SensorAndMonitorCadenceUnscaled)
{
    // Hardware sampling intervals are cycle counts; they do not scale.
    ExperimentOptions a;
    a.timeScale = 100.0;
    SimConfig cfg = makeSimConfig(a);
    EXPECT_EQ(cfg.sensorInterval, 20000u);
    EXPECT_EQ(cfg.monitorInterval, 1000u);
}

} // namespace
} // namespace hs
