/** @file Unit tests for the RC thermal network solver, validated
 *  against closed-form solutions of small circuits. */

#include <cmath>

#include <gtest/gtest.h>

#include "thermal/rc_network.hh"

namespace hs {
namespace {

TEST(RcNetwork, SingleNodeSteadyState)
{
    // One node to a 300 K bath through 2 K/W with 5 W: T = 310 K.
    RcNetwork net(1);
    net.setCapacitance(0, 1.0);
    net.addBathConductance(0, 0.5, 300.0);
    std::vector<Kelvin> t = net.solveSteadyState({5.0});
    EXPECT_NEAR(t[0], 310.0, 1e-9);
}

TEST(RcNetwork, SingleNodeExponentialRise)
{
    // Closed form: T(t) = T_ss - (T_ss - T0) exp(-t / RC).
    RcNetwork net(1);
    double r = 2.0, c = 0.5; // tau = 1 s
    net.setCapacitance(0, c);
    net.addBathConductance(0, 1.0 / r, 300.0);
    net.setTemp(0, 300.0);
    double p = 10.0; // T_ss = 320
    net.step({p}, 1.0); // one time constant
    double expected = 320.0 - 20.0 * std::exp(-1.0);
    EXPECT_NEAR(net.temp(0), expected, 0.05);
}

TEST(RcNetwork, SingleNodeExponentialDecay)
{
    RcNetwork net(1);
    net.setCapacitance(0, 0.5);
    net.addBathConductance(0, 0.5, 300.0); // tau = 1
    net.setTemp(0, 340.0);
    net.step({0.0}, 2.0); // two time constants
    double expected = 300.0 + 40.0 * std::exp(-2.0);
    EXPECT_NEAR(net.temp(0), expected, 0.1);
}

TEST(RcNetwork, TwoNodeSteadyStateDivider)
{
    // node0 -(1 K/W)- node1 -(1 K/W)- bath 300 K; 2 W into node0.
    // T1 = 302, T0 = 304.
    RcNetwork net(2);
    net.setCapacitance(0, 1.0);
    net.setCapacitance(1, 1.0);
    net.addConductance(0, 1, 1.0);
    net.addBathConductance(1, 1.0, 300.0);
    std::vector<Kelvin> t = net.solveSteadyState({2.0, 0.0});
    EXPECT_NEAR(t[0], 304.0, 1e-9);
    EXPECT_NEAR(t[1], 302.0, 1e-9);
}

TEST(RcNetwork, TransientConvergesToSteadyState)
{
    RcNetwork net(3);
    for (int i = 0; i < 3; ++i)
        net.setCapacitance(i, 0.1);
    net.addConductance(0, 1, 2.0);
    net.addConductance(1, 2, 3.0);
    net.addConductance(0, 2, 0.5);
    net.addBathConductance(2, 1.0, 310.0);
    std::vector<Watts> p{4.0, 1.0, 0.0};
    std::vector<Kelvin> ss = net.solveSteadyState(p);
    net.setAllTemps(310.0);
    for (int i = 0; i < 200; ++i)
        net.step(p, 0.1);
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(net.temp(i), ss[static_cast<size_t>(i)], 0.01);
}

TEST(RcNetwork, EnergyConservationAtEquilibrium)
{
    // At steady state the heat into the bath equals injected power.
    RcNetwork net(2);
    net.setCapacitance(0, 1.0);
    net.setCapacitance(1, 1.0);
    net.addConductance(0, 1, 0.7);
    net.addBathConductance(1, 0.4, 300.0);
    std::vector<Watts> p{3.0, 2.0};
    std::vector<Kelvin> t = net.solveSteadyState(p);
    double into_bath = 0.4 * (t[1] - 300.0);
    EXPECT_NEAR(into_bath, 5.0, 1e-9);
}

TEST(RcNetwork, LargeStepMatchesManySmallSteps)
{
    // The automatic sub-stepping must make one big step equivalent to
    // many explicit small ones.
    auto build = [] {
        RcNetwork net(2);
        net.setCapacitance(0, 0.01);
        net.setCapacitance(1, 1.0);
        net.addConductance(0, 1, 1.0);
        net.addBathConductance(1, 0.5, 300.0);
        net.setAllTemps(300.0);
        return net;
    };
    RcNetwork big = build();
    RcNetwork small = build();
    std::vector<Watts> p{2.0, 0.0};
    big.step(p, 1.0);
    for (int i = 0; i < 1000; ++i)
        small.step(p, 0.001);
    EXPECT_NEAR(big.temp(0), small.temp(0), 0.05);
    EXPECT_NEAR(big.temp(1), small.temp(1), 0.05);
}

TEST(RcNetwork, StabilityUnderStiffness)
{
    // A very small capacitance makes the system stiff; the solver must
    // not oscillate or blow up.
    RcNetwork net(2);
    net.setCapacitance(0, 1e-6);
    net.setCapacitance(1, 10.0);
    net.addConductance(0, 1, 5.0);
    net.addBathConductance(1, 1.0, 300.0);
    net.setAllTemps(300.0);
    for (int i = 0; i < 100; ++i) {
        net.step({1.0, 0.0}, 0.01);
        EXPECT_GE(net.temp(0), 299.0);
        EXPECT_LE(net.temp(0), 400.0);
    }
}

TEST(RcNetwork, ScaleCapacitancesScalesTime)
{
    // Dividing C by S makes the same dt advance S times further.
    auto build = [](double scale) {
        RcNetwork net(1);
        net.setCapacitance(0, 1.0);
        net.addBathConductance(0, 1.0, 300.0);
        net.scaleCapacitances(1.0 / scale);
        net.setTemp(0, 300.0);
        return net;
    };
    RcNetwork scaled = build(10.0);
    RcNetwork plain = build(1.0);
    scaled.step({5.0}, 0.1);  // 0.1 s at 10x speed
    plain.step({5.0}, 1.0);   // 1.0 s at 1x
    EXPECT_NEAR(scaled.temp(0), plain.temp(0), 0.05);
}

TEST(RcNetwork, SingularNetworkIsFatal)
{
    RcNetwork net(2);
    net.setCapacitance(0, 1.0);
    net.setCapacitance(1, 1.0);
    net.addConductance(0, 1, 1.0);
    // No bath anywhere: steady state undefined.
    EXPECT_DEATH(net.solveSteadyState({1.0, 0.0}), "singular");
}

TEST(RcNetwork, MinTimeConstant)
{
    RcNetwork net(2);
    net.setCapacitance(0, 1.0);
    net.setCapacitance(1, 4.0);
    net.addConductance(0, 1, 2.0);   // node0: C/G = 0.5
    net.addBathConductance(1, 2.0, 300.0); // node1: 4/4 = 1.0
    EXPECT_NEAR(net.minTimeConstant(), 0.5, 1e-12);
}

TEST(RcNetwork, BathConductanceAccumulatesAtSameTemperature)
{
    // Two baths at the same temperature behave as one with the summed
    // conductance.
    RcNetwork split(1);
    split.setCapacitance(0, 1.0);
    split.addBathConductance(0, 0.3, 300.0);
    split.addBathConductance(0, 0.2, 300.0);

    RcNetwork merged(1);
    merged.setCapacitance(0, 1.0);
    merged.addBathConductance(0, 0.5, 300.0);

    std::vector<Kelvin> a = split.solveSteadyState({5.0});
    std::vector<Kelvin> b = merged.solveSteadyState({5.0});
    EXPECT_EQ(a[0], b[0]);
    EXPECT_NEAR(a[0], 310.0, 1e-9);
}

TEST(RcNetwork, SecondBathAtDifferentTempCombinesWeighted)
{
    // g1=1 @ 350 K plus g2=3 @ 310 K must behave as g=4 @ 320 K —
    // NOT as g=4 @ 310 K, which the old last-writer-wins code produced.
    RcNetwork net(1);
    net.setCapacitance(0, 1.0);
    net.addBathConductance(0, 1.0, 350.0);
    net.addBathConductance(0, 3.0, 310.0);

    // With zero power the node floats to the effective bath temp.
    std::vector<Kelvin> t = net.solveSteadyState({0.0});
    EXPECT_NEAR(t[0], 320.0, 1e-9);

    // And with power it matches the equivalent single-bath network.
    RcNetwork merged(1);
    merged.setCapacitance(0, 1.0);
    merged.addBathConductance(0, 4.0, 320.0);
    EXPECT_NEAR(net.solveSteadyState({8.0})[0],
                merged.solveSteadyState({8.0})[0], 1e-9);
}

TEST(RcNetwork, ZeroConductanceBathKeepsExistingTemperature)
{
    // A zero conductance carries no heat; tying it to an arbitrary
    // temperature must not disturb the node.
    RcNetwork net(1);
    net.setCapacitance(0, 1.0);
    net.addBathConductance(0, 0.5, 300.0);
    net.addBathConductance(0, 0.0, 999.0);
    std::vector<Kelvin> t = net.solveSteadyState({5.0});
    EXPECT_NEAR(t[0], 310.0, 1e-9);
}

TEST(RcNetwork, CapacitanceEditAfterStepRefreshesSubstepCount)
{
    // Step once (priming the cached substep count), then make the
    // network 100x stiffer and step again. The result must be
    // bit-identical to a fresh network with the final capacitance
    // started from the intermediate temperatures — i.e. the cached
    // substep count must not be reused across the mutation.
    auto topo = [](double cap0) {
        RcNetwork net(2);
        net.setCapacitance(0, cap0);
        net.setCapacitance(1, 1.0);
        net.addConductance(0, 1, 1.0);
        net.addBathConductance(1, 0.5, 300.0);
        net.setAllTemps(305.0);
        return net;
    };
    std::vector<Watts> p{3.0, 0.0};

    RcNetwork mutated = topo(0.5);
    mutated.step(p, 0.1);

    RcNetwork fresh = topo(0.005);
    fresh.setTemp(0, mutated.temp(0));
    fresh.setTemp(1, mutated.temp(1));

    mutated.setCapacitance(0, 0.005);
    mutated.step(p, 0.1);
    fresh.step(p, 0.1);

    EXPECT_EQ(mutated.temp(0), fresh.temp(0));
    EXPECT_EQ(mutated.temp(1), fresh.temp(1));
}

TEST(RcNetwork, ScaleCapacitancesAfterStepRefreshesSubstepCount)
{
    auto topo = [] {
        RcNetwork net(2);
        net.setCapacitance(0, 0.4);
        net.setCapacitance(1, 2.0);
        net.addConductance(0, 1, 1.5);
        net.addBathConductance(1, 0.5, 300.0);
        net.setAllTemps(302.0);
        return net;
    };
    std::vector<Watts> p{2.0, 0.0};

    RcNetwork mutated = topo();
    mutated.step(p, 0.1);

    RcNetwork fresh = topo();
    fresh.scaleCapacitances(0.01);
    fresh.setTemp(0, mutated.temp(0));
    fresh.setTemp(1, mutated.temp(1));

    mutated.scaleCapacitances(0.01);
    mutated.step(p, 0.1);
    fresh.step(p, 0.1);

    EXPECT_EQ(mutated.temp(0), fresh.temp(0));
    EXPECT_EQ(mutated.temp(1), fresh.temp(1));
}

TEST(RcNetwork, InvalidMutationAfterStepIsFatal)
{
    // Mutators keep their guard rails after the hot path has been
    // primed.
    RcNetwork net(2);
    net.setCapacitance(0, 1.0);
    net.setCapacitance(1, 1.0);
    net.addConductance(0, 1, 1.0);
    net.addBathConductance(1, 0.5, 300.0);
    net.step({1.0, 0.0}, 0.1);
    EXPECT_DEATH(net.setCapacitance(0, 0.0), "positive");
    EXPECT_DEATH(net.addConductance(0, 1, -1.0), "negative");
    EXPECT_DEATH(net.addBathConductance(0, -1.0, 300.0), "negative");
}

TEST(RcNetwork, RepeatedSteadyStateSolvesAreBitIdentical)
{
    // The second solve reuses the cached factorisation; it must give
    // exactly the first solve's answer, and a different power vector
    // through the cached LU must match a cold solve on an identical
    // network.
    auto topo = [] {
        RcNetwork net(3);
        for (int i = 0; i < 3; ++i)
            net.setCapacitance(i, 0.1);
        net.addConductance(0, 1, 2.0);
        net.addConductance(1, 2, 3.0);
        net.addBathConductance(2, 1.0, 300.0);
        return net;
    };
    RcNetwork warm = topo();
    std::vector<Watts> p1{4.0, 1.0, 0.0};
    std::vector<Kelvin> first = warm.solveSteadyState(p1);
    std::vector<Kelvin> second = warm.solveSteadyState(p1);
    EXPECT_EQ(first, second);

    std::vector<Watts> p2{0.5, 2.5, 1.0};
    RcNetwork cold = topo();
    EXPECT_EQ(warm.solveSteadyState(p2), cold.solveSteadyState(p2));
}

TEST(RcNetwork, TopologyEditAfterSolveRefactorises)
{
    RcNetwork net(2);
    net.setCapacitance(0, 1.0);
    net.setCapacitance(1, 1.0);
    net.addConductance(0, 1, 1.0);
    net.addBathConductance(1, 1.0, 300.0);
    std::vector<Watts> p{2.0, 0.0};
    (void)net.solveSteadyState(p); // populate the LU cache

    net.addConductance(0, 1, 1.0); // now 2 W/K between the nodes
    std::vector<Kelvin> t = net.solveSteadyState(p);
    // T1 = 302, T0 = 302 + 2/2 = 303.
    EXPECT_NEAR(t[0], 303.0, 1e-9);
    EXPECT_NEAR(t[1], 302.0, 1e-9);
}

class RcStepSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(RcStepSweep, StepSizeInvariance)
{
    // Property: the trajectory endpoint is (approximately) independent
    // of how the interval is chopped.
    double dt = GetParam();
    RcNetwork net(1);
    net.setCapacitance(0, 0.2);
    net.addBathConductance(0, 1.0, 300.0);
    net.setTemp(0, 300.0);
    double total = 1.0;
    int steps = static_cast<int>(total / dt);
    for (int i = 0; i < steps; ++i)
        net.step({1.0}, dt);
    double expected = 301.0 - 1.0 * std::exp(-total / 0.2);
    EXPECT_NEAR(net.temp(0), expected, 0.02) << "dt=" << dt;
}

INSTANTIATE_TEST_SUITE_P(StepSizes, RcStepSweep,
                         ::testing::Values(0.001, 0.01, 0.05, 0.1, 0.5,
                                           1.0));

class RcBatchWidth : public ::testing::TestWithParam<int>
{
};

TEST_P(RcBatchWidth, StepBatchBitIdenticalToSoloStep)
{
    // Guard for the vectorised lane-inner multi-RHS kernel: every lane
    // of stepBatch must reproduce a solo step() of that lane's state
    // bit for bit (EXPECT_EQ on doubles, no tolerance), at every
    // supported width.
    const int n = 6;
    size_t lanes = static_cast<size_t>(GetParam());
    auto build = [&](RcNetwork &net) {
        for (int i = 0; i < n; ++i)
            net.setCapacitance(i, 0.1 + 0.03 * i);
        net.addConductance(0, 1, 2.0);
        net.addConductance(1, 2, 3.0);
        net.addConductance(2, 3, 1.5);
        net.addConductance(3, 4, 0.7);
        net.addConductance(4, 5, 2.2);
        net.addConductance(0, 5, 0.4);
        net.addConductance(1, 4, 1.1);
        net.addBathConductance(5, 1.0, 300.0);
        net.addBathConductance(2, 0.25, 318.0);
    };

    // Distinct per-lane state so an indexing slip cannot cancel out.
    std::vector<Kelvin> temps(static_cast<size_t>(n) * lanes);
    std::vector<Watts> power(static_cast<size_t>(n) * lanes);
    for (int i = 0; i < n; ++i) {
        for (size_t l = 0; l < lanes; ++l) {
            temps[static_cast<size_t>(i) * lanes + l] =
                300.0 + 3.0 * i + 0.37 * static_cast<double>(l);
            power[static_cast<size_t>(i) * lanes + l] =
                0.5 * i + 0.11 * static_cast<double>(l);
        }
    }

    RcNetwork batched(n);
    build(batched);
    std::vector<Kelvin> got = temps;
    double dt = 0.05;
    batched.stepBatch(power, got, static_cast<int>(lanes), dt);

    for (size_t l = 0; l < lanes; ++l) {
        RcNetwork solo(n);
        build(solo);
        std::vector<Watts> p(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
            size_t si = static_cast<size_t>(i);
            solo.setTemp(i, temps[si * lanes + l]);
            p[si] = power[si * lanes + l];
        }
        solo.step(p, dt);
        for (int i = 0; i < n; ++i) {
            EXPECT_EQ(solo.temp(i),
                      got[static_cast<size_t>(i) * lanes + l])
                << "lane " << l << " node " << i << " width " << lanes;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, RcBatchWidth,
                         ::testing::Values(2, 8, 32));

} // namespace
} // namespace hs
