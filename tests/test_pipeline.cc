/** @file Directed correctness tests for the SMT pipeline: programs
 *  must compute architecturally correct results, and the SMT-specific
 *  mechanisms (ICOUNT, shared structures, sedation/stall controls)
 *  must behave. */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "smt/pipeline.hh"

namespace hs {
namespace {

/** Run @p prog alone on a pipeline until it halts (or max cycles). */
Pipeline
runToHalt(const Program &prog, Cycles max_cycles = 200000)
{
    SmtParams params;
    params.numThreads = 1;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &prog);
    while (!pipe.allHalted() && pipe.cycle() < max_cycles)
        pipe.tick();
    EXPECT_TRUE(pipe.allHalted()) << "program did not halt";
    return pipe;
}

TEST(Pipeline, ArithmeticChain)
{
    Program p = assemble("addi r1, r0, 6\n"
                         "addi r2, r0, 7\n"
                         "mul r3, r1, r2\n"
                         "sub r4, r3, r1\n"
                         "halt\n");
    Pipeline pipe = runToHalt(p);
    EXPECT_EQ(pipe.thread(0).intRegs[3], 42);
    EXPECT_EQ(pipe.thread(0).intRegs[4], 36);
    EXPECT_EQ(pipe.committed(0), 5u);
}

TEST(Pipeline, RegisterZeroIsHardwiredZero)
{
    Program p = assemble("addi r1, r0, 5\n"
                         "add r2, r0, r0\n"
                         "halt\n");
    Pipeline pipe = runToHalt(p);
    EXPECT_EQ(pipe.thread(0).intRegs[0], 0);
    EXPECT_EQ(pipe.thread(0).intRegs[2], 0);
}

TEST(Pipeline, LoadStoreRoundTrip)
{
    Program p = assemble("addi r1, r0, 1234\n"
                         "addi r2, r0, 4096\n"
                         "st r1, 0(r2)\n"
                         "ld r3, 0(r2)\n"
                         "halt\n");
    Pipeline pipe = runToHalt(p);
    EXPECT_EQ(pipe.thread(0).intRegs[3], 1234);
}

TEST(Pipeline, StoreToLoadForwardingInFlight)
{
    // The store and load are adjacent: the load must see the store's
    // value through the LSQ before the store commits to memory.
    Program p = assemble("addi r1, r0, 99\n"
                         "addi r2, r0, 512\n"
                         "st r1, 0(r2)\n"
                         "ld r3, 0(r2)\n"
                         "add r4, r3, r3\n"
                         "halt\n");
    Pipeline pipe = runToHalt(p);
    EXPECT_EQ(pipe.thread(0).intRegs[3], 99);
    EXPECT_EQ(pipe.thread(0).intRegs[4], 198);
}

TEST(Pipeline, UncachedLoadReadsZero)
{
    Program p = assemble("addi r2, r0, 8192\n"
                         "ld r3, 0(r2)\n"
                         "halt\n");
    Pipeline pipe = runToHalt(p);
    EXPECT_EQ(pipe.thread(0).intRegs[3], 0);
}

TEST(Pipeline, CountedLoopProducesCorrectSum)
{
    // sum = 1 + 2 + ... + 10
    Program p = assemble("addi r1, r0, 10\n" // i = 10
                         "add r2, r0, r0\n"  // sum = 0
                         "loop:\n"
                         "add r2, r2, r1\n"
                         "addi r1, r1, -1\n"
                         "bne r1, r0, loop\n"
                         "halt\n");
    Pipeline pipe = runToHalt(p);
    EXPECT_EQ(pipe.thread(0).intRegs[2], 55);
}

TEST(Pipeline, TakenBranchSkipsInstructions)
{
    Program p = assemble("addi r1, r0, 1\n"
                         "beq r1, r1, over\n"
                         "addi r2, r0, 111\n" // must be skipped
                         "over:\n"
                         "addi r3, r0, 7\n"
                         "halt\n");
    Pipeline pipe = runToHalt(p);
    EXPECT_EQ(pipe.thread(0).intRegs[2], 0);
    EXPECT_EQ(pipe.thread(0).intRegs[3], 7);
}

TEST(Pipeline, DataDependentBranchBothPaths)
{
    // Loop 8 times; on odd i set r5, on even set r6; both sides must
    // execute the right number of times despite mispredictions.
    Program p = assemble("addi r1, r0, 8\n"
                         "add r5, r0, r0\n"
                         "add r6, r0, r0\n"
                         "loop:\n"
                         "andi r2, r1, 1\n"
                         "beq r2, r0, even\n"
                         "addi r5, r5, 1\n"
                         "jmp next\n"
                         "even:\n"
                         "addi r6, r6, 1\n"
                         "next:\n"
                         "addi r1, r1, -1\n"
                         "bne r1, r0, loop\n"
                         "halt\n");
    Pipeline pipe = runToHalt(p);
    EXPECT_EQ(pipe.thread(0).intRegs[5], 4);
    EXPECT_EQ(pipe.thread(0).intRegs[6], 4);
}

TEST(Pipeline, FpArithmetic)
{
    Program p = assemble("addi r1, r0, 3\n"
                         "addi r2, r0, 4\n"
                         "fcvt f1, r1\n"
                         "fcvt f2, r2\n"
                         "fmul f3, f1, f2\n"
                         "fadd f4, f3, f1\n"
                         "halt\n");
    Pipeline pipe = runToHalt(p);
    EXPECT_DOUBLE_EQ(pipe.thread(0).fpRegs[3], 12.0);
    EXPECT_DOUBLE_EQ(pipe.thread(0).fpRegs[4], 15.0);
}

TEST(Pipeline, FpLoadStoreRoundTrip)
{
    Program p = assemble("addi r1, r0, 9\n"
                         "addi r2, r0, 256\n"
                         "fcvt f1, r1\n"
                         "fst f1, 0(r2)\n"
                         "fld f2, 0(r2)\n"
                         "fadd f3, f2, f2\n"
                         "halt\n");
    Pipeline pipe = runToHalt(p);
    EXPECT_DOUBLE_EQ(pipe.thread(0).fpRegs[3], 18.0);
}

TEST(Pipeline, DivByZeroIsDefinedAsZero)
{
    Program p = assemble("addi r1, r0, 10\n"
                         "div r3, r1, r0\n"
                         "halt\n");
    Pipeline pipe = runToHalt(p);
    EXPECT_EQ(pipe.thread(0).intRegs[3], 0);
}

TEST(Pipeline, ShiftOperations)
{
    Program p = assemble("addi r1, r0, 1\n"
                         "slli r2, r1, 10\n"
                         "srli r3, r2, 3\n"
                         "addi r4, r0, -16\n"
                         "srai: sra r5, r4, r1\n"
                         "halt\n");
    Pipeline pipe = runToHalt(p);
    EXPECT_EQ(pipe.thread(0).intRegs[2], 1024);
    EXPECT_EQ(pipe.thread(0).intRegs[3], 128);
    EXPECT_EQ(pipe.thread(0).intRegs[5], -8);
}

TEST(Pipeline, InitRegsApplied)
{
    Program p = assemble("add r3, r1, r2\nhalt\n");
    p.setInitReg(1, 40);
    p.setInitReg(2, 2);
    Pipeline pipe = runToHalt(p);
    EXPECT_EQ(pipe.thread(0).intRegs[3], 42);
}

TEST(Pipeline, DataImageApplied)
{
    Program p = assemble("addi r2, r0, 64\nld r3, 0(r2)\nhalt\n");
    p.poke64(64, 777);
    Pipeline pipe = runToHalt(p);
    EXPECT_EQ(pipe.thread(0).intRegs[3], 777);
}

TEST(Pipeline, TwoThreadsBothProgress)
{
    Program a = assemble("top:\naddi r1, r1, 1\njmp top\n");
    Program b = assemble("top:\naddi r2, r2, 1\njmp top\n");
    SmtParams params;
    params.numThreads = 2;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &a);
    pipe.setThreadProgram(1, &b);
    for (int i = 0; i < 20000; ++i)
        pipe.tick();
    EXPECT_GT(pipe.committed(0), 1000u);
    EXPECT_GT(pipe.committed(1), 1000u);
    // ICOUNT should keep two identical threads roughly balanced.
    double ratio = static_cast<double>(pipe.committed(0)) /
                   static_cast<double>(pipe.committed(1));
    EXPECT_GT(ratio, 0.7);
    EXPECT_LT(ratio, 1.4);
}

TEST(Pipeline, ThreadsHaveSeparateAddressSpaces)
{
    // Both threads store different values at the same virtual address;
    // each must read back its own.
    Program a = assemble("addi r1, r0, 11\naddi r2, r0, 128\n"
                         "st r1, 0(r2)\nld r3, 0(r2)\nhalt\n");
    Program b = assemble("addi r1, r0, 22\naddi r2, r0, 128\n"
                         "st r1, 0(r2)\nld r3, 0(r2)\nhalt\n");
    SmtParams params;
    params.numThreads = 2;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &a);
    pipe.setThreadProgram(1, &b);
    while (!pipe.allHalted() && pipe.cycle() < 100000)
        pipe.tick();
    ASSERT_TRUE(pipe.allHalted());
    EXPECT_EQ(pipe.thread(0).intRegs[3], 11);
    EXPECT_EQ(pipe.thread(1).intRegs[3], 22);
}

TEST(Pipeline, SedationStopsFetchForThatThreadOnly)
{
    Program a = assemble("top:\naddi r1, r1, 1\njmp top\n");
    Program b = assemble("top:\naddi r2, r2, 1\njmp top\n");
    SmtParams params;
    params.numThreads = 2;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &a);
    pipe.setThreadProgram(1, &b);
    for (int i = 0; i < 5000; ++i)
        pipe.tick();
    uint64_t before0 = pipe.committed(0);
    uint64_t before1 = pipe.committed(1);
    pipe.setSedated(1, true);
    for (int i = 0; i < 5000; ++i)
        pipe.tick();
    uint64_t delta0 = pipe.committed(0) - before0;
    uint64_t delta1 = pipe.committed(1) - before1;
    EXPECT_GT(delta0, 2000u);   // victim keeps running
    EXPECT_LT(delta1, 200u);    // sedated thread only drains
    EXPECT_GT(pipe.thread(1).sedationCycles, 4000u);

    // Un-sedate: the thread resumes.
    pipe.setSedated(1, false);
    uint64_t before1b = pipe.committed(1);
    for (int i = 0; i < 5000; ++i)
        pipe.tick();
    EXPECT_GT(pipe.committed(1) - before1b, 1000u);
}

TEST(Pipeline, GlobalStallFreezesEverything)
{
    Program a = assemble("top:\naddi r1, r1, 1\njmp top\n");
    SmtParams params;
    params.numThreads = 1;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &a);
    for (int i = 0; i < 1000; ++i)
        pipe.tick();
    pipe.setGlobalStall(true);
    uint64_t before = pipe.committed(0);
    Cycles active_before = pipe.activeCycles();
    for (int i = 0; i < 1000; ++i)
        pipe.tick();
    EXPECT_EQ(pipe.committed(0), before);
    EXPECT_EQ(pipe.activeCycles(), active_before);
    EXPECT_GE(pipe.thread(0).coolingCycles, 1000u);
    pipe.setGlobalStall(false);
    for (int i = 0; i < 1000; ++i)
        pipe.tick();
    EXPECT_GT(pipe.committed(0), before);
}

TEST(Pipeline, AdvanceStalledMatchesTickAccounting)
{
    Program a = assemble("top:\naddi r1, r1, 1\njmp top\n");
    SmtParams params;
    params.numThreads = 1;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &a);
    for (int i = 0; i < 100; ++i)
        pipe.tick();
    pipe.setGlobalStall(true);
    Cycles c0 = pipe.cycle();
    uint64_t cool0 = pipe.thread(0).coolingCycles;
    pipe.advanceStalled(5000);
    EXPECT_EQ(pipe.cycle(), c0 + 5000);
    EXPECT_EQ(pipe.thread(0).coolingCycles, cool0 + 5000);
}

TEST(Pipeline, ThrottleSlowsProgress)
{
    Program a = assemble("top:\naddi r1, r1, 1\njmp top\n");
    SmtParams params;
    params.numThreads = 1;
    Pipeline full(params), half(params);
    full.setThreadProgram(0, &a);
    half.setThreadProgram(0, &a);
    half.setThrottle(2);
    for (int i = 0; i < 20000; ++i) {
        full.tick();
        half.tick();
    }
    double ratio = static_cast<double>(half.committed(0)) /
                   static_cast<double>(full.committed(0));
    EXPECT_NEAR(ratio, 0.5, 0.1);
}

TEST(Pipeline, ActivityCountersTrackRegfileAccesses)
{
    // Each add reads 2 and writes 1 integer register.
    Program p = assemble("add r1, r2, r3\n"
                         "add r4, r5, r6\n"
                         "halt\n");
    Pipeline pipe = runToHalt(p);
    // 2 adds * 3 accesses; halt contributes nothing.
    EXPECT_EQ(pipe.activity().count(0, Block::IntReg), 6u);
}

TEST(Pipeline, RuuOccupancyBounded)
{
    Program p = assemble("top:\naddi r1, r1, 1\njmp top\n");
    SmtParams params;
    params.numThreads = 1;
    params.ruuEntries = 16;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &p);
    for (int i = 0; i < 10000; ++i) {
        pipe.tick();
        EXPECT_LE(pipe.ruuOccupancy(), 16);
        EXPECT_GE(pipe.ruuOccupancy(), 0);
    }
}

TEST(Pipeline, LsqOccupancyBounded)
{
    Program p = assemble("top:\nld r1, 0(r2)\nst r1, 8(r2)\njmp top\n");
    SmtParams params;
    params.numThreads = 1;
    params.lsqEntries = 4;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &p);
    for (int i = 0; i < 10000; ++i) {
        pipe.tick();
        EXPECT_LE(pipe.lsqOccupancy(), 4);
    }
    EXPECT_GT(pipe.committed(0), 100u);
}

TEST(Pipeline, L2MissSquashStillComputesCorrectly)
{
    // A chain of loads at 256 KB strides (same L2 set) forces L2
    // misses and squashes; results must still be architecturally
    // correct.
    Program p = assemble("addi r2, r0, 0\n"
                         "addi r5, r0, 3\n"
                         "addi r1, r0, 123\n"
                         "st r1, 0(r2)\n"
                         "st r1, 262144(r2)\n"
                         "loop:\n"
                         "ld r3, 0(r2)\n"
                         "ld r4, 262144(r2)\n"
                         "addi r5, r5, -1\n"
                         "bne r5, r0, loop\n"
                         "add r6, r3, r4\n"
                         "halt\n");
    Pipeline pipe = runToHalt(p, 1000000);
    EXPECT_EQ(pipe.thread(0).intRegs[6], 246);
}

TEST(Pipeline, HighIpcThreadDominatesUnderIcount)
{
    // The paper's variant1 observation: under ICOUNT a high-IPC thread
    // takes a larger share of the machine than a stall-prone thread.
    Program fast = assemble("top:\n"
                            "add r10, r24, r25\n"
                            "add r11, r24, r25\n"
                            "add r12, r24, r25\n"
                            "add r13, r24, r25\n"
                            "add r14, r24, r25\n"
                            "add r15, r24, r25\n"
                            "add r16, r24, r25\n"
                            "jmp top\n");
    // Nine loads mapping to one set of the 8-way L2 (the paper's
    // Figure 2 conflict trick): misses never stop, IPC stays low.
    std::string slow_src = "addi r2, r0, 0\ntop:\n";
    for (int i = 0; i < 9; ++i)
        slow_src += "ld r3, " + std::to_string(i * 262144) + "(r2)\n";
    slow_src += "jmp top\n";
    Program slow = assemble(slow_src);
    SmtParams params;
    params.numThreads = 2;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &fast);
    pipe.setThreadProgram(1, &slow);
    for (int i = 0; i < 50000; ++i)
        pipe.tick();
    EXPECT_GT(pipe.committed(0), 10 * pipe.committed(1));
}

} // namespace
} // namespace hs
