/** @file Tests for the canned experiment configurations. */

#include <cstdlib>

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace hs {
namespace {

TEST(Experiment, ConfigScalesQuantumAndThermals)
{
    ExperimentOptions opts;
    opts.timeScale = 50.0;
    SimConfig cfg = makeSimConfig(opts);
    EXPECT_EQ(cfg.quantumCycles, 10000000u); // 500M / 50
    EXPECT_DOUBLE_EQ(cfg.thermal.timeScale, 50.0);
    // Recheck = 2 * 12.5 ms * 4 GHz / 50 = 2 M cycles.
    EXPECT_EQ(cfg.sedation.recheckCycles, 2000000u);
}

TEST(Experiment, PaperScaleConfig)
{
    ExperimentOptions opts;
    opts.timeScale = 1.0;
    SimConfig cfg = makeSimConfig(opts);
    EXPECT_EQ(cfg.quantumCycles, 500000000u);
    EXPECT_EQ(cfg.sedation.recheckCycles, 100000000u);
    EXPECT_EQ(cfg.sedation.ewmaShift, 9); // x = 1/512 (Section 4)
}

TEST(Experiment, ScaledRunsUseShorterEwmaWindow)
{
    ExperimentOptions opts;
    opts.timeScale = 50.0;
    EXPECT_EQ(makeSimConfig(opts).sedation.ewmaShift, 7);
}

TEST(Experiment, IdealSinkDisablesDtm)
{
    ExperimentOptions opts;
    opts.sink = SinkType::Ideal;
    opts.dtm = DtmMode::StopAndGo;
    SimConfig cfg = makeSimConfig(opts);
    EXPECT_TRUE(cfg.thermal.idealSink);
    EXPECT_EQ(cfg.dtm, DtmMode::None);
}

TEST(Experiment, ConvectionResistancePlumbs)
{
    ExperimentOptions opts;
    opts.convectionR = 0.4;
    EXPECT_DOUBLE_EQ(makeSimConfig(opts).thermal.convectionR, 0.4);
}

TEST(Experiment, ThresholdsPlumb)
{
    ExperimentOptions opts;
    opts.upperThreshold = 357.0;
    opts.lowerThreshold = 355.5;
    SimConfig cfg = makeSimConfig(opts);
    EXPECT_DOUBLE_EQ(cfg.sedation.upperThreshold, 357.0);
    EXPECT_DOUBLE_EQ(cfg.sedation.lowerThreshold, 355.5);
}

TEST(Experiment, MaliciousParamsScale)
{
    ExperimentOptions opts;
    opts.timeScale = 100.0;
    MaliciousParams mp = makeMaliciousParams(opts);
    EXPECT_EQ(mp.hammerIters, MaliciousParams{}.hammerIters / 100);
}

TEST(Experiment, EnvScaleOverride)
{
    setenv("HS_SCALE", "123", 1);
    EXPECT_DOUBLE_EQ(envTimeScale(50.0), 123.0);
    unsetenv("HS_SCALE");
    EXPECT_DOUBLE_EQ(envTimeScale(50.0), 50.0);
}

TEST(ExperimentDeathTest, EnvScaleRejectsGarbage)
{
    setenv("HS_SCALE", "garbage", 1);
    EXPECT_EXIT(envTimeScale(50.0), testing::ExitedWithCode(1),
                "HS_SCALE");
    setenv("HS_SCALE", "-2", 1);
    EXPECT_EXIT(envTimeScale(50.0), testing::ExitedWithCode(1),
                "HS_SCALE");
    setenv("HS_SCALE", "50x", 1);
    EXPECT_EXIT(envTimeScale(50.0), testing::ExitedWithCode(1),
                "HS_SCALE");
    unsetenv("HS_SCALE");
}

TEST(Experiment, RunSoloSmoke)
{
    ExperimentOptions opts;
    opts.timeScale = 2000.0; // 250 K-cycle quantum: fast smoke
    RunResult r = runSolo("gzip", opts);
    ASSERT_EQ(r.threads.size(), 1u);
    EXPECT_EQ(r.threads[0].program, "gzip");
    EXPECT_GT(r.threads[0].ipc, 0.1);
}

TEST(Experiment, RunPairSmoke)
{
    ExperimentOptions opts;
    opts.timeScale = 2000.0;
    RunResult r = runSpecPair("gzip", "mesa", opts);
    ASSERT_EQ(r.threads.size(), 2u);
    EXPECT_GT(r.threads[0].committed, 0u);
    EXPECT_GT(r.threads[1].committed, 0u);
}

TEST(Experiment, RunWithVariantSmoke)
{
    ExperimentOptions opts;
    opts.timeScale = 2000.0;
    RunResult r = runWithVariant("gzip", 1, opts);
    ASSERT_EQ(r.threads.size(), 2u);
    EXPECT_EQ(r.threads[1].program, "variant1");
    // The hammer out-accesses the SPEC program.
    EXPECT_GT(r.threads[1].intRegAccessRate,
              r.threads[0].intRegAccessRate);
}

} // namespace
} // namespace hs
