/** @file Unit tests for the floorplan geometry and adjacency. */

#include <algorithm>

#include <gtest/gtest.h>

#include "thermal/floorplan.hh"
#include "thermal/thermal_model.hh"

namespace hs {
namespace {

bool
adjacent(const Floorplan &fp, Block a, Block b)
{
    for (const Adjacency &adj : fp.adjacencies()) {
        if ((adj.a == a && adj.b == b) || (adj.a == b && adj.b == a))
            return true;
    }
    return false;
}

TEST(Floorplan, Ev6TilesTheDie)
{
    Floorplan fp = Floorplan::ev6();
    // 16 x 16 mm die, fully tiled by the blocks.
    EXPECT_NEAR(fp.dieArea(), 256e-6, 1e-9);
}

TEST(Floorplan, AllAreasPositive)
{
    Floorplan fp = Floorplan::ev6();
    for (int b = 0; b < numBlocks; ++b)
        EXPECT_GT(fp.area(blockFromIndex(b)), 0.0);
}

TEST(Floorplan, IntRegIsASmallBlock)
{
    // The attack target must be a high-power-density (small) block:
    // well under 2% of the die.
    Floorplan fp = Floorplan::ev6();
    EXPECT_LT(fp.area(Block::IntReg), 0.02 * fp.dieArea());
}

TEST(Floorplan, ExpectedNeighbours)
{
    Floorplan fp = Floorplan::ev6();
    // Icache and Dcache sit side by side; Bpred is above Icache.
    EXPECT_TRUE(adjacent(fp, Block::Icache, Block::Dcache));
    EXPECT_TRUE(adjacent(fp, Block::Icache, Block::Bpred));
    // IntReg touches IntExec in the integer cluster.
    EXPECT_TRUE(adjacent(fp, Block::IntReg, Block::IntExec));
    // The L2 bottom band touches the left band.
    EXPECT_TRUE(adjacent(fp, Block::L2, Block::L2Left));
}

TEST(Floorplan, NonNeighboursExcluded)
{
    Floorplan fp = Floorplan::ev6();
    // Diagonal or distant blocks must not be adjacent.
    EXPECT_FALSE(adjacent(fp, Block::IntReg, Block::L2));
    EXPECT_FALSE(adjacent(fp, Block::Bpred, Block::LdStQ));
}

TEST(Floorplan, SharedEdgesPositiveAndBounded)
{
    Floorplan fp = Floorplan::ev6();
    EXPECT_FALSE(fp.adjacencies().empty());
    for (const Adjacency &adj : fp.adjacencies()) {
        EXPECT_GT(adj.sharedEdge, 0.0);
        const Rect &ra = fp.rect(adj.a);
        const Rect &rb = fp.rect(adj.b);
        double max_edge = std::min(std::max(ra.w, ra.h),
                                   std::max(rb.w, rb.h));
        EXPECT_LE(adj.sharedEdge, max_edge + 1e-9);
    }
}

TEST(Floorplan, NoSelfOrDuplicateAdjacency)
{
    Floorplan fp = Floorplan::ev6();
    const auto &adj = fp.adjacencies();
    for (size_t i = 0; i < adj.size(); ++i) {
        EXPECT_NE(adj[i].a, adj[i].b);
        for (size_t j = i + 1; j < adj.size(); ++j) {
            bool same = (adj[i].a == adj[j].a && adj[i].b == adj[j].b) ||
                        (adj[i].a == adj[j].b && adj[i].b == adj[j].a);
            EXPECT_FALSE(same);
        }
    }
}

TEST(Floorplan, ScaledShrinksAreasQuadratically)
{
    Floorplan fp = Floorplan::ev6();
    Floorplan half = fp.scaled(0.5);
    EXPECT_NEAR(half.dieArea(), fp.dieArea() / 4, 1e-12);
    EXPECT_NEAR(half.area(Block::IntReg), fp.area(Block::IntReg) / 4,
                1e-12);
    // Adjacency structure is preserved.
    EXPECT_EQ(half.adjacencies().size(), fp.adjacencies().size());
}

TEST(Floorplan, ScaledRejectsNonPositive)
{
    Floorplan fp = Floorplan::ev6();
    EXPECT_DEATH(fp.scaled(0.0), "positive");
}

TEST(Floorplan, ShrunkDieRunsHotterAtSamePower)
{
    // The Section 1 motivation: same power, smaller area, higher
    // temperature.
    ThermalParams shrunk;
    shrunk.dieShrink = 0.8;
    ThermalModel small(Floorplan::ev6(), shrunk);
    ThermalModel big(Floorplan::ev6(), {});
    std::vector<Watts> p(static_cast<size_t>(numBlocks), 2.0);
    small.initSteadyState(p);
    big.initSteadyState(p);
    EXPECT_GT(small.blockTemp(Block::IntReg),
              big.blockTemp(Block::IntReg) + 2.0);
}

TEST(Floorplan, RejectsWrongBlockCount)
{
    std::vector<Rect> rects(3, Rect{0, 0, 1e-3, 1e-3});
    EXPECT_DEATH(Floorplan fp(rects), "expected");
}

TEST(Floorplan, RejectsZeroArea)
{
    std::vector<Rect> rects(static_cast<size_t>(numBlocks),
                            Rect{0, 0, 1e-3, 1e-3});
    rects[3] = Rect{0, 0, 0, 1e-3};
    EXPECT_DEATH(Floorplan fp(rects), "area");
}

} // namespace
} // namespace hs
