/**
 * @file
 * Bit-identity of the sparse/cached RcNetwork kernels against the
 * pre-optimisation dense implementation.
 *
 * DenseRc below is a line-for-line copy of the reference solver as it
 * stood before the CSR adjacency, lazy diagonal, cached substep count
 * and cached LU factorisation were introduced: eager O(n^2) diagonal
 * refresh on every insert, dense `if (g != 0)` row scans in the RK2
 * derivative, and a from-scratch Gaussian elimination per steady-state
 * solve. The optimised RcNetwork must reproduce its trajectories and
 * solves BIT-identically (EXPECT_EQ on doubles, no tolerance): the
 * optimisations reorder work, never arithmetic.
 *
 * Topologies, capacitances, powers and step sizes are randomised with
 * fixed hs::Rng seeds so the comparison covers shapes beyond the EV6
 * floorplan while staying reproducible.
 */

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "thermal/rc_network.hh"

namespace hs {
namespace {

/** The pre-optimisation dense reference (see file comment). */
class DenseRc
{
  public:
    explicit DenseRc(int n)
        : n_(n),
          g_(static_cast<size_t>(n) * static_cast<size_t>(n), 0.0),
          bathG_(static_cast<size_t>(n), 0.0),
          bathT_(static_cast<size_t>(n), 0.0),
          cap_(static_cast<size_t>(n), 1.0),
          diagG_(static_cast<size_t>(n), 0.0),
          temps_(static_cast<size_t>(n), 300.0)
    {
    }

    void
    addConductance(int a, int b, double g)
    {
        gAt(a, b) += g;
        gAt(b, a) += g;
        refreshDiag();
    }

    void
    addBathConductance(int node, double g, Kelvin bath_temp)
    {
        bathG_[static_cast<size_t>(node)] += g;
        bathT_[static_cast<size_t>(node)] = bath_temp;
        refreshDiag();
    }

    void setCapacitance(int node, double c)
    {
        cap_[static_cast<size_t>(node)] = c;
    }

    void setTemp(int node, Kelvin t)
    {
        temps_[static_cast<size_t>(node)] = t;
    }

    void
    scaleCapacitances(double factor)
    {
        for (double &c : cap_)
            c *= factor;
    }

    Kelvin temp(int node) const
    {
        return temps_[static_cast<size_t>(node)];
    }

    double
    minTimeConstant() const
    {
        double tau = std::numeric_limits<double>::infinity();
        for (int i = 0; i < n_; ++i) {
            double g = diagG_[static_cast<size_t>(i)];
            if (g > 0)
                tau = std::min(tau, cap_[static_cast<size_t>(i)] / g);
        }
        return tau;
    }

    void
    step(const std::vector<Watts> &power, double dt)
    {
        if (dt <= 0)
            return;
        double tau = minTimeConstant();
        int substeps = 1;
        if (std::isfinite(tau) && tau > 0)
            substeps = std::max(
                1, static_cast<int>(std::ceil(dt / (0.1 * tau))));
        double h = dt / substeps;

        auto derivative = [&](const std::vector<Kelvin> &t,
                              std::vector<double> &d) {
            for (int i = 0; i < n_; ++i) {
                size_t si = static_cast<size_t>(i);
                double flow =
                    power[si] + bathG_[si] * (bathT_[si] - t[si]);
                for (int j = 0; j < n_; ++j) {
                    double g = gAt(i, j);
                    if (g != 0.0)
                        flow += g * (t[static_cast<size_t>(j)] - t[si]);
                }
                d[si] = flow / cap_[si];
            }
        };

        std::vector<double> k1(static_cast<size_t>(n_));
        std::vector<double> k2(static_cast<size_t>(n_));
        std::vector<Kelvin> mid(static_cast<size_t>(n_));
        for (int s = 0; s < substeps; ++s) {
            derivative(temps_, k1);
            for (int i = 0; i < n_; ++i) {
                size_t si = static_cast<size_t>(i);
                mid[si] = temps_[si] + 0.5 * h * k1[si];
            }
            derivative(mid, k2);
            for (int i = 0; i < n_; ++i) {
                size_t si = static_cast<size_t>(i);
                temps_[si] += h * k2[si];
            }
        }
    }

    std::vector<Kelvin>
    solveSteadyState(const std::vector<Watts> &power) const
    {
        int n = n_;
        std::vector<double> a(static_cast<size_t>(n) *
                              static_cast<size_t>(n));
        std::vector<double> b(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) {
            size_t si = static_cast<size_t>(i);
            for (int j = 0; j < n; ++j)
                a[si * static_cast<size_t>(n) +
                  static_cast<size_t>(j)] =
                    (i == j) ? diagG_[si] : -gAt(i, j);
            b[si] = power[si] + bathG_[si] * bathT_[si];
        }
        auto at = [&](int r, int c) -> double & {
            return a[static_cast<size_t>(r) * static_cast<size_t>(n) +
                     static_cast<size_t>(c)];
        };
        for (int col = 0; col < n; ++col) {
            int pivot = col;
            double best = std::abs(at(col, col));
            for (int row = col + 1; row < n; ++row) {
                double v = std::abs(at(row, col));
                if (v > best) {
                    best = v;
                    pivot = row;
                }
            }
            if (pivot != col) {
                for (int j = 0; j < n; ++j)
                    std::swap(at(col, j), at(pivot, j));
                std::swap(b[static_cast<size_t>(col)],
                          b[static_cast<size_t>(pivot)]);
            }
            double diag = at(col, col);
            for (int row = col + 1; row < n; ++row) {
                double factor = at(row, col) / diag;
                if (factor == 0.0)
                    continue;
                for (int j = col; j < n; ++j)
                    at(row, j) -= factor * at(col, j);
                b[static_cast<size_t>(row)] -=
                    factor * b[static_cast<size_t>(col)];
            }
        }
        std::vector<Kelvin> t(static_cast<size_t>(n));
        for (int row = n - 1; row >= 0; --row) {
            double sum = b[static_cast<size_t>(row)];
            for (int j = row + 1; j < n; ++j)
                sum -= at(row, j) * t[static_cast<size_t>(j)];
            t[static_cast<size_t>(row)] = sum / at(row, row);
        }
        return t;
    }

  private:
    void
    refreshDiag()
    {
        for (int i = 0; i < n_; ++i) {
            double sum = bathG_[static_cast<size_t>(i)];
            for (int j = 0; j < n_; ++j)
                sum += gAt(i, j);
            diagG_[static_cast<size_t>(i)] = sum;
        }
    }

    double &gAt(int a, int b)
    {
        return g_[static_cast<size_t>(a) * static_cast<size_t>(n_) +
                  static_cast<size_t>(b)];
    }
    double gAt(int a, int b) const
    {
        return g_[static_cast<size_t>(a) * static_cast<size_t>(n_) +
                  static_cast<size_t>(b)];
    }

    int n_;
    std::vector<double> g_, bathG_, bathT_, cap_, diagG_;
    std::vector<Kelvin> temps_;
};

/** A random connected-ish topology built identically on both solvers.
 *  Baths are added at most once per node (the reference has the
 *  last-writer-wins bath-temperature bug the optimised network fixes;
 *  single baths keep the two semantically equal). */
struct TopoPair
{
    RcNetwork opt;
    DenseRc ref;
    std::vector<Watts> power;

    explicit TopoPair(int n) : opt(n), ref(n), power(static_cast<size_t>(n))
    {
    }
};

TopoPair
randomTopology(uint64_t seed, int n)
{
    Rng rng(seed);
    TopoPair tp(n);

    for (int i = 0; i < n; ++i) {
        double c = 0.01 + rng.nextDouble() * 2.0;
        tp.opt.setCapacitance(i, c);
        tp.ref.setCapacitance(i, c);
    }
    // A chain guarantees connectivity; extra random edges add fill-in.
    for (int i = 0; i + 1 < n; ++i) {
        double g = 0.1 + rng.nextDouble() * 5.0;
        tp.opt.addConductance(i, i + 1, g);
        tp.ref.addConductance(i, i + 1, g);
    }
    for (int i = 0; i < n; ++i) {
        for (int j = i + 2; j < n; ++j) {
            if (rng.nextDouble() < 0.3) {
                double g = 0.05 + rng.nextDouble() * 2.0;
                tp.opt.addConductance(i, j, g);
                tp.ref.addConductance(i, j, g);
            }
        }
    }
    // At least one bath (node 0), more at random.
    for (int i = 0; i < n; ++i) {
        if (i == 0 || rng.nextDouble() < 0.25) {
            double g = 0.2 + rng.nextDouble() * 1.5;
            Kelvin t = 290.0 + rng.nextDouble() * 30.0;
            tp.opt.addBathConductance(i, g, t);
            tp.ref.addBathConductance(i, g, t);
        }
    }
    for (int i = 0; i < n; ++i) {
        Kelvin t0 = 295.0 + rng.nextDouble() * 40.0;
        tp.opt.setTemp(i, t0);
        tp.ref.setTemp(i, t0);
        tp.power[static_cast<size_t>(i)] = rng.nextDouble() * 8.0;
    }
    return tp;
}

class ThermalBitIdent : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ThermalBitIdent, StepTrajectoriesAreBitIdentical)
{
    uint64_t seed = GetParam();
    Rng rng(seed ^ 0x5afe);
    int n = 2 + static_cast<int>(rng.nextBounded(23));
    TopoPair tp = randomTopology(seed, n);

    for (int s = 0; s < 40; ++s) {
        double dt = 0.001 + rng.nextDouble() * 0.5;
        tp.opt.step(tp.power, dt);
        tp.ref.step(tp.power, dt);
        for (int i = 0; i < n; ++i) {
            // Bitwise: any tolerance here would hide a reordered sum.
            ASSERT_EQ(tp.opt.temp(i), tp.ref.temp(i))
                << "seed=" << seed << " step=" << s << " node=" << i;
        }
    }
}

TEST_P(ThermalBitIdent, SteadyStateSolvesAreBitIdentical)
{
    uint64_t seed = GetParam();
    Rng rng(seed ^ 0xdead);
    int n = 2 + static_cast<int>(rng.nextBounded(23));
    TopoPair tp = randomTopology(seed, n);

    // Repeated solves exercise the cached factorisation (first solve
    // factorises, later ones only replay pivots + back-substitute).
    for (int round = 0; round < 3; ++round) {
        std::vector<Kelvin> a = tp.opt.solveSteadyState(tp.power);
        std::vector<Kelvin> b = tp.ref.solveSteadyState(tp.power);
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i) {
            ASSERT_EQ(a[i], b[i])
                << "seed=" << seed << " round=" << round
                << " node=" << i;
        }
        // New power vector: the cached LU must give the same answer the
        // reference recomputes from scratch.
        for (Watts &p : tp.power)
            p = rng.nextDouble() * 10.0;
    }
}

TEST_P(ThermalBitIdent, MutationAfterUseStaysBitIdentical)
{
    // Interleave solves/steps with topology and capacitance edits: the
    // lazy caches must always be invalidated back to dense behaviour.
    uint64_t seed = GetParam();
    Rng rng(seed ^ 0xfeed);
    int n = 3 + static_cast<int>(rng.nextBounded(20));
    TopoPair tp = randomTopology(seed, n);

    for (int round = 0; round < 5; ++round) {
        tp.opt.step(tp.power, 0.05);
        tp.ref.step(tp.power, 0.05);

        switch (rng.nextBounded(3)) {
          case 0: {
            int a = static_cast<int>(rng.nextBounded(
                static_cast<uint64_t>(n)));
            int b = (a + 1 + static_cast<int>(rng.nextBounded(
                                 static_cast<uint64_t>(n - 1)))) % n;
            double g = 0.1 + rng.nextDouble();
            tp.opt.addConductance(a, b, g);
            tp.ref.addConductance(a, b, g);
            break;
          }
          case 1: {
            int node = static_cast<int>(rng.nextBounded(
                static_cast<uint64_t>(n)));
            double c = 0.02 + rng.nextDouble();
            tp.opt.setCapacitance(node, c);
            tp.ref.setCapacitance(node, c);
            break;
          }
          default: {
            double f = 0.5 + rng.nextDouble();
            tp.opt.scaleCapacitances(f);
            tp.ref.scaleCapacitances(f);
            break;
          }
        }

        tp.opt.step(tp.power, 0.02);
        tp.ref.step(tp.power, 0.02);
        for (int i = 0; i < n; ++i)
            ASSERT_EQ(tp.opt.temp(i), tp.ref.temp(i))
                << "seed=" << seed << " round=" << round
                << " node=" << i;

        std::vector<Kelvin> a = tp.opt.solveSteadyState(tp.power);
        std::vector<Kelvin> b = tp.ref.solveSteadyState(tp.power);
        for (size_t i = 0; i < a.size(); ++i)
            ASSERT_EQ(a[i], b[i])
                << "seed=" << seed << " round=" << round
                << " node=" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThermalBitIdent,
                         ::testing::Values(1u, 2u, 3u, 17u, 42u, 1234u,
                                           0xabcdefu, 99991u));

} // namespace
} // namespace hs
