/** @file Property tests for ALU opcode semantics: the pipeline's
 *  results for randomized operands must match direct C++ reference
 *  semantics for every operation. */

#include <functional>

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/assembler.hh"
#include "smt/pipeline.hh"

namespace hs {
namespace {

/** Run `op r3, r1, r2` (or immediate form) and return r3. */
int64_t
evalRegReg(const char *mnem, int64_t a, int64_t b)
{
    Program p = assemble(std::string(mnem) + " r3, r1, r2\nhalt\n");
    p.setInitReg(1, a);
    p.setInitReg(2, b);
    SmtParams params;
    params.numThreads = 1;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &p);
    while (!pipe.allHalted() && pipe.cycle() < 10000)
        pipe.tick();
    EXPECT_TRUE(pipe.allHalted());
    return pipe.thread(0).intRegs[3];
}

int64_t
evalImm(const char *mnem, int64_t a, int64_t imm)
{
    Program p = assemble(strprintf("%s r3, r1, %lld\nhalt\n", mnem,
                                   static_cast<long long>(imm)));
    p.setInitReg(1, a);
    SmtParams params;
    params.numThreads = 1;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &p);
    while (!pipe.allHalted() && pipe.cycle() < 10000)
        pipe.tick();
    EXPECT_TRUE(pipe.allHalted());
    return pipe.thread(0).intRegs[3];
}

struct RegRegCase
{
    const char *mnem;
    std::function<int64_t(int64_t, int64_t)> ref;
};

class AluSemantics : public ::testing::TestWithParam<RegRegCase>
{
};

TEST_P(AluSemantics, MatchesReferenceOnRandomOperands)
{
    const RegRegCase &c = GetParam();
    Rng rng(std::hash<std::string>{}(c.mnem));
    for (int i = 0; i < 12; ++i) {
        int64_t a = rng.range(-1000000, 1000000);
        int64_t b = rng.range(-1000, 1000);
        EXPECT_EQ(evalRegReg(c.mnem, a, b), c.ref(a, b))
            << c.mnem << " " << a << ", " << b;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluSemantics,
    ::testing::Values(
        RegRegCase{"add", [](int64_t a, int64_t b) { return a + b; }},
        RegRegCase{"sub", [](int64_t a, int64_t b) { return a - b; }},
        RegRegCase{"mul", [](int64_t a, int64_t b) { return a * b; }},
        RegRegCase{"div",
                   [](int64_t a, int64_t b) {
                       return b == 0 ? 0 : a / b;
                   }},
        RegRegCase{"and", [](int64_t a, int64_t b) { return a & b; }},
        RegRegCase{"or", [](int64_t a, int64_t b) { return a | b; }},
        RegRegCase{"xor", [](int64_t a, int64_t b) { return a ^ b; }},
        RegRegCase{"slt",
                   [](int64_t a, int64_t b) {
                       return static_cast<int64_t>(a < b);
                   }},
        RegRegCase{"sll",
                   [](int64_t a, int64_t b) {
                       return a << (b & 63);
                   }},
        RegRegCase{"srl",
                   [](int64_t a, int64_t b) {
                       return static_cast<int64_t>(
                           static_cast<uint64_t>(a) >> (b & 63));
                   }},
        RegRegCase{"sra",
                   [](int64_t a, int64_t b) {
                       return a >> (b & 63);
                   }}),
    [](const ::testing::TestParamInfo<RegRegCase> &info) {
        return std::string(info.param.mnem);
    });

TEST(AluSemantics, ImmediateForms)
{
    Rng rng(99);
    for (int i = 0; i < 10; ++i) {
        int64_t a = rng.range(-100000, 100000);
        int64_t imm = rng.range(-512, 512);
        EXPECT_EQ(evalImm("addi", a, imm), a + imm);
        EXPECT_EQ(evalImm("andi", a, imm), a & imm);
        EXPECT_EQ(evalImm("ori", a, imm), a | imm);
        EXPECT_EQ(evalImm("xori", a, imm), a ^ imm);
        EXPECT_EQ(evalImm("slti", a, imm),
                  static_cast<int64_t>(a < imm));
    }
    EXPECT_EQ(evalImm("slli", 3, 4), 48);
    EXPECT_EQ(evalImm("srli", 48, 4), 3);
}

TEST(AluSemantics, LuiShifts16)
{
    Program p = assemble("lui r3, 5\nhalt\n");
    SmtParams params;
    params.numThreads = 1;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &p);
    while (!pipe.allHalted() && pipe.cycle() < 10000)
        pipe.tick();
    EXPECT_EQ(pipe.thread(0).intRegs[3], 5 << 16);
}

TEST(FpSemantics, ArithmeticMatchesDoubles)
{
    Rng rng(7);
    for (int i = 0; i < 8; ++i) {
        int64_t ia = rng.range(-1000, 1000);
        int64_t ib = rng.range(1, 1000);
        Program p = assemble("fcvt f1, r1\n"
                             "fcvt f2, r2\n"
                             "fadd f3, f1, f2\n"
                             "fsub f4, f1, f2\n"
                             "fmul f5, f1, f2\n"
                             "fdiv f6, f1, f2\n"
                             "halt\n");
        p.setInitReg(1, ia);
        p.setInitReg(2, ib);
        SmtParams params;
        params.numThreads = 1;
        Pipeline pipe(params);
        pipe.setThreadProgram(0, &p);
        while (!pipe.allHalted() && pipe.cycle() < 10000)
            pipe.tick();
        double a = static_cast<double>(ia);
        double b = static_cast<double>(ib);
        EXPECT_DOUBLE_EQ(pipe.thread(0).fpRegs[3], a + b);
        EXPECT_DOUBLE_EQ(pipe.thread(0).fpRegs[4], a - b);
        EXPECT_DOUBLE_EQ(pipe.thread(0).fpRegs[5], a * b);
        EXPECT_DOUBLE_EQ(pipe.thread(0).fpRegs[6], a / b);
    }
}

} // namespace
} // namespace hs
