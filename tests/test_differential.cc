/** @file Differential testing: randomly generated terminating programs
 *  must produce identical architectural state on the out-of-order SMT
 *  pipeline and the sequential reference interpreter. */

#include <gtest/gtest.h>

#include "common/log.hh"
#include "common/rng.hh"
#include "isa/interpreter.hh"
#include "smt/pipeline.hh"

namespace hs {
namespace {

/**
 * Generate a random program that provably terminates: a top-level
 * counted loop (fixed iteration count) whose body is a random mix of
 * ALU, FP, memory and forward-branch instructions.
 *
 * Register roles: r1 loop counter, r2..r5 pointers/masks seeds,
 * r8..r23 general, f1..f12 FP. Memory confined to an 8 KB window.
 */
Program
randomProgram(uint64_t seed)
{
    Rng rng(seed);
    Program prog(strprintf("fuzz-%llu",
                           static_cast<unsigned long long>(seed)));

    int iters = static_cast<int>(rng.range(3, 12));
    int body = static_cast<int>(rng.range(10, 50));

    auto ins = [&](Opcode op, int rd, int rs1, int rs2, int64_t imm = 0,
                   uint64_t target = 0) {
        Instruction i;
        i.op = op;
        i.rd = static_cast<uint8_t>(rd);
        i.rs1 = static_cast<uint8_t>(rs1);
        i.rs2 = static_cast<uint8_t>(rs2);
        i.imm = imm;
        i.target = target;
        return prog.append(i);
    };
    auto temp = [&] { return static_cast<int>(rng.range(8, 23)); };
    auto ftemp = [&] { return static_cast<int>(rng.range(1, 12)); };

    // Seed state.
    for (int reg = 8; reg <= 23; ++reg)
        prog.setInitReg(reg, rng.range(-1000, 1000));
    prog.setInitReg(2, rng.range(0, 4096) & ~7);

    ins(Opcode::Addi, 1, 0, 0, iters);    // r1 = iters
    uint64_t loop_top = prog.size();

    for (int k = 0; k < body; ++k) {
        double roll = rng.nextDouble();
        if (roll < 0.45) {
            static const Opcode alu[] = {
                Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::And,
                Opcode::Or, Opcode::Xor, Opcode::Slt, Opcode::Div,
            };
            ins(alu[rng.nextBounded(8)], temp(), temp(), temp());
        } else if (roll < 0.55) {
            static const Opcode imm_ops[] = {
                Opcode::Addi, Opcode::Andi, Opcode::Ori, Opcode::Xori,
                Opcode::Slti,
            };
            ins(imm_ops[rng.nextBounded(5)], temp(), temp(), 0,
                rng.range(-64, 64));
        } else if (roll < 0.63) {
            // Shift with a bounded immediate.
            ins(rng.chance(0.5) ? Opcode::Slli : Opcode::Srli, temp(),
                temp(), 0, rng.range(0, 12));
        } else if (roll < 0.75) {
            // Memory op in the 8 KB window: mask an arbitrary temp.
            int addr_reg = temp();
            ins(Opcode::Andi, 4, addr_reg, 0, 8184);
            if (rng.chance(0.5))
                ins(Opcode::Ld, temp(), 4, 0, 0);
            else
                ins(Opcode::St, 0, 4, temp(), 0);
        } else if (roll < 0.85) {
            static const Opcode fp[] = {Opcode::Fadd, Opcode::Fsub,
                                        Opcode::Fmul};
            if (rng.chance(0.3))
                ins(Opcode::Fcvt, ftemp(), temp(), 0);
            else
                ins(fp[rng.nextBounded(3)], ftemp(), ftemp(), ftemp());
        } else {
            // Forward branch over one instruction: both paths valid.
            static const Opcode br[] = {Opcode::Beq, Opcode::Bne,
                                        Opcode::Blt, Opcode::Bge};
            uint64_t at = ins(br[rng.nextBounded(4)], 0, temp(), temp());
            ins(Opcode::Addi, temp(), temp(), 0, rng.range(-8, 8));
            prog.at(at).target = prog.size();
        }
    }

    // Loop control.
    ins(Opcode::Addi, 1, 1, 0, -1);
    uint64_t bne = ins(Opcode::Bne, 0, 1, 0);
    prog.at(bne).target = loop_top;
    ins(Opcode::Halt, 0, 0, 0);
    return prog;
}

class DifferentialFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DifferentialFuzz, PipelineMatchesInterpreter)
{
    Program prog = randomProgram(GetParam());

    InterpResult ref = interpret(prog, 2'000'000);
    ASSERT_TRUE(ref.halted) << "generated program must terminate";

    SmtParams params;
    params.numThreads = 1;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &prog);
    Cycles guard = 5'000'000;
    while (!pipe.allHalted() && pipe.cycle() < guard)
        pipe.tick();
    ASSERT_TRUE(pipe.allHalted()) << "pipeline did not halt";

    const ThreadContext &tc = pipe.thread(0);
    EXPECT_EQ(tc.committedInsts, ref.steps)
        << "committed count must equal interpreted steps";
    for (int reg = 0; reg < numIntRegs; ++reg)
        EXPECT_EQ(tc.intRegs[static_cast<size_t>(reg)],
                  ref.intRegs[static_cast<size_t>(reg)])
            << "r" << reg << " mismatch (seed " << GetParam() << ")";
    for (int reg = 0; reg < numFpRegs; ++reg)
        EXPECT_DOUBLE_EQ(tc.fpRegs[static_cast<size_t>(reg)],
                         ref.fpRegs[static_cast<size_t>(reg)])
            << "f" << reg << " mismatch (seed " << GetParam() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range<uint64_t>(1, 25));

TEST(Interpreter, HonorsDataImageAndInitRegs)
{
    Program p("t");
    p.setInitReg(1, 5);
    p.poke64(64, 37);
    Instruction addi;
    addi.op = Opcode::Addi;
    addi.rd = 2;
    addi.rs1 = 0;
    addi.imm = 64;
    p.append(addi);
    Instruction ld;
    ld.op = Opcode::Ld;
    ld.rd = 3;
    ld.rs1 = 2;
    p.append(ld);
    Instruction add;
    add.op = Opcode::Add;
    add.rd = 4;
    add.rs1 = 1;
    add.rs2 = 3;
    p.append(add);
    Instruction halt;
    halt.op = Opcode::Halt;
    p.append(halt);

    InterpResult r = interpret(p, 100);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(r.intRegs[4], 42);
}

TEST(Interpreter, StepBudgetStopsInfiniteLoops)
{
    Program p("loop");
    Instruction jmp;
    jmp.op = Opcode::Jmp;
    jmp.target = 0;
    p.append(jmp);
    InterpResult r = interpret(p, 1000);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.steps, 1000u);
}

TEST(Interpreter, R0StaysZero)
{
    Program p("r0");
    Instruction addi;
    addi.op = Opcode::Addi;
    addi.rd = 0;
    addi.rs1 = 0;
    addi.imm = 99;
    p.append(addi);
    Instruction halt;
    halt.op = Opcode::Halt;
    p.append(halt);
    InterpResult r = interpret(p, 10);
    EXPECT_EQ(r.intRegs[0], 0);
}

} // namespace
} // namespace hs
