/** @file Unit tests for the set-associative cache model. */

#include <gtest/gtest.h>

#include "mem/cache.hh"

namespace hs {
namespace {

CacheParams
smallCache(int size_kb = 1, int assoc = 2, int line = 64)
{
    CacheParams p;
    p.name = "test";
    p.sizeBytes = static_cast<uint64_t>(size_kb) * 1024;
    p.assoc = assoc;
    p.lineBytes = line;
    p.hitLatency = 2;
    return p;
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1000, false).hit);
    EXPECT_TRUE(c.access(0x1004, false).hit); // same line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, GeometryDerived)
{
    Cache c(smallCache(1, 2, 64)); // 1 KB / 64 B / 2-way = 8 sets
    EXPECT_EQ(c.numSets(), 8);
}

TEST(Cache, SetIndexWrapsByNumSets)
{
    Cache c(smallCache(1, 2, 64)); // 8 sets, set period = 512 B
    EXPECT_EQ(c.setIndex(0), c.setIndex(8 * 64));
    EXPECT_NE(c.setIndex(0), c.setIndex(64));
}

TEST(Cache, LruEviction)
{
    Cache c(smallCache(1, 2, 64)); // 2 ways per set, period 512
    // Three lines in the same set: A, B, C.
    Addr a = 0, b = 512, d = 1024;
    c.access(a, false);
    c.access(b, false);
    c.access(a, false); // A is now MRU
    c.access(d, false); // evicts B (LRU)
    EXPECT_TRUE(c.probe(a));
    EXPECT_FALSE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, ConflictSetAlwaysMisses)
{
    // The paper's Figure 2 trick: assoc+1 lines in one set cycled in
    // order never hit under LRU.
    Cache c(smallCache(64, 8, 64)); // 128 sets, period 8 KB
    int period = 128 * 64;
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 9; ++i) {
            auto out = c.access(static_cast<Addr>(i) *
                                static_cast<Addr>(period), false);
            if (round > 0) {
                EXPECT_FALSE(out.hit)
                    << "round " << round << " i " << i;
            }
        }
    }
    EXPECT_EQ(c.hits(), 0u);
}

TEST(Cache, WritebackOnDirtyEviction)
{
    Cache c(smallCache(1, 1, 64)); // direct-mapped, 16 sets, period 1K
    c.access(0x0000, true);               // dirty
    auto out = c.access(0x0000 + 1024, false); // evicts dirty line
    EXPECT_TRUE(out.writeback);
    EXPECT_EQ(out.victimAddr, 0x0000u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache c(smallCache(1, 1, 64));
    c.access(0x0000, false);
    auto out = c.access(0x0000 + 1024, false);
    EXPECT_FALSE(out.writeback);
    EXPECT_EQ(c.writebacks(), 0u);
}

TEST(Cache, WriteHitMarksDirty)
{
    Cache c(smallCache(1, 1, 64));
    c.access(0x40, false);       // clean fill
    c.access(0x40, true);        // dirtied by write hit
    auto out = c.access(0x40 + 1024, false);
    EXPECT_TRUE(out.writeback);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(smallCache());
    c.access(0x80, false);
    EXPECT_TRUE(c.probe(0x80));
    EXPECT_TRUE(c.invalidate(0x80));
    EXPECT_FALSE(c.probe(0x80));
    EXPECT_FALSE(c.invalidate(0x80)); // already gone
}

TEST(Cache, FlushClearsEverything)
{
    Cache c(smallCache());
    for (Addr a = 0; a < 1024; a += 64)
        c.access(a, false);
    c.flush();
    for (Addr a = 0; a < 1024; a += 64)
        EXPECT_FALSE(c.probe(a));
}

TEST(Cache, ProbeDoesNotAffectState)
{
    Cache c(smallCache());
    c.access(0x100, false);
    uint64_t h = c.hits(), m = c.misses();
    c.probe(0x100);
    c.probe(0x9999);
    EXPECT_EQ(c.hits(), h);
    EXPECT_EQ(c.misses(), m);
}

TEST(Cache, MissRate)
{
    Cache c(smallCache());
    c.access(0x0, false);  // miss
    c.access(0x0, false);  // hit
    c.access(0x0, false);  // hit
    c.access(0x40, false); // miss
    EXPECT_DOUBLE_EQ(c.missRate(), 0.5);
    c.resetStats();
    EXPECT_EQ(c.missRate(), 0.0);
}

TEST(Cache, RejectsBadGeometry)
{
    CacheParams p = smallCache();
    p.sizeBytes = 1000; // not a power of two
    EXPECT_DEATH(Cache c(p), "power");
}

class CacheGeometrySweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(CacheGeometrySweep, FillsExactlyCapacityWithoutEviction)
{
    auto [size_kb, assoc] = GetParam();
    Cache c(smallCache(size_kb, assoc));
    uint64_t lines = static_cast<uint64_t>(size_kb) * 1024 / 64;
    for (uint64_t i = 0; i < lines; ++i)
        c.access(i * 64, false);
    // Everything fits: second pass must be all hits.
    for (uint64_t i = 0; i < lines; ++i)
        EXPECT_TRUE(c.access(i * 64, false).hit) << "line " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometrySweep,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(1, 2),
                      std::make_tuple(4, 4), std::make_tuple(8, 8),
                      std::make_tuple(64, 4), std::make_tuple(16, 16)));

} // namespace
} // namespace hs
