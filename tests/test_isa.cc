/** @file Unit tests for instruction classification and metadata. */

#include <gtest/gtest.h>

#include "isa/isa.hh"

namespace hs {
namespace {

TEST(Isa, OpcodeClasses)
{
    EXPECT_EQ(Instruction::opcodeClass(Opcode::Add), InstClass::IntAlu);
    EXPECT_EQ(Instruction::opcodeClass(Opcode::Mul), InstClass::IntMult);
    EXPECT_EQ(Instruction::opcodeClass(Opcode::Div), InstClass::IntDiv);
    EXPECT_EQ(Instruction::opcodeClass(Opcode::Fadd), InstClass::FpAdd);
    EXPECT_EQ(Instruction::opcodeClass(Opcode::Fmul), InstClass::FpMul);
    EXPECT_EQ(Instruction::opcodeClass(Opcode::Fdiv), InstClass::FpDiv);
    EXPECT_EQ(Instruction::opcodeClass(Opcode::Ld), InstClass::Load);
    EXPECT_EQ(Instruction::opcodeClass(Opcode::Fst), InstClass::Store);
    EXPECT_EQ(Instruction::opcodeClass(Opcode::Beq), InstClass::Branch);
    EXPECT_EQ(Instruction::opcodeClass(Opcode::Jmp), InstClass::Jump);
    EXPECT_EQ(Instruction::opcodeClass(Opcode::Halt), InstClass::Halt);
}

TEST(Isa, WritesIntRegRespectsR0)
{
    Instruction add;
    add.op = Opcode::Add;
    add.rd = 0;
    EXPECT_FALSE(add.writesIntReg()); // r0 is not writable
    add.rd = 5;
    EXPECT_TRUE(add.writesIntReg());
}

TEST(Isa, LoadDestinations)
{
    Instruction ld;
    ld.op = Opcode::Ld;
    ld.rd = 3;
    EXPECT_TRUE(ld.writesIntReg());
    EXPECT_FALSE(ld.writesFpReg());

    Instruction fld;
    fld.op = Opcode::Fld;
    fld.rd = 3;
    EXPECT_FALSE(fld.writesIntReg());
    EXPECT_TRUE(fld.writesFpReg());
}

TEST(Isa, StoreSources)
{
    Instruction st;
    st.op = Opcode::St;
    EXPECT_TRUE(st.readsIntRs1()); // base
    EXPECT_TRUE(st.readsIntRs2()); // data
    EXPECT_FALSE(st.readsFpRs2());

    Instruction fst;
    fst.op = Opcode::Fst;
    EXPECT_TRUE(fst.readsIntRs1()); // base is an integer register
    EXPECT_FALSE(fst.readsIntRs2());
    EXPECT_TRUE(fst.readsFpRs2()); // data is FP
}

TEST(Isa, FcvtCrossesFiles)
{
    Instruction cvt;
    cvt.op = Opcode::Fcvt;
    EXPECT_TRUE(cvt.readsIntRs1());
    EXPECT_FALSE(cvt.readsFpRs1());
    EXPECT_TRUE(cvt.writesFpReg());
    EXPECT_FALSE(cvt.writesIntReg());
}

TEST(Isa, ImmediateOpsDoNotReadRs2)
{
    Instruction addi;
    addi.op = Opcode::Addi;
    EXPECT_TRUE(addi.readsIntRs1());
    EXPECT_FALSE(addi.readsIntRs2());

    Instruction lui;
    lui.op = Opcode::Lui;
    EXPECT_FALSE(lui.readsIntRs1());
    EXPECT_FALSE(lui.readsIntRs2());
}

TEST(Isa, MemRefAndControlPredicates)
{
    Instruction ld;
    ld.op = Opcode::Ld;
    EXPECT_TRUE(ld.isMemRef());
    EXPECT_FALSE(ld.isControl());

    Instruction beq;
    beq.op = Opcode::Beq;
    EXPECT_FALSE(beq.isMemRef());
    EXPECT_TRUE(beq.isControl());

    Instruction jmp;
    jmp.op = Opcode::Jmp;
    EXPECT_TRUE(jmp.isControl());
}

TEST(Isa, LatenciesAreOrdered)
{
    // Sanity: multiplies cost more than adds, divides more than
    // multiplies, FP more than int adds.
    EXPECT_LT(instClassLatency(InstClass::IntAlu),
              instClassLatency(InstClass::IntMult));
    EXPECT_LT(instClassLatency(InstClass::IntMult),
              instClassLatency(InstClass::IntDiv));
    EXPECT_LT(instClassLatency(InstClass::IntAlu),
              instClassLatency(InstClass::FpAdd));
    EXPECT_LT(instClassLatency(InstClass::FpMul),
              instClassLatency(InstClass::FpDiv));
}

TEST(Isa, EveryOpcodeHasNameAndClass)
{
    for (int i = 0; i < static_cast<int>(Opcode::NumOpcodes); ++i) {
        Opcode op = static_cast<Opcode>(i);
        EXPECT_NE(opcodeName(op), nullptr);
        // Must not panic.
        (void)Instruction::opcodeClass(op);
    }
}

TEST(Isa, DisassembleFormats)
{
    Instruction add;
    add.op = Opcode::Add;
    add.rd = 1;
    add.rs1 = 2;
    add.rs2 = 3;
    EXPECT_EQ(add.disassemble(), "add r1, r2, r3");

    Instruction ld;
    ld.op = Opcode::Ld;
    ld.rd = 4;
    ld.rs1 = 2;
    ld.imm = 16;
    EXPECT_EQ(ld.disassemble(), "ld r4, 16(r2)");

    Instruction beq;
    beq.op = Opcode::Beq;
    beq.rs1 = 1;
    beq.rs2 = 2;
    beq.target = 7;
    EXPECT_EQ(beq.disassemble(), "beq r1, r2, @7");
}

} // namespace
} // namespace hs
