/** @file Tests for the fetch-gating DTM baseline and the sensor-noise
 *  robustness of selective sedation. */

#include <gtest/gtest.h>

#include "core/fetch_gating.hh"
#include "sim/experiment.hh"

namespace hs {
namespace {

class FakeControl : public DtmControl
{
  public:
    void stallPipeline(bool s) override { stalled = s; }
    bool pipelineStalled() const override { return stalled; }
    void
    sedateThread(ThreadId tid, bool s) override
    {
        gated[static_cast<size_t>(tid)] = s;
    }
    void throttlePipeline(int k) override { throttle = k; }
    int numThreads() const override { return 2; }
    bool threadActive(ThreadId) const override { return true; }

    bool stalled = false;
    int throttle = 1;
    std::array<bool, 8> gated{};
};

std::vector<Kelvin>
allAt(Kelvin t)
{
    return std::vector<Kelvin>(static_cast<size_t>(numBlocks), t);
}

TEST(FetchGating, GatesAllButOneWhenHot)
{
    FetchGating policy(2);
    FakeControl ctl;
    policy.atSensorSample(0, allAt(357.5), ctl);
    EXPECT_TRUE(policy.engaged());
    int gated = ctl.gated[0] + ctl.gated[1];
    EXPECT_EQ(gated, 1) << "exactly one thread gated per sample";
}

TEST(FetchGating, RotatesTheAllowedThread)
{
    FetchGating policy(2);
    FakeControl ctl;
    policy.atSensorSample(0, allAt(357.5), ctl);
    bool first = ctl.gated[0];
    policy.atSensorSample(1, allAt(357.5), ctl);
    EXPECT_NE(ctl.gated[0], first) << "gate must rotate";
}

TEST(FetchGating, ReleasesEveryoneWhenCool)
{
    FetchGating policy(2);
    FakeControl ctl;
    policy.atSensorSample(0, allAt(357.5), ctl);
    policy.atSensorSample(1, allAt(354.0), ctl);
    EXPECT_FALSE(policy.engaged());
    EXPECT_FALSE(ctl.gated[0]);
    EXPECT_FALSE(ctl.gated[1]);
}

TEST(FetchGating, RejectsBadParams)
{
    FetchGatingParams params;
    params.resumeTemp = 358.0;
    params.triggerTemp = 357.0;
    EXPECT_DEATH(FetchGating policy(2, params), "resume");
}

TEST(FetchGating, EndToEndStillHurtsTheVictim)
{
    // The point of the ablation: an indiscriminate thread-granular
    // mechanism still punishes the victim for the attacker's heat.
    ExperimentOptions opts;
    opts.timeScale = 100.0;
    opts.dtm = DtmMode::StopAndGo;
    RunResult solo = runSolo("gcc", opts);

    SimConfig cfg = makeSimConfig(opts);
    cfg.dtm = DtmMode::FetchGating;
    Simulator sim(cfg);
    sim.setWorkload(0, synthesizeSpec("gcc"));
    sim.setWorkload(1, makeVariant(2, makeMaliciousParams(opts)));
    RunResult gated = sim.run();
    EXPECT_LT(gated.threads[0].ipc, 0.9 * solo.threads[0].ipc);
}

TEST(SensorNoise, SedationRobustToHalfKelvinError)
{
    // Section 5.6 robustness, extended: with +-0.5 K sensor error the
    // defense still identifies and contains the attacker.
    ExperimentOptions opts;
    opts.timeScale = 100.0;
    opts.dtm = DtmMode::SelectiveSedation;
    SimConfig cfg = makeSimConfig(opts);
    cfg.sensorNoiseK = 0.5;
    Simulator sim(cfg);
    sim.setWorkload(0, synthesizeSpec("gcc"));
    sim.setWorkload(1, makeVariant(2, makeMaliciousParams(opts)));
    RunResult noisy = sim.run();

    ASSERT_FALSE(noisy.sedationEvents.empty());
    for (const SedationEvent &e : noisy.sedationEvents)
        EXPECT_EQ(e.thread, 1);
    EXPECT_LE(noisy.emergencies, 2u);
}

TEST(SensorNoise, EmergenciesCountedOnTrueTemperature)
{
    // Huge sensor noise must not manufacture (or hide) emergencies in
    // the physical accounting of a cool run.
    ExperimentOptions opts;
    opts.timeScale = 500.0;
    opts.dtm = DtmMode::StopAndGo;
    SimConfig cfg = makeSimConfig(opts);
    cfg.sensorNoiseK = 10.0;
    Simulator sim(cfg);
    sim.setWorkload(0, synthesizeSpec("twolf"));
    RunResult r = sim.run();
    EXPECT_EQ(r.emergencies, 0u);
}

} // namespace
} // namespace hs
