/** @file Unit tests for the shift-based fixed-point EWMA
 *  (Section 3.2.1 of the paper). */

#include <cmath>

#include <gtest/gtest.h>

#include "common/fixed_point.hh"

namespace hs {
namespace {

TEST(FixedEwma, StartsAtZero)
{
    FixedEwma e(7);
    EXPECT_EQ(e.value(), 0.0);
}

TEST(FixedEwma, ConvergesToConstantInput)
{
    FixedEwma e(7);
    for (int i = 0; i < 4000; ++i)
        e.update(100);
    EXPECT_NEAR(e.value(), 100.0, 0.5);
}

TEST(FixedEwma, TracksDoubleEwmaClosely)
{
    // The hardware (shift/add) implementation must match the textbook
    // floating-point EWMA to within fixed-point truncation error.
    FixedEwma e(7);
    double ref = 0.0;
    const double x = 1.0 / 128.0;
    uint64_t lcg = 12345;
    for (int i = 0; i < 5000; ++i) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        uint64_t sample = (lcg >> 33) % 1000;
        e.update(sample);
        ref = (1 - x) * ref + x * static_cast<double>(sample);
        EXPECT_NEAR(e.value(), ref, 2.5)
            << "diverged at sample " << i;
    }
}

TEST(FixedEwma, ImpulseDecaysWithExpectedTimeConstant)
{
    FixedEwma e(7);
    for (int i = 0; i < 4000; ++i)
        e.update(128);
    // Feed zeros for one memory length (2^7 samples): the average
    // should decay to roughly 1/e of its initial value.
    for (int i = 0; i < 128; ++i)
        e.update(0);
    EXPECT_NEAR(e.value(), 128.0 * std::exp(-1.0), 6.0);
}

TEST(FixedEwma, BurstVersusTrickleSeparation)
{
    // The paper's key argument for the EWMA over a flat average: a
    // recent aggressive burst must dominate an old steady trickle.
    FixedEwma burst(7), trickle(7);
    // Trickle: rate 3 for 10000 windows. Total = 30000.
    for (int i = 0; i < 10000; ++i)
        trickle.update(3);
    // Burst: nothing for 9900 windows, then rate 12 for 100 windows.
    // Total = 1200, far below the trickle's total count.
    for (int i = 0; i < 9900; ++i)
        burst.update(0);
    for (int i = 0; i < 100; ++i)
        burst.update(12);
    EXPECT_GT(burst.value(), trickle.value())
        << "weighted average failed to expose the bursty thread";
}

TEST(FixedEwma, ResetClears)
{
    FixedEwma e(5);
    for (int i = 0; i < 100; ++i)
        e.update(50);
    e.reset();
    EXPECT_EQ(e.value(), 0.0);
    EXPECT_EQ(e.raw(), 0);
}

TEST(FixedEwma, RejectsBadShift)
{
    EXPECT_DEATH(FixedEwma(0), "shift");
    EXPECT_DEATH(FixedEwma(31), "shift");
}

TEST(FixedEwma, MemoryMatchesShift)
{
    EXPECT_EQ(FixedEwma(7).memorySamples(), 128.0);
    EXPECT_EQ(FixedEwma(9).memorySamples(), 512.0);
}

class FixedEwmaShiftSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(FixedEwmaShiftSweep, ConvergesForAllShifts)
{
    int shift = GetParam();
    FixedEwma e(shift);
    int updates = 40 << shift; // many time constants
    for (int i = 0; i < updates; ++i)
        e.update(77);
    EXPECT_NEAR(e.value(), 77.0, 1.0) << "shift " << shift;
}

TEST_P(FixedEwmaShiftSweep, MonotoneRiseUnderConstantInput)
{
    int shift = GetParam();
    FixedEwma e(shift);
    double prev = -1.0;
    for (int i = 0; i < (4 << shift); ++i) {
        e.update(1000);
        EXPECT_GE(e.value(), prev);
        prev = e.value();
    }
}

INSTANTIATE_TEST_SUITE_P(Shifts, FixedEwmaShiftSweep,
                         ::testing::Values(1, 3, 5, 7, 9, 11, 13));

} // namespace
} // namespace hs
