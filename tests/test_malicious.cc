/** @file Tests for the malicious heat-stroke kernels (Figures 1-2). */

#include <gtest/gtest.h>

#include "smt/pipeline.hh"
#include "workload/malicious.hh"

namespace hs {
namespace {

double
regfileRate(const Program &prog, Cycles cycles = 300000)
{
    SmtParams params;
    params.numThreads = 1;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &prog);
    for (Cycles i = 0; i < cycles; ++i)
        pipe.tick();
    return static_cast<double>(
               pipe.activity().count(0, Block::IntReg)) /
           static_cast<double>(pipe.cycle());
}

TEST(Malicious, Variant1AssemblesAndLoops)
{
    Program v1 = makeVariant1();
    EXPECT_GT(v1.size(), 10u);
    const Instruction &last = v1.fetch(v1.size() - 1);
    EXPECT_EQ(last.op, Opcode::Jmp);
    EXPECT_EQ(last.target, 0u);
}

TEST(Malicious, Variant1HammerIsAllIndependentAdds)
{
    MaliciousParams params;
    Program v1 = makeVariant1(params);
    for (int i = 0; i < params.unroll; ++i) {
        const Instruction &inst = v1.fetch(static_cast<uint64_t>(i));
        EXPECT_EQ(inst.op, Opcode::Add);
        EXPECT_EQ(inst.rs1, 24);
        EXPECT_EQ(inst.rs2, 25);
    }
}

TEST(Malicious, Variant1RegfileRateFarAboveSpec)
{
    // Figure 3: variant1's access rate is widely separated from SPEC
    // programs (which stay below ~6 accesses/cycle).
    double rate = regfileRate(makeVariant1());
    EXPECT_GT(rate, 9.0);
}

TEST(Malicious, Variant2HasTwoPhases)
{
    MaliciousParams params = MaliciousParams{}.scaled(100);
    Program v2 = makeVariant2(params);
    uint64_t loads = 0, adds = 0;
    for (uint64_t i = 0; i < v2.size(); ++i) {
        InstClass c = v2.fetch(i).instClass();
        loads += c == InstClass::Load;
        adds += c == InstClass::IntAlu;
    }
    EXPECT_EQ(loads, 9u) << "nine conflicting loads (Figure 2)";
    EXPECT_GT(adds, 20u);
}

TEST(Malicious, Variant2ConflictAddressesShareAnL2Set)
{
    MaliciousParams params;
    Program v2 = makeVariant2(params);
    Cache l2(CacheParams{"l2", 2 * 1024 * 1024, 8, 64, 12});
    int set = -1;
    int found = 0;
    for (uint64_t i = 0; i < v2.size(); ++i) {
        const Instruction &inst = v2.fetch(i);
        if (inst.op != Opcode::Ld)
            continue;
        int s = l2.setIndex(static_cast<Addr>(inst.imm));
        if (set < 0)
            set = s;
        EXPECT_EQ(s, set) << "load " << found;
        ++found;
    }
    EXPECT_EQ(found, params.conflictLines);
}

TEST(Malicious, Variant2LowerRateAndIpcThanVariant1)
{
    // Section 5.1 / Figure 3: variant2 moderates both its IPC and its
    // flat access rate to isolate the power-density effect.
    MaliciousParams params = MaliciousParams{}.scaled(200);
    double r1 = regfileRate(makeVariant1(params), 400000);
    double r2 = regfileRate(makeVariant2(params), 400000);
    EXPECT_LT(r2, 0.75 * r1);
}

TEST(Malicious, Variant3MoreEvasiveThanVariant2)
{
    MaliciousParams params = MaliciousParams{}.scaled(200);
    double r2 = regfileRate(makeVariant2(params), 400000);
    double r3 = regfileRate(makeVariant3(params), 400000);
    EXPECT_LT(r3, r2);
}

TEST(Malicious, ScaledParamsShrinkPhases)
{
    MaliciousParams base;
    MaliciousParams scaled = base.scaled(50);
    EXPECT_EQ(scaled.hammerIters, base.hammerIters / 50);
    EXPECT_EQ(scaled.missIters, base.missIters / 50);
    // Never zero.
    MaliciousParams tiny = base.scaled(1e12);
    EXPECT_GE(tiny.hammerIters, 1u);
    EXPECT_GE(tiny.missIters, 1u);
}

TEST(Malicious, AsmListingsMatchPaperStyle)
{
    std::string v1 = variant1Asm();
    EXPECT_NE(v1.find("addl $"), std::string::npos);
    EXPECT_NE(v1.find("br L$1"), std::string::npos);
    std::string v2 = variant2Asm();
    EXPECT_NE(v2.find("ldq $"), std::string::npos);
    EXPECT_NE(v2.find("hammer"), std::string::npos);
    EXPECT_NE(v2.find("miss"), std::string::npos);
}

TEST(Malicious, MakeVariantDispatch)
{
    EXPECT_EQ(makeVariant(1).name(), "variant1");
    EXPECT_EQ(makeVariant(2).name(), "variant2");
    EXPECT_EQ(makeVariant(3).name(), "variant3");
    EXPECT_EQ(makeVariant(4).name(), "variant4");
    EXPECT_DEATH(makeVariant(5), "variant");
}

TEST(Malicious, Variant4IsAllFpWork)
{
    MaliciousParams params;
    Program v4 = makeVariant4(params);
    uint64_t fp = 0;
    for (uint64_t i = 0; i < v4.size(); ++i)
        fp += v4.fetch(i).instClass() == InstClass::FpAdd;
    EXPECT_EQ(fp, static_cast<uint64_t>(params.unroll));
}

TEST(Malicious, Variant2MissPhaseActuallyMissesL2)
{
    // Run variant2 (tiny phases) and verify L2 misses keep occurring
    // well past warm-up.
    MaliciousParams params;
    params.hammerIters = 50;
    params.missIters = 2000;
    Program v2 = makeVariant2(params);
    SmtParams sp;
    sp.numThreads = 1;
    Pipeline pipe(sp);
    pipe.setThreadProgram(0, &v2);
    for (int i = 0; i < 100000; ++i)
        pipe.tick();
    uint64_t misses_mid = pipe.mem().l2().misses();
    for (int i = 0; i < 100000; ++i)
        pipe.tick();
    EXPECT_GT(pipe.mem().l2().misses(), misses_mid + 100)
        << "conflict loads must keep missing in steady state";
}

} // namespace
} // namespace hs
