/** @file Unit tests for heat/cool episode extraction. */

#include <gtest/gtest.h>

#include "sim/episodes.hh"
#include "sim/experiment.hh"

namespace hs {
namespace {

TempSample
at(Cycles cycle, Kelvin t)
{
    TempSample s;
    s.cycle = cycle;
    s.intRegTemp = t;
    s.hottestTemp = t;
    s.sinkTemp = 340;
    return s;
}

TEST(Episodes, ExtractsOneCompleteEpisode)
{
    std::vector<TempSample> trace = {
        at(0, 350), at(100, 352), at(200, 355), at(300, 358.2),
        at(400, 356), at(500, 353), at(600, 350.5),
    };
    auto eps = extractEpisodes(trace, 358.0, 351.0);
    ASSERT_EQ(eps.size(), 1u);
    EXPECT_EQ(eps[0].riseStart, 100u); // first sample above resume
    EXPECT_EQ(eps[0].peakAt, 300u);
    EXPECT_EQ(eps[0].fallEnd, 600u);
    EXPECT_EQ(eps[0].heatCycles(), 200u);
    EXPECT_EQ(eps[0].coolCycles(), 300u);
    EXPECT_NEAR(eps[0].dutyCycle(), 0.4, 1e-12);
}

TEST(Episodes, AbortedRiseIsNotAnEpisode)
{
    std::vector<TempSample> trace = {
        at(0, 350), at(100, 354), at(200, 356), at(300, 350.0),
        at(400, 350),
    };
    EXPECT_TRUE(extractEpisodes(trace, 358.0, 351.0).empty());
}

TEST(Episodes, OpenEpisodeAtTraceEndDiscarded)
{
    std::vector<TempSample> trace = {
        at(0, 350), at(100, 355), at(200, 358.5), at(300, 356),
    };
    EXPECT_TRUE(extractEpisodes(trace, 358.0, 351.0).empty());
}

TEST(Episodes, BackToBackEpisodesCounted)
{
    std::vector<TempSample> trace;
    Cycles c = 0;
    for (int i = 0; i < 5; ++i) {
        trace.push_back(at(c += 100, 350));
        trace.push_back(at(c += 100, 355));
        trace.push_back(at(c += 100, 358.5));
        trace.push_back(at(c += 100, 354));
        trace.push_back(at(c += 100, 350.5));
    }
    auto eps = extractEpisodes(trace, 358.0, 351.0);
    EXPECT_EQ(eps.size(), 5u);
}

TEST(Episodes, SummaryAverages)
{
    std::vector<Episode> eps(2);
    eps[0].riseStart = 0;
    eps[0].peakAt = 100;
    eps[0].fallEnd = 300;   // heat 100, cool 200, duty 1/3
    eps[1].riseStart = 1000;
    eps[1].peakAt = 1300;
    eps[1].fallEnd = 1400;  // heat 300, cool 100, duty 3/4
    EpisodeStats stats = summarizeEpisodes(eps);
    EXPECT_EQ(stats.count, 2u);
    EXPECT_DOUBLE_EQ(stats.meanHeatCycles, 200.0);
    EXPECT_DOUBLE_EQ(stats.meanCoolCycles, 150.0);
    EXPECT_NEAR(stats.meanDutyCycle, (1.0 / 3 + 0.75) / 2, 1e-12);
}

TEST(Episodes, EmptySummarySafe)
{
    EpisodeStats stats = summarizeEpisodes({});
    EXPECT_EQ(stats.count, 0u);
    EXPECT_EQ(stats.meanDutyCycle, 0.0);
}

TEST(Episodes, RejectsInvertedThresholds)
{
    EXPECT_DEATH(extractEpisodes({}, 350.0, 358.0), "resume");
}

TEST(Episodes, EndToEndAttackProducesEpisodes)
{
    // An attacked run recorded at fine trace granularity shows the
    // Section 3.1 episode structure.
    ExperimentOptions opts;
    opts.timeScale = 100.0;
    opts.dtm = DtmMode::StopAndGo;
    opts.recordTempTrace = true;
    SimConfig cfg = makeSimConfig(opts);
    cfg.tempTraceInterval = 20000;
    Simulator sim(cfg);
    sim.setWorkload(0, synthesizeSpec("gcc"));
    sim.setWorkload(1, makeVariant(2, makeMaliciousParams(opts)));
    RunResult r = sim.run();
    auto eps = extractEpisodes(r.tempTrace, 358.0, 352.0);
    EXPECT_GE(eps.size(), 2u);
    EpisodeStats stats = summarizeEpisodes(eps);
    EXPECT_GT(stats.meanHeatCycles, 0.0);
    EXPECT_GT(stats.meanCoolCycles, 0.0);
    EXPECT_LT(stats.meanDutyCycle, 0.9);
}

} // namespace
} // namespace hs
