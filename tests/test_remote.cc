/**
 * @file
 * TCP worker-sharding tests: endpoint parsing, frame round trips,
 * handshake refusal, an in-process coordinator/worker end-to-end run
 * (results must match serial execution bit for bit), and the dead-
 * worker fallback path (every cell still computed, locally).
 */

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/framing.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "sim/remote.hh"
#include "sim/result_store.hh"
#include "sim/run_spec.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"

namespace {

using namespace hs;

ExperimentOptions
fastOpts()
{
    ExperimentOptions opts;
    opts.timeScale = 2000.0;
    return opts;
}

std::vector<RunSpec>
smallMatrix()
{
    ExperimentOptions opts = fastOpts();
    std::vector<RunSpec> specs;
    specs.push_back(soloSpec("gcc", opts));
    specs.push_back(soloSpec("mesa", opts));
    specs.push_back(
        soloSpec("gcc", opts).withDtm(DtmMode::SelectiveSedation));
    return specs;
}

TEST(RemoteEndpoints, ParsesSingleAndList)
{
    std::vector<Endpoint> eps;
    ASSERT_TRUE(parseEndpoints("127.0.0.1:7471", eps));
    ASSERT_EQ(eps.size(), 1u);
    EXPECT_EQ(eps[0].host, "127.0.0.1");
    EXPECT_EQ(eps[0].port, 7471);

    eps.clear();
    ASSERT_TRUE(parseEndpoints("a:1,b:65535", eps));
    ASSERT_EQ(eps.size(), 2u);
    EXPECT_EQ(eps[0].str(), "a:1");
    EXPECT_EQ(eps[1].str(), "b:65535");
}

TEST(RemoteEndpoints, RejectsMalformedEntries)
{
    std::vector<Endpoint> eps;
    EXPECT_FALSE(parseEndpoints("", eps));
    EXPECT_FALSE(parseEndpoints("noport", eps));
    EXPECT_FALSE(parseEndpoints(":7471", eps));
    EXPECT_FALSE(parseEndpoints("host:", eps));
    EXPECT_FALSE(parseEndpoints("host:0", eps));
    EXPECT_FALSE(parseEndpoints("host:65536", eps));
    EXPECT_FALSE(parseEndpoints("host:x", eps));
    EXPECT_FALSE(parseEndpoints("good:1,,also:2", eps));
}

TEST(RemoteFrames, HelloValidatesAndRefuses)
{
    std::vector<uint8_t> hello = encodeHello(FrameType::Hello);
    std::string why;
    EXPECT_TRUE(checkHello(hello, FrameType::Hello, why)) << why;

    // Wrong expected type (a Job where a Hello must be).
    EXPECT_FALSE(checkHello(hello, FrameType::HelloAck, why));

    // Tampered magic.
    std::vector<uint8_t> bad = hello;
    bad[1] ^= 0xff;
    EXPECT_FALSE(checkHello(bad, FrameType::Hello, why));

    // Tampered protocol version.
    bad = hello;
    bad[5] ^= 0x01;
    EXPECT_FALSE(checkHello(bad, FrameType::Hello, why));
    EXPECT_FALSE(why.empty());

    // Truncated frame.
    bad = std::vector<uint8_t>(hello.begin(), hello.begin() + 3);
    EXPECT_FALSE(checkHello(bad, FrameType::Hello, why));
}

TEST(RemoteFrames, JobRoundTripWithoutSnapshot)
{
    RunSpec spec = soloSpec("gcc", fastOpts());
    std::vector<uint8_t> frame = encodeJob(42, spec, nullptr);
    ASSERT_FALSE(frame.empty());
    EXPECT_EQ(frame[0], static_cast<uint8_t>(FrameType::Job));

    RemoteJob job = decodeJob(frame);
    EXPECT_EQ(job.id, 42u);
    EXPECT_FALSE(job.hasSnapshot());
    EXPECT_EQ(job.spec.canonicalKey(), spec.canonicalKey());
    EXPECT_EQ(job.spec.hash(), spec.hash());
}

TEST(RemoteFrames, JobRoundTripCarriesSnapshot)
{
    RunSpec spec = soloSpec("gcc", fastOpts());
    SimSnapshot snap;
    snap.cycle = 1234;
    snap.bytes = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x42};

    RemoteJob job = decodeJob(encodeJob(7, spec, &snap));
    EXPECT_EQ(job.id, 7u);
    ASSERT_TRUE(job.hasSnapshot());
    EXPECT_EQ(job.snapMode, RemoteJob::SnapMode::Inline);
    EXPECT_EQ(job.snapshot.cycle, snap.cycle);
    EXPECT_EQ(job.snapshot.bytes, snap.bytes);
}

TEST(RemoteFrames, HelloCarriesCapabilityWord)
{
    std::string why;
    uint32_t caps = 0;

    // Explicit word round-trips untouched.
    std::vector<uint8_t> hello =
        encodeHello(FrameType::Hello, kCapTelemetry);
    ASSERT_TRUE(checkHello(hello, FrameType::Hello, why, &caps)) << why;
    EXPECT_EQ(caps, kCapTelemetry);

    // The one-argument form advertises this build's word.
    caps = 0;
    ASSERT_TRUE(checkHello(encodeHello(FrameType::HelloAck),
                           FrameType::HelloAck, why, &caps))
        << why;
    EXPECT_EQ(caps, localCaps());
    EXPECT_TRUE(localCaps() & kCapSnapshotCache);
}

TEST(RemoteFrames, JobReferenceRoundTrip)
{
    RunSpec spec = soloSpec("gcc", fastOpts());
    RemoteJob job =
        decodeJob(encodeJobRef(11, spec, 0xfeedfacecafebeefull));
    EXPECT_EQ(job.id, 11u);
    ASSERT_TRUE(job.hasSnapshot());
    EXPECT_EQ(job.snapMode, RemoteJob::SnapMode::Reference);
    EXPECT_EQ(job.snapshotHash, 0xfeedfacecafebeefull);
    EXPECT_TRUE(job.snapshot.bytes.empty());
}

TEST(RemoteFrames, ResultTelemetryBlockRoundTrips)
{
    RunResult original = executeRunSpec(soloSpec("gcc", fastOpts()));

    JobTelemetry tel;
    tel.simSeconds = 1.25;
    tel.restoreSeconds = 0.5;
    tel.snapshotBytes = 4096;
    tel.snapshotFromCache = true;
    tel.peakRssKb = 123456;
    tel.tickedCycles = 777;
    tel.stalledCycles = 88;
    tel.sensorSamples = 9;
    tel.tickSeconds = 0.75;
    tel.thermalSeconds = 0.25;
    tel.stallSeconds = 0.125;

    RunResult back;
    JobTelemetry tback;
    bool has = false;
    EXPECT_EQ(decodeResult(encodeResult(3, original, &tel), back,
                           &tback, &has),
              3u);
    EXPECT_TRUE(back == original);
    ASSERT_TRUE(has);
    EXPECT_EQ(tback.simSeconds, tel.simSeconds);
    EXPECT_EQ(tback.restoreSeconds, tel.restoreSeconds);
    EXPECT_EQ(tback.snapshotBytes, tel.snapshotBytes);
    EXPECT_EQ(tback.snapshotFromCache, tel.snapshotFromCache);
    EXPECT_EQ(tback.peakRssKb, tel.peakRssKb);
    EXPECT_EQ(tback.tickedCycles, tel.tickedCycles);
    EXPECT_EQ(tback.stalledCycles, tel.stalledCycles);
    EXPECT_EQ(tback.sensorSamples, tel.sensorSamples);
    EXPECT_EQ(tback.tickSeconds, tel.tickSeconds);
    EXPECT_EQ(tback.thermalSeconds, tel.thermalSeconds);
    EXPECT_EQ(tback.stallSeconds, tel.stallSeconds);

    // Telemetry stays optional: a bare Result decodes with has=false.
    has = true;
    EXPECT_EQ(decodeResult(encodeResult(4, original), back, &tback,
                           &has),
              4u);
    EXPECT_FALSE(has);
}

TEST(RemoteFrames, HeartbeatRoundTrips)
{
    HeartbeatInfo hb;
    hb.jobsDone = 17;
    hb.uptimeSeconds = 12.5;
    hb.currentLabel = "gcc-sweep-3";

    HeartbeatInfo back = decodeHeartbeat(encodeHeartbeat(hb));
    EXPECT_EQ(back.jobsDone, hb.jobsDone);
    EXPECT_EQ(back.uptimeSeconds, hb.uptimeSeconds);
    EXPECT_EQ(back.currentLabel, hb.currentLabel);
}

TEST(RemoteFrames, ResultRoundTripIsBitIdentical)
{
    RunResult original = executeRunSpec(soloSpec("gcc", fastOpts()));
    RunResult back;
    EXPECT_EQ(decodeResult(encodeResult(9, original), back), 9u);
    EXPECT_TRUE(back == original);
    EXPECT_EQ(back.hostSeconds, original.hostSeconds);
}

/** A worker serving on an ephemeral localhost port in this process. */
class InProcessWorker
{
  public:
    InProcessWorker()
    {
        listener_ = tcpListen(0);
        port_ = localPort(listener_);
        thread_ = std::thread([this] { jobs_ = serveWorker(listener_); });
    }

    ~InProcessWorker()
    {
        if (thread_.joinable()) {
            stop();
            thread_.join();
        }
    }

    Endpoint endpoint() const { return Endpoint{"127.0.0.1", port_}; }
    uint64_t jobsExecuted() const { return jobs_; }

    /** Ask the serve loop to return, then join. */
    void
    stop()
    {
        RemoteWorker handle(endpoint());
        ASSERT_TRUE(handle.ensureConnected());
        handle.sendShutdown();
    }

    void
    join()
    {
        thread_.join();
    }

  private:
    Socket listener_;
    uint16_t port_ = 0;
    uint64_t jobs_ = 0;
    std::thread thread_;
};

TEST(RemoteEndToEnd, WorkerMatchesSerialExecution)
{
    std::vector<RunSpec> specs = smallMatrix();
    std::vector<RunResult> serial;
    for (const RunSpec &spec : specs)
        serial.push_back(executeRunSpec(spec));

    InProcessWorker worker;
    ResultStore store;
    ParallelRunner runner(1, &store);
    runner.setWorkers({worker.endpoint()});
    std::vector<RunResult> sharded = runner.run(specs);

    RemoteStats stats = runner.remoteStats();
    EXPECT_EQ(stats.workers, 1u);
    EXPECT_EQ(stats.lostWorkers, 0u);
    EXPECT_EQ(stats.requeuedCells, 0u);
    EXPECT_GT(stats.remoteCells, 0u);

    ASSERT_EQ(sharded.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(sharded[i] == serial[i]) << "cell " << i;
    }

    worker.stop();
    worker.join();
    EXPECT_EQ(worker.jobsExecuted() + stats.requeuedCells,
              stats.remoteCells);
}

TEST(RemoteEndToEnd, DeadWorkerFallsBackLocally)
{
    // Reserve a port with a listener that never accepts a handshake,
    // then close it: connects to the endpoint are refused, so every
    // cell must be recovered by the dispatcher's local fallback.
    uint16_t port;
    {
        Socket ghost = tcpListen(0);
        port = localPort(ghost);
    }

    std::vector<RunSpec> specs = smallMatrix();
    std::vector<RunResult> serial;
    for (const RunSpec &spec : specs)
        serial.push_back(executeRunSpec(spec));

    ResultStore store;
    ParallelRunner runner(1, &store);
    runner.setWorkers({Endpoint{"127.0.0.1", port}});
    std::vector<RunResult> results = runner.run(specs);

    RemoteStats stats = runner.remoteStats();
    EXPECT_EQ(stats.workers, 0u);
    EXPECT_EQ(stats.remoteCells, 0u);

    ASSERT_EQ(results.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_TRUE(results[i] == serial[i]) << "cell " << i;
}

TEST(RemoteEndToEnd, TwoWorkersStillFoldInSubmissionOrder)
{
    std::vector<RunSpec> specs = smallMatrix();
    std::vector<RunResult> serial;
    for (const RunSpec &spec : specs)
        serial.push_back(executeRunSpec(spec));

    InProcessWorker w0, w1;
    ResultStore store;
    ParallelRunner runner(1, &store);
    runner.setWorkers({w0.endpoint(), w1.endpoint()});
    std::vector<RunResult> sharded = runner.run(specs);

    EXPECT_EQ(runner.remoteStats().workers, 2u);
    ASSERT_EQ(sharded.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_TRUE(sharded[i] == serial[i]) << "cell " << i;
}

// --- fleet telemetry ---------------------------------------------------

/** Drop the host-throughput lines from a matrix JSON artifact; those
 *  two fields are the only machine-dependent bytes in it. */
std::string
stripHostLines(const std::string &json)
{
    std::istringstream in(json);
    std::string out, line;
    while (std::getline(in, line)) {
        if (line.find("host_seconds") != std::string::npos ||
            line.find("sim_cycles_per_host_sec") != std::string::npos)
            continue;
        out += line;
        out += '\n';
    }
    return out;
}

TEST(RemoteTelemetry, SnapshotShipsOnceThenByReference)
{
    // A sedation pair with a real warm-up snapshot, like the prefix
    // engine would ship for a threshold sweep.
    ExperimentOptions opts = fastOpts();
    opts.dtm = DtmMode::SelectiveSedation;
    opts.upperThreshold = 356.0;
    opts.lowerThreshold = 355.0;
    RunSpec spec = specPairSpec("gcc", "mesa", opts);

    SimSnapshot snap;
    ASSERT_GT(makePrefixSimulator(spec)->runPrefix(
                  spec.opts.upperThreshold, 1, snap),
              0u);
    ASSERT_GT(snap.sizeBytes(), 0u);
    RunResult warm = executeFromSnapshot(spec, snap);

    InProcessWorker worker;
    RemoteWorker handle(worker.endpoint());
    ASSERT_TRUE(handle.ensureConnected());
    ASSERT_TRUE(handle.caps() & kCapSnapshotCache);

    RunResult r1, r2;
    ASSERT_TRUE(handle.runJob(0, spec, &snap, r1));
    ASSERT_TRUE(handle.runJob(1, spec, &snap, r2));
    EXPECT_TRUE(r1 == warm);
    EXPECT_TRUE(r2 == warm);

    // The first job carried the payload, the second only its hash.
    const WorkerTelemetry &wt = handle.telemetry();
    EXPECT_EQ(wt.jobs, 2u);
    EXPECT_EQ(wt.snapshotBytesSent, snap.sizeBytes());
    EXPECT_EQ(wt.snapshotBytesSaved, snap.sizeBytes());

    handle.sendShutdown();
    worker.join();
}

TEST(RemoteTelemetry, HeartbeatsFoldIntoWorkerCounters)
{
    setenv("HS_HEARTBEAT_MS", "1", 1);
    {
        InProcessWorker worker;
        RemoteWorker handle(worker.endpoint());
        ASSERT_TRUE(handle.ensureConnected());
        ASSERT_TRUE(handle.caps() & kCapTelemetry);

        // Give the worker time to queue a few heartbeats, then run a
        // job: the dispatcher folds everything queued ahead of the
        // Result frame.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        RunResult r;
        ASSERT_TRUE(
            handle.runJob(0, soloSpec("gcc", fastOpts()), nullptr, r));

        EXPECT_GE(handle.telemetry().heartbeats, 1u);
        EXPECT_GT(handle.telemetry().simSeconds, 0.0);

        handle.sendShutdown();
        worker.join();
    }
    unsetenv("HS_HEARTBEAT_MS");
}

TEST(RemoteTelemetry, TwoWorkerArtifactsIdenticalAndEventsParse)
{
    std::vector<RunSpec> specs = smallMatrix();
    std::vector<RunResult> serial;
    for (const RunSpec &spec : specs)
        serial.push_back(executeRunSpec(spec));
    std::ostringstream solo;
    writeMatrixJson(solo, specs, serial);

    // Capture the whole fleet's structured log (coordinator and the
    // in-process workers share the sink).
    std::string path = "/tmp/hs_remote_events_" +
                       std::to_string(::getpid()) + ".jsonl";
    openJsonLog(path);

    std::vector<RunResult> sharded;
    RemoteStats rs;
    {
        InProcessWorker w0, w1;
        ResultStore store;
        ParallelRunner runner(1, &store);
        runner.setWorkers({w0.endpoint(), w1.endpoint()});
        sharded = runner.run(specs);
        rs = runner.remoteStats();
    }
    closeJsonLog();

    // Telemetry on changed no artifact byte (host throughput aside).
    std::ostringstream fleet;
    writeMatrixJson(fleet, specs, sharded);
    EXPECT_EQ(stripHostLines(solo.str()), stripHostLines(fleet.str()));

    // Per-worker rollups cover every remote cell.
    ASSERT_EQ(rs.perWorker.size(), 2u);
    EXPECT_EQ(rs.perWorker[0].jobs + rs.perWorker[1].jobs,
              rs.remoteCells);

    // The event stream is valid JSONL and contains the expected
    // lifecycle + telemetry records.
    std::ifstream in(path);
    ASSERT_TRUE(in.is_open());
    std::string line;
    size_t queued = 0, finished = 0, telemetry = 0, connected = 0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::string err;
        json::Value v = json::parse(line, &err);
        ASSERT_EQ(err, "") << "bad JSONL line: " << line;
        EXPECT_GE(v.numberOr("t", -1), 0.0);
        std::string comp = v.stringOr("comp", "");
        std::string event = v.stringOr("event", "");
        EXPECT_FALSE(comp.empty());
        EXPECT_FALSE(event.empty());
        if (comp == "runner" && event == "queued")
            ++queued;
        if (comp == "runner" &&
            (event == "finished" || event == "remote_finished"))
            ++finished;
        if (comp == "remote" && event == "job_telemetry")
            ++telemetry;
        if (comp == "remote" && event == "worker_connected")
            ++connected;
    }
    EXPECT_EQ(queued, specs.size());
    EXPECT_EQ(finished, specs.size());
    EXPECT_EQ(telemetry, rs.remoteCells);
    // Two engine connections, plus one short-lived connection per
    // worker for the shutdown frame.
    EXPECT_GE(connected, 2u);
    std::remove(path.c_str());
}

TEST(RemoteTelemetry, TelemetryOffKeepsResultsIdentical)
{
    setenv("HS_TELEMETRY", "0", 1);
    {
        std::vector<RunSpec> specs = smallMatrix();
        std::vector<RunResult> serial;
        for (const RunSpec &spec : specs)
            serial.push_back(executeRunSpec(spec));

        InProcessWorker worker;
        ResultStore store;
        ParallelRunner runner(1, &store);
        runner.setWorkers({worker.endpoint()});
        std::vector<RunResult> sharded = runner.run(specs);

        ASSERT_EQ(sharded.size(), serial.size());
        for (size_t i = 0; i < serial.size(); ++i)
            EXPECT_TRUE(sharded[i] == serial[i]) << "cell " << i;

        RemoteStats rs = runner.remoteStats();
        ASSERT_EQ(rs.perWorker.size(), 1u);
        EXPECT_EQ(rs.perWorker[0].heartbeats, 0u);
        EXPECT_EQ(rs.perWorker[0].simSeconds, 0.0);
    }
    unsetenv("HS_TELEMETRY");
}

} // namespace
