/**
 * @file
 * TCP worker-sharding tests: endpoint parsing, frame round trips,
 * handshake refusal, an in-process coordinator/worker end-to-end run
 * (results must match serial execution bit for bit), and the dead-
 * worker fallback path (every cell still computed, locally).
 */

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/framing.hh"
#include "sim/remote.hh"
#include "sim/result_store.hh"
#include "sim/run_spec.hh"
#include "sim/runner.hh"

namespace {

using namespace hs;

ExperimentOptions
fastOpts()
{
    ExperimentOptions opts;
    opts.timeScale = 2000.0;
    return opts;
}

std::vector<RunSpec>
smallMatrix()
{
    ExperimentOptions opts = fastOpts();
    std::vector<RunSpec> specs;
    specs.push_back(soloSpec("gcc", opts));
    specs.push_back(soloSpec("mesa", opts));
    specs.push_back(
        soloSpec("gcc", opts).withDtm(DtmMode::SelectiveSedation));
    return specs;
}

TEST(RemoteEndpoints, ParsesSingleAndList)
{
    std::vector<Endpoint> eps;
    ASSERT_TRUE(parseEndpoints("127.0.0.1:7471", eps));
    ASSERT_EQ(eps.size(), 1u);
    EXPECT_EQ(eps[0].host, "127.0.0.1");
    EXPECT_EQ(eps[0].port, 7471);

    eps.clear();
    ASSERT_TRUE(parseEndpoints("a:1,b:65535", eps));
    ASSERT_EQ(eps.size(), 2u);
    EXPECT_EQ(eps[0].str(), "a:1");
    EXPECT_EQ(eps[1].str(), "b:65535");
}

TEST(RemoteEndpoints, RejectsMalformedEntries)
{
    std::vector<Endpoint> eps;
    EXPECT_FALSE(parseEndpoints("", eps));
    EXPECT_FALSE(parseEndpoints("noport", eps));
    EXPECT_FALSE(parseEndpoints(":7471", eps));
    EXPECT_FALSE(parseEndpoints("host:", eps));
    EXPECT_FALSE(parseEndpoints("host:0", eps));
    EXPECT_FALSE(parseEndpoints("host:65536", eps));
    EXPECT_FALSE(parseEndpoints("host:x", eps));
    EXPECT_FALSE(parseEndpoints("good:1,,also:2", eps));
}

TEST(RemoteFrames, HelloValidatesAndRefuses)
{
    std::vector<uint8_t> hello = encodeHello(FrameType::Hello);
    std::string why;
    EXPECT_TRUE(checkHello(hello, FrameType::Hello, why)) << why;

    // Wrong expected type (a Job where a Hello must be).
    EXPECT_FALSE(checkHello(hello, FrameType::HelloAck, why));

    // Tampered magic.
    std::vector<uint8_t> bad = hello;
    bad[1] ^= 0xff;
    EXPECT_FALSE(checkHello(bad, FrameType::Hello, why));

    // Tampered protocol version.
    bad = hello;
    bad[5] ^= 0x01;
    EXPECT_FALSE(checkHello(bad, FrameType::Hello, why));
    EXPECT_FALSE(why.empty());

    // Truncated frame.
    bad = std::vector<uint8_t>(hello.begin(), hello.begin() + 3);
    EXPECT_FALSE(checkHello(bad, FrameType::Hello, why));
}

TEST(RemoteFrames, JobRoundTripWithoutSnapshot)
{
    RunSpec spec = soloSpec("gcc", fastOpts());
    std::vector<uint8_t> frame = encodeJob(42, spec, nullptr);
    ASSERT_FALSE(frame.empty());
    EXPECT_EQ(frame[0], static_cast<uint8_t>(FrameType::Job));

    RemoteJob job = decodeJob(frame);
    EXPECT_EQ(job.id, 42u);
    EXPECT_FALSE(job.hasSnapshot);
    EXPECT_EQ(job.spec.canonicalKey(), spec.canonicalKey());
    EXPECT_EQ(job.spec.hash(), spec.hash());
}

TEST(RemoteFrames, JobRoundTripCarriesSnapshot)
{
    RunSpec spec = soloSpec("gcc", fastOpts());
    SimSnapshot snap;
    snap.cycle = 1234;
    snap.bytes = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x42};

    RemoteJob job = decodeJob(encodeJob(7, spec, &snap));
    EXPECT_EQ(job.id, 7u);
    ASSERT_TRUE(job.hasSnapshot);
    EXPECT_EQ(job.snapshot.cycle, snap.cycle);
    EXPECT_EQ(job.snapshot.bytes, snap.bytes);
}

TEST(RemoteFrames, ResultRoundTripIsBitIdentical)
{
    RunResult original = executeRunSpec(soloSpec("gcc", fastOpts()));
    RunResult back;
    EXPECT_EQ(decodeResult(encodeResult(9, original), back), 9u);
    EXPECT_TRUE(back == original);
    EXPECT_EQ(back.hostSeconds, original.hostSeconds);
}

/** A worker serving on an ephemeral localhost port in this process. */
class InProcessWorker
{
  public:
    InProcessWorker()
    {
        listener_ = tcpListen(0);
        port_ = localPort(listener_);
        thread_ = std::thread([this] { jobs_ = serveWorker(listener_); });
    }

    ~InProcessWorker()
    {
        if (thread_.joinable()) {
            stop();
            thread_.join();
        }
    }

    Endpoint endpoint() const { return Endpoint{"127.0.0.1", port_}; }
    uint64_t jobsExecuted() const { return jobs_; }

    /** Ask the serve loop to return, then join. */
    void
    stop()
    {
        RemoteWorker handle(endpoint());
        ASSERT_TRUE(handle.ensureConnected());
        handle.sendShutdown();
    }

    void
    join()
    {
        thread_.join();
    }

  private:
    Socket listener_;
    uint16_t port_ = 0;
    uint64_t jobs_ = 0;
    std::thread thread_;
};

TEST(RemoteEndToEnd, WorkerMatchesSerialExecution)
{
    std::vector<RunSpec> specs = smallMatrix();
    std::vector<RunResult> serial;
    for (const RunSpec &spec : specs)
        serial.push_back(executeRunSpec(spec));

    InProcessWorker worker;
    ResultStore store;
    ParallelRunner runner(1, &store);
    runner.setWorkers({worker.endpoint()});
    std::vector<RunResult> sharded = runner.run(specs);

    RemoteStats stats = runner.remoteStats();
    EXPECT_EQ(stats.workers, 1u);
    EXPECT_EQ(stats.lostWorkers, 0u);
    EXPECT_EQ(stats.requeuedCells, 0u);
    EXPECT_GT(stats.remoteCells, 0u);

    ASSERT_EQ(sharded.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_TRUE(sharded[i] == serial[i]) << "cell " << i;
    }

    worker.stop();
    worker.join();
    EXPECT_EQ(worker.jobsExecuted() + stats.requeuedCells,
              stats.remoteCells);
}

TEST(RemoteEndToEnd, DeadWorkerFallsBackLocally)
{
    // Reserve a port with a listener that never accepts a handshake,
    // then close it: connects to the endpoint are refused, so every
    // cell must be recovered by the dispatcher's local fallback.
    uint16_t port;
    {
        Socket ghost = tcpListen(0);
        port = localPort(ghost);
    }

    std::vector<RunSpec> specs = smallMatrix();
    std::vector<RunResult> serial;
    for (const RunSpec &spec : specs)
        serial.push_back(executeRunSpec(spec));

    ResultStore store;
    ParallelRunner runner(1, &store);
    runner.setWorkers({Endpoint{"127.0.0.1", port}});
    std::vector<RunResult> results = runner.run(specs);

    RemoteStats stats = runner.remoteStats();
    EXPECT_EQ(stats.workers, 0u);
    EXPECT_EQ(stats.remoteCells, 0u);

    ASSERT_EQ(results.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_TRUE(results[i] == serial[i]) << "cell " << i;
}

TEST(RemoteEndToEnd, TwoWorkersStillFoldInSubmissionOrder)
{
    std::vector<RunSpec> specs = smallMatrix();
    std::vector<RunResult> serial;
    for (const RunSpec &spec : specs)
        serial.push_back(executeRunSpec(spec));

    InProcessWorker w0, w1;
    ResultStore store;
    ParallelRunner runner(1, &store);
    runner.setWorkers({w0.endpoint(), w1.endpoint()});
    std::vector<RunResult> sharded = runner.run(specs);

    EXPECT_EQ(runner.remoteStats().workers, 2u);
    ASSERT_EQ(sharded.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i)
        EXPECT_TRUE(sharded[i] == serial[i]) << "cell " << i;
}

} // namespace
