/**
 * @file
 * Fault-injection tests: the FaultPlan grammar and determinism, each
 * injection site exercised in isolation, and the chaos sweep — many
 * seeded randomized fault schedules thrown at a coordinator, an
 * in-process worker and a shared persistent store, every one of which
 * must still produce results bit-identical to a fault-free serial
 * run. Crashes, torn writes and truncated frames may cost retries and
 * recomputes; they must never drop a cell or serve a wrong result.
 *
 * HS_CHAOS_SEEDS overrides the sweep width (default 100; the TSan
 * gate sets it low because instrumented simulation is slow).
 */

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "common/fault.hh"
#include "common/framing.hh"
#include "sim/disk_store.hh"
#include "sim/remote.hh"
#include "sim/result_store.hh"
#include "sim/run_spec.hh"
#include "sim/runner.hh"

namespace {

using namespace hs;

/** Tiny cells: the sweep cares about plumbing, not thermal fidelity. */
ExperimentOptions
chaosOpts()
{
    ExperimentOptions opts;
    opts.timeScale = 20000.0;
    return opts;
}

std::vector<RunSpec>
chaosMatrix()
{
    ExperimentOptions opts = chaosOpts();
    std::vector<RunSpec> specs;
    specs.push_back(soloSpec("gcc", opts));
    specs.push_back(soloSpec("mesa", opts));
    specs.push_back(
        soloSpec("gcc", opts).withDtm(DtmMode::SelectiveSedation));
    return specs;
}

std::unique_ptr<FaultPlan>
mustParse(const std::string &spec)
{
    std::string why;
    auto plan = FaultPlan::parse(spec, why);
    EXPECT_TRUE(plan) << spec << ": " << why;
    return plan;
}

// ---------------------------------------------------------------------
// Grammar and determinism.

TEST(FaultPlan, ParsesProbabilityAndNthCallRules)
{
    auto plan = mustParse("42:recv_mid_eof@0.25,store_crash=3");
    ASSERT_TRUE(plan);
    EXPECT_EQ(plan->seed(), 42u);
    EXPECT_EQ(plan->str(), "seed 42: recv_mid_eof@0.250000 "
                           "store_crash=3");
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    const char *bad[] = {
        "",                        // empty
        "42",                      // no rules
        "42:",                     // empty site list
        ":recv_mid_eof@0.5",       // empty seed
        "x:recv_mid_eof@0.5",      // non-numeric seed
        "42:bogus_site@0.5",       // unknown site
        "42:recv_mid_eof",         // no rule
        "42:recv_mid_eof@0",       // probability out of range
        "42:recv_mid_eof@1.5",     // probability out of range
        "42:recv_mid_eof@x",       // non-numeric probability
        "42:recv_mid_eof=0",       // call index out of range
        "42:recv_mid_eof=x",       // non-numeric call index
        "42:recv_mid_eof@0.5=2",   // both rule forms at once
        "42:recv_mid_eof@0.5,recv_mid_eof=1", // duplicate site
        "42:recv_mid_eof@0.5,,connect_fail@0.5", // empty entry
    };
    for (const char *spec : bad) {
        std::string why;
        EXPECT_FALSE(FaultPlan::parse(spec, why)) << spec;
        EXPECT_FALSE(why.empty()) << spec;
    }
}

TEST(FaultPlan, EverySiteNameParses)
{
    for (const std::string &site : FaultPlan::knownSites()) {
        std::string why;
        EXPECT_TRUE(FaultPlan::parse("1:" + site + "@0.5", why))
            << site << ": " << why;
    }
}

TEST(FaultPlan, NthCallRuleFiresExactlyOnce)
{
    auto plan = mustParse("7:recv_mid_eof=3");
    ASSERT_TRUE(plan);
    std::vector<bool> decisions;
    for (int i = 0; i < 10; ++i)
        decisions.push_back(plan->fire("recv_mid_eof"));
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(decisions[static_cast<size_t>(i)], i == 2) << i;
    EXPECT_EQ(plan->calls("recv_mid_eof"), 10u);
    EXPECT_EQ(plan->fired("recv_mid_eof"), 1u);
}

TEST(FaultPlan, ProbabilityOneFiresEveryCall)
{
    auto plan = mustParse("7:connect_fail@1");
    ASSERT_TRUE(plan);
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(plan->fire("connect_fail"));
    // Sites without a rule never fire (and no wildcard is present).
    EXPECT_FALSE(plan->fire("recv_mid_eof"));
}

TEST(FaultPlan, SameSeedReplaysTheSameDecisionSequence)
{
    auto a = mustParse("1234:recv_mid_eof@0.4");
    auto b = mustParse("1234:recv_mid_eof@0.4");
    ASSERT_TRUE(a && b);
    bool anyFired = false, anyClean = false;
    for (int i = 0; i < 200; ++i) {
        bool hit = a->fire("recv_mid_eof");
        EXPECT_EQ(hit, b->fire("recv_mid_eof")) << "call " << i;
        (hit ? anyFired : anyClean) = true;
    }
    // A 0.4 rule over 200 calls fires some and spares some.
    EXPECT_TRUE(anyFired);
    EXPECT_TRUE(anyClean);
}

TEST(FaultPlan, DifferentSeedsDiverge)
{
    auto a = mustParse("1:recv_mid_eof@0.5");
    auto b = mustParse("2:recv_mid_eof@0.5");
    ASSERT_TRUE(a && b);
    bool diverged = false;
    for (int i = 0; i < 200 && !diverged; ++i)
        diverged = a->fire("recv_mid_eof") != b->fire("recv_mid_eof");
    EXPECT_TRUE(diverged);
}

TEST(FaultPlan, WildcardCoversUnlistedSites)
{
    auto plan = mustParse("9:*@1,connect_fail@0.000001");
    ASSERT_TRUE(plan);
    EXPECT_TRUE(plan->fire("recv_mid_eof"));
    EXPECT_TRUE(plan->fire("store_torn_write"));
    // The explicit (near-zero) rule wins over the wildcard.
    EXPECT_FALSE(plan->fire("connect_fail"));
}

TEST(FaultPlan, NoPlanMeansNoFiring)
{
    installFaultPlan(nullptr);
    EXPECT_FALSE(faultFire("recv_mid_eof"));
    EXPECT_FALSE(faultFire("store_crash"));
}

// ---------------------------------------------------------------------
// Crash sites really exit (contained in gtest death-test forks).

using FaultDeathTest = ::testing::Test;

TEST(FaultDeathTest, StoreCrashExitsAfterPublishing)
{
    RunSpec spec = soloSpec("gcc", chaosOpts());
    RunResult result = executeRunSpec(spec);
    std::string dir =
        "hs_fault_death_" + std::to_string(::getpid());
    ASSERT_EQ(std::system(("rm -rf " + dir).c_str()), 0);
    EXPECT_EXIT(
        {
            ScopedFaultPlan chaos("1:store_crash=1");
            DiskResultStore store(dir);
            store.store(spec, result);
        },
        ::testing::ExitedWithCode(9), "injected crash");
    // The record the crash followed is durable and valid.
    DiskResultStore store(dir);
    RunResult back;
    EXPECT_EQ(store.load(spec, back), DiskResultStore::LoadStatus::Hit);
    EXPECT_TRUE(back == result);
}

// ---------------------------------------------------------------------
// Single-site behaviour through the real store.

class FaultStoreSite : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = "hs_fault_store_" + std::to_string(::getpid());
        ASSERT_EQ(std::system(("rm -rf " + dir_).c_str()), 0);
        spec_ = soloSpec("gcc", chaosOpts());
        result_ = executeRunSpec(spec_);
    }

    void
    TearDown() override
    {
        installFaultPlan(nullptr);
    }

    std::string dir_;
    RunSpec spec_;
    RunResult result_;
};

TEST_F(FaultStoreSite, TornWritePublishesButNeverServes)
{
    DiskResultStore store(dir_);
    {
        ScopedFaultPlan chaos("1:store_torn_write=1");
        EXPECT_TRUE(store.store(spec_, result_));
    }
    EXPECT_TRUE(store.contains(spec_));
    RunResult back;
    EXPECT_EQ(store.load(spec_, back),
              DiskResultStore::LoadStatus::Corrupt);

    // Fault-free rewrite heals the record in place.
    EXPECT_TRUE(store.store(spec_, result_));
    EXPECT_EQ(store.load(spec_, back), DiskResultStore::LoadStatus::Hit);
    EXPECT_TRUE(back == result_);
}

TEST_F(FaultStoreSite, ChecksumFlipPublishesButNeverServes)
{
    DiskResultStore store(dir_);
    {
        ScopedFaultPlan chaos("1:store_checksum_flip=1");
        EXPECT_TRUE(store.store(spec_, result_));
    }
    RunResult back;
    EXPECT_EQ(store.load(spec_, back),
              DiskResultStore::LoadStatus::Corrupt);
}

TEST_F(FaultStoreSite, RenameFailureLosesOnlyPersistence)
{
    DiskResultStore store(dir_);
    {
        ScopedFaultPlan chaos("1:store_rename_fail=1");
        EXPECT_FALSE(store.store(spec_, result_));
    }
    EXPECT_FALSE(store.contains(spec_));
    RunResult out;
    EXPECT_EQ(store.load(spec_, out), DiskResultStore::LoadStatus::Miss);
    // No temp litter left behind for prune to trip over.
    PruneOptions opts;
    opts.sweepCorrupt = true;
    PruneStats stats = pruneStore(dir_, opts);
    EXPECT_EQ(stats.scanned, 0u);
    EXPECT_EQ(stats.pruned, 0u);
}

// ---------------------------------------------------------------------
// The chaos sweep.

/** A worker serving on an ephemeral localhost port in this process. */
class ChaosWorker
{
  public:
    ChaosWorker()
    {
        listener_ = tcpListen(0);
        port_ = localPort(listener_);
        thread_ = std::thread([this] { serveWorker(listener_); });
    }

    ~ChaosWorker()
    {
        if (thread_.joinable()) {
            stop();
            thread_.join();
        }
    }

    Endpoint endpoint() const { return Endpoint{"127.0.0.1", port_}; }

    /**
     * Ask the serve loop to return, then join. Call only after the
     * fault plan is cleared — the shutdown handshake is not supposed
     * to fight injected connect failures.
     */
    void
    stop()
    {
        RemoteWorker handle(endpoint());
        ASSERT_TRUE(handle.ensureConnected());
        handle.sendShutdown();
    }

    void
    join()
    {
        thread_.join();
    }

  private:
    Socket listener_;
    uint16_t port_ = 0;
    std::thread thread_;
};

int
chaosSeeds()
{
    const char *env = std::getenv("HS_CHAOS_SEEDS");
    if (!env || !*env)
        return 100;
    char *end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v <= 0)
        return 100;
    return static_cast<int>(v);
}

/**
 * The headline contract: every seeded schedule of recoverable faults
 * — truncated frames, refused handshakes, failed and delayed
 * connects, torn and unpublished store writes, flipped checksums,
 * stalled dispatch lanes — thrown at a coordinator with two local
 * lanes, one TCP worker and a persistent store must produce exactly
 * the fault-free serial results, and a fault-free warm rerun over the
 * surviving store must too (recomputing whatever chaos corrupted,
 * serving nothing wrong). The crash sites (worker_crash, store_crash)
 * need real processes and are covered by tests/cli/hs_chaos_test.sh
 * and the resume test.
 */
TEST(ChaosSweep, EverySeededScheduleMatchesFaultFreeRun)
{
    const std::vector<RunSpec> specs = chaosMatrix();
    std::vector<RunResult> baseline;
    for (const RunSpec &spec : specs)
        baseline.push_back(executeRunSpec(spec));

    const std::string dir =
        "hs_chaos_sweep_" + std::to_string(::getpid());
    const int seeds = chaosSeeds();
    for (int seed = 1; seed <= seeds; ++seed) {
        ASSERT_EQ(std::system(("rm -rf " + dir).c_str()), 0);
        std::string spec =
            std::to_string(seed) +
            ":recv_mid_eof@0.25,connect_fail@0.25,connect_delay@0.5,"
            "handshake_garbage@0.25,store_torn_write@0.3,"
            "store_rename_fail@0.3,store_checksum_flip@0.3,"
            "dispatch_delay@0.5";
        std::string why;
        auto plan = FaultPlan::parse(spec, why);
        ASSERT_TRUE(plan) << why;

        std::vector<RunResult> chaotic;
        {
            installFaultPlan(std::move(plan));
            ChaosWorker worker;
            {
                DiskResultStore disk(dir);
                ResultStore mem;
                mem.attachDisk(&disk);
                ParallelRunner runner(2, &mem);
                runner.setWorkers({worker.endpoint()});
                chaotic = runner.run(specs);
            }
            // Safe: after run() returns every injection site is
            // quiescent (worker threads idle in accept, no frame in
            // flight), so only this thread can reach faultFire().
            installFaultPlan(nullptr);
            worker.stop();
            worker.join();
        }

        ASSERT_EQ(chaotic.size(), specs.size()) << "seed " << seed;
        for (size_t i = 0; i < specs.size(); ++i)
            ASSERT_TRUE(chaotic[i] == baseline[i])
                << "seed " << seed << " cell " << i;

        // Fault-free warm pass over whatever store the chaos run left
        // behind: disk hits or recomputes, never a wrong result.
        DiskResultStore disk(dir);
        ResultStore mem;
        mem.attachDisk(&disk);
        ParallelRunner runner(1, &mem);
        std::vector<RunResult> warm = runner.run(specs);
        ASSERT_EQ(warm.size(), specs.size());
        for (size_t i = 0; i < specs.size(); ++i)
            ASSERT_TRUE(warm[i] == baseline[i])
                << "seed " << seed << " warm cell " << i;
    }
    ASSERT_EQ(std::system(("rm -rf " + dir).c_str()), 0);
}

} // namespace
