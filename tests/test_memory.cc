/** @file Unit tests for the sparse functional memory. */

#include <gtest/gtest.h>

#include "mem/memory.hh"

namespace hs {
namespace {

TEST(SparseMemory, ReadsZeroWhenUntouched)
{
    SparseMemory mem;
    EXPECT_EQ(mem.read64(0), 0u);
    EXPECT_EQ(mem.read64(0xDEADBEEF00ull), 0u);
    EXPECT_EQ(mem.allocatedPages(), 0u);
}

TEST(SparseMemory, Write64ReadBack)
{
    SparseMemory mem;
    mem.write64(0x1000, 0x0123456789ABCDEFull);
    EXPECT_EQ(mem.read64(0x1000), 0x0123456789ABCDEFull);
}

TEST(SparseMemory, AlignmentMasking)
{
    SparseMemory mem;
    mem.write64(0x1003, 42); // low 3 bits ignored
    EXPECT_EQ(mem.read64(0x1000), 42u);
    EXPECT_EQ(mem.read64(0x1007), 42u);
}

TEST(SparseMemory, ByteAccess)
{
    SparseMemory mem;
    mem.write8(0x2000, 0xAB);
    EXPECT_EQ(mem.read8(0x2000), 0xAB);
    EXPECT_EQ(mem.read8(0x2001), 0x00);
    // The byte lands in the right position of the 64-bit word.
    EXPECT_EQ(mem.read64(0x2000) & 0xFF, 0xABu);
}

TEST(SparseMemory, PagesAllocateLazily)
{
    SparseMemory mem;
    mem.write64(0, 1);
    EXPECT_EQ(mem.allocatedPages(), 1u);
    mem.write64(SparseMemory::pageBytes, 2);
    EXPECT_EQ(mem.allocatedPages(), 2u);
    mem.write64(8, 3); // same page as the first write
    EXPECT_EQ(mem.allocatedPages(), 2u);
}

TEST(SparseMemory, DistantAddressesIndependent)
{
    SparseMemory mem;
    mem.write64(0x0000000010ull, 1);
    mem.write64(0x4000000010ull, 2);
    EXPECT_EQ(mem.read64(0x0000000010ull), 1u);
    EXPECT_EQ(mem.read64(0x4000000010ull), 2u);
}

TEST(SparseMemory, ClearDropsEverything)
{
    SparseMemory mem;
    mem.write64(128, 7);
    mem.clear();
    EXPECT_EQ(mem.read64(128), 0u);
    EXPECT_EQ(mem.allocatedPages(), 0u);
}

TEST(SparseMemory, PageBoundaryWords)
{
    SparseMemory mem;
    // Last word of page 0 and first word of page 1.
    Addr last = SparseMemory::pageBytes - 8;
    mem.write64(last, 0x1111);
    mem.write64(SparseMemory::pageBytes, 0x2222);
    EXPECT_EQ(mem.read64(last), 0x1111u);
    EXPECT_EQ(mem.read64(SparseMemory::pageBytes), 0x2222u);
}

} // namespace
} // namespace hs
