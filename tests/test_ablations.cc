/** @file Ablation tests for microarchitectural knobs the paper's
 *  argument touches: fetch policy (the attack is not an ICOUNT
 *  artefact), cache replacement (the Figure 2 conflict trick assumes
 *  LRU), and the FP false-positive probe. */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "mem/cache.hh"
#include "sim/experiment.hh"
#include "smt/pipeline.hh"

namespace hs {
namespace {

TEST(FetchPolicyAblation, RoundRobinSharesEvenly)
{
    // A high-IPC hammer paired with a stall-prone thread: ICOUNT lets
    // the hammer take over; round-robin keeps fetch opportunities
    // even.
    Program fast = makeVariant1();
    std::string slow_src = "addi r2, r0, 0\ntop:\n";
    for (int i = 0; i < 9; ++i)
        slow_src += "ld r3, " + std::to_string(i * 262144) + "(r2)\n";
    slow_src += "jmp top\n";

    auto run = [&](FetchPolicy policy) {
        Program slow = assemble(slow_src);
        SmtParams params;
        params.numThreads = 2;
        params.fetchPolicy = policy;
        Pipeline pipe(params);
        pipe.setThreadProgram(0, &fast);
        pipe.setThreadProgram(1, &slow);
        for (int i = 0; i < 100000; ++i)
            pipe.tick();
        return std::make_pair(pipe.committed(0), pipe.committed(1));
    };

    auto [ic_fast, ic_slow] = run(FetchPolicy::Icount);
    auto [rr_fast, rr_slow] = run(FetchPolicy::RoundRobin);
    // The slow thread does at least as well without ICOUNT favouring
    // the hammer.
    EXPECT_GE(rr_slow, ic_slow);
    // And the hammer still dominates under ICOUNT.
    EXPECT_GT(ic_fast, 20 * ic_slow);
}

TEST(FetchPolicyAblation, HeatStrokeWorksWithoutIcount)
{
    // The paper's central claim (Section 3.1): heat stroke is a
    // power-density attack, not a fetch-policy exploit. Replacing
    // ICOUNT with round-robin must not defuse it.
    ExperimentOptions opts;
    opts.timeScale = 100.0;
    opts.dtm = DtmMode::StopAndGo;

    SimConfig cfg = makeSimConfig(opts);
    cfg.smt.fetchPolicy = FetchPolicy::RoundRobin;
    Simulator sim(cfg);
    sim.setWorkload(0, synthesizeSpec("gcc"));
    sim.setWorkload(1, makeVariant(2, makeMaliciousParams(opts)));
    RunResult r = sim.run();
    EXPECT_GE(r.emergencies, 2u)
        << "the hot spot must form under round-robin fetch too";
    EXPECT_GT(r.coolingFraction(0), 0.05);
}

TEST(ReplacementAblation, FifoStillThrashesOnConflictSet)
{
    // Cycling assoc+1 lines through one set defeats FIFO exactly like
    // LRU (the fill order matches the access order).
    CacheParams params{"fifo", 64 * 1024, 8, 64, 2,
                       ReplacementPolicy::Fifo};
    Cache c(params);
    int period = c.numSets() * 64;
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 9; ++i)
            c.access(static_cast<Addr>(i) * static_cast<Addr>(period),
                     false);
    }
    EXPECT_EQ(c.hits(), 0u);
}

TEST(ReplacementAblation, RandomPartiallyDefeatsConflictSet)
{
    // Under random replacement some of the nine conflicting lines
    // survive between rounds: the variant2 miss loop loses its
    // guarantee. (A defense-relevant observation the paper does not
    // explore.)
    CacheParams params{"rand", 64 * 1024, 8, 64, 2,
                       ReplacementPolicy::Random};
    Cache c(params);
    int period = c.numSets() * 64;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 9; ++i)
            c.access(static_cast<Addr>(i) * static_cast<Addr>(period),
                     false);
    }
    EXPECT_GT(c.hits(), 50u)
        << "random replacement should break the deterministic thrash";
}

TEST(ReplacementAblation, RandomIsDeterministicAcrossRuns)
{
    auto run = [] {
        CacheParams params{"rand", 1024, 4, 64, 2,
                           ReplacementPolicy::Random};
        Cache c(params);
        for (Addr a = 0; a < 64 * 64; a += 64)
            c.access(a, false);
        return c.hits();
    };
    EXPECT_EQ(run(), run());
}

TEST(ReplacementAblation, LruBeatsRandomOnLoopingWorkingSet)
{
    // Sanity on the policies themselves: a working set slightly larger
    // than one way benefits from LRU's recency tracking... but a
    // cyclic scan is LRU's worst case, where random wins. Check the
    // cyclic-scan ordering.
    auto hits = [](ReplacementPolicy policy) {
        CacheParams params{"c", 1024, 4, 64, 2, policy}; // 16 lines
        Cache c(params);
        // Cyclic scan of 20 lines mapping across 4 sets (5 per set).
        for (int round = 0; round < 40; ++round) {
            for (Addr a = 0; a < 20 * 64; a += 64)
                c.access(a, false);
        }
        return c.hits();
    };
    EXPECT_EQ(hits(ReplacementPolicy::Lru), 0u)
        << "cyclic scan over >assoc lines never hits under LRU";
    EXPECT_GT(hits(ReplacementPolicy::Random), 100u);
}

TEST(ReplacementAblation, RandomL2WeakensVariant2EndToEnd)
{
    // Pipeline-level confirmation: with a random-replacement L2 the
    // Figure 2 conflict loop stops missing deterministically, so the
    // miss phase runs faster (higher IPC) than under LRU.
    auto miss_loop_ipc = [](ReplacementPolicy policy) {
        MaliciousParams mp;
        mp.hammerIters = 1;   // miss phase only
        mp.missIters = 100000;
        Program v2 = makeVariant2(mp);
        SmtParams params;
        params.numThreads = 1;
        params.mem.l2.replacement = policy;
        Pipeline pipe(params);
        pipe.setThreadProgram(0, &v2);
        for (int i = 0; i < 400000; ++i)
            pipe.tick();
        return pipe.ipc(0);
    };
    double lru = miss_loop_ipc(ReplacementPolicy::Lru);
    double rnd = miss_loop_ipc(ReplacementPolicy::Random);
    EXPECT_GT(rnd, 1.3 * lru)
        << "random replacement should blunt the conflict trick";
}

TEST(FalsePositiveProbe, FpHammerIsNotSedated)
{
    // Variant 4 hammers the FP register file aggressively, but the FP
    // cluster's power density cannot form a hot spot: the defense must
    // leave the thread alone (no false positive on raw aggression).
    ExperimentOptions opts;
    opts.timeScale = 100.0;
    opts.dtm = DtmMode::SelectiveSedation;
    SimConfig cfg = makeSimConfig(opts);
    Simulator sim(cfg);
    sim.setWorkload(0, synthesizeSpec("gcc"));
    sim.setWorkload(1, makeVariant(4, makeMaliciousParams(opts)));
    RunResult r = sim.run();
    EXPECT_TRUE(r.sedationEvents.empty());
    EXPECT_EQ(r.emergencies, 0u);
    EXPECT_GT(r.threads[1].ipc, 0.5) << "the FP thread runs freely";
}

} // namespace
} // namespace hs
