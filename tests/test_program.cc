/** @file Unit tests for the Program container. */

#include <gtest/gtest.h>

#include "isa/program.hh"

namespace hs {
namespace {

Instruction
makeAdd(int rd, int rs1, int rs2)
{
    Instruction i;
    i.op = Opcode::Add;
    i.rd = static_cast<uint8_t>(rd);
    i.rs1 = static_cast<uint8_t>(rs1);
    i.rs2 = static_cast<uint8_t>(rs2);
    return i;
}

TEST(Program, AppendAndFetch)
{
    Program p("t");
    EXPECT_TRUE(p.empty());
    uint64_t idx = p.append(makeAdd(1, 2, 3));
    EXPECT_EQ(idx, 0u);
    EXPECT_EQ(p.size(), 1u);
    EXPECT_EQ(p.fetch(0).rd, 1);
}

TEST(Program, FetchOutOfRangePanics)
{
    Program p("t");
    p.append(makeAdd(1, 2, 3));
    EXPECT_DEATH(p.fetch(1), "out of range");
}

TEST(Program, AtAllowsTargetPatching)
{
    Program p("t");
    Instruction j;
    j.op = Opcode::Jmp;
    p.append(j);
    p.at(0).target = 42;
    EXPECT_EQ(p.fetch(0).target, 42u);
}

TEST(Program, DataImageStored)
{
    Program p("t");
    p.poke64(0x100, 777);
    p.poke64(0x108, 888);
    EXPECT_EQ(p.dataImage().size(), 2u);
    EXPECT_EQ(p.dataImage().at(0x100), 777u);
}

TEST(Program, InitRegsValidated)
{
    Program p("t");
    p.setInitReg(5, -3);
    EXPECT_EQ(p.initRegs().at(5), -3);
    EXPECT_DEATH(p.setInitReg(0, 1), "not writable");
    EXPECT_DEATH(p.setInitReg(32, 1), "not writable");
}

TEST(Program, NameMutators)
{
    Program p;
    p.setName("renamed");
    EXPECT_EQ(p.name(), "renamed");
}

TEST(Program, InstBytesConstant)
{
    // The fetch stage computes I-cache addresses from this.
    EXPECT_EQ(Program::instBytes, 8u);
}

} // namespace
} // namespace hs
