/** @file Corner-case tests for the SMT pipeline: store-queue
 *  forwarding, structural-hazard back-pressure, squash interactions
 *  and speculative-state repair. */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "smt/pipeline.hh"

namespace hs {
namespace {

Pipeline
runToHalt(const Program &prog, const SmtParams &params,
          Cycles max_cycles = 2000000)
{
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &prog);
    while (!pipe.allHalted() && pipe.cycle() < max_cycles)
        pipe.tick();
    EXPECT_TRUE(pipe.allHalted()) << "program did not halt";
    return pipe;
}

SmtParams
solo()
{
    SmtParams p;
    p.numThreads = 1;
    return p;
}

TEST(PipelineCorners, StoreOverwritesForwardTheLatest)
{
    // Two stores to the same address in flight: the load must see the
    // YOUNGER store's value.
    Program p = assemble("addi r2, r0, 64\n"
                         "addi r1, r0, 1\n"
                         "st r1, 0(r2)\n"
                         "addi r1, r0, 2\n"
                         "st r1, 0(r2)\n"
                         "ld r3, 0(r2)\n"
                         "halt\n");
    Pipeline pipe = runToHalt(p, solo());
    EXPECT_EQ(pipe.thread(0).intRegs[3], 2);
}

TEST(PipelineCorners, LoadBetweenStoresSeesOlderOnly)
{
    Program p = assemble("addi r2, r0, 64\n"
                         "addi r1, r0, 5\n"
                         "st r1, 0(r2)\n"
                         "ld r3, 0(r2)\n"  // must see 5
                         "addi r1, r0, 9\n"
                         "st r1, 0(r2)\n"
                         "ld r4, 0(r2)\n"  // must see 9
                         "halt\n");
    Pipeline pipe = runToHalt(p, solo());
    EXPECT_EQ(pipe.thread(0).intRegs[3], 5);
    EXPECT_EQ(pipe.thread(0).intRegs[4], 9);
}

TEST(PipelineCorners, StoreWithSlowAddressBlocksYoungerLoad)
{
    // The store's address depends on a long-latency chain; the younger
    // load to (what turns out to be) the same address must wait and
    // still read the right value.
    Program p = assemble("addi r1, r0, 8\n"
                         "addi r5, r0, 77\n"
                         "mul r2, r1, r1\n"  // 64
                         "mul r2, r2, r1\n"  // 512 (slow chain)
                         "div r2, r2, r1\n"  // 64 again, 20-cycle div
                         "st r5, 0(r2)\n"
                         "ld r3, 64(r0)\n"   // same address, fast AGEN
                         "halt\n");
    Pipeline pipe = runToHalt(p, solo());
    EXPECT_EQ(pipe.thread(0).intRegs[3], 77);
}

TEST(PipelineCorners, MispredictInsideL2MissShadow)
{
    // A branch after an L2-missing load: squashes from both sources
    // must compose without corrupting state.
    std::string src = "addi r9, r0, 4\n"
                      "addi r6, r0, 0\n"
                      "loop:\n";
    // Conflict loads guarantee L2 misses.
    for (int i = 0; i < 9; ++i)
        src += "ld r3, " + std::to_string(i * 262144) + "(r0)\n";
    src += "andi r4, r9, 1\n"
           "beq r4, r0, even\n"
           "addi r6, r6, 10\n"
           "jmp next\n"
           "even:\n"
           "addi r6, r6, 1\n"
           "next:\n"
           "addi r9, r9, -1\n"
           "bne r9, r0, loop\n"
           "halt\n";
    Program p = assemble(src);
    Pipeline pipe = runToHalt(p, solo());
    EXPECT_EQ(pipe.thread(0).intRegs[6], 22); // 1+10+1+10
}

TEST(PipelineCorners, TinyLsqStillCorrect)
{
    SmtParams params = solo();
    params.lsqEntries = 2;
    Program p = assemble("addi r2, r0, 128\n"
                         "addi r1, r0, 3\n"
                         "st r1, 0(r2)\n"
                         "st r1, 8(r2)\n"
                         "st r1, 16(r2)\n"
                         "ld r3, 0(r2)\n"
                         "ld r4, 8(r2)\n"
                         "ld r5, 16(r2)\n"
                         "add r6, r3, r4\n"
                         "add r6, r6, r5\n"
                         "halt\n");
    Pipeline pipe = runToHalt(p, params);
    EXPECT_EQ(pipe.thread(0).intRegs[6], 9);
}

TEST(PipelineCorners, BackToBackDependentBranches)
{
    Program p = assemble("addi r1, r0, 1\n"
                         "addi r2, r0, 2\n"
                         "blt r1, r2, a\n"
                         "addi r5, r0, 100\n"
                         "a:\n"
                         "bge r2, r1, b\n"
                         "addi r5, r5, 200\n"
                         "b:\n"
                         "addi r6, r5, 1\n"
                         "halt\n");
    Pipeline pipe = runToHalt(p, solo());
    EXPECT_EQ(pipe.thread(0).intRegs[5], 0);
    EXPECT_EQ(pipe.thread(0).intRegs[6], 1);
}

TEST(PipelineCorners, WawThroughRenameMap)
{
    // Rapid same-register overwrites: the final value must be the
    // program-order-last one even when all are in flight together.
    Program p = assemble("addi r1, r0, 1\n"
                         "addi r1, r0, 2\n"
                         "addi r1, r0, 3\n"
                         "addi r1, r0, 4\n"
                         "add r2, r1, r1\n"
                         "halt\n");
    Pipeline pipe = runToHalt(p, solo());
    EXPECT_EQ(pipe.thread(0).intRegs[1], 4);
    EXPECT_EQ(pipe.thread(0).intRegs[2], 8);
}

TEST(PipelineCorners, NegativeDisplacementAddressing)
{
    Program p = assemble("addi r2, r0, 128\n"
                         "addi r1, r0, 42\n"
                         "st r1, -8(r2)\n"
                         "ld r3, 120(r0)\n"
                         "halt\n");
    Pipeline pipe = runToHalt(p, solo());
    EXPECT_EQ(pipe.thread(0).intRegs[3], 42);
}

TEST(PipelineCorners, FpAndIntNamespacesDistinct)
{
    // f5 and r5 are different registers; renaming must not conflate.
    Program p = assemble("addi r5, r0, 11\n"
                         "fcvt f5, r5\n"
                         "addi r5, r0, 22\n"
                         "fadd f6, f5, f5\n"
                         "halt\n");
    Pipeline pipe = runToHalt(p, solo());
    EXPECT_EQ(pipe.thread(0).intRegs[5], 22);
    EXPECT_DOUBLE_EQ(pipe.thread(0).fpRegs[6], 22.0);
}

TEST(PipelineCorners, SedatedAtStartNeverFetches)
{
    Program p = assemble("top:\naddi r1, r1, 1\njmp top\n");
    SmtParams params = solo();
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &p);
    pipe.setSedated(0, true);
    for (int i = 0; i < 10000; ++i)
        pipe.tick();
    EXPECT_EQ(pipe.committed(0), 0u);
    EXPECT_EQ(pipe.thread(0).sedationCycles, 10000u);
}

TEST(PipelineCorners, HaltOnFirstInstruction)
{
    Program p = assemble("halt\n");
    Pipeline pipe = runToHalt(p, solo(), 1000);
    EXPECT_EQ(pipe.committed(0), 1u);
}

} // namespace
} // namespace hs
