/** @file Property tests: architectural results must be independent of
 *  microarchitectural configuration (widths, queue sizes, predictor
 *  geometry), and pipeline invariants must hold across sweeps. */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "smt/pipeline.hh"
#include "workload/generator.hh"

namespace hs {
namespace {

/** A program mixing arithmetic, memory, FP and data-dependent control;
 *  computes a checksum in r30. */
Program
checksumProgram()
{
    return assemble(R"(
        addi r1, r0, 17       # lcg state
        addi r28, r0, 2891    # lcg mul
        addi r29, r0, 12345   # lcg add
        addi r5, r0, 200      # iterations
        add r30, r0, r0       # checksum
    loop:
        mul r1, r1, r28
        add r1, r1, r29
        andi r2, r1, 8184     # address in [0, 8K), 8-aligned
        st r1, 0(r2)
        ld r3, 0(r2)
        add r30, r30, r3
        andi r4, r1, 1
        beq r4, r0, even
        addi r30, r30, 7
        jmp next
    even:
        addi r30, r30, 3
    next:
        fcvt f1, r3
        fadd f2, f2, f1
        addi r5, r5, -1
        bne r5, r0, loop
        halt
    )");
}

int64_t
runChecksum(const SmtParams &params)
{
    Program p = checksumProgram();
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &p);
    Cycles guard = 3000000;
    while (!pipe.allHalted() && pipe.cycle() < guard)
        pipe.tick();
    EXPECT_TRUE(pipe.allHalted());
    return pipe.thread(0).intRegs[30];
}

int64_t
referenceChecksum()
{
    // Functional reference, computed directly.
    int64_t lcg = 17, sum = 0;
    for (int i = 0; i < 200; ++i) {
        lcg = lcg * 2891 + 12345;
        sum += lcg;        // store+load round trip
        sum += (lcg & 1) ? 7 : 3;
    }
    return sum;
}

TEST(PipelineProps, ChecksumMatchesFunctionalReference)
{
    SmtParams params;
    params.numThreads = 1;
    EXPECT_EQ(runChecksum(params), referenceChecksum());
}

class ConfigSweep : public ::testing::TestWithParam<SmtParams>
{
};

TEST_P(ConfigSweep, ArchitecturalResultIndependentOfConfig)
{
    EXPECT_EQ(runChecksum(GetParam()), referenceChecksum());
}

std::vector<SmtParams>
sweepConfigs()
{
    std::vector<SmtParams> configs;
    auto base = [] {
        SmtParams p;
        p.numThreads = 1;
        return p;
    };
    {
        SmtParams p = base();
        p.ruuEntries = 8;
        p.lsqEntries = 4;
        configs.push_back(p);
    }
    {
        SmtParams p = base();
        p.issueWidth = 1;
        p.intAlus = 1;
        p.memPorts = 1;
        configs.push_back(p);
    }
    {
        SmtParams p = base();
        p.fetchWidth = 1;
        configs.push_back(p);
    }
    {
        SmtParams p = base();
        p.commitWidth = 1;
        configs.push_back(p);
    }
    {
        SmtParams p = base();
        p.mispredictPenalty = 30;
        configs.push_back(p);
    }
    {
        SmtParams p = base();
        p.squashOnL2Miss = false;
        configs.push_back(p);
    }
    {
        SmtParams p = base();
        p.mem.l1d.sizeBytes = 1024;
        p.mem.l1d.assoc = 1;
        p.mem.l2.sizeBytes = 64 * 1024;
        configs.push_back(p);
    }
    {
        SmtParams p = base();
        p.bpred.bimodalEntries = 16;
        p.bpred.gshareEntries = 16;
        p.bpred.chooserEntries = 16;
        p.bpred.btbEntries = 8;
        p.bpred.btbAssoc = 2;
        configs.push_back(p);
    }
    return configs;
}

INSTANTIATE_TEST_SUITE_P(Configs, ConfigSweep,
                         ::testing::ValuesIn(sweepConfigs()));

TEST(PipelineProps, TwoCopiesProduceSameResults)
{
    // The same program on both SMT contexts must produce identical
    // architectural state despite resource sharing.
    Program p = checksumProgram();
    SmtParams params;
    params.numThreads = 2;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &p);
    pipe.setThreadProgram(1, &p);
    while (!pipe.allHalted() && pipe.cycle() < 3000000)
        pipe.tick();
    ASSERT_TRUE(pipe.allHalted());
    EXPECT_EQ(pipe.thread(0).intRegs[30], referenceChecksum());
    EXPECT_EQ(pipe.thread(1).intRegs[30], referenceChecksum());
}

TEST(PipelineProps, SedationMidRunPreservesCorrectness)
{
    // Sedating and un-sedating a thread must never corrupt its
    // architectural execution.
    Program p = checksumProgram();
    SmtParams params;
    params.numThreads = 1;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &p);
    int flips = 0;
    while (!pipe.allHalted() && pipe.cycle() < 3000000) {
        pipe.tick();
        if (pipe.cycle() % 997 == 0) {
            pipe.setSedated(0, (flips++ % 2) == 0);
        }
    }
    pipe.setSedated(0, false);
    while (!pipe.allHalted() && pipe.cycle() < 3000000)
        pipe.tick();
    ASSERT_TRUE(pipe.allHalted());
    EXPECT_EQ(pipe.thread(0).intRegs[30], referenceChecksum());
}

TEST(PipelineProps, GlobalStallMidRunPreservesCorrectness)
{
    Program p = checksumProgram();
    SmtParams params;
    params.numThreads = 1;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &p);
    int flips = 0;
    while (!pipe.allHalted() && pipe.cycle() < 3000000) {
        pipe.tick();
        if (pipe.cycle() % 1009 == 0)
            pipe.setGlobalStall((flips++ % 3) == 0);
    }
    pipe.setGlobalStall(false);
    while (!pipe.allHalted() && pipe.cycle() < 3000000)
        pipe.tick();
    ASSERT_TRUE(pipe.allHalted());
    EXPECT_EQ(pipe.thread(0).intRegs[30], referenceChecksum());
}

TEST(PipelineProps, DeterministicAcrossRuns)
{
    Program p = synthesizeSpec("gzip");
    auto run = [&] {
        SmtParams params;
        params.numThreads = 1;
        Pipeline pipe(params);
        pipe.setThreadProgram(0, &p);
        for (int i = 0; i < 100000; ++i)
            pipe.tick();
        return pipe.committed(0);
    };
    EXPECT_EQ(run(), run());
}

TEST(PipelineProps, CommittedNeverExceedsCommitBandwidth)
{
    Program p = synthesizeSpec("eon");
    SmtParams params;
    params.numThreads = 1;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &p);
    uint64_t prev = 0;
    for (int i = 0; i < 50000; ++i) {
        pipe.tick();
        uint64_t now = pipe.committed(0);
        EXPECT_LE(now - prev,
                  static_cast<uint64_t>(params.commitWidth));
        prev = now;
    }
}

TEST(PipelineProps, IpcNeverExceedsIssueWidth)
{
    for (const char *name : {"eon", "crafty", "mesa"}) {
        Program p = synthesizeSpec(name);
        SmtParams params;
        params.numThreads = 1;
        Pipeline pipe(params);
        pipe.setThreadProgram(0, &p);
        for (int i = 0; i < 200000; ++i)
            pipe.tick();
        EXPECT_LE(pipe.ipc(0), params.issueWidth) << name;
    }
}

class ThreadCountSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(ThreadCountSweep, AllContextsProgressUnderIcount)
{
    int n = GetParam();
    SmtParams params;
    params.numThreads = n;
    Pipeline pipe(params);
    std::vector<Program> progs;
    progs.reserve(static_cast<size_t>(n));
    for (int t = 0; t < n; ++t)
        progs.push_back(synthesizeSpec(specSuite()[static_cast<size_t>(
            t % 4)], static_cast<uint64_t>(t + 1)));
    for (int t = 0; t < n; ++t)
        pipe.setThreadProgram(t, &progs[static_cast<size_t>(t)]);
    for (int i = 0; i < 100000; ++i)
        pipe.tick();
    for (int t = 0; t < n; ++t)
        EXPECT_GT(pipe.committed(t), 500u) << "thread " << t;
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadCountSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

} // namespace
} // namespace hs
