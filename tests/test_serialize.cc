/**
 * @file
 * Round-trip tests for the RunSpec/RunResult binary serialiser: the
 * distributed service is only sound if a result that crossed the wire
 * (or the disk) is indistinguishable — including its JSON/CSV bytes —
 * from the locally computed original.
 */

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "sim/results.hh"
#include "sim/run_spec.hh"
#include "sim/runner.hh"
#include "sim/serialize.hh"

namespace {

using namespace hs;

ExperimentOptions
fastOpts()
{
    ExperimentOptions opts;
    opts.timeScale = 2000.0;
    return opts;
}

/** A spec exercising every serialised field, incl. non-POD members. */
RunSpec
fancySpec()
{
    ExperimentOptions opts = fastOpts();
    opts.dtm = DtmMode::SelectiveSedation;
    opts.upperThreshold = 351.25;
    opts.lowerThreshold = 350.5;
    opts.recordTempTrace = true;
    RunSpec spec = withVariantSpec("gcc", 2, opts);
    spec.sensorNoiseK = 0.125;
    spec.descheduleAfter = 3;
    spec.label = "fancy spec, with punctuation";
    return spec;
}

TEST(Serialize, Fnv1aMatchesKnownVectors)
{
    // Standard FNV-1a 64-bit test vectors.
    const uint8_t a[] = {'a'};
    EXPECT_EQ(fnv1a64(a, 0), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64(a, 1), 0xaf63dc4c8601ec8cull);
    const uint8_t foobar[] = {'f', 'o', 'o', 'b', 'a', 'r'};
    EXPECT_EQ(fnv1a64(foobar, 6), 0x85944171f73967e8ull);
}

TEST(Serialize, RunSpecRoundTripPreservesCanonicalKey)
{
    RunSpec spec = fancySpec();
    std::vector<uint8_t> bytes;
    StateWriter w(bytes);
    saveRunSpec(w, spec);
    StateReader r(bytes);
    RunSpec back = loadRunSpec(r);
    EXPECT_TRUE(r.done());

    EXPECT_EQ(back.canonicalKey(), spec.canonicalKey());
    EXPECT_EQ(back.hash(), spec.hash());
    EXPECT_EQ(back.label, spec.label);
    EXPECT_EQ(back.workloads.size(), spec.workloads.size());
    EXPECT_EQ(back.workloads[0].name, spec.workloads[0].name);
}

TEST(Serialize, MultiWorkloadSpecRoundTrip)
{
    RunSpec spec = specPairSpec("gcc", "mesa", fastOpts());
    std::vector<uint8_t> bytes;
    StateWriter w(bytes);
    saveRunSpec(w, spec);
    StateReader r(bytes);
    EXPECT_EQ(loadRunSpec(r).canonicalKey(), spec.canonicalKey());
}

TEST(Serialize, RunResultRoundTripIsBitIdentical)
{
    // A real simulated result with a temperature trace and histograms
    // on board, so every container field is non-trivially exercised.
    RunSpec spec = fancySpec();
    RunResult original = executeRunSpec(spec);
    ASSERT_FALSE(original.threads.empty());
    ASSERT_FALSE(original.tempTrace.empty());

    RunResult back = decodeRunResult(encodeRunResult(original));

    // operator== covers the simulated outcome bit for bit...
    EXPECT_TRUE(back == original);
    // ...and the fields it deliberately excludes must survive too: a
    // store-served rerun re-emits the cold run's host throughput.
    EXPECT_EQ(back.hostSeconds, original.hostSeconds);
    EXPECT_EQ(back.simCyclesPerHostSec, original.simCyclesPerHostSec);
    ASSERT_EQ(back.histograms.size(), original.histograms.size());
    for (size_t i = 0; i < back.histograms.size(); ++i)
        EXPECT_TRUE(back.histograms[i] == original.histograms[i]);
}

TEST(Serialize, RoundTrippedResultEmitsIdenticalJsonAndCsv)
{
    RunSpec spec = soloSpec("gcc", fastOpts());
    RunResult original = executeRunSpec(spec);
    RunResult back = decodeRunResult(encodeRunResult(original));

    std::ostringstream j0, j1;
    writeResultJson(j0, original);
    writeResultJson(j1, back);
    EXPECT_EQ(j0.str(), j1.str());

    std::ostringstream c0, c1;
    writeResultCsv(c0, original);
    writeResultCsv(c1, back);
    EXPECT_EQ(c0.str(), c1.str());
}

TEST(Serialize, TrailingBytesAreFatal)
{
    RunResult r = executeRunSpec(soloSpec("gcc", fastOpts()));
    std::vector<uint8_t> bytes = encodeRunResult(r);
    bytes.push_back(0x5a);
    EXPECT_DEATH(decodeRunResult(bytes), "trailing");
}

} // namespace
