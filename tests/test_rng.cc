/** @file Unit tests for the deterministic PRNG. */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace hs {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(Rng, BoundedCoversRange)
{
    Rng rng(7);
    std::array<int, 8> seen{};
    for (int i = 0; i < 10000; ++i)
        ++seen[rng.nextBounded(8)];
    for (int count : seen)
        EXPECT_GT(count, 1000); // roughly uniform over 8 buckets
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(11);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double v = rng.nextDouble();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceRoughlyCalibrated)
{
    Rng rng(15);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

} // namespace
} // namespace hs
