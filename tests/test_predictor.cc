/** @file Unit tests for the hybrid branch predictor. */

#include <gtest/gtest.h>

#include "branch/predictor.hh"

namespace hs {
namespace {

/** Train pc with a fixed outcome n times (simulating resolution). */
void
train(BranchPredictor &bp, ThreadId tid, uint64_t pc, bool taken, int n)
{
    for (int i = 0; i < n; ++i) {
        uint32_t hist = bp.history(tid);
        bp.predict(tid, pc);
        bp.update(tid, pc, taken, pc + 10, hist);
    }
}

TEST(Predictor, LearnsAlwaysTaken)
{
    BranchPredictor bp;
    train(bp, 0, 100, true, 8);
    uint32_t hist = bp.history(0);
    BranchPrediction p = bp.predict(0, 100);
    bp.update(0, 100, true, 110, hist);
    EXPECT_TRUE(p.taken);
    EXPECT_TRUE(p.targetKnown);
    EXPECT_EQ(p.target, 110u);
}

TEST(Predictor, LearnsNeverTaken)
{
    BranchPredictor bp;
    train(bp, 0, 200, false, 8);
    BranchPrediction p = bp.predict(0, 200);
    EXPECT_FALSE(p.taken);
}

TEST(Predictor, WithoutBtbEntryPredictsNotTaken)
{
    BranchPredictor bp;
    // Bias the counters taken WITHOUT installing a BTB entry (update
    // with taken installs one, so prime a different pc).
    BranchPrediction p = bp.predict(0, 12345);
    EXPECT_FALSE(p.taken) << "cannot redirect without a target";
}

TEST(Predictor, GshareLearnsAlternatingPattern)
{
    // Pattern T N T N ... is history-predictable.
    BranchPredictor bp;
    bool outcome = false;
    // Train, repairing speculative history on mispredicts exactly as
    // the pipeline's writeback stage does.
    for (int i = 0; i < 400; ++i) {
        uint32_t hist = bp.history(0);
        BranchPrediction p = bp.predict(0, 300);
        bp.update(0, 300, outcome, 310, hist);
        if (p.taken != outcome)
            bp.restoreHistory(0, hist, outcome);
        outcome = !outcome;
    }
    // Measure accuracy over the next 100.
    int correct = 0;
    for (int i = 0; i < 100; ++i) {
        uint32_t hist = bp.history(0);
        BranchPrediction p = bp.predict(0, 300);
        correct += p.taken == outcome;
        bp.update(0, 300, outcome, 310, hist);
        if (p.taken != outcome)
            bp.restoreHistory(0, hist, outcome);
        outcome = !outcome;
    }
    EXPECT_GT(correct, 90);
}

TEST(Predictor, PerThreadHistoryIsolated)
{
    BranchPredictor bp;
    uint32_t h0 = bp.history(0);
    bp.predict(0, 1); // thread 0 speculates
    EXPECT_EQ(bp.history(1), 0u); // thread 1 untouched
    EXPECT_NE(bp.history(0), h0 + 12345); // h0 changed or not, but...
    bp.predict(1, 1);
    // Histories evolve independently (both made one prediction of the
    // same static branch, so they should now be equal).
    EXPECT_EQ(bp.history(0), bp.history(1));
}

TEST(Predictor, RestoreHistoryAfterSquash)
{
    BranchPredictor bp;
    // Make some predictions to build history.
    bp.predict(0, 1);
    bp.predict(0, 2);
    uint32_t checkpoint = bp.history(0);
    bp.predict(0, 3);
    bp.predict(0, 4);
    // Mispredict resolution: restore to checkpoint + actual outcome.
    bp.restoreHistory(0, checkpoint, true);
    EXPECT_EQ(bp.history(0), ((checkpoint << 1) | 1u) & 0xFFFu);
}

TEST(Predictor, CountsLookupsAndMispredicts)
{
    BranchPredictor bp;
    bp.predict(0, 7);
    bp.predict(0, 8);
    bp.notifyMispredict();
    EXPECT_EQ(bp.lookups(), 2u);
    EXPECT_EQ(bp.mispredicts(), 1u);
    bp.resetStats();
    EXPECT_EQ(bp.lookups(), 0u);
}

TEST(Predictor, BtbEvictsLru)
{
    BranchPredictorParams params;
    params.btbEntries = 8;
    params.btbAssoc = 2; // 4 sets
    BranchPredictor bp(params);
    // Three taken branches mapping to set 0 (pc % 4 == 0).
    for (uint64_t pc : {0u, 4u, 8u}) {
        uint32_t hist = bp.history(0);
        bp.predict(0, pc);
        bp.update(0, pc, true, pc + 1, hist);
    }
    // pc 0 was LRU and should have been evicted; pc 4 and 8 remain.
    EXPECT_FALSE(bp.predict(0, 0).targetKnown);
    EXPECT_TRUE(bp.predict(0, 4).targetKnown);
    EXPECT_TRUE(bp.predict(0, 8).targetKnown);
}

TEST(Predictor, RejectsBadGeometry)
{
    BranchPredictorParams params;
    params.gshareEntries = 1000; // not a power of two
    EXPECT_DEATH(BranchPredictor bp(params), "power");
}

} // namespace
} // namespace hs
