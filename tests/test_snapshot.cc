/**
 * @file
 * Snapshot / prefix-sharing tests.
 *
 * The contract under test is absolute: a run forked from a shared
 * warm-up snapshot must produce a RunResult that is bit-identical
 * (operator==, no tolerance) to the same spec simulated cold. The
 * family matrix below exercises every RunSpec family the bench
 * harnesses build — solo / malicious / mixed workloads, every DTM
 * mode, both sinks, the usage-threshold ablation, sensor noise,
 * temperature traces, die shrink, deschedule and wide SMT — at both
 * --jobs 1 and --jobs 4.
 *
 * All simulation-backed tests run at HS scale 2000 (250 K-cycle
 * quanta) so the whole file stays fast.
 */

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/result_store.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"
#include "sim/snapshot.hh"
#include "trace/event.hh"

namespace {

using namespace hs;

ExperimentOptions
fastOpts()
{
    ExperimentOptions opts;
    opts.timeScale = 2000.0;
    return opts;
}

/** Sedation options with an upper trigger of @p upper (lower = -1 K). */
ExperimentOptions
sedationOpts(double upper)
{
    ExperimentOptions opts = fastOpts();
    opts.dtm = DtmMode::SelectiveSedation;
    opts.upperThreshold = upper;
    opts.lowerThreshold = upper - 1.0;
    return opts;
}

/** The innocent pair the engine is guaranteed to prefix-share: two
 *  SPEC programs whose sedation cells differ only in thresholds. */
std::vector<RunSpec>
innocentSweep(const std::vector<double> &uppers)
{
    std::vector<RunSpec> specs;
    for (double u : uppers)
        specs.push_back(specPairSpec("gcc", "mesa", sedationOpts(u)));
    return specs;
}

/** Cold reference: each spec simulated from cycle 0, serially. */
std::vector<RunResult>
runCold(const std::vector<RunSpec> &specs)
{
    std::vector<RunResult> out;
    out.reserve(specs.size());
    for (const RunSpec &s : specs)
        out.push_back(executeRunSpec(s));
    return out;
}

/** Assert prefix-shared execution matches @p cold cell for cell. */
void
expectMatches(const std::vector<RunResult> &cold,
              const std::vector<RunResult> &got)
{
    ASSERT_EQ(cold.size(), got.size());
    for (size_t i = 0; i < cold.size(); ++i)
        EXPECT_EQ(cold[i], got[i]) << "cell " << i;
}

// --- divergence key ----------------------------------------------------

TEST(RunSpecDivergence, KeyDropsExactlyThePolicyFields)
{
    RunSpec base = specPairSpec("gcc", "mesa", sedationOpts(356.0));
    const std::string dk = base.divergenceKey();

    // Policy-only mutations: canonical key changes, divergence key
    // does not — these cells may share a warm-up prefix.
    std::vector<RunSpec> policy;
    policy.push_back(base.withDtm(DtmMode::None));
    policy.push_back(base.withDtm(DtmMode::StopAndGo));
    policy.push_back(base.withDtm(DtmMode::DvfsThrottle));
    policy.push_back(base.withDtm(DtmMode::FetchGating));
    {
        RunSpec s = base;
        s.opts.upperThreshold = 357.0;
        policy.push_back(s);
    }
    {
        RunSpec s = base;
        s.opts.lowerThreshold = 354.0;
        policy.push_back(s);
    }
    {
        RunSpec s = base;
        s.descheduleAfter = 2;
        policy.push_back(s);
    }
    for (size_t i = 0; i < policy.size(); ++i) {
        EXPECT_NE(policy[i].canonicalKey(), base.canonicalKey())
            << "policy mutant " << i;
        EXPECT_EQ(policy[i].divergenceKey(), dk) << "policy mutant " << i;
    }

    // Everything else changes the trajectory itself, so it must change
    // the divergence key too.
    std::vector<RunSpec> traj;
    {
        RunSpec s = base;
        s.opts.timeScale = 2001.0;
        traj.push_back(s);
    }
    traj.push_back(base.withSink(SinkType::Ideal));
    {
        RunSpec s = base;
        s.opts.convectionR = 0.7;
        traj.push_back(s);
    }
    {
        RunSpec s = base;
        s.opts.sedationUsageThreshold = true;
        traj.push_back(s);
    }
    {
        RunSpec s = base;
        s.opts.recordTempTrace = true;
        traj.push_back(s);
    }
    {
        RunSpec s = base;
        s.numThreads = 4;
        traj.push_back(s);
    }
    {
        RunSpec s = base;
        s.dieShrink = 0.8;
        traj.push_back(s);
    }
    {
        RunSpec s = base;
        s.sensorNoiseK = 0.3;
        traj.push_back(s);
    }
    traj.push_back(specPairSpec("gcc", "mcf", sedationOpts(356.0)));
    // Die topology is trajectory state: dies of different shapes (or
    // placements) must never share a warm-up prefix.
    traj.push_back(base.withTopology(2, {0, 1}));
    traj.push_back(base.withTopology(2, {0, 0}));
    traj.push_back(base.withTopology(4, {0, 3}));
    for (size_t i = 0; i < traj.size(); ++i)
        EXPECT_NE(traj[i].divergenceKey(), dk) << "trajectory mutant " << i;

    // Labels are presentation only.
    EXPECT_EQ(base.withLabel("renamed").divergenceKey(), dk);
}

// --- direct snapshot determinism ---------------------------------------

TEST(Snapshot, RestoreThenRunIsBitIdenticalAndRepeatable)
{
    RunSpec spec = specPairSpec("gcc", "mesa", sedationOpts(356.0));

    SimSnapshot snap;
    Cycles fork = makePrefixSimulator(spec)->runPrefix(
        spec.opts.upperThreshold, 4, snap);
    ASSERT_GT(fork, 0u);
    ASSERT_FALSE(snap.empty());
    EXPECT_EQ(snap.cycle, fork);
    EXPECT_GT(snap.sizeBytes(), 0u);

    RunResult cold = executeRunSpec(spec);
    RunResult warm1 = executeFromSnapshot(spec, snap);
    RunResult warm2 = executeFromSnapshot(spec, snap);
    EXPECT_EQ(warm1, warm2);
    EXPECT_EQ(cold, warm1);
}

TEST(Snapshot, PrefixEngagesOnInnocentThresholdSweep)
{
    std::vector<RunSpec> specs =
        innocentSweep({355.5, 356.0, 356.5, 357.0, 357.5, 358.0});
    std::vector<RunResult> cold = runCold(specs);

    ParallelRunner runner(2);
    runner.setPrefixSharing(true);
    expectMatches(cold, runner.run(specs));

    PrefixShareStats ps = runner.prefixStats();
    EXPECT_GE(ps.groups, 1u);
    EXPECT_GE(ps.forkedRuns, 2u);
    EXPECT_GT(ps.prefixCycles, 0u);
    EXPECT_GT(ps.savedCycles, 0u);
}

// --- the full family matrix --------------------------------------------

/**
 * Every RunSpec family the bench harnesses build, arranged as the
 * sweeps the figures actually use so divergence groups of every shape
 * appear: prefix-shareable sweeps, groups that diverge before the
 * first snapshot (attack cells), singleton groups, and cells excluded
 * from sharing outright (usage ablation, per-cell conv values).
 */
std::vector<RunSpec>
familyMatrix()
{
    std::vector<RunSpec> specs;

    // Innocent pair, sedation threshold sweep (prefix-shared).
    for (RunSpec &s : innocentSweep({356.0, 357.0}))
        specs.push_back(std::move(s));

    // DTM-mode family sweep: one workload, every policy (one group).
    RunSpec pair = specPairSpec("gcc", "mesa", sedationOpts(356.0));
    specs.push_back(pair.withDtm(DtmMode::None));
    specs.push_back(pair.withDtm(DtmMode::StopAndGo));
    specs.push_back(pair.withDtm(DtmMode::DvfsThrottle));
    specs.push_back(pair.withDtm(DtmMode::FetchGating));

    // Attack cells: diverge long before the first stride boundary, so
    // the engine must fall back to cold runs — still bit-identical.
    specs.push_back(withVariantSpec("gcc", 2, sedationOpts(356.0)));
    specs.push_back(withVariantSpec("gcc", 2, sedationOpts(357.0)));
    specs.push_back(maliciousSoloSpec(1, fastOpts()));
    specs.push_back(soloSpec("mcf", fastOpts()));

    // Ideal sink: DTM never engages, so the whole quantum is prefix.
    specs.push_back(
        soloSpec("vortex", sedationOpts(356.0)).withSink(SinkType::Ideal));
    specs.push_back(
        soloSpec("vortex", fastOpts()).withSink(SinkType::Ideal));

    // Usage-threshold ablation: the trigger depends on monitor state,
    // not temperature, so these cells must always run cold.
    for (double u : {356.0, 357.0}) {
        RunSpec s = withVariantSpec("applu", 2, sedationOpts(u));
        s.opts.sedationUsageThreshold = true;
        specs.push_back(s);
    }

    // Noisy sensors: forked runs must re-draw identical noise.
    for (double u : {356.0, 357.0}) {
        RunSpec s = specPairSpec("gcc", "mesa", sedationOpts(u));
        s.sensorNoiseK = 0.3;
        specs.push_back(s);
    }

    // OS deschedule extension (policy field; shares with its base).
    for (int after : {0, 2}) {
        RunSpec s = withVariantSpec("crafty", 3, sedationOpts(356.0));
        s.descheduleAfter = after;
        specs.push_back(s);
    }

    // Temperature traces ride in the snapshot too.
    for (double u : {356.0, 357.0}) {
        RunSpec s = specPairSpec("gcc", "mesa", sedationOpts(u));
        s.opts.recordTempTrace = true;
        specs.push_back(s);
    }

    // Structured event traces ride in the snapshot as well (the tracer
    // ring and the online episode detector). The three cells below
    // share one divergence group: two sedation thresholds plus a
    // stop-and-go cell, which forces the restore path that discards the
    // prefix's monitor-category events for policies without a monitor.
    for (double u : {356.0, 357.0})
        specs.push_back(
            specPairSpec("gcc", "mesa", sedationOpts(u))
                .withTraceEvents(true));
    specs.push_back(pair.withDtm(DtmMode::StopAndGo).withTraceEvents(true));
    // A traced attack cell diverges before the first stride boundary,
    // so it must fall back to a cold (still traced) run.
    specs.push_back(
        withVariantSpec("gcc", 2, sedationOpts(356.0))
            .withTraceEvents(true));

    // Technology-scaling knob.
    for (double u : {356.0, 357.0}) {
        RunSpec s = specPairSpec("gcc", "mesa", sedationOpts(u));
        s.dieShrink = 0.8;
        specs.push_back(s);
    }

    // Convection sweep: each cell is its own divergence group.
    for (double conv : {0.6, 1.0}) {
        RunSpec s = specPairSpec("gcc", "mesa", sedationOpts(356.0));
        s.opts.convectionR = conv;
        specs.push_back(s);
    }

    // Wide SMT with a mixed three-thread workload.
    for (double u : {356.0, 357.0}) {
        RunSpec s = specPairSpec("gcc", "mesa", sedationOpts(u));
        s.workloads.push_back(WorkloadSpec::spec("mcf"));
        s.numThreads = 4;
        specs.push_back(s);
    }

    // Multi-core dies. An innocent 2-core threshold sweep forms one
    // divergence group (the prefix engine must warm up all tiles and
    // the shared package, snapshot every core, and fork); the 2-core
    // attack cell diverges early and falls back to a cold run; the
    // traced cell carries core-stamped events through the snapshot.
    for (double u : {356.0, 357.0})
        specs.push_back(specPairSpec("gcc", "mesa", sedationOpts(u))
                            .withTopology(2, {0, 1}));
    specs.push_back(withVariantSpec("gcc", 2, sedationOpts(356.0))
                        .withTopology(2, {0, 1}));
    specs.push_back(specPairSpec("gcc", "mesa", sedationOpts(356.0))
                        .withTopology(2, {0, 1})
                        .withTraceEvents(true));
    // Both SMT contexts of core 0 busy while core 1 idles: placement
    // resolution with unequal per-core widths.
    for (double u : {356.0, 357.0})
        specs.push_back(specPairSpec("gcc", "mesa", sedationOpts(u))
                            .withTopology(2, {0, 0}));

    return specs;
}

TEST(Snapshot, EveryFamilyBitIdenticalAtJobs1)
{
    std::vector<RunSpec> specs = familyMatrix();
    std::vector<RunResult> cold = runCold(specs);

    ParallelRunner runner(1);
    runner.setPrefixSharing(true);
    expectMatches(cold, runner.run(specs));
    EXPECT_GE(runner.prefixStats().forkedRuns, 2u);
}

TEST(Snapshot, EveryFamilyBitIdenticalAtJobs4WithStore)
{
    std::vector<RunSpec> specs = familyMatrix();
    std::vector<RunResult> cold = runCold(specs);

    ResultStore store;
    ParallelRunner runner(4, &store);
    runner.setPrefixSharing(true);
    expectMatches(cold, runner.run(specs));
    EXPECT_GE(runner.prefixStats().forkedRuns, 2u);

    // A second pass is served entirely by the store; the prefix phase
    // must not re-simulate already-cached groups.
    PrefixShareStats before = runner.prefixStats();
    expectMatches(cold, runner.run(specs));
    EXPECT_EQ(runner.prefixStats().groups, before.groups);
    EXPECT_EQ(runner.prefixStats().forkedRuns, before.forkedRuns);
}

TEST(Snapshot, DisabledSharingStillMatchesCold)
{
    std::vector<RunSpec> specs = innocentSweep({356.0, 357.0});
    std::vector<RunResult> cold = runCold(specs);

    ParallelRunner runner(2);
    runner.setPrefixSharing(false);
    expectMatches(cold, runner.run(specs));

    PrefixShareStats ps = runner.prefixStats();
    EXPECT_EQ(ps.groups, 0u);
    EXPECT_EQ(ps.forkedRuns, 0u);
    EXPECT_EQ(ps.savedCycles, 0u);
}

// --- tracer round-trip -------------------------------------------------

/**
 * Save mid-episode, restore, keep running: the concatenated trace must
 * equal an uninterrupted run's trace event for event. At convection
 * R = 1.2 K/W the innocent pair's register file oscillates through the
 * episode detector's 348.5 K resume threshold, so by the time the
 * prefix reaches the 353 K divergence temperature the detector has
 * already seen a rise begin — its phase, the open episode's cycles,
 * and every event in the tracer ring all have to survive the
 * round-trip for the comparison to hold.
 */
TEST(Snapshot, TracerRoundTripsThroughSaveRestore)
{
    RunSpec spec = specPairSpec("gcc", "mesa", sedationOpts(356.0))
                       .withTraceEvents(true);
    spec.opts.convectionR = 1.2;

    SimSnapshot snap;
    Cycles fork =
        makePrefixSimulator(spec)->runPrefix(353.0, /*stride=*/1, snap);
    ASSERT_GT(fork, 0u);

    RunResult cold = executeRunSpec(spec);
    RunResult warm = executeFromSnapshot(spec, snap);
    EXPECT_EQ(cold, warm); // operator== covers traceEvents

    // The restored run's trace really is a concatenation: it contains
    // events recorded before the fork (inherited through the snapshot)
    // and events recorded after it.
    ASSERT_FALSE(warm.traceEvents.empty());
    EXPECT_LT(warm.traceEvents.front().cycle, fork);
    EXPECT_GE(warm.traceEvents.back().cycle, fork);

    // The detector saw a heat episode's rise begin before the fork;
    // the inherited trace must carry that episode_rise_start.
    bool rise_before_fork = false;
    for (const TraceEvent &e : warm.traceEvents) {
        if (e.kind == TraceKind::EpisodeRiseStart && e.cycle < fork)
            rise_before_fork = true;
    }
    EXPECT_TRUE(rise_before_fork)
        << "the 353 K prefix should fork after an episode rise began";
}

// --- multi-core snapshots ----------------------------------------------

/**
 * N-core save/restore round-trip, mid-episode: every core's pipeline,
 * policy state, episode detector and histograms plus the one shared
 * RC network and tracer ring must survive, and the forked run must be
 * bit-identical to the cold one — including the per-core result
 * slices and core-stamped trace events.
 */
TEST(Snapshot, MultiCoreRoundTripIsBitIdentical)
{
    RunSpec spec = specPairSpec("gcc", "mesa", sedationOpts(356.0))
                       .withTopology(2, {0, 1})
                       .withTraceEvents(true);

    SimSnapshot snap;
    Cycles fork = makePrefixSimulator(spec)->runPrefix(
        spec.opts.upperThreshold, 4, snap);
    ASSERT_GT(fork, 0u);
    ASSERT_FALSE(snap.empty());

    RunResult cold = executeRunSpec(spec);
    RunResult warm1 = executeFromSnapshot(spec, snap);
    RunResult warm2 = executeFromSnapshot(spec, snap);
    EXPECT_EQ(warm1, warm2);
    EXPECT_EQ(cold, warm1); // covers cores[], threads[].core, traces

    ASSERT_EQ(warm1.numCores, 2);
    ASSERT_EQ(warm1.cores.size(), 2u);
}

TEST(SnapshotDeathTest, MultiCoreSnapshotRefusesOtherTopologies)
{
    RunSpec two = specPairSpec("gcc", "mesa", sedationOpts(356.0))
                      .withTopology(2, {0, 1});
    SimSnapshot snap;
    ASSERT_GT(makePrefixSimulator(two)->runPrefix(
                  two.opts.upperThreshold, 4, snap),
              0u);

    // Same workloads, different die shape / placement: refused.
    RunSpec one = specPairSpec("gcc", "mesa", sedationOpts(356.0));
    EXPECT_EXIT(makeSimulator(one)->restore(snap),
                testing::ExitedWithCode(1), "incompatible");
    RunSpec packed = specPairSpec("gcc", "mesa", sedationOpts(356.0))
                         .withTopology(2, {0, 0});
    EXPECT_EXIT(makeSimulator(packed)->restore(snap),
                testing::ExitedWithCode(1), "incompatible");
}

// --- HS_PREFIX environment knob ----------------------------------------

TEST(Snapshot, EnvPrefixDefaultsOn)
{
    unsetenv("HS_PREFIX");
    EXPECT_TRUE(envPrefixSharing());
    EXPECT_FALSE(envPrefixSharing(false));
    EXPECT_TRUE(ParallelRunner(1).prefixSharing());
}

TEST(Snapshot, EnvPrefixZeroDisables)
{
    setenv("HS_PREFIX", "0", 1);
    EXPECT_FALSE(envPrefixSharing());
    EXPECT_FALSE(ParallelRunner(1).prefixSharing());
    setenv("HS_PREFIX", "1", 1);
    EXPECT_TRUE(envPrefixSharing());
    EXPECT_TRUE(ParallelRunner(1).prefixSharing());
    unsetenv("HS_PREFIX");
}

TEST(SnapshotDeathTest, EnvPrefixRejectsGarbage)
{
    setenv("HS_PREFIX", "fast", 1);
    EXPECT_EXIT(envPrefixSharing(), testing::ExitedWithCode(1),
                "HS_PREFIX");
    setenv("HS_PREFIX", "-1", 1);
    EXPECT_EXIT(envPrefixSharing(), testing::ExitedWithCode(1),
                "HS_PREFIX");
    unsetenv("HS_PREFIX");
}

// --- save()/restore() preconditions ------------------------------------

TEST(SnapshotDeathTest, SaveRejectsNonBoundaryCycles)
{
    RunSpec spec = specPairSpec("gcc", "mesa", sedationOpts(356.0));
    auto sim = makeSimulator(spec);
    sim->pipeline().tick();
    SimSnapshot snap;
    EXPECT_EXIT(sim->save(snap), testing::ExitedWithCode(1),
                "sensor boundary");
}

TEST(SnapshotDeathTest, RestoreRejectsBadInputs)
{
    RunSpec spec = specPairSpec("gcc", "mesa", sedationOpts(356.0));

    SimSnapshot empty;
    EXPECT_EXIT(makeSimulator(spec)->restore(empty),
                testing::ExitedWithCode(1), "empty snapshot");

    SimSnapshot snap;
    ASSERT_GT(makePrefixSimulator(spec)->runPrefix(
                  spec.opts.upperThreshold, 4, snap),
              0u);

    // Only a freshly constructed simulator may restore.
    auto used = makeSimulator(spec);
    used->run();
    EXPECT_EXIT(used->restore(snap), testing::ExitedWithCode(1),
                "freshly constructed");

    // A snapshot from a different trajectory configuration is refused.
    RunSpec other = spec;
    other.opts.timeScale = 1000.0;
    EXPECT_EXIT(makeSimulator(other)->restore(snap),
                testing::ExitedWithCode(1), "incompatible");
}

} // namespace
