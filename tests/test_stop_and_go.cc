/** @file Unit tests for the stop-and-go DTM policy (and the DVFS
 *  throttle extension), driven through a fake DtmControl. */

#include <gtest/gtest.h>

#include "core/dvfs.hh"
#include "core/stop_and_go.hh"

namespace hs {
namespace {

/** Records the control actions a policy takes. */
class FakeControl : public DtmControl
{
  public:
    void stallPipeline(bool stalled) override { this->stalled = stalled; }
    bool pipelineStalled() const override { return stalled; }
    void
    sedateThread(ThreadId tid, bool s) override
    {
        sedated[static_cast<size_t>(tid)] = s;
    }
    void throttlePipeline(int k) override { throttle = k; }
    int numThreads() const override { return 2; }
    bool threadActive(ThreadId) const override { return true; }

    bool stalled = false;
    int throttle = 1;
    std::array<bool, 8> sedated{};
};

std::vector<Kelvin>
allAt(Kelvin t)
{
    return std::vector<Kelvin>(static_cast<size_t>(numBlocks), t);
}

std::vector<Kelvin>
oneHot(Block b, Kelvin hot, Kelvin rest = 350.0)
{
    std::vector<Kelvin> t = allAt(rest);
    t[static_cast<size_t>(blockIndex(b))] = hot;
    return t;
}

TEST(StopAndGo, StallsAtTriggerTemp)
{
    StopAndGo policy;
    FakeControl ctl;
    policy.atSensorSample(1000, oneHot(Block::IntReg, 357.9), ctl);
    EXPECT_FALSE(ctl.stalled);
    policy.atSensorSample(2000, oneHot(Block::IntReg, 358.1), ctl);
    EXPECT_TRUE(ctl.stalled);
    EXPECT_EQ(policy.triggers(), 1u);
}

TEST(StopAndGo, ReleasesOnlyBelowResume)
{
    StopAndGo policy;
    FakeControl ctl;
    policy.atSensorSample(0, oneHot(Block::IntReg, 359.0), ctl);
    ASSERT_TRUE(ctl.stalled);
    // Between resume and trigger: stay stalled.
    policy.atSensorSample(100, oneHot(Block::IntReg, 353.0), ctl);
    EXPECT_TRUE(ctl.stalled);
    policy.atSensorSample(200,
                          oneHot(Block::IntReg,
                                 policy.params().resumeTemp - 0.1,
                                 policy.params().resumeTemp - 3.0),
                          ctl);
    EXPECT_FALSE(ctl.stalled);
}

TEST(StopAndGo, AccountsStallCycles)
{
    StopAndGo policy;
    FakeControl ctl;
    policy.atSensorSample(1000, allAt(360.0), ctl);
    policy.atSensorSample(51000, allAt(340.0), ctl);
    EXPECT_EQ(policy.stallCycles(), 50000u);
}

TEST(StopAndGo, AnyBlockCanTrigger)
{
    StopAndGo policy;
    FakeControl ctl;
    policy.atSensorSample(0, oneHot(Block::FpReg, 358.5), ctl);
    EXPECT_TRUE(ctl.stalled);
}

TEST(StopAndGo, RepeatedCyclesCounted)
{
    StopAndGo policy;
    FakeControl ctl;
    for (int i = 0; i < 5; ++i) {
        policy.atSensorSample(static_cast<Cycles>(i * 1000),
                              allAt(359.0), ctl);
        policy.atSensorSample(static_cast<Cycles>(i * 1000 + 500),
                              allAt(340.0), ctl);
    }
    EXPECT_EQ(policy.triggers(), 5u);
    EXPECT_FALSE(ctl.stalled);
}

TEST(DvfsThrottle, ThrottlesWhenHotRestoresWhenCool)
{
    DvfsThrottle policy;
    FakeControl ctl;
    policy.atSensorSample(0, allAt(357.5), ctl);
    EXPECT_EQ(ctl.throttle, 2);
    EXPECT_TRUE(policy.engaged());
    policy.atSensorSample(100, allAt(356.0), ctl);
    EXPECT_EQ(ctl.throttle, 2) << "must stay engaged until resume temp";
    policy.atSensorSample(200, allAt(354.0), ctl);
    EXPECT_EQ(ctl.throttle, 1);
    EXPECT_EQ(policy.triggers(), 1u);
}

TEST(DvfsThrottle, CustomSlowdownFactor)
{
    DvfsParams params;
    params.slowdownFactor = 4;
    DvfsThrottle policy(params);
    FakeControl ctl;
    policy.atSensorSample(0, allAt(358.0), ctl);
    EXPECT_EQ(ctl.throttle, 4);
}

} // namespace
} // namespace hs
