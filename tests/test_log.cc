/** @file Unit tests for the logging/error primitives. */

#include <gtest/gtest.h>

#include "common/log.hh"

namespace hs {
namespace {

TEST(Log, StrprintfFormats)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 42, "ok"), "x=42 y=ok");
    EXPECT_EQ(strprintf("%.2f", 1.5), "1.50");
    EXPECT_EQ(strprintf("plain"), "plain");
}

TEST(Log, StrprintfLongStrings)
{
    std::string big(5000, 'a');
    std::string out = strprintf("%s!", big.c_str());
    EXPECT_EQ(out.size(), 5001u);
    EXPECT_EQ(out.back(), '!');
}

TEST(Log, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 7), "boom 7");
}

TEST(Log, FatalExitsWithError)
{
    EXPECT_EXIT(fatal("bad config"), ::testing::ExitedWithCode(1),
                "bad config");
}

TEST(Log, LevelRoundTrips)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(before);
}

} // namespace
} // namespace hs
