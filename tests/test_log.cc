/** @file Unit tests for the logging/error primitives. */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/log.hh"

namespace hs {
namespace {

TEST(Log, StrprintfFormats)
{
    EXPECT_EQ(strprintf("x=%d y=%s", 42, "ok"), "x=42 y=ok");
    EXPECT_EQ(strprintf("%.2f", 1.5), "1.50");
    EXPECT_EQ(strprintf("plain"), "plain");
}

TEST(Log, StrprintfLongStrings)
{
    std::string big(5000, 'a');
    std::string out = strprintf("%s!", big.c_str());
    EXPECT_EQ(out.size(), 5001u);
    EXPECT_EQ(out.back(), '!');
}

TEST(Log, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 7), "boom 7");
}

TEST(Log, FatalExitsWithError)
{
    EXPECT_EXIT(fatal("bad config"), ::testing::ExitedWithCode(1),
                "bad config");
}

TEST(Log, LevelRoundTrips)
{
    LogLevel before = logLevel();
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(LogLevel::Verbose);
    EXPECT_EQ(logLevel(), LogLevel::Verbose);
    setLogLevel(before);
}

// ---------------------------------------------------------------------
// Structured operational log (JSONL sink + observer tee)
// ---------------------------------------------------------------------

/** Opens a JSONL sink for one test and cleans up the file after. */
class ScopedJsonLog
{
  public:
    explicit ScopedJsonLog(const char *name)
        : path_(std::string("/tmp/") + name + "." +
                std::to_string(static_cast<unsigned long>(::getpid())))
    {
        openJsonLog(path_);
    }

    ~ScopedJsonLog()
    {
        closeJsonLog();
        std::remove(path_.c_str());
    }

    /** Close the sink and parse every line as JSON. */
    std::vector<json::Value> lines()
    {
        closeJsonLog();
        std::ifstream in(path_);
        std::vector<json::Value> out;
        std::string line;
        while (std::getline(in, line)) {
            if (line.empty())
                continue;
            std::string err;
            json::Value v = json::parse(line, &err);
            EXPECT_EQ(err, "") << "bad JSONL line: " << line;
            out.push_back(std::move(v));
        }
        return out;
    }

  private:
    std::string path_;
};

TEST(LogEvent, InactiveByDefaultAndNoOpWhenOff)
{
    // No sink, no observer: the fast path must report inactive so
    // instrumented sites stay branch-on-null cheap, and emitting
    // while inactive must be a harmless no-op.
    EXPECT_FALSE(logEventActive());
    logEvent("test", "noop", {LogField::num("x", uint64_t(1))});
}

TEST(LogEvent, WritesParseableJsonl)
{
    ScopedJsonLog log("hs_log_basic");
    ASSERT_TRUE(logEventActive());

    logEvent("runner", "cell_finished",
             {LogField::num("index", 3), LogField::num("seconds", 0.25),
              LogField::text("label", "gcc/stopgo"),
              LogField::flag("cached", true)});
    logEvent("fault", "fire", LogSeverity::Warn,
             {LogField::text("site", "worker_crash")});

    auto lines = log.lines();
    ASSERT_EQ(lines.size(), 2u);

    const json::Value &a = lines[0];
    EXPECT_EQ(a.stringOr("sev", ""), "info");
    EXPECT_EQ(a.stringOr("comp", ""), "runner");
    EXPECT_EQ(a.stringOr("event", ""), "cell_finished");
    EXPECT_EQ(a.numberOr("index", -1), 3);
    EXPECT_DOUBLE_EQ(a.numberOr("seconds", -1), 0.25);
    EXPECT_EQ(a.stringOr("label", ""), "gcc/stopgo");
    const json::Value *cached = a.find("cached");
    ASSERT_NE(cached, nullptr);
    EXPECT_TRUE(cached->isBool() && cached->boolean());

    const json::Value &b = lines[1];
    EXPECT_EQ(b.stringOr("sev", ""), "warn");
    EXPECT_EQ(b.stringOr("comp", ""), "fault");
    EXPECT_EQ(b.stringOr("site", ""), "worker_crash");

    // Timestamps are monotonic and present on every line.
    EXPECT_GE(a.numberOr("t", -1), 0.0);
    EXPECT_GE(b.numberOr("t", -1), a.numberOr("t", -1));
}

TEST(LogEvent, EscapesHostileStrings)
{
    ScopedJsonLog log("hs_log_escape");
    std::string hostile = "a\"b\\c\nd\te\x01f";
    logEvent("test", "escape", {LogField::text("s", hostile)});
    auto lines = log.lines();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].stringOr("s", ""), hostile);
}

TEST(LogEvent, ObserverSeesEveryEvent)
{
    int calls = 0;
    std::string lastComp, lastEvent;
    double lastValue = -1;
    setLogEventObserver([&](const LogEventView &ev) {
        ++calls;
        lastComp = ev.component;
        lastEvent = ev.event;
        for (size_t i = 0; i < ev.numFields; ++i)
            if (std::string(ev.fields[i].key) == "v")
                lastValue = ev.fields[i].f64;
    });
    EXPECT_TRUE(logEventActive());
    logEvent("remote", "heartbeat", {LogField::num("v", 7.5)});
    logEvent("remote", "job_done");
    setLogEventObserver(nullptr);
    EXPECT_FALSE(logEventActive());

    EXPECT_EQ(calls, 2);
    EXPECT_EQ(lastComp, "remote");
    EXPECT_EQ(lastEvent, "job_done");
    EXPECT_DOUBLE_EQ(lastValue, 7.5);
    // Events after removal are dropped.
    logEvent("remote", "late");
    EXPECT_EQ(calls, 2);
}

TEST(LogEvent, JsonLineIsDeterministic)
{
    LogField fields[] = {LogField::num("n", uint64_t(42)),
                         LogField::text("s", "x")};
    LogEventView v;
    v.t = 1.5;
    v.sev = LogSeverity::Info;
    v.component = "c";
    v.event = "e";
    v.fields = fields;
    v.numFields = 2;
    EXPECT_EQ(v.jsonLine(),
              "{\"t\":1.500000,\"sev\":\"info\",\"comp\":\"c\","
              "\"event\":\"e\",\"n\":42,\"s\":\"x\"}");
}

TEST(LogEvent, UnopenablePathIsFatal)
{
    EXPECT_EXIT(openJsonLog("/nonexistent-dir/x/y.jsonl"),
                ::testing::ExitedWithCode(1), "log-json");
}

} // namespace
} // namespace hs
