/** @file Unit tests for result records and table formatting. */

#include <sstream>

#include <gtest/gtest.h>

#include "sim/results.hh"

namespace hs {
namespace {

RunResult
sampleResult()
{
    RunResult r;
    r.cycles = 1000;
    ThreadResult t0;
    t0.program = "a";
    t0.normalCycles = 700;
    t0.coolingCycles = 200;
    t0.sedationCycles = 100;
    ThreadResult t1;
    t1.program = "b";
    t1.normalCycles = 400;
    t1.coolingCycles = 200;
    t1.sedationCycles = 400;
    r.threads = {t0, t1};
    return r;
}

TEST(Results, FractionsSumToOne)
{
    RunResult r = sampleResult();
    for (size_t t = 0; t < 2; ++t) {
        EXPECT_NEAR(r.normalFraction(t) + r.coolingFraction(t) +
                        r.sedationFraction(t),
                    1.0, 1e-12);
    }
    EXPECT_DOUBLE_EQ(r.normalFraction(0), 0.7);
    EXPECT_DOUBLE_EQ(r.sedationFraction(1), 0.4);
}

TEST(Results, ZeroCyclesSafe)
{
    RunResult r = sampleResult();
    r.cycles = 0;
    EXPECT_EQ(r.normalFraction(0), 0.0);
}

TEST(Results, OutOfRangeThreadThrows)
{
    RunResult r = sampleResult();
    EXPECT_THROW(r.normalFraction(5), std::out_of_range);
}

TEST(Results, EqualityIgnoresHostThroughputFields)
{
    // Wall-clock throughput describes the host, not the simulated
    // quantum: two runs of the same spec compare equal regardless of
    // how fast the machine executed them.
    RunResult a = sampleResult();
    RunResult b = sampleResult();
    a.hostSeconds = 1.5;
    a.simCyclesPerHostSec = 666.0;
    b.hostSeconds = 99.0;
    b.simCyclesPerHostSec = 10.1;
    EXPECT_EQ(a, b);

    b.emergencies = 1; // simulated outcome still compares
    EXPECT_FALSE(a == b);
}

TEST(Results, JsonIncludesThroughputFields)
{
    RunResult r = sampleResult();
    r.hostSeconds = 0.25;
    r.simCyclesPerHostSec = 4000.0;
    std::ostringstream os;
    writeResultJson(os, r);
    EXPECT_NE(os.str().find("\"host_seconds\": 0.25"), std::string::npos);
    EXPECT_NE(os.str().find("\"sim_cycles_per_host_sec\": 4000"),
              std::string::npos);
}

TEST(Results, CsvAppendsThroughputColumns)
{
    // New columns go at the END so pre-existing consumers keep their
    // column indices.
    std::string header = resultCsvHeader();
    EXPECT_EQ(header.rfind("avg_power_W,host_seconds,"
                           "sim_cycles_per_host_sec"),
              header.size() -
                  std::string("avg_power_W,host_seconds,"
                              "sim_cycles_per_host_sec")
                      .size());

    RunResult r = sampleResult();
    r.hostSeconds = 0.5;
    r.simCyclesPerHostSec = 2000.0;
    std::ostringstream os;
    writeResultCsv(os, r);
    std::string line = os.str().substr(0, os.str().find('\n'));
    EXPECT_NE(line.find(",0.5,2000"), std::string::npos);
}

TEST(TablePrinterTest, AlignsColumns)
{
    std::ostringstream os;
    TablePrinter t(os);
    t.header({"name", "value"});
    t.row({"x", "1.00"});
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_NE(out.find("x"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision)
{
    EXPECT_EQ(TablePrinter::num(1.23456, 2), "1.23");
    EXPECT_EQ(TablePrinter::num(1.0, 0), "1");
    EXPECT_EQ(TablePrinter::num(-0.5, 1), "-0.5");
}

} // namespace
} // namespace hs
