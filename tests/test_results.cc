/** @file Unit tests for result records and table formatting. */

#include <sstream>

#include <gtest/gtest.h>

#include "sim/results.hh"

namespace hs {
namespace {

RunResult
sampleResult()
{
    RunResult r;
    r.cycles = 1000;
    ThreadResult t0;
    t0.program = "a";
    t0.normalCycles = 700;
    t0.coolingCycles = 200;
    t0.sedationCycles = 100;
    ThreadResult t1;
    t1.program = "b";
    t1.normalCycles = 400;
    t1.coolingCycles = 200;
    t1.sedationCycles = 400;
    r.threads = {t0, t1};
    return r;
}

TEST(Results, FractionsSumToOne)
{
    RunResult r = sampleResult();
    for (size_t t = 0; t < 2; ++t) {
        EXPECT_NEAR(r.normalFraction(t) + r.coolingFraction(t) +
                        r.sedationFraction(t),
                    1.0, 1e-12);
    }
    EXPECT_DOUBLE_EQ(r.normalFraction(0), 0.7);
    EXPECT_DOUBLE_EQ(r.sedationFraction(1), 0.4);
}

TEST(Results, ZeroCyclesSafe)
{
    RunResult r = sampleResult();
    r.cycles = 0;
    EXPECT_EQ(r.normalFraction(0), 0.0);
}

TEST(Results, OutOfRangeThreadThrows)
{
    RunResult r = sampleResult();
    EXPECT_THROW(r.normalFraction(5), std::out_of_range);
}

TEST(TablePrinterTest, AlignsColumns)
{
    std::ostringstream os;
    TablePrinter t(os);
    t.header({"name", "value"});
    t.row({"x", "1.00"});
    std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_NE(out.find("x"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision)
{
    EXPECT_EQ(TablePrinter::num(1.23456, 2), "1.23");
    EXPECT_EQ(TablePrinter::num(1.0, 0), "1");
    EXPECT_EQ(TablePrinter::num(-0.5, 1), "-0.5");
}

} // namespace
} // namespace hs
