/** @file Tests for the synthetic SPEC-like workload generator. */

#include <set>

#include <gtest/gtest.h>

#include "smt/pipeline.hh"
#include "workload/generator.hh"

namespace hs {
namespace {

TEST(Workload, SuiteHasEighteenProfiles)
{
    EXPECT_EQ(specSuite().size(), 18u);
    std::set<std::string> names;
    for (const SpecProfile &p : specSuite())
        names.insert(p.name);
    EXPECT_EQ(names.size(), specSuite().size()) << "duplicate names";
}

TEST(Workload, PaperFigureSubsetExists)
{
    for (const std::string &name : paperFigureBenchmarks()) {
        const SpecProfile &p = specProfile(name);
        EXPECT_EQ(p.name, name);
    }
}

TEST(Workload, UnknownProfileIsFatal)
{
    EXPECT_DEATH(specProfile("not-a-benchmark"), "unknown");
}

TEST(Workload, GenerationIsDeterministic)
{
    Program a = synthesizeSpec("gcc");
    Program b = synthesizeSpec("gcc");
    ASSERT_EQ(a.size(), b.size());
    for (uint64_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.fetch(i).op, b.fetch(i).op) << "at " << i;
        EXPECT_EQ(a.fetch(i).rd, b.fetch(i).rd) << "at " << i;
        EXPECT_EQ(a.fetch(i).imm, b.fetch(i).imm) << "at " << i;
    }
}

TEST(Workload, DifferentBenchmarksDiffer)
{
    Program a = synthesizeSpec("gcc");
    Program b = synthesizeSpec("mcf");
    bool differ = a.size() != b.size();
    for (uint64_t i = 0; !differ && i < a.size(); ++i)
        differ = a.fetch(i).op != b.fetch(i).op;
    EXPECT_TRUE(differ);
}

TEST(Workload, ProgramsLoopForever)
{
    // The last instruction must be a jump back to the top.
    for (const SpecProfile &p : specSuite()) {
        Program prog = synthesizeSpec(p);
        const Instruction &last = prog.fetch(prog.size() - 1);
        EXPECT_EQ(last.op, Opcode::Jmp) << p.name;
        EXPECT_EQ(last.target, 0u) << p.name;
    }
}

TEST(Workload, BranchTargetsInRange)
{
    for (const SpecProfile &p : specSuite()) {
        Program prog = synthesizeSpec(p);
        for (uint64_t i = 0; i < prog.size(); ++i) {
            const Instruction &inst = prog.fetch(i);
            if (inst.isControl()) {
                EXPECT_LT(inst.target, prog.size())
                    << p.name << " @" << i;
            }
        }
    }
}

TEST(Workload, MixRoughlyMatchesProfile)
{
    const SpecProfile &p = specProfile("gcc");
    Program prog = synthesizeSpec(p);
    uint64_t loads = 0, stores = 0;
    for (uint64_t i = 0; i < prog.size(); ++i) {
        InstClass c = prog.fetch(i).instClass();
        loads += c == InstClass::Load;
        stores += c == InstClass::Store;
    }
    // One emission slot expands to >1 instruction and every
    // branchEvery-th slot is a branch, so compare against the
    // branch-adjusted slot budget with sampling tolerance.
    double mix_slots = p.bodySize * (1.0 - 1.0 / p.branchEvery);
    double load_share = static_cast<double>(loads) / mix_slots;
    EXPECT_NEAR(load_share, p.loadFraction,
                0.5 * p.loadFraction + 0.03);
    double store_share = static_cast<double>(stores) / mix_slots;
    EXPECT_NEAR(store_share, p.storeFraction,
                0.5 * p.storeFraction + 0.03);
}

TEST(Workload, FpProfilesEmitFpWork)
{
    Program fp = synthesizeSpec("applu");
    Program intp = synthesizeSpec("gcc");
    auto count_fp = [](const Program &prog) {
        uint64_t n = 0;
        for (uint64_t i = 0; i < prog.size(); ++i) {
            InstClass c = prog.fetch(i).instClass();
            n += c == InstClass::FpAdd || c == InstClass::FpMul ||
                 c == InstClass::FpDiv;
        }
        return n;
    };
    EXPECT_GT(count_fp(fp), 20u);
    EXPECT_EQ(count_fp(intp), 0u);
}

TEST(Workload, AllProfilesRunOnThePipeline)
{
    // Every generated program must execute without panics and make
    // steady progress.
    for (const SpecProfile &p : specSuite()) {
        Program prog = synthesizeSpec(p);
        SmtParams params;
        params.numThreads = 1;
        Pipeline pipe(params);
        pipe.setThreadProgram(0, &prog);
        for (int i = 0; i < 30000; ++i)
            pipe.tick();
        EXPECT_GT(pipe.committed(0), 300u) << p.name;
    }
}

TEST(Workload, IpcDiversityAcrossSuite)
{
    // The suite must span low-IPC (mcf-like) to high-IPC programs —
    // the diversity Figures 3 and 5 rely on.
    double lo = 1e9, hi = 0;
    for (const char *name : {"mcf", "gcc", "crafty", "applu"}) {
        Program prog = synthesizeSpec(name);
        SmtParams params;
        params.numThreads = 1;
        Pipeline pipe(params);
        pipe.setThreadProgram(0, &prog);
        for (int i = 0; i < 2000000; ++i)
            pipe.tick();
        double ipc = pipe.ipc(0);
        lo = std::min(lo, ipc);
        hi = std::max(hi, ipc);
    }
    EXPECT_LT(lo, 0.4) << "need a memory-bound benchmark";
    EXPECT_GT(hi, 1.5) << "need a high-ILP benchmark";
    EXPECT_GT(hi / lo, 4.0);
}

TEST(Workload, CustomSeedChangesProgram)
{
    Program a = synthesizeSpec(specProfile("gzip"), 1);
    Program b = synthesizeSpec(specProfile("gzip"), 2);
    bool differ = a.size() != b.size();
    for (uint64_t i = 0; !differ && i < a.size(); ++i)
        differ = a.fetch(i).op != b.fetch(i).op ||
                 a.fetch(i).rd != b.fetch(i).rd;
    EXPECT_TRUE(differ);
}

TEST(Workload, RejectsDegenerateProfiles)
{
    SpecProfile p = specProfile("gcc");
    p.bodySize = 2;
    EXPECT_DEATH(synthesizeSpec(p), "body");
    p = specProfile("gcc");
    p.footprintLog2 = 40;
    EXPECT_DEATH(synthesizeSpec(p), "footprint");
}

} // namespace
} // namespace hs
