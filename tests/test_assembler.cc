/** @file Unit tests for the assembler, including the Alpha-style
 *  aliases used by the paper's Figure 1-2 listings. */

#include <gtest/gtest.h>

#include "isa/assembler.hh"

namespace hs {
namespace {

TEST(Assembler, EmptySourceGivesEmptyProgram)
{
    Program p = assemble("");
    EXPECT_TRUE(p.empty());
}

TEST(Assembler, CommentsAndBlankLinesIgnored)
{
    Program p = assemble("# a comment\n\n  ; another\nnop\n");
    ASSERT_EQ(p.size(), 1u);
    EXPECT_EQ(p.fetch(0).op, Opcode::Nop);
}

TEST(Assembler, ParsesThreeOperandAlu)
{
    Program p = assemble("add r3, r1, r2\n");
    const Instruction &i = p.fetch(0);
    EXPECT_EQ(i.op, Opcode::Add);
    EXPECT_EQ(i.rd, 3);
    EXPECT_EQ(i.rs1, 1);
    EXPECT_EQ(i.rs2, 2);
}

TEST(Assembler, AlphaAliasesMatchFigure1)
{
    // The paper's Figure 1 body assembles verbatim.
    Program p = assemble("L$1:\n"
                         "    addl $1, $2, $3\n"
                         "    br L$1\n");
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p.fetch(0).op, Opcode::Add);
    EXPECT_EQ(p.fetch(0).rd, 1);
    EXPECT_EQ(p.fetch(1).op, Opcode::Jmp);
    EXPECT_EQ(p.fetch(1).target, 0u);
}

TEST(Assembler, LdqStqAliases)
{
    Program p = assemble("ldq $4, 16($2)\nstq $5, -8($3)\n");
    const Instruction &ld = p.fetch(0);
    EXPECT_EQ(ld.op, Opcode::Ld);
    EXPECT_EQ(ld.rd, 4);
    EXPECT_EQ(ld.rs1, 2);
    EXPECT_EQ(ld.imm, 16);
    const Instruction &st = p.fetch(1);
    EXPECT_EQ(st.op, Opcode::St);
    EXPECT_EQ(st.rs2, 5);
    EXPECT_EQ(st.rs1, 3);
    EXPECT_EQ(st.imm, -8);
}

TEST(Assembler, ImmediateFormats)
{
    Program p = assemble("addi r1, r0, 0x10\naddi r2, r0, -42\n");
    EXPECT_EQ(p.fetch(0).imm, 16);
    EXPECT_EQ(p.fetch(1).imm, -42);
}

TEST(Assembler, ForwardAndBackwardBranches)
{
    Program p = assemble("top:\n"
                         "  beq r1, r2, done\n"
                         "  jmp top\n"
                         "done:\n"
                         "  halt\n");
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p.fetch(0).target, 2u);
    EXPECT_EQ(p.fetch(1).target, 0u);
}

TEST(Assembler, LabelOnSameLineAsInstruction)
{
    Program p = assemble("loop: addi r1, r1, 1\n jmp loop\n");
    ASSERT_EQ(p.size(), 2u);
    EXPECT_EQ(p.fetch(1).target, 0u);
}

TEST(Assembler, FpFormats)
{
    Program p = assemble("fadd f1, f2, f3\n"
                         "fcvt f4, r5\n"
                         "fmov f6, f7\n"
                         "fld f1, 8(r2)\n"
                         "fst f3, 0(r4)\n");
    EXPECT_EQ(p.fetch(0).op, Opcode::Fadd);
    EXPECT_EQ(p.fetch(1).op, Opcode::Fcvt);
    EXPECT_EQ(p.fetch(1).rs1, 5);
    EXPECT_EQ(p.fetch(2).op, Opcode::Fmov);
    EXPECT_EQ(p.fetch(3).op, Opcode::Fld);
    EXPECT_EQ(p.fetch(4).op, Opcode::Fst);
    EXPECT_EQ(p.fetch(4).rs2, 3);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    try {
        assemble("nop\nbogus r1\n");
        FAIL() << "expected AsmError";
    } catch (const AsmError &e) {
        EXPECT_EQ(e.line(), 2);
    }
}

TEST(Assembler, UndefinedLabelThrows)
{
    EXPECT_THROW(assemble("jmp nowhere\n"), AsmError);
}

TEST(Assembler, DuplicateLabelThrows)
{
    EXPECT_THROW(assemble("a:\nnop\na:\nnop\n"), AsmError);
}

TEST(Assembler, WrongOperandCountThrows)
{
    EXPECT_THROW(assemble("add r1, r2\n"), AsmError);
    EXPECT_THROW(assemble("nop r1\n"), AsmError);
}

TEST(Assembler, BadRegisterThrows)
{
    EXPECT_THROW(assemble("add r1, r2, r99\n"), AsmError);
    EXPECT_THROW(assemble("add r1, r2, f3\n"), AsmError);
}

TEST(Assembler, DisassemblyRoundTripsStructure)
{
    Program p = assemble("add r3, r1, r2\nld r4, 8(r2)\nhalt\n");
    std::string d = p.disassemble();
    EXPECT_NE(d.find("add r3, r1, r2"), std::string::npos);
    EXPECT_NE(d.find("ld r4, 8(r2)"), std::string::npos);
    EXPECT_NE(d.find("halt"), std::string::npos);
}

} // namespace
} // namespace hs
