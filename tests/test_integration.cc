/** @file End-to-end integration tests: the paper's headline claims on
 *  the full simulator stack (time-scaled for test runtime).
 *
 *  Shared runs are computed once and reused across assertions. */

#include <gtest/gtest.h>

#include "sim/experiment.hh"

namespace hs {
namespace {

constexpr double kScale = 50.0;

ExperimentOptions
opts(DtmMode dtm = DtmMode::StopAndGo, SinkType sink = SinkType::Realistic)
{
    ExperimentOptions o;
    o.timeScale = kScale;
    o.dtm = dtm;
    o.sink = sink;
    return o;
}

const RunResult &
soloRealistic()
{
    static const RunResult r = runSolo("gcc", opts());
    return r;
}

const RunResult &
attackedStopAndGo()
{
    static const RunResult r = runWithVariant("gcc", 2, opts());
    return r;
}

const RunResult &
attackedSedation()
{
    static const RunResult r =
        runWithVariant("gcc", 2, opts(DtmMode::SelectiveSedation));
    return r;
}

TEST(Integration, SoloSpecRunsWithoutEmergencies)
{
    const RunResult &r = soloRealistic();
    EXPECT_EQ(r.emergencies, 0u);
    EXPECT_GT(r.threads[0].ipc, 1.0);
    EXPECT_EQ(r.threads[0].coolingCycles, 0u);
}

TEST(Integration, HeatStrokeDegradesVictim)
{
    // The attack: under conventional stop-and-go the victim loses a
    // large fraction of its performance and the chip sees repeated
    // temperature emergencies (paper Figures 4-5).
    const RunResult &solo = soloRealistic();
    const RunResult &attacked = attackedStopAndGo();
    EXPECT_GE(attacked.emergencies, 6u);
    EXPECT_LT(attacked.threads[0].ipc, 0.75 * solo.threads[0].ipc);
    EXPECT_GT(attacked.coolingFraction(0), 0.15);
}

TEST(Integration, HotSpotIsTheIntegerRegisterFile)
{
    const RunResult &attacked = attackedStopAndGo();
    EXPECT_EQ(attacked.hottestBlock, Block::IntReg);
    size_t ir = static_cast<size_t>(blockIndex(Block::IntReg));
    EXPECT_EQ(attacked.emergenciesPerBlock[ir], attacked.emergencies);
}

TEST(Integration, SedationRestoresVictim)
{
    // The contribution: selective sedation restores the victim to
    // near-solo performance (paper Figure 5).
    const RunResult &solo = soloRealistic();
    const RunResult &defended = attackedSedation();
    EXPECT_GT(defended.threads[0].ipc, 0.8 * solo.threads[0].ipc);
    EXPECT_LT(defended.emergencies, attackedStopAndGo().emergencies / 3);
}

TEST(Integration, SedationTargetsTheAttackerOnly)
{
    const RunResult &defended = attackedSedation();
    ASSERT_FALSE(defended.sedationEvents.empty());
    for (const SedationEvent &e : defended.sedationEvents) {
        EXPECT_EQ(e.thread, 1) << "victim was sedated at cycle "
                               << e.cycle;
        EXPECT_EQ(e.resource, Block::IntReg);
    }
    // The attacker spends a large part of the quantum sedated while
    // the victim barely stalls (paper Figure 6).
    EXPECT_GT(defended.sedationFraction(1), 0.15);
    EXPECT_LT(defended.coolingFraction(0) + defended.sedationFraction(0),
              0.1);
}

TEST(Integration, IdealSinkShowsAttackIsThermal)
{
    // Section 5.3: with infinite heat removal variant2 causes no
    // thermal degradation — the damage under the realistic sink is a
    // power-density effect, not fetch monopolisation.
    RunResult solo_ideal = runSolo("gcc", opts(DtmMode::StopAndGo,
                                               SinkType::Ideal));
    RunResult ideal = runWithVariant("gcc", 2,
                                     opts(DtmMode::StopAndGo,
                                          SinkType::Ideal));
    EXPECT_EQ(ideal.emergencies, 0u);
    EXPECT_EQ(ideal.threads[0].coolingCycles, 0u);
    EXPECT_GT(ideal.threads[0].ipc, 0.7 * solo_ideal.threads[0].ipc);
    // And the realistic-sink victim does far worse than the
    // ideal-sink victim.
    EXPECT_LT(attackedStopAndGo().threads[0].ipc,
              0.85 * ideal.threads[0].ipc);
}

TEST(Integration, Variant1MonopolizesFetchEvenOnIdealSink)
{
    // Variant1's high IPC grabs the pipeline under ICOUNT even with
    // perfect cooling (the contrast case of Section 5.3).
    RunResult solo_ideal = runSolo("gcc", opts(DtmMode::StopAndGo,
                                               SinkType::Ideal));
    RunResult v1_ideal = runWithVariant("gcc", 1,
                                        opts(DtmMode::StopAndGo,
                                             SinkType::Ideal));
    RunResult v2_ideal = runWithVariant("gcc", 2,
                                        opts(DtmMode::StopAndGo,
                                             SinkType::Ideal));
    double v1_share = v1_ideal.threads[0].ipc / solo_ideal.threads[0].ipc;
    double v2_share = v2_ideal.threads[0].ipc / solo_ideal.threads[0].ipc;
    EXPECT_LT(v1_share, v2_share)
        << "variant1 must hurt the victim more than variant2 when "
           "thermal effects are removed";
}

TEST(Integration, Variant3WeakerButStealthier)
{
    RunResult v3 = runWithVariant("gcc", 3, opts());
    const RunResult &v2 = attackedStopAndGo();
    // Weaker attack: fewer emergencies, less degradation.
    EXPECT_LT(v3.emergencies, v2.emergencies);
    EXPECT_GT(v3.threads[0].ipc, v2.threads[0].ipc);
    // Stealthier: lower observed register-file rate.
    EXPECT_LT(v3.threads[1].intRegAccessRate,
              v2.threads[1].intRegAccessRate);
}

TEST(Integration, LastThreadExceptionLeavesSoloAttackerToSafetyNet)
{
    // A malicious thread running alone cannot hurt anyone: sedation
    // must not engage (Section 3.2.2) and the stop-and-go safety net
    // handles the emergencies.
    ExperimentOptions o = opts(DtmMode::SelectiveSedation);
    SimConfig cfg = makeSimConfig(o);
    Simulator sim(cfg);
    sim.setWorkload(0, makeVariant(2, makeMaliciousParams(o)));
    RunResult r = sim.run();
    EXPECT_TRUE(r.sedationEvents.empty());
    EXPECT_GT(r.stopAndGoTriggers, 0u);
}

TEST(Integration, SpecPairUnaffectedBySedationPolicy)
{
    // Section 5.7: with no malicious thread, enabling selective
    // sedation must not cost performance. (The hottest SPEC pairs can
    // brush the upper threshold — the paper makes the same concession
    // for programs with inherent power-density problems — so this
    // asserts the common case on a typical pair.)
    RunResult plain = runSpecPair("gcc", "twolf", opts());
    RunResult guarded = runSpecPair("gcc", "twolf",
                                    opts(DtmMode::SelectiveSedation));
    EXPECT_TRUE(guarded.sedationEvents.empty());
    EXPECT_NEAR(guarded.threads[0].ipc, plain.threads[0].ipc,
                0.02 * plain.threads[0].ipc + 0.01);
    EXPECT_NEAR(guarded.threads[1].ipc, plain.threads[1].ipc,
                0.02 * plain.threads[1].ipc + 0.01);
}

TEST(Integration, TimeScalingPreservesEpisodeDensity)
{
    // Scale invariance: emergencies per quantum should be roughly
    // preserved when everything is scaled together.
    ExperimentOptions coarse = opts();
    coarse.timeScale = 100.0;
    RunResult fast = runWithVariant("gcc", 2, coarse);
    const RunResult &slow = attackedStopAndGo(); // scale 100
    ASSERT_GT(slow.emergencies, 0u);
    double ratio = static_cast<double>(fast.emergencies) /
                   static_cast<double>(slow.emergencies);
    EXPECT_GT(ratio, 0.3);
    EXPECT_LT(ratio, 3.0);
}

TEST(Integration, TwoAttackersBothGetSedated)
{
    // Section 3.2.2's multiple-attacker case on a 3-context SMT: after
    // sedating the first culprit fails to cool the resource within
    // twice the cooling time, the second is sedated too; the victim is
    // never sedated (last-thread exception).
    ExperimentOptions o = opts(DtmMode::SelectiveSedation);
    SimConfig cfg = makeSimConfig(o);
    cfg.smt.numThreads = 3;
    Simulator sim(cfg);
    MaliciousParams mp = makeMaliciousParams(o);
    sim.setWorkload(0, synthesizeSpec("gcc"));
    sim.setWorkload(1, makeVariant(2, mp));
    sim.setWorkload(2, makeVariant(1, mp));
    RunResult r = sim.run();
    ASSERT_FALSE(r.sedationEvents.empty());
    bool sedated1 = false, sedated2 = false;
    for (const SedationEvent &e : r.sedationEvents) {
        EXPECT_NE(e.thread, 0) << "victim sedated at cycle " << e.cycle;
        sedated1 = sedated1 || e.thread == 1;
        sedated2 = sedated2 || e.thread == 2;
    }
    EXPECT_TRUE(sedated2) << "the stronger attacker must be sedated";
    EXPECT_TRUE(sedated1 || sedated2);
    // The victim keeps making progress while both attackers exist.
    EXPECT_GT(r.threads[0].ipc, 0.5);
}

TEST(Integration, DvfsThrottleAlsoSuffersGlobally)
{
    // Extension ablation: DVFS-style throttling is still a global
    // mechanism, so the victim still degrades under attack.
    RunResult throttled = runWithVariant("gcc", 2,
                                         opts(DtmMode::DvfsThrottle));
    const RunResult &solo = soloRealistic();
    EXPECT_LT(throttled.threads[0].ipc, 0.93 * solo.threads[0].ipc);
}

} // namespace
} // namespace hs
