/** @file Unit tests for the per-thread usage monitor (Section 3.2.1). */

#include <gtest/gtest.h>

#include "core/usage_monitor.hh"

namespace hs {
namespace {

TEST(UsageMonitor, FirstSampleBindsWithoutCounting)
{
    ActivityCounters ac(2);
    UsageMonitor mon(2, 7);
    ac.record(0, Block::IntReg, 999); // pre-existing counts
    mon.sample(ac, {false, false});   // binding sample
    EXPECT_EQ(mon.weightedAvg(0, Block::IntReg), 0.0);
}

TEST(UsageMonitor, TracksSteadyRate)
{
    ActivityCounters ac(1);
    UsageMonitor mon(1, 7);
    mon.sample(ac, {false});
    for (int i = 0; i < 2000; ++i) {
        ac.record(0, Block::IntReg, 1000); // 1000 accesses / window
        mon.sample(ac, {false});
    }
    EXPECT_NEAR(mon.weightedAvg(0, Block::IntReg), 1000.0, 10.0);
    EXPECT_NEAR(mon.flatAvg(0, Block::IntReg), 1000.0, 1.0);
}

TEST(UsageMonitor, SeparatesAttackerFromVictim)
{
    // The core claim of Section 3.2: after a hammer burst, the
    // attacker's weighted average is distinctly above the victim's.
    ActivityCounters ac(2);
    UsageMonitor mon(2, 7);
    mon.sample(ac, {false, false});
    for (int i = 0; i < 600; ++i) {
        ac.record(0, Block::IntReg, 4000);  // victim: 4/cycle
        ac.record(1, Block::IntReg, 12000); // attacker: 12/cycle
        mon.sample(ac, {false, false});
    }
    std::vector<bool> eligible{true, true};
    EXPECT_EQ(mon.highestUsage(Block::IntReg, eligible), 1);
    EXPECT_GT(mon.weightedAvg(1, Block::IntReg),
              2.0 * mon.weightedAvg(0, Block::IntReg));
}

TEST(UsageMonitor, FlatAverageHidesBurstsButEwmaDoesNot)
{
    // Section 3.2.1's argument: a victim with a steady rate can have a
    // HIGHER flat average than a bursty attacker, yet the weighted
    // average must still finger the attacker right after its burst.
    ActivityCounters ac(2);
    UsageMonitor mon(2, 7);
    mon.sample(ac, {false, false});
    // 5000 quiet windows for the attacker, steady victim.
    for (int i = 0; i < 5000; ++i) {
        ac.record(0, Block::IntReg, 5000);
        mon.sample(ac, {false, false});
    }
    // Burst: 300 windows of hammering.
    for (int i = 0; i < 300; ++i) {
        ac.record(0, Block::IntReg, 5000);
        ac.record(1, Block::IntReg, 12000);
        mon.sample(ac, {false, false});
    }
    EXPECT_GT(mon.flatAvg(0, Block::IntReg),
              mon.flatAvg(1, Block::IntReg))
        << "flat average should (wrongly) rank the victim higher";
    std::vector<bool> eligible{true, true};
    EXPECT_EQ(mon.highestUsage(Block::IntReg, eligible), 1)
        << "weighted average must identify the attacker";
}

TEST(UsageMonitor, FrozenThreadKeepsItsAverage)
{
    // Section 3.2.2: sedation must not wash out the culprit's average.
    ActivityCounters ac(2);
    UsageMonitor mon(2, 7);
    mon.sample(ac, {false, false});
    for (int i = 0; i < 600; ++i) {
        ac.record(1, Block::IntReg, 12000);
        mon.sample(ac, {false, false});
    }
    double before = mon.weightedAvg(1, Block::IntReg);
    // Thread 1 sedated: its (zero) activity must not be folded in.
    for (int i = 0; i < 600; ++i)
        mon.sample(ac, {false, true});
    EXPECT_DOUBLE_EQ(mon.weightedAvg(1, Block::IntReg), before);
}

TEST(UsageMonitor, UnfrozenZeroActivityDecays)
{
    ActivityCounters ac(1);
    UsageMonitor mon(1, 7);
    mon.sample(ac, {false});
    for (int i = 0; i < 600; ++i) {
        ac.record(0, Block::IntReg, 8000);
        mon.sample(ac, {false});
    }
    double before = mon.weightedAvg(0, Block::IntReg);
    for (int i = 0; i < 600; ++i)
        mon.sample(ac, {false});
    EXPECT_LT(mon.weightedAvg(0, Block::IntReg), before / 10);
}

TEST(UsageMonitor, HighestUsageRespectsEligibility)
{
    ActivityCounters ac(2);
    UsageMonitor mon(2, 7);
    mon.sample(ac, {false, false});
    for (int i = 0; i < 300; ++i) {
        ac.record(0, Block::IntReg, 2000);
        ac.record(1, Block::IntReg, 9000);
        mon.sample(ac, {false, false});
    }
    EXPECT_EQ(mon.highestUsage(Block::IntReg, {true, false}), 0);
    EXPECT_EQ(mon.highestUsage(Block::IntReg, {false, false}),
              invalidThreadId);
}

TEST(UsageMonitor, PerResourceIndependence)
{
    ActivityCounters ac(1);
    UsageMonitor mon(1, 7);
    mon.sample(ac, {false});
    for (int i = 0; i < 300; ++i) {
        ac.record(0, Block::IntReg, 5000);
        mon.sample(ac, {false});
    }
    EXPECT_GT(mon.weightedAvg(0, Block::IntReg), 1000.0);
    EXPECT_EQ(mon.weightedAvg(0, Block::Dcache), 0.0);
}

TEST(UsageMonitor, ResetClearsState)
{
    ActivityCounters ac(1);
    UsageMonitor mon(1, 7);
    mon.sample(ac, {false});
    ac.record(0, Block::IntReg, 5000);
    mon.sample(ac, {false});
    mon.reset();
    EXPECT_EQ(mon.weightedAvg(0, Block::IntReg), 0.0);
    EXPECT_EQ(mon.flatAvg(0, Block::IntReg), 0.0);
    EXPECT_EQ(mon.samplesTaken(), 0u);
}

} // namespace
} // namespace hs
