/**
 * @file
 * Heap-allocation stability of the per-cycle hot path.
 *
 * Overrides the global allocation functions with counting wrappers and
 * asserts that, once warm, neither Pipeline::tick() nor
 * RcNetwork::step() / ThermalModel::step() touches the heap at all.
 * This pins the zero-allocation property the hot-path optimisation
 * establishes (ring-buffer ROB/LSQ, member scratch vectors, insertion-
 * sort fetch arbitration, cached thermal kernels) so a future change
 * that reintroduces per-tick allocation fails loudly rather than
 * showing up as a silent throughput regression.
 *
 * The counting overrides are binary-wide but only observed inside this
 * file; the counter is atomic because other suites in this binary spawn
 * worker threads.
 */

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "isa/assembler.hh"
#include "smt/pipeline.hh"
#include "thermal/floorplan.hh"
#include "thermal/rc_network.hh"
#include "thermal/thermal_model.hh"

namespace {

std::atomic<uint64_t> gAllocs{0};

} // namespace

void *
operator new(std::size_t size)
{
    gAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    gAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace hs {
namespace {

uint64_t
allocCount()
{
    return gAllocs.load(std::memory_order_relaxed);
}

/** A non-halting kernel with loads, stores, branches and FP work so the
 *  tick exercises fetch arbitration, the LSQ search, issue and commit —
 *  every stage that used to allocate. */
const char *kLoopKernel = "    addi r2, r0, 4096\n"
                          "    addi r3, r0, 0\n"
                          "loop:\n"
                          "    addi r3, r3, 8\n"
                          "    andi r3, r3, 255\n"
                          "    add r4, r2, r3\n"
                          "    st r3, 0(r4)\n"
                          "    ld r5, 0(r4)\n"
                          "    add r6, r5, r3\n"
                          "    fadd f1, f1, f2\n"
                          "    fmul f3, f1, f2\n"
                          "    bne r6, r0, loop\n"
                          "    jmp loop\n";

TEST(AllocStability, PipelineTickIsAllocationFreeWhenWarm)
{
    Program prog = assemble(kLoopKernel);
    SmtParams params;
    params.numThreads = 2;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &prog);
    pipe.setThreadProgram(1, &prog);

    // Warm-up: touch every memory page the loop uses, fill the caches
    // and settle the slot pool.
    for (int i = 0; i < 50000; ++i)
        pipe.tick();

    uint64_t before = allocCount();
    for (int i = 0; i < 20000; ++i)
        pipe.tick();
    uint64_t after = allocCount();
    EXPECT_EQ(after - before, 0u)
        << (after - before) << " heap allocations in 20000 warm ticks";
}

TEST(AllocStability, RcNetworkStepIsAllocationFreeWhenWarm)
{
    Rng rng(7);
    int n = 20;
    RcNetwork net(n);
    for (int i = 0; i < n; ++i)
        net.setCapacitance(i, 0.05 + rng.nextDouble());
    for (int i = 0; i + 1 < n; ++i)
        net.addConductance(i, i + 1, 0.5 + rng.nextDouble());
    net.addBathConductance(0, 1.0, 300.0);
    std::vector<Watts> power(static_cast<size_t>(n), 2.0);

    // First step builds the CSR adjacency and the substep cache.
    net.step(power, 0.01);

    uint64_t before = allocCount();
    for (int i = 0; i < 500; ++i)
        net.step(power, 0.01);
    uint64_t after = allocCount();
    EXPECT_EQ(after - before, 0u)
        << (after - before) << " heap allocations in 500 warm steps";
}

TEST(AllocStability, ThermalModelStepIsAllocationFreeWhenWarm)
{
    ThermalModel model(Floorplan::ev6(), ThermalParams{});
    std::vector<Watts> power(static_cast<size_t>(numBlocks), 1.5);

    model.step(power, 1e-5);

    uint64_t before = allocCount();
    for (int i = 0; i < 200; ++i)
        model.step(power, 1e-5);
    uint64_t after = allocCount();
    EXPECT_EQ(after - before, 0u)
        << (after - before) << " heap allocations in 200 warm steps";
}

} // namespace
} // namespace hs
