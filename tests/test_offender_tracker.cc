/** @file Unit and integration tests for the OS repeat-offender
 *  tracker (the paper's Section 3.3 OS response, implemented as an
 *  extension). */

#include <gtest/gtest.h>

#include "core/offender_tracker.hh"
#include "sim/experiment.hh"

namespace hs {
namespace {

SedationEvent
event(ThreadId tid, Cycles cycle = 0)
{
    SedationEvent e;
    e.cycle = cycle;
    e.thread = tid;
    e.resource = Block::IntReg;
    return e;
}

TEST(OffenderTracker, CountsReportsPerThread)
{
    OffenderTracker tracker(2);
    tracker.onReport(event(0));
    tracker.onReport(event(1));
    tracker.onReport(event(1));
    EXPECT_EQ(tracker.reports(0), 1);
    EXPECT_EQ(tracker.reports(1), 2);
}

TEST(OffenderTracker, FlagsAtThreshold)
{
    OffenderPolicy policy;
    policy.reportsBeforeDeschedule = 3;
    OffenderTracker tracker(2, policy);
    ThreadId flagged = invalidThreadId;
    tracker.setOnDeschedule([&](ThreadId tid) { flagged = tid; });
    tracker.onReport(event(1));
    tracker.onReport(event(1));
    EXPECT_FALSE(tracker.descheduled(1));
    EXPECT_EQ(flagged, invalidThreadId);
    tracker.onReport(event(1));
    EXPECT_TRUE(tracker.descheduled(1));
    EXPECT_EQ(flagged, 1);
    ASSERT_EQ(tracker.offenders().size(), 1u);
    EXPECT_EQ(tracker.offenders()[0], 1);
}

TEST(OffenderTracker, CallbackFiresOnce)
{
    OffenderPolicy policy;
    policy.reportsBeforeDeschedule = 1;
    OffenderTracker tracker(1, policy);
    int calls = 0;
    tracker.setOnDeschedule([&](ThreadId) { ++calls; });
    tracker.onReport(event(0));
    tracker.onReport(event(0));
    tracker.onReport(event(0));
    EXPECT_EQ(calls, 1);
}

TEST(OffenderTracker, RejectsBadConfig)
{
    EXPECT_DEATH(OffenderTracker t(0), "thread");
    OffenderPolicy policy;
    policy.reportsBeforeDeschedule = 0;
    EXPECT_DEATH(OffenderTracker t(2, policy), "threshold");
}

TEST(OffenderTracker, EndToEndDeschedulesAttacker)
{
    // gcc + variant2 with the OS extension enabled: after the second
    // sedation report the attacker is pulled from the machine for the
    // rest of the quantum, and the victim runs nearly solo.
    ExperimentOptions opts;
    opts.timeScale = 50.0;
    opts.dtm = DtmMode::SelectiveSedation;
    SimConfig cfg = makeSimConfig(opts);
    cfg.descheduleRepeatOffenders = true;
    cfg.offenderPolicy.reportsBeforeDeschedule = 2;

    Simulator sim(cfg);
    sim.setWorkload(0, synthesizeSpec("gcc"));
    sim.setWorkload(1, makeVariant(2, makeMaliciousParams(opts)));
    RunResult r = sim.run();

    ASSERT_EQ(r.descheduledThreads.size(), 1u);
    EXPECT_EQ(r.descheduledThreads[0], 1);
    EXPECT_TRUE(sim.offenderTracker()->descheduled(1));

    // Victim performance approaches solo once the attacker is gone.
    opts.dtm = DtmMode::StopAndGo;
    RunResult solo = runSolo("gcc", opts);
    EXPECT_GT(r.threads[0].ipc, 0.85 * solo.threads[0].ipc);
    // The attacker stays sedated to the end of the quantum.
    EXPECT_GT(r.threads[1].sedationCycles, r.cycles / 3);
}

TEST(OffenderTracker, UserCallbackStillChained)
{
    ExperimentOptions opts;
    opts.timeScale = 200.0;
    opts.dtm = DtmMode::SelectiveSedation;
    SimConfig cfg = makeSimConfig(opts);
    cfg.descheduleRepeatOffenders = true;
    cfg.offenderPolicy.reportsBeforeDeschedule = 1;
    Simulator sim(cfg);
    sim.setWorkload(0, synthesizeSpec("gcc"));
    sim.setWorkload(1, makeVariant(2, makeMaliciousParams(opts)));
    int user_reports = 0;
    sim.setOsReport([&](const SedationEvent &) { ++user_reports; });
    RunResult r = sim.run();
    EXPECT_EQ(static_cast<size_t>(user_reports),
              r.sedationEvents.size());
}

} // namespace
} // namespace hs
