/** @file Unit and calibration tests for the HotSpot-style thermal
 *  model — including the heat-up / cool-down time constants the
 *  heat-stroke attack exploits (Section 3.1 of the paper). */

#include <gtest/gtest.h>

#include "power/energy_model.hh"
#include "thermal/thermal_model.hh"

namespace hs {
namespace {

std::vector<Watts>
uniformPower(double total)
{
    return std::vector<Watts>(static_cast<size_t>(numBlocks),
                              total / numBlocks);
}

std::vector<Watts>
zeroPower()
{
    return std::vector<Watts>(static_cast<size_t>(numBlocks), 0.0);
}

// Mirror of SimConfig::defaultNominalRates without linking hs_sim.
std::array<double, numBlocks>
SimConfig_nominal()
{
    std::array<double, numBlocks> rates{};
    auto set = [&](Block b, double v) {
        rates[static_cast<size_t>(blockIndex(b))] = v;
    };
    set(Block::Icache, 1.8);
    set(Block::Itb, 1.8);
    set(Block::Bpred, 0.5);
    set(Block::IntMap, 3.0);
    set(Block::FpMap, 0.5);
    set(Block::IntQ, 13.5);
    set(Block::IntReg, 11.5);
    set(Block::FpReg, 1.2);
    set(Block::IntExec, 2.3);
    set(Block::FpAdd, 0.3);
    set(Block::FpMul, 0.2);
    set(Block::LdStQ, 1.1);
    set(Block::Dcache, 1.1);
    set(Block::Dtb, 1.1);
    set(Block::L2, 0.05);
    return rates;
}


TEST(ThermalModel, SteadySinkTemperatureMatchesConvection)
{
    // T_sink = ambient + P_total * R_convection.
    ThermalParams params;
    ThermalModel tm(Floorplan::ev6(), params);
    tm.initSteadyState(uniformPower(30.0));
    EXPECT_NEAR(tm.sinkTemp(), params.ambient + 30.0 * 0.8, 0.01);
}

TEST(ThermalModel, BlocksHotterThanSpreaderUnderPower)
{
    ThermalModel tm(Floorplan::ev6(), {});
    tm.initSteadyState(uniformPower(30.0));
    for (int b = 0; b < numBlocks; ++b)
        EXPECT_GT(tm.blockTemp(blockFromIndex(b)), tm.spreaderTemp());
}

TEST(ThermalModel, SmallBlockRunsHotterThanLargeAtSamePower)
{
    // Power density, not power, makes hot spots: equal watts into the
    // small IntReg vs the big L2 band must heat IntReg far more.
    ThermalModel tm(Floorplan::ev6(), {});
    std::vector<Watts> p = zeroPower();
    p[static_cast<size_t>(blockIndex(Block::IntReg))] = 3.0;
    p[static_cast<size_t>(blockIndex(Block::L2))] = 3.0;
    tm.initSteadyState(p);
    EXPECT_GT(tm.blockTemp(Block::IntReg),
              tm.blockTemp(Block::L2) + 5.0);
}

TEST(ThermalModel, IdealSinkNeverHeats)
{
    ThermalParams params;
    params.idealSink = true;
    ThermalModel tm(Floorplan::ev6(), params);
    tm.initSteadyState(uniformPower(30.0));
    Kelvin before = tm.blockTemp(Block::IntReg);
    for (int i = 0; i < 1000; ++i)
        tm.step(uniformPower(200.0), 1e-3);
    EXPECT_DOUBLE_EQ(tm.blockTemp(Block::IntReg), before);
}

TEST(ThermalModel, LateralSpreadToNeighbour)
{
    // Heating IntReg must warm its neighbour IntExec more than the
    // far-away L2 bottom band.
    ThermalModel tm(Floorplan::ev6(), {});
    tm.initSteadyState(zeroPower());
    std::vector<Watts> p = zeroPower();
    p[static_cast<size_t>(blockIndex(Block::IntReg))] = 5.0;
    std::vector<Kelvin> ss = tm.steadyTemps(p);
    Kelvin exec = ss[static_cast<size_t>(blockIndex(Block::IntExec))];
    Kelvin l2 = ss[static_cast<size_t>(blockIndex(Block::L2))];
    EXPECT_GT(exec, l2 + 0.3);
}

TEST(ThermalModel, NominalOperatingPointCalibration)
{
    // The Section 3.2.2 anchor: under the nominal two-thread activity
    // the integer register file sits at ~354 K (normal operating
    // temperature), comfortably below the 356 K upper threshold, and
    // is the hottest block on the die.
    EnergyModel em;
    ThermalModel tm(Floorplan::ev6(), {});
    tm.initSteadyState(em.steadyPower(SimConfig_nominal()));
    Kelvin t = tm.blockTemp(Block::IntReg);
    EXPECT_GT(t, 352.0);
    EXPECT_LT(t, 356.0);
    auto [hottest, temp] = tm.hottest();
    EXPECT_EQ(hottest, Block::IntReg);
    EXPECT_EQ(temp, t);
}

TEST(ThermalModel, HammerCrossesEmergencySteadyState)
{
    // With the register file hammered at the variant-1 rate the
    // steady-state IntReg temperature must exceed the 358 K emergency
    // (otherwise the attack could never trigger).
    EnergyModel em;
    ThermalModel tm(Floorplan::ev6(), {});
    auto rates = SimConfig_nominal();
    rates[static_cast<size_t>(blockIndex(Block::IntReg))] = 16.0;
    std::vector<Kelvin> ss = tm.steadyTemps(em.steadyPower(rates));
    EXPECT_GT(ss[static_cast<size_t>(blockIndex(Block::IntReg))], 359.0);
}

TEST(ThermalModel, HeatUpTimeInPaperRange)
{
    // Section 3.2.1: a hot spot forms in millions of cycles (order
    // 1 ms at 4 GHz). Drive the attack power transiently and measure
    // the time from normal operation to the 358 K emergency.
    EnergyModel em;
    ThermalModel tm(Floorplan::ev6(), {});
    tm.initSteadyState(em.steadyPower(SimConfig_nominal()));
    auto rates = SimConfig_nominal();
    rates[static_cast<size_t>(blockIndex(Block::IntReg))] = 16.0;
    std::vector<Watts> attack = em.steadyPower(rates);
    double t = 0;
    const double dt = 5e-6; // one sensor interval
    while (tm.blockTemp(Block::IntReg) < 358.0 && t < 0.2) {
        tm.step(attack, dt);
        t += dt;
    }
    EXPECT_GT(t, 0.2e-3); // not instantaneous
    EXPECT_LT(t, 20e-3);  // well within one OS quantum (125 ms)
}

TEST(ThermalModel, CoolDownIsSubstantial)
{
    // The heat-stroke asymmetry (Section 3.1): the stall for cooling
    // is a substantial fraction of each heat/cool episode. (The paper
    // reports a 10:1 cool:heat ratio; a single-time-constant compact
    // model with a deeply sub-normal stalled equilibrium yields a
    // smaller ratio — see EXPERIMENTS.md — but the cooling stall must
    // still be comparable to the heating time for heat stroke to hurt.)
    EnergyModel em;
    ThermalModel tm(Floorplan::ev6(), {});
    tm.initSteadyState(em.steadyPower(SimConfig_nominal()));
    auto rates = SimConfig_nominal();
    rates[static_cast<size_t>(blockIndex(Block::IntReg))] = 16.0;
    std::vector<Watts> attack = em.steadyPower(rates);
    const double dt = 5e-6;
    double heat = 0;
    while (tm.blockTemp(Block::IntReg) < 358.0 && heat < 0.2) {
        tm.step(attack, dt);
        heat += dt;
    }
    // Stall: leakage only.
    std::vector<Watts> idle = em.idlePower();
    double cool = 0;
    while (tm.blockTemp(Block::IntReg) > 350.5 && cool < 1.0) {
        tm.step(idle, dt);
        cool += dt;
    }
    EXPECT_GT(cool, 0.5 * heat);
    EXPECT_LT(cool, 0.2); // but bounded (the paper's ~12.5 ms scale)
}

TEST(ThermalModel, TimeScalePreservesTrajectoryShape)
{
    // Scaled runs must show the same temperatures at scaled times.
    EnergyModel em;
    ThermalParams fast;
    fast.timeScale = 50.0;
    ThermalModel scaled(Floorplan::ev6(), fast);
    ThermalModel plain(Floorplan::ev6(), {});
    std::vector<Watts> p = em.steadyPower(SimConfig_nominal());
    scaled.initSteadyState(p);
    plain.initSteadyState(p);
    auto rates = SimConfig_nominal();
    rates[static_cast<size_t>(blockIndex(Block::IntReg))] = 16.0;
    std::vector<Watts> attack = em.steadyPower(rates);
    for (int i = 0; i < 100; ++i)
        scaled.step(attack, 1e-5);
    for (int i = 0; i < 100; ++i)
        plain.step(attack, 50e-5);
    EXPECT_NEAR(scaled.blockTemp(Block::IntReg),
                plain.blockTemp(Block::IntReg), 0.3);
}

TEST(ThermalModel, BetterSinkLowersTemps)
{
    // Section 5.5: improving the package (lower convection R) lowers
    // steady temperatures.
    EnergyModel em;
    ThermalParams good;
    good.convectionR = 0.3;
    ThermalModel strong(Floorplan::ev6(), good);
    ThermalModel weak(Floorplan::ev6(), {});
    auto p = em.steadyPower(SimConfig_nominal());
    strong.initSteadyState(p);
    weak.initSteadyState(p);
    EXPECT_LT(strong.blockTemp(Block::IntReg),
              weak.blockTemp(Block::IntReg) - 5.0);
}

} // namespace
} // namespace hs
