/**
 * @file
 * Persistent result-store tests, with emphasis on the failure matrix:
 * a truncated record, a corrupted payload, a wrong format version, and
 * a stale config echo must each be detected, logged, and recomputed —
 * never crash the engine, never serve a wrong result.
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "sim/disk_store.hh"
#include "sim/result_store.hh"
#include "sim/run_spec.hh"
#include "sim/runner.hh"
#include "sim/serialize.hh"

namespace {

using namespace hs;

ExperimentOptions
fastOpts()
{
    ExperimentOptions opts;
    opts.timeScale = 2000.0;
    return opts;
}

/** Fresh store directory per test (process-unique, test-unique). */
std::string
freshDir(const std::string &tag)
{
    std::string dir = "hs_store_test_" + tag + "_" +
                      std::to_string(::getpid());
    std::string cmd = "rm -rf " + dir;
    if (std::system(cmd.c_str()) != 0)
        ADD_FAILURE() << "cannot clear " << dir;
    return dir;
}

std::vector<char>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
spit(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

TEST(DiskStore, StoreThenLoadRoundTrips)
{
    DiskResultStore store(freshDir("roundtrip"));
    RunSpec spec = soloSpec("gcc", fastOpts());
    RunResult original = executeRunSpec(spec);

    EXPECT_FALSE(store.contains(spec));
    ASSERT_TRUE(store.store(spec, original));
    EXPECT_TRUE(store.contains(spec));
    EXPECT_EQ(store.writes(), 1u);

    RunResult back;
    ASSERT_EQ(store.load(spec, back), DiskResultStore::LoadStatus::Hit);
    EXPECT_TRUE(back == original);
    EXPECT_EQ(back.hostSeconds, original.hostSeconds);
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.corrupt(), 0u);
}

TEST(DiskStore, MissOnEmptyStore)
{
    DiskResultStore store(freshDir("miss"));
    RunResult out;
    EXPECT_EQ(store.load(soloSpec("gcc", fastOpts()), out),
              DiskResultStore::LoadStatus::Miss);
    EXPECT_EQ(store.misses(), 1u);
}

TEST(DiskStore, EntryPathUsesHashFanout)
{
    DiskResultStore store(freshDir("path"));
    RunSpec spec = soloSpec("gcc", fastOpts());
    std::string path = store.entryPath(spec);
    char hex[24];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(spec.hash()));
    EXPECT_NE(path.find(std::string("/") + hex[0] + hex[1] + "/"),
              std::string::npos);
    EXPECT_NE(path.find(std::string(hex) + ".hsr"),
              std::string::npos);
}

/**
 * The corruption matrix: each mutation of a valid record must load as
 * Corrupt (logged miss), and a read-through ResultStore must then
 * recompute the correct result rather than crash or serve garbage.
 */
class DiskStoreCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = freshDir("corrupt");
        store_ = std::make_unique<DiskResultStore>(dir_);
        spec_ = soloSpec("gcc", fastOpts());
        original_ = executeRunSpec(spec_);
        ASSERT_TRUE(store_->store(spec_, original_));
        path_ = store_->entryPath(spec_);
        bytes_ = slurp(path_);
        ASSERT_GT(bytes_.size(), 40u);
    }

    /** Expect Corrupt from load(), then a correct recompute through
     *  a read-through ResultStore. */
    void
    expectCorruptAndRecompute()
    {
        RunResult out;
        EXPECT_EQ(store_->load(spec_, out),
                  DiskResultStore::LoadStatus::Corrupt);
        EXPECT_GE(store_->corrupt(), 1u);

        ResultStore mem;
        mem.attachDisk(store_.get());
        bool computed = false;
        ResultStore::Source src = ResultStore::Source::Memory;
        RunResult served = mem.getOrCompute(
            spec_,
            [&] {
                computed = true;
                return executeRunSpec(spec_);
            },
            &src);
        EXPECT_TRUE(computed);
        EXPECT_EQ(src, ResultStore::Source::Computed);
        EXPECT_TRUE(served == original_);
    }

    std::string dir_, path_;
    std::unique_ptr<DiskResultStore> store_;
    RunSpec spec_;
    RunResult original_;
    std::vector<char> bytes_;
};

TEST_F(DiskStoreCorruption, TruncatedRecordIsRecomputed)
{
    std::vector<char> cut(bytes_.begin(),
                          bytes_.begin() +
                              static_cast<long>(bytes_.size() / 2));
    spit(path_, cut);
    expectCorruptAndRecompute();
}

TEST_F(DiskStoreCorruption, TruncatedHeaderIsRecomputed)
{
    spit(path_, std::vector<char>(bytes_.begin(), bytes_.begin() + 7));
    expectCorruptAndRecompute();
}

TEST_F(DiskStoreCorruption, ChecksumMismatchIsRecomputed)
{
    bytes_.back() = static_cast<char>(bytes_.back() ^ 0x40);
    spit(path_, bytes_);
    expectCorruptAndRecompute();
}

TEST_F(DiskStoreCorruption, WrongFormatVersionIsRecomputed)
{
    // Header layout: magic u32 | version u32 | ... — poke the version.
    bytes_[4] = static_cast<char>(0x7f);
    spit(path_, bytes_);
    expectCorruptAndRecompute();
}

TEST_F(DiskStoreCorruption, BadMagicIsRecomputed)
{
    bytes_[0] = 'X';
    spit(path_, bytes_);
    expectCorruptAndRecompute();
}

TEST_F(DiskStoreCorruption, StaleConfigEchoIsRecomputed)
{
    // The canonical key (config echo) starts right after the 32-byte
    // fixed header; corrupting it models a hash collision or an entry
    // written by a build with a different key layout.
    bytes_[32] = static_cast<char>(bytes_[32] ^ 0x01);
    spit(path_, bytes_);
    expectCorruptAndRecompute();
}

TEST_F(DiskStoreCorruption, TrailingBytesAreRecomputed)
{
    bytes_.push_back(0x00);
    spit(path_, bytes_);
    expectCorruptAndRecompute();
}

TEST(DiskStoreTier, ReadThroughAndWriteThrough)
{
    std::string dir = freshDir("tier");
    RunSpec spec = soloSpec("gcc", fastOpts());
    RunResult original;

    {
        // Cold process: computes, writes through.
        DiskResultStore disk(dir);
        ResultStore mem;
        mem.attachDisk(&disk);
        ResultStore::Source src = ResultStore::Source::Memory;
        original = mem.getOrCompute(
            spec, [&] { return executeRunSpec(spec); }, &src);
        EXPECT_EQ(src, ResultStore::Source::Computed);
        EXPECT_EQ(disk.writes(), 1u);
        EXPECT_TRUE(mem.available(spec));

        // Second lookup in the same process: memory tier.
        src = ResultStore::Source::Computed;
        mem.getOrCompute(
            spec,
            [&]() -> RunResult {
                ADD_FAILURE() << "must not simulate";
                return RunResult();
            },
            &src);
        EXPECT_EQ(src, ResultStore::Source::Memory);
    }

    {
        // "New process": fresh memory store over the same directory.
        DiskResultStore disk(dir);
        ResultStore mem;
        mem.attachDisk(&disk);
        EXPECT_FALSE(mem.contains(spec));
        EXPECT_TRUE(mem.available(spec));
        ResultStore::Source src = ResultStore::Source::Computed;
        RunResult served = mem.getOrCompute(
            spec,
            [&]() -> RunResult {
                ADD_FAILURE() << "warm store must not simulate";
                return RunResult();
            },
            &src);
        EXPECT_EQ(src, ResultStore::Source::Disk);
        EXPECT_TRUE(served == original);
        EXPECT_EQ(served.hostSeconds, original.hostSeconds);
        EXPECT_EQ(disk.hits(), 1u);
        EXPECT_EQ(disk.writes(), 0u);
    }
}

TEST(DiskStoreTier, WarmStoreServesWholeMatrixWithoutSimulating)
{
    std::string dir = freshDir("matrix");
    ExperimentOptions opts = fastOpts();
    std::vector<RunSpec> specs;
    specs.push_back(soloSpec("gcc", opts));
    specs.push_back(soloSpec("mesa", opts));
    specs.push_back(
        soloSpec("gcc", opts).withDtm(DtmMode::SelectiveSedation));

    std::vector<RunResult> cold;
    {
        DiskResultStore disk(dir);
        ResultStore mem;
        mem.attachDisk(&disk);
        ParallelRunner runner(2, &mem);
        cold = runner.run(specs);
        EXPECT_EQ(disk.writes(), specs.size());
    }
    {
        DiskResultStore disk(dir);
        ResultStore mem;
        mem.attachDisk(&disk);
        ParallelRunner runner(2, &mem);
        size_t diskHits = 0, simulated = 0;
        runner.setCellObserver([&](const CellEvent &ev) {
            if (ev.kind == CellEvent::Kind::DiskHit)
                ++diskHits;
            if (ev.kind == CellEvent::Kind::Finished ||
                ev.kind == CellEvent::Kind::RemoteFinished)
                ++simulated;
        });
        std::vector<RunResult> warm = runner.run(specs);
        EXPECT_EQ(simulated, 0u);
        EXPECT_EQ(diskHits, specs.size());
        ASSERT_EQ(warm.size(), cold.size());
        for (size_t i = 0; i < warm.size(); ++i)
            EXPECT_TRUE(warm[i] == cold[i]) << "cell " << i;
    }
}

} // namespace
