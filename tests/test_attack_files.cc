/** @file The shipped attack listings in attacks/ must assemble and
 *  behave as advertised. */

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "smt/pipeline.hh"

namespace hs {
namespace {

/** Locate the attacks/ directory relative to common build layouts. */
std::string
attackPath(const std::string &file)
{
    for (const char *prefix :
         {"attacks/", "../attacks/", "../../attacks/"}) {
        std::string path = std::string(prefix) + file;
        if (std::ifstream(path).good())
            return path;
    }
    return "";
}

Program
loadAttack(const std::string &file)
{
    std::string path = attackPath(file);
    if (path.empty()) {
        ADD_FAILURE() << "cannot locate attacks/" << file;
        return Program("missing");
    }
    std::ifstream in(path);
    std::stringstream buf;
    buf << in.rdbuf();
    Program p = assemble(buf.str(), file);
    p.setInitReg(24, 7);
    p.setInitReg(25, 13);
    return p;
}

class AttackFiles : public ::testing::TestWithParam<const char *>
{
};

TEST_P(AttackFiles, AssemblesAndRuns)
{
    Program p = loadAttack(GetParam());
    if (p.empty())
        GTEST_SKIP() << "attacks/ not found from test cwd";
    SmtParams params;
    params.numThreads = 1;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &p);
    for (int i = 0; i < 50000; ++i)
        pipe.tick();
    EXPECT_GT(pipe.committed(0), 1000u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Listings, AttackFiles,
                         ::testing::Values("figure1_hammer.s",
                                           "figure2_two_phase.s",
                                           "stealthy_burst.s"),
                         [](const auto &info) {
                             std::string name = info.param;
                             return name.substr(0, name.find('.'));
                         });

TEST(AttackFiles, Figure1HammersTheRegisterFile)
{
    Program p = loadAttack("figure1_hammer.s");
    if (p.empty())
        GTEST_SKIP();
    SmtParams params;
    params.numThreads = 1;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &p);
    for (int i = 0; i < 100000; ++i)
        pipe.tick();
    double rate = static_cast<double>(
                      pipe.activity().count(0, Block::IntReg)) /
                  static_cast<double>(pipe.cycle());
    EXPECT_GT(rate, 9.0);
}

} // namespace
} // namespace hs
