#!/bin/sh
# CLI contract test for hs_run.
#
# The driver's argument parser is strict: unknown options, missing or
# malformed values, and trailing garbage must all print the usage text
# to stderr and exit 2, while well-formed invocations exit 0 and
# produce the files they promised. ctest runs this via the hs_run_cli
# test; it needs no fixtures beyond the built binary and the repo's
# attacks/ directory.
#
# usage: hs_run_cli_test.sh <path-to-hs_run> <repo-root>

set -u

BIN=$1
ROOT=$2
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

# A large time scale keeps every simulated quantum tiny (25 K cycles).
FAST="--scale 20000"
fails=0

fail()
{
    echo "FAIL: $1" >&2
    fails=$((fails + 1))
}

# expect_usage DESC ARGS... : must exit 2 and print the usage text.
expect_usage()
{
    desc=$1
    shift
    "$BIN" "$@" >"$TMP/out" 2>"$TMP/err"
    rc=$?
    [ "$rc" -eq 2 ] || fail "$desc: expected exit 2, got $rc"
    grep -q "usage:" "$TMP/err" || fail "$desc: no usage text on stderr"
}

# expect_ok DESC ARGS... : must exit 0.
expect_ok()
{
    desc=$1
    shift
    "$BIN" "$@" >"$TMP/out" 2>"$TMP/err"
    rc=$?
    [ "$rc" -eq 0 ] || fail "$desc: expected exit 0, got $rc"
}

# --- malformed command lines must all die through usage() --------------

expect_usage "no workloads"
expect_usage "unknown option" --frobnicate
expect_usage "trailing garbage" --spec gcc $FAST garbage
expect_usage "stray positional" gcc
expect_usage "missing value" --spec gcc $FAST --jobs
expect_usage "non-numeric scale" --spec gcc --scale banana
expect_usage "partial numeric scale" --spec gcc --scale 400x
expect_usage "negative scale" --spec gcc --scale -1
expect_usage "zero jobs" --spec gcc $FAST --jobs 0
expect_usage "variant out of range" --variant 9 $FAST
expect_usage "non-integer variant" --variant two $FAST
expect_usage "unknown dtm" --spec gcc $FAST --dtm nothing
expect_usage "unknown sink" --spec gcc $FAST --sink water
expect_usage "negative noise" --spec gcc $FAST --noise -0.5
expect_usage "value on flag" --spec gcc $FAST --stats=yes
expect_usage "filter without trace" --spec gcc $FAST --trace-filter dtm
expect_usage "unknown trace category" \
    --spec gcc $FAST --trace "$TMP/t.jsonl" --trace-filter dtm,bogus
expect_usage "each with stats" --spec gcc --spec mcf $FAST --each --stats
expect_usage "value on progress" --spec gcc $FAST --progress=yes
expect_usage "progress with stats" --spec gcc $FAST --progress --stats
expect_usage "progress with profile" --spec gcc $FAST --progress --profile
expect_usage "zero cores" --spec gcc $FAST --cores 0
expect_usage "negative cores" --spec gcc $FAST --cores -2
expect_usage "non-integer cores" --spec gcc $FAST --cores two
expect_usage "partial numeric cores" --spec gcc $FAST --cores 2x
expect_usage "non-integer place" --spec gcc --variant 2 $FAST \
    --cores 2 --place 0,x
expect_usage "empty place entry" --spec gcc --variant 2 $FAST \
    --cores 2 --place "0,,1"
expect_usage "place entry out of range" --spec gcc --variant 2 $FAST \
    --cores 2 --place 0,2
expect_usage "negative place entry" --spec gcc --variant 2 $FAST \
    --cores 2 --place 0,-1
expect_usage "place length mismatch" --spec gcc --variant 2 $FAST \
    --cores 2 --place 0
expect_usage "place with each" --spec gcc --spec mcf $FAST --each \
    --place 0,0
expect_usage "zero batch" --spec gcc $FAST --batch 0
expect_usage "negative batch" --spec gcc $FAST --batch -3
expect_usage "non-integer batch" --spec gcc $FAST --batch banana
expect_usage "partial numeric batch" --spec gcc $FAST --batch 8x
expect_usage "missing batch value" --spec gcc $FAST --batch
expect_usage "missing store value" --spec gcc $FAST --store
expect_usage "empty store value" --spec gcc $FAST --store ""
expect_usage "zero serve port" --serve 0
expect_usage "negative serve port" --serve -1
expect_usage "serve port out of range" --serve 65536
expect_usage "non-integer serve port" --serve http
expect_usage "serve with workload" --spec gcc $FAST --serve 7471
expect_usage "serve with workers" --serve 7471 --workers 127.0.0.1:7472
expect_usage "serve with output" --serve 7471 --json "$TMP/x.json"
expect_usage "workers without port" --spec gcc $FAST --workers 127.0.0.1
expect_usage "workers bad port" --spec gcc $FAST --workers host:0
expect_usage "workers empty entry" --spec gcc $FAST --workers "a:1,,b:2"
expect_usage "workers with stats" --spec gcc $FAST \
    --workers 127.0.0.1:1 --stats
expect_usage "store with profile" --spec gcc $FAST \
    --store "$TMP/store" --profile
expect_usage "missing log-json value" --spec gcc $FAST --log-json
expect_usage "empty log-json value" --spec gcc $FAST --log-json ""
expect_usage "missing events value" --spec gcc $FAST --events
expect_usage "empty events value" --spec gcc $FAST --events ""
expect_usage "zero status port" --spec gcc $FAST --status-port 0
expect_usage "negative status port" --spec gcc $FAST --status-port -1
expect_usage "status port out of range" --spec gcc $FAST \
    --status-port 65536
expect_usage "non-integer status port" --spec gcc $FAST \
    --status-port banana
expect_usage "serve with events" --serve 7471 --events "$TMP/e.jsonl"
expect_usage "serve with status port" --serve 7471 --status-port 7999
expect_usage "events with stats" --spec gcc $FAST \
    --events "$TMP/e.jsonl" --stats
expect_usage "status port with profile" --spec gcc $FAST \
    --status-port 7999 --profile

# --- well-formed invocations -------------------------------------------

# Progress output goes to stderr; when stderr is not a TTY (as here)
# it must degrade to plain periodic lines: no ANSI escapes, no
# carriage-return redraws, and a final completion summary.
expect_ok "progress matrix" --spec gcc --spec mcf $FAST --each \
    --jobs 2 --progress
grep -q "\[progress\] 2/2 cells" "$TMP/err" ||
    fail "progress: no completion line on stderr"
grep -q "$(printf '\033')" "$TMP/err" &&
    fail "progress: ANSI escape in non-TTY output"
grep -q "$(printf '\r')" "$TMP/err" &&
    fail "progress: carriage return in non-TTY output"

# HS_WATCHDOG is validated strictly like every other HS_* knob.
HS_WATCHDOG=banana "$BIN" --spec gcc $FAST --progress \
    >"$TMP/out" 2>"$TMP/err"
[ $? -eq 1 ] || fail "progress: bad HS_WATCHDOG not rejected"
grep -q "HS_WATCHDOG" "$TMP/err" ||
    fail "progress: HS_WATCHDOG error message missing"

# HS_BATCH too: garbage must die with a message naming the knob.
HS_BATCH=banana "$BIN" --spec gcc $FAST \
    >"$TMP/out" 2>"$TMP/err"
[ $? -eq 1 ] || fail "batch: bad HS_BATCH not rejected"
grep -q "HS_BATCH" "$TMP/err" ||
    fail "batch: HS_BATCH error message missing"

# The observability knobs follow the same strict-env contract.
HS_STATUS_PORT=banana "$BIN" --spec gcc $FAST \
    >"$TMP/out" 2>"$TMP/err"
[ $? -eq 1 ] || fail "status: bad HS_STATUS_PORT not rejected"
grep -q "HS_STATUS_PORT" "$TMP/err" ||
    fail "status: HS_STATUS_PORT error message missing"

HS_LOG_JSON="$TMP/no-such-dir/log.jsonl" "$BIN" --spec gcc $FAST \
    >"$TMP/out" 2>"$TMP/err"
[ $? -eq 1 ] || fail "log: unwritable HS_LOG_JSON not rejected"
grep -q "HS_LOG_JSON" "$TMP/err" ||
    fail "log: HS_LOG_JSON error message missing"

# A happy-path fleet run: the timeline carries every cell lifecycle
# event and the operational log exists alongside it.
expect_ok "events timeline" --spec gcc --spec mcf $FAST --each \
    --jobs 2 --events "$TMP/fleet.jsonl" --log-json "$TMP/oplog.jsonl"
grep -q '"event":"queued"' "$TMP/fleet.jsonl" ||
    fail "events: no queued event in timeline"
grep -q '"event":"finished"' "$TMP/fleet.jsonl" ||
    fail "events: no finished event in timeline"
[ -s "$TMP/oplog.jsonl" ] || fail "log-json: operational log missing"

HS_LOG_JSON="$TMP/envlog.jsonl" "$BIN" --spec gcc $FAST \
    >"$TMP/out" 2>"$TMP/err"
[ $? -eq 0 ] || fail "log: HS_LOG_JSON run failed"
[ -s "$TMP/envlog.jsonl" ] || fail "log: HS_LOG_JSON produced no log"

# Batched and solo sweeps must emit byte-identical result tables —
# --batch changes only how the engine schedules work, never what a
# cell computes. Only the trailing wall-clock columns (host_seconds,
# sim_cycles_per_host_sec) may differ between the two runs.
expect_ok "batched each matrix" --spec gcc --spec mcf $FAST --each \
    --batch 8 --csv "$TMP/batched.csv"
expect_ok "solo each matrix" --spec gcc --spec mcf $FAST --each \
    --batch 1 --csv "$TMP/solo.csv"
sed 's/,[^,]*,[^,]*$//' "$TMP/batched.csv" >"$TMP/batched.trim"
sed 's/,[^,]*,[^,]*$//' "$TMP/solo.csv" >"$TMP/solo.trim"
cmp -s "$TMP/batched.trim" "$TMP/solo.trim" ||
    fail "batch: --batch 8 csv differs from --batch 1"

expect_ok "plain run" --spec gcc $FAST
expect_ok "inline values" --spec=gcc --scale=20000 --dtm=sedation
expect_ok "attack mix" --spec gcc \
    --asm "$ROOT/attacks/figure1_hammer.s" $FAST --dtm sedation

expect_ok "jsonl event trace" --spec gcc $FAST --dtm sedation \
    --trace "$TMP/events.jsonl" --trace-filter dtm,thermal,episode
[ -f "$TMP/events.jsonl" ] || fail "jsonl trace file missing"

expect_ok "chrome event trace" --spec gcc $FAST --dtm sedation \
    --trace "$TMP/events.json"
grep -q '"traceEvents"' "$TMP/events.json" ||
    fail "chrome trace lacks traceEvents"

expect_ok "json with metrics" --spec gcc $FAST --json "$TMP/run.json"
grep -q '"metrics"' "$TMP/run.json" || fail "json lacks metrics object"
grep -q '"hs_run.sim_cycles"' "$TMP/run.json" ||
    fail "json lacks hs_run.sim_cycles counter"

expect_ok "each matrix" --spec gcc --spec mcf $FAST --each \
    --csv "$TMP/each.csv"
[ -s "$TMP/each.csv" ] || fail "csv output missing"

# Multi-core topology: a 2-core split run must report per-core tables
# on stdout, tag threads and events with their core in the JSON/JSONL
# artifacts, and stay deterministic. This one runs a longer quantum
# (250 K cycles) than $FAST: the attacker tile needs time to produce
# core-1 trace events on a properly-sized package.
expect_ok "two-core split run" --spec gcc --variant 2 --scale 2000 \
    --cores 2 --place 0,1 --json "$TMP/mc.json" \
    --trace "$TMP/mc.jsonl"
grep -q "core" "$TMP/out" || fail "two-core: no per-core table"
grep -q '"cores"' "$TMP/mc.json" ||
    fail "two-core: json lacks per-core result array"
grep -q '"core": 1' "$TMP/mc.json" ||
    fail "two-core: json threads lack core tags"
grep -q '"core": 1' "$TMP/mc.jsonl" ||
    fail "two-core: jsonl events lack core stamps"

# --each runs each workload alone on the same (multi-core) die.
expect_ok "two-core each matrix" --spec gcc --spec mcf $FAST --each \
    --cores 2 --csv "$TMP/mc_each.csv"
[ -s "$TMP/mc_each.csv" ] || fail "two-core each: csv missing"

# Single-core artifacts must carry none of the multi-core keys.
expect_ok "single-core json" --spec gcc $FAST --json "$TMP/sc.json"
grep -q '"cores"' "$TMP/sc.json" &&
    fail "single-core: json grew a cores array"
grep -q '"core"' "$TMP/sc.json" &&
    fail "single-core: json threads grew core tags"

if [ "$fails" -ne 0 ]; then
    echo "$fails CLI contract check(s) failed" >&2
    exit 1
fi
echo "all CLI contract checks passed"
exit 0
