#!/bin/sh
# Resumable-campaign contract test.
#
# Starts a 4-cell campaign against a fresh store with
# HS_FAULTS=1:store_crash=2 — the coordinator _Exit(9)s immediately
# after publishing its second record, the deterministic stand-in for a
# coordinator killed mid-sweep. The restart, fault-free and with the
# identical command line, must report the campaign as resuming, serve
# the two stored cells from disk, simulate exactly the two missing
# ones, and emit artifacts matching an uninterrupted run (host fields
# stripped; the disk-served cells re-emit the first run's host
# numbers).
#
# usage: hs_resume_test.sh <path-to-hs_run>

set -u

BIN=$1
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

MATRIX="--spec gcc --spec mcf --spec mesa --spec vpr --each \
        --scale 20000"
STORE="$TMP/store"
fails=0

fail()
{
    echo "FAIL: $1" >&2
    fails=$((fails + 1))
}

norm_csv()
{
    sed 's/,[^,]*,[^,]*$//' "$1"
}

norm_json()
{
    python3 - "$1" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for run in doc["runs"]:
    run["result"].pop("host_seconds", None)
    run["result"].pop("sim_cycles_per_host_sec", None)
doc.pop("metrics", None)
print(json.dumps(doc, sort_keys=True))
EOF
}

# --- uninterrupted reference -------------------------------------------

# shellcheck disable=SC2086
"$BIN" $MATRIX --jobs 1 --json "$TMP/ref.json" --csv "$TMP/ref.csv" \
    >"$TMP/ref.out" 2>"$TMP/ref.err" ||
    fail "reference run: non-zero exit"

# --- interrupted campaign ----------------------------------------------

# shellcheck disable=SC2086
HS_FAULTS="1:store_crash=2" "$BIN" $MATRIX --jobs 1 --store "$STORE" \
    --json "$TMP/int.json" --csv "$TMP/int.csv" \
    >"$TMP/int.out" 2>"$TMP/int.err"
rc=$?
[ "$rc" -eq 9 ] || fail "interrupted run: expected exit 9, got $rc"

records=$(find "$STORE" -name '*.hsr' | wc -l)
[ "$records" -eq 2 ] ||
    fail "interrupted run: expected 2 stored records, found $records"
[ -f "$STORE/manifest.hsm" ] ||
    fail "interrupted run: no campaign manifest written"

# --- restart with the identical command line ---------------------------

# shellcheck disable=SC2086
"$BIN" $MATRIX --jobs 1 --store "$STORE" \
    --json "$TMP/res.json" --csv "$TMP/res.csv" \
    >"$TMP/res.out" 2>"$TMP/res.err" ||
    fail "resumed run: non-zero exit"

grep -q "\[campaign\] resuming: 2 of 4 cells already stored" \
    "$TMP/res.err" ||
    fail "resumed run: no resume report on stderr"
grep -Eq "store .*: 2 disk hit\(s\), 2 write\(s\), 0 corrupt" \
    "$TMP/res.out" ||
    fail "resumed run: expected exactly 2 disk hits and 2 writes"

norm_csv "$TMP/ref.csv" >"$TMP/ref.csv.norm"
norm_csv "$TMP/res.csv" >"$TMP/res.csv.norm"
cmp -s "$TMP/ref.csv.norm" "$TMP/res.csv.norm" ||
    fail "resumed run: csv differs from the uninterrupted run"
norm_json "$TMP/ref.json" >"$TMP/ref.json.norm" ||
    fail "reference: unparsable json"
norm_json "$TMP/res.json" >"$TMP/res.json.norm" ||
    fail "resumed run: unparsable json"
cmp -s "$TMP/ref.json.norm" "$TMP/res.json.norm" ||
    fail "resumed run: json differs from the uninterrupted run"

records=$(find "$STORE" -name '*.hsr' | wc -l)
[ "$records" -eq 4 ] ||
    fail "resumed run: expected 4 stored records, found $records"

# --- a second restart is a pure warm pass ------------------------------

# shellcheck disable=SC2086
"$BIN" $MATRIX --jobs 1 --store "$STORE" \
    --json "$TMP/warm.json" --csv "$TMP/warm.csv" \
    >"$TMP/warm.out" 2>"$TMP/warm.err" ||
    fail "warm restart: non-zero exit"
grep -q "\[campaign\] resuming: 4 of 4 cells already stored" \
    "$TMP/warm.err" ||
    fail "warm restart: no resume report"
grep -Eq "store .*: 4 disk hit\(s\), 0 write\(s\)" "$TMP/warm.out" ||
    fail "warm restart: cells simulated on a complete store"

if [ "$fails" -ne 0 ]; then
    echo "$fails resume contract check(s) failed" >&2
    for f in "$TMP"/*.err "$TMP"/*.out; do
        echo "--- $f"
        cat "$f"
    done >&2
    exit 1
fi
echo "all resume contract checks passed"
exit 0
