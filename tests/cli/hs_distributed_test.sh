#!/bin/sh
# End-to-end contract test for the distributed experiment service.
#
# Runs the same fig5-style --each matrix four ways — solo --jobs 1,
# local --jobs 4, coordinator + 2 localhost workers, and coordinator +
# workers sharing a --store — and requires the JSON runs array and the
# CSV table to be identical across all of them once the host-throughput
# fields (wall-clock measurements, inherently machine-dependent) are
# stripped. Then reruns the matrix against the warm store and requires
# every cell to be a disk hit: zero simulation, byte-identical CSV
# including the cold run's host columns.
#
# usage: hs_distributed_test.sh <path-to-hs_run>

set -u

BIN=$1
TMP=$(mktemp -d)
W1=
W2=
cleanup()
{
    [ -n "$W1" ] && kill "$W1" 2>/dev/null
    [ -n "$W2" ] && kill "$W2" 2>/dev/null
    rm -rf "$TMP"
}
trap cleanup EXIT

# A large time scale keeps every simulated quantum tiny (25 K cycles).
MATRIX="--spec gcc --spec mcf --spec mesa --spec vpr --each \
        --scale 20000"
STORE="$TMP/store"
fails=0

fail()
{
    echo "FAIL: $1" >&2
    fails=$((fails + 1))
}

# Strip the machine-dependent fields before comparing artifacts from
# different execution configurations: the trailing host_seconds and
# sim_cycles_per_host_sec CSV columns, the same keys in each JSON run,
# and every "host" metric.
norm_csv()
{
    sed 's/,[^,]*,[^,]*$//' "$1"
}

norm_json()
{
    python3 - "$1" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for run in doc["runs"]:
    run["result"].pop("host_seconds", None)
    run["result"].pop("sim_cycles_per_host_sec", None)
doc.pop("metrics", None)
print(json.dumps(doc, sort_keys=True))
EOF
}

# wait_port PORT: block until a worker is accepting connections.
wait_port()
{
    python3 - "$1" <<'EOF'
import socket, sys, time
port = int(sys.argv[1])
for _ in range(200):
    try:
        socket.create_connection(("127.0.0.1", port), 1).close()
        sys.exit(0)
    except OSError:
        time.sleep(0.05)
sys.exit(1)
EOF
}

# run DESC OUT-PREFIX ARGS... : run the matrix, keep json/csv/stderr.
run()
{
    desc=$1
    out=$2
    shift 2
    # shellcheck disable=SC2086
    "$BIN" $MATRIX --json "$TMP/$out.json" --csv "$TMP/$out.csv" "$@" \
        >"$TMP/$out.out" 2>"$TMP/$out.err"
    [ $? -eq 0 ] || fail "$desc: non-zero exit"
    norm_csv "$TMP/$out.csv" >"$TMP/$out.csv.norm"
    norm_json "$TMP/$out.json" >"$TMP/$out.json.norm" ||
        fail "$desc: unparsable json"
}

# same DESC A B: normalised artifacts of runs A and B must match.
same()
{
    cmp -s "$TMP/$2.csv.norm" "$TMP/$3.csv.norm" ||
        fail "$1: csv differs"
    cmp -s "$TMP/$2.json.norm" "$TMP/$3.json.norm" ||
        fail "$1: json runs differ"
}

# --- reference runs: solo and local-parallel ---------------------------

run "solo" solo --jobs 1
run "jobs4" jobs4 --jobs 4
same "jobs 4 vs solo" solo jobs4

# --- coordinator + 2 localhost workers ---------------------------------

# Ephemeral-ish ports derived from the PID to dodge parallel ctest runs.
P1=$((20000 + $$ % 20000))
P2=$((P1 + 1))
"$BIN" --serve "$P1" >"$TMP/w1.log" 2>&1 &
W1=$!
"$BIN" --serve "$P2" >"$TMP/w2.log" 2>&1 &
W2=$!
wait_port "$P1" || fail "worker 1 never came up"
wait_port "$P2" || fail "worker 2 never came up"

run "distributed" dist --jobs 1 --workers "127.0.0.1:$P1,127.0.0.1:$P2"
same "distributed vs solo" solo dist
grep -q "remote: 2/2 worker(s) connected" "$TMP/dist.out" ||
    fail "distributed: not all workers connected"

# --- distributed with a shared store (cold) ----------------------------

run "distributed+store" dist_store --jobs 1 \
    --workers "127.0.0.1:$P1,127.0.0.1:$P2" --store "$STORE"
same "distributed+store vs solo" solo dist_store
grep -q "0 corrupt" "$TMP/dist_store.out" ||
    fail "distributed+store: corrupt records on a fresh store"

# --- warm rerun: every cell from disk, nothing simulated ---------------

run "warm store" warm --jobs 4 --store "$STORE" --progress
same "warm vs solo" solo warm
grep -q "4 disk hit(s)" "$TMP/warm.out" ||
    fail "warm: expected 4 disk hits"
grep -Eq "store .*: 4 disk hit\(s\), 0 write\(s\)" "$TMP/warm.out" ||
    fail "warm: store summary reports simulation"
grep -q "4 disk hit" "$TMP/warm.err" ||
    fail "warm: --progress does not report disk hits"
# Disk-served cells re-emit the cold run's host columns, so the warm
# CSV must be byte-identical to its own source run without stripping.
cmp -s "$TMP/dist_store.csv" "$TMP/warm.csv" ||
    fail "warm: csv not byte-identical to the run that filled the store"

kill "$W1" "$W2" 2>/dev/null
wait "$W1" "$W2" 2>/dev/null
W1=
W2=

if [ "$fails" -ne 0 ]; then
    echo "$fails distributed contract check(s) failed" >&2
    for f in "$TMP"/*.err "$TMP"/*.log; do
        echo "--- $f"
        cat "$f"
    done >&2
    exit 1
fi
echo "all distributed contract checks passed"
exit 0
