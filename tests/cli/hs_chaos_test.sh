#!/bin/sh
# Chaos contract test for the distributed experiment service.
#
# Establishes a fault-free solo baseline, then replays several seeded
# HS_FAULTS schedules against a coordinator with two localhost workers
# and a shared store: the workers crash mid-job, frames truncate,
# handshakes arrive garbled, connects fail or stall, store writes tear,
# lose their rename or flip their checksum, and dispatch lanes stall.
# Every schedule must still produce JSON and CSV artifacts identical to
# the fault-free run (host-throughput fields stripped), and a fault-free
# warm rerun over each surviving store must too — recomputing whatever
# chaos corrupted, serving nothing wrong.
#
# The deterministic seeds make any failure replayable by exporting the
# printed HS_FAULTS value. Set HS_CHAOS_LOG_DIR to keep the per-schedule
# logs (the CI chaos-smoke job uploads them on failure).
#
# usage: hs_chaos_test.sh <path-to-hs_run>

set -u

BIN=$1
TMP=$(mktemp -d)
W1=
W2=
cleanup()
{
    [ -n "$W1" ] && kill "$W1" 2>/dev/null
    [ -n "$W2" ] && kill "$W2" 2>/dev/null
    if [ -n "${HS_CHAOS_LOG_DIR:-}" ]; then
        mkdir -p "$HS_CHAOS_LOG_DIR"
        cp "$TMP"/*.err "$TMP"/*.log "$TMP"/*.jsonl \
            "$HS_CHAOS_LOG_DIR"/ 2>/dev/null
    fi
    rm -rf "$TMP"
}
trap cleanup EXIT

MATRIX="--spec gcc --spec mcf --spec mesa --spec vpr --each \
        --scale 20000"
fails=0

fail()
{
    echo "FAIL: $1" >&2
    fails=$((fails + 1))
}

# Strip the machine-dependent fields (host_seconds and
# sim_cycles_per_host_sec) before comparing artifacts.
norm_csv()
{
    sed 's/,[^,]*,[^,]*$//' "$1"
}

norm_json()
{
    python3 - "$1" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for run in doc["runs"]:
    run["result"].pop("host_seconds", None)
    run["result"].pop("sim_cycles_per_host_sec", None)
doc.pop("metrics", None)
print(json.dumps(doc, sort_keys=True))
EOF
}

wait_port()
{
    python3 - "$1" <<'EOF'
import socket, sys, time
port = int(sys.argv[1])
for _ in range(200):
    try:
        socket.create_connection(("127.0.0.1", port), 1).close()
        sys.exit(0)
    except OSError:
        time.sleep(0.05)
sys.exit(1)
EOF
}

# run DESC OUT-PREFIX ARGS... : run the matrix, keep json/csv/stderr.
run()
{
    desc=$1
    out=$2
    shift 2
    # shellcheck disable=SC2086
    "$BIN" $MATRIX --json "$TMP/$out.json" --csv "$TMP/$out.csv" "$@" \
        >"$TMP/$out.out" 2>"$TMP/$out.err"
    [ $? -eq 0 ] || fail "$desc: non-zero exit"
    norm_csv "$TMP/$out.csv" >"$TMP/$out.csv.norm"
    norm_json "$TMP/$out.json" >"$TMP/$out.json.norm" ||
        fail "$desc: unparsable json"
}

same()
{
    cmp -s "$TMP/$2.csv.norm" "$TMP/$3.csv.norm" ||
        fail "$1: csv differs"
    cmp -s "$TMP/$2.json.norm" "$TMP/$3.json.norm" ||
        fail "$1: json runs differ"
}

# --- fault-free baseline -----------------------------------------------

run "baseline" solo --jobs 1

# --- seeded chaos schedules --------------------------------------------

P1=$((22000 + $$ % 18000))
P2=$((P1 + 1))

# Workers crash mid-job and drop frames; the coordinator additionally
# fights failed/stalled connects, garbled handshakes, torn/unpublished/
# corrupted store writes and stalled dispatch lanes.
WORKER_FAULTS="worker_crash@0.25,recv_mid_eof@0.15"
COORD_FAULTS="recv_mid_eof@0.2,connect_fail@0.2,connect_delay@0.4,\
handshake_garbage@0.2,store_torn_write@0.25,store_rename_fail@0.25,\
store_checksum_flip@0.25,dispatch_delay@0.4"

SEEDS="11 23 37 58 71"
for seed in $SEEDS; do
    STORE="$TMP/store_$seed"
    rm -rf "$STORE"

    HS_FAULTS="$seed:$WORKER_FAULTS" \
        HS_LOG_JSON="$TMP/w1_$seed.jsonl" "$BIN" --serve "$P1" \
        >"$TMP/w1_$seed.log" 2>&1 &
    W1=$!
    HS_FAULTS="$seed:$WORKER_FAULTS" \
        HS_LOG_JSON="$TMP/w2_$seed.jsonl" "$BIN" --serve "$P2" \
        >"$TMP/w2_$seed.log" 2>&1 &
    W2=$!
    wait_port "$P1" || fail "seed $seed: worker 1 never came up"
    wait_port "$P2" || fail "seed $seed: worker 2 never came up"

    # export/unset (not an inline prefix): an env assignment before a
    # shell *function* call leaks into the calling shell in dash.
    echo "chaos seed $seed: HS_FAULTS=$seed:$COORD_FAULTS"
    export HS_FAULTS="$seed:$COORD_FAULTS"
    export HS_LOG_JSON="$TMP/chaos_$seed.jsonl"
    run "chaos seed $seed" "chaos_$seed" --jobs 2 \
        --workers "127.0.0.1:$P1,127.0.0.1:$P2" --store "$STORE"
    unset HS_FAULTS HS_LOG_JSON
    same "chaos seed $seed vs baseline" solo "chaos_$seed"

    # Fault-free warm rerun over whatever store the chaos run left:
    # disk hits or recomputes, never a wrong artifact.
    run "warm seed $seed" "warm_$seed" --jobs 1 --store "$STORE"
    same "warm seed $seed vs baseline" solo "warm_$seed"

    kill "$W1" "$W2" 2>/dev/null
    wait "$W1" "$W2" 2>/dev/null
    W1=
    W2=
done

# The schedules must actually inject: a silently inert fault layer
# would pass every identity check without testing anything. The
# structured log is the ground truth here — every armed plan and every
# fire lands in the per-process HS_LOG_JSON file as a typed event.
cat "$TMP"/chaos_*.jsonl "$TMP"/w1_*.jsonl "$TMP"/w2_*.jsonl \
    >"$TMP/all_chaos.jsonl" 2>/dev/null
grep -q '"comp":"fault","event":"fire"' "$TMP/all_chaos.jsonl" ||
    fail "no fault ever fired across the chaos schedules"
grep -q '"comp":"fault","event":"armed"' "$TMP/all_chaos.jsonl" ||
    fail "HS_FAULTS never armed"

if [ "$fails" -ne 0 ]; then
    echo "$fails chaos contract check(s) failed" >&2
    for f in "$TMP"/*.err "$TMP"/*.log; do
        echo "--- $f"
        cat "$f"
    done >&2
    exit 1
fi
echo "all chaos contract checks passed"
exit 0
