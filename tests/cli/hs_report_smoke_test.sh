#!/bin/sh
# Smoke test for the hs_report HTML dashboard.
#
# Drives the real pipeline end to end: one tiny traced hs_run produces
# the matrix JSON and JSONL event trace, hs_report renders them, and
# the output must be a well-formed self-contained HTML document with
# the heatmap, temperature, Gantt and IPC sections present. The report
# must also be byte-identical when regenerated from the same inputs
# (no timestamps, no randomness).
#
# usage: hs_report_smoke_test.sh <path-to-hs_run> <path-to-hs_report>

set -u

RUN=$1
REPORT=$2
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

fails=0
fail()
{
    echo "FAIL: $1" >&2
    fails=$((fails + 1))
}

# A large time scale keeps the simulated quantum tiny (25 K cycles);
# sedation DTM produces per-thread spans for the Gantt strip.
"$RUN" --spec gcc --variant 2 --scale 2000 --dtm sedation \
    --json "$TMP/run.json" --trace "$TMP/run.jsonl" \
    >"$TMP/run.out" 2>&1 || fail "hs_run traced run failed"
[ -s "$TMP/run.json" ] || fail "matrix JSON missing"
[ -s "$TMP/run.jsonl" ] || fail "JSONL trace missing"

# A second run records the campaign timeline for the fleet view.
"$RUN" --spec gcc --spec mcf --scale 20000 --each --jobs 2 \
    --events "$TMP/fleet.jsonl" >"$TMP/fleet.out" 2>&1 ||
    fail "hs_run events run failed"
[ -s "$TMP/fleet.jsonl" ] || fail "campaign timeline missing"

# --- argument contract -------------------------------------------------

"$REPORT" >/dev/null 2>"$TMP/err"
[ $? -eq 2 ] || fail "no inputs: expected exit 2"
grep -q "usage:" "$TMP/err" || fail "no inputs: no usage text"

"$REPORT" --frobnicate >/dev/null 2>"$TMP/err"
[ $? -eq 2 ] || fail "unknown option: expected exit 2"

"$REPORT" --json >/dev/null 2>"$TMP/err"
[ $? -eq 2 ] || fail "missing value: expected exit 2"

# --- report generation -------------------------------------------------

"$REPORT" --json "$TMP/run.json" --trace "$TMP/run.jsonl" \
    --out "$TMP/report.html" >"$TMP/report.out" 2>&1 ||
    fail "hs_report failed"
[ -s "$TMP/report.html" ] || fail "report HTML missing"

html="$TMP/report.html"
grep -q "<!DOCTYPE html>" "$html" || fail "missing doctype"
grep -q "</html>" "$html" || fail "unterminated document"
grep -q "floorplan heatmap" "$html" || fail "missing heatmap section"
grep -q "temperature time series" "$html" ||
    fail "missing temperature section"
grep -q "DTM activity gantt" "$html" || fail "missing Gantt section"
grep -q "per-thread IPC bars" "$html" || fail "missing IPC section"
grep -q "Duty cycle" "$html" || fail "missing duty-cycle table"
grep -q "Run-health metrics" "$html" || fail "missing metrics table"
grep -q "IntReg" "$html" || fail "heatmap lacks the IntReg hot spot"
grep -qi "emergency 358" "$html" || fail "missing threshold label"

# Self-contained: no external scripts, stylesheets or images.
grep -Eq "src=\"http|href=\"http|<script" "$html" &&
    fail "report references external assets"

# Deterministic bytes for identical inputs.
"$REPORT" --json "$TMP/run.json" --trace "$TMP/run.jsonl" \
    --out "$TMP/report2.html" >/dev/null 2>&1 ||
    fail "second hs_report run failed"
cmp -s "$html" "$TMP/report2.html" ||
    fail "report not byte-identical across regenerations"

# stdout mode writes the document, not the "wrote" banner.
"$REPORT" --json "$TMP/run.json" --out - >"$TMP/stdout.html" 2>&1 ||
    fail "stdout mode failed"
grep -q "<!DOCTYPE html>" "$TMP/stdout.html" ||
    fail "stdout mode did not emit HTML"

# --- fleet view --------------------------------------------------------

"$REPORT" --json "$TMP/run.json" --events "$TMP/fleet.jsonl" \
    --out "$TMP/fleet.html" >/dev/null 2>&1 ||
    fail "hs_report fleet run failed"
grep -q "Fleet timeline" "$TMP/fleet.html" ||
    fail "missing fleet timeline section"
grep -q "Lane utilization" "$TMP/fleet.html" ||
    fail "missing lane utilization table"
grep -q "Cell sources" "$TMP/fleet.html" ||
    fail "missing cell-source breakdown"

# Events alone are enough to render a report.
"$REPORT" --events "$TMP/fleet.jsonl" --out - >"$TMP/fleet2.html" 2>&1 ||
    fail "events-only report failed"
grep -q "Fleet timeline" "$TMP/fleet2.html" ||
    fail "events-only report lacks the fleet timeline"

# Fleet reports are deterministic too.
"$REPORT" --json "$TMP/run.json" --events "$TMP/fleet.jsonl" \
    --out "$TMP/fleet3.html" >/dev/null 2>&1 ||
    fail "second fleet report run failed"
cmp -s "$TMP/fleet.html" "$TMP/fleet3.html" ||
    fail "fleet report not byte-identical across regenerations"

if [ "$fails" -ne 0 ]; then
    echo "$fails report smoke check(s) failed" >&2
    exit 1
fi
echo "all report smoke checks passed"
exit 0
