#!/bin/sh
# Contract test for `hs_store prune`, the store GC subcommand.
#
# Fills a store through hs_run, then exercises retention (--older-than,
# via touch-backdated mtimes), --dry-run accounting, --sweep-corrupt,
# the refusal to delete anything that is not a visible *.hsr record
# (the campaign manifest in particular), strict command-line parsing,
# and finally that a pruned store still serves a correct campaign —
# pruned cells recompute, surviving cells serve from disk.
#
# usage: hs_store_cli_test.sh <path-to-hs_store> <path-to-hs_run>

set -u

STORE_BIN=$1
RUN_BIN=$2
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

MATRIX="--spec gcc --spec mcf --spec mesa --spec vpr --each \
        --scale 20000"
STORE="$TMP/store"
fails=0

fail()
{
    echo "FAIL: $1" >&2
    fails=$((fails + 1))
}

norm_csv()
{
    sed 's/,[^,]*,[^,]*$//' "$1"
}

records()
{
    find "$STORE" -name '*.hsr' ! -name '.*' | wc -l
}

# --- populate the store ------------------------------------------------

# shellcheck disable=SC2086
"$RUN_BIN" $MATRIX --jobs 1 --store "$STORE" --csv "$TMP/ref.csv" \
    >/dev/null 2>&1 || fail "populate: hs_run failed"
[ "$(records)" -eq 4 ] || fail "populate: expected 4 records"
[ -f "$STORE/manifest.hsm" ] || fail "populate: no manifest"

# --- strict command line -----------------------------------------------

"$STORE_BIN" >/dev/null 2>&1 && fail "no args: expected exit 2"
"$STORE_BIN" frobnicate >/dev/null 2>&1 &&
    fail "unknown subcommand: expected exit 2"
"$STORE_BIN" prune >/dev/null 2>&1 && fail "no dir: expected exit 2"
"$STORE_BIN" prune "$STORE" >/dev/null 2>&1 &&
    fail "no rule: expected exit 2 (prune that can delete nothing)"
"$STORE_BIN" prune "$STORE" --older-than >/dev/null 2>&1 &&
    fail "missing days: expected exit 2"
"$STORE_BIN" prune "$STORE" --older-than x >/dev/null 2>&1 &&
    fail "bad days: expected exit 2"
"$STORE_BIN" prune "$STORE" --older-than -1 >/dev/null 2>&1 &&
    fail "negative days: expected exit 2"
"$STORE_BIN" prune "$STORE" --bogus >/dev/null 2>&1 &&
    fail "unknown option: expected exit 2"
"$STORE_BIN" prune "$TMP/nonexistent" --older-than 1 >/dev/null 2>&1 &&
    fail "missing store: expected failure"

# --- retention with --dry-run then for real ----------------------------

# Backdate two records past a 5-day retention window.
aged=0
for f in "$STORE"/*/*.hsr; do
    [ "$aged" -ge 2 ] && break
    touch -d '10 days ago' "$f" || fail "cannot backdate $f"
    aged=$((aged + 1))
done

"$STORE_BIN" prune "$STORE" --older-than 5 --dry-run \
    >"$TMP/dry.out" 2>&1 || fail "dry run: non-zero exit"
grep -q "2 would be pruned" "$TMP/dry.out" ||
    fail "dry run: expected '2 would be pruned'"
[ "$(records)" -eq 4 ] || fail "dry run deleted records"

"$STORE_BIN" prune "$STORE" --older-than 5 >"$TMP/prune.out" 2>&1 ||
    fail "prune: non-zero exit"
grep -q "2 pruned" "$TMP/prune.out" || fail "prune: expected '2 pruned'"
[ "$(records)" -eq 2 ] || fail "prune: expected 2 survivors"

# --- corrupt sweep and non-record refusal ------------------------------

first=$(find "$STORE" -name '*.hsr' ! -name '.*' | head -1)
printf 'garbage' >"$first"
echo "user notes" >"$STORE/README"
bucket=$(dirname "$first")
echo "torn temp" >"$bucket/.tmp.999.dead.hsr"

"$STORE_BIN" prune "$STORE" --sweep-corrupt >"$TMP/sweep.out" 2>&1 ||
    fail "sweep: non-zero exit"
grep -q "1 pruned (1 corrupt" "$TMP/sweep.out" ||
    fail "sweep: expected 1 corrupt record pruned"
[ "$(records)" -eq 1 ] || fail "sweep: expected 1 survivor"
[ -f "$STORE/manifest.hsm" ] || fail "sweep deleted the manifest"
[ -f "$STORE/README" ] || fail "sweep deleted a user file"
[ -f "$bucket/.tmp.999.dead.hsr" ] || fail "sweep deleted a temp file"

# --- a pruned store still serves a correct campaign --------------------

# shellcheck disable=SC2086
"$RUN_BIN" $MATRIX --jobs 1 --store "$STORE" --csv "$TMP/after.csv" \
    >"$TMP/after.out" 2>/dev/null ||
    fail "post-prune campaign: non-zero exit"
grep -Eq "store .*: 1 disk hit\(s\), 3 write\(s\), 0 corrupt" \
    "$TMP/after.out" ||
    fail "post-prune campaign: expected 1 disk hit and 3 recomputes"
norm_csv "$TMP/ref.csv" >"$TMP/ref.csv.norm"
norm_csv "$TMP/after.csv" >"$TMP/after.csv.norm"
cmp -s "$TMP/ref.csv.norm" "$TMP/after.csv.norm" ||
    fail "post-prune campaign: csv differs from the original run"
[ "$(records)" -eq 4 ] || fail "post-prune campaign: store not refilled"

if [ "$fails" -ne 0 ]; then
    echo "$fails store GC contract check(s) failed" >&2
    cat "$TMP"/*.out >&2 2>/dev/null
    exit 1
fi
echo "all store GC contract checks passed"
exit 0
