/**
 * @file
 * Campaign-manifest tests: save/load round trips, the corruption
 * matrix (every damaged manifest degrades to a fresh campaign, never
 * a crash), and prepareCampaign()'s resume accounting — the persisted
 * identity that lets an interrupted coordinator restart and run only
 * the cells its store is missing.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "sim/disk_store.hh"
#include "sim/manifest.hh"
#include "sim/result_store.hh"
#include "sim/run_spec.hh"
#include "sim/runner.hh"

namespace {

using namespace hs;

ExperimentOptions
fastOpts()
{
    ExperimentOptions opts;
    opts.timeScale = 20000.0;
    return opts;
}

std::vector<RunSpec>
smallMatrix()
{
    ExperimentOptions opts = fastOpts();
    std::vector<RunSpec> specs;
    specs.push_back(soloSpec("gcc", opts));
    specs.push_back(soloSpec("mesa", opts));
    specs.push_back(
        soloSpec("gcc", opts).withDtm(DtmMode::SelectiveSedation));
    return specs;
}

std::string
freshDir(const std::string &tag)
{
    std::string dir = "hs_manifest_test_" + tag + "_" +
                      std::to_string(::getpid());
    std::string cmd = "rm -rf " + dir;
    if (std::system(cmd.c_str()) != 0)
        ADD_FAILURE() << "cannot clear " << dir;
    std::string mk = "mkdir -p " + dir;
    if (std::system(mk.c_str()) != 0)
        ADD_FAILURE() << "cannot create " << dir;
    return dir;
}

std::vector<char>
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
}

void
spit(const std::string &path, const std::vector<char> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

TEST(Manifest, MatrixHashPinsMembershipAndOrder)
{
    std::vector<RunSpec> specs = smallMatrix();
    uint64_t h = matrixHash(specs);
    EXPECT_EQ(h, matrixHash(specs)); // stable

    std::vector<RunSpec> reordered = {specs[1], specs[0], specs[2]};
    EXPECT_NE(h, matrixHash(reordered));

    std::vector<RunSpec> shorter = {specs[0], specs[1]};
    EXPECT_NE(h, matrixHash(shorter));
}

TEST(Manifest, SaveThenLoadRoundTrips)
{
    std::string dir = freshDir("roundtrip");
    std::vector<RunSpec> specs = smallMatrix();
    CampaignManifest m = makeManifest(specs);
    ASSERT_EQ(m.cells.size(), specs.size());

    std::string path = manifestPath(dir);
    ASSERT_TRUE(saveManifest(path, m));

    CampaignManifest back;
    ASSERT_EQ(loadManifest(path, back), ManifestStatus::Ok);
    EXPECT_EQ(back.matrixHash, m.matrixHash);
    EXPECT_EQ(back.cells, m.cells);
}

TEST(Manifest, EmptyMatrixRoundTrips)
{
    std::string dir = freshDir("empty");
    CampaignManifest m = makeManifest({});
    std::string path = manifestPath(dir);
    ASSERT_TRUE(saveManifest(path, m));
    CampaignManifest back;
    ASSERT_EQ(loadManifest(path, back), ManifestStatus::Ok);
    EXPECT_TRUE(back.cells.empty());
}

TEST(Manifest, MissingFileIsNone)
{
    CampaignManifest out;
    EXPECT_EQ(loadManifest("hs_manifest_no_such_file.hsm", out),
              ManifestStatus::None);
}

/** Every mutation of a valid manifest must load as Corrupt. */
class ManifestCorruption : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = freshDir("corrupt");
        path_ = manifestPath(dir_);
        ASSERT_TRUE(saveManifest(path_, makeManifest(smallMatrix())));
        bytes_ = slurp(path_);
        ASSERT_GT(bytes_.size(), 24u);
    }

    void
    expectCorrupt()
    {
        CampaignManifest out;
        EXPECT_EQ(loadManifest(path_, out), ManifestStatus::Corrupt);
    }

    std::string dir_, path_;
    std::vector<char> bytes_;
};

TEST_F(ManifestCorruption, TruncatedHeader)
{
    spit(path_, std::vector<char>(bytes_.begin(), bytes_.begin() + 9));
    expectCorrupt();
}

TEST_F(ManifestCorruption, TruncatedCellList)
{
    spit(path_, std::vector<char>(bytes_.begin(),
                                  bytes_.end() - 12));
    expectCorrupt();
}

TEST_F(ManifestCorruption, BadMagic)
{
    bytes_[0] = 'X';
    spit(path_, bytes_);
    expectCorrupt();
}

TEST_F(ManifestCorruption, WrongVersion)
{
    bytes_[4] = 0x7f;
    spit(path_, bytes_);
    expectCorrupt();
}

TEST_F(ManifestCorruption, FlippedCellHash)
{
    // First cell hash sits right after the 24-byte header; flipping it
    // breaks the checksum (and the matrix hash).
    bytes_[24] = static_cast<char>(bytes_[24] ^ 0x01);
    spit(path_, bytes_);
    expectCorrupt();
}

TEST_F(ManifestCorruption, TrailingBytes)
{
    bytes_.push_back(0x00);
    spit(path_, bytes_);
    expectCorrupt();
}

TEST(Campaign, FreshStoreStartsColdThenResumes)
{
    std::string dir = freshDir("resume");
    std::vector<RunSpec> specs = smallMatrix();
    DiskResultStore store(dir);

    CampaignResume first = prepareCampaign(store, specs);
    EXPECT_FALSE(first.resumed);
    EXPECT_EQ(first.totalCells, specs.size());
    EXPECT_EQ(first.storedCells, 0u);

    // Two cells finish before the "crash".
    store.store(specs[0], executeRunSpec(specs[0]));
    store.store(specs[1], executeRunSpec(specs[1]));

    CampaignResume second = prepareCampaign(store, specs);
    EXPECT_TRUE(second.resumed);
    EXPECT_EQ(second.storedCells, 2u);
    EXPECT_EQ(second.totalCells, specs.size());
}

TEST(Campaign, DifferentMatrixReplacesTheManifest)
{
    std::string dir = freshDir("replace");
    std::vector<RunSpec> specs = smallMatrix();
    DiskResultStore store(dir);
    prepareCampaign(store, specs);

    std::vector<RunSpec> other = {specs[0]};
    CampaignResume res = prepareCampaign(store, other);
    EXPECT_FALSE(res.resumed); // different campaign, not a resume

    // The manifest now describes the new campaign.
    CampaignManifest m;
    ASSERT_EQ(loadManifest(manifestPath(dir), m), ManifestStatus::Ok);
    EXPECT_EQ(m.matrixHash, matrixHash(other));
}

TEST(Campaign, CorruptManifestIsReplacedNotFatal)
{
    std::string dir = freshDir("heal");
    std::vector<RunSpec> specs = smallMatrix();
    DiskResultStore store(dir);
    prepareCampaign(store, specs);
    spit(manifestPath(dir), {'j', 'u', 'n', 'k'});

    CampaignResume res = prepareCampaign(store, specs);
    EXPECT_FALSE(res.resumed);

    CampaignManifest m;
    ASSERT_EQ(loadManifest(manifestPath(dir), m), ManifestStatus::Ok);
    EXPECT_EQ(m.matrixHash, matrixHash(specs));
}

TEST(Campaign, ResumeRunsOnlyTheMissingCells)
{
    // The end-to-end resume contract, in-process: a campaign that
    // stored two of three cells restarts, simulates exactly one cell,
    // and its results match an uninterrupted run bit for bit.
    std::string dir = freshDir("e2e");
    std::vector<RunSpec> specs = smallMatrix();

    std::vector<RunResult> uninterrupted;
    for (const RunSpec &spec : specs)
        uninterrupted.push_back(executeRunSpec(spec));

    {
        DiskResultStore store(dir);
        prepareCampaign(store, specs);
        store.store(specs[0], uninterrupted[0]);
        store.store(specs[1], uninterrupted[1]);
    }

    DiskResultStore store(dir);
    CampaignResume res = prepareCampaign(store, specs);
    EXPECT_TRUE(res.resumed);
    EXPECT_EQ(res.storedCells, 2u);

    ResultStore mem;
    mem.attachDisk(&store);
    ParallelRunner runner(1, &mem);
    size_t simulated = 0, diskHits = 0;
    runner.setCellObserver([&](const CellEvent &ev) {
        if (ev.kind == CellEvent::Kind::Finished ||
            ev.kind == CellEvent::Kind::RemoteFinished)
            ++simulated;
        if (ev.kind == CellEvent::Kind::DiskHit)
            ++diskHits;
    });
    std::vector<RunResult> resumed = runner.run(specs);

    EXPECT_EQ(simulated, 1u);
    EXPECT_EQ(diskHits, 2u);
    ASSERT_EQ(resumed.size(), uninterrupted.size());
    for (size_t i = 0; i < resumed.size(); ++i)
        EXPECT_TRUE(resumed[i] == uninterrupted[i]) << "cell " << i;
}

} // namespace
