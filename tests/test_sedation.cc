/** @file Unit tests for the selective-sedation state machine
 *  (Section 3.2.2), driven through a fake DtmControl. */

#include <gtest/gtest.h>

#include "core/sedation.hh"

namespace hs {
namespace {

class FakeControl : public DtmControl
{
  public:
    explicit FakeControl(int threads) : threads_(threads) {}

    void stallPipeline(bool s) override { stalled = s; }
    bool pipelineStalled() const override { return stalled; }
    void
    sedateThread(ThreadId tid, bool s) override
    {
        sedated[static_cast<size_t>(tid)] = s;
    }
    void throttlePipeline(int k) override { throttle = k; }
    int numThreads() const override { return threads_; }
    bool
    threadActive(ThreadId tid) const override
    {
        return active[static_cast<size_t>(tid)];
    }

    bool stalled = false;
    int throttle = 1;
    std::array<bool, 8> sedated{};
    std::array<bool, 8> active{true, true, true, true,
                               true, true, true, true};

  private:
    int threads_;
};

std::vector<Kelvin>
oneHot(Block b, Kelvin hot, Kelvin rest = 350.0)
{
    std::vector<Kelvin> t(static_cast<size_t>(numBlocks), rest);
    t[static_cast<size_t>(blockIndex(b))] = hot;
    return t;
}

/** Feed the monitor so thread @p hot_thread looks like the hammerer. */
void
primeMonitor(SelectiveSedation &policy, ActivityCounters &ac,
             ThreadId hot_thread, int windows = 400)
{
    for (int i = 0; i < windows; ++i) {
        ac.record(0, Block::IntReg, hot_thread == 0 ? 12000 : 4000);
        ac.record(1, Block::IntReg, hot_thread == 1 ? 12000 : 4000);
        policy.atMonitorSample(static_cast<Cycles>(i * 1000), ac);
    }
}

SedationParams
fastParams()
{
    SedationParams p;
    p.recheckCycles = 100000;
    p.ewmaShift = 7;
    return p;
}

TEST(Sedation, SedatesHighestUsageThreadAtUpperThreshold)
{
    SelectiveSedation policy(2, fastParams());
    FakeControl ctl(2);
    ActivityCounters ac(2);
    primeMonitor(policy, ac, 1);

    // Below the threshold: nothing happens.
    policy.atSensorSample(1000, oneHot(Block::IntReg, 355.5), ctl);
    EXPECT_FALSE(ctl.sedated[0]);
    EXPECT_FALSE(ctl.sedated[1]);

    // Upper threshold crossed: the hammering thread is sedated.
    policy.atSensorSample(2000, oneHot(Block::IntReg, 356.2), ctl);
    EXPECT_FALSE(ctl.sedated[0]);
    EXPECT_TRUE(ctl.sedated[1]);
    ASSERT_EQ(policy.events().size(), 1u);
    EXPECT_EQ(policy.events()[0].thread, 1);
    EXPECT_EQ(policy.events()[0].resource, Block::IntReg);
}

TEST(Sedation, ReleasesAtLowerThreshold)
{
    SelectiveSedation policy(2, fastParams());
    FakeControl ctl(2);
    ActivityCounters ac(2);
    primeMonitor(policy, ac, 1);
    policy.atSensorSample(1000, oneHot(Block::IntReg, 356.5), ctl);
    ASSERT_TRUE(ctl.sedated[1]);
    // Still warm: stays sedated.
    policy.atSensorSample(2000, oneHot(Block::IntReg, 355.4), ctl);
    EXPECT_TRUE(ctl.sedated[1]);
    // Cooled to the lower threshold: released.
    policy.atSensorSample(3000, oneHot(Block::IntReg, 354.9), ctl);
    EXPECT_FALSE(ctl.sedated[1]);
    EXPECT_FALSE(policy.isSedated(1));
}

TEST(Sedation, NeverSedatesTheLastThread)
{
    // Section 3.2.2: the last un-sedated thread cannot hurt anyone and
    // must be left to the stop-and-go safety net.
    SelectiveSedation policy(2, fastParams());
    FakeControl ctl(2);
    ctl.active = {true, false, false, false, false, false, false, false};
    ActivityCounters ac(2);
    primeMonitor(policy, ac, 0);
    policy.atSensorSample(1000, oneHot(Block::IntReg, 357.0), ctl);
    EXPECT_FALSE(ctl.sedated[0]);
    EXPECT_TRUE(policy.events().empty());
}

TEST(Sedation, RecheckSedatesSecondAttacker)
{
    // Two attackers: after twice the cooling time with no relief, the
    // next-highest thread is sedated too (3-context machine so the
    // last-thread exception does not apply).
    SedationParams params = fastParams();
    SelectiveSedation policy(3, params);
    FakeControl ctl(3);
    ActivityCounters ac(3);
    for (int i = 0; i < 400; ++i) {
        ac.record(0, Block::IntReg, 3000);  // victim
        ac.record(1, Block::IntReg, 12000); // attacker A
        ac.record(2, Block::IntReg, 11000); // attacker B
        policy.atMonitorSample(static_cast<Cycles>(i * 1000), ac);
    }
    policy.atSensorSample(1000, oneHot(Block::IntReg, 356.5), ctl);
    EXPECT_TRUE(ctl.sedated[1]);
    EXPECT_FALSE(ctl.sedated[2]);
    // Before the recheck interval: no new action even though hot.
    policy.atSensorSample(50000, oneHot(Block::IntReg, 357.0), ctl);
    EXPECT_FALSE(ctl.sedated[2]);
    // After the recheck: attacker B is sedated as well.
    policy.atSensorSample(1000 + params.recheckCycles + 1,
                          oneHot(Block::IntReg, 357.0), ctl);
    EXPECT_TRUE(ctl.sedated[2]);
    EXPECT_FALSE(ctl.sedated[0]) << "victim stays un-sedated (last)";
    // Cooling releases both.
    policy.atSensorSample(500000, oneHot(Block::IntReg, 354.5), ctl);
    EXPECT_FALSE(ctl.sedated[1]);
    EXPECT_FALSE(ctl.sedated[2]);
}

TEST(Sedation, OsReportCallbackFires)
{
    SelectiveSedation policy(2, fastParams());
    FakeControl ctl(2);
    ActivityCounters ac(2);
    primeMonitor(policy, ac, 1);
    std::vector<SedationEvent> reported;
    policy.setOsReport([&](const SedationEvent &e) {
        reported.push_back(e);
    });
    policy.atSensorSample(7777, oneHot(Block::IntReg, 356.5), ctl);
    ASSERT_EQ(reported.size(), 1u);
    EXPECT_EQ(reported[0].cycle, 7777u);
    EXPECT_EQ(reported[0].thread, 1);
    EXPECT_GT(reported[0].weightedAvg, 8000.0);
}

TEST(Sedation, SedatedThreadEwmaFrozen)
{
    SelectiveSedation policy(2, fastParams());
    FakeControl ctl(2);
    ActivityCounters ac(2);
    primeMonitor(policy, ac, 1);
    policy.atSensorSample(1000, oneHot(Block::IntReg, 356.5), ctl);
    ASSERT_TRUE(ctl.sedated[1]);
    double avg = policy.monitor().weightedAvg(1, Block::IntReg);
    // Many idle windows while sedated: the average must not decay.
    for (int i = 0; i < 500; ++i)
        policy.atMonitorSample(static_cast<Cycles>(500000 + i * 1000),
                               ac);
    EXPECT_DOUBLE_EQ(policy.monitor().weightedAvg(1, Block::IntReg),
                     avg);
}

TEST(Sedation, IndependentResourcesTrackSeparately)
{
    // A second resource crossing its threshold sedates based on ITS
    // usage ranking.
    SelectiveSedation policy(2, fastParams());
    FakeControl ctl(2);
    ActivityCounters ac(2);
    for (int i = 0; i < 400; ++i) {
        ac.record(0, Block::FpReg, 9000);   // thread 0 hammers FP regs
        ac.record(1, Block::IntReg, 9000);  // thread 1 hammers int regs
        policy.atMonitorSample(static_cast<Cycles>(i * 1000), ac);
    }
    policy.atSensorSample(1000, oneHot(Block::FpReg, 356.5), ctl);
    EXPECT_TRUE(ctl.sedated[0]);
    EXPECT_FALSE(ctl.sedated[1]);
}

TEST(Sedation, RefcountAcrossResources)
{
    // A thread sedated for two resources stays sedated until both
    // release it.
    SelectiveSedation policy(2, fastParams());
    FakeControl ctl(2);
    ActivityCounters ac(2);
    for (int i = 0; i < 400; ++i) {
        ac.record(1, Block::IntReg, 12000);
        ac.record(1, Block::FpReg, 12000);
        ac.record(0, Block::IntReg, 2000);
        policy.atMonitorSample(static_cast<Cycles>(i * 1000), ac);
    }
    std::vector<Kelvin> temps(static_cast<size_t>(numBlocks), 350.0);
    temps[static_cast<size_t>(blockIndex(Block::IntReg))] = 356.5;
    temps[static_cast<size_t>(blockIndex(Block::FpReg))] = 356.5;
    policy.atSensorSample(1000, temps, ctl);
    EXPECT_TRUE(ctl.sedated[1]);
    // IntReg cools, FpReg stays hot: still sedated.
    temps[static_cast<size_t>(blockIndex(Block::IntReg))] = 354.0;
    policy.atSensorSample(2000, temps, ctl);
    EXPECT_TRUE(ctl.sedated[1]);
    EXPECT_TRUE(policy.isSedated(1));
    // FpReg cools too: released.
    temps[static_cast<size_t>(blockIndex(Block::FpReg))] = 354.0;
    policy.atSensorSample(3000, temps, ctl);
    EXPECT_FALSE(ctl.sedated[1]);
}

TEST(Sedation, UsageThresholdAblationTriggersWithoutHeat)
{
    // The Section 3.2.1 ablation: an absolute usage threshold sedates
    // on usage alone — including a legitimate bursty thread (the
    // false-positive problem the temperature trigger avoids).
    SedationParams params = fastParams();
    params.useUsageThreshold = true;
    params.usageThreshold = 8000.0;
    SelectiveSedation policy(2, params);
    FakeControl ctl(2);
    ActivityCounters ac(2);
    primeMonitor(policy, ac, 1);
    // Temperatures entirely normal, yet the policy fires.
    policy.atSensorSample(1000, oneHot(Block::IntReg, 352.0), ctl);
    EXPECT_TRUE(ctl.sedated[1]);
}

TEST(Sedation, TemperatureTriggerAvoidsColdFalsePositives)
{
    SelectiveSedation policy(2, fastParams());
    FakeControl ctl(2);
    ActivityCounters ac(2);
    primeMonitor(policy, ac, 1); // bursty but resource stays cool
    policy.atSensorSample(1000, oneHot(Block::IntReg, 353.0), ctl);
    EXPECT_FALSE(ctl.sedated[0]);
    EXPECT_FALSE(ctl.sedated[1]);
}

TEST(Sedation, RejectsBadThresholds)
{
    SedationParams params;
    params.upperThreshold = 355.0;
    params.lowerThreshold = 356.0;
    EXPECT_DEATH(SelectiveSedation policy(2, params), "threshold");
}

class SedationThresholdSweep
    : public ::testing::TestWithParam<std::pair<double, double>>
{
};

TEST_P(SedationThresholdSweep, TriggersExactlyAtUpper)
{
    // Robustness across threshold choices (Section 5.6): behaviour is
    // driven by the configured upper threshold, wherever it is set.
    auto [upper, lower] = GetParam();
    SedationParams params = fastParams();
    params.upperThreshold = upper;
    params.lowerThreshold = lower;
    SelectiveSedation policy(2, params);
    FakeControl ctl(2);
    ActivityCounters ac(2);
    primeMonitor(policy, ac, 1);
    policy.atSensorSample(1000, oneHot(Block::IntReg, upper - 0.2), ctl);
    EXPECT_FALSE(ctl.sedated[1]);
    policy.atSensorSample(2000, oneHot(Block::IntReg, upper + 0.1), ctl);
    EXPECT_TRUE(ctl.sedated[1]);
    policy.atSensorSample(3000, oneHot(Block::IntReg, lower - 0.1), ctl);
    EXPECT_FALSE(ctl.sedated[1]);
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, SedationThresholdSweep,
    ::testing::Values(std::make_pair(355.5, 354.5),
                      std::make_pair(356.0, 355.0),
                      std::make_pair(356.5, 355.5),
                      std::make_pair(357.0, 355.0),
                      std::make_pair(357.5, 356.0)));

} // namespace
} // namespace hs
