/** @file Unit tests for the Wattch-style energy model. */

#include <gtest/gtest.h>

#include "power/energy_model.hh"

namespace hs {
namespace {

size_t
idx(Block b)
{
    return static_cast<size_t>(blockIndex(b));
}

TEST(EnergyModel, IdlePowerIsLeakageOnly)
{
    EnergyModel em;
    std::vector<Watts> idle = em.idlePower();
    for (int b = 0; b < numBlocks; ++b)
        EXPECT_DOUBLE_EQ(idle[static_cast<size_t>(b)],
                         em.params().leakage[static_cast<size_t>(b)]);
}

TEST(EnergyModel, WindowPowerBasicAccounting)
{
    EnergyModel em;
    ActivityCounters ac(1);
    ActivityCounters::Snapshot snap(ac);
    // 20000 accesses to IntReg over a 20000-cycle fully active window
    // = 1 access/cycle = E * f watts of dynamic power.
    ac.record(0, Block::IntReg, 20000);
    std::vector<Watts> p = em.windowPower(ac, snap, 20000, 20000);
    double expected = em.params().accessEnergy[idx(Block::IntReg)] *
                          em.params().frequencyHz +
                      em.params().leakage[idx(Block::IntReg)] +
                      em.params().clockPower[idx(Block::IntReg)];
    EXPECT_NEAR(p[idx(Block::IntReg)], expected, 1e-9);
}

TEST(EnergyModel, ClockGatedWindow)
{
    EnergyModel em;
    ActivityCounters ac(1);
    ActivityCounters::Snapshot snap(ac);
    // No activity, zero active cycles: leakage only.
    std::vector<Watts> p = em.windowPower(ac, snap, 20000, 0);
    for (int b = 0; b < numBlocks; ++b)
        EXPECT_DOUBLE_EQ(p[static_cast<size_t>(b)],
                         em.params().leakage[static_cast<size_t>(b)]);
}

TEST(EnergyModel, HalfActiveWindowChargesHalfClock)
{
    EnergyModel em;
    ActivityCounters ac(1);
    ActivityCounters::Snapshot snap(ac);
    std::vector<Watts> p = em.windowPower(ac, snap, 20000, 10000);
    size_t i = idx(Block::Icache);
    EXPECT_NEAR(p[i],
                em.params().leakage[i] + 0.5 * em.params().clockPower[i],
                1e-12);
}

TEST(EnergyModel, WindowAdvancesSnapshot)
{
    EnergyModel em;
    ActivityCounters ac(1);
    ActivityCounters::Snapshot snap(ac);
    ac.record(0, Block::Dcache, 100);
    em.windowPower(ac, snap, 1000, 1000);
    // Second window with no new activity: dynamic part must be zero.
    std::vector<Watts> p = em.windowPower(ac, snap, 1000, 1000);
    size_t i = idx(Block::Dcache);
    EXPECT_NEAR(p[i],
                em.params().leakage[i] + em.params().clockPower[i],
                1e-12);
}

TEST(EnergyModel, SteadyPowerMatchesWindowPower)
{
    // steadyPower(r) must equal windowPower with r accesses/cycle.
    EnergyModel em;
    std::array<double, numBlocks> rates{};
    rates[idx(Block::IntReg)] = 2.5;
    std::vector<Watts> steady = em.steadyPower(rates);

    ActivityCounters ac(1);
    ActivityCounters::Snapshot snap(ac);
    ac.record(0, Block::IntReg, 25000);
    std::vector<Watts> window = em.windowPower(ac, snap, 10000, 10000);
    EXPECT_NEAR(steady[idx(Block::IntReg)], window[idx(Block::IntReg)],
                1e-9);
}

TEST(EnergyModel, MultiThreadActivitySummed)
{
    EnergyModel em;
    ActivityCounters ac(2);
    ActivityCounters::Snapshot snap(ac);
    ac.record(0, Block::IntReg, 5000);
    ac.record(1, Block::IntReg, 5000);
    std::vector<Watts> p = em.windowPower(ac, snap, 10000, 10000);
    size_t i = idx(Block::IntReg);
    double expected = 1.0 * em.params().accessEnergy[i] *
                          em.params().frequencyHz +
                      em.params().leakage[i] + em.params().clockPower[i];
    EXPECT_NEAR(p[i], expected, 1e-9);
}

TEST(EnergyModel, VoltageScalingIsQuadratic)
{
    EnergyParams params = EnergyParams::defaults();
    double e0 = params.accessEnergy[idx(Block::IntReg)];
    double c0 = params.clockPower[idx(Block::IntReg)];
    double l0 = params.leakage[idx(Block::IntReg)];
    params.scaleVoltage(params.vdd / 2);
    EXPECT_NEAR(params.accessEnergy[idx(Block::IntReg)], e0 / 4, 1e-15);
    EXPECT_NEAR(params.clockPower[idx(Block::IntReg)], c0 / 4, 1e-12);
    // Leakage is not V^2-scaled by this simple model.
    EXPECT_DOUBLE_EQ(params.leakage[idx(Block::IntReg)], l0);
}

TEST(EnergyModel, TotalSums)
{
    std::vector<Watts> p{1.0, 2.5, 3.5};
    EXPECT_DOUBLE_EQ(EnergyModel::total(p), 7.0);
}

// Helper mirroring the simulator's nominal rates without linking hs_sim.
std::array<double, numBlocks>
simConfigLikeRates()
{
    std::array<double, numBlocks> rates{};
    rates[idx(Block::Icache)] = 1.8;
    rates[idx(Block::Itb)] = 1.8;
    rates[idx(Block::IntQ)] = 13.5;
    rates[idx(Block::IntReg)] = 11.5;
    rates[idx(Block::IntExec)] = 2.3;
    rates[idx(Block::Dcache)] = 1.1;
    return rates;
}

TEST(EnergyModel, DefaultsInPlausibleRange)
{
    // Whole-chip sanity for a next-generation 4 GHz part (Table 1):
    // idle in single digits of watts, typical activity 20-45 W.
    EnergyModel em;
    EXPECT_GT(EnergyModel::total(em.idlePower()), 3.0);
    EXPECT_LT(EnergyModel::total(em.idlePower()), 12.0);
    auto p = em.steadyPower(simConfigLikeRates());
    double total = EnergyModel::total(p);
    EXPECT_GT(total, 20.0);
    EXPECT_LT(total, 45.0);
}

} // namespace
} // namespace hs
