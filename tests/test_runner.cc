/**
 * @file
 * Parallel experiment engine tests: canonical keys, bit-identity of
 * parallel vs serial execution, result memoisation, submission-order
 * preservation, and the strict environment-variable validation.
 *
 * All simulation-backed tests run at HS scale 2000 (250 K-cycle
 * quanta) so the whole file stays fast.
 */

#include <algorithm>
#include <cstdlib>
#include <set>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "sim/result_store.hh"
#include "sim/runner.hh"

namespace {

using namespace hs;

ExperimentOptions
fastOpts()
{
    ExperimentOptions opts;
    opts.timeScale = 2000.0;
    return opts;
}

/** An 8-cell matrix touching every workload kind and both DTM paths. */
std::vector<RunSpec>
sampleMatrix()
{
    ExperimentOptions opts = fastOpts();
    std::vector<RunSpec> specs;
    specs.push_back(soloSpec("gcc", opts));
    specs.push_back(soloSpec("mcf", opts));
    specs.push_back(maliciousSoloSpec(1, opts));
    specs.push_back(withVariantSpec("gcc", 2, opts));
    specs.push_back(withVariantSpec("crafty", 3, opts));
    specs.push_back(specPairSpec("gcc", "mesa", opts));
    specs.push_back(
        withVariantSpec("applu", 2, opts)
            .withDtm(DtmMode::SelectiveSedation));
    specs.push_back(soloSpec("vortex", opts).withSink(SinkType::Ideal));
    return specs;
}

TEST(RunSpec, CanonicalKeyCoversEveryOption)
{
    RunSpec base = withVariantSpec("gcc", 2, fastOpts());
    std::string k0 = base.canonicalKey();

    // Each outcome-affecting mutation must change the key.
    std::vector<RunSpec> mutants;
    {
        RunSpec s = base;
        s.opts.timeScale = 2001.0;
        mutants.push_back(s);
    }
    {
        RunSpec s = base;
        s.opts.dtm = DtmMode::SelectiveSedation;
        mutants.push_back(s);
    }
    {
        RunSpec s = base;
        s.opts.sink = SinkType::Ideal;
        mutants.push_back(s);
    }
    {
        RunSpec s = base;
        s.opts.convectionR = 0.7;
        mutants.push_back(s);
    }
    {
        RunSpec s = base;
        s.opts.upperThreshold = 357.0;
        mutants.push_back(s);
    }
    {
        RunSpec s = base;
        s.opts.lowerThreshold = 354.0;
        mutants.push_back(s);
    }
    {
        RunSpec s = base;
        s.opts.sedationUsageThreshold = !s.opts.sedationUsageThreshold;
        mutants.push_back(s);
    }
    {
        RunSpec s = base;
        s.opts.recordTempTrace = true;
        mutants.push_back(s);
    }
    {
        RunSpec s = base;
        s.numThreads = 3;
        mutants.push_back(s);
    }
    {
        RunSpec s = base;
        s.dieShrink = 0.9;
        mutants.push_back(s);
    }
    {
        RunSpec s = base;
        s.sensorNoiseK = 0.5;
        mutants.push_back(s);
    }
    {
        RunSpec s = base;
        s.descheduleAfter = 2;
        mutants.push_back(s);
    }
    {
        RunSpec s = base;
        s.workloads.push_back(WorkloadSpec::spec("mcf"));
        mutants.push_back(s);
    }
    {
        RunSpec s = base;
        s.workloads[1] = WorkloadSpec::maliciousVariant(3);
        mutants.push_back(s);
    }

    std::set<std::string> keys{k0};
    for (const RunSpec &m : mutants) {
        EXPECT_NE(m.canonicalKey(), k0);
        keys.insert(m.canonicalKey());
    }
    // ... and all mutants must be distinct from each other too.
    EXPECT_EQ(keys.size(), mutants.size() + 1);

    // The label is presentation only.
    EXPECT_EQ(base.withLabel("renamed").canonicalKey(), k0);
    EXPECT_EQ(base.withLabel("renamed").hash(), base.hash());
}

TEST(RunSpec, HashIsStableAcrossCopies)
{
    RunSpec a = specPairSpec("crafty", "vortex", fastOpts());
    RunSpec b = a;
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_EQ(a, b);
    b.opts.convectionR = 0.5;
    EXPECT_NE(a.hash(), b.hash());
}

TEST(Runner, ParallelBitIdenticalToSerial)
{
    std::vector<RunSpec> specs = sampleMatrix();

    std::vector<RunResult> serial;
    for (const RunSpec &s : specs)
        serial.push_back(executeRunSpec(s));

    ParallelRunner runner(4);
    std::vector<RunResult> parallel = runner.run(specs);

    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(parallel[i], serial[i])
            << "mismatch for spec " << specs[i].label;
}

TEST(Runner, SubmissionOrderPreservedAtEveryWorkerCount)
{
    std::vector<RunSpec> specs = sampleMatrix();
    std::vector<RunResult> reference;
    for (const RunSpec &s : specs)
        reference.push_back(executeRunSpec(s));

    for (int jobs = 1; jobs <= 8; ++jobs) {
        ParallelRunner runner(jobs);
        EXPECT_EQ(runner.jobs(), jobs);
        std::vector<RunResult> got = runner.run(specs);
        ASSERT_EQ(got.size(), specs.size()) << "jobs=" << jobs;
        for (size_t i = 0; i < specs.size(); ++i) {
            EXPECT_EQ(got[i].threads[0].program,
                      reference[i].threads[0].program)
                << "jobs=" << jobs << " index " << i;
            EXPECT_EQ(got[i], reference[i])
                << "jobs=" << jobs << " index " << i;
        }
    }
}

TEST(Runner, ResultStoreMemoises)
{
    ResultStore store;
    RunSpec spec = withVariantSpec("gcc", 2, fastOpts());

    int computed = 0;
    auto compute = [&]() {
        ++computed;
        return executeRunSpec(spec);
    };

    RunResult first = store.getOrCompute(spec, compute);
    EXPECT_EQ(computed, 1);
    EXPECT_EQ(store.misses(), 1u);
    EXPECT_EQ(store.hits(), 0u);
    EXPECT_TRUE(store.contains(spec));

    RunResult again = store.getOrCompute(spec, compute);
    EXPECT_EQ(computed, 1) << "second lookup must be served from cache";
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(again, first);

    // A different label is the same cell...
    RunResult relabeled =
        store.getOrCompute(spec.withLabel("other"), compute);
    EXPECT_EQ(computed, 1);
    EXPECT_EQ(relabeled, first);

    // ...but any option change is a distinct cell.
    RunSpec changed = spec;
    changed.opts.convectionR = 0.6;
    EXPECT_FALSE(store.contains(changed));
    store.getOrCompute(changed, [&]() {
        ++computed;
        return executeRunSpec(changed);
    });
    EXPECT_EQ(computed, 2);
    EXPECT_EQ(store.size(), 2u);

    store.clear();
    EXPECT_EQ(store.size(), 0u);
    EXPECT_FALSE(store.contains(spec));
}

TEST(Runner, CachedMatrixRunsAreBitIdentical)
{
    ResultStore store;
    std::vector<RunSpec> specs = sampleMatrix();

    ParallelRunner cold(2, &store);
    std::vector<RunResult> first = cold.run(specs);
    EXPECT_EQ(store.misses(), specs.size());

    ParallelRunner warm(2, &store);
    std::vector<RunResult> second = warm.run(specs);
    EXPECT_EQ(store.misses(), specs.size())
        << "warm pass must not simulate";
    EXPECT_EQ(store.hits(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(second[i], first[i]);
}

TEST(Runner, MatrixJsonAndCsvEmission)
{
    std::vector<RunSpec> specs = {soloSpec("gcc", fastOpts())};
    std::vector<RunResult> results = {executeRunSpec(specs[0])};

    std::ostringstream json;
    writeMatrixJson(json, specs, results);
    EXPECT_NE(json.str().find("\"runs\""), std::string::npos);
    EXPECT_NE(json.str().find("\"label\": \"gcc\""), std::string::npos);
    EXPECT_NE(json.str().find("\"spec_hash\""), std::string::npos);
    EXPECT_NE(json.str().find("\"peak_temp_K\""), std::string::npos);

    std::ostringstream csv;
    writeMatrixCsv(csv, specs, results);
    const std::string text = csv.str();
    std::string header = text.substr(0, text.find('\n'));
    EXPECT_EQ(header.rfind("run,label,thread,program,", 0), 0u)
        << header;
    // Header plus one data row per thread.
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'),
              1 + static_cast<long>(results[0].threads.size()));
}

TEST(Runner, EnvJobsParses)
{
    unsetenv("HS_JOBS");
    EXPECT_EQ(envJobs(3), 3);
    setenv("HS_JOBS", "5", 1);
    EXPECT_EQ(envJobs(3), 5);
    unsetenv("HS_JOBS");
}

TEST(RunnerDeathTest, EnvJobsRejectsGarbage)
{
    setenv("HS_JOBS", "many", 1);
    EXPECT_EXIT(envJobs(0), testing::ExitedWithCode(1), "HS_JOBS");
    setenv("HS_JOBS", "0", 1);
    EXPECT_EXIT(envJobs(0), testing::ExitedWithCode(1), "HS_JOBS");
    setenv("HS_JOBS", "-4", 1);
    EXPECT_EXIT(envJobs(0), testing::ExitedWithCode(1), "HS_JOBS");
    unsetenv("HS_JOBS");
}

TEST(Runner, BenchmarkSetSelection)
{
    unsetenv("HS_BENCH_SET");
    std::vector<std::string> paper = benchmarkSet();
    EXPECT_FALSE(paper.empty());

    setenv("HS_BENCH_SET", "quick", 1);
    EXPECT_EQ(benchmarkSet().size(), 4u);
    setenv("HS_BENCH_SET", "paper", 1);
    EXPECT_EQ(benchmarkSet(), paper);
    setenv("HS_BENCH_SET", "full", 1);
    EXPECT_EQ(benchmarkSet().size(), specSuite().size());
    unsetenv("HS_BENCH_SET");
}

TEST(RunnerDeathTest, BenchmarkSetRejectsUnknownName)
{
    setenv("HS_BENCH_SET", "medium", 1);
    EXPECT_EXIT(benchmarkSet(), testing::ExitedWithCode(1),
                "HS_BENCH_SET must be one of quick, paper, full");
    unsetenv("HS_BENCH_SET");
}

TEST(RunSpecDeathTest, MaliciousVariantRangeChecked)
{
    EXPECT_EXIT(WorkloadSpec::maliciousVariant(0),
                testing::ExitedWithCode(1), "variant");
    EXPECT_EXIT(WorkloadSpec::maliciousVariant(5),
                testing::ExitedWithCode(1), "variant");
}

} // namespace
