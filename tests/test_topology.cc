/**
 * @file
 * Many-core topology tests.
 *
 * Three layers are pinned here:
 *
 *  - Topology itself: the near-square tiling and the cross-tile seam
 *    enumeration (counts, orientation, determinism).
 *  - ThermalModel composition: a 1-core topology builds a network
 *    bit-identical to the legacy single-floorplan constructor (every
 *    temperature EXPECT_EQ-exact through init + stepping), and N-core
 *    dies really couple — heat injected on one core warms its
 *    neighbour, monotonically in couplingScale.
 *  - The simulator / RunSpec surface: the default topology keys and
 *    results are byte-identical to an explicit 1-core topology, and
 *    multi-core runs are deterministic with the result shape (per-core
 *    slices, thread->core tags) the tools consume.
 *
 * Simulation-backed tests run at HS scale 2000 (250 K-cycle quanta).
 */

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/blocks.hh"
#include "sim/runner.hh"
#include "sim/run_spec.hh"
#include "thermal/floorplan.hh"
#include "thermal/thermal_model.hh"
#include "thermal/topology.hh"

namespace {

using namespace hs;

TopologyParams
params(int cores, double coupling = 1.0)
{
    TopologyParams p;
    p.numCores = cores;
    p.couplingScale = coupling;
    return p;
}

// --- tiling ------------------------------------------------------------

TEST(Topology, SingleCoreIsTheDegenerateTile)
{
    Topology t(Floorplan::ev6(), params(1));
    EXPECT_EQ(t.numCores(), 1);
    EXPECT_EQ(t.cols(), 1);
    EXPECT_EQ(t.rows(), 1);
    EXPECT_TRUE(t.crossEdges().empty());
    EXPECT_EQ(t.originX(0), 0.0);
    EXPECT_EQ(t.originY(0), 0.0);
}

TEST(Topology, FourCoresTileANearSquareGrid)
{
    Topology t(Floorplan::ev6(), params(4));
    EXPECT_EQ(t.cols(), 2);
    EXPECT_EQ(t.rows(), 2);
    // Row 0 at the bottom, filled left to right.
    EXPECT_EQ(t.col(0), 0);
    EXPECT_EQ(t.row(0), 0);
    EXPECT_EQ(t.col(3), 1);
    EXPECT_EQ(t.row(3), 1);
    EXPECT_GT(t.originX(1), t.originX(0));
    EXPECT_GT(t.originY(2), t.originY(0));

    // Exactly the four seams of a 2x2 grid, each with >= 1 coupling:
    // 0-1 and 2-3 horizontal, 0-2 and 1-3 vertical.
    bool h01 = false, h23 = false, v02 = false, v13 = false;
    for (const CrossEdge &e : t.crossEdges()) {
        ASSERT_LT(e.coreA, e.coreB);
        ASSERT_GT(e.sharedEdge, 0.0);
        if (e.coreA == 0 && e.coreB == 1 && !e.vertical)
            h01 = true;
        else if (e.coreA == 2 && e.coreB == 3 && !e.vertical)
            h23 = true;
        else if (e.coreA == 0 && e.coreB == 2 && e.vertical)
            v02 = true;
        else if (e.coreA == 1 && e.coreB == 3 && e.vertical)
            v13 = true;
        else
            FAIL() << "unexpected seam " << e.coreA << "-" << e.coreB;
    }
    EXPECT_TRUE(h01);
    EXPECT_TRUE(h23);
    EXPECT_TRUE(v02);
    EXPECT_TRUE(v13);
}

TEST(Topology, RaggedGridOnlyCouplesOccupiedTiles)
{
    // Three cores on a 2x2 grid: the top-right tile is empty, so only
    // the 0-1 (horizontal) and 0-2 (vertical) seams exist.
    Topology t(Floorplan::ev6(), params(3));
    EXPECT_EQ(t.cols(), 2);
    EXPECT_EQ(t.rows(), 2);
    for (const CrossEdge &e : t.crossEdges()) {
        bool ok = (e.coreA == 0 && e.coreB == 1 && !e.vertical) ||
                  (e.coreA == 0 && e.coreB == 2 && e.vertical);
        EXPECT_TRUE(ok) << "unexpected seam " << e.coreA << "-"
                        << e.coreB;
    }
}

TEST(Topology, CrossEdgesAreDeterministic)
{
    Topology a(Floorplan::ev6(), params(6));
    Topology b(Floorplan::ev6(), params(6));
    ASSERT_EQ(a.crossEdges().size(), b.crossEdges().size());
    for (size_t i = 0; i < a.crossEdges().size(); ++i) {
        const CrossEdge &ea = a.crossEdges()[i];
        const CrossEdge &eb = b.crossEdges()[i];
        EXPECT_EQ(ea.coreA, eb.coreA);
        EXPECT_EQ(ea.blockA, eb.blockA);
        EXPECT_EQ(ea.coreB, eb.coreB);
        EXPECT_EQ(ea.blockB, eb.blockB);
        EXPECT_EQ(ea.sharedEdge, eb.sharedEdge);
    }
}

TEST(TopologyDeathTest, RejectsBadParams)
{
    TopologyParams zero = params(0);
    EXPECT_EXIT(Topology(Floorplan::ev6(), zero),
                testing::ExitedWithCode(1), "at least one core");
    TopologyParams neg = params(2);
    neg.coreSpacing = -1e-3;
    EXPECT_EXIT(Topology(Floorplan::ev6(), neg),
                testing::ExitedWithCode(1), "spacing");
}

// --- thermal composition ----------------------------------------------

/** Synthetic per-block powers, deterministic and all distinct. */
std::vector<Watts>
syntheticPower(int total_blocks, double scale = 1.0)
{
    std::vector<Watts> p(total_blocks);
    for (int i = 0; i < total_blocks; ++i)
        p[i] = scale * (0.3 + 0.07 * (i % numBlocks));
    return p;
}

TEST(TopologyThermal, OneCoreTopologyBitIdenticalToLegacyModel)
{
    // The lock that keeps the refactor honest: a 1-core Topology must
    // build exactly the network the floorplan constructor builds —
    // same element insertion order, so every double along the
    // trajectory is EXPECT_EQ-exact, not just close.
    ThermalModel legacy(Floorplan::ev6());
    ThermalModel tiled(Topology(Floorplan::ev6(), params(1)));

    std::vector<Watts> power = syntheticPower(numBlocks);
    legacy.initSteadyState(power);
    tiled.initSteadyState(power);
    for (int step = 0; step < 200; ++step) {
        legacy.step(power, 1e-4);
        tiled.step(power, 1e-4);
    }
    for (int i = 0; i < numBlocks; ++i) {
        Block b = blockFromIndex(i);
        EXPECT_EQ(legacy.blockTemp(b), tiled.blockTemp(b))
            << blockName(b);
        EXPECT_EQ(legacy.blockTemp(b), tiled.coreBlockTemp(0, b))
            << blockName(b);
    }
    EXPECT_EQ(legacy.spreaderTemp(), tiled.spreaderTemp());
    EXPECT_EQ(legacy.sinkTemp(), tiled.sinkTemp());
}

TEST(TopologyThermal, HeatCrossesTheSeamIntoTheIdleCore)
{
    // Two tiles side by side; all power on core 0. The idle neighbour
    // must warm up through the seam + shared package, but never past
    // the heated core.
    ThermalModel model(Topology(Floorplan::ev6(), params(2)));
    ASSERT_EQ(model.numCores(), 2);
    ASSERT_EQ(model.totalBlocks(), 2 * numBlocks);

    std::vector<Watts> power(model.totalBlocks(), 0.0);
    std::vector<Watts> hot = syntheticPower(numBlocks, 4.0);
    std::copy(hot.begin(), hot.end(), power.begin());

    Kelvin ambient = model.params().ambient;
    model.initSteadyState(std::vector<Watts>(model.totalBlocks(), 0.0));
    for (int step = 0; step < 3000; ++step)
        model.step(power, 1e-4);

    Kelvin active = model.coreBlockTemp(0, Block::IntReg);
    Kelvin idle = model.coreBlockTemp(1, Block::IntReg);
    EXPECT_GT(active, idle);
    EXPECT_GT(idle, ambient + 0.01)
        << "cross-core coupling should heat the idle tile";
}

TEST(TopologyThermal, CouplingScaleControlsCrossCoreHeating)
{
    // Same experiment at couplingScale 1 and 0: with the seams severed
    // the idle core only warms through the shared spreader, so it must
    // end up measurably cooler than in the coupled die.
    auto idleTemp = [](double coupling) {
        ThermalModel model(
            Topology(Floorplan::ev6(), params(2, coupling)));
        std::vector<Watts> power(model.totalBlocks(), 0.0);
        std::vector<Watts> hot = syntheticPower(numBlocks, 4.0);
        std::copy(hot.begin(), hot.end(), power.begin());
        model.initSteadyState(
            std::vector<Watts>(model.totalBlocks(), 0.0));
        for (int step = 0; step < 3000; ++step)
            model.step(power, 1e-4);
        return model.coreBlockTemp(1, Block::IntReg);
    };
    EXPECT_GT(idleTemp(1.0), idleTemp(0.0));
}

TEST(TopologyThermal, SymmetricLoadHeatsTilesSymmetrically)
{
    // Tiles are translated copies, not mirrored ones, so the seam
    // couples *different* blocks on its two sides and the die is only
    // approximately symmetric under equal load — to within the heat
    // the seam actually carries (sub-millikelvin here). A decoupled
    // die removes that channel and the tiles match bit-for-bit.
    ThermalModel coupled(Topology(Floorplan::ev6(), params(2)));
    ThermalModel split(Topology(Floorplan::ev6(), params(2, 0.0)));
    std::vector<Watts> one = syntheticPower(numBlocks, 2.0);
    std::vector<Watts> power;
    power.insert(power.end(), one.begin(), one.end());
    power.insert(power.end(), one.begin(), one.end());

    for (ThermalModel *m : {&coupled, &split}) {
        m->initSteadyState(
            std::vector<Watts>(m->totalBlocks(), 0.0));
        for (int step = 0; step < 2000; ++step)
            m->step(power, 1e-4);
    }
    for (int i = 0; i < numBlocks; ++i) {
        Block b = blockFromIndex(i);
        EXPECT_NEAR(coupled.coreBlockTemp(0, b),
                    coupled.coreBlockTemp(1, b), 1e-2)
            << blockName(b);
        EXPECT_EQ(split.coreBlockTemp(0, b),
                  split.coreBlockTemp(1, b))
            << blockName(b);
    }
}

// --- RunSpec keying ----------------------------------------------------

ExperimentOptions
fastOpts()
{
    ExperimentOptions opts;
    opts.timeScale = 2000.0;
    return opts;
}

TEST(TopologyRunSpec, DefaultTopologyLeavesKeysUntouched)
{
    RunSpec base = specPairSpec("gcc", "mesa", fastOpts());
    RunSpec one = base.withTopology(1);
    EXPECT_EQ(base.canonicalKey(), one.canonicalKey());
    EXPECT_EQ(base.divergenceKey(), one.divergenceKey());
    EXPECT_EQ(base.hash(), one.hash());
    EXPECT_EQ(base.canonicalKey().find(";cores="), std::string::npos);
}

TEST(TopologyRunSpec, MultiCoreTopologyIsATrajectoryField)
{
    RunSpec base = specPairSpec("gcc", "mesa", fastOpts());
    RunSpec two = base.withTopology(2, {0, 1});
    // Dies of different shapes must never share a prefix: the
    // topology changes the divergence key, not just the canonical one.
    EXPECT_NE(two.canonicalKey(), base.canonicalKey());
    EXPECT_NE(two.divergenceKey(), base.divergenceKey());
    EXPECT_NE(two.canonicalKey().find(";cores=2;place=0,1"),
              std::string::npos);
    // Placement alone separates cells too.
    RunSpec packed = base.withTopology(2, {0, 0});
    EXPECT_NE(packed.canonicalKey(), two.canonicalKey());
    EXPECT_NE(packed.divergenceKey(), two.divergenceKey());
}

// --- simulator surface -------------------------------------------------

TEST(TopologySimulator, ExplicitOneCoreMatchesDefaultBitForBit)
{
    RunSpec base = withVariantSpec("gcc", 2, fastOpts());
    RunResult legacy = executeRunSpec(base);
    RunResult topo = executeRunSpec(base.withTopology(1));
    EXPECT_EQ(legacy, topo);
    EXPECT_EQ(topo.numCores, 1);
    EXPECT_TRUE(topo.cores.empty());
    for (const ThreadResult &t : topo.threads)
        EXPECT_EQ(t.core, 0);
}

TEST(TopologySimulator, TwoCoreRunIsDeterministicAndShaped)
{
    RunSpec spec =
        withVariantSpec("gcc", 2, fastOpts()).withTopology(2, {0, 1});
    RunResult a = executeRunSpec(spec);
    RunResult b = executeRunSpec(spec);
    EXPECT_EQ(a, b);

    EXPECT_EQ(a.numCores, 2);
    ASSERT_EQ(a.cores.size(), 2u);
    EXPECT_EQ(a.cores[0].core, 0);
    EXPECT_EQ(a.cores[1].core, 1);
    ASSERT_EQ(a.threads.size(), 2u);
    EXPECT_EQ(a.threads[0].core, 0);
    EXPECT_EQ(a.threads[1].core, 1);

    // Aggregates fold the per-core slices.
    EXPECT_EQ(a.emergencies,
              a.cores[0].emergencies + a.cores[1].emergencies);
    EXPECT_EQ(a.peakTempOverall,
              std::max(a.cores[0].peakTempOverall,
                       a.cores[1].peakTempOverall));
}

TEST(TopologySimulator, PlacementSeparatesAttackerFromVictim)
{
    // The cross-die scenario in one assertion: co-scheduled on one SMT
    // core the variant-2 attacker drags gcc through every stall; on
    // its own core the victim only feels the attacker through the
    // silicon. The victim must commit more instructions when the
    // attacker is quarantined on the far tile.
    RunSpec shared = withVariantSpec("gcc", 2, fastOpts());
    RunSpec split = shared.withTopology(2, {0, 1});
    RunResult s = executeRunSpec(shared);
    RunResult p = executeRunSpec(split);
    ASSERT_EQ(s.threads.size(), 2u);
    ASSERT_EQ(p.threads.size(), 2u);
    EXPECT_GT(p.threads[0].ipc, s.threads[0].ipc);
}

} // namespace
