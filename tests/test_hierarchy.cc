/** @file Unit tests for the two-level memory hierarchy. */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace hs {
namespace {

TEST(Hierarchy, ColdAccessGoesToMemory)
{
    MemoryHierarchy mem;
    MemAccessResult r = mem.accessData(0x1000, false);
    EXPECT_EQ(r.level, MemLevel::Memory);
    EXPECT_TRUE(r.l2Miss());
    // 2 (L1) + 12 (L2) + 300 (memory) from Table 1.
    EXPECT_EQ(r.latency, 2 + 12 + 300);
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    MemoryHierarchy mem;
    mem.accessData(0x1000, false);
    MemAccessResult r = mem.accessData(0x1000, false);
    EXPECT_EQ(r.level, MemLevel::L1);
    EXPECT_EQ(r.latency, 2);
    EXPECT_FALSE(r.l2Access);
}

TEST(Hierarchy, L1EvictionLeavesL2Copy)
{
    MemoryHierarchy mem;
    // Fill one L1 set (4-way, 256 sets, period 16 KB) with 5 lines.
    const Addr period = 64 * 1024 / 4; // 16 KB
    for (int i = 0; i < 5; ++i)
        mem.accessData(static_cast<Addr>(i) * period, false);
    // Line 0 fell out of L1 but is still in L2.
    MemAccessResult r = mem.accessData(0, false);
    EXPECT_EQ(r.level, MemLevel::L2);
    EXPECT_EQ(r.latency, 2 + 12);
}

TEST(Hierarchy, InstSideUsesL1I)
{
    MemoryHierarchy mem;
    mem.accessInst(0x40);
    EXPECT_EQ(mem.l1i().misses(), 1u);
    EXPECT_EQ(mem.l1d().misses(), 0u);
    MemAccessResult r = mem.accessInst(0x40);
    EXPECT_EQ(r.level, MemLevel::L1);
}

TEST(Hierarchy, InstAndDataShareL2)
{
    MemoryHierarchy mem;
    mem.accessInst(0x8000);           // fills L2 with the line
    MemAccessResult r = mem.accessData(0x8000, false);
    EXPECT_EQ(r.level, MemLevel::L2); // data side finds the I-line
}

TEST(Hierarchy, DirtyL1VictimWrittenBackToL2)
{
    MemoryHierarchy mem;
    const Addr period = 64 * 1024 / 4;
    mem.accessData(0, true); // dirty in L1
    uint64_t l2_before = mem.l2().hits() + mem.l2().misses();
    for (int i = 1; i <= 4; ++i)
        mem.accessData(static_cast<Addr>(i) * period, false);
    // The writeback touched the L2 beyond the 4 demand fills.
    uint64_t l2_after = mem.l2().hits() + mem.l2().misses();
    EXPECT_GE(l2_after - l2_before, 5u);
}

TEST(Hierarchy, TableOneGeometryDefaults)
{
    MemoryHierarchy mem;
    EXPECT_EQ(mem.params().l1d.sizeBytes, 64u * 1024);
    EXPECT_EQ(mem.params().l1d.assoc, 4);
    EXPECT_EQ(mem.params().l2.sizeBytes, 2u * 1024 * 1024);
    EXPECT_EQ(mem.params().l2.assoc, 8);
    EXPECT_EQ(mem.params().memLatency, 300);
    EXPECT_EQ(mem.l2().numSets(), 4096);
}

TEST(Hierarchy, NineWayConflictAlwaysMissesL2)
{
    // Variant 2's conflict set: stride = numSets * lineBytes.
    MemoryHierarchy mem;
    const Addr stride = 4096 * 64;
    // Warm up one full round.
    for (int i = 0; i < 9; ++i)
        mem.accessData(static_cast<Addr>(i) * stride, false);
    // Every subsequent round keeps missing the L2.
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 9; ++i) {
            MemAccessResult r =
                mem.accessData(static_cast<Addr>(i) * stride, false);
            EXPECT_EQ(r.level, MemLevel::Memory)
                << "round " << round << " line " << i;
        }
    }
}

TEST(Hierarchy, ResetStatsClearsCounters)
{
    MemoryHierarchy mem;
    mem.accessData(0, true);
    mem.accessInst(0x100);
    mem.resetStats();
    EXPECT_EQ(mem.l1d().misses(), 0u);
    EXPECT_EQ(mem.l1i().misses(), 0u);
    EXPECT_EQ(mem.l2().misses(), 0u);
    EXPECT_EQ(mem.memWritebacks(), 0u);
}

} // namespace
} // namespace hs
