/**
 * @file
 * Property tests for the fixed-point EWMA underlying the sedation
 * usage monitor (Section 3.2.1): the shift-and-add hardware must decay
 * monotonically to exactly zero under silence, must not overflow at
 * saturated access rates, and must preserve the ordering of two
 * threads' true access rates in their weighted averages.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/fixed_point.hh"
#include "core/usage_monitor.hh"
#include "power/activity.hh"

namespace hs {
namespace {

// ---------------------------------------------------------------------
// FixedEwma: monotone decay to exactly zero under silence.
//
// With acc > 0 and sample 0, the update adds (0 - acc) >> shift, and
// arithmetic right shift of a negative value rounds toward -infinity,
// so each step subtracts at least 1 from the accumulator. The average
// must therefore reach *exactly* zero (not a small positive floor) in
// finitely many steps, strictly decreasing the whole way.
// ---------------------------------------------------------------------
TEST(FixedEwmaProps, SilenceDecaysMonotonicallyToExactZero)
{
    for (int shift : {1, 4, 7, 9, 12}) {
        FixedEwma e(shift);
        e.update(10'000); // a hot window: 10 K accesses
        ASSERT_GT(e.raw(), 0);

        int64_t prev = e.raw();
        int steps = 0;
        const int kMaxSteps = 5'000'000; // far above any real decay
        while (e.raw() != 0 && steps < kMaxSteps) {
            e.update(0);
            ++steps;
            // Strictly decreasing while positive; never undershoots.
            ASSERT_LT(e.raw(), prev) << "shift " << shift;
            ASSERT_GE(e.raw(), 0) << "shift " << shift;
            prev = e.raw();
        }
        EXPECT_EQ(e.raw(), 0) << "shift " << shift
                              << " never reached zero";
        EXPECT_EQ(e.value(), 0.0);
        // Once at zero it stays at zero.
        e.update(0);
        EXPECT_EQ(e.raw(), 0);
    }
}

// ---------------------------------------------------------------------
// FixedEwma: no overflow at saturated access rates.
//
// The paper's monitor samples every 1 K cycles; a register file with
// ~11 ports cannot see more than a few tens of thousands of accesses
// per window. Feed a far larger constant (a million per window) for
// long enough to fully converge: the fixed-point accumulator must
// settle into [sample - 1, sample] (truncation may leave it a hair
// under) and stay there, never wrapping negative.
// ---------------------------------------------------------------------
TEST(FixedEwmaProps, SaturatedRateConvergesWithoutOverflow)
{
    const uint64_t sample = 1'000'000;
    for (int shift : {1, 7, 9}) {
        FixedEwma e(shift);
        // Convergence takes O(2^shift * bits) updates; 64 time
        // constants is far past settled.
        const int steps = (1 << shift) * 64;
        for (int i = 0; i < steps; ++i) {
            e.update(sample);
            ASSERT_GE(e.raw(), 0) << "overflow at shift " << shift;
        }
        EXPECT_GE(e.value(), static_cast<double>(sample) - 1.0)
            << "shift " << shift;
        EXPECT_LE(e.value(), static_cast<double>(sample))
            << "shift " << shift;
        // Steady state is a fixed point of the update.
        int64_t settled = e.raw();
        e.update(sample);
        EXPECT_EQ(e.raw(), settled);
    }
}

// ---------------------------------------------------------------------
// UsageMonitor: two threads with different sustained access rates must
// order the same way in the weighted averages as in the truth. This is
// the property sedation's culprit identification rests on: the thread
// hammering the register file 8x/cycle must rank above a thread
// touching it once per cycle, at the paper's x = 1/128 weight and
// 1 K-cycle sampling.
// ---------------------------------------------------------------------
TEST(UsageMonitorProps, WeightedAvgOrderingMatchesAccessRateOrdering)
{
    const int kWindow = 1000;      // cycles per monitor sample
    const int kHotPerCycle = 8;    // attacker: 8 IntReg accesses/cycle
    const int kColdPerCycle = 1;   // victim: 1 access/cycle

    ActivityCounters activity(2);
    UsageMonitor monitor(2, /*ewma_shift=*/7); // x = 1/128
    std::vector<bool> frozen{false, false};

    // 4096 windows = 32 time constants at shift 7: fully converged.
    for (int window = 0; window < 4096; ++window) {
        activity.record(0, Block::IntReg,
                        static_cast<uint64_t>(kHotPerCycle) * kWindow);
        activity.record(1, Block::IntReg,
                        static_cast<uint64_t>(kColdPerCycle) * kWindow);
        monitor.sample(activity, frozen);
    }

    double hot = monitor.weightedAvg(0, Block::IntReg);
    double cold = monitor.weightedAvg(1, Block::IntReg);
    EXPECT_GT(hot, cold);
    // Converged averages reproduce the true per-window counts.
    EXPECT_NEAR(hot, kHotPerCycle * kWindow, 1.0);
    EXPECT_NEAR(cold, kColdPerCycle * kWindow, 1.0);

    std::vector<bool> eligible{true, true};
    EXPECT_EQ(monitor.highestUsage(Block::IntReg, eligible), 0);

    // The ordering also holds mid-transient: swap the rates and check
    // the crossover eventually flips the ranking, but not instantly
    // (the EWMA's memory is what defeats bursty evasion).
    activity.record(1, Block::IntReg,
                    static_cast<uint64_t>(kHotPerCycle) * kWindow);
    activity.record(0, Block::IntReg,
                    static_cast<uint64_t>(kColdPerCycle) * kWindow);
    monitor.sample(activity, frozen);
    EXPECT_GT(monitor.weightedAvg(0, Block::IntReg),
              monitor.weightedAvg(1, Block::IntReg))
        << "one contrary window must not flip a long history";
    for (int window = 0; window < 512; ++window) {
        activity.record(1, Block::IntReg,
                        static_cast<uint64_t>(kHotPerCycle) * kWindow);
        activity.record(0, Block::IntReg,
                        static_cast<uint64_t>(kColdPerCycle) * kWindow);
        monitor.sample(activity, frozen);
    }
    EXPECT_GT(monitor.weightedAvg(1, Block::IntReg),
              monitor.weightedAvg(0, Block::IntReg))
        << "sustained rate change must eventually reorder";
}

// Frozen (sedated) threads keep their average: inactivity while
// sedated must not launder a culprit's history (Section 3.2.2).
TEST(UsageMonitorProps, FrozenThreadKeepsItsAverage)
{
    const int kWindow = 1000;
    ActivityCounters activity(2);
    UsageMonitor monitor(2, 7);
    std::vector<bool> frozen{false, false};

    for (int window = 0; window < 256; ++window) {
        activity.record(0, Block::IntReg, 8ull * kWindow);
        monitor.sample(activity, frozen);
    }
    double before = monitor.weightedAvg(0, Block::IntReg);
    ASSERT_GT(before, 0.0);

    frozen[0] = true; // sedated: no accesses, no update
    for (int window = 0; window < 256; ++window)
        monitor.sample(activity, frozen);
    EXPECT_EQ(monitor.weightedAvg(0, Block::IntReg), before);

    frozen[0] = false; // released and silent: now it decays
    for (int window = 0; window < 256; ++window)
        monitor.sample(activity, frozen);
    EXPECT_LT(monitor.weightedAvg(0, Block::IntReg), before);
}

} // namespace
} // namespace hs
