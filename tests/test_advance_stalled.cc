/**
 * @file
 * Boundary-condition tests for the stalled-pipeline fast-forward path:
 * zero-length stalls, stalls whose release lands exactly on a sensor
 * boundary, and stalls clipped by the end of the quantum. The
 * fast-forward must be indistinguishable from ticking the stalled
 * pipeline cycle by cycle — same cycle count, same per-thread cooling
 * accounting, same number of sensor samples.
 */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/simulator.hh"
#include "smt/pipeline.hh"
#include "workload/generator.hh"
#include "workload/malicious.hh"

namespace hs {
namespace {

// --- pipeline level ----------------------------------------------------

TEST(Pipeline, AdvanceStalledZeroIsANoOp)
{
    Program a = assemble("top:\naddi r1, r1, 1\njmp top\n");
    SmtParams params;
    params.numThreads = 1;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &a);
    for (int i = 0; i < 100; ++i)
        pipe.tick();
    pipe.setGlobalStall(true);

    Cycles c0 = pipe.cycle();
    uint64_t cool0 = pipe.thread(0).coolingCycles;
    pipe.advanceStalled(0);
    EXPECT_EQ(pipe.cycle(), c0);
    EXPECT_EQ(pipe.thread(0).coolingCycles, cool0);

    // And the very next non-empty advance behaves normally.
    pipe.advanceStalled(1);
    EXPECT_EQ(pipe.cycle(), c0 + 1);
    EXPECT_EQ(pipe.thread(0).coolingCycles, cool0 + 1);
}

TEST(Pipeline, AdvanceStalledSkipsInactiveThreads)
{
    Program loop = assemble("top:\naddi r1, r1, 1\njmp top\n");
    Program halt = assemble("halt\n");
    SmtParams params;
    params.numThreads = 2;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &loop);
    pipe.setThreadProgram(1, &halt);
    for (int i = 0; i < 1000; ++i)
        pipe.tick();
    ASSERT_EQ(pipe.thread(1).state, ThreadState::Halted);

    pipe.setGlobalStall(true);
    uint64_t cool0 = pipe.thread(0).coolingCycles;
    uint64_t cool1 = pipe.thread(1).coolingCycles;
    pipe.advanceStalled(500);
    EXPECT_EQ(pipe.thread(0).coolingCycles, cool0 + 500);
    EXPECT_EQ(pipe.thread(1).coolingCycles, cool1);
}

TEST(PipelineDeathTest, AdvanceStalledRequiresAStall)
{
    Program a = assemble("top:\naddi r1, r1, 1\njmp top\n");
    SmtParams params;
    params.numThreads = 1;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &a);
    EXPECT_DEATH(pipe.advanceStalled(5), "advanceStalled");
}

// --- simulator level ---------------------------------------------------

/**
 * Stop-and-go with a trigger below ambient: the policy engages at the
 * very first sensor sample (cycle 20 K) and, since the die can never
 * cool below ambient, never releases. Every subsequent cycle is one
 * long stall the run-loop fast-forwards sensor interval by sensor
 * interval.
 */
SimConfig
permanentStallConfig(Cycles quantum)
{
    SimConfig cfg;
    cfg.quantumCycles = quantum;
    cfg.thermal.timeScale = 1000.0;
    cfg.dtm = DtmMode::StopAndGo;
    cfg.stopAndGo.triggerTemp = 300.0;
    cfg.stopAndGo.resumeTemp = 290.0;
    cfg.sedation.recheckCycles = 100000;
    cfg.sedation.ewmaShift = 6;
    return cfg;
}

TEST(Simulator, StallEndingExactlyOnASensorBoundary)
{
    // 240 K cycles = 12 sensor intervals: the stall's end coincides
    // with the final sensor boundary AND the quantum end.
    Simulator sim(permanentStallConfig(240000));
    sim.setProfiling(true);
    sim.setWorkload(0, synthesizeSpec("gzip"));
    RunResult r = sim.run();

    EXPECT_EQ(r.cycles, 240000u);
    EXPECT_EQ(r.stopAndGoTriggers, 1u);
    const ThreadResult &t = r.threads[0];
    EXPECT_EQ(t.normalCycles, 20000u);
    EXPECT_EQ(t.coolingCycles, 220000u);
    EXPECT_EQ(t.sedationCycles, 0u);
    EXPECT_EQ(t.normalCycles + t.coolingCycles, r.cycles);

    const SimProfile &p = sim.profile();
    EXPECT_EQ(p.stalledCycles, 220000u);
    EXPECT_EQ(p.tickedCycles, 20000u);
    // One sample per boundary, stalled or not: 240 K / 20 K.
    EXPECT_EQ(p.sensorSamples, 12u);
}

TEST(Simulator, StallSpanningTheQuantumEnd)
{
    // 250 K cycles is NOT a multiple of the 20 K sensor interval: the
    // last boundary is 240 K and the final fast-forward must clip at
    // the quantum end instead of overshooting to 260 K.
    Simulator sim(permanentStallConfig(250000));
    sim.setProfiling(true);
    sim.setWorkload(0, synthesizeSpec("gzip"));
    RunResult r = sim.run();

    EXPECT_EQ(r.cycles, 250000u);
    const ThreadResult &t = r.threads[0];
    EXPECT_EQ(t.normalCycles, 20000u);
    EXPECT_EQ(t.coolingCycles, 230000u);
    EXPECT_EQ(t.normalCycles + t.coolingCycles, r.cycles);

    const SimProfile &p = sim.profile();
    EXPECT_EQ(p.stalledCycles, 230000u);
    EXPECT_EQ(p.tickedCycles, 20000u);
    // Boundaries at 20 K..240 K sampled; no sample at the (unaligned)
    // quantum end.
    EXPECT_EQ(p.sensorSamples, 12u);
}

TEST(Simulator, IntermittentStallAccountingStaysClosed)
{
    // A realistic on/off stop-and-go pattern (an attack workload at a
    // reachable trigger): whatever mix of stalls and releases occurs,
    // the per-thread accounting must tile the quantum exactly.
    SimConfig cfg;
    cfg.quantumCycles = 500000;
    cfg.thermal.timeScale = 1000.0;
    cfg.dtm = DtmMode::StopAndGo;
    cfg.sedation.recheckCycles = 100000;
    cfg.sedation.ewmaShift = 6;
    Simulator sim(cfg);
    sim.setProfiling(true);
    sim.setWorkload(0, makeVariant(1, MaliciousParams{}.scaled(1000.0)));
    RunResult r = sim.run();

    EXPECT_GT(r.stopAndGoTriggers, 1u);
    const ThreadResult &t = r.threads[0];
    EXPECT_GT(t.coolingCycles, 0u);
    EXPECT_EQ(t.normalCycles + t.coolingCycles + t.sedationCycles,
              r.cycles);

    const SimProfile &p = sim.profile();
    EXPECT_EQ(p.stalledCycles, t.coolingCycles);
    EXPECT_EQ(p.stalledCycles + p.tickedCycles, r.cycles);
    // Stalls begin and end on sensor boundaries, so the stalled total
    // is a whole number of sensor intervals (the quantum is aligned,
    // so no clipped tail is possible here).
    EXPECT_EQ(p.stalledCycles % cfg.sensorInterval, 0u);
}

} // namespace
} // namespace hs
