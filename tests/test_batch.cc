/**
 * @file
 * Lockstep batch-engine tests.
 *
 * The contract is the same absolute one the prefix engine carries: a
 * cell executed through the batch engine — forked from a lane's peel
 * snapshot or from the end-of-scout boundary — must produce a
 * RunResult that is bit-identical (operator==, no tolerance) to the
 * same spec simulated cold, at every batch width, worker count and
 * prefix-sharing setting. The family matrix exercises every RunSpec
 * family the bench harnesses build, including the cells the batch
 * engine uniquely covers: usage-ablation lanes (prefix sharing must
 * run those cold) and DtmMode::None lanes that ride a scout to the
 * end of the quantum.
 *
 * All simulation-backed tests run at HS scale 2000 (250 K-cycle
 * quanta) so the whole file stays fast.
 */

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/batch.hh"
#include "sim/result_store.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"
#include "trace/metrics.hh"

namespace {

using namespace hs;

ExperimentOptions
fastOpts()
{
    ExperimentOptions opts;
    opts.timeScale = 2000.0;
    return opts;
}

/** Sedation options with an upper trigger of @p upper (lower = -1 K). */
ExperimentOptions
sedationOpts(double upper)
{
    ExperimentOptions opts = fastOpts();
    opts.dtm = DtmMode::SelectiveSedation;
    opts.upperThreshold = upper;
    opts.lowerThreshold = upper - 1.0;
    return opts;
}

std::vector<RunSpec>
innocentSweep(const std::vector<double> &uppers)
{
    std::vector<RunSpec> specs;
    for (double u : uppers)
        specs.push_back(specPairSpec("gcc", "mesa", sedationOpts(u)));
    return specs;
}

std::vector<RunResult>
runCold(const std::vector<RunSpec> &specs)
{
    std::vector<RunResult> out;
    out.reserve(specs.size());
    for (const RunSpec &s : specs)
        out.push_back(executeRunSpec(s));
    return out;
}

void
expectMatches(const std::vector<RunResult> &cold,
              const std::vector<RunResult> &got, const char *what)
{
    ASSERT_EQ(cold.size(), got.size());
    for (size_t i = 0; i < cold.size(); ++i)
        EXPECT_EQ(cold[i], got[i]) << what << ", cell " << i;
}

/**
 * Every family the benches build, arranged so the batch engine sees
 * lane shapes of every kind: wide policy sweeps, lanes that peel at
 * their first sample (attack cells), lanes that never peel (None,
 * ideal sink), usage-ablation lanes, traced lanes, noisy sensors,
 * die shrink, wide SMT, singleton groups (per-cell convection) and a
 * multi-core group the batch engine must decline.
 */
std::vector<RunSpec>
batchFamilyMatrix()
{
    std::vector<RunSpec> specs;

    // Innocent pair, sedation threshold sweep: one group, four lanes.
    for (RunSpec &s :
         innocentSweep({355.5, 356.0, 356.5, 357.0}))
        specs.push_back(std::move(s));

    // DTM-mode family sweep: every policy in one group, including a
    // None lane that rides to the end of the quantum.
    RunSpec pair = specPairSpec("gcc", "mesa", sedationOpts(356.0));
    specs.push_back(pair.withDtm(DtmMode::None));
    specs.push_back(pair.withDtm(DtmMode::StopAndGo));
    specs.push_back(pair.withDtm(DtmMode::DvfsThrottle));
    specs.push_back(pair.withDtm(DtmMode::FetchGating));

    // Attack cells: every lane peels before the first stride snapshot,
    // so the whole group runs cold — still bit-identical.
    specs.push_back(withVariantSpec("gcc", 2, sedationOpts(356.0)));
    specs.push_back(withVariantSpec("gcc", 2, sedationOpts(357.0)));

    // Ideal sink: no lane ever peels; the scout carries the group to
    // the last boundary through the ideal-sink thermal fast path.
    specs.push_back(
        soloSpec("vortex", sedationOpts(356.0)).withSink(SinkType::Ideal));
    specs.push_back(
        soloSpec("vortex", fastOpts()).withSink(SinkType::Ideal));

    // Usage-threshold ablation: prefix sharing must run these cold,
    // but batch lanes track the scout's own monitor and peel exactly
    // when the trigger scan would first fire.
    for (double u : {356.0, 357.0}) {
        RunSpec s = specPairSpec("gcc", "mesa", sedationOpts(u));
        s.opts.sedationUsageThreshold = true;
        specs.push_back(s);
    }

    // Noisy sensors: forked lanes must re-draw identical noise.
    for (double u : {356.0, 357.0}) {
        RunSpec s = specPairSpec("gcc", "mesa", sedationOpts(u));
        s.sensorNoiseK = 0.3;
        specs.push_back(s);
    }

    // OS deschedule extension (policy field; same group as its base).
    for (int after : {0, 2}) {
        RunSpec s = withVariantSpec("crafty", 3, sedationOpts(356.0));
        s.descheduleAfter = after;
        specs.push_back(s);
    }

    // Temperature traces ride in the fork snapshots too.
    for (double u : {356.0, 357.0}) {
        RunSpec s = specPairSpec("gcc", "mesa", sedationOpts(u));
        s.opts.recordTempTrace = true;
        specs.push_back(s);
    }

    // Structured event traces: two sedation thresholds plus a
    // stop-and-go lane in one group, so a fork must discard the
    // scout's monitor-category events for policies without a monitor;
    // a traced sedation lane must also peel at its upper crossing
    // (the SedUpperCross event) even when nothing can be sedated.
    for (double u : {356.0, 357.0})
        specs.push_back(specPairSpec("gcc", "mesa", sedationOpts(u))
                            .withTraceEvents(true));
    specs.push_back(
        pair.withDtm(DtmMode::StopAndGo).withTraceEvents(true));

    // Technology-scaling knob.
    for (double u : {356.0, 357.0}) {
        RunSpec s = specPairSpec("gcc", "mesa", sedationOpts(u));
        s.dieShrink = 0.8;
        specs.push_back(s);
    }

    // Convection singleton: its own divergence group of one lane, so
    // the batch engine declines and the prefix fallback (when on)
    // declines too.
    {
        RunSpec s = specPairSpec("gcc", "mesa", sedationOpts(356.0));
        s.opts.convectionR = 0.6;
        specs.push_back(s);
    }

    // Wide SMT with a mixed three-thread workload.
    for (double u : {356.0, 357.0}) {
        RunSpec s = specPairSpec("gcc", "mesa", sedationOpts(u));
        s.workloads.push_back(WorkloadSpec::spec("mcf"));
        s.numThreads = 4;
        specs.push_back(s);
    }

    // Multi-core dies: batching is deferred, the prefix engine (when
    // enabled) remains responsible for the group.
    for (double u : {356.0, 357.0})
        specs.push_back(specPairSpec("gcc", "mesa", sedationOpts(u))
                            .withTopology(2, {0, 1}));

    return specs;
}

// --- the full width x jobs x prefix cross -------------------------------

TEST(Batch, EveryFamilyBitIdenticalAcrossWidthsJobsAndPrefix)
{
    std::vector<RunSpec> specs = batchFamilyMatrix();
    std::vector<RunResult> cold = runCold(specs);

    for (int width : {2, 8, 32}) {
        for (int jobs : {1, 4}) {
            for (bool prefix : {false, true}) {
                ParallelRunner runner(jobs);
                runner.setBatchWidth(width);
                runner.setPrefixSharing(prefix);
                std::string what = "width " + std::to_string(width) +
                                   ", jobs " + std::to_string(jobs) +
                                   (prefix ? ", prefix" : ", no prefix");
                expectMatches(cold, runner.run(specs), what.c_str());

                BatchStats bs = runner.batchStats();
                EXPECT_GE(bs.groups, 5u) << what;
                EXPECT_GE(bs.lanes, 2 * bs.groups) << what;
                EXPECT_EQ(bs.peeledLanes + bs.riddenLanes, bs.lanes)
                    << what;
                EXPECT_GT(bs.thermalBatchSteps, 0u) << what;
                // The multi-core group must have been declined; with
                // prefix sharing on, the fallback picks it up (the
                // forkedRuns counter is shared with batch forks, so
                // discriminate on prefix groups).
                if (prefix)
                    EXPECT_GE(runner.prefixStats().groups, 1u) << what;
                else
                    EXPECT_EQ(runner.prefixStats().groups, 0u) << what;
            }
        }
    }
}

TEST(Batch, WidthOneIsExactlyTheSoloPath)
{
    std::vector<RunSpec> specs = innocentSweep({356.0, 357.0});
    std::vector<RunResult> cold = runCold(specs);

    for (int jobs : {1, 4}) {
        ParallelRunner runner(jobs);
        runner.setBatchWidth(1);
        runner.setPrefixSharing(false);
        expectMatches(cold, runner.run(specs), "width 1");

        BatchStats bs = runner.batchStats();
        EXPECT_EQ(bs.groups, 0u);
        EXPECT_EQ(bs.lanes, 0u);
        EXPECT_EQ(bs.scoutCycles, 0u);
        EXPECT_EQ(bs.thermalBatchSteps, 0u);
    }
}

// --- what batching adds over prefix sharing -----------------------------

TEST(Batch, UsageAblationLanesShareTheScout)
{
    // Prefix sharing must run usage-triggered cells cold; the batch
    // engine tracks the scout's monitor and forks them like any other
    // lane.
    std::vector<RunSpec> specs;
    for (double u : {356.0, 357.0, 358.0}) {
        RunSpec s = specPairSpec("gcc", "mesa", sedationOpts(u));
        s.opts.sedationUsageThreshold = true;
        specs.push_back(s);
    }
    std::vector<RunResult> cold = runCold(specs);

    ParallelRunner runner(2);
    runner.setBatchWidth(8);
    runner.setPrefixSharing(false);
    expectMatches(cold, runner.run(specs), "usage lanes");

    BatchStats bs = runner.batchStats();
    EXPECT_EQ(bs.groups, 1u);
    EXPECT_EQ(bs.lanes, 3u);
    EXPECT_GT(bs.scoutCycles, 0u);
}

TEST(Batch, PerLanePeelForksLaterThanTheGroupMinimum)
{
    // The innocent pair peaks at ~340 K at this time scale, so the
    // 339.5 K lane peels mid-quantum while the 358 K lane and the
    // None lane ride the scout to the last boundary. The prefix
    // engine's conservative group minimum is 339.5 K: it stops the
    // shared warm-up there for all three cells, so per-lane peeling
    // must strictly beat it on shared cycles.
    std::vector<RunSpec> specs = innocentSweep({339.5, 358.0});
    RunSpec none = specPairSpec("gcc", "mesa", sedationOpts(339.5))
                       .withDtm(DtmMode::None);
    specs.push_back(none);
    std::vector<RunResult> cold = runCold(specs);

    ParallelRunner prefix_only(1);
    prefix_only.setBatchWidth(1);
    prefix_only.setPrefixSharing(true);
    expectMatches(cold, prefix_only.run(specs), "prefix only");

    ParallelRunner batched(1);
    batched.setBatchWidth(8);
    batched.setPrefixSharing(false);
    expectMatches(cold, batched.run(specs), "batched");

    BatchStats bs = batched.batchStats();
    EXPECT_EQ(bs.peeledLanes, 1u);
    EXPECT_EQ(bs.riddenLanes, 2u);
    EXPECT_GT(bs.savedCycles, prefix_only.prefixStats().savedCycles);
}

// --- caching ------------------------------------------------------------

TEST(Batch, SecondPassIsServedByTheStoreWithoutRescouting)
{
    std::vector<RunSpec> specs = batchFamilyMatrix();
    std::vector<RunResult> cold = runCold(specs);

    ResultStore store;
    ParallelRunner runner(4, &store);
    runner.setBatchWidth(8);
    runner.setPrefixSharing(true);
    expectMatches(cold, runner.run(specs), "first pass");

    BatchStats before = runner.batchStats();
    EXPECT_GE(before.groups, 5u);
    expectMatches(cold, runner.run(specs), "cached pass");
    BatchStats after = runner.batchStats();
    EXPECT_EQ(after.groups, before.groups);
    EXPECT_EQ(after.lanes, before.lanes);
    EXPECT_EQ(after.scoutCycles, before.scoutCycles);
}

// --- folded metrics -----------------------------------------------------

TEST(Batch, FoldedHistogramsMatchTheSoloFold)
{
    std::vector<RunSpec> specs = innocentSweep({356.0, 356.5, 357.0});
    std::vector<RunResult> cold = runCold(specs);

    ParallelRunner runner(2);
    runner.setBatchWidth(8);
    runner.setPrefixSharing(false);
    std::vector<RunResult> got = runner.run(specs);
    expectMatches(cold, got, "fold");

    // Batch counters stay out of the registry by design, so the fold
    // of a batched matrix is byte-identical to the solo fold.
    MetricsRegistry solo_m, batch_m;
    foldRunMetrics(solo_m, cold);
    foldRunMetrics(batch_m, got);
    std::ostringstream solo_js, batch_js;
    solo_m.writeJson(solo_js);
    batch_m.writeJson(batch_js);
    EXPECT_EQ(solo_js.str(), batch_js.str());
}

// --- the HS_BATCH environment knob --------------------------------------

TEST(Batch, EnvBatchDefaultsToSolo)
{
    unsetenv("HS_BATCH");
    EXPECT_EQ(envBatchWidth(), 1);
    EXPECT_EQ(envBatchWidth(16), 16);
    EXPECT_EQ(ParallelRunner(1).batchWidth(), 1);
}

TEST(Batch, EnvBatchSetsTheWidth)
{
    setenv("HS_BATCH", "4", 1);
    EXPECT_EQ(envBatchWidth(), 4);
    EXPECT_EQ(ParallelRunner(1).batchWidth(), 4);
    setenv("HS_BATCH", "1", 1);
    EXPECT_EQ(ParallelRunner(1).batchWidth(), 1);
    unsetenv("HS_BATCH");
}

TEST(BatchDeathTest, EnvBatchRejectsGarbage)
{
    setenv("HS_BATCH", "fast", 1);
    EXPECT_EXIT(envBatchWidth(), testing::ExitedWithCode(1), "HS_BATCH");
    setenv("HS_BATCH", "0", 1);
    EXPECT_EXIT(envBatchWidth(), testing::ExitedWithCode(1), "HS_BATCH");
    setenv("HS_BATCH", "-2", 1);
    EXPECT_EXIT(envBatchWidth(), testing::ExitedWithCode(1), "HS_BATCH");
    setenv("HS_BATCH", "8x", 1);
    EXPECT_EXIT(envBatchWidth(), testing::ExitedWithCode(1), "HS_BATCH");
    unsetenv("HS_BATCH");
}

TEST(BatchDeathTest, SetBatchWidthRejectsNonPositive)
{
    ParallelRunner runner(1);
    EXPECT_EXIT(runner.setBatchWidth(0), testing::ExitedWithCode(1),
                "batch width");
    EXPECT_EXIT(runner.setBatchWidth(-3), testing::ExitedWithCode(1),
                "batch width");
}

} // namespace
