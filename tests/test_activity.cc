/** @file Unit tests for the activity counters and snapshots. */

#include <gtest/gtest.h>

#include "power/activity.hh"

namespace hs {
namespace {

TEST(Activity, RecordsPerThreadPerBlock)
{
    ActivityCounters ac(2);
    ac.record(0, Block::IntReg, 3);
    ac.record(1, Block::IntReg, 5);
    ac.record(0, Block::Dcache);
    EXPECT_EQ(ac.count(0, Block::IntReg), 3u);
    EXPECT_EQ(ac.count(1, Block::IntReg), 5u);
    EXPECT_EQ(ac.count(0, Block::Dcache), 1u);
    EXPECT_EQ(ac.count(1, Block::Dcache), 0u);
    EXPECT_EQ(ac.totalCount(Block::IntReg), 8u);
}

TEST(Activity, ResetZeroes)
{
    ActivityCounters ac(1);
    ac.record(0, Block::L2, 10);
    ac.reset();
    EXPECT_EQ(ac.count(0, Block::L2), 0u);
}

TEST(Activity, SnapshotDeltas)
{
    ActivityCounters ac(2);
    ActivityCounters::Snapshot snap(ac);
    ac.record(0, Block::IntReg, 4);
    EXPECT_EQ(snap.delta(0, Block::IntReg), 4u);
    snap.take();
    EXPECT_EQ(snap.delta(0, Block::IntReg), 0u);
    ac.record(0, Block::IntReg, 2);
    EXPECT_EQ(snap.delta(0, Block::IntReg), 2u);
}

TEST(Activity, IndependentSnapshots)
{
    // Two consumers at different cadences (energy model vs usage
    // monitor) must not interfere.
    ActivityCounters ac(1);
    ActivityCounters::Snapshot fast(ac), slow(ac);
    ac.record(0, Block::IntReg, 10);
    EXPECT_EQ(fast.delta(0, Block::IntReg), 10u);
    fast.take();
    ac.record(0, Block::IntReg, 5);
    EXPECT_EQ(fast.delta(0, Block::IntReg), 5u);
    EXPECT_EQ(slow.delta(0, Block::IntReg), 15u);
}

TEST(Activity, RejectsZeroThreads)
{
    EXPECT_DEATH(ActivityCounters ac(0), "thread");
}

} // namespace
} // namespace hs
