/**
 * @file
 * Golden-trace tests: the structured event tracer's output for the
 * shipped attack listings is locked down line for line.
 *
 * For each attacks/*.s listing co-scheduled with gcc, under both
 * stop-and-go and selective sedation, the DTM / thermal / episode
 * event sequence (rendered as JSON Lines) must match a checked-in
 * golden file byte for byte. The same runs must also be bit-identical
 * across --jobs 1 / --jobs 4 and with prefix sharing on or off —
 * RunResult::operator== covers the trace, so observability can never
 * fork from the physics.
 *
 * Regenerate the goldens after an intentional behaviour change with:
 *
 *     HS_REGOLDEN=1 ./build/tests/hs_tests \
 *         --gtest_filter='TraceGolden*'
 *
 * and review the diff like any other code change.
 */

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/runner.hh"
#include "sim/simulator.hh"
#include "trace/writers.hh"

namespace {

using namespace hs;

/** Repo-root prefix ("", "../", ...) that reaches attacks/. */
const char *
rootPrefix()
{
    static const char *prefix = [] () -> const char * {
        for (const char *p : {"", "../", "../../"}) {
            std::string probe =
                std::string(p) + "attacks/figure1_hammer.s";
            if (std::ifstream(probe).good())
                return p;
        }
        return nullptr;
    }();
    return prefix;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** The golden combinations: every shipped attack x both DTM policies. */
struct GoldenCase
{
    const char *attack; ///< file name under attacks/
    DtmMode dtm;
    const char *policy; ///< golden-file suffix
};

const GoldenCase kGoldenCases[] = {
    {"figure1_hammer.s", DtmMode::StopAndGo, "stopgo"},
    {"figure1_hammer.s", DtmMode::SelectiveSedation, "sedation"},
    {"figure2_two_phase.s", DtmMode::StopAndGo, "stopgo"},
    {"figure2_two_phase.s", DtmMode::SelectiveSedation, "sedation"},
    {"stealthy_burst.s", DtmMode::StopAndGo, "stopgo"},
    {"stealthy_burst.s", DtmMode::SelectiveSedation, "sedation"},
};

std::string
caseName(const GoldenCase &c)
{
    std::string stem(c.attack);
    stem = stem.substr(0, stem.rfind('.'));
    return stem + "_" + c.policy;
}

/**
 * One traced golden run: gcc (the victim, thread 0) sharing the core
 * with the attack listing (thread 1). The time scale is pinned — NOT
 * read from HS_SCALE — because the goldens encode cycle numbers.
 */
RunSpec
goldenSpec(const GoldenCase &c)
{
    ExperimentOptions opts;
    opts.timeScale = 400.0;
    opts.dtm = c.dtm;

    RunSpec s;
    s.opts = opts;
    s.traceEvents = true;
    s.workloads.push_back(WorkloadSpec::spec("gcc"));
    std::string path = std::string(rootPrefix()) + "attacks/" + c.attack;
    s.workloads.push_back(WorkloadSpec::assembly(
        std::string("attacks/") + c.attack, readFile(path)));
    s.label = caseName(c);
    return s;
}

/** Golden files hold only the policy-visible sequence. */
constexpr uint32_t kGoldenMask = traceCategoryBit(TraceCategory::Dtm) |
                                 traceCategoryBit(TraceCategory::Thermal) |
                                 traceCategoryBit(TraceCategory::Episode);

std::string
renderGolden(const RunResult &r)
{
    std::stringstream ss;
    writeTraceJsonl(ss, r.traceEvents, kGoldenMask);
    return ss.str();
}

/** Cold reference results, memoised across tests in this file. */
const RunResult &
cachedColdRun(const RunSpec &spec)
{
    static std::map<std::string, RunResult> cache;
    auto it = cache.find(spec.canonicalKey());
    if (it == cache.end())
        it = cache.emplace(spec.canonicalKey(),
                           executeRunSpec(spec)).first;
    return it->second;
}

class TraceGolden : public ::testing::TestWithParam<GoldenCase>
{
};

TEST_P(TraceGolden, MatchesCheckedInGolden)
{
    ASSERT_NE(rootPrefix(), nullptr)
        << "cannot locate attacks/ from test cwd";
    const GoldenCase &c = GetParam();
    RunSpec spec = goldenSpec(c);
    std::string got = renderGolden(cachedColdRun(spec));
    EXPECT_FALSE(got.empty()) << "golden run emitted no events";

    std::string golden_path = std::string(rootPrefix()) +
                              "tests/golden/" + caseName(c) + ".jsonl";
    if (std::getenv("HS_REGOLDEN")) {
        std::ofstream out(golden_path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
        out << got;
        GTEST_SKIP() << "regenerated " << golden_path;
    }

    ASSERT_TRUE(std::ifstream(golden_path).good())
        << "missing golden " << golden_path
        << " — generate with HS_REGOLDEN=1";
    EXPECT_EQ(readFile(golden_path), got)
        << "trace diverged from " << golden_path
        << "; if intentional, regenerate with HS_REGOLDEN=1 and "
           "review the diff";
}

INSTANTIATE_TEST_SUITE_P(
    Attacks, TraceGolden, ::testing::ValuesIn(kGoldenCases),
    [] (const ::testing::TestParamInfo<GoldenCase> &info) {
        return caseName(info.param);
    });

// --- the paper's sedation storyline, as an ordered event sequence ------

/**
 * Section 3.2's defence, observed through the tracer: the attack heats
 * the register file (an episode rise begins), the 356 K upper
 * threshold trips, the offender — and only the offender — is sedated,
 * the block cools through the 355 K lower threshold, and the thread is
 * released. The golden file freezes the exact cycles; this test
 * asserts the causal order itself, so it keeps meaning even when the
 * goldens are regenerated.
 */
TEST(TraceSequence, SedationStorylineOnHammerAttack)
{
    ASSERT_NE(rootPrefix(), nullptr);
    RunSpec spec = goldenSpec(kGoldenCases[1]); // figure1 + sedation
    const RunResult &r = cachedColdRun(spec);
    ASSERT_FALSE(r.traceEvents.empty());
    EXPECT_EQ(r.traceEventsDropped, 0u);

    const TraceKind storyline[] = {
        TraceKind::EpisodeRiseStart, TraceKind::SedUpperCross,
        TraceKind::ThreadSedated, TraceKind::SedLowerCross,
        TraceKind::ThreadReleased,
    };
    size_t want = 0;
    for (const TraceEvent &e : r.traceEvents) {
        if (want < std::size(storyline) && e.kind == storyline[want]) {
            if (e.kind == TraceKind::ThreadSedated ||
                e.kind == TraceKind::ThreadReleased) {
                // The offender is thread 1 (the attack listing), never
                // the innocent gcc victim on thread 0.
                EXPECT_EQ(e.thread, 1);
            }
            ++want;
        }
        // Sedation must never touch the victim.
        if (e.kind == TraceKind::ThreadSedated)
            EXPECT_NE(e.thread, 0);
    }
    EXPECT_EQ(want, std::size(storyline))
        << "matched only " << want << " of the 5 storyline events";
}

// --- bit-identity across execution strategies --------------------------

/**
 * The traced results — events included, via RunResult::operator== —
 * must not depend on how the engine schedules the runs: worker count
 * and prefix sharing are performance knobs, not semantics.
 */
TEST(TraceBitIdentity, SameAcrossJobsAndPrefixSharing)
{
    ASSERT_NE(rootPrefix(), nullptr);
    std::vector<RunSpec> specs;
    std::vector<RunResult> cold;
    for (const GoldenCase &c : kGoldenCases) {
        specs.push_back(goldenSpec(c));
        cold.push_back(cachedColdRun(specs.back()));
    }

    ParallelRunner serial(1);
    serial.setPrefixSharing(true);
    std::vector<RunResult> jobs1 = serial.run(specs);

    ParallelRunner wide(4);
    wide.setPrefixSharing(true);
    std::vector<RunResult> jobs4 = wide.run(specs);

    ParallelRunner unshared(2);
    unshared.setPrefixSharing(false);
    std::vector<RunResult> noprefix = unshared.run(specs);

    for (size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(cold[i], jobs1[i]) << specs[i].label << " (jobs 1)";
        EXPECT_EQ(cold[i], jobs4[i]) << specs[i].label << " (jobs 4)";
        EXPECT_EQ(cold[i], noprefix[i])
            << specs[i].label << " (prefix off)";
    }
}

/**
 * A traced cell that actually forks from a shared warm-up snapshot
 * (the attack cells above diverge at the first sensor sample, so they
 * fall back to cold) must still reproduce the cold trace bit for bit:
 * the tracer and the online episode detector ride in the snapshot.
 */
TEST(TraceBitIdentity, PrefixForkedTraceMatchesCold)
{
    ExperimentOptions opts;
    opts.timeScale = 2000.0;
    opts.dtm = DtmMode::SelectiveSedation;

    std::vector<RunSpec> specs;
    for (double upper : {356.0, 357.0}) {
        ExperimentOptions o = opts;
        o.upperThreshold = upper;
        o.lowerThreshold = upper - 1.0;
        specs.push_back(
            specPairSpec("gcc", "mesa", o).withTraceEvents(true));
    }

    std::vector<RunResult> cold;
    for (const RunSpec &s : specs)
        cold.push_back(executeRunSpec(s));

    ParallelRunner runner(2);
    runner.setPrefixSharing(true);
    std::vector<RunResult> shared = runner.run(specs);
    EXPECT_GE(runner.prefixStats().forkedRuns, 1u)
        << "sweep was expected to prefix-share";

    for (size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(cold[i], shared[i]) << "cell " << i;
        // The monitor sampled during the shared prefix, so the forked
        // trace must contain those inherited events too.
        EXPECT_FALSE(shared[i].traceEvents.empty()) << "cell " << i;
    }
}

// --- exporters over a real run -----------------------------------------

TEST(TraceExport, ChromeTraceContainsSedationSpans)
{
    ASSERT_NE(rootPrefix(), nullptr);
    RunSpec spec = goldenSpec(kGoldenCases[1]); // figure1 + sedation
    const RunResult &r = cachedColdRun(spec);

    std::stringstream ss;
    writeChromeTrace(ss, r.traceEvents, /*cycles_per_us=*/4000.0 / 400.0);
    std::string doc = ss.str();
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"sedated\""), std::string::npos);
    EXPECT_NE(doc.find("\"ewma_t1\""), std::string::npos);
    EXPECT_NE(doc.find("\"heat_episode\""), std::string::npos);
}

} // namespace
