/** @file Tests for selective throttling — the per-thread slow-down
 *  alternative to full sedation (Section 3.2 discusses slowing the
 *  problematic thread in general; full fetch-stop is the paper's
 *  concrete mechanism). */

#include <gtest/gtest.h>

#include "isa/assembler.hh"
#include "sim/experiment.hh"
#include "smt/pipeline.hh"

namespace hs {
namespace {

TEST(Throttling, PipelineThrottleSlowsOneThread)
{
    Program a = assemble("top:\naddi r1, r1, 1\njmp top\n");
    Program b = assemble("top:\naddi r2, r2, 1\njmp top\n");
    SmtParams params;
    params.numThreads = 2;
    Pipeline pipe(params);
    pipe.setThreadProgram(0, &a);
    pipe.setThreadProgram(1, &b);
    pipe.setThreadThrottle(1, 4);
    for (int i = 0; i < 40000; ++i)
        pipe.tick();
    // Thread 1 fetches 1/4 of the time; thread 0 fills the gap.
    EXPECT_GT(pipe.committed(0), 2 * pipe.committed(1));
    EXPECT_GT(pipe.committed(1), 1000u) << "throttled, not stopped";
    EXPECT_GT(pipe.thread(1).sedationCycles, 20000u);

    pipe.setThreadThrottle(1, 1);
    uint64_t before = pipe.committed(1);
    for (int i = 0; i < 20000; ++i)
        pipe.tick();
    EXPECT_GT(pipe.committed(1) - before, 5000u) << "restored";
}

TEST(Throttling, ThrottleFactorOneIsNoOp)
{
    Program a = assemble("top:\naddi r1, r1, 1\njmp top\n");
    SmtParams params;
    params.numThreads = 1;
    Pipeline full(params), noop(params);
    full.setThreadProgram(0, &a);
    noop.setThreadProgram(0, &a);
    noop.setThreadThrottle(0, 1);
    for (int i = 0; i < 20000; ++i) {
        full.tick();
        noop.tick();
    }
    EXPECT_EQ(full.committed(0), noop.committed(0));
}

TEST(Throttling, SedationPolicyCanThrottleInstead)
{
    // Selective throttling contains the attack while letting the
    // culprit retain some throughput.
    ExperimentOptions opts;
    opts.timeScale = 100.0;
    opts.dtm = DtmMode::SelectiveSedation;
    SimConfig cfg = makeSimConfig(opts);
    cfg.sedation.throttleFactor = 4;
    Simulator sim(cfg);
    sim.setWorkload(0, synthesizeSpec("gcc"));
    sim.setWorkload(1, makeVariant(2, makeMaliciousParams(opts)));
    RunResult throttled = sim.run();

    // Contained: no (or almost no) emergencies.
    EXPECT_LE(throttled.emergencies, 2u);
    ASSERT_FALSE(throttled.sedationEvents.empty());
    for (const SedationEvent &e : throttled.sedationEvents)
        EXPECT_EQ(e.thread, 1);

    // Compare with full sedation: over a whole quantum the two
    // mechanisms trade instantaneous rate against engagement length
    // (throttling runs slower but stays engaged longer), so total
    // attacker progress ends up in the same ballpark while both keep
    // the chip safe.
    SimConfig full_cfg = makeSimConfig(opts);
    Simulator full(full_cfg);
    full.setWorkload(0, synthesizeSpec("gcc"));
    full.setWorkload(1, makeVariant(2, makeMaliciousParams(opts)));
    RunResult stopped = full.run();
    EXPECT_LE(stopped.emergencies, 2u);
    double ratio = static_cast<double>(throttled.threads[1].committed) /
                   static_cast<double>(
                       std::max<uint64_t>(1,
                                          stopped.threads[1].committed));
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.0);
}

TEST(Throttling, VictimStillRecoversUnderThrottling)
{
    ExperimentOptions opts;
    opts.timeScale = 100.0;
    opts.dtm = DtmMode::StopAndGo;
    RunResult solo = runSolo("gcc", opts);
    RunResult attacked = runWithVariant("gcc", 2, opts);

    opts.dtm = DtmMode::SelectiveSedation;
    SimConfig cfg = makeSimConfig(opts);
    cfg.sedation.throttleFactor = 4;
    Simulator sim(cfg);
    sim.setWorkload(0, synthesizeSpec("gcc"));
    sim.setWorkload(1, makeVariant(2, makeMaliciousParams(opts)));
    RunResult throttled = sim.run();

    EXPECT_GT(throttled.threads[0].ipc, attacked.threads[0].ipc);
    EXPECT_GT(throttled.threads[0].ipc, 0.75 * solo.threads[0].ipc);
}

} // namespace
} // namespace hs
