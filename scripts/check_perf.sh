#!/bin/sh
# Performance regression gate for the simulation hot path.
#
# Builds Release, runs bench_hotpath at a smoke time scale, and fails
# if any row's throughput (Mcycles of simulated time per host second)
# regresses more than 20% below the checked-in baseline in
# scripts/perf_baseline.json.
#
# Usage: scripts/check_perf.sh
#
# Environment:
#   HS_SCALE         time scale for the smoke run (default 200: ~2.5 M
#                    cycles per quantum, a few seconds total)
#   HS_PERF_REFRESH  set to 1 to rewrite perf_baseline.json with the
#                    current machine's numbers instead of gating. Do
#                    this once per machine (or after an intentional
#                    perf change) — baselines are machine-specific.
#
# The gate compares each labelled row (tick / thermal / stalled /
# matrix_cold / matrix_prefix / matrix_batched / matrix_store_warm)
# independently so a regression can be attributed to the pipeline, the
# thermal kernels, the stalled fast-forward path, or the experiment
# engine's prefix sharing / lockstep batching / persistent store.
#
# Registered with ctest as the opt-in "perf" label (ctest -L perf);
# exits 77 (ctest SKIP) when no baseline exists on this machine.

set -e
cd "$(dirname "$0")/.."

SCALE="${HS_SCALE:-200}"
BASELINE="scripts/perf_baseline.json"
THRESHOLD_PCT=20

# Baselines are machine-specific and not checked in: without one there
# is nothing to gate against, so skip (ctest SKIP_RETURN_CODE) before
# paying for the build and the bench run.
if [ "${HS_PERF_REFRESH:-0}" != "1" ] && [ ! -f "$BASELINE" ]; then
    echo "$BASELINE missing; run HS_PERF_REFRESH=1 $0 once on this" \
        "machine to create it — skipping the gate."
    exit 77
fi

if [ ! -d build ]; then
    cmake -S . -B build -DCMAKE_BUILD_TYPE=Release > /dev/null
fi
cmake --build build --target bench_hotpath -j"$(nproc)" > /dev/null

echo "running bench_hotpath at HS_SCALE=$SCALE (HS_JOBS=1)..."
OUT="$(HS_SCALE=$SCALE HS_JOBS=1 ./build/bench/bench_hotpath 2>/dev/null)"
# Throughput rows only (the matrix_speedup line carries no mcps).
LINES="$(printf '%s\n' "$OUT" | grep '^\[hotpath\].*mcps=')"
[ -n "$LINES" ] || { echo "no [hotpath] lines in bench output" >&2; exit 1; }

if [ "${HS_PERF_REFRESH:-0}" = "1" ]; then
    {
        echo "{"
        echo "  \"hs_scale\": $SCALE,"
        echo "  \"threshold_pct\": $THRESHOLD_PCT,"
        printf '%s\n' "$LINES" | awk '
            { for (i = 1; i <= NF; ++i) {
                  if ($i ~ /^label=/) { sub(/^label=/, "", $i); l = $i }
                  if ($i ~ /^mcps=/)  { sub(/^mcps=/, "", $i);  m = $i }
              }
              rows[++n] = "  \"" l "\": " m }
            END { for (i = 1; i <= n; ++i)
                      print rows[i] (i < n ? "," : "") }'
        echo "}"
    } > "$BASELINE"
    echo "baseline refreshed:"
    cat "$BASELINE"
    exit 0
fi

FAIL=0
for LABEL in tick thermal stalled matrix_cold matrix_prefix \
             matrix_batched matrix_store_warm; do
    NOW="$(printf '%s\n' "$LINES" |
        awk -v l="$LABEL" '
            { for (i = 1; i <= NF; ++i) {
                  if ($i == "label=" l) found = 1
                  if ($i ~ /^mcps=/) m = substr($i, 6)
              }
              if (found) { print m; exit } found = 0 }')"
    BASE="$(awk -v l="\"$LABEL\":" '$1 == l { gsub(/,/, "", $2); print $2 }' \
        "$BASELINE")"
    if [ -z "$NOW" ] || [ -z "$BASE" ]; then
        echo "FAIL  $LABEL: missing measurement or baseline" >&2
        FAIL=1
        continue
    fi
    OK="$(awk -v now="$NOW" -v base="$BASE" -v pct="$THRESHOLD_PCT" \
        'BEGIN { print (now >= base * (100 - pct) / 100) ? 1 : 0 }')"
    PCT="$(awk -v now="$NOW" -v base="$BASE" \
        'BEGIN { printf "%+.1f", (now / base - 1) * 100 }')"
    if [ "$OK" = "1" ]; then
        echo "OK    $LABEL: $NOW Mc/s vs baseline $BASE ($PCT%)"
    else
        echo "FAIL  $LABEL: $NOW Mc/s vs baseline $BASE ($PCT%," \
            "gate -$THRESHOLD_PCT%)" >&2
        FAIL=1
    fi
done

if [ "$FAIL" != "0" ]; then
    echo "hot-path throughput regressed; if intentional, refresh with" \
        "HS_PERF_REFRESH=1 $0" >&2
    exit 1
fi
echo "hot-path throughput within $THRESHOLD_PCT% of baseline."

# Refresh the machine-readable snapshot alongside a passing gate run
# (best effort — the gate verdict above is what matters).
sh scripts/bench_snapshot.sh || echo "bench snapshot failed" >&2
