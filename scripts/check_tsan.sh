#!/bin/sh
# Build the tree under ThreadSanitizer and run the parallel-engine
# tests. Guards the ParallelRunner / ResultStore / prefix-sharing
# concurrency against data races; a clean pass prints TSAN_CLEAN.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
#
# Registered with ctest as the opt-in "tsan" label. The full
# instrumented build + run takes many minutes, so it only executes
# when HS_TSAN=1 is set (HS_TSAN=1 ctest -L tsan); otherwise it exits
# 77 (ctest SKIP).
set -e
cd "$(dirname "$0")/.."
BUILD="${1:-build-tsan}"

if [ "${HS_TSAN:-0}" != "1" ]; then
    echo "HS_TSAN not set; skipping the ThreadSanitizer gate" \
        "(run with HS_TSAN=1 to enable)."
    exit 77
fi

cmake -B "$BUILD" -S . -DHS_SANITIZE=thread >/dev/null
cmake --build "$BUILD" -j"$(nproc)" --target hs_tests
# Remote* exercises the coordinator/worker threads, Fault*/Chaos* the
# fault-injection layer under concurrent firing (a small seed sweep —
# the full 100-seed sweep belongs to the uninstrumented suite).
HS_CHAOS_SEEDS=8 TSAN_OPTIONS="halt_on_error=1" \
    "./$BUILD/tests/hs_tests" \
    --gtest_filter='Runner*:RunSpec*:RunnerDeathTest*:Snapshot*:Remote*:Fault*:Chaos*:Manifest*:Campaign*'
echo TSAN_CLEAN
