#!/bin/sh
# Build the tree under ThreadSanitizer and run the parallel-engine
# tests. Guards the ParallelRunner / ResultStore concurrency against
# data races; a clean pass prints TSAN_CLEAN.
#
# Usage: scripts/check_tsan.sh [build-dir]   (default: build-tsan)
set -e
cd "$(dirname "$0")/.."
BUILD="${1:-build-tsan}"

cmake -B "$BUILD" -S . -DHS_SANITIZE=thread >/dev/null
cmake --build "$BUILD" -j"$(nproc)" --target hs_tests
TSAN_OPTIONS="halt_on_error=1" \
    "./$BUILD/tests/hs_tests" \
    --gtest_filter='Runner*:RunSpec*:RunnerDeathTest*'
echo TSAN_CLEAN
