#!/bin/sh
# Emit results/BENCH_PR8.json: a machine-readable snapshot of the
# throughput surfaces this repo cares about.
#
#  - "hotpath_mcps": per-cost-centre throughput rows from
#    bench_hotpath (tick / thermal / stalled / matrix_cold /
#    matrix_prefix / matrix_batched / matrix_store_warm, Mcycles of
#    simulated time per host second)
#  - "stepbatch_mups": the multi-RHS thermal kernel at lane widths
#    2/8/32 (millions of node-lane updates per host second)
#  - "matrix": cells/sec for every experiment-engine bench that has a
#    results/<bench>.txt transcript, parsed from the "[engine] N runs
#    ... in S s" summary each bench prints
#
# Usage: scripts/bench_snapshot.sh
#
# Environment:
#   HS_SCALE  time scale for the bench_hotpath smoke run (default 200)
#
# Called at the end of run_benches.sh and scripts/check_perf.sh so a
# fresh snapshot rides along with every bench sweep; safe to run on
# its own at any time. Numbers are machine-specific — the snapshot is
# for tracking trends on one box, not for cross-machine comparison.

set -e
cd "$(dirname "$0")/.."

SCALE="${HS_SCALE:-200}"
OUT="results/BENCH_PR8.json"
mkdir -p results

if [ ! -d build ]; then
    cmake -S . -B build -DCMAKE_BUILD_TYPE=Release > /dev/null
fi
cmake --build build --target bench_hotpath -j"$(nproc)" > /dev/null

echo "bench_snapshot: running bench_hotpath at HS_SCALE=$SCALE..."
ROWS="$(HS_SCALE=$SCALE HS_JOBS=1 ./build/bench/bench_hotpath \
    2>/dev/null | grep '^\[hotpath\]' || true)"
HOTPATH="$(printf '%s\n' "$ROWS" | grep 'mcps=' || true)"
STEPBATCH="$(printf '%s\n' "$ROWS" | grep 'mups=' || true)"
[ -n "$HOTPATH" ] || {
    echo "bench_snapshot: no [hotpath] rows in bench output" >&2
    exit 1
}

{
    echo "{"
    echo "  \"hs_scale\": $SCALE,"
    echo "  \"hotpath_mcps\": {"
    printf '%s\n' "$HOTPATH" | awk '
        { for (i = 1; i <= NF; ++i) {
              if ($i ~ /^label=/) { sub(/^label=/, "", $i); l = $i }
              if ($i ~ /^mcps=/)  { sub(/^mcps=/, "", $i);  m = $i }
          }
          rows[++n] = "    \"" l "\": " m }
        END { for (i = 1; i <= n; ++i)
                  print rows[i] (i < n ? "," : "") }'
    echo "  },"
    echo "  \"stepbatch_mups\": {"
    printf '%s\n' "$STEPBATCH" | awk '
        { for (i = 1; i <= NF; ++i) {
              if ($i ~ /^label=/) { sub(/^label=/, "", $i); l = $i }
              if ($i ~ /^mups=/)  { sub(/^mups=/, "", $i);  m = $i }
          }
          rows[++n] = "    \"" l "\": " m }
        END { for (i = 1; i <= n; ++i)
                  print rows[i] (i < n ? "," : "") }'
    echo "  },"
    echo "  \"matrix\": {"
    # One entry per bench transcript that logged an engine summary;
    # the last [engine] line of a transcript describes its full matrix.
    first=1
    for f in results/bench_*.txt; do
        [ -f "$f" ] || continue
        LINE="$(grep '^\[engine\] ' "$f" | tail -1 || true)"
        [ -n "$LINE" ] || continue
        NAME="$(basename "$f" .txt)"
        ROW="$(printf '%s\n' "$LINE" | awk -v name="$NAME" '
            { runs = $2
              cached = $4; gsub(/\(/, "", cached)
              workers = $7
              secs = $10
              cps = secs > 0 ? runs / secs : 0
              printf "    \"%s\": {\"runs\": %s, \"cached\": %s, " \
                     "\"workers\": %s, \"seconds\": %s, " \
                     "\"cells_per_sec\": %.4g}", \
                     name, runs, cached, workers, secs, cps }')"
        [ "$first" = "1" ] || echo ","
        printf '%s' "$ROW"
        first=0
    done
    [ "$first" = "1" ] || echo ""
    echo "  }"
    echo "}"
} > "$OUT"
echo "bench_snapshot: wrote $OUT"
