/**
 * @file
 * hs_report — self-contained HTML dashboard from hs_run artifacts.
 *
 * Ingests the structured outputs one traced run already produces
 * (`hs_run --json FILE --trace FILE.jsonl`) and renders the paper's
 * headline figures as a single HTML file with inline SVG and CSS — no
 * external assets, no JavaScript dependencies, deterministic bytes for
 * identical inputs (no timestamps), so reports diff cleanly and can be
 * archived next to the results they describe.
 *
 * Sections:
 *  - summary tiles (peak temperature, emergencies, duty cycle, IPC)
 *  - floorplan heatmap of peak per-block temperature (EV6 geometry)
 *  - temperature time series with the 355/355.5..356/358 K thresholds
 *  - DTM activity Gantt strip (stop-and-go stalls, sedation spans,
 *    fetch gating, heat-episode phases) from the JSONL event trace
 *  - per-thread IPC bars
 *  - the duty-cycle table (heat / (heat + cool)) per run
 *  - run-health metrics (counters, gauges, histogram summaries)
 *  - fleet timeline (from hs_run --events): per-lane cell Gantt with
 *    fault-fire markers, lane utilization / straggler table, cell
 *    source breakdown and per-worker telemetry rollups
 *
 * Usage:
 *   hs_report [options]
 * Options (values as "--opt VALUE" or "--opt=VALUE"):
 *   --json FILE   matrix JSON from hs_run --json (repeatable)
 *   --trace FILE  JSONL event trace from hs_run --trace (repeatable)
 *   --events FILE campaign timeline from hs_run --events (first file
 *                 is rendered; see docs/OBSERVABILITY.md)
 *   --out FILE    output HTML path (default hs_report.html, "-" =
 *                 stdout)
 *   --title TEXT  report title (default "Heat Stroke run report")
 *
 * Every argument must parse exactly: unknown options, missing values
 * and trailing garbage all exit 2 via usage().
 */

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/blocks.hh"
#include "common/json.hh"
#include "common/log.hh"
#include "thermal/floorplan.hh"

namespace {

using namespace hs;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--json FILE]... [--trace FILE]... "
                 "[--events FILE]...\n"
                 "       [--out FILE] [--title TEXT]\n",
                 argv0);
    std::exit(2);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot read '%s'", path.c_str());
    std::stringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Escape text for HTML element content and attribute values. */
std::string
esc(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '&': out += "&amp;"; break;
          case '<': out += "&lt;"; break;
          case '>': out += "&gt;"; break;
          case '"': out += "&quot;"; break;
          default: out += c;
        }
    }
    return out;
}

/** printf-style formatting into a std::string. */
std::string
fmt(const char *f, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof(buf), f, ap);
    va_end(ap);
    return buf;
}

/** Compact cycle count: "10.0M", "250K", "900". */
std::string
cyc(double c)
{
    if (c >= 1e6)
        return fmt("%.4gM", c / 1e6);
    if (c >= 1e3)
        return fmt("%.4gK", c / 1e3);
    return fmt("%.0f", c);
}

// ---------------------------------------------------------------------
// Input views
// ---------------------------------------------------------------------

/** Histogram summary as written by Histogram::writeJson. */
struct HistStat
{
    bool ok = false;
    double count = 0, sum = 0, min = 0, max = 0, mean = 0;
    double p50 = 0, p90 = 0, p99 = 0;
};

HistStat
histFrom(const json::Value *v)
{
    HistStat h;
    if (!v || !v->isObject())
        return h;
    h.ok = true;
    h.count = v->numberOr("count", 0);
    h.sum = v->numberOr("sum", 0);
    h.min = v->numberOr("min", 0);
    h.max = v->numberOr("max", 0);
    h.mean = v->numberOr("mean", 0);
    h.p50 = v->numberOr("p50", 0);
    h.p90 = v->numberOr("p90", 0);
    h.p99 = v->numberOr("p99", 0);
    return h;
}

struct ThreadRow
{
    int index = 0;
    int core = 0;
    std::string program;
    double ipc = 0;
    double normalCycles = 0, coolingCycles = 0, sedationCycles = 0;
};

/** Per-core slice of a multi-core run (the "cores" result array). */
struct CoreView
{
    int core = 0;
    double peak = 0, emergencies = 0, stopGo = 0;
    std::vector<std::pair<std::string, double>> blockPeaks;
};

struct TempPoint
{
    double cycle = 0, intreg = 0, hottest = 0, sink = 0;
};

/** One matrix cell, flattened out of the hs_run --json document. */
struct RunView
{
    std::string label;
    std::string source;
    double cycles = 0, peak = 0, emergencies = 0, stopGo = 0;
    int numCores = 1;
    std::vector<ThreadRow> threads;
    std::vector<std::pair<std::string, double>> blockPeaks;
    std::vector<CoreView> coreViews; ///< present only for N > 1 dies
    std::vector<TempPoint> temps;
    HistStat heat, cool, sedation;
};

/** Spans and duty statistics recovered from one JSONL event trace. */
struct Span
{
    double a = 0, b = 0;
};

struct TraceView
{
    std::string source;
    // Multi-core traces stamp events with a core id (absent = core 0);
    // spans are keyed so each core gets its own Gantt rows.
    std::map<int, std::vector<Span>> stall;
    std::map<std::pair<int, int>, std::vector<Span>> sedated;
    std::map<std::pair<int, int>, std::vector<Span>> gated;
    std::map<int, std::vector<Span>> heating, cooling;
    std::vector<double> dutyValues;
    double maxCycle = 0;
    int maxCore = 0;

    bool multiCore() const { return maxCore > 0; }
};

// --- fleet timeline (hs_run --events) --------------------------------

/** One cell's life on one execution lane, started -> resolved. */
struct FleetCell
{
    int lane = -1;
    size_t index = 0;
    std::string label;
    std::string outcome; ///< finished/remote_finished/cache_hit/disk_hit
    double start = 0, end = 0;
};

/** Per-worker rollup folded from remote job_telemetry/heartbeat
 *  events. */
struct FleetWorker
{
    double jobs = 0, heartbeats = 0;
    double simSeconds = 0, restoreSeconds = 0;
    double snapshotBytes = 0, cachedSnapshots = 0;
    double peakRssKb = 0;
};

/** Everything the fleet sections need from one events.jsonl. */
struct FleetView
{
    std::string source;
    std::vector<FleetCell> cells;
    std::map<int, std::vector<const FleetCell *>> lanes;
    std::map<std::string, FleetWorker> workers;
    std::vector<std::pair<double, std::string>> faultFires;
    double queued = 0, resumedStored = 0;
    double maxT = 0;

    bool loaded() const { return !source.empty(); }
};

void
loadFleet(const std::string &path, FleetView &out)
{
    out.source = path;
    std::ifstream in(path);
    if (!in)
        fatal("cannot read '%s'", path.c_str());
    std::string line;
    size_t lineno = 0;
    // Cells in flight: submission index -> started timestamp.
    std::map<size_t, double> open;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::string err;
        json::Value ev = json::parse(line, &err);
        if (!err.empty())
            fatal("%s:%zu: %s", path.c_str(), lineno, err.c_str());
        double t = ev.numberOr("t", 0);
        out.maxT = std::max(out.maxT, t);
        std::string comp = ev.stringOr("comp", "");
        std::string kind = ev.stringOr("event", "");
        if (comp == "runner") {
            size_t index = static_cast<size_t>(ev.numberOr("index", 0));
            if (kind == "queued") {
                ++out.queued;
            } else if (kind == "started") {
                open[index] = t;
            } else if (kind == "finished" ||
                       kind == "remote_finished" ||
                       kind == "cache_hit" || kind == "disk_hit") {
                FleetCell c;
                c.lane = static_cast<int>(ev.numberOr("lane", -1));
                c.index = index;
                c.label = ev.stringOr("label", "");
                c.outcome = kind;
                c.end = t;
                auto it = open.find(index);
                // Store hits resolve without a Started event when the
                // cell never reached a lane; render them as instants.
                c.start = it != open.end() ? it->second : t;
                if (it != open.end())
                    open.erase(it);
                out.cells.push_back(std::move(c));
            } else if (kind == "campaign_resumed") {
                out.resumedStored = ev.numberOr("stored", 0);
            }
        } else if (comp == "remote") {
            if (kind == "job_telemetry") {
                FleetWorker &w = out.workers[ev.stringOr("worker", "?")];
                w.jobs += 1;
                w.simSeconds += ev.numberOr("sim_s", 0);
                w.restoreSeconds += ev.numberOr("restore_s", 0);
                w.snapshotBytes += ev.numberOr("snapshot_bytes", 0);
                const json::Value *cached = ev.find("snapshot_cached");
                if (cached && cached->isBool() && cached->boolean())
                    w.cachedSnapshots += 1;
                w.peakRssKb =
                    std::max(w.peakRssKb, ev.numberOr("rss_kb", 0));
            } else if (kind == "heartbeat") {
                out.workers[ev.stringOr("worker", "?")].heartbeats += 1;
            }
        } else if (comp == "fault" && kind == "fire") {
            out.faultFires.emplace_back(t, ev.stringOr("site", "?"));
        }
    }
    for (const FleetCell &c : out.cells)
        out.lanes[c.lane].push_back(&c);
}

void
loadMatrix(const std::string &path, std::vector<RunView> &out,
           std::vector<std::pair<std::string, json::Value>> &metrics)
{
    std::string err;
    json::Value doc = json::parse(readFile(path), &err);
    if (!err.empty())
        fatal("%s: %s", path.c_str(), err.c_str());
    const json::Value *runs = doc.find("runs");
    if (!runs || !runs->isArray())
        fatal("%s: no \"runs\" array (is this hs_run --json output?)",
              path.c_str());
    for (const json::Value &run : runs->array()) {
        RunView v;
        v.source = path;
        v.label = run.stringOr("label", "run");
        const json::Value *r = run.find("result");
        if (!r || !r->isObject())
            continue;
        v.cycles = r->numberOr("cycles", 0);
        v.peak = r->numberOr("peak_temp_K", 0);
        v.emergencies = r->numberOr("emergencies", 0);
        v.stopGo = r->numberOr("stop_and_go_triggers", 0);
        if (const json::Value *threads = r->find("threads");
            threads && threads->isArray()) {
            for (const json::Value &t : threads->array()) {
                ThreadRow tr;
                tr.index = static_cast<int>(t.numberOr("thread", 0));
                tr.core = static_cast<int>(t.numberOr("core", 0));
                tr.program = t.stringOr("program", "?");
                tr.ipc = t.numberOr("ipc", 0);
                tr.normalCycles = t.numberOr("normal_cycles", 0);
                tr.coolingCycles = t.numberOr("cooling_cycles", 0);
                tr.sedationCycles = t.numberOr("sedation_cycles", 0);
                v.threads.push_back(tr);
            }
        }
        if (const json::Value *blocks = r->find("peak_per_block_K");
            blocks && blocks->isObject()) {
            for (const auto &[name, val] : blocks->object())
                if (val.isNumber())
                    v.blockPeaks.emplace_back(name, val.number());
        }
        if (const json::Value *cores = r->find("cores");
            cores && cores->isArray()) {
            for (const json::Value &c : cores->array()) {
                CoreView cv;
                cv.core = static_cast<int>(c.numberOr("core", 0));
                cv.peak = c.numberOr("peak_temp_K", 0);
                cv.emergencies = c.numberOr("emergencies", 0);
                cv.stopGo = c.numberOr("stop_and_go_triggers", 0);
                if (const json::Value *b = c.find("peak_per_block_K");
                    b && b->isObject()) {
                    for (const auto &[name, val] : b->object())
                        if (val.isNumber())
                            cv.blockPeaks.emplace_back(name,
                                                       val.number());
                }
                v.coreViews.push_back(std::move(cv));
            }
            v.numCores =
                std::max<int>(1, static_cast<int>(v.coreViews.size()));
        }
        if (const json::Value *h = r->find("histograms");
            h && h->isObject()) {
            v.heat = histFrom(h->find("sim.episode_heat_cycles"));
            v.cool = histFrom(h->find("sim.episode_cool_cycles"));
            v.sedation = histFrom(h->find("sim.sedation_span_cycles"));
        }
        if (const json::Value *tt = r->find("temp_trace");
            tt && tt->isArray()) {
            for (const json::Value &s : tt->array()) {
                TempPoint p;
                p.cycle = s.numberOr("cycle", 0);
                p.intreg = s.numberOr("intreg_K", 0);
                p.hottest = s.numberOr("hottest_K", 0);
                p.sink = s.numberOr("sink_K", 0);
                v.temps.push_back(p);
            }
        }
        out.push_back(std::move(v));
    }
    // Keep the first matrix's metrics object: when several are given
    // they normally come from the same process anyway.
    if (metrics.empty())
        if (const json::Value *m = doc.find("metrics"); m && m->isObject())
            metrics = m->object();
}

void
loadTrace(const std::string &path, TraceView &out)
{
    out.source = path;
    std::ifstream in(path);
    if (!in)
        fatal("cannot read '%s'", path.c_str());
    std::string line;
    size_t lineno = 0;
    // Open-span bookkeeping, keyed per core (and per thread where the
    // event carries one): -1 means "not currently open".
    std::map<int, double> stallStart;
    struct EpisodeOpen { double heat = -1, peak = -1; };
    std::map<int, EpisodeOpen> episode;
    std::map<std::pair<int, int>, double> sedStart, gateStart;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::string err;
        json::Value ev = json::parse(line, &err);
        if (!err.empty())
            fatal("%s:%zu: %s", path.c_str(), lineno, err.c_str());
        double cycle = ev.numberOr("cycle", 0);
        out.maxCycle = std::max(out.maxCycle, cycle);
        std::string kind = ev.stringOr("kind", "");
        int thread = static_cast<int>(ev.numberOr("thread", -1));
        // The writer omits "core" on core 0 to keep single-core
        // traces byte-identical to the pre-topology format.
        int core = static_cast<int>(ev.numberOr("core", 0));
        out.maxCore = std::max(out.maxCore, core);
        std::pair<int, int> slot{core, thread};
        if (kind == "global_stall_on") {
            stallStart[core] = cycle;
        } else if (kind == "global_stall_off") {
            auto it = stallStart.find(core);
            if (it != stallStart.end()) {
                out.stall[core].push_back({it->second, cycle});
                stallStart.erase(it);
            }
        } else if (kind == "thread_sedated") {
            sedStart[slot] = cycle;
        } else if (kind == "thread_released") {
            auto it = sedStart.find(slot);
            if (it != sedStart.end()) {
                out.sedated[slot].push_back({it->second, cycle});
                sedStart.erase(it);
            }
        } else if (kind == "fetch_gate_close") {
            gateStart[slot] = cycle;
        } else if (kind == "fetch_gate_open") {
            auto it = gateStart.find(slot);
            if (it != gateStart.end()) {
                out.gated[slot].push_back({it->second, cycle});
                gateStart.erase(it);
            }
        } else if (kind == "episode_rise_start") {
            // Re-arming overwrites an orphan rise.
            episode[core] = {cycle, -1};
        } else if (kind == "episode_peak") {
            episode[core].peak = cycle;
        } else if (kind == "episode_end") {
            EpisodeOpen &ep = episode[core];
            if (ep.heat >= 0 && ep.peak >= ep.heat) {
                out.heating[core].push_back({ep.heat, ep.peak});
                out.cooling[core].push_back({ep.peak, cycle});
            }
            out.dutyValues.push_back(ev.numberOr("value", 0));
            ep = {};
        }
    }
    // Close dangling spans at the end of the trace window.
    for (auto &[c, start] : stallStart)
        out.stall[c].push_back({start, out.maxCycle});
    for (auto &[slot, c] : sedStart)
        out.sedated[slot].push_back({c, out.maxCycle});
    for (auto &[slot, c] : gateStart)
        out.gated[slot].push_back({c, out.maxCycle});
}

// ---------------------------------------------------------------------
// Color helpers (reference palette; light/dark handled via CSS vars,
// data fills are computed here)
// ---------------------------------------------------------------------

struct Rgb
{
    int r = 0, g = 0, b = 0;
};

/** Sequential blue ramp endpoints (light 100 .. dark 700). */
constexpr Rgb rampLo{0xcd, 0xe2, 0xfb};
constexpr Rgb rampHi{0x0d, 0x36, 0x6b};

std::string
rampColor(double t)
{
    t = std::clamp(t, 0.0, 1.0);
    auto mix = [&](int a, int b) {
        return static_cast<int>(std::lround(a + (b - a) * t));
    };
    return fmt("#%02x%02x%02x", mix(rampLo.r, rampHi.r),
               mix(rampLo.g, rampHi.g), mix(rampLo.b, rampHi.b));
}

/** Relative luminance of the ramp at @p t, for in-fill label color. */
double
rampLuminance(double t)
{
    t = std::clamp(t, 0.0, 1.0);
    auto ch = [&](int a, int b) {
        double v = (a + (b - a) * t) / 255.0;
        return v <= 0.03928 ? v / 12.92
                            : std::pow((v + 0.055) / 1.055, 2.4);
    };
    return 0.2126 * ch(rampLo.r, rampHi.r) +
           0.7152 * ch(rampLo.g, rampHi.g) +
           0.0722 * ch(rampLo.b, rampHi.b);
}

// ---------------------------------------------------------------------
// HTML / SVG emission
// ---------------------------------------------------------------------

void
emitStyle(std::ostream &os)
{
    os << R"(<style>
:root {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink2: #52514e;
  --muted: #898781; --grid: #e1e0d9;
  --cat1: #2a78d6; --cat2: #eb6834; --cat3: #1baf7a;
  --warning: #fab219; --serious: #ec835a; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --ink: #ffffff; --ink2: #c3c2b7;
    --muted: #898781; --grid: #2c2c2a;
    --cat1: #3987e5; --cat2: #d95926; --cat3: #199e70;
  }
}
[data-theme="light"] {
  --surface: #fcfcfb; --ink: #0b0b0b; --ink2: #52514e;
  --muted: #898781; --grid: #e1e0d9;
  --cat1: #2a78d6; --cat2: #eb6834; --cat3: #1baf7a;
}
[data-theme="dark"] {
  --surface: #1a1a19; --ink: #ffffff; --ink2: #c3c2b7;
  --muted: #898781; --grid: #2c2c2a;
  --cat1: #3987e5; --cat2: #d95926; --cat3: #199e70;
}
html { background: var(--surface); }
body {
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  color: var(--ink); background: var(--surface);
  max-width: 880px; margin: 24px auto; padding: 0 16px;
}
h1 { font-size: 22px; margin-bottom: 4px; }
h2 { font-size: 16px; margin: 28px 0 8px; }
p.sub { color: var(--ink2); margin-top: 0; font-size: 13px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 16px 0; }
.tile {
  border: 1px solid var(--grid); border-radius: 8px;
  padding: 10px 14px; min-width: 120px;
}
.tile .v { font-size: 22px; font-weight: 600; }
.tile .k { font-size: 12px; color: var(--ink2); }
table { border-collapse: collapse; font-size: 13px; margin: 8px 0; }
th, td { padding: 4px 10px; text-align: right; }
th { color: var(--ink2); font-weight: 600; }
td:first-child, th:first-child { text-align: left; }
tbody tr { border-top: 1px solid var(--grid); }
svg { display: block; }
svg text { font-family: system-ui, -apple-system, sans-serif; }
.axis { font-size: 11px; fill: var(--ink2); }
.lbl { font-size: 11px; fill: var(--ink); }
.lbl2 { font-size: 11px; fill: var(--ink2); }
.gridline { stroke: var(--grid); stroke-width: 1; }
.mark:hover { opacity: 0.8; }
.note { color: var(--muted); font-size: 13px; }
.legend { display: flex; gap: 16px; font-size: 12px;
          color: var(--ink2); margin: 4px 0; align-items: center; }
.legend .sw { display: inline-block; width: 10px; height: 10px;
              border-radius: 2px; margin-right: 5px; }
</style>
)";
}

void
tile(std::ostream &os, const std::string &value, const std::string &key)
{
    os << "<div class=\"tile\"><div class=\"v\">" << esc(value)
       << "</div><div class=\"k\">" << esc(key) << "</div></div>\n";
}

/** Horizontal bar as a path: flat baseline end, 4px-rounded data end. */
std::string
barPath(double x, double y, double w, double h)
{
    double r = std::min(4.0, w);
    return fmt("M %.2f %.2f h %.2f a %.2f %.2f 0 0 1 %.2f %.2f "
               "v %.2f a %.2f %.2f 0 0 1 -%.2f %.2f h -%.2f Z",
               x, y, w - r, r, r, r, r, h - 2 * r, r, r, r, r, w - r);
}

/** Nice round step covering @p span in <= @p maxTicks intervals. */
double
tickStep(double span, int maxTicks)
{
    if (span <= 0)
        return 1;
    double raw = span / maxTicks;
    double mag = std::pow(10.0, std::floor(std::log10(raw)));
    for (double m : {1.0, 2.0, 5.0, 10.0})
        if (mag * m >= raw)
            return mag * m;
    return mag * 10;
}

/**
 * Multi-core dies: one heatmap tile per core, arranged on the same
 * near-square grid Topology uses (cols = ceil(sqrt(N)), row 0 at the
 * bottom), all tiles sharing a single color ramp so cross-core
 * gradients — the whole point of a coupled die — are visible at a
 * glance.
 */
void
emitTiledFloorplan(std::ostream &os, const RunView &run)
{
    os << "<h2>Peak temperature by core tile</h2>\n";
    os << "<p class=\"sub\">" << run.coreViews.size()
       << " EV6-style core tiles on one die, hottest sample per block "
          "over the quantum; one shared color ramp; run \""
       << esc(run.label) << "\".</p>\n";

    Floorplan fp = Floorplan::ev6();
    double maxX = 0, maxY = 0;
    for (int i = 0; i < numBlocks; ++i) {
        const Rect &r = fp.rect(blockFromIndex(i));
        maxX = std::max(maxX, r.x + r.w);
        maxY = std::max(maxY, r.y + r.h);
    }
    double lo = 1e300, hi = -1e300;
    for (const CoreView &cv : run.coreViews)
        for (const auto &[name, k] : cv.blockPeaks) {
            lo = std::min(lo, k);
            hi = std::max(hi, k);
        }
    if (hi <= lo)
        hi = lo + 1;

    int n = static_cast<int>(run.coreViews.size());
    int cols = std::max(
        1, static_cast<int>(std::ceil(std::sqrt(double(n)))));
    int rows = (n + cols - 1) / cols;

    const double W = 440, gap = 10, labelH = 14, legendH = 44;
    double tileW = (W - gap * (cols - 1)) / cols;
    double tileH = tileW * maxY / maxX;
    double rowPitch = tileH + labelH + gap;
    double H = rows * rowPitch - gap;
    os << fmt("<svg viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" "
              "height=\"%.0f\" role=\"img\" "
              "aria-label=\"tiled floorplan heatmap\">\n",
              W, H + legendH, W, H + legendH);
    for (int ci = 0; ci < n; ++ci) {
        const CoreView &cv = run.coreViews[ci];
        int col = ci % cols, row = ci / cols;
        double ox = col * (tileW + gap);
        // Row 0 at the bottom, like the die's own coordinates.
        double oy = (rows - 1 - row) * rowPitch + labelH;
        os << fmt("<text class=\"lbl2\" x=\"%.2f\" y=\"%.2f\" "
                  "text-anchor=\"middle\">core %d · %.1f K</text>\n",
                  ox + tileW / 2, oy - 3, cv.core, cv.peak);
        os << fmt("<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" "
                  "height=\"%.2f\" fill=\"none\" class=\"gridline\"/>"
                  "\n",
                  ox, oy, tileW, tileH);
        for (const auto &[name, k] : cv.blockPeaks) {
            int idx = -1;
            for (int i = 0; i < numBlocks; ++i)
                if (name == blockName(blockFromIndex(i)))
                    idx = i;
            if (idx < 0)
                continue;
            const Rect &r = fp.rect(blockFromIndex(idx));
            double x = ox + r.x / maxX * tileW;
            double w = r.w / maxX * tileW;
            double y = oy + tileH - (r.y + r.h) / maxY * tileH;
            double h = r.h / maxY * tileH;
            double t = (k - lo) / (hi - lo);
            os << fmt("<rect class=\"mark\" x=\"%.2f\" y=\"%.2f\" "
                      "width=\"%.2f\" height=\"%.2f\" fill=\"%s\">",
                      x + 0.5, y + 0.5, std::max(0.0, w - 1),
                      std::max(0.0, h - 1), rampColor(t).c_str())
               << "<title>core " << cv.core << " " << esc(name) << ": "
               << fmt("%.2f K", k) << "</title></rect>\n";
        }
    }
    // Legend: the shared ramp with its end-point values.
    double ly = H + 16;
    for (int i = 0; i < 60; ++i)
        os << fmt("<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" "
                  "height=\"10\" fill=\"%s\"/>\n",
                  120 + i * 3.0, ly, 3.0, rampColor(i / 59.0).c_str());
    os << fmt("<text class=\"axis\" x=\"114\" y=\"%.2f\" "
              "text-anchor=\"end\">%.1f K</text>\n", ly + 9, lo);
    os << fmt("<text class=\"axis\" x=\"%.2f\" y=\"%.2f\">%.1f K"
              "</text>\n", 120 + 60 * 3.0 + 6, ly + 9, hi);
    os << "</svg>\n";

    os << "<details><summary class=\"note\">table view</summary>\n"
          "<table><thead><tr><th>block</th>";
    for (const CoreView &cv : run.coreViews)
        os << "<th>core " << cv.core << " K</th>";
    os << "</tr></thead><tbody>\n";
    if (!run.coreViews.empty()) {
        for (size_t b = 0; b < run.coreViews[0].blockPeaks.size();
             ++b) {
            os << "<tr><td>"
               << esc(run.coreViews[0].blockPeaks[b].first) << "</td>";
            for (const CoreView &cv : run.coreViews)
                os << "<td>"
                   << (b < cv.blockPeaks.size()
                           ? fmt("%.2f", cv.blockPeaks[b].second)
                           : std::string("—"))
                   << "</td>";
            os << "</tr>\n";
        }
    }
    os << "</tbody></table></details>\n";
}

void
emitFloorplan(std::ostream &os, const RunView &run)
{
    if (run.coreViews.size() > 1) {
        emitTiledFloorplan(os, run);
        return;
    }
    os << "<h2>Peak temperature by block</h2>\n";
    if (run.blockPeaks.empty()) {
        os << "<p class=\"note\">No per-block peak temperatures in the "
              "input (need hs_run --json from this build).</p>\n";
        return;
    }
    os << "<p class=\"sub\">EV6-style floorplan, hottest sample per "
          "block over the quantum; run \"" << esc(run.label)
       << "\".</p>\n";

    Floorplan fp = Floorplan::ev6();
    double maxX = 0, maxY = 0;
    for (int i = 0; i < numBlocks; ++i) {
        const Rect &r = fp.rect(blockFromIndex(i));
        maxX = std::max(maxX, r.x + r.w);
        maxY = std::max(maxY, r.y + r.h);
    }
    double lo = 1e300, hi = -1e300;
    for (const auto &[name, k] : run.blockPeaks) {
        lo = std::min(lo, k);
        hi = std::max(hi, k);
    }
    if (hi <= lo)
        hi = lo + 1;

    const double W = 440, H = W * maxY / maxX;
    const double legendH = 44;
    os << fmt("<svg viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" "
              "height=\"%.0f\" role=\"img\" "
              "aria-label=\"floorplan heatmap\">\n",
              W, H + legendH, W, H + legendH);
    for (const auto &[name, k] : run.blockPeaks) {
        // Match the JSON block name back to floorplan geometry.
        int idx = -1;
        for (int i = 0; i < numBlocks; ++i)
            if (name == blockName(blockFromIndex(i)))
                idx = i;
        if (idx < 0)
            continue;
        const Rect &r = fp.rect(blockFromIndex(idx));
        double x = r.x / maxX * W;
        double w = r.w / maxX * W;
        // Flip y: floorplan origin is bottom-left, SVG's is top-left.
        double y = H - (r.y + r.h) / maxY * H;
        double h = r.h / maxY * H;
        double t = (k - lo) / (hi - lo);
        // 2px surface gap between fills.
        os << fmt("<rect class=\"mark\" x=\"%.2f\" y=\"%.2f\" "
                  "width=\"%.2f\" height=\"%.2f\" fill=\"%s\">",
                  x + 1, y + 1, std::max(0.0, w - 2),
                  std::max(0.0, h - 2), rampColor(t).c_str())
           << "<title>" << esc(name) << ": " << fmt("%.2f K", k)
           << "</title></rect>\n";
        // In-fill labels only where they fit; luminance picks the ink.
        if (w >= 52 && h >= 30) {
            const char *fill =
                rampLuminance(t) > 0.45 ? "#0b0b0b" : "#ffffff";
            os << fmt("<text x=\"%.2f\" y=\"%.2f\" "
                      "text-anchor=\"middle\" font-size=\"10\" "
                      "fill=\"%s\">%s</text>\n",
                      x + w / 2, y + h / 2 - 2, fill,
                      esc(name).c_str());
            os << fmt("<text x=\"%.2f\" y=\"%.2f\" "
                      "text-anchor=\"middle\" font-size=\"9\" "
                      "fill=\"%s\">%.1f K</text>\n",
                      x + w / 2, y + h / 2 + 9, fill, k);
        }
    }
    // Legend: the ramp with its end-point values.
    double ly = H + 16;
    for (int i = 0; i < 60; ++i) {
        os << fmt("<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" "
                  "height=\"10\" fill=\"%s\"/>\n",
                  120 + i * 3.0, ly, 3.0,
                  rampColor(i / 59.0).c_str());
    }
    os << fmt("<text class=\"axis\" x=\"114\" y=\"%.2f\" "
              "text-anchor=\"end\">%.1f K</text>\n", ly + 9, lo);
    os << fmt("<text class=\"axis\" x=\"%.2f\" y=\"%.2f\">%.1f K"
              "</text>\n", 120 + 60 * 3.0 + 6, ly + 9, hi);
    os << "</svg>\n";

    // Table view of the same data.
    os << "<details><summary class=\"note\">table view</summary>\n"
          "<table><thead><tr><th>block</th><th>peak K</th></tr>"
          "</thead><tbody>\n";
    for (const auto &[name, k] : run.blockPeaks)
        os << "<tr><td>" << esc(name) << "</td><td>" << fmt("%.2f", k)
           << "</td></tr>\n";
    os << "</tbody></table></details>\n";
}

void
emitTempSeries(std::ostream &os, const RunView &run)
{
    os << "<h2>Temperature over the quantum</h2>\n";
    if (run.temps.size() < 2) {
        os << "<p class=\"note\">No temperature trace in the input "
              "(run hs_run with --trace or --temp-trace).</p>\n";
        return;
    }
    os << "<p class=\"sub\">Integer register file vs. heat-sink "
          "temperature, run \"" << esc(run.label)
       << "\"; dashed lines mark the sedation window (355/356 K) and "
          "the 358 K emergency threshold.</p>\n";

    const double W = 760, H = 280;
    const double mL = 52, mR = 14, mT = 12, mB = 30;
    double plotW = W - mL - mR, plotH = H - mT - mB;
    double maxCycle = run.temps.back().cycle;
    double lo = 354, hi = 359;
    for (const TempPoint &p : run.temps) {
        lo = std::min({lo, p.intreg, p.sink});
        hi = std::max({hi, p.intreg, p.sink});
    }
    lo = std::floor(lo - 0.5);
    hi = std::ceil(hi + 0.5);
    auto X = [&](double c) { return mL + c / maxCycle * plotW; };
    auto Y = [&](double k) {
        return mT + (hi - k) / (hi - lo) * plotH;
    };

    os << fmt("<svg viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" "
              "height=\"%.0f\" role=\"img\" "
              "aria-label=\"temperature time series\">\n", W, H, W, H);
    // Horizontal gridlines + y labels.
    double step = tickStep(hi - lo, 6);
    for (double k = std::ceil(lo / step) * step; k <= hi + 1e-9;
         k += step) {
        os << fmt("<line class=\"gridline\" x1=\"%.2f\" y1=\"%.2f\" "
                  "x2=\"%.2f\" y2=\"%.2f\"/>\n",
                  mL, Y(k), W - mR, Y(k));
        os << fmt("<text class=\"axis\" x=\"%.2f\" y=\"%.2f\" "
                  "text-anchor=\"end\">%.0f K</text>\n",
                  mL - 6, Y(k) + 4, k);
    }
    // X ticks in megacycles.
    double xstep = tickStep(maxCycle, 8);
    for (double c = 0; c <= maxCycle + 1e-9; c += xstep) {
        os << fmt("<text class=\"axis\" x=\"%.2f\" y=\"%.2f\" "
                  "text-anchor=\"middle\">%s</text>\n",
                  X(c), H - 10, cyc(c).c_str());
    }
    // Threshold lines (status colors, labeled — never color alone).
    struct Thr { double k; const char *color; const char *name; };
    for (const Thr &t : {Thr{358, "var(--critical)", "emergency 358"},
                         Thr{356, "var(--warning)", "upper 356"},
                         Thr{355, "var(--muted)", "lower 355"}}) {
        if (t.k < lo || t.k > hi)
            continue;
        os << fmt("<line x1=\"%.2f\" y1=\"%.2f\" x2=\"%.2f\" "
                  "y2=\"%.2f\" stroke=\"%s\" stroke-width=\"1\" "
                  "stroke-dasharray=\"5 3\"/>\n",
                  mL, Y(t.k), W - mR, Y(t.k), t.color);
        os << fmt("<text class=\"axis\" x=\"%.2f\" y=\"%.2f\" "
                  "text-anchor=\"end\">%s</text>\n",
                  W - mR - 4, Y(t.k) - 4, t.name);
    }
    // Series: IntReg (cat1) and sink (cat3), 2px lines.
    auto polyline = [&](auto get, const char *color) {
        os << "<polyline fill=\"none\" stroke=\"" << color
           << "\" stroke-width=\"2\" points=\"";
        for (const TempPoint &p : run.temps)
            os << fmt("%.2f,%.2f ", X(p.cycle), Y(get(p)));
        os << "\"/>\n";
    };
    polyline([](const TempPoint &p) { return p.intreg; },
             "var(--cat1)");
    polyline([](const TempPoint &p) { return p.sink; }, "var(--cat3)");
    os << "</svg>\n";
    os << "<div class=\"legend\">"
          "<span><span class=\"sw\" style=\"background:var(--cat1)\">"
          "</span>IntReg</span>"
          "<span><span class=\"sw\" style=\"background:var(--cat3)\">"
          "</span>heat sink</span></div>\n";
}

void
emitGantt(std::ostream &os, const TraceView &tr)
{
    os << "<h2>DTM activity</h2>\n";
    bool empty = tr.stall.empty() && tr.sedated.empty() &&
                 tr.gated.empty() && tr.heating.empty();
    if (tr.source.empty() || tr.maxCycle <= 0 || empty) {
        os << "<p class=\"note\">No DTM span events (pass a JSONL "
              "trace from hs_run --trace FILE.jsonl).</p>\n";
        return;
    }
    os << "<p class=\"sub\">When the thermal manager intervened over "
          "the quantum (trace " << esc(tr.source) << ").</p>\n";

    struct Row
    {
        std::string name;
        const char *color;
        const std::vector<Span> *spans;
    };
    std::vector<Row> rows;
    // Rows group by core; single-core traces keep the unprefixed
    // legacy row names.
    auto rowName = [&](int core, const std::string &name) {
        return tr.multiCore() ? fmt("c%d · %s", core, name.c_str())
                              : name;
    };
    for (int core = 0; core <= tr.maxCore; ++core) {
        if (auto it = tr.heating.find(core); it != tr.heating.end()) {
            rows.push_back({rowName(core, "heating"), "var(--cat2)",
                            &it->second});
            rows.push_back({rowName(core, "cooling"), "var(--cat3)",
                            &tr.cooling.at(core)});
        }
        if (auto it = tr.stall.find(core); it != tr.stall.end())
            rows.push_back({rowName(core, "global stall"),
                            "var(--critical)", &it->second});
        for (const auto &[slot, spans] : tr.sedated)
            if (slot.first == core)
                rows.push_back({rowName(core,
                                        fmt("sedated t%d", slot.second)),
                                "var(--warning)", &spans});
        for (const auto &[slot, spans] : tr.gated)
            if (slot.first == core)
                rows.push_back(
                    {rowName(core, fmt("fetch gate t%d", slot.second)),
                     "var(--serious)", &spans});
    }

    const double W = 760, rowH = 20, gap = 8, mL = 110, mB = 26;
    const double H = rows.size() * (rowH + gap) + mB + 4;
    double plotW = W - mL - 10;
    auto X = [&](double c) { return mL + c / tr.maxCycle * plotW; };

    os << fmt("<svg viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" "
              "height=\"%.0f\" role=\"img\" "
              "aria-label=\"DTM activity gantt\">\n", W, H, W, H);
    double xstep = tickStep(tr.maxCycle, 8);
    for (double c = 0; c <= tr.maxCycle + 1e-9; c += xstep) {
        os << fmt("<line class=\"gridline\" x1=\"%.2f\" y1=\"4\" "
                  "x2=\"%.2f\" y2=\"%.2f\"/>\n",
                  X(c), X(c), H - mB);
        os << fmt("<text class=\"axis\" x=\"%.2f\" y=\"%.2f\" "
                  "text-anchor=\"middle\">%s</text>\n",
                  X(c), H - 10, cyc(c).c_str());
    }
    double y = 4;
    for (const Row &row : rows) {
        os << fmt("<text class=\"lbl2\" x=\"%.2f\" y=\"%.2f\" "
                  "text-anchor=\"end\">%s</text>\n",
                  mL - 8, y + rowH / 2 + 4, esc(row.name).c_str());
        for (const Span &s : *row.spans) {
            double x0 = X(s.a), x1 = X(s.b);
            double w = std::max(1.0, x1 - x0);
            os << fmt("<rect class=\"mark\" x=\"%.2f\" y=\"%.2f\" "
                      "width=\"%.2f\" height=\"%.2f\" rx=\"2\" "
                      "fill=\"%s\">",
                      x0, y, w, rowH, row.color)
               << "<title>" << esc(row.name) << ": " << cyc(s.a)
               << " – " << cyc(s.b) << " (" << cyc(s.b - s.a)
               << " cycles)</title></rect>\n";
        }
        y += rowH + gap;
    }
    os << "</svg>\n";
}

void
emitIpcBars(std::ostream &os, const std::vector<RunView> &runs)
{
    os << "<h2>Per-thread IPC</h2>\n";
    struct Bar
    {
        std::string label;
        double ipc;
        double sedFrac;
    };
    std::vector<Bar> bars;
    for (const RunView &r : runs)
        for (const ThreadRow &t : r.threads) {
            // Multi-core runs tag each context with its core tile.
            std::string slot =
                r.numCores > 1
                    ? fmt("c%d t%d", t.core, t.index)
                    : "t" + std::to_string(t.index);
            std::string label = runs.size() > 1
                                    ? r.label + " · " + slot + " " +
                                          t.program
                                    : slot + " " + t.program;
            double total = t.normalCycles + t.coolingCycles +
                           t.sedationCycles;
            bars.push_back(
                {label, t.ipc, total > 0 ? t.sedationCycles / total
                                         : 0});
        }
    if (bars.empty()) {
        os << "<p class=\"note\">No per-thread results in the input."
              "</p>\n";
        return;
    }
    os << "<p class=\"sub\">Committed instructions per cycle for each "
          "hardware context.</p>\n";
    double maxIpc = 0.1;
    for (const Bar &b : bars)
        maxIpc = std::max(maxIpc, b.ipc);

    const double W = 760, rowH = 20, gap = 8, mL = 190;
    const double H = bars.size() * (rowH + gap) + 6;
    double plotW = W - mL - 60;
    os << fmt("<svg viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" "
              "height=\"%.0f\" role=\"img\" "
              "aria-label=\"per-thread IPC bars\">\n", W, H, W, H);
    double y = 2;
    for (const Bar &b : bars) {
        double w = b.ipc / maxIpc * plotW;
        os << fmt("<text class=\"lbl2\" x=\"%.2f\" y=\"%.2f\" "
                  "text-anchor=\"end\">%s</text>\n",
                  mL - 8, y + rowH / 2 + 4, esc(b.label).c_str());
        os << "<path class=\"mark\" d=\""
           << barPath(mL, y, std::max(2.0, w), rowH)
           << "\" fill=\"var(--cat1)\"><title>" << esc(b.label) << ": "
           << fmt("%.3f IPC", b.ipc) << "</title></path>\n";
        os << fmt("<text class=\"lbl\" x=\"%.2f\" y=\"%.2f\">"
                  "%.2f</text>\n",
                  mL + std::max(2.0, w) + 6, y + rowH / 2 + 4, b.ipc);
        y += rowH + gap;
    }
    os << "</svg>\n";
}

void
emitDutyTable(std::ostream &os, const std::vector<RunView> &runs,
              const TraceView &tr)
{
    os << "<h2>Duty cycle</h2>\n"
          "<p class=\"sub\">heat / (heat + cool) per run — the "
          "paper's power-density denial-of-service metric: a low duty "
          "cycle means the machine spends most of its time cooling "
          "down instead of doing work.</p>\n";
    os << "<table><thead><tr><th>run</th><th>episodes</th>"
          "<th>heat cycles</th><th>cool cycles</th><th>duty</th>"
          "<th>stop&amp;go</th><th>emergencies</th><th>peak K</th>"
          "</tr></thead><tbody>\n";
    bool any = false;
    for (const RunView &r : runs) {
        double heat = r.heat.ok ? r.heat.sum : 0;
        double cool = r.cool.ok ? r.cool.sum : 0;
        std::string duty =
            heat + cool > 0 ? fmt("%.3f", heat / (heat + cool)) : "—";
        os << "<tr><td>" << esc(r.label) << "</td><td>"
           << fmt("%.0f", r.heat.ok ? r.heat.count : 0) << "</td><td>"
           << cyc(heat) << "</td><td>" << cyc(cool) << "</td><td>"
           << duty << "</td><td>" << fmt("%.0f", r.stopGo)
           << "</td><td>" << fmt("%.0f", r.emergencies) << "</td><td>"
           << fmt("%.2f", r.peak) << "</td></tr>\n";
        any = true;
    }
    os << "</tbody></table>\n";
    if (!any)
        os << "<p class=\"note\">No runs in the input.</p>\n";
    if (!tr.dutyValues.empty()) {
        double sum = 0;
        for (double d : tr.dutyValues)
            sum += d;
        os << "<p class=\"sub\">Event trace agrees: "
           << tr.dutyValues.size()
           << " completed episode(s), mean per-episode duty "
           << fmt("%.3f", sum / double(tr.dutyValues.size()))
           << ".</p>\n";
    }
}

void
emitMetricsTable(
    std::ostream &os,
    const std::vector<std::pair<std::string, json::Value>> &metrics)
{
    os << "<h2>Run-health metrics</h2>\n";
    if (metrics.empty()) {
        os << "<p class=\"note\">No metrics object in the input.</p>\n";
        return;
    }
    os << "<p class=\"sub\">Process-wide counters, gauges and "
          "histogram summaries folded from every cell of the "
          "matrix.</p>\n";
    os << "<table><thead><tr><th>metric</th><th>count</th>"
          "<th>min</th><th>p50</th><th>p90</th><th>p99</th>"
          "<th>max</th><th>value</th></tr></thead><tbody>\n";
    for (const auto &[name, v] : metrics) {
        os << "<tr><td>" << esc(name) << "</td>";
        if (v.isObject()) {
            HistStat h = histFrom(&v);
            os << "<td>" << fmt("%.0f", h.count) << "</td><td>"
               << fmt("%.4g", h.min) << "</td><td>"
               << fmt("%.4g", h.p50) << "</td><td>"
               << fmt("%.4g", h.p90) << "</td><td>"
               << fmt("%.4g", h.p99) << "</td><td>"
               << fmt("%.4g", h.max) << "</td><td>—</td>";
        } else if (v.isNumber()) {
            os << "<td>—</td><td>—</td><td>—</td><td>—</td><td>—</td>"
                  "<td>—</td><td>"
               << fmt("%.6g", v.number()) << "</td>";
        } else {
            os << "<td colspan=\"7\">—</td>";
        }
        os << "</tr>\n";
    }
    os << "</tbody></table>\n";
}

const char *
outcomeColor(const std::string &outcome)
{
    if (outcome == "remote_finished")
        return "var(--cat2)";
    if (outcome == "cache_hit")
        return "var(--cat3)";
    if (outcome == "disk_hit")
        return "var(--warning)";
    return "var(--cat1)"; // finished locally
}

const char *
outcomeName(const std::string &outcome)
{
    if (outcome == "remote_finished")
        return "remote";
    if (outcome == "cache_hit")
        return "memory hit";
    if (outcome == "disk_hit")
        return "disk hit";
    return "computed";
}

void
emitFleetTimeline(std::ostream &os, const FleetView &fleet)
{
    os << "<h2>Fleet timeline</h2>\n";
    if (fleet.cells.empty()) {
        os << "<p class=\"note\">No cell lifecycle events in "
           << esc(fleet.source) << ".</p>\n";
        return;
    }
    os << "<p class=\"sub\">Each lane is one execution slot — local "
          "worker threads first, then one dispatcher per TCP worker — "
          "and each bar one matrix cell (timeline "
       << esc(fleet.source) << ").</p>\n";

    double maxT = std::max(fleet.maxT, 1e-9);
    const double W = 760, rowH = 20, gap = 8, mL = 70, mB = 26;
    const double H = fleet.lanes.size() * (rowH + gap) + mB + 4;
    double plotW = W - mL - 10;
    auto X = [&](double t) { return mL + t / maxT * plotW; };

    os << fmt("<svg viewBox=\"0 0 %.0f %.0f\" width=\"%.0f\" "
              "height=\"%.0f\" role=\"img\" "
              "aria-label=\"fleet timeline gantt\">\n", W, H, W, H);
    double xstep = tickStep(maxT, 8);
    for (double t = 0; t <= maxT + 1e-9; t += xstep) {
        os << fmt("<line class=\"gridline\" x1=\"%.2f\" y1=\"4\" "
                  "x2=\"%.2f\" y2=\"%.2f\"/>\n",
                  X(t), X(t), H - mB);
        os << fmt("<text class=\"axis\" x=\"%.2f\" y=\"%.2f\" "
                  "text-anchor=\"middle\">%.3gs</text>\n",
                  X(t), H - 10, t);
    }
    double y = 4;
    for (const auto &[lane, cells] : fleet.lanes) {
        std::string name =
            lane < 0 ? std::string("store") : fmt("lane %d", lane);
        os << fmt("<text class=\"lbl2\" x=\"%.2f\" y=\"%.2f\" "
                  "text-anchor=\"end\">%s</text>\n",
                  mL - 8, y + rowH / 2 + 4, esc(name).c_str());
        for (const FleetCell *c : cells) {
            double x0 = X(c->start), x1 = X(c->end);
            double w = std::max(2.0, x1 - x0);
            os << fmt("<rect class=\"mark\" x=\"%.2f\" y=\"%.2f\" "
                      "width=\"%.2f\" height=\"%.2f\" rx=\"2\" "
                      "fill=\"%s\">",
                      x0, y, w, rowH, outcomeColor(c->outcome))
               << "<title>#" << c->index << " " << esc(c->label) << ": "
               << outcomeName(c->outcome)
               << fmt(", %.3f–%.3f s", c->start, c->end)
               << "</title></rect>\n";
        }
        y += rowH + gap;
    }
    // Fault-fire markers cut across every lane.
    for (const auto &[t, site] : fleet.faultFires) {
        os << fmt("<line x1=\"%.2f\" y1=\"4\" x2=\"%.2f\" y2=\"%.2f\" "
                  "stroke=\"var(--critical)\" stroke-width=\"2\" "
                  "stroke-dasharray=\"2 3\"><title>fault %s at "
                  "%.3f s</title></line>\n",
                  X(t), X(t), H - mB, esc(site).c_str(), t);
    }
    os << "</svg>\n";
    os << "<div class=\"legend\">"
          "<span><span class=\"sw\" style=\"background:var(--cat1)\">"
          "</span>computed</span>"
          "<span><span class=\"sw\" style=\"background:var(--cat2)\">"
          "</span>remote</span>"
          "<span><span class=\"sw\" style=\"background:var(--cat3)\">"
          "</span>memory hit</span>"
          "<span><span class=\"sw\" style=\"background:var(--warning)\">"
          "</span>disk hit</span>";
    if (!fleet.faultFires.empty())
        os << "<span><span class=\"sw\" "
              "style=\"background:var(--critical)\"></span>fault "
              "fired</span>";
    os << "</div>\n";
}

void
emitLaneTable(std::ostream &os, const FleetView &fleet)
{
    if (fleet.cells.empty())
        return;
    os << "<h2>Lane utilization</h2>\n"
          "<p class=\"sub\">Busy share of the campaign wall clock per "
          "lane; the straggler column names the longest cell, the "
          "first thing to look at when one lane drags the tail.</p>\n";
    os << "<table><thead><tr><th>lane</th><th>cells</th>"
          "<th>busy s</th><th>busy %</th><th>longest cell</th>"
          "<th>longest s</th></tr></thead><tbody>\n";
    double maxT = std::max(fleet.maxT, 1e-9);
    for (const auto &[lane, cells] : fleet.lanes) {
        double busy = 0;
        const FleetCell *longest = nullptr;
        for (const FleetCell *c : cells) {
            busy += c->end - c->start;
            if (!longest ||
                c->end - c->start > longest->end - longest->start)
                longest = c;
        }
        std::string name =
            lane < 0 ? std::string("store") : fmt("lane %d", lane);
        os << "<tr><td>" << esc(name) << "</td><td>" << cells.size()
           << "</td><td>" << fmt("%.3f", busy) << "</td><td>"
           << fmt("%.1f", 100.0 * busy / maxT) << "</td><td>"
           << (longest ? esc(longest->label) : std::string("—"))
           << "</td><td>"
           << (longest ? fmt("%.3f", longest->end - longest->start)
                       : std::string("—"))
           << "</td></tr>\n";
    }
    os << "</tbody></table>\n";
}

void
emitFleetBreakdown(std::ostream &os, const FleetView &fleet)
{
    if (fleet.cells.empty())
        return;
    double computed = 0, remote = 0, memory = 0, disk = 0;
    for (const FleetCell &c : fleet.cells) {
        if (c.outcome == "finished")
            ++computed;
        else if (c.outcome == "remote_finished")
            ++remote;
        else if (c.outcome == "cache_hit")
            ++memory;
        else if (c.outcome == "disk_hit")
            ++disk;
    }
    os << "<h2>Cell sources</h2>\n"
          "<p class=\"sub\">Where each cell's result came from.</p>\n";
    os << "<div class=\"tiles\">\n";
    tile(os, fmt("%.0f", computed), "computed locally");
    tile(os, fmt("%.0f", remote), "computed remotely");
    tile(os, fmt("%.0f", memory), "memory hits");
    tile(os, fmt("%.0f", disk), "disk hits");
    if (fleet.resumedStored > 0)
        tile(os, fmt("%.0f", fleet.resumedStored), "resumed from store");
    if (!fleet.faultFires.empty())
        tile(os, fmt("%zu", fleet.faultFires.size()), "fault fires");
    os << "</div>\n";
}

void
emitWorkerTable(std::ostream &os, const FleetView &fleet)
{
    if (fleet.workers.empty())
        return;
    os << "<h2>Worker telemetry</h2>\n"
          "<p class=\"sub\">Per-worker rollups folded from Result "
          "telemetry blocks and heartbeats — host measurements only, "
          "never part of the artifacts.</p>\n";
    os << "<table><thead><tr><th>worker</th><th>jobs</th>"
          "<th>sim s</th><th>restore s</th><th>heartbeats</th>"
          "<th>snapshot KiB</th><th>cached snaps</th>"
          "<th>peak RSS MiB</th></tr></thead><tbody>\n";
    for (const auto &[name, w] : fleet.workers) {
        os << "<tr><td>" << esc(name) << "</td><td>"
           << fmt("%.0f", w.jobs) << "</td><td>"
           << fmt("%.3f", w.simSeconds) << "</td><td>"
           << fmt("%.3f", w.restoreSeconds) << "</td><td>"
           << fmt("%.0f", w.heartbeats) << "</td><td>"
           << fmt("%.1f", w.snapshotBytes / 1024.0) << "</td><td>"
           << fmt("%.0f", w.cachedSnapshots) << "</td><td>"
           << fmt("%.1f", w.peakRssKb / 1024.0) << "</td></tr>\n";
    }
    os << "</tbody></table>\n";
}

void
emitReport(std::ostream &os, const std::string &title,
           const std::vector<RunView> &runs, const TraceView &trace,
           const FleetView &fleet,
           const std::vector<std::pair<std::string, json::Value>> &metrics)
{
    os << "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n"
          "<meta charset=\"utf-8\">\n"
          "<meta name=\"viewport\" content=\"width=device-width, "
          "initial-scale=1\">\n<title>"
       << esc(title) << "</title>\n";
    emitStyle(os);
    os << "</head>\n<body>\n<h1>" << esc(title) << "</h1>\n";
    os << "<p class=\"sub\">Heat Stroke simulator run report — "
       << runs.size() << " run(s)";
    if (!trace.source.empty())
        os << ", event trace " << esc(trace.source);
    os << ".</p>\n";

    // Summary tiles.
    double peak = 0, emergencies = 0, stopgo = 0;
    double heat = 0, cool = 0, ipcSum = 0;
    size_t nThreads = 0;
    for (const RunView &r : runs) {
        peak = std::max(peak, r.peak);
        emergencies += r.emergencies;
        stopgo += r.stopGo;
        if (r.heat.ok)
            heat += r.heat.sum;
        if (r.cool.ok)
            cool += r.cool.sum;
        for (const ThreadRow &t : r.threads) {
            ipcSum += t.ipc;
            ++nThreads;
        }
    }
    os << "<div class=\"tiles\">\n";
    tile(os, fmt("%.2f K", peak), "peak temperature");
    tile(os, fmt("%.0f", emergencies), "thermal emergencies");
    tile(os, heat + cool > 0 ? fmt("%.3f", heat / (heat + cool)) : "—",
         "duty cycle");
    tile(os,
         nThreads ? fmt("%.2f", ipcSum / double(nThreads)) : "—",
         "mean IPC / thread");
    tile(os, fmt("%.0f", stopgo), "stop-and-go triggers");
    os << "</div>\n";

    // Charts use the first run that carries the needed payload.
    const RunView *withBlocks = nullptr, *withTemps = nullptr;
    for (const RunView &r : runs) {
        if (!withBlocks && !r.blockPeaks.empty())
            withBlocks = &r;
        if (!withTemps && r.temps.size() >= 2)
            withTemps = &r;
    }
    static const RunView emptyRun;
    emitFloorplan(os, withBlocks ? *withBlocks : emptyRun);
    emitTempSeries(os, withTemps ? *withTemps : emptyRun);
    emitGantt(os, trace);
    emitIpcBars(os, runs);
    emitDutyTable(os, runs, trace);
    if (fleet.loaded()) {
        emitFleetTimeline(os, fleet);
        emitLaneTable(os, fleet);
        emitFleetBreakdown(os, fleet);
        emitWorkerTable(os, fleet);
    }
    emitMetricsTable(os, metrics);

    os << "<p class=\"note\">Generated by hs_report from hs_run "
          "--json/--trace artifacts; byte-identical for identical "
          "inputs.</p>\n</body>\n</html>\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> json_paths, trace_paths, events_paths;
    std::string out_path = "hs_report.html";
    std::string title = "Heat Stroke run report";

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string inline_value;
        bool has_inline = false;
        if (arg.size() > 2 && arg.compare(0, 2, "--") == 0) {
            size_t eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg = arg.substr(0, eq);
                has_inline = true;
            }
        }
        auto value = [&]() -> std::string {
            if (has_inline)
                return inline_value;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             arg.c_str());
                usage(argv[0]);
            }
            return argv[++i];
        };
        if (arg == "--json")
            json_paths.push_back(value());
        else if (arg == "--trace")
            trace_paths.push_back(value());
        else if (arg == "--events")
            events_paths.push_back(value());
        else if (arg == "--out")
            out_path = value();
        else if (arg == "--title")
            title = value();
        else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                         argv[i]);
            usage(argv[0]);
        }
    }
    if (json_paths.empty() && trace_paths.empty() &&
        events_paths.empty()) {
        std::fprintf(stderr, "%s: nothing to report; pass --json, "
                             "--trace and/or --events\n", argv[0]);
        usage(argv[0]);
    }

    std::vector<RunView> runs;
    std::vector<std::pair<std::string, json::Value>> metrics;
    for (const std::string &p : json_paths)
        loadMatrix(p, runs, metrics);
    TraceView trace;
    for (const std::string &p : trace_paths) {
        // Later traces extend the same view; the Gantt names its
        // source, so keep the first for the caption.
        TraceView tv;
        loadTrace(p, tv);
        if (trace.source.empty())
            trace = std::move(tv);
    }
    FleetView fleet;
    for (const std::string &p : events_paths) {
        // Same first-file policy as --trace: timelines from separate
        // campaigns have unrelated clocks, so they never merge.
        FleetView fv;
        loadFleet(p, fv);
        if (fleet.source.empty())
            fleet = std::move(fv);
    }

    if (out_path == "-") {
        emitReport(std::cout, title, runs, trace, fleet, metrics);
        return 0;
    }
    std::ofstream out(out_path, std::ios::binary);
    if (!out)
        fatal("cannot write '%s'", out_path.c_str());
    emitReport(out, title, runs, trace, fleet, metrics);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
