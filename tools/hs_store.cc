/**
 * @file
 * hs_store — admin tool for persistent result stores.
 *
 * Subcommands:
 *
 *   hs_store prune DIR [--older-than DAYS] [--sweep-corrupt]
 *                      [--dry-run]
 *
 *     Garbage-collect the store rooted at DIR. `--older-than DAYS`
 *     deletes records whose mtime is strictly older than DAYS
 *     (fractional days allowed); `--sweep-corrupt` also deletes
 *     records that fail structural validation — they can only ever
 *     cost a recompute; `--dry-run` reports what would be deleted
 *     without touching anything. At least one of --older-than /
 *     --sweep-corrupt is required: a prune that could delete nothing
 *     is a mistyped command line, not a request.
 *
 *     Only regular `*.hsr` record files inside the two-hex-digit
 *     bucket directories are ever deleted. Campaign manifests, hidden
 *     temp files from interrupted writers, and anything else a user
 *     may have placed in the tree are refused and reported as
 *     skipped.
 *
 * Exit status: 0 on success, 2 on a command-line error. See
 * docs/DISTRIBUTED.md for the workflow.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/disk_store.hh"

namespace {

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s prune DIR [--older-than DAYS] "
                 "[--sweep-corrupt] [--dry-run]\n",
                 argv0);
    std::exit(2);
}

/** Strict non-negative double parse; the whole string must parse. */
double
parseDays(const char *argv0, const std::string &s)
{
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (s.empty() || end == s.c_str() || *end != '\0' || v < 0.0) {
        std::fprintf(stderr,
                     "%s: --older-than needs a non-negative number of "
                     "days, got '%s'\n",
                     argv0, s.c_str());
        usage(argv0);
    }
    return v;
}

int
cmdPrune(const char *argv0, int argc, char **argv)
{
    std::string dir;
    hs::PruneOptions opts;
    bool haveAge = false;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--older-than") {
            if (i + 1 >= argc)
                usage(argv0);
            opts.olderThanDays = parseDays(argv0, argv[++i]);
            haveAge = true;
        } else if (arg == "--sweep-corrupt") {
            opts.sweepCorrupt = true;
        } else if (arg == "--dry-run") {
            opts.dryRun = true;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv0,
                         arg.c_str());
            usage(argv0);
        } else if (dir.empty()) {
            dir = arg;
        } else {
            std::fprintf(stderr, "%s: more than one store directory\n",
                         argv0);
            usage(argv0);
        }
    }
    if (dir.empty())
        usage(argv0);
    if (!haveAge && !opts.sweepCorrupt) {
        std::fprintf(stderr,
                     "%s: prune needs --older-than and/or "
                     "--sweep-corrupt\n",
                     argv0);
        usage(argv0);
    }

    hs::PruneStats stats = hs::pruneStore(dir, opts);
    std::printf("%s%s: %llu record(s) scanned, %llu %s (%llu corrupt, "
                "%.1f KiB), %llu kept, %llu non-record entr%s "
                "skipped\n",
                dir.c_str(), opts.dryRun ? " (dry run)" : "",
                static_cast<unsigned long long>(stats.scanned),
                static_cast<unsigned long long>(stats.pruned),
                opts.dryRun ? "would be pruned" : "pruned",
                static_cast<unsigned long long>(stats.corrupt),
                static_cast<double>(stats.bytesFreed) / 1024.0,
                static_cast<unsigned long long>(stats.kept),
                static_cast<unsigned long long>(stats.skipped),
                stats.skipped == 1 ? "y" : "ies");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage(argv[0]);
    std::string cmd = argv[1];
    if (cmd == "prune")
        return cmdPrune(argv[0], argc - 2, argv + 2);
    std::fprintf(stderr, "%s: unknown subcommand '%s'\n", argv[0],
                 cmd.c_str());
    usage(argv[0]);
}
