/**
 * @file
 * hs_run — command-line driver for the heat-stroke simulator.
 *
 * Runs an arbitrary workload mix for one OS quantum and prints the
 * per-thread results plus (optionally) the full statistics dump or a
 * temperature-trace CSV.
 *
 * Usage:
 *   hs_run [options]
 * Options:
 *   --spec NAME          add a synthetic SPEC thread (repeatable)
 *   --variant N          add malicious variant N in {1..4} (repeatable)
 *   --asm FILE           add a thread assembled from FILE (repeatable)
 *   --dtm MODE           none|stopgo|sedation|dvfs|fetchgate
 *                        (default stopgo)
 *   --sink ideal|real    heat sink model (default real)
 *   --scale S            time scale (default 50; 1 = paper scale)
 *   --conv R             convection resistance K/W (default 0.8)
 *   --upper K --lower K  sedation thresholds (default 356 / 355)
 *   --noise K            sensor noise amplitude (default 0)
 *   --deschedule N       OS extension: deschedule after N reports
 *   --trace FILE         write temperature trace CSV
 *   --stats              dump full statistics after the run
 *   --list               list available SPEC profiles and exit
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "isa/assembler.hh"
#include "sim/experiment.hh"

namespace {

using namespace hs;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--spec NAME]... [--variant N]... "
                 "[--asm FILE]...\n"
                 "       [--dtm none|stopgo|sedation|dvfs|fetchgate] "
                 "[--sink ideal|real]\n"
                 "       [--scale S] [--conv R] [--upper K] "
                 "[--lower K] [--noise K]\n"
                 "       [--deschedule N] [--trace FILE] [--stats] "
                 "[--list]\n",
                 argv0);
    std::exit(2);
}

DtmMode
parseDtm(const std::string &s)
{
    if (s == "none")
        return DtmMode::None;
    if (s == "stopgo" || s == "stop-and-go")
        return DtmMode::StopAndGo;
    if (s == "sedation")
        return DtmMode::SelectiveSedation;
    if (s == "dvfs")
        return DtmMode::DvfsThrottle;
    if (s == "fetchgate" || s == "fetch-gating")
        return DtmMode::FetchGating;
    fatal("unknown DTM mode '%s'", s.c_str());
}

Program
loadAsm(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open assembly file '%s'", path.c_str());
    std::stringstream buf;
    buf << in.rdbuf();
    Program p = assemble(buf.str(), path);
    p.setInitReg(24, 7);
    p.setInitReg(25, 13);
    return p;
}

} // namespace

int
main(int argc, char **argv)
{
    struct WorkSpec
    {
        enum class Kind { Spec, Variant, Asm } kind;
        std::string name;
        int variant = 0;
    };
    std::vector<WorkSpec> specs;
    ExperimentOptions opts;
    opts.timeScale = envTimeScale(50.0);
    opts.dtm = DtmMode::StopAndGo;
    double noise = 0.0;
    int deschedule = 0;
    std::string trace_path;
    bool dump_stats = false;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--spec") {
            specs.push_back({WorkSpec::Kind::Spec, need(i), 0});
        } else if (arg == "--variant") {
            specs.push_back(
                {WorkSpec::Kind::Variant, "", std::atoi(need(i))});
        } else if (arg == "--asm") {
            specs.push_back({WorkSpec::Kind::Asm, need(i), 0});
        } else if (arg == "--dtm") {
            opts.dtm = parseDtm(need(i));
        } else if (arg == "--sink") {
            std::string s = need(i);
            opts.sink = s == "ideal" ? SinkType::Ideal
                                     : SinkType::Realistic;
        } else if (arg == "--scale") {
            opts.timeScale = std::atof(need(i));
        } else if (arg == "--conv") {
            opts.convectionR = std::atof(need(i));
        } else if (arg == "--upper") {
            opts.upperThreshold = std::atof(need(i));
        } else if (arg == "--lower") {
            opts.lowerThreshold = std::atof(need(i));
        } else if (arg == "--noise") {
            noise = std::atof(need(i));
        } else if (arg == "--deschedule") {
            deschedule = std::atoi(need(i));
        } else if (arg == "--trace") {
            trace_path = need(i);
            opts.recordTempTrace = true;
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--list") {
            for (const SpecProfile &p : specSuite())
                std::printf("%s\n", p.name.c_str());
            return 0;
        } else {
            usage(argv[0]);
        }
    }
    if (specs.empty()) {
        std::fprintf(stderr, "no workloads given; try --spec gcc "
                             "--variant 2\n");
        usage(argv[0]);
    }

    // Build workloads only after every option (notably --scale) is
    // parsed, so malicious phase lengths scale correctly.
    std::vector<Program> workloads;
    for (const WorkSpec &w : specs) {
        switch (w.kind) {
          case WorkSpec::Kind::Spec:
            workloads.push_back(synthesizeSpec(w.name));
            break;
          case WorkSpec::Kind::Variant:
            workloads.push_back(makeVariant(
                w.variant, MaliciousParams{}.scaled(opts.timeScale)));
            break;
          case WorkSpec::Kind::Asm:
            workloads.push_back(loadAsm(w.name));
            break;
        }
    }

    SimConfig cfg = makeSimConfig(opts);
    cfg.sensorNoiseK = noise;
    if (deschedule > 0) {
        cfg.descheduleRepeatOffenders = true;
        cfg.offenderPolicy.reportsBeforeDeschedule = deschedule;
    }
    if (static_cast<int>(workloads.size()) > cfg.smt.numThreads)
        cfg.smt.numThreads = static_cast<int>(workloads.size());

    Simulator sim(cfg);
    for (size_t t = 0; t < workloads.size(); ++t)
        sim.setWorkload(static_cast<ThreadId>(t),
                        std::move(workloads[t]));

    RunResult r = sim.run();

    std::printf("quantum: %llu cycles (scale 1/%g), dtm=%s, "
                "power=%.1fW, peak=%.2fK (%s), emergencies=%llu\n",
                static_cast<unsigned long long>(r.cycles),
                opts.timeScale, dtmModeName(cfg.dtm),
                r.avgTotalPowerW, r.peakTempOverall,
                blockName(r.hottestBlock),
                static_cast<unsigned long long>(r.emergencies));
    TablePrinter table(std::cout);
    table.header({"thread", "program", "IPC", "IntReg/cyc", "normal%",
                  "cooling%", "sedated%"});
    for (size_t t = 0; t < r.threads.size(); ++t) {
        const ThreadResult &tr = r.threads[t];
        table.row({std::to_string(t), tr.program,
                   TablePrinter::num(tr.ipc),
                   TablePrinter::num(tr.intRegAccessRate),
                   TablePrinter::num(r.normalFraction(t) * 100, 1),
                   TablePrinter::num(r.coolingFraction(t) * 100, 1),
                   TablePrinter::num(r.sedationFraction(t) * 100, 1)});
    }
    if (!r.sedationEvents.empty()) {
        std::printf("%zu sedation action(s); first at cycle %llu "
                    "(thread %d, %s)\n",
                    r.sedationEvents.size(),
                    static_cast<unsigned long long>(
                        r.sedationEvents[0].cycle),
                    r.sedationEvents[0].thread,
                    blockName(r.sedationEvents[0].resource));
    }
    for (ThreadId t : r.descheduledThreads)
        std::printf("OS descheduled repeat offender: thread %d\n", t);

    if (!trace_path.empty()) {
        std::ofstream csv(trace_path);
        csv << "cycle,intreg_K,hottest_K,sink_K\n";
        for (const TempSample &s : r.tempTrace)
            csv << s.cycle << "," << s.intRegTemp << ","
                << s.hottestTemp << "," << s.sinkTemp << "\n";
        std::printf("wrote %zu trace samples to %s\n",
                    r.tempTrace.size(), trace_path.c_str());
    }
    if (dump_stats)
        sim.dumpStats(std::cout);
    return 0;
}
