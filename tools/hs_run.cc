/**
 * @file
 * hs_run — command-line driver for the heat-stroke simulator.
 *
 * Runs an arbitrary workload mix for one OS quantum and prints the
 * per-thread results plus (optionally) the full statistics dump, a
 * temperature-trace CSV, or a structured JSON/CSV result file. With
 * --each the workloads become independent solo runs executed by the
 * parallel experiment engine.
 *
 * Usage:
 *   hs_run [options]
 * Options:
 *   --spec NAME          add a synthetic SPEC thread (repeatable)
 *   --variant N          add malicious variant N in {1..4} (repeatable)
 *   --asm FILE           add a thread assembled from FILE (repeatable)
 *   --each               run each workload as its own solo quantum
 *                        (a RunSpec matrix) instead of co-scheduled
 *   --jobs N             engine worker threads (default: HS_JOBS or
 *                        all hardware threads)
 *   --json FILE          write specs + results as JSON ("-" = stdout)
 *   --csv FILE           write per-thread results as CSV ("-" = stdout)
 *   --dtm MODE           none|stopgo|sedation|dvfs|fetchgate
 *                        (default stopgo)
 *   --sink ideal|real    heat sink model (default real)
 *   --scale S            time scale (default 50; 1 = paper scale)
 *   --conv R             convection resistance K/W (default 0.8)
 *   --upper K --lower K  sedation thresholds (default 356 / 355)
 *   --noise K            sensor noise amplitude (default 0)
 *   --deschedule N       OS extension: deschedule after N reports
 *   --trace FILE         write temperature trace CSV (single run only)
 *   --stats              dump full statistics (single run only)
 *   --profile            print per-cost-centre cycle/time shares
 *                        (single run only)
 *   --list               list available SPEC profiles and exit
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/result_store.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"

namespace {

using namespace hs;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--spec NAME]... [--variant N]... "
                 "[--asm FILE]...\n"
                 "       [--each] [--jobs N] [--json FILE] "
                 "[--csv FILE]\n"
                 "       [--dtm none|stopgo|sedation|dvfs|fetchgate] "
                 "[--sink ideal|real]\n"
                 "       [--scale S] [--conv R] [--upper K] "
                 "[--lower K] [--noise K]\n"
                 "       [--deschedule N] [--trace FILE] [--stats] "
                 "[--profile] [--list]\n",
                 argv0);
    std::exit(2);
}

DtmMode
parseDtm(const std::string &s)
{
    if (s == "none")
        return DtmMode::None;
    if (s == "stopgo" || s == "stop-and-go")
        return DtmMode::StopAndGo;
    if (s == "sedation")
        return DtmMode::SelectiveSedation;
    if (s == "dvfs")
        return DtmMode::DvfsThrottle;
    if (s == "fetchgate" || s == "fetch-gating")
        return DtmMode::FetchGating;
    fatal("unknown DTM mode '%s'", s.c_str());
}

WorkloadSpec
loadAsm(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open assembly file '%s'", path.c_str());
    std::stringstream buf;
    buf << in.rdbuf();
    return WorkloadSpec::assembly(path, buf.str());
}

void
printRun(const RunSpec &spec, const RunResult &r)
{
    std::printf("quantum: %llu cycles (scale 1/%g), dtm=%s, "
                "power=%.1fW, peak=%.2fK (%s), emergencies=%llu\n",
                static_cast<unsigned long long>(r.cycles),
                spec.opts.timeScale,
                dtmModeName(spec.opts.sink == SinkType::Ideal
                                ? DtmMode::None
                                : spec.opts.dtm),
                r.avgTotalPowerW, r.peakTempOverall,
                blockName(r.hottestBlock),
                static_cast<unsigned long long>(r.emergencies));
    TablePrinter table(std::cout);
    table.header({"thread", "program", "IPC", "IntReg/cyc", "normal%",
                  "cooling%", "sedated%"});
    for (size_t t = 0; t < r.threads.size(); ++t) {
        const ThreadResult &tr = r.threads[t];
        table.row({std::to_string(t), tr.program,
                   TablePrinter::num(tr.ipc),
                   TablePrinter::num(tr.intRegAccessRate),
                   TablePrinter::num(r.normalFraction(t) * 100, 1),
                   TablePrinter::num(r.coolingFraction(t) * 100, 1),
                   TablePrinter::num(r.sedationFraction(t) * 100, 1)});
    }
    if (!r.sedationEvents.empty()) {
        std::printf("%zu sedation action(s); first at cycle %llu "
                    "(thread %d, %s)\n",
                    r.sedationEvents.size(),
                    static_cast<unsigned long long>(
                        r.sedationEvents[0].cycle),
                    r.sedationEvents[0].thread,
                    blockName(r.sedationEvents[0].resource));
    }
    for (ThreadId t : r.descheduledThreads)
        std::printf("OS descheduled repeat offender: thread %d\n", t);
}

/** Cost-centre table for --profile (fed by Simulator::profile()). */
void
printProfile(const SimProfile &p)
{
    uint64_t cycles = p.tickedCycles + p.stalledCycles;
    auto cycle_share = [&](uint64_t c) {
        return cycles ? 100.0 * static_cast<double>(c) /
                            static_cast<double>(cycles)
                      : 0.0;
    };
    auto time_share = [&](double s) {
        return p.totalSeconds > 0 ? 100.0 * s / p.totalSeconds : 0.0;
    };
    std::printf("\nprofile: %.3f s wall for %llu cycles\n",
                p.totalSeconds,
                static_cast<unsigned long long>(cycles));
    TablePrinter table(std::cout);
    table.header({"cost centre", "events", "cycles", "cyc%", "seconds",
                  "time%"});
    table.row({"tick",
               TablePrinter::num(static_cast<double>(p.tickedCycles), 0),
               TablePrinter::num(static_cast<double>(p.tickedCycles), 0),
               TablePrinter::num(cycle_share(p.tickedCycles), 1),
               TablePrinter::num(p.tickSeconds, 3),
               TablePrinter::num(time_share(p.tickSeconds), 1)});
    table.row({"thermal",
               TablePrinter::num(static_cast<double>(p.sensorSamples), 0),
               "-", "-",
               TablePrinter::num(p.thermalSeconds, 3),
               TablePrinter::num(time_share(p.thermalSeconds), 1)});
    table.row({"stalled",
               TablePrinter::num(static_cast<double>(p.stalledCycles), 0),
               TablePrinter::num(static_cast<double>(p.stalledCycles), 0),
               TablePrinter::num(cycle_share(p.stalledCycles), 1),
               TablePrinter::num(p.stallSeconds, 3),
               TablePrinter::num(time_share(p.stallSeconds), 1)});
    table.row({"snapshot",
               TablePrinter::num(static_cast<double>(p.snapshotOps), 0),
               "-", "-",
               TablePrinter::num(p.snapshotSeconds, 3),
               TablePrinter::num(time_share(p.snapshotSeconds), 1)});
    std::printf("rows: tick = cycle-by-cycle execution, thermal = "
                "sensor sampling + RC step,\nstalled = advanceStalled "
                "fast-forward, snapshot = save/restore byte copies.\n");
}

/** Open @p path for writing, with "-" meaning stdout. */
void
withOutput(const std::string &path,
           const std::function<void(std::ostream &)> &fn)
{
    if (path == "-") {
        fn(std::cout);
        return;
    }
    std::ofstream out(path);
    if (!out)
        fatal("cannot write '%s'", path.c_str());
    fn(out);
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<WorkloadSpec> workloads;
    ExperimentOptions opts;
    opts.timeScale = envTimeScale(50.0);
    opts.dtm = DtmMode::StopAndGo;
    double noise = 0.0;
    int deschedule = 0;
    int jobs = 0;
    bool each = false;
    std::string trace_path, json_path, csv_path;
    bool dump_stats = false;
    bool profile = false;

    auto need = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--spec") {
            workloads.push_back(WorkloadSpec::spec(need(i)));
        } else if (arg == "--variant") {
            workloads.push_back(
                WorkloadSpec::maliciousVariant(std::atoi(need(i))));
        } else if (arg == "--asm") {
            workloads.push_back(loadAsm(need(i)));
        } else if (arg == "--each") {
            each = true;
        } else if (arg == "--jobs") {
            jobs = std::atoi(need(i));
            if (jobs <= 0)
                fatal("--jobs must be a positive integer");
        } else if (arg == "--json") {
            json_path = need(i);
        } else if (arg == "--csv") {
            csv_path = need(i);
        } else if (arg == "--dtm") {
            opts.dtm = parseDtm(need(i));
        } else if (arg == "--sink") {
            std::string s = need(i);
            opts.sink = s == "ideal" ? SinkType::Ideal
                                     : SinkType::Realistic;
        } else if (arg == "--scale") {
            opts.timeScale = std::atof(need(i));
        } else if (arg == "--conv") {
            opts.convectionR = std::atof(need(i));
        } else if (arg == "--upper") {
            opts.upperThreshold = std::atof(need(i));
        } else if (arg == "--lower") {
            opts.lowerThreshold = std::atof(need(i));
        } else if (arg == "--noise") {
            noise = std::atof(need(i));
        } else if (arg == "--deschedule") {
            deschedule = std::atoi(need(i));
        } else if (arg == "--trace") {
            trace_path = need(i);
            opts.recordTempTrace = true;
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--profile") {
            profile = true;
        } else if (arg == "--list") {
            for (const SpecProfile &p : specSuite())
                std::printf("%s\n", p.name.c_str());
            return 0;
        } else {
            usage(argv[0]);
        }
    }
    if (workloads.empty()) {
        std::fprintf(stderr, "no workloads given; try --spec gcc "
                             "--variant 2\n");
        usage(argv[0]);
    }

    // Declare the run matrix: one co-scheduled mix, or (--each) one
    // solo run per workload.
    std::vector<RunSpec> specs;
    if (each) {
        if (dump_stats || profile || !trace_path.empty())
            fatal("--stats/--profile/--trace apply to a single run; "
                  "drop --each");
        for (const WorkloadSpec &w : workloads) {
            RunSpec s;
            s.workloads.push_back(w);
            s.opts = opts;
            s.sensorNoiseK = noise;
            s.descheduleAfter = deschedule;
            s.label = w.name;
            specs.push_back(s);
        }
    } else {
        RunSpec s;
        s.workloads = workloads;
        s.opts = opts;
        s.sensorNoiseK = noise;
        s.descheduleAfter = deschedule;
        s.label = "mix";
        specs.push_back(s);
    }

    std::vector<RunResult> results;
    if (dump_stats || profile) {
        // The statistics/profile dumps need the live simulator, so
        // this path runs serially outside the engine.
        std::unique_ptr<Simulator> sim = makeSimulator(specs[0]);
        sim->setProfiling(profile);
        results.push_back(sim->run());
        printRun(specs[0], results[0]);
        if (dump_stats)
            sim->dumpStats(std::cout);
        if (profile)
            printProfile(sim->profile());
    } else {
        ParallelRunner runner(jobs > 0 ? jobs : envJobs(0),
                              &ResultStore::global());
        results = runner.run(specs);
        for (size_t i = 0; i < specs.size(); ++i) {
            if (i)
                std::printf("\n");
            printRun(specs[i], results[i]);
        }
        PrefixShareStats ps = runner.prefixStats();
        if (ps.groups > 0)
            std::printf("\nprefix sharing: %llu group(s), %llu forked "
                        "run(s), %.1f Mcycles not re-simulated\n",
                        static_cast<unsigned long long>(ps.groups),
                        static_cast<unsigned long long>(ps.forkedRuns),
                        static_cast<double>(ps.savedCycles) / 1e6);
    }

    if (!trace_path.empty()) {
        const RunResult &r = results[0];
        std::ofstream csv(trace_path);
        csv << "cycle,intreg_K,hottest_K,sink_K\n";
        for (const TempSample &s : r.tempTrace)
            csv << s.cycle << "," << s.intRegTemp << ","
                << s.hottestTemp << "," << s.sinkTemp << "\n";
        std::printf("wrote %zu trace samples to %s\n",
                    r.tempTrace.size(), trace_path.c_str());
    }
    if (!json_path.empty())
        withOutput(json_path, [&](std::ostream &os) {
            writeMatrixJson(os, specs, results);
        });
    if (!csv_path.empty())
        withOutput(csv_path, [&](std::ostream &os) {
            writeMatrixCsv(os, specs, results);
        });
    return 0;
}
