/**
 * @file
 * hs_run — command-line driver for the heat-stroke simulator.
 *
 * Runs an arbitrary workload mix for one OS quantum and prints the
 * per-thread results plus (optionally) the full statistics dump, a
 * temperature-trace CSV, a structured event trace (JSONL or Chrome
 * trace_event JSON), or a structured JSON/CSV result file. With --each
 * the workloads become independent solo runs executed by the parallel
 * experiment engine.
 *
 * Usage:
 *   hs_run [options]
 * Options (values as "--opt VALUE" or "--opt=VALUE"):
 *   --spec NAME          add a synthetic SPEC thread (repeatable)
 *   --variant N          add malicious variant N in {1..4} (repeatable)
 *   --asm FILE           add a thread assembled from FILE (repeatable)
 *   --each               run each workload as its own solo quantum
 *                        (a RunSpec matrix) instead of co-scheduled
 *   --cores N            compose N core tiles on one shared die
 *                        (default 1; see docs/TOPOLOGY.md)
 *   --place a,b,...      core of each workload in listing order
 *                        (entries in [0,cores); default: all on
 *                        core 0; needs --cores, not with --each)
 *   --jobs N             engine worker threads (default: HS_JOBS or
 *                        all hardware threads)
 *   --batch N            lockstep batch width (default: HS_BATCH or 1;
 *                        1 = solo path, >= 2 advances up to N sibling
 *                        cells per scout; see docs/PERFORMANCE.md)
 *   --store DIR          persistent content-addressed result store:
 *                        finished cells are written to DIR and later
 *                        runs (any process, any machine sharing DIR)
 *                        serve them from disk instead of simulating;
 *                        a campaign manifest (DIR/manifest.hsm) makes
 *                        interrupted sweeps resumable
 *                        (default: HS_STORE; see docs/DISTRIBUTED.md)
 *   --serve PORT         run as a TCP worker: listen on PORT, execute
 *                        RunSpecs a coordinator ships, stream results
 *                        back (no workloads on the command line)
 *   --workers LIST       shard cells across TCP workers, e.g.
 *                        "host:7401,host:7402"; each worker is one
 *                        extra engine lane, with local fallback when
 *                        a worker dies
 *   --log-json FILE      write the structured operational log (one
 *                        JSON object per line; see
 *                        docs/OBSERVABILITY.md) to FILE; same sink
 *                        as HS_LOG_JSON, the flag wins
 *   --events FILE        write the campaign timeline — runner cell
 *                        lifecycle plus fleet telemetry events — to
 *                        FILE for hs_report --events (default:
 *                        <store>/events.jsonl when --store is set)
 *   --status-port P      serve live Prometheus-style campaign
 *                        counters over HTTP on port P while the
 *                        engine runs (HS_STATUS_PORT; the flag wins)
 *   --json FILE          write specs + results + metrics as JSON
 *                        ("-" = stdout)
 *   --csv FILE           write per-thread results as CSV ("-" = stdout)
 *   --dtm MODE           none|stopgo|sedation|dvfs|fetchgate
 *                        (default stopgo)
 *   --sink ideal|real    heat sink model (default real)
 *   --scale S            time scale (default 50; 1 = paper scale)
 *   --conv R             convection resistance K/W (default 0.8)
 *   --upper K --lower K  sedation thresholds (default 356 / 355)
 *   --noise K            sensor noise amplitude (default 0)
 *   --deschedule N       OS extension: deschedule after N reports
 *   --progress           live engine status on stderr: completed/total
 *                        cells, ETA from the cell-time histogram, and
 *                        a slow-cell watchdog (HS_WATCHDOG multiple of
 *                        the median). Single-line redraw on a TTY,
 *                        plain periodic lines otherwise.
 *   --trace FILE         write the structured event trace (single run
 *                        only); *.jsonl = one JSON object per line,
 *                        anything else = Chrome trace_event JSON
 *                        (load in chrome://tracing or Perfetto).
 *                        Implies the temperature trace, so a single
 *                        --trace --json run carries everything
 *                        hs_report needs.
 *   --trace-filter CATS  comma list of categories to write
 *                        (dtm,thermal,monitor,fetch,episode)
 *   --temp-trace FILE    write temperature trace CSV (single run only)
 *   --stats              dump full statistics (single run only)
 *   --profile            print per-cost-centre cycle/time shares
 *                        (single run only)
 *   --list               list available SPEC profiles and exit
 *
 * Every argument must parse exactly: unknown options, missing or
 * malformed values, and trailing garbage all exit 2 via usage().
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/log.hh"
#include "sim/disk_store.hh"
#include "sim/manifest.hh"
#include "sim/progress.hh"
#include "sim/remote.hh"
#include "sim/result_store.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"
#include "sim/status.hh"
#include "trace/metrics.hh"
#include "trace/writers.hh"

namespace {

using namespace hs;

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--spec NAME]... [--variant N]... "
                 "[--asm FILE]...\n"
                 "       [--each] [--cores N] [--place a,b,...] "
                 "[--jobs N] [--batch N] [--json FILE] [--csv FILE]\n"
                 "       [--store DIR] [--serve PORT] "
                 "[--workers host:port,...]\n"
                 "       [--log-json FILE] [--events FILE] "
                 "[--status-port PORT]\n"
                 "       [--dtm none|stopgo|sedation|dvfs|fetchgate] "
                 "[--sink ideal|real]\n"
                 "       [--scale S] [--conv R] [--upper K] "
                 "[--lower K] [--noise K]\n"
                 "       [--deschedule N] [--progress] [--trace FILE] "
                 "[--trace-filter CAT,...]\n"
                 "       [--temp-trace FILE] [--stats] [--profile] "
                 "[--list]\n",
                 argv0);
    std::exit(2);
}

/** Report a bad option value and exit through usage(). */
[[noreturn]] void
badValue(const char *argv0, const std::string &opt,
         const std::string &value, const char *expected)
{
    std::fprintf(stderr, "%s: bad value '%s' for %s (expected %s)\n",
                 argv0, value.c_str(), opt.c_str(), expected);
    usage(argv0);
}

/** Strict integer parse: the whole string must be consumed. */
long
parseInt(const char *argv0, const std::string &opt,
         const std::string &value)
{
    const char *s = value.c_str();
    char *end = nullptr;
    long v = std::strtol(s, &end, 10);
    if (end == s || *end != '\0')
        badValue(argv0, opt, value, "an integer");
    return v;
}

/** Strict floating-point parse: the whole string must be consumed. */
double
parseDouble(const char *argv0, const std::string &opt,
            const std::string &value)
{
    const char *s = value.c_str();
    char *end = nullptr;
    double v = std::strtod(s, &end);
    if (end == s || *end != '\0')
        badValue(argv0, opt, value, "a number");
    return v;
}

bool
parseDtm(const std::string &s, DtmMode &out)
{
    if (s == "none")
        out = DtmMode::None;
    else if (s == "stopgo" || s == "stop-and-go")
        out = DtmMode::StopAndGo;
    else if (s == "sedation")
        out = DtmMode::SelectiveSedation;
    else if (s == "dvfs")
        out = DtmMode::DvfsThrottle;
    else if (s == "fetchgate" || s == "fetch-gating")
        out = DtmMode::FetchGating;
    else
        return false;
    return true;
}

WorkloadSpec
loadAsm(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open assembly file '%s'", path.c_str());
    std::stringstream buf;
    buf << in.rdbuf();
    return WorkloadSpec::assembly(path, buf.str());
}

void
printRun(const RunSpec &spec, const RunResult &r)
{
    std::printf("quantum: %llu cycles (scale 1/%g), dtm=%s, "
                "power=%.1fW, peak=%.2fK (%s), emergencies=%llu\n",
                static_cast<unsigned long long>(r.cycles),
                spec.opts.timeScale,
                dtmModeName(spec.opts.sink == SinkType::Ideal
                                ? DtmMode::None
                                : spec.opts.dtm),
                r.avgTotalPowerW, r.peakTempOverall,
                blockName(r.hottestBlock),
                static_cast<unsigned long long>(r.emergencies));
    if (r.numCores > 1) {
        TablePrinter cores_table(std::cout);
        cores_table.header({"core", "peak K", "hottest", "emergencies",
                            "stop&go", "stall cycles"});
        for (const CoreResult &cr : r.cores)
            cores_table.row(
                {std::to_string(cr.core),
                 TablePrinter::num(cr.peakTempOverall),
                 blockName(cr.hottestBlock),
                 std::to_string(cr.emergencies),
                 std::to_string(cr.stopAndGoTriggers),
                 std::to_string(cr.coolingStallCycles)});
        std::printf("\n");
    }
    TablePrinter table(std::cout);
    std::vector<std::string> head{"thread", "program", "IPC",
                                  "IntReg/cyc", "normal%", "cooling%",
                                  "sedated%"};
    if (r.numCores > 1)
        head.insert(head.begin() + 1, "core");
    table.header(head);
    for (size_t t = 0; t < r.threads.size(); ++t) {
        const ThreadResult &tr = r.threads[t];
        std::vector<std::string> row{
            std::to_string(t), tr.program, TablePrinter::num(tr.ipc),
            TablePrinter::num(tr.intRegAccessRate),
            TablePrinter::num(r.normalFraction(t) * 100, 1),
            TablePrinter::num(r.coolingFraction(t) * 100, 1),
            TablePrinter::num(r.sedationFraction(t) * 100, 1)};
        if (r.numCores > 1)
            row.insert(row.begin() + 1, std::to_string(tr.core));
        table.row(row);
    }
    if (!r.sedationEvents.empty()) {
        std::printf("%zu sedation action(s); first at cycle %llu "
                    "(thread %d, %s)\n",
                    r.sedationEvents.size(),
                    static_cast<unsigned long long>(
                        r.sedationEvents[0].cycle),
                    r.sedationEvents[0].thread,
                    blockName(r.sedationEvents[0].resource));
    }
    for (ThreadId t : r.descheduledThreads)
        std::printf("OS descheduled repeat offender: thread %d\n", t);
}

/** Cost-centre table for --profile (fed by Simulator::profile()). */
void
printProfile(const SimProfile &p)
{
    uint64_t cycles = p.tickedCycles + p.stalledCycles;
    auto cycle_share = [&](uint64_t c) {
        return cycles ? 100.0 * static_cast<double>(c) /
                            static_cast<double>(cycles)
                      : 0.0;
    };
    auto time_share = [&](double s) {
        return p.totalSeconds > 0 ? 100.0 * s / p.totalSeconds : 0.0;
    };
    std::printf("\nprofile: %.3f s wall for %llu cycles\n",
                p.totalSeconds,
                static_cast<unsigned long long>(cycles));
    TablePrinter table(std::cout);
    table.header({"cost centre", "events", "cycles", "cyc%", "seconds",
                  "time%"});
    table.row({"tick",
               TablePrinter::num(static_cast<double>(p.tickedCycles), 0),
               TablePrinter::num(static_cast<double>(p.tickedCycles), 0),
               TablePrinter::num(cycle_share(p.tickedCycles), 1),
               TablePrinter::num(p.tickSeconds, 3),
               TablePrinter::num(time_share(p.tickSeconds), 1)});
    table.row({"thermal",
               TablePrinter::num(static_cast<double>(p.sensorSamples), 0),
               "-", "-",
               TablePrinter::num(p.thermalSeconds, 3),
               TablePrinter::num(time_share(p.thermalSeconds), 1)});
    table.row({"stalled",
               TablePrinter::num(static_cast<double>(p.stalledCycles), 0),
               TablePrinter::num(static_cast<double>(p.stalledCycles), 0),
               TablePrinter::num(cycle_share(p.stalledCycles), 1),
               TablePrinter::num(p.stallSeconds, 3),
               TablePrinter::num(time_share(p.stallSeconds), 1)});
    table.row({"snapshot",
               TablePrinter::num(static_cast<double>(p.snapshotOps), 0),
               "-", "-",
               TablePrinter::num(p.snapshotSeconds, 3),
               TablePrinter::num(time_share(p.snapshotSeconds), 1)});
    std::printf("rows: tick = cycle-by-cycle execution, thermal = "
                "sensor sampling + RC step,\nstalled = advanceStalled "
                "fast-forward, snapshot = save/restore byte copies.\n");
}

/** Open @p path for writing, with "-" meaning stdout. */
void
withOutput(const std::string &path,
           const std::function<void(std::ostream &)> &fn)
{
    if (path == "-") {
        fn(std::cout);
        return;
    }
    std::ofstream out(path);
    if (!out)
        fatal("cannot write '%s'", path.c_str());
    fn(out);
    std::printf("wrote %s\n", path.c_str());
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

/**
 * Live campaign counters fed by the structured-log observer and served
 * by --status-port. Pure observability: bumped off the simulated path,
 * read lock-free by the status thread.
 */
struct StatusCounters
{
    std::atomic<uint64_t> cellsTotal{0};
    std::atomic<uint64_t> cellsRunning{0};
    std::atomic<uint64_t> cellsDone{0};
    std::atomic<uint64_t> memoryHits{0};
    std::atomic<uint64_t> diskHits{0};
    std::atomic<uint64_t> remoteCells{0};
    std::atomic<uint64_t> faultFires{0};
    std::atomic<uint64_t> heartbeats{0};
};

/** Prometheus text-format snapshot of @p c. */
std::string
renderStatus(const StatusCounters &c)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "hs_cells_total %llu\n"
        "hs_cells_running %llu\n"
        "hs_cells_done %llu\n"
        "hs_hits_memory %llu\n"
        "hs_hits_disk %llu\n"
        "hs_cells_remote %llu\n"
        "hs_fault_fires %llu\n"
        "hs_worker_heartbeats %llu\n",
        static_cast<unsigned long long>(c.cellsTotal.load()),
        static_cast<unsigned long long>(c.cellsRunning.load()),
        static_cast<unsigned long long>(c.cellsDone.load()),
        static_cast<unsigned long long>(c.memoryHits.load()),
        static_cast<unsigned long long>(c.diskHits.load()),
        static_cast<unsigned long long>(c.remoteCells.load()),
        static_cast<unsigned long long>(c.faultFires.load()),
        static_cast<unsigned long long>(c.heartbeats.load()));
    return buf;
}

/** Fold one structured-log event into the live counters. */
void
countEvent(StatusCounters &c, const LogEventView &v)
{
    if (std::strcmp(v.component, "runner") == 0) {
        if (std::strcmp(v.event, "queued") == 0) {
            c.cellsTotal.fetch_add(1);
        } else if (std::strcmp(v.event, "started") == 0) {
            c.cellsRunning.fetch_add(1);
        } else if (std::strcmp(v.event, "finished") == 0) {
            c.cellsRunning.fetch_sub(1);
            c.cellsDone.fetch_add(1);
        } else if (std::strcmp(v.event, "remote_finished") == 0) {
            c.cellsRunning.fetch_sub(1);
            c.cellsDone.fetch_add(1);
            c.remoteCells.fetch_add(1);
        } else if (std::strcmp(v.event, "cache_hit") == 0) {
            c.memoryHits.fetch_add(1);
            c.cellsDone.fetch_add(1);
        } else if (std::strcmp(v.event, "disk_hit") == 0) {
            c.diskHits.fetch_add(1);
            c.cellsDone.fetch_add(1);
        }
    } else if (std::strcmp(v.component, "fault") == 0) {
        if (std::strcmp(v.event, "fire") == 0)
            c.faultFires.fetch_add(1);
    } else if (std::strcmp(v.component, "remote") == 0) {
        if (std::strcmp(v.event, "heartbeat") == 0)
            c.heartbeats.fetch_add(1);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<WorkloadSpec> workloads;
    ExperimentOptions opts;
    opts.timeScale = envTimeScale(50.0);
    opts.dtm = DtmMode::StopAndGo;
    double noise = 0.0;
    int deschedule = 0;
    int jobs = 0;
    int batch = 0; // 0 = unset: the engine falls back to HS_BATCH
    std::string store_path;
    int serve_port = 0; // 0 = not a worker
    std::vector<Endpoint> worker_endpoints;
    bool each = false;
    int cores = 1;
    std::vector<int> place;
    bool have_place = false;
    std::string temp_trace_path, trace_path, trace_filter;
    std::string json_path, csv_path;
    std::string log_json_path, events_path;
    int status_port = 0; // 0 = no status server (or HS_STATUS_PORT)
    bool dump_stats = false;
    bool profile = false;
    bool progress = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        // Accept both "--opt VALUE" and "--opt=VALUE".
        std::string inline_value;
        bool has_inline = false;
        if (arg.size() > 2 && arg.compare(0, 2, "--") == 0) {
            size_t eq = arg.find('=');
            if (eq != std::string::npos) {
                inline_value = arg.substr(eq + 1);
                arg = arg.substr(0, eq);
                has_inline = true;
            }
        }
        auto value = [&]() -> std::string {
            if (has_inline)
                return inline_value;
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             arg.c_str());
                usage(argv[0]);
            }
            return argv[++i];
        };
        auto flagOnly = [&]() {
            if (has_inline) {
                std::fprintf(stderr, "%s: %s takes no value\n", argv[0],
                             arg.c_str());
                usage(argv[0]);
            }
        };

        if (arg == "--spec") {
            workloads.push_back(WorkloadSpec::spec(value()));
        } else if (arg == "--variant") {
            std::string v = value();
            long n = parseInt(argv[0], arg, v);
            if (n < 1 || n > 4)
                badValue(argv[0], arg, v, "1..4");
            workloads.push_back(
                WorkloadSpec::maliciousVariant(static_cast<int>(n)));
        } else if (arg == "--asm") {
            workloads.push_back(loadAsm(value()));
        } else if (arg == "--each") {
            flagOnly();
            each = true;
        } else if (arg == "--cores") {
            std::string v = value();
            long n = parseInt(argv[0], arg, v);
            if (n < 1)
                badValue(argv[0], arg, v, "a positive integer");
            cores = static_cast<int>(n);
        } else if (arg == "--place") {
            std::string v = value();
            place.clear();
            have_place = true;
            size_t pos = 0;
            while (true) {
                size_t comma = v.find(',', pos);
                std::string item = v.substr(
                    pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
                long n = parseInt(argv[0], arg, item);
                place.push_back(static_cast<int>(n));
                if (comma == std::string::npos)
                    break;
                pos = comma + 1;
            }
        } else if (arg == "--jobs") {
            std::string v = value();
            long n = parseInt(argv[0], arg, v);
            if (n <= 0)
                badValue(argv[0], arg, v, "a positive integer");
            jobs = static_cast<int>(n);
        } else if (arg == "--batch") {
            std::string v = value();
            long n = parseInt(argv[0], arg, v);
            if (n <= 0)
                badValue(argv[0], arg, v, "a positive integer");
            batch = static_cast<int>(n);
        } else if (arg == "--store") {
            store_path = value();
            if (store_path.empty())
                badValue(argv[0], arg, store_path, "a directory path");
        } else if (arg == "--serve") {
            std::string v = value();
            long n = parseInt(argv[0], arg, v);
            if (n < 1 || n > 65535)
                badValue(argv[0], arg, v, "a port in 1..65535");
            serve_port = static_cast<int>(n);
        } else if (arg == "--workers") {
            std::string v = value();
            if (!parseEndpoints(v, worker_endpoints))
                badValue(argv[0], arg, v,
                         "a comma list of host:port endpoints");
        } else if (arg == "--log-json") {
            log_json_path = value();
            if (log_json_path.empty())
                badValue(argv[0], arg, log_json_path, "a file path");
        } else if (arg == "--events") {
            events_path = value();
            if (events_path.empty())
                badValue(argv[0], arg, events_path, "a file path");
        } else if (arg == "--status-port") {
            std::string v = value();
            long n = parseInt(argv[0], arg, v);
            if (n < 1 || n > 65535)
                badValue(argv[0], arg, v, "a port in 1..65535");
            status_port = static_cast<int>(n);
        } else if (arg == "--json") {
            json_path = value();
        } else if (arg == "--csv") {
            csv_path = value();
        } else if (arg == "--dtm") {
            std::string v = value();
            if (!parseDtm(v, opts.dtm))
                badValue(argv[0], arg, v,
                         "none|stopgo|sedation|dvfs|fetchgate");
        } else if (arg == "--sink") {
            std::string v = value();
            if (v == "ideal")
                opts.sink = SinkType::Ideal;
            else if (v == "real")
                opts.sink = SinkType::Realistic;
            else
                badValue(argv[0], arg, v, "ideal|real");
        } else if (arg == "--scale") {
            std::string v = value();
            opts.timeScale = parseDouble(argv[0], arg, v);
            if (opts.timeScale <= 0)
                badValue(argv[0], arg, v, "a positive number");
        } else if (arg == "--conv") {
            std::string v = value();
            opts.convectionR = parseDouble(argv[0], arg, v);
            if (opts.convectionR <= 0)
                badValue(argv[0], arg, v, "a positive number");
        } else if (arg == "--upper") {
            opts.upperThreshold = parseDouble(argv[0], arg, value());
        } else if (arg == "--lower") {
            opts.lowerThreshold = parseDouble(argv[0], arg, value());
        } else if (arg == "--noise") {
            std::string v = value();
            noise = parseDouble(argv[0], arg, v);
            if (noise < 0)
                badValue(argv[0], arg, v, "a non-negative number");
        } else if (arg == "--deschedule") {
            std::string v = value();
            long n = parseInt(argv[0], arg, v);
            if (n < 0)
                badValue(argv[0], arg, v, "a non-negative integer");
            deschedule = static_cast<int>(n);
        } else if (arg == "--progress") {
            flagOnly();
            progress = true;
        } else if (arg == "--trace") {
            trace_path = value();
            // A traced run should be enough for hs_report on its own,
            // so it also carries the temperature time series.
            opts.recordTempTrace = true;
        } else if (arg == "--trace-filter") {
            trace_filter = value();
        } else if (arg == "--temp-trace") {
            temp_trace_path = value();
            opts.recordTempTrace = true;
        } else if (arg == "--stats") {
            flagOnly();
            dump_stats = true;
        } else if (arg == "--profile") {
            flagOnly();
            profile = true;
        } else if (arg == "--list") {
            flagOnly();
            for (const SpecProfile &p : specSuite())
                std::printf("%s\n", p.name.c_str());
            return 0;
        } else {
            std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0],
                         argv[i]);
            usage(argv[0]);
        }
    }
    if (serve_port > 0) {
        // A worker is pure transport + compute: it takes its RunSpecs
        // from the coordinator, so a command line that also declares
        // local work is a confused command line. --log-json stays
        // legal: a worker's operational log is exactly what the fleet
        // view wants.
        if (!workloads.empty() || !worker_endpoints.empty() || each ||
            dump_stats || profile || progress || !json_path.empty() ||
            !csv_path.empty() || !trace_path.empty() ||
            !temp_trace_path.empty() || !events_path.empty() ||
            status_port > 0) {
            std::fprintf(stderr,
                         "%s: --serve runs a bare worker; drop "
                         "workloads and output options\n",
                         argv[0]);
            usage(argv[0]);
        }
        if (!log_json_path.empty())
            openJsonLog(log_json_path);
        serveWorker(static_cast<uint16_t>(serve_port));
        closeJsonLog();
        return 0;
    }
    if (workloads.empty()) {
        std::fprintf(stderr, "no workloads given; try --spec gcc "
                             "--variant 2\n");
        usage(argv[0]);
    }
    if (have_place) {
        if (each) {
            std::fprintf(stderr,
                         "%s: --place maps one co-scheduled mix; drop "
                         "--each\n",
                         argv[0]);
            usage(argv[0]);
        }
        if (place.size() != workloads.size()) {
            std::fprintf(stderr,
                         "%s: --place lists %zu cores for %zu "
                         "workloads\n",
                         argv[0], place.size(), workloads.size());
            usage(argv[0]);
        }
        for (int c : place) {
            if (c < 0 || c >= cores) {
                std::fprintf(stderr,
                             "%s: --place entry %d is outside [0, %d); "
                             "raise --cores\n",
                             argv[0], c, cores);
                usage(argv[0]);
            }
        }
    }
    uint32_t trace_mask = traceAllCategories;
    if (!trace_filter.empty()) {
        if (trace_path.empty()) {
            std::fprintf(stderr,
                         "%s: --trace-filter requires --trace\n",
                         argv[0]);
            usage(argv[0]);
        }
        if (!parseTraceFilter(trace_filter, trace_mask))
            badValue(argv[0], "--trace-filter", trace_filter,
                     "a comma list of "
                     "dtm,thermal,monitor,fetch,episode");
    }

    // Declare the run matrix: one co-scheduled mix, or (--each) one
    // solo run per workload.
    std::vector<RunSpec> specs;
    if (each) {
        if (dump_stats || profile || !temp_trace_path.empty() ||
            !trace_path.empty()) {
            std::fprintf(stderr,
                         "%s: --stats/--profile/--trace/--temp-trace "
                         "apply to a single run; drop --each\n",
                         argv[0]);
            usage(argv[0]);
        }
        for (const WorkloadSpec &w : workloads) {
            RunSpec s;
            s.workloads.push_back(w);
            s.opts = opts;
            s.sensorNoiseK = noise;
            s.descheduleAfter = deschedule;
            s.numCores = cores;
            s.label = w.name;
            specs.push_back(s);
        }
    } else {
        RunSpec s;
        s.workloads = workloads;
        s.opts = opts;
        s.sensorNoiseK = noise;
        s.descheduleAfter = deschedule;
        s.traceEvents = !trace_path.empty();
        s.numCores = cores;
        s.placement = place;
        s.label = "mix";
        specs.push_back(s);
    }

    if (!log_json_path.empty())
        openJsonLog(log_json_path);

    StatusCounters counters;
    std::ofstream events_out;
    std::atomic<uint64_t> events_written{0};
    std::unique_ptr<StatusServer> status;

    std::vector<RunResult> results;
    PrefixShareStats engine_stats;
    bool have_engine_stats = false;
    Histogram cell_seconds;
    std::unique_ptr<DiskResultStore> cli_store;
    if (dump_stats || profile) {
        if (progress) {
            std::fprintf(stderr,
                         "%s: --progress needs the engine; drop "
                         "--stats/--profile\n",
                         argv[0]);
            usage(argv[0]);
        }
        if (!worker_endpoints.empty() || !store_path.empty()) {
            std::fprintf(stderr,
                         "%s: --workers/--store need the engine; drop "
                         "--stats/--profile\n",
                         argv[0]);
            usage(argv[0]);
        }
        if (!events_path.empty() || status_port > 0) {
            std::fprintf(stderr,
                         "%s: --events/--status-port need the engine; "
                         "drop --stats/--profile\n",
                         argv[0]);
            usage(argv[0]);
        }
        // The statistics/profile dumps need the live simulator, so
        // this path runs serially outside the engine.
        std::unique_ptr<Simulator> sim = makeSimulator(specs[0]);
        sim->setProfiling(profile);
        results.push_back(sim->run());
        printRun(specs[0], results[0]);
        if (dump_stats)
            sim->dumpStats(std::cout);
        if (profile)
            printProfile(sim->profile());
    } else {
        DiskResultStore *disk = nullptr;
        if (!store_path.empty()) {
            cli_store = std::make_unique<DiskResultStore>(store_path);
            disk = cli_store.get();
        } else {
            disk = envDiskStore();
        }

        // Campaign timeline + live status: both are one observer tee
        // on the structured log, installed before any engine work so
        // every lifecycle event lands in the timeline.
        if (events_path.empty() && disk)
            events_path = disk->dir() + "/events.jsonl";
        uint16_t sport = status_port > 0
                             ? static_cast<uint16_t>(status_port)
                             : envStatusPort();
        if (!events_path.empty() || sport > 0) {
            if (!events_path.empty()) {
                events_out.open(events_path);
                if (!events_out)
                    fatal("cannot write '%s'", events_path.c_str());
            }
            setLogEventObserver([&](const LogEventView &v) {
                if (events_out.is_open()) {
                    events_out << v.jsonLine() << '\n';
                    events_out.flush();
                    events_written.fetch_add(1);
                }
                countEvent(counters, v);
            });
        }
        if (sport > 0)
            status = std::make_unique<StatusServer>(
                sport, [&counters] { return renderStatus(counters); });

        if (disk) {
            ResultStore::global().attachDisk(disk);
            // Campaign manifest: persist the matrix identity before
            // any cell simulates, so an interrupted sweep restarted
            // with the same command line resumes the missing cells.
            CampaignResume resume = prepareCampaign(*disk, specs);
            if (resume.resumed) {
                std::fprintf(stderr,
                             "[campaign] resuming: %llu of %llu cells "
                             "already stored\n",
                             static_cast<unsigned long long>(
                                 resume.storedCells),
                             static_cast<unsigned long long>(
                                 resume.totalCells));
                logEvent("runner", "campaign_resumed",
                         {LogField::num("stored", resume.storedCells),
                          LogField::num("total", resume.totalCells)});
            }
        }

        int engine_jobs = jobs > 0 ? jobs : envJobs(0);
        ParallelRunner runner(engine_jobs, &ResultStore::global());
        if (batch > 0)
            runner.setBatchWidth(batch);
        if (!worker_endpoints.empty())
            runner.setWorkers(worker_endpoints);
        std::unique_ptr<ProgressReporter> reporter;
        if (progress) {
            ProgressOptions popts;
            popts.ansi = streamIsTty(stderr);
            popts.watchdogFactor = envWatchdogFactor();
            reporter = std::make_unique<ProgressReporter>(
                specs.size(), runner.jobs(), popts);
            runner.setCellObserver([&](const CellEvent &ev) {
                reporter->onEvent(ev);
            });
        }
        results = runner.run(specs);
        if (reporter)
            reporter->finish();
        cell_seconds = runner.cellSecondsHistogram();
        for (size_t i = 0; i < specs.size(); ++i) {
            if (i)
                std::printf("\n");
            printRun(specs[i], results[i]);
        }
        engine_stats = runner.prefixStats();
        have_engine_stats = true;
        if (engine_stats.groups > 0)
            std::printf("\nprefix sharing: %llu group(s), %llu forked "
                        "run(s), %.1f Mcycles not re-simulated\n",
                        static_cast<unsigned long long>(
                            engine_stats.groups),
                        static_cast<unsigned long long>(
                            engine_stats.forkedRuns),
                        static_cast<double>(engine_stats.savedCycles) /
                            1e6);
        BatchStats batch_stats = runner.batchStats();
        if (batch_stats.groups > 0)
            std::printf("\nbatch(width %d): %llu group(s), %llu "
                        "lane(s) (%llu peeled), %.1f Mcycles not "
                        "re-simulated\n",
                        runner.batchWidth(),
                        static_cast<unsigned long long>(
                            batch_stats.groups),
                        static_cast<unsigned long long>(
                            batch_stats.lanes),
                        static_cast<unsigned long long>(
                            batch_stats.peeledLanes),
                        static_cast<double>(batch_stats.savedCycles) /
                            1e6);
        if (disk)
            std::printf("\nstore %s: %llu disk hit(s), %llu "
                        "write(s), %llu corrupt record(s) "
                        "recomputed\n",
                        disk->dir().c_str(),
                        static_cast<unsigned long long>(disk->hits()),
                        static_cast<unsigned long long>(
                            disk->writes()),
                        static_cast<unsigned long long>(
                            disk->corrupt()));
        if (!worker_endpoints.empty()) {
            RemoteStats rs = runner.remoteStats();
            std::printf("\nremote: %llu/%zu worker(s) connected, "
                        "%llu cell(s) simulated remotely, %llu "
                        "requeued locally\n",
                        static_cast<unsigned long long>(rs.workers),
                        worker_endpoints.size(),
                        static_cast<unsigned long long>(
                            rs.remoteCells),
                        static_cast<unsigned long long>(
                            rs.requeuedCells));
            for (const WorkerTelemetry &wt : rs.perWorker)
                std::printf("  worker %s: %llu job(s), %.2fs sim, "
                            "%llu heartbeat(s), %.1f KiB snapshot "
                            "sent, %.1f KiB saved, peak rss %llu "
                            "MiB\n",
                            wt.endpoint.c_str(),
                            static_cast<unsigned long long>(wt.jobs),
                            wt.simSeconds,
                            static_cast<unsigned long long>(
                                wt.heartbeats),
                            static_cast<double>(wt.snapshotBytesSent) /
                                1024.0,
                            static_cast<double>(
                                wt.snapshotBytesSaved) /
                                1024.0,
                            static_cast<unsigned long long>(
                                wt.peakRssKb / 1024));
        }
    }

    // Tear the observability tee down before its capture targets go
    // out of scope; everything after this point is plain output.
    status.reset();
    setLogEventObserver(nullptr);
    if (events_out.is_open()) {
        events_out.close();
        std::printf("wrote %llu event(s) to %s\n",
                    static_cast<unsigned long long>(
                        events_written.load()),
                    events_path.c_str());
    }

    foldRunMetrics(MetricsRegistry::global(), results,
                   have_engine_stats ? &engine_stats : nullptr,
                   have_engine_stats ? &cell_seconds : nullptr);

    if (!temp_trace_path.empty()) {
        const RunResult &r = results[0];
        std::ofstream csv(temp_trace_path);
        csv << "cycle,intreg_K,hottest_K,sink_K\n";
        for (const TempSample &s : r.tempTrace)
            csv << s.cycle << "," << s.intRegTemp << ","
                << s.hottestTemp << "," << s.sinkTemp << "\n";
        std::printf("wrote %zu trace samples to %s\n",
                    r.tempTrace.size(), temp_trace_path.c_str());
    }
    if (!trace_path.empty()) {
        const RunResult &r = results[0];
        withOutput(trace_path, [&](std::ostream &os) {
            if (endsWith(trace_path, ".jsonl")) {
                writeTraceJsonl(os, r.traceEvents, trace_mask);
            } else {
                double cycles_per_us =
                    makeSimConfig(opts).energy.frequencyHz / 1e6;
                writeChromeTrace(os, r.traceEvents, cycles_per_us,
                                 trace_mask);
            }
        });
        std::printf("%zu trace event(s), %llu dropped\n",
                    r.traceEvents.size(),
                    static_cast<unsigned long long>(
                        r.traceEventsDropped));
    }
    if (!json_path.empty())
        withOutput(json_path, [&](std::ostream &os) {
            writeMatrixJson(os, specs, results,
                            &MetricsRegistry::global());
        });
    if (!csv_path.empty())
        withOutput(csv_path, [&](std::ostream &os) {
            writeMatrixCsv(os, specs, results);
        });
    closeJsonLog();
    return 0;
}
