/**
 * @file
 * Many-core die topology: N identical core tiles on one shared die.
 *
 * A Topology places N copies of a per-core floorplan (the EV6 tile) on
 * a near-square grid with a uniform inter-tile gap, and enumerates the
 * cross-core block adjacencies: for every pair of facing tile edges,
 * each block pair whose spans overlap along the seam contributes one
 * lateral coupling, exactly like the intra-tile adjacencies the
 * Floorplan computes for itself. The ThermalModel turns those into
 * conductances with the same sheet-resistance formula it uses inside a
 * tile, lengthened by the inter-tile gap and scaled by an explicit
 * coupling knob, and composes all N per-core RC subgraphs onto one
 * shared spreader/sink package.
 *
 * Core 0 sits at the grid's origin (bottom-left); cores fill rows
 * left-to-right, bottom-to-top. A 1-core topology is a single tile with
 * no cross edges — the degenerate case the byte-identity tests pin.
 */

#ifndef HS_THERMAL_TOPOLOGY_HH
#define HS_THERMAL_TOPOLOGY_HH

#include <vector>

#include "common/blocks.hh"
#include "common/types.hh"
#include "thermal/floorplan.hh"

namespace hs {

/** Tiling and coupling parameters. */
struct TopologyParams
{
    int numCores = 1;
    double coreSpacing = 0.5e-3; ///< edge-to-edge tile gap, metres
    double couplingScale = 1.0;  ///< multiplier on cross-core
                                 ///< conductances (0 decouples cores)
};

/** One lateral coupling across a tile seam. */
struct CrossEdge
{
    int coreA = 0;
    Block blockA = Block::L2;
    int coreB = 0;
    Block blockB = Block::L2;
    double sharedEdge = 0.0; ///< overlap length along the seam, metres
    bool vertical = false;   ///< heat flows vertically (stacked tiles)
};

/** N core tiles arranged on a shared die. */
class Topology
{
  public:
    explicit Topology(const Floorplan &tile,
                      const TopologyParams &params = {});

    int numCores() const { return params_.numCores; }
    const TopologyParams &params() const { return params_; }
    const Floorplan &tile() const { return tile_; }

    int cols() const { return cols_; }
    int rows() const { return rows_; }
    /** Grid column / row of @p core (row 0 at the bottom). */
    int col(int core) const { return core % cols_; }
    int row(int core) const { return core / cols_; }

    /** Die-coordinate origin of @p core's tile, metres. */
    double originX(int core) const;
    double originY(int core) const;

    /** Every cross-tile coupling, in deterministic core/block order. */
    const std::vector<CrossEdge> &crossEdges() const { return edges_; }

    /** Bounding-box width / height of one tile, metres. */
    double tileWidth() const { return maxX_ - minX_; }
    double tileHeight() const { return maxY_ - minY_; }

  private:
    Floorplan tile_;
    TopologyParams params_;
    int cols_ = 1;
    int rows_ = 1;
    double minX_ = 0.0, minY_ = 0.0, maxX_ = 0.0, maxY_ = 0.0;
    std::vector<CrossEdge> edges_;

    void computeCrossEdges();
};

} // namespace hs

#endif // HS_THERMAL_TOPOLOGY_HH
