/**
 * @file
 * Processor floorplan: block rectangles and lateral adjacency.
 *
 * The default floorplan is an Alpha EV6-style layout adapted from the
 * one distributed with HotSpot (which the paper uses for the core,
 * Section 4): an L2 periphery around a core with front-end, FP cluster
 * and integer cluster. Geometry feeds the RC network builder: block
 * areas set vertical resistance and capacitance, shared edges set
 * lateral resistances.
 */

#ifndef HS_THERMAL_FLOORPLAN_HH
#define HS_THERMAL_FLOORPLAN_HH

#include <vector>

#include "common/blocks.hh"

namespace hs {

/** Axis-aligned rectangle in metres. */
struct Rect
{
    double x = 0;
    double y = 0;
    double w = 0;
    double h = 0;

    double area() const { return w * h; }
};

/** Lateral adjacency between two blocks. */
struct Adjacency
{
    Block a;
    Block b;
    double sharedEdge;  ///< length of the common edge, metres
    bool vertical;      ///< true if the shared edge is horizontal
                        ///< (heat flows in y); false for x
};

/** The die floorplan. */
class Floorplan
{
  public:
    /** Construct from explicit rectangles (one per Block). */
    explicit Floorplan(const std::vector<Rect> &rects);

    /** @return the default EV6-style floorplan. */
    static Floorplan ev6();

    /**
     * @return a copy with every linear dimension multiplied by
     * @p linear_factor (areas scale by its square) — a technology
     * shrink without voltage scaling, the power-density trend that
     * motivates the paper (Section 1).
     */
    Floorplan scaled(double linear_factor) const;

    const Rect &rect(Block b) const;
    double area(Block b) const { return rect(b).area(); }

    /** Total die area, m^2. */
    double dieArea() const;

    /** All block pairs that share an edge longer than ~1 um. */
    const std::vector<Adjacency> &adjacencies() const { return adj_; }

  private:
    void computeAdjacency();

    std::vector<Rect> rects_;
    std::vector<Adjacency> adj_;
};

} // namespace hs

#endif // HS_THERMAL_FLOORPLAN_HH
