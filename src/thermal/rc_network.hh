/**
 * @file
 * Generic thermal RC network solver with sparse hot-path kernels.
 *
 * Nodes carry a thermal capacitance and pairwise conductances; any node
 * may also be tied to a fixed-temperature bath (the ambient) through a
 * conductance. Supports transient integration (midpoint RK2 with
 * automatic sub-stepping for stability) and direct steady-state solves
 * (LU with partial pivoting).
 *
 * Topology is entered into per-node sorted adjacency rows — an insert
 * is O(degree), and total memory is O(nodes + edges). (Earlier versions
 * kept a dense n x n matrix whose per-insert row-sum refresh made
 * floorplan construction O(n^3); with N per-core subgraphs tiled into
 * one network the dense matrix itself also became the dominant memory
 * cost, so both are gone.) The per-step kernels run on derived state
 * that is rebuilt lazily after any topology edit:
 *
 *  - a CSR-style adjacency (neighbour indices + conductances in
 *    ascending-j order, so floating-point summation order — and
 *    therefore every temperature — is bit-identical to a dense
 *    `if (g != 0)` row scan),
 *  - the diagonal row sums,
 *  - the stiffest time constant and the RK2 substep count for the last
 *    step size,
 *  - the LU factorisation used by solveSteadyState(), so repeated
 *    solves (warm-up init plus sensitivity sweeps) only pay for the
 *    pivot replay and back-substitution.
 *
 * step() performs no heap allocation once the derived state exists; the
 * RK2 scratch vectors are members sized at construction.
 */

#ifndef HS_THERMAL_RC_NETWORK_HH
#define HS_THERMAL_RC_NETWORK_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace hs {

/** RC thermal network (sparse construction, sparse simulation). */
class RcNetwork
{
  public:
    explicit RcNetwork(int num_nodes);

    /** Add conductance @p g (W/K) between nodes @p a and @p b. */
    void addConductance(int a, int b, double g);

    /**
     * Tie @p node to a fixed bath at @p bath_temp through @p g.
     * Repeated calls on one node accumulate conductance; a different
     * bath temperature combines conductance-weighted with the previous
     * one (the first call on a node adopts its temperature exactly).
     */
    void addBathConductance(int node, double g, Kelvin bath_temp);

    /** Set the capacitance (J/K) of @p node. */
    void setCapacitance(int node, double c);

    /** Scale all capacitances by @p factor (time-scaling support). */
    void scaleCapacitances(double factor);

    int numNodes() const { return numNodes_; }
    Kelvin temp(int node) const;
    void setTemp(int node, Kelvin t);
    void setAllTemps(Kelvin t);
    const std::vector<Kelvin> &temps() const { return temps_; }
    void setTemps(const std::vector<Kelvin> &t);

    /** Number of distinct node pairs with an entered conductance. */
    size_t numEdges() const;

    /**
     * Advance the network by @p dt seconds with @p power watts injected
     * per node. Internally sub-steps to keep the explicit integrator
     * stable. Allocation-free in steady state (same topology, same dt).
     */
    void step(const std::vector<Watts> &power, double dt);

    /**
     * Multi-RHS transient kernel: advance @p lanes independent
     * temperature vectors through THIS network's topology and
     * parameters in one blocked pass — each CSR row is loaded once
     * and applied to every lane before moving on, which is where the
     * batch speedup comes from. The caller owns the state:
     * @p power and @p temps are structure-of-arrays buffers of
     * numNodes()*lanes entries in node-major, lane-inner layout
     * (entry i*lanes + l is node i of lane l). temps_ is untouched.
     *
     * Per-lane arithmetic (expression shapes, accumulation order,
     * substep count) is exactly step()'s, so every lane's result is
     * bit-identical to stepping that lane alone. Allocation-free in
     * steady state (same topology, same dt, same lane count).
     */
    void stepBatch(const std::vector<Watts> &power,
                   std::vector<Kelvin> &temps, int lanes,
                   double dt) const;

    /**
     * Directly solve for the steady-state temperatures under @p power.
     * The factorisation is cached until the topology changes.
     * @throws via fatal() if the network is singular (no bath anywhere).
     */
    std::vector<Kelvin>
    solveSteadyState(const std::vector<Watts> &power) const;

    /** Smallest C_i / G_ii over nodes — the stiffest time constant. */
    double minTimeConstant() const;

  private:
    int numNodes_;
    /** Per-node neighbour indices, kept sorted ascending. */
    std::vector<std::vector<int>> adjNode_;
    /** Matching conductances, same order as adjNode_. */
    std::vector<std::vector<double>> adjG_;
    std::vector<double> bathG_;   ///< per-node conductance to its bath
    std::vector<Kelvin> bathT_;   ///< per-node bath temperature
    std::vector<double> cap_;     ///< per-node capacitance
    std::vector<Kelvin> temps_;

    // --- derived state, rebuilt lazily after topology edits ---------
    mutable bool topoDirty_ = true; ///< diag/CSR stale
    mutable bool tauDirty_ = true;  ///< substep cache stale (cap or topo)
    mutable std::vector<double> diagG_;  ///< row sums incl. bath
    mutable std::vector<int> csrStart_;  ///< CSR row offsets (n + 1)
    mutable std::vector<int> csrNode_;   ///< neighbour indices, j asc.
    mutable std::vector<double> csrG_;   ///< matching conductances
    mutable double cachedTau_ = 0.0;
    mutable double cachedDt_ = -1.0;     ///< dt the substep count is for
    mutable int cachedSubsteps_ = 1;

    // Cached LU factorisation of A = diag(G_ii) - offdiag(g_ij).
    mutable bool luValid_ = false;
    mutable std::vector<double> lu_;     ///< eliminated matrix (U on top)
    mutable std::vector<double> luFactor_; ///< multipliers per (row,col)
    mutable std::vector<int> luPivot_;   ///< pivot row chosen per column

    // RK2 scratch (sized at construction; reused every step).
    std::vector<double> k1_, k2_;
    std::vector<Kelvin> mid_;

    // Multi-RHS scratch (sized on first stepBatch; reused after).
    mutable std::vector<double> bk1_, bk2_;
    mutable std::vector<Kelvin> bmid_;

    /** Accumulate @p g onto row @p a's entry for @p b (sorted insert). */
    void rowAdd(int a, int b, double g);

    /** Mark every derived cache stale (single choke point for all
     *  topology/capacitance mutators). */
    void invalidateCache();
    /** Rebuild diag + CSR if stale. */
    void ensureTopology() const;
    /** Rebuild the cached time constant / substep count if stale. */
    void ensureSubsteps(double dt) const;
    /** Factorise A with partial pivoting into lu_/luFactor_/luPivot_. */
    void factorize() const;
    /** Sparse derivative: d = (P + G*(t_bath - t) + sum g (t_j - t_i))/C. */
    void derivative(const std::vector<Watts> &power,
                    const std::vector<Kelvin> &t,
                    std::vector<double> &d) const;
    /** derivative() over a node-major/lane-inner SoA block. */
    void derivativeBatch(const std::vector<Watts> &power,
                         const std::vector<Kelvin> &t, size_t lanes,
                         std::vector<double> &d) const;
    void checkNode(int node) const;
};

} // namespace hs

#endif // HS_THERMAL_RC_NETWORK_HH
