/**
 * @file
 * Generic dense thermal RC network solver.
 *
 * Nodes carry a thermal capacitance and pairwise conductances; any node
 * may also be tied to a fixed-temperature bath (the ambient) through a
 * conductance. Supports transient integration (forward Euler with
 * automatic sub-stepping for stability) and direct steady-state solves
 * (Gaussian elimination — the networks here have ~20 nodes).
 */

#ifndef HS_THERMAL_RC_NETWORK_HH
#define HS_THERMAL_RC_NETWORK_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace hs {

/** Dense RC thermal network. */
class RcNetwork
{
  public:
    explicit RcNetwork(int num_nodes);

    /** Add conductance @p g (W/K) between nodes @p a and @p b. */
    void addConductance(int a, int b, double g);

    /** Tie @p node to a fixed bath at @p bath_temp through @p g. */
    void addBathConductance(int node, double g, Kelvin bath_temp);

    /** Set the capacitance (J/K) of @p node. */
    void setCapacitance(int node, double c);

    /** Scale all capacitances by @p factor (time-scaling support). */
    void scaleCapacitances(double factor);

    int numNodes() const { return numNodes_; }
    Kelvin temp(int node) const;
    void setTemp(int node, Kelvin t);
    void setAllTemps(Kelvin t);
    const std::vector<Kelvin> &temps() const { return temps_; }
    void setTemps(const std::vector<Kelvin> &t);

    /**
     * Advance the network by @p dt seconds with @p power watts injected
     * per node. Internally sub-steps to keep forward Euler stable.
     */
    void step(const std::vector<Watts> &power, double dt);

    /**
     * Directly solve for the steady-state temperatures under @p power.
     * @throws via fatal() if the network is singular (no bath anywhere).
     */
    std::vector<Kelvin>
    solveSteadyState(const std::vector<Watts> &power) const;

    /** Smallest C_i / G_ii over nodes — the stiffest time constant. */
    double minTimeConstant() const;

  private:
    int numNodes_;
    std::vector<double> g_;       ///< dense symmetric conductance matrix
    std::vector<double> bathG_;   ///< per-node conductance to its bath
    std::vector<Kelvin> bathT_;   ///< per-node bath temperature
    std::vector<double> cap_;     ///< per-node capacitance
    std::vector<double> diagG_;   ///< cached row sums incl. bath
    std::vector<Kelvin> temps_;

    double &gAt(int a, int b) { return g_[static_cast<size_t>(a) *
                                          static_cast<size_t>(numNodes_) +
                                          static_cast<size_t>(b)]; }
    double gAt(int a, int b) const
    {
        return g_[static_cast<size_t>(a) *
                  static_cast<size_t>(numNodes_) + static_cast<size_t>(b)];
    }
    void refreshDiag();
    void checkNode(int node) const;
};

} // namespace hs

#endif // HS_THERMAL_RC_NETWORK_HH
