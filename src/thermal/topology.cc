#include "thermal/topology.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hh"

namespace hs {

namespace {

/** Length of the intersection of [a0, a1] and [b0, b1]. */
double
overlap(double a0, double a1, double b0, double b1)
{
    return std::min(a1, b1) - std::max(a0, b0);
}

// Same threshold the Floorplan uses for its own adjacency search.
constexpr double minSharedEdge = 1e-6;

} // namespace

Topology::Topology(const Floorplan &tile, const TopologyParams &params)
    : tile_(tile), params_(params)
{
    if (params_.numCores < 1)
        fatal("Topology: need at least one core");
    if (params_.coreSpacing < 0)
        fatal("Topology: negative core spacing");
    if (params_.couplingScale < 0)
        fatal("Topology: negative coupling scale");

    cols_ = std::max(1, static_cast<int>(std::ceil(
                            std::sqrt(double(params_.numCores)))));
    rows_ = (params_.numCores + cols_ - 1) / cols_;

    minX_ = minY_ = std::numeric_limits<double>::infinity();
    maxX_ = maxY_ = -std::numeric_limits<double>::infinity();
    for (int i = 0; i < numBlocks; ++i) {
        const Rect &r = tile_.rect(blockFromIndex(i));
        minX_ = std::min(minX_, r.x);
        minY_ = std::min(minY_, r.y);
        maxX_ = std::max(maxX_, r.x + r.w);
        maxY_ = std::max(maxY_, r.y + r.h);
    }

    computeCrossEdges();
}

double
Topology::originX(int core) const
{
    return col(core) * (tileWidth() + params_.coreSpacing);
}

double
Topology::originY(int core) const
{
    return row(core) * (tileHeight() + params_.coreSpacing);
}

void
Topology::computeCrossEdges()
{
    int n = params_.numCores;
    for (int c = 0; c < n; ++c) {
        // Seam to the right-hand neighbour (same row).
        int right = c + 1;
        if (col(c) + 1 < cols_ && right < n && row(right) == row(c)) {
            for (int ia = 0; ia < numBlocks; ++ia) {
                const Rect &ra = tile_.rect(blockFromIndex(ia));
                if (std::abs((ra.x + ra.w) - maxX_) >= minSharedEdge)
                    continue; // not on the tile's right edge
                for (int ib = 0; ib < numBlocks; ++ib) {
                    const Rect &rb = tile_.rect(blockFromIndex(ib));
                    if (std::abs(rb.x - minX_) >= minSharedEdge)
                        continue; // not on the tile's left edge
                    double ov = overlap(ra.y, ra.y + ra.h, rb.y,
                                        rb.y + rb.h);
                    if (ov > minSharedEdge)
                        edges_.push_back({c, blockFromIndex(ia), right,
                                          blockFromIndex(ib), ov,
                                          false});
                }
            }
        }
        // Seam to the neighbour above (next row, same column).
        int up = c + cols_;
        if (up < n) {
            for (int ia = 0; ia < numBlocks; ++ia) {
                const Rect &ra = tile_.rect(blockFromIndex(ia));
                if (std::abs((ra.y + ra.h) - maxY_) >= minSharedEdge)
                    continue; // not on the tile's top edge
                for (int ib = 0; ib < numBlocks; ++ib) {
                    const Rect &rb = tile_.rect(blockFromIndex(ib));
                    if (std::abs(rb.y - minY_) >= minSharedEdge)
                        continue; // not on the tile's bottom edge
                    double ov = overlap(ra.x, ra.x + ra.w, rb.x,
                                        rb.x + rb.w);
                    if (ov > minSharedEdge)
                        edges_.push_back({c, blockFromIndex(ia), up,
                                          blockFromIndex(ib), ov,
                                          true});
                }
            }
        }
    }
}

} // namespace hs
