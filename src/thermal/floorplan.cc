#include "thermal/floorplan.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace hs {

namespace {

constexpr double mm = 1e-3;
constexpr double minSharedEdge = 1e-6; // ignore sub-micron contacts

double
overlap(double a0, double a1, double b0, double b1)
{
    return std::max(0.0, std::min(a1, b1) - std::max(a0, b0));
}

} // namespace

Floorplan::Floorplan(const std::vector<Rect> &rects) : rects_(rects)
{
    if (rects_.size() != static_cast<size_t>(numBlocks))
        fatal("Floorplan: expected %d rects, got %zu", numBlocks,
              rects_.size());
    for (int i = 0; i < numBlocks; ++i) {
        if (rects_[static_cast<size_t>(i)].area() <= 0)
            fatal("Floorplan: block %s has non-positive area",
                  blockName(blockFromIndex(i)));
    }
    computeAdjacency();
}

Floorplan
Floorplan::ev6()
{
    std::vector<Rect> r(static_cast<size_t>(numBlocks));
    auto put = [&](Block b, double x, double y, double w, double h) {
        r[static_cast<size_t>(blockIndex(b))] =
            Rect{x * mm, y * mm, w * mm, h * mm};
    };

    // Adapted from HotSpot's ev6.flp (dimensions in mm). The die is
    // 16 x 16 mm with the L2 wrapping the bottom and sides of the core.
    put(Block::L2, 0.0, 0.0, 16.0, 9.8);
    put(Block::L2Left, 0.0, 9.8, 4.9, 6.2);
    put(Block::L2Right, 11.1, 9.8, 4.9, 6.2);
    put(Block::Icache, 4.9, 9.8, 3.1, 2.6);
    put(Block::Dcache, 8.0, 9.8, 3.1, 2.6);
    put(Block::Bpred, 4.9, 12.4, 3.1, 0.7);
    put(Block::Dtb, 8.0, 12.4, 3.1, 0.7);
    put(Block::FpAdd, 4.9, 13.1, 1.1, 0.9);
    put(Block::FpReg, 6.0, 13.1, 0.6, 0.9);
    put(Block::FpMul, 6.6, 13.1, 1.1, 0.9);
    put(Block::FpMap, 7.7, 13.1, 0.8, 0.9);
    put(Block::IntMap, 8.5, 13.1, 0.9, 0.9);
    put(Block::IntQ, 9.4, 13.1, 1.7, 0.9);
    put(Block::IntReg, 4.9, 14.0, 1.4, 2.0);
    put(Block::IntExec, 6.3, 14.0, 2.3, 2.0);
    put(Block::LdStQ, 8.6, 14.0, 1.4, 2.0);
    put(Block::Itb, 10.0, 14.0, 1.1, 2.0);

    return Floorplan(r);
}

Floorplan
Floorplan::scaled(double linear_factor) const
{
    if (linear_factor <= 0)
        fatal("Floorplan::scaled: factor must be positive");
    std::vector<Rect> rects = rects_;
    for (Rect &r : rects) {
        r.x *= linear_factor;
        r.y *= linear_factor;
        r.w *= linear_factor;
        r.h *= linear_factor;
    }
    return Floorplan(rects);
}

const Rect &
Floorplan::rect(Block b) const
{
    return rects_[static_cast<size_t>(blockIndex(b))];
}

double
Floorplan::dieArea() const
{
    double total = 0;
    for (const Rect &r : rects_)
        total += r.area();
    return total;
}

void
Floorplan::computeAdjacency()
{
    adj_.clear();
    for (int i = 0; i < numBlocks; ++i) {
        for (int j = i + 1; j < numBlocks; ++j) {
            const Rect &a = rects_[static_cast<size_t>(i)];
            const Rect &b = rects_[static_cast<size_t>(j)];

            // Vertical neighbours: a's top touches b's bottom or vice
            // versa, with x-ranges overlapping.
            bool touch_y = std::abs((a.y + a.h) - b.y) < minSharedEdge ||
                           std::abs((b.y + b.h) - a.y) < minSharedEdge;
            if (touch_y) {
                double shared = overlap(a.x, a.x + a.w, b.x, b.x + b.w);
                if (shared > minSharedEdge) {
                    adj_.push_back({blockFromIndex(i), blockFromIndex(j),
                                    shared, true});
                    continue;
                }
            }
            // Horizontal neighbours.
            bool touch_x = std::abs((a.x + a.w) - b.x) < minSharedEdge ||
                           std::abs((b.x + b.w) - a.x) < minSharedEdge;
            if (touch_x) {
                double shared = overlap(a.y, a.y + a.h, b.y, b.y + b.h);
                if (shared > minSharedEdge) {
                    adj_.push_back({blockFromIndex(i), blockFromIndex(j),
                                    shared, false});
                }
            }
        }
    }
}

} // namespace hs
