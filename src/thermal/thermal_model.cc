#include "thermal/thermal_model.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/state_buffer.hh"

namespace hs {

ThermalModel::ThermalModel(const Floorplan &floorplan,
                           const ThermalParams &params)
    : floorplan_(params.dieShrink == 1.0
                     ? floorplan
                     : floorplan.scaled(params.dieShrink)),
      params_(params)
{
    int n = numBlocks + 2;
    spreaderNode_ = numBlocks;
    sinkNode_ = numBlocks + 1;
    net_ = std::make_unique<RcNetwork>(n);

    // Block nodes: capacitance and vertical path to the spreader.
    for (int i = 0; i < numBlocks; ++i) {
        double area = floorplan_.area(blockFromIndex(i));
        double cap = params_.cvSilicon * params_.siliconThickness * area;
        net_->setCapacitance(i, cap);
        double r_vert =
            params_.siliconThickness / (params_.kSilicon * area) +
            params_.timThickness / (params_.kTim * area);
        net_->addConductance(i, spreaderNode_, 1.0 / r_vert);
    }

    // Lateral coupling between adjacent blocks.
    double sheet_k = params_.kSilicon * params_.siliconThickness;
    for (const Adjacency &adj : floorplan_.adjacencies()) {
        const Rect &ra = floorplan_.rect(adj.a);
        const Rect &rb = floorplan_.rect(adj.b);
        // Distance from each block centre to the shared edge, in the
        // direction perpendicular to the edge.
        double da = adj.vertical ? ra.h / 2 : ra.w / 2;
        double db = adj.vertical ? rb.h / 2 : rb.w / 2;
        double r_lat = params_.lateralScale * (da + db) /
                       (sheet_k * adj.sharedEdge);
        net_->addConductance(blockIndex(adj.a), blockIndex(adj.b),
                             1.0 / r_lat);
    }

    // Package: spreader -> sink -> ambient.
    net_->setCapacitance(spreaderNode_, params_.spreaderC);
    net_->setCapacitance(sinkNode_, params_.sinkC);
    net_->addConductance(spreaderNode_, sinkNode_,
                         1.0 / params_.spreaderToSinkR);
    double conv_r = params_.idealSink ? 1e-9 : params_.convectionR;
    net_->addBathConductance(sinkNode_, 1.0 / conv_r, params_.ambient);

    if (params_.timeScale != 1.0)
        net_->scaleCapacitances(1.0 / params_.timeScale);

    net_->setAllTemps(params_.ambient);
}

ThermalModel::ThermalModel(const Topology &topology,
                           const ThermalParams &params)
    : floorplan_(params.dieShrink == 1.0
                     ? topology.tile()
                     : topology.tile().scaled(params.dieShrink)),
      params_(params),
      topo_(std::make_unique<Topology>(floorplan_, topology.params())),
      numCores_(topology.numCores())
{
    int nb = numCores_ * numBlocks;
    spreaderNode_ = nb;
    sinkNode_ = nb + 1;
    net_ = std::make_unique<RcNetwork>(nb + 2);

    double sheet_k = params_.kSilicon * params_.siliconThickness;

    // Per-core subgraphs: block capacitances, vertical paths into the
    // shared spreader, then the tile's own lateral couplings — the
    // same element order as the single-core constructor, repeated per
    // tile, so a 1-core topology builds a bit-identical network.
    for (int c = 0; c < numCores_; ++c) {
        int base = c * numBlocks;
        for (int i = 0; i < numBlocks; ++i) {
            double area = floorplan_.area(blockFromIndex(i));
            double cap =
                params_.cvSilicon * params_.siliconThickness * area;
            net_->setCapacitance(base + i, cap);
            double r_vert =
                params_.siliconThickness / (params_.kSilicon * area) +
                params_.timThickness / (params_.kTim * area);
            net_->addConductance(base + i, spreaderNode_, 1.0 / r_vert);
        }
        for (const Adjacency &adj : floorplan_.adjacencies()) {
            const Rect &ra = floorplan_.rect(adj.a);
            const Rect &rb = floorplan_.rect(adj.b);
            double da = adj.vertical ? ra.h / 2 : ra.w / 2;
            double db = adj.vertical ? rb.h / 2 : rb.w / 2;
            double r_lat = params_.lateralScale * (da + db) /
                           (sheet_k * adj.sharedEdge);
            net_->addConductance(base + blockIndex(adj.a),
                                 base + blockIndex(adj.b), 1.0 / r_lat);
        }
    }

    // Cross-core couplings along the tile seams: the intra-tile sheet
    // formula lengthened by the inter-tile gap, times the explicit
    // coupling knob (0 decouples the cores).
    const TopologyParams &tp = topo_->params();
    double spacing =
        params_.dieShrink == 1.0 ? tp.coreSpacing
                                 : tp.coreSpacing * params_.dieShrink;
    for (const CrossEdge &e : topo_->crossEdges()) {
        const Rect &ra = floorplan_.rect(e.blockA);
        const Rect &rb = floorplan_.rect(e.blockB);
        double da = e.vertical ? ra.h / 2 : ra.w / 2;
        double db = e.vertical ? rb.h / 2 : rb.w / 2;
        double r_lat = params_.lateralScale * (da + db + spacing) /
                       (sheet_k * e.sharedEdge);
        net_->addConductance(e.coreA * numBlocks + blockIndex(e.blockA),
                             e.coreB * numBlocks + blockIndex(e.blockB),
                             tp.couplingScale / r_lat);
    }

    // Shared package: every stage grows with the die — spreader/sink
    // capacitance, spreader-to-sink conductance, and the convection
    // interface (an N-core part carries an N-cores'-worth sink, i.e.
    // convectionR is the per-core Table 1 budget). With a symmetric
    // nominal load every tile then sits at the same temperatures as
    // the single-core die, so DTM thresholds keep their calibration
    // and cross-core heating is attributable to the attacker, not to
    // an undersized package.
    net_->setCapacitance(spreaderNode_, params_.spreaderC * numCores_);
    net_->setCapacitance(sinkNode_, params_.sinkC * numCores_);
    net_->addConductance(spreaderNode_, sinkNode_,
                         numCores_ / params_.spreaderToSinkR);
    double conv_r = params_.idealSink ? 1e-9 : params_.convectionR;
    net_->addBathConductance(sinkNode_, numCores_ / conv_r,
                             params_.ambient);

    if (params_.timeScale != 1.0)
        net_->scaleCapacitances(1.0 / params_.timeScale);

    net_->setAllTemps(params_.ambient);
}

std::vector<Watts>
ThermalModel::padPower(const std::vector<Watts> &block_power) const
{
    if (block_power.size() != static_cast<size_t>(totalBlocks()))
        fatal("ThermalModel: expected %d block powers, got %zu",
              totalBlocks(), block_power.size());
    std::vector<Watts> padded(block_power);
    padded.push_back(0.0); // spreader
    padded.push_back(0.0); // sink
    return padded;
}

void
ThermalModel::initSteadyState(const std::vector<Watts> &block_power)
{
    net_->setTemps(net_->solveSteadyState(padPower(block_power)));
}

void
ThermalModel::step(const std::vector<Watts> &block_power, double dt)
{
    if (params_.idealSink) {
        // Infinite heat removal: hold every node at its initial
        // (steady) temperature.
        return;
    }
    size_t nb = static_cast<size_t>(totalBlocks());
    if (block_power.size() != nb)
        fatal("ThermalModel: expected %d block powers, got %zu",
              totalBlocks(), block_power.size());
    // Hot path: reuse the padded buffer instead of allocating one per
    // sensor interval (spreader and sink nodes inject no power).
    padBuf_.resize(nb + 2);
    std::copy(block_power.begin(), block_power.end(), padBuf_.begin());
    padBuf_[nb] = 0.0;
    padBuf_[nb + 1] = 0.0;
    net_->step(padBuf_, dt);
}

void
ThermalModel::stepBatch(const std::vector<ThermalModel *> &models,
                        const std::vector<const std::vector<Watts> *>
                            &block_power,
                        double dt, ThermalBatchScratch &scratch)
{
    size_t lanes = models.size();
    if (lanes == 0)
        return;
    if (block_power.size() != lanes)
        fatal("ThermalModel::stepBatch: %zu models but %zu power "
              "vectors", lanes, block_power.size());

    ThermalModel *m0 = models[0];
    if (m0->params_.idealSink) {
        // Infinite heat removal: every lane holds its steady
        // temperatures, exactly as step() would.
        for (size_t l = 0; l < lanes; ++l)
            if (!models[l]->params_.idealSink)
                fatal("ThermalModel::stepBatch: mixed sink models");
        return;
    }
    if (lanes == 1) {
        m0->step(*block_power[0], dt);
        return;
    }

    int nodes = m0->net_->numNodes();
    size_t nb = static_cast<size_t>(m0->totalBlocks());
    size_t want = static_cast<size_t>(nodes) * lanes;
    scratch.power.assign(want, 0.0); // spreader/sink rows inject 0 W
    scratch.temps.resize(want);
    for (size_t l = 0; l < lanes; ++l) {
        ThermalModel *m = models[l];
        if (m->net_->numNodes() != nodes || m->params_.idealSink)
            fatal("ThermalModel::stepBatch: lane %zu has a different "
                  "network shape", l);
        const std::vector<Watts> &p = *block_power[l];
        if (p.size() != nb)
            fatal("ThermalModel::stepBatch: lane %zu expected %zu "
                  "block powers, got %zu", l, nb, p.size());
        const std::vector<Kelvin> &t = m->net_->temps();
        for (size_t i = 0; i < nb; ++i)
            scratch.power[i * lanes + l] = p[i];
        for (size_t i = 0; i < static_cast<size_t>(nodes); ++i)
            scratch.temps[i * lanes + l] = t[i];
    }

    m0->net_->stepBatch(scratch.power, scratch.temps,
                        static_cast<int>(lanes), dt);

    scratch.lane.resize(static_cast<size_t>(nodes));
    for (size_t l = 0; l < lanes; ++l) {
        for (size_t i = 0; i < static_cast<size_t>(nodes); ++i)
            scratch.lane[i] = scratch.temps[i * lanes + l];
        models[l]->net_->setTemps(scratch.lane);
    }
}

std::vector<Kelvin>
ThermalModel::steadyTemps(const std::vector<Watts> &block_power) const
{
    std::vector<Kelvin> all = net_->solveSteadyState(padPower(block_power));
    all.resize(static_cast<size_t>(totalBlocks()));
    return all;
}

Kelvin
ThermalModel::blockTemp(Block b) const
{
    return net_->temp(blockIndex(b));
}

Kelvin
ThermalModel::coreBlockTemp(int core, Block b) const
{
    if (core < 0 || core >= numCores_)
        panic("ThermalModel: core %d out of range [0,%d)", core,
              numCores_);
    return net_->temp(core * numBlocks + blockIndex(b));
}

Kelvin
ThermalModel::spreaderTemp() const
{
    return net_->temp(spreaderNode_);
}

Kelvin
ThermalModel::sinkTemp() const
{
    return net_->temp(sinkNode_);
}

std::pair<Block, Kelvin>
ThermalModel::hottest() const
{
    Block best = Block::L2;
    Kelvin best_t = -1;
    int nb = totalBlocks();
    for (int i = 0; i < nb; ++i) {
        Kelvin t = net_->temp(i);
        if (t > best_t) {
            best_t = t;
            best = blockFromIndex(i % numBlocks);
        }
    }
    return {best, best_t};
}

double
ThermalModel::minTimeConstant() const
{
    return net_->minTimeConstant();
}

void
ThermalModel::saveState(StateWriter &w) const
{
    w.putTag(stateTag("THRM"));
    w.putVec(net_->temps());
}

void
ThermalModel::restoreState(StateReader &r)
{
    r.expectTag(stateTag("THRM"), "ThermalModel");
    std::vector<Kelvin> temps;
    r.getVec(temps);
    // setTemps fatals on a node-count mismatch.
    net_->setTemps(temps);
}

} // namespace hs
