#include "thermal/thermal_model.hh"

#include <algorithm>

#include "common/log.hh"
#include "common/state_buffer.hh"

namespace hs {

ThermalModel::ThermalModel(const Floorplan &floorplan,
                           const ThermalParams &params)
    : floorplan_(params.dieShrink == 1.0
                     ? floorplan
                     : floorplan.scaled(params.dieShrink)),
      params_(params)
{
    int n = numBlocks + 2;
    spreaderNode_ = numBlocks;
    sinkNode_ = numBlocks + 1;
    net_ = std::make_unique<RcNetwork>(n);

    // Block nodes: capacitance and vertical path to the spreader.
    for (int i = 0; i < numBlocks; ++i) {
        double area = floorplan_.area(blockFromIndex(i));
        double cap = params_.cvSilicon * params_.siliconThickness * area;
        net_->setCapacitance(i, cap);
        double r_vert =
            params_.siliconThickness / (params_.kSilicon * area) +
            params_.timThickness / (params_.kTim * area);
        net_->addConductance(i, spreaderNode_, 1.0 / r_vert);
    }

    // Lateral coupling between adjacent blocks.
    double sheet_k = params_.kSilicon * params_.siliconThickness;
    for (const Adjacency &adj : floorplan_.adjacencies()) {
        const Rect &ra = floorplan_.rect(adj.a);
        const Rect &rb = floorplan_.rect(adj.b);
        // Distance from each block centre to the shared edge, in the
        // direction perpendicular to the edge.
        double da = adj.vertical ? ra.h / 2 : ra.w / 2;
        double db = adj.vertical ? rb.h / 2 : rb.w / 2;
        double r_lat = params_.lateralScale * (da + db) /
                       (sheet_k * adj.sharedEdge);
        net_->addConductance(blockIndex(adj.a), blockIndex(adj.b),
                             1.0 / r_lat);
    }

    // Package: spreader -> sink -> ambient.
    net_->setCapacitance(spreaderNode_, params_.spreaderC);
    net_->setCapacitance(sinkNode_, params_.sinkC);
    net_->addConductance(spreaderNode_, sinkNode_,
                         1.0 / params_.spreaderToSinkR);
    double conv_r = params_.idealSink ? 1e-9 : params_.convectionR;
    net_->addBathConductance(sinkNode_, 1.0 / conv_r, params_.ambient);

    if (params_.timeScale != 1.0)
        net_->scaleCapacitances(1.0 / params_.timeScale);

    net_->setAllTemps(params_.ambient);
}

std::vector<Watts>
ThermalModel::padPower(const std::vector<Watts> &block_power) const
{
    if (block_power.size() != static_cast<size_t>(numBlocks))
        fatal("ThermalModel: expected %d block powers, got %zu",
              numBlocks, block_power.size());
    std::vector<Watts> padded(block_power);
    padded.push_back(0.0); // spreader
    padded.push_back(0.0); // sink
    return padded;
}

void
ThermalModel::initSteadyState(const std::vector<Watts> &block_power)
{
    net_->setTemps(net_->solveSteadyState(padPower(block_power)));
}

void
ThermalModel::step(const std::vector<Watts> &block_power, double dt)
{
    if (params_.idealSink) {
        // Infinite heat removal: hold every node at its initial
        // (steady) temperature.
        return;
    }
    if (block_power.size() != static_cast<size_t>(numBlocks))
        fatal("ThermalModel: expected %d block powers, got %zu",
              numBlocks, block_power.size());
    // Hot path: reuse the padded buffer instead of allocating one per
    // sensor interval (spreader and sink nodes inject no power).
    padBuf_.resize(static_cast<size_t>(numBlocks) + 2);
    std::copy(block_power.begin(), block_power.end(), padBuf_.begin());
    padBuf_[static_cast<size_t>(numBlocks)] = 0.0;
    padBuf_[static_cast<size_t>(numBlocks) + 1] = 0.0;
    net_->step(padBuf_, dt);
}

std::vector<Kelvin>
ThermalModel::steadyTemps(const std::vector<Watts> &block_power) const
{
    std::vector<Kelvin> all = net_->solveSteadyState(padPower(block_power));
    all.resize(static_cast<size_t>(numBlocks));
    return all;
}

Kelvin
ThermalModel::blockTemp(Block b) const
{
    return net_->temp(blockIndex(b));
}

Kelvin
ThermalModel::spreaderTemp() const
{
    return net_->temp(spreaderNode_);
}

Kelvin
ThermalModel::sinkTemp() const
{
    return net_->temp(sinkNode_);
}

std::pair<Block, Kelvin>
ThermalModel::hottest() const
{
    Block best = Block::L2;
    Kelvin best_t = -1;
    for (int i = 0; i < numBlocks; ++i) {
        Kelvin t = net_->temp(i);
        if (t > best_t) {
            best_t = t;
            best = blockFromIndex(i);
        }
    }
    return {best, best_t};
}

double
ThermalModel::minTimeConstant() const
{
    return net_->minTimeConstant();
}

void
ThermalModel::saveState(StateWriter &w) const
{
    w.putTag(stateTag("THRM"));
    w.putVec(net_->temps());
}

void
ThermalModel::restoreState(StateReader &r)
{
    r.expectTag(stateTag("THRM"), "ThermalModel");
    std::vector<Kelvin> temps;
    r.getVec(temps);
    // setTemps fatals on a node-count mismatch.
    net_->setTemps(temps);
}

} // namespace hs
