/**
 * @file
 * HotSpot-style compact thermal model of the die + package.
 *
 * Builds an RC network from the floorplan: one silicon node per block
 * (vertical resistance through die + thermal interface material to a
 * lumped heat spreader, lateral resistances between adjacent blocks),
 * a spreader node, and a heat-sink node tied to the ambient through the
 * convection resistance of Table 1 (0.8 K/W for the realistic package).
 *
 * Supports the paper's "ideal heat sink" configuration (infinite heat
 * removal: temperatures never rise; Section 5.3) and time-scaling for
 * fast experiments (all capacitances divided by the scale so that a
 * 1/S-length run shows the same number of heat/cool episodes).
 */

#ifndef HS_THERMAL_THERMAL_MODEL_HH
#define HS_THERMAL_THERMAL_MODEL_HH

#include <array>
#include <memory>
#include <vector>

#include "common/blocks.hh"
#include "common/types.hh"
#include "thermal/floorplan.hh"
#include "thermal/rc_network.hh"
#include "thermal/topology.hh"

namespace hs {

class StateReader;
class StateWriter;

/** Package and material parameters. */
struct ThermalParams
{
    Kelvin ambient = 300.85;       ///< calibrated so the IntReg sits at
                                   ///< ~354 K in normal operation
    double convectionR = 0.8;      ///< K/W, Table 1 (realistic sink)
    double sinkC = 140.0;          ///< J/K, lumped heat sink
    double spreaderC = 3.2;        ///< J/K, lumped copper spreader
    double spreaderToSinkR = 0.1;  ///< K/W
    double siliconThickness = 0.5e-3;  ///< m
    double timThickness = 20e-6;       ///< m, thermal interface material
    double kSilicon = 100.0;           ///< W/(m K) at hot-die temps
    double kTim = 4.0;                 ///< W/(m K)
    double cvSilicon = 1.75e6;         ///< J/(m^3 K)
    double lateralScale = 2.0;  ///< spreading-resistance derating for
                                ///< lateral flow (paper Section 2.1:
                                ///< lateral flow is "not appreciable")
    bool idealSink = false;     ///< infinite heat-removal package
    double timeScale = 1.0;     ///< divide capacitances by this
    double dieShrink = 1.0;     ///< linear shrink applied to the
                                ///< floorplan (technology scaling)
};

/** Reusable SoA gather/scatter buffers for ThermalModel::stepBatch
 *  (owned by the caller so the lockstep loop stays allocation-free). */
struct ThermalBatchScratch
{
    std::vector<Watts> power;
    std::vector<Kelvin> temps;
    std::vector<Kelvin> lane;
};

/** The die + package thermal model. */
class ThermalModel
{
  public:
    ThermalModel(const Floorplan &floorplan,
                 const ThermalParams &params = {});

    /**
     * Many-core construction: compose one per-block RC subgraph per
     * core tile, cross-core lateral couplings along the tile seams,
     * and a single shared spreader/sink package whose capacitances
     * (and spreader-to-sink conductance) scale with the core count.
     * With a 1-core topology this builds exactly the same network as
     * the floorplan constructor above.
     */
    ThermalModel(const Topology &topology,
                 const ThermalParams &params = {});

    /**
     * Initialise node temperatures to the steady state under
     * @p block_power (watts per block). Call once before simulation so
     * normal-operation temperatures are already established (HotSpot's
     * standard warm-up).
     */
    void initSteadyState(const std::vector<Watts> &block_power);

    /** Advance by @p dt seconds with @p block_power injected. */
    void step(const std::vector<Watts> &block_power, double dt);

    /**
     * Advance several same-shape models in lockstep: gather every
     * model's node temperatures and padded block powers into one
     * node-major/lane-inner SoA block, run the multi-RHS CSR kernel
     * of models[0]'s network once per substep, and scatter the lane
     * temperatures back. All models must have been built from the
     * same floorplan/topology and parameter set (deterministic
     * construction then makes their conductances and capacitances
     * identical doubles, so sharing lane 0's CSR is exact); node
     * counts and the ideal-sink flag are checked, the rest is the
     * caller's grouping contract. Each lane ends bit-identical to
     * calling step() on that model alone.
     */
    static void stepBatch(const std::vector<ThermalModel *> &models,
                          const std::vector<const std::vector<Watts> *>
                              &block_power,
                          double dt, ThermalBatchScratch &scratch);

    /** Steady-state block temperatures for @p block_power (no state
     *  change). */
    std::vector<Kelvin>
    steadyTemps(const std::vector<Watts> &block_power) const;

    Kelvin blockTemp(Block b) const;
    /** Temperature of @p b on core @p core. */
    Kelvin coreBlockTemp(int core, Block b) const;
    Kelvin spreaderTemp() const;
    Kelvin sinkTemp() const;

    /** Hottest block (on any core) and its temperature. */
    std::pair<Block, Kelvin> hottest() const;

    int numCores() const { return numCores_; }
    /** Block-power entries step() expects (numCores * numBlocks). */
    int totalBlocks() const { return numCores_ * numBlocks; }

    const ThermalParams &params() const { return params_; }
    /** The underlying RC network (node layout: core-major blocks, then
     *  spreader, then sink). */
    const RcNetwork &network() const { return *net_; }
    const Floorplan &floorplan() const { return floorplan_; }
    /** The tiling, when built from one (nullptr for the legacy
     *  single-core constructor). */
    const Topology *topology() const { return topo_.get(); }

    /** The stiffest time constant of the network, seconds. */
    double minTimeConstant() const;

    /** Serialise node temperatures — the only dynamic state; topology
     *  and derived caches are rebuilt from the config (snapshot
     *  support). */
    void saveState(StateWriter &w) const;

    /** Restore temperatures captured by saveState() on a same-topology
     *  model. */
    void restoreState(StateReader &r);

  private:
    std::vector<Watts> padPower(const std::vector<Watts> &block_power)
        const;

    Floorplan floorplan_;
    ThermalParams params_;
    std::unique_ptr<Topology> topo_; ///< set by the topology ctor
    int numCores_ = 1;
    std::unique_ptr<RcNetwork> net_;
    int spreaderNode_;
    int sinkNode_;
    std::vector<Watts> padBuf_; ///< reused padded power (hot path)
};

} // namespace hs

#endif // HS_THERMAL_THERMAL_MODEL_HH
