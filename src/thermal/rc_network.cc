#include "thermal/rc_network.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/log.hh"

namespace hs {

RcNetwork::RcNetwork(int num_nodes)
    : numNodes_(num_nodes),
      adjNode_(static_cast<size_t>(num_nodes)),
      adjG_(static_cast<size_t>(num_nodes)),
      bathG_(static_cast<size_t>(num_nodes), 0.0),
      bathT_(static_cast<size_t>(num_nodes), 0.0),
      cap_(static_cast<size_t>(num_nodes), 1.0),
      temps_(static_cast<size_t>(num_nodes), 300.0),
      diagG_(static_cast<size_t>(num_nodes), 0.0),
      k1_(static_cast<size_t>(num_nodes)),
      k2_(static_cast<size_t>(num_nodes)),
      mid_(static_cast<size_t>(num_nodes))
{
    if (num_nodes < 1)
        fatal("RcNetwork needs at least one node");
}

void
RcNetwork::checkNode(int node) const
{
    if (node < 0 || node >= numNodes_)
        panic("RcNetwork: node %d out of range [0,%d)", node, numNodes_);
}

void
RcNetwork::invalidateCache()
{
    topoDirty_ = true;
    tauDirty_ = true;
    luValid_ = false;
    cachedDt_ = -1.0;
}

void
RcNetwork::rowAdd(int a, int b, double g)
{
    std::vector<int> &nodes = adjNode_[static_cast<size_t>(a)];
    std::vector<double> &conds = adjG_[static_cast<size_t>(a)];
    auto it = std::lower_bound(nodes.begin(), nodes.end(), b);
    size_t pos = static_cast<size_t>(it - nodes.begin());
    if (it != nodes.end() && *it == b) {
        conds[pos] += g;
    } else {
        nodes.insert(it, b);
        conds.insert(conds.begin() +
                         static_cast<std::ptrdiff_t>(pos), g);
    }
}

void
RcNetwork::addConductance(int a, int b, double g)
{
    checkNode(a);
    checkNode(b);
    if (a == b)
        panic("RcNetwork: self-conductance on node %d", a);
    if (g < 0)
        fatal("RcNetwork: negative conductance");
    rowAdd(a, b, g);
    rowAdd(b, a, g);
    invalidateCache();
}

void
RcNetwork::addBathConductance(int node, double g, Kelvin bath_temp)
{
    checkNode(node);
    if (g < 0)
        fatal("RcNetwork: negative bath conductance");
    size_t i = static_cast<size_t>(node);
    double g0 = bathG_[i];
    if (g0 == 0.0 || bath_temp == bathT_[i]) {
        // First bath on this node adopts the temperature exactly (no
        // rounding through the weighted average); equal temperatures
        // only accumulate conductance.
        bathT_[i] = bath_temp;
    } else if (g == 0.0) {
        // Zero conductance to a different bath carries no heat; keep
        // the existing temperature.
    } else {
        // Two baths at different temperatures through parallel
        // conductances are equivalent to one bath at the
        // conductance-weighted mean.
        bathT_[i] = (g0 * bathT_[i] + g * bath_temp) / (g0 + g);
    }
    bathG_[i] = g0 + g;
    invalidateCache();
}

void
RcNetwork::setCapacitance(int node, double c)
{
    checkNode(node);
    if (c <= 0)
        fatal("RcNetwork: capacitance must be positive");
    cap_[static_cast<size_t>(node)] = c;
    invalidateCache();
}

void
RcNetwork::scaleCapacitances(double factor)
{
    if (factor <= 0)
        fatal("RcNetwork: capacitance scale must be positive");
    for (double &c : cap_)
        c *= factor;
    invalidateCache();
}

Kelvin
RcNetwork::temp(int node) const
{
    checkNode(node);
    return temps_[static_cast<size_t>(node)];
}

void
RcNetwork::setTemp(int node, Kelvin t)
{
    checkNode(node);
    temps_[static_cast<size_t>(node)] = t;
}

void
RcNetwork::setAllTemps(Kelvin t)
{
    std::fill(temps_.begin(), temps_.end(), t);
}

void
RcNetwork::setTemps(const std::vector<Kelvin> &t)
{
    if (t.size() != temps_.size())
        fatal("RcNetwork::setTemps: size mismatch");
    temps_ = t;
}

size_t
RcNetwork::numEdges() const
{
    size_t entries = 0;
    for (const std::vector<int> &row : adjNode_)
        entries += row.size();
    return entries / 2;
}

void
RcNetwork::ensureTopology() const
{
    if (!topoDirty_)
        return;

    // Diagonal row sums over the stored entries in ascending-j order.
    // Entries a dense scan would have visited but we never stored are
    // exact zeros, and every partial sum here is non-negative, so
    // skipping them leaves the result bit-identical.
    for (int i = 0; i < numNodes_; ++i) {
        size_t si = static_cast<size_t>(i);
        double sum = bathG_[si];
        for (double g : adjG_[si])
            sum += g;
        diagG_[si] = sum;
    }

    // CSR adjacency over the nonzero entries, preserving j order so the
    // sparse accumulation visits neighbours exactly as a dense scan
    // would (bit-identical floating-point summation). Stored entries
    // can still be zero (addConductance with g == 0); filter them like
    // the dense `if (g != 0)` did.
    csrStart_.assign(static_cast<size_t>(numNodes_) + 1, 0);
    csrNode_.clear();
    csrG_.clear();
    for (int i = 0; i < numNodes_; ++i) {
        size_t si = static_cast<size_t>(i);
        const std::vector<int> &nodes = adjNode_[si];
        const std::vector<double> &conds = adjG_[si];
        for (size_t k = 0; k < nodes.size(); ++k) {
            if (conds[k] != 0.0) {
                csrNode_.push_back(nodes[k]);
                csrG_.push_back(conds[k]);
            }
        }
        csrStart_[si + 1] = static_cast<int>(csrNode_.size());
    }

    topoDirty_ = false;
    tauDirty_ = true;
}

double
RcNetwork::minTimeConstant() const
{
    ensureTopology();
    double tau = std::numeric_limits<double>::infinity();
    for (int i = 0; i < numNodes_; ++i) {
        double g = diagG_[static_cast<size_t>(i)];
        if (g > 0)
            tau = std::min(tau, cap_[static_cast<size_t>(i)] / g);
    }
    return tau;
}

void
RcNetwork::ensureSubsteps(double dt) const
{
    if (tauDirty_) {
        cachedTau_ = minTimeConstant();
        tauDirty_ = false;
        cachedDt_ = -1.0;
    }
    if (dt == cachedDt_)
        return;
    // Explicit integration is stable for dt < C_i/G_ii; sub-step with
    // a 0.1 safety factor (RK2 keeps the discretisation error ~h^2).
    int substeps = 1;
    if (std::isfinite(cachedTau_) && cachedTau_ > 0)
        substeps = std::max(1, static_cast<int>(
                                   std::ceil(dt / (0.1 * cachedTau_))));
    cachedSubsteps_ = substeps;
    cachedDt_ = dt;
}

void
RcNetwork::derivative(const std::vector<Watts> &power,
                      const std::vector<Kelvin> &t,
                      std::vector<double> &d) const
{
    const int *nbr = csrNode_.data();
    const double *cond = csrG_.data();
    for (int i = 0; i < numNodes_; ++i) {
        size_t si = static_cast<size_t>(i);
        double ti = t[si];
        double flow = power[si] + bathG_[si] * (bathT_[si] - ti);
        int end = csrStart_[si + 1];
        for (int k = csrStart_[si]; k < end; ++k) {
            flow += cond[k] * (t[static_cast<size_t>(nbr[k])] - ti);
        }
        d[si] = flow / cap_[si];
    }
}

void
RcNetwork::step(const std::vector<Watts> &power, double dt)
{
    if (power.size() != static_cast<size_t>(numNodes_))
        fatal("RcNetwork::step: power vector size mismatch");
    if (dt <= 0)
        return;

    ensureTopology();
    ensureSubsteps(dt);
    int substeps = cachedSubsteps_;
    double h = dt / substeps;

    // Midpoint (RK2) integration: evaluate the derivative at a half
    // step to cancel the first-order error of plain forward Euler.
    for (int s = 0; s < substeps; ++s) {
        derivative(power, temps_, k1_);
        for (int i = 0; i < numNodes_; ++i) {
            size_t si = static_cast<size_t>(i);
            mid_[si] = temps_[si] + 0.5 * h * k1_[si];
        }
        derivative(power, mid_, k2_);
        for (int i = 0; i < numNodes_; ++i) {
            size_t si = static_cast<size_t>(i);
            temps_[si] += h * k2_[si];
        }
    }
}

void
RcNetwork::derivativeBatch(const std::vector<Watts> &power,
                           const std::vector<Kelvin> &t, size_t lanes,
                           std::vector<double> &d) const
{
    // The lane loop is innermost: lanes are adjacent in the SoA layout,
    // so every inner loop below walks unit-stride rows the compiler
    // auto-vectorises, and one row's neighbour indices and
    // conductances are reused for all lanes while they are hot. The
    // running flow accumulates in d's own row — per lane that is the
    // exact term order of derivative() (bath term first, then
    // neighbours in ascending CSR order, one division by the node
    // capacitance last), so each lane remains bit-identical to a solo
    // evaluation at any width (guarded by tests at widths 2/8/32).
    // __restrict is honest here: d is a private scratch buffer of
    // stepBatch, never aliasing the power or temperature blocks.
    const int *nbr = csrNode_.data();
    const double *cond = csrG_.data();
    const double *tp = t.data();
    for (int i = 0; i < numNodes_; ++i) {
        size_t si = static_cast<size_t>(i);
        const double *__restrict trow = tp + si * lanes;
        const double *__restrict prow = power.data() + si * lanes;
        double *__restrict drow = d.data() + si * lanes;
        double bg = bathG_[si];
        double bt = bathT_[si];
        for (size_t l = 0; l < lanes; ++l)
            drow[l] = prow[l] + bg * (bt - trow[l]);
        int end = csrStart_[si + 1];
        for (int k = csrStart_[si]; k < end; ++k) {
            const double *__restrict nrow =
                tp + static_cast<size_t>(nbr[k]) * lanes;
            double g = cond[k];
            for (size_t l = 0; l < lanes; ++l)
                drow[l] += g * (nrow[l] - trow[l]);
        }
        // Divide (not multiply by a reciprocal): same rounding as
        // derivative().
        double c = cap_[si];
        for (size_t l = 0; l < lanes; ++l)
            drow[l] = drow[l] / c;
    }
}

void
RcNetwork::stepBatch(const std::vector<Watts> &power,
                     std::vector<Kelvin> &temps, int lanes,
                     double dt) const
{
    if (lanes < 1)
        fatal("RcNetwork::stepBatch: need at least one lane");
    size_t sl = static_cast<size_t>(lanes);
    size_t want = static_cast<size_t>(numNodes_) * sl;
    if (power.size() != want || temps.size() != want)
        fatal("RcNetwork::stepBatch: SoA buffer size mismatch");
    if (dt <= 0)
        return;

    ensureTopology();
    ensureSubsteps(dt);
    int substeps = cachedSubsteps_;
    double h = dt / substeps;

    bk1_.resize(want);
    bk2_.resize(want);
    bmid_.resize(want);

    // Same midpoint (RK2) update as step(), over the whole SoA block.
    for (int s = 0; s < substeps; ++s) {
        derivativeBatch(power, temps, sl, bk1_);
        for (size_t i = 0; i < want; ++i)
            bmid_[i] = temps[i] + 0.5 * h * bk1_[i];
        derivativeBatch(power, bmid_, sl, bk2_);
        for (size_t i = 0; i < want; ++i)
            temps[i] += h * bk2_[i];
    }
}

void
RcNetwork::factorize() const
{
    // Build A = diag(G_ii) - offdiag(g_ij) and eliminate with partial
    // pivoting, exactly as the dense solver did, recording the pivot
    // row and the elimination multipliers per column so the
    // right-hand-side pass can be replayed later in the same order
    // (same arithmetic sequence => bit-identical temperatures).
    //
    // Absent off-diagonal entries are seeded with -0.0: the dense build
    // wrote -gAt(i,j) everywhere, negating its stored +0.0s, and the
    // sign of a zero can propagate through the elimination arithmetic.
    int n = numNodes_;
    size_t sn = static_cast<size_t>(n);
    lu_.assign(sn * sn, -0.0);
    luFactor_.assign(sn * sn, 0.0);
    luPivot_.assign(sn, 0);
    for (int i = 0; i < n; ++i) {
        size_t si = static_cast<size_t>(i);
        const std::vector<int> &nodes = adjNode_[si];
        const std::vector<double> &conds = adjG_[si];
        for (size_t k = 0; k < nodes.size(); ++k)
            lu_[si * sn + static_cast<size_t>(nodes[k])] = -conds[k];
        lu_[si * sn + si] = diagG_[si];
    }

    for (int col = 0; col < n; ++col) {
        size_t scol = static_cast<size_t>(col);
        int pivot = col;
        double best = std::abs(lu_[scol * sn + scol]);
        for (int row = col + 1; row < n; ++row) {
            double v =
                std::abs(lu_[static_cast<size_t>(row) * sn + scol]);
            if (v > best) {
                best = v;
                pivot = row;
            }
        }
        if (best < 1e-15)
            fatal("RcNetwork: singular network (is any node connected "
                  "to the ambient bath?)");
        luPivot_[scol] = pivot;
        if (pivot != col) {
            for (int j = 0; j < n; ++j)
                std::swap(lu_[scol * sn + static_cast<size_t>(j)],
                          lu_[static_cast<size_t>(pivot) * sn +
                              static_cast<size_t>(j)]);
        }
        double diag = lu_[scol * sn + scol];
        for (int row = col + 1; row < n; ++row) {
            size_t srow = static_cast<size_t>(row);
            double factor = lu_[srow * sn + scol] / diag;
            luFactor_[srow * sn + scol] = factor;
            if (factor == 0.0)
                continue;
            for (int j = col; j < n; ++j)
                lu_[srow * sn + static_cast<size_t>(j)] -=
                    factor * lu_[scol * sn + static_cast<size_t>(j)];
        }
    }
    luValid_ = true;
}

std::vector<Kelvin>
RcNetwork::solveSteadyState(const std::vector<Watts> &power) const
{
    if (power.size() != static_cast<size_t>(numNodes_))
        fatal("RcNetwork::solveSteadyState: power vector size mismatch");

    ensureTopology();
    if (!luValid_)
        factorize();

    int n = numNodes_;
    size_t sn = static_cast<size_t>(n);

    // b = P + bathG * bathT, then replay the recorded row swaps and
    // elimination multipliers in factorisation order.
    std::vector<double> b(sn);
    for (int i = 0; i < n; ++i) {
        size_t si = static_cast<size_t>(i);
        b[si] = power[si] + bathG_[si] * bathT_[si];
    }
    for (int col = 0; col < n; ++col) {
        size_t scol = static_cast<size_t>(col);
        int pivot = luPivot_[scol];
        if (pivot != col)
            std::swap(b[scol], b[static_cast<size_t>(pivot)]);
        for (int row = col + 1; row < n; ++row) {
            double factor = luFactor_[static_cast<size_t>(row) * sn + scol];
            if (factor == 0.0)
                continue;
            b[static_cast<size_t>(row)] -= factor * b[scol];
        }
    }

    std::vector<Kelvin> t(sn);
    for (int row = n - 1; row >= 0; --row) {
        size_t srow = static_cast<size_t>(row);
        double sum = b[srow];
        for (int j = row + 1; j < n; ++j)
            sum -= lu_[srow * sn + static_cast<size_t>(j)] *
                   t[static_cast<size_t>(j)];
        t[srow] = sum / lu_[srow * sn + srow];
    }
    return t;
}

} // namespace hs
