#include "thermal/rc_network.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace hs {

RcNetwork::RcNetwork(int num_nodes)
    : numNodes_(num_nodes),
      g_(static_cast<size_t>(num_nodes) * static_cast<size_t>(num_nodes),
         0.0),
      bathG_(static_cast<size_t>(num_nodes), 0.0),
      bathT_(static_cast<size_t>(num_nodes), 0.0),
      cap_(static_cast<size_t>(num_nodes), 1.0),
      diagG_(static_cast<size_t>(num_nodes), 0.0),
      temps_(static_cast<size_t>(num_nodes), 300.0)
{
    if (num_nodes < 1)
        fatal("RcNetwork needs at least one node");
}

void
RcNetwork::checkNode(int node) const
{
    if (node < 0 || node >= numNodes_)
        panic("RcNetwork: node %d out of range [0,%d)", node, numNodes_);
}

void
RcNetwork::addConductance(int a, int b, double g)
{
    checkNode(a);
    checkNode(b);
    if (a == b)
        panic("RcNetwork: self-conductance on node %d", a);
    if (g < 0)
        fatal("RcNetwork: negative conductance");
    gAt(a, b) += g;
    gAt(b, a) += g;
    refreshDiag();
}

void
RcNetwork::addBathConductance(int node, double g, Kelvin bath_temp)
{
    checkNode(node);
    if (g < 0)
        fatal("RcNetwork: negative bath conductance");
    bathG_[static_cast<size_t>(node)] += g;
    bathT_[static_cast<size_t>(node)] = bath_temp;
    refreshDiag();
}

void
RcNetwork::setCapacitance(int node, double c)
{
    checkNode(node);
    if (c <= 0)
        fatal("RcNetwork: capacitance must be positive");
    cap_[static_cast<size_t>(node)] = c;
}

void
RcNetwork::scaleCapacitances(double factor)
{
    if (factor <= 0)
        fatal("RcNetwork: capacitance scale must be positive");
    for (double &c : cap_)
        c *= factor;
}

Kelvin
RcNetwork::temp(int node) const
{
    checkNode(node);
    return temps_[static_cast<size_t>(node)];
}

void
RcNetwork::setTemp(int node, Kelvin t)
{
    checkNode(node);
    temps_[static_cast<size_t>(node)] = t;
}

void
RcNetwork::setAllTemps(Kelvin t)
{
    std::fill(temps_.begin(), temps_.end(), t);
}

void
RcNetwork::setTemps(const std::vector<Kelvin> &t)
{
    if (t.size() != temps_.size())
        fatal("RcNetwork::setTemps: size mismatch");
    temps_ = t;
}

void
RcNetwork::refreshDiag()
{
    for (int i = 0; i < numNodes_; ++i) {
        double sum = bathG_[static_cast<size_t>(i)];
        for (int j = 0; j < numNodes_; ++j)
            sum += gAt(i, j);
        diagG_[static_cast<size_t>(i)] = sum;
    }
}

double
RcNetwork::minTimeConstant() const
{
    double tau = std::numeric_limits<double>::infinity();
    for (int i = 0; i < numNodes_; ++i) {
        double g = diagG_[static_cast<size_t>(i)];
        if (g > 0)
            tau = std::min(tau, cap_[static_cast<size_t>(i)] / g);
    }
    return tau;
}

void
RcNetwork::step(const std::vector<Watts> &power, double dt)
{
    if (power.size() != static_cast<size_t>(numNodes_))
        fatal("RcNetwork::step: power vector size mismatch");
    if (dt <= 0)
        return;

    // Explicit integration is stable for dt < C_i/G_ii; sub-step with
    // a 0.1 safety factor (RK2 keeps the discretisation error ~h^2).
    double tau = minTimeConstant();
    int substeps = 1;
    if (std::isfinite(tau) && tau > 0)
        substeps = std::max(1, static_cast<int>(std::ceil(dt /
                                                          (0.1 * tau))));
    double h = dt / substeps;

    // Midpoint (RK2) integration: evaluate the derivative at a half
    // step to cancel the first-order error of plain forward Euler.
    auto derivative = [&](const std::vector<Kelvin> &t,
                          std::vector<double> &d) {
        for (int i = 0; i < numNodes_; ++i) {
            size_t si = static_cast<size_t>(i);
            double flow = power[si] + bathG_[si] * (bathT_[si] - t[si]);
            for (int j = 0; j < numNodes_; ++j) {
                double g = gAt(i, j);
                if (g != 0.0)
                    flow += g * (t[static_cast<size_t>(j)] - t[si]);
            }
            d[si] = flow / cap_[si];
        }
    };

    std::vector<double> k1(static_cast<size_t>(numNodes_));
    std::vector<double> k2(static_cast<size_t>(numNodes_));
    std::vector<Kelvin> mid(static_cast<size_t>(numNodes_));
    for (int s = 0; s < substeps; ++s) {
        derivative(temps_, k1);
        for (int i = 0; i < numNodes_; ++i) {
            size_t si = static_cast<size_t>(i);
            mid[si] = temps_[si] + 0.5 * h * k1[si];
        }
        derivative(mid, k2);
        for (int i = 0; i < numNodes_; ++i) {
            size_t si = static_cast<size_t>(i);
            temps_[si] += h * k2[si];
        }
    }
}

std::vector<Kelvin>
RcNetwork::solveSteadyState(const std::vector<Watts> &power) const
{
    if (power.size() != static_cast<size_t>(numNodes_))
        fatal("RcNetwork::solveSteadyState: power vector size mismatch");

    // Build A*T = b with A = diag(G_ii) - offdiag(g_ij),
    // b = P + bathG * bathT.
    int n = numNodes_;
    std::vector<double> a(static_cast<size_t>(n) * static_cast<size_t>(n));
    std::vector<double> b(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        size_t si = static_cast<size_t>(i);
        for (int j = 0; j < n; ++j)
            a[si * static_cast<size_t>(n) + static_cast<size_t>(j)] =
                (i == j) ? diagG_[si] : -gAt(i, j);
        b[si] = power[si] + bathG_[si] * bathT_[si];
    }

    // Gaussian elimination with partial pivoting.
    for (int col = 0; col < n; ++col) {
        int pivot = col;
        double best = std::abs(a[static_cast<size_t>(col) *
                                 static_cast<size_t>(n) +
                                 static_cast<size_t>(col)]);
        for (int row = col + 1; row < n; ++row) {
            double v = std::abs(a[static_cast<size_t>(row) *
                                  static_cast<size_t>(n) +
                                  static_cast<size_t>(col)]);
            if (v > best) {
                best = v;
                pivot = row;
            }
        }
        if (best < 1e-15)
            fatal("RcNetwork: singular network (is any node connected "
                  "to the ambient bath?)");
        if (pivot != col) {
            for (int j = 0; j < n; ++j)
                std::swap(a[static_cast<size_t>(col) *
                            static_cast<size_t>(n) +
                            static_cast<size_t>(j)],
                          a[static_cast<size_t>(pivot) *
                            static_cast<size_t>(n) +
                            static_cast<size_t>(j)]);
            std::swap(b[static_cast<size_t>(col)],
                      b[static_cast<size_t>(pivot)]);
        }
        double diag = a[static_cast<size_t>(col) *
                        static_cast<size_t>(n) + static_cast<size_t>(col)];
        for (int row = col + 1; row < n; ++row) {
            double factor = a[static_cast<size_t>(row) *
                              static_cast<size_t>(n) +
                              static_cast<size_t>(col)] / diag;
            if (factor == 0.0)
                continue;
            for (int j = col; j < n; ++j)
                a[static_cast<size_t>(row) * static_cast<size_t>(n) +
                  static_cast<size_t>(j)] -=
                    factor * a[static_cast<size_t>(col) *
                               static_cast<size_t>(n) +
                               static_cast<size_t>(j)];
            b[static_cast<size_t>(row)] -=
                factor * b[static_cast<size_t>(col)];
        }
    }
    std::vector<Kelvin> t(static_cast<size_t>(n));
    for (int row = n - 1; row >= 0; --row) {
        double sum = b[static_cast<size_t>(row)];
        for (int j = row + 1; j < n; ++j)
            sum -= a[static_cast<size_t>(row) * static_cast<size_t>(n) +
                     static_cast<size_t>(j)] * t[static_cast<size_t>(j)];
        t[static_cast<size_t>(row)] =
            sum / a[static_cast<size_t>(row) * static_cast<size_t>(n) +
                    static_cast<size_t>(row)];
    }
    return t;
}

} // namespace hs
