#include "mem/memory.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/state_buffer.hh"

namespace hs {

SparseMemory::Page *
SparseMemory::findPage(Addr addr) const
{
    auto it = pages_.find(addr / pageBytes);
    return it == pages_.end() ? nullptr : it->second.get();
}

SparseMemory::Page &
SparseMemory::touchPage(Addr addr)
{
    auto &slot = pages_[addr / pageBytes];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

uint64_t
SparseMemory::read64(Addr addr) const
{
    addr &= ~Addr{7};
    const Page *page = findPage(addr);
    if (!page)
        return 0;
    uint64_t value;
    std::memcpy(&value, page->data() + addr % pageBytes, sizeof(value));
    return value;
}

void
SparseMemory::write64(Addr addr, uint64_t value)
{
    addr &= ~Addr{7};
    Page &page = touchPage(addr);
    std::memcpy(page.data() + addr % pageBytes, &value, sizeof(value));
}

uint8_t
SparseMemory::read8(Addr addr) const
{
    const Page *page = findPage(addr);
    return page ? (*page)[addr % pageBytes] : 0;
}

void
SparseMemory::write8(Addr addr, uint8_t value)
{
    touchPage(addr)[addr % pageBytes] = value;
}

void
SparseMemory::saveState(StateWriter &w) const
{
    w.putTag(stateTag("SMEM"));
    std::vector<Addr> keys;
    keys.reserve(pages_.size());
    for (const auto &[key, page] : pages_)
        keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    w.put<uint64_t>(keys.size());
    for (Addr key : keys) {
        w.put<Addr>(key);
        w.putBytes(pages_.at(key)->data(), pageBytes);
    }
}

void
SparseMemory::restoreState(StateReader &r)
{
    r.expectTag(stateTag("SMEM"), "SparseMemory");
    uint64_t n = r.get<uint64_t>();
    pages_.clear();
    pages_.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
        Addr key = r.get<Addr>();
        auto page = std::make_unique<Page>();
        r.getBytes(page->data(), pageBytes);
        pages_.emplace(key, std::move(page));
    }
}

} // namespace hs
