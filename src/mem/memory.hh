/**
 * @file
 * Sparse functional backing store for simulated thread data.
 *
 * The caches in this library are timing/energy models over tags only;
 * actual data values live here. Memory is allocated in 4 KB pages on
 * first touch and reads of untouched memory return zero, so synthetic
 * workloads with large footprints cost only the pages they touch.
 */

#ifndef HS_MEM_MEMORY_HH
#define HS_MEM_MEMORY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/types.hh"

namespace hs {

class StateReader;
class StateWriter;

/** Byte-addressable sparse memory with 64-bit accessors. */
class SparseMemory
{
  public:
    static constexpr Addr pageBytes = 4096;

    /** Read the aligned 64-bit word containing @p addr (low 3 bits
     *  ignored); untouched memory reads as zero. */
    uint64_t read64(Addr addr) const;

    /** Write a 64-bit word at @p addr (low 3 bits ignored). */
    void write64(Addr addr, uint64_t value);

    /** Read a single byte. */
    uint8_t read8(Addr addr) const;

    /** Write a single byte. */
    void write8(Addr addr, uint8_t value);

    /** Drop all allocated pages. */
    void clear() { pages_.clear(); }

    /** @return number of 4 KB pages currently allocated. */
    size_t allocatedPages() const { return pages_.size(); }

    /** Serialise all allocated pages in ascending-address order
     *  (snapshot support; the ordering makes the byte stream
     *  deterministic regardless of hash-map iteration order). */
    void saveState(StateWriter &w) const;

    /** Replace the contents with pages captured by saveState(). */
    void restoreState(StateReader &r);

  private:
    using Page = std::array<uint8_t, pageBytes>;

    Page *findPage(Addr addr) const;
    Page &touchPage(Addr addr);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages_;
};

} // namespace hs

#endif // HS_MEM_MEMORY_HH
