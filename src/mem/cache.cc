#include "mem/cache.hh"

#include "common/log.hh"
#include "common/state_buffer.hh"

namespace hs {

namespace {

bool
isPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

int
log2Exact(uint64_t v)
{
    int shift = 0;
    while ((uint64_t{1} << shift) < v)
        ++shift;
    return shift;
}

} // namespace

Cache::Cache(const CacheParams &params) : params_(params)
{
    if (!isPowerOfTwo(params.sizeBytes) ||
        !isPowerOfTwo(static_cast<uint64_t>(params.lineBytes))) {
        fatal("cache '%s': size and line size must be powers of two",
              params.name.c_str());
    }
    if (params.assoc < 1)
        fatal("cache '%s': associativity must be >= 1",
              params.name.c_str());
    uint64_t num_lines = params.sizeBytes /
                         static_cast<uint64_t>(params.lineBytes);
    if (num_lines % static_cast<uint64_t>(params.assoc) != 0)
        fatal("cache '%s': lines not divisible by associativity",
              params.name.c_str());
    numSets_ = static_cast<int>(num_lines /
                                static_cast<uint64_t>(params.assoc));
    if (!isPowerOfTwo(static_cast<uint64_t>(numSets_)))
        fatal("cache '%s': number of sets must be a power of two",
              params.name.c_str());
    lineShift_ = log2Exact(static_cast<uint64_t>(params.lineBytes));
    lines_.resize(static_cast<size_t>(numSets_) *
                  static_cast<size_t>(params.assoc));
}

Addr
Cache::lineAddr(Addr addr) const
{
    return addr >> lineShift_;
}

int
Cache::setIndex(Addr addr) const
{
    return static_cast<int>(lineAddr(addr) &
                            static_cast<Addr>(numSets_ - 1));
}

Addr
Cache::tagOf(Addr addr) const
{
    return lineAddr(addr) / static_cast<Addr>(numSets_);
}

Cache::Line *
Cache::selectVictim(Line *base)
{
    // Invalid ways always win.
    for (int way = 0; way < params_.assoc; ++way) {
        if (!base[way].valid)
            return &base[way];
    }
    switch (params_.replacement) {
      case ReplacementPolicy::Lru:
      case ReplacementPolicy::Fifo: {
        Line *victim = &base[0];
        for (int way = 1; way < params_.assoc; ++way) {
            if (base[way].lruStamp < victim->lruStamp)
                victim = &base[way];
        }
        return victim;
      }
      case ReplacementPolicy::Random: {
        // 16-bit Fibonacci LFSR: deterministic pseudo-random way.
        uint32_t bit = ((lfsr_ >> 0) ^ (lfsr_ >> 2) ^ (lfsr_ >> 3) ^
                        (lfsr_ >> 5)) & 1u;
        lfsr_ = (lfsr_ >> 1) | (bit << 15);
        return &base[lfsr_ % static_cast<uint32_t>(params_.assoc)];
      }
      default:
        panic("cache '%s': bad replacement policy",
              params_.name.c_str());
    }
}

Cache::AccessOutcome
Cache::access(Addr addr, bool is_write)
{
    AccessOutcome out;
    int set = setIndex(addr);
    Addr tag = tagOf(addr);
    Line *base = &lines_[static_cast<size_t>(set) *
                         static_cast<size_t>(params_.assoc)];
    ++lruClock_;

    for (int way = 0; way < params_.assoc; ++way) {
        Line &line = base[way];
        if (line.valid && line.tag == tag) {
            ++hits_;
            out.hit = true;
            if (params_.replacement == ReplacementPolicy::Lru)
                line.lruStamp = lruClock_; // FIFO keeps the fill stamp
            line.dirty = line.dirty || is_write;
            return out;
        }
    }
    Line *victim = selectVictim(base);

    ++misses_;
    if (victim->valid && victim->dirty) {
        ++writebacks_;
        out.writeback = true;
        out.victimAddr = (victim->tag * static_cast<Addr>(numSets_) +
                          static_cast<Addr>(set))
                         << lineShift_;
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = tag;
    victim->lruStamp = lruClock_;
    return out;
}

bool
Cache::probe(Addr addr) const
{
    int set = setIndex(addr);
    Addr tag = tagOf(addr);
    const Line *base = &lines_[static_cast<size_t>(set) *
                               static_cast<size_t>(params_.assoc)];
    for (int way = 0; way < params_.assoc; ++way) {
        if (base[way].valid && base[way].tag == tag)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (Line &line : lines_)
        line = Line{};
}

bool
Cache::invalidate(Addr addr)
{
    int set = setIndex(addr);
    Addr tag = tagOf(addr);
    Line *base = &lines_[static_cast<size_t>(set) *
                         static_cast<size_t>(params_.assoc)];
    for (int way = 0; way < params_.assoc; ++way) {
        if (base[way].valid && base[way].tag == tag) {
            base[way] = Line{};
            return true;
        }
    }
    return false;
}

void
Cache::saveState(StateWriter &w) const
{
    w.putTag(stateTag("CACH"));
    w.put<uint64_t>(lruClock_);
    w.put<uint32_t>(lfsr_);
    w.put<uint64_t>(hits_);
    w.put<uint64_t>(misses_);
    w.put<uint64_t>(writebacks_);
    w.putVec(lines_);
}

void
Cache::restoreState(StateReader &r)
{
    r.expectTag(stateTag("CACH"), "Cache");
    size_t expect = lines_.size();
    lruClock_ = r.get<uint64_t>();
    lfsr_ = r.get<uint32_t>();
    hits_ = r.get<uint64_t>();
    misses_ = r.get<uint64_t>();
    writebacks_ = r.get<uint64_t>();
    r.getVec(lines_);
    if (lines_.size() != expect)
        fatal("Cache '%s': snapshot has %zu lines, geometry has %zu",
              params_.name.c_str(), lines_.size(), expect);
}

} // namespace hs
