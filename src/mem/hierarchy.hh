/**
 * @file
 * Two-level cache hierarchy shared by all SMT contexts.
 *
 * Table 1 of the paper: 64 KB 4-way L1 I and D (2-cycle), 2 MB 8-way
 * shared L2 (12-cycle), 300-cycle off-chip memory. Writebacks are
 * modelled off the critical path (traffic counted, no added latency on
 * the triggering access).
 */

#ifndef HS_MEM_HIERARCHY_HH
#define HS_MEM_HIERARCHY_HH

#include <memory>

#include "mem/cache.hh"

namespace hs {

class StateReader;
class StateWriter;

/** Parameters for the full hierarchy. */
struct HierarchyParams
{
    CacheParams l1i{"l1i", 64 * 1024, 4, 64, 2};
    CacheParams l1d{"l1d", 64 * 1024, 4, 64, 2};
    CacheParams l2{"l2", 2 * 1024 * 1024, 8, 64, 12};
    int memLatency = 300; ///< cycles beyond the L2 access on an L2 miss
};

/** Which level serviced an access. */
enum class MemLevel { L1, L2, Memory };

/** Timing outcome of a hierarchy access. */
struct MemAccessResult
{
    int latency = 0;    ///< total cycles from access to data
    MemLevel level = MemLevel::L1;
    bool l2Access = false; ///< the L2 tag array was touched
    bool
    l2Miss() const
    {
        return level == MemLevel::Memory;
    }
};

/** The shared cache hierarchy. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyParams &params = {});

    /** Data-side access (load or store). */
    MemAccessResult accessData(Addr addr, bool is_write);

    /** Instruction-side access. */
    MemAccessResult accessInst(Addr addr);

    Cache &l1i() { return *l1i_; }
    Cache &l1d() { return *l1d_; }
    Cache &l2() { return *l2_; }
    const Cache &l1i() const { return *l1i_; }
    const Cache &l1d() const { return *l1d_; }
    const Cache &l2() const { return *l2_; }

    const HierarchyParams &params() const { return params_; }

    /** L2-victim writebacks that went to memory. */
    uint64_t memWritebacks() const { return memWritebacks_; }

    void resetStats();

    /** Serialise all three cache levels plus the writeback counter
     *  (snapshot support). */
    void saveState(StateWriter &w) const;

    /** Restore state captured by saveState() on a same-geometry
     *  hierarchy. */
    void restoreState(StateReader &r);

  private:
    MemAccessResult accessThrough(Cache &l1, Addr addr, bool is_write);

    HierarchyParams params_;
    std::unique_ptr<Cache> l1i_;
    std::unique_ptr<Cache> l1d_;
    std::unique_ptr<Cache> l2_;
    uint64_t memWritebacks_ = 0;
};

} // namespace hs

#endif // HS_MEM_HIERARCHY_HH
