#include "mem/hierarchy.hh"

#include "common/state_buffer.hh"

namespace hs {

MemoryHierarchy::MemoryHierarchy(const HierarchyParams &params)
    : params_(params),
      l1i_(std::make_unique<Cache>(params.l1i)),
      l1d_(std::make_unique<Cache>(params.l1d)),
      l2_(std::make_unique<Cache>(params.l2))
{
}

MemAccessResult
MemoryHierarchy::accessThrough(Cache &l1, Addr addr, bool is_write)
{
    MemAccessResult result;
    Cache::AccessOutcome l1_out = l1.access(addr, is_write);
    result.latency = l1.params().hitLatency;
    if (l1_out.hit) {
        result.level = MemLevel::L1;
        return result;
    }

    // L1 dirty victim is written back into the L2 (off critical path).
    if (l1_out.writeback) {
        Cache::AccessOutcome wb = l2_->access(l1_out.victimAddr, true);
        if (wb.writeback)
            ++memWritebacks_;
    }

    result.l2Access = true;
    Cache::AccessOutcome l2_out = l2_->access(addr, false);
    result.latency += l2_->params().hitLatency;
    if (l2_out.writeback)
        ++memWritebacks_;
    if (l2_out.hit) {
        result.level = MemLevel::L2;
        return result;
    }
    result.level = MemLevel::Memory;
    result.latency += params_.memLatency;
    return result;
}

MemAccessResult
MemoryHierarchy::accessData(Addr addr, bool is_write)
{
    return accessThrough(*l1d_, addr, is_write);
}

MemAccessResult
MemoryHierarchy::accessInst(Addr addr)
{
    return accessThrough(*l1i_, addr, false);
}

void
MemoryHierarchy::resetStats()
{
    l1i_->resetStats();
    l1d_->resetStats();
    l2_->resetStats();
    memWritebacks_ = 0;
}

void
MemoryHierarchy::saveState(StateWriter &w) const
{
    w.putTag(stateTag("MHIE"));
    l1i_->saveState(w);
    l1d_->saveState(w);
    l2_->saveState(w);
    w.put<uint64_t>(memWritebacks_);
}

void
MemoryHierarchy::restoreState(StateReader &r)
{
    r.expectTag(stateTag("MHIE"), "MemoryHierarchy");
    l1i_->restoreState(r);
    l1d_->restoreState(r);
    l2_->restoreState(r);
    memWritebacks_ = r.get<uint64_t>();
}

} // namespace hs
