/**
 * @file
 * Set-associative cache timing model (tags + LRU only; data lives in
 * SparseMemory). Write-back, write-allocate.
 */

#ifndef HS_MEM_CACHE_HH
#define HS_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace hs {

class StateReader;
class StateWriter;

/** Victim-selection policy. */
enum class ReplacementPolicy {
    Lru,    ///< least recently used (default)
    Fifo,   ///< oldest fill first
    Random  ///< pseudo-random way (deterministic LFSR)
};

/** Geometry and latency of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    uint64_t sizeBytes = 64 * 1024;
    int assoc = 4;
    int lineBytes = 64;
    int hitLatency = 2; ///< cycles from access to data on a hit
    ReplacementPolicy replacement = ReplacementPolicy::Lru;
};

/**
 * A single cache level.
 *
 * access() probes and updates tags/LRU, allocating the line on a miss
 * (the caller is responsible for charging the next level's latency) and
 * reporting any dirty victim so writeback traffic can be accounted.
 */
class Cache
{
  public:
    /** Outcome of a cache access. */
    struct AccessOutcome
    {
        bool hit = false;
        bool writeback = false; ///< a dirty victim was evicted
        Addr victimAddr = 0;    ///< line address of the dirty victim
    };

    explicit Cache(const CacheParams &params);

    /**
     * Look up @p addr; on a miss, allocate the line (evicting LRU).
     * @param is_write marks the (allocated or hit) line dirty.
     */
    AccessOutcome access(Addr addr, bool is_write);

    /** Tag probe without state update. @return true if present. */
    bool probe(Addr addr) const;

    /** Invalidate everything (no writeback accounting). */
    void flush();

    /** Invalidate one line if present. @return true if it was there. */
    bool invalidate(Addr addr);

    const CacheParams &params() const { return params_; }
    int numSets() const { return numSets_; }

    /** Set index of @p addr (exposed so workload generators can build
     *  conflict sets, as the paper's variant2 does). */
    int setIndex(Addr addr) const;

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    uint64_t writebacks() const { return writebacks_; }
    double
    missRate() const
    {
        uint64_t total = hits_ + misses_;
        return total ? static_cast<double>(misses_) / total : 0.0;
    }
    void
    resetStats()
    {
        hits_ = misses_ = writebacks_ = 0;
    }

    /** Serialise tags, LRU/LFSR state and statistics (snapshot
     *  support). */
    void saveState(StateWriter &w) const;

    /** Restore state captured by saveState(); the geometry must
     *  match. */
    void restoreState(StateReader &r);

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        uint64_t lruStamp = 0; ///< access stamp (LRU) or fill stamp
                               ///< (FIFO); unused for Random
    };

    Addr lineAddr(Addr addr) const;
    Addr tagOf(Addr addr) const;
    Line *selectVictim(Line *base);

    CacheParams params_;
    int numSets_;
    int lineShift_;
    uint64_t lruClock_ = 0;
    uint32_t lfsr_ = 0xACE1u; ///< Random replacement state
    std::vector<Line> lines_; ///< numSets_ x assoc, row-major

    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t writebacks_ = 0;
};

} // namespace hs

#endif // HS_MEM_CACHE_HH
