#include "branch/predictor.hh"

#include "common/log.hh"
#include "common/state_buffer.hh"

namespace hs {

namespace {

bool
isPowerOfTwo(int v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // namespace

BranchPredictor::BranchPredictor(const BranchPredictorParams &params)
    : params_(params),
      bimodal_(static_cast<size_t>(params.bimodalEntries), 1),
      gshare_(static_cast<size_t>(params.gshareEntries), 1),
      chooser_(static_cast<size_t>(params.chooserEntries), 1),
      history_(static_cast<size_t>(params.maxThreads), 0),
      btb_(static_cast<size_t>(params.btbEntries))
{
    if (!isPowerOfTwo(params.bimodalEntries) ||
        !isPowerOfTwo(params.gshareEntries) ||
        !isPowerOfTwo(params.chooserEntries)) {
        fatal("branch predictor table sizes must be powers of two");
    }
    if (params.btbEntries % params.btbAssoc != 0)
        fatal("BTB entries must be divisible by associativity");
}

void
BranchPredictor::bumpCounter(uint8_t &ctr, bool up)
{
    if (up) {
        if (ctr < 3)
            ++ctr;
    } else {
        if (ctr > 0)
            --ctr;
    }
}

int
BranchPredictor::bimodalIndex(uint64_t pc) const
{
    return static_cast<int>(pc &
                            static_cast<uint64_t>(params_.bimodalEntries -
                                                  1));
}

int
BranchPredictor::gshareIndex(uint64_t pc, uint32_t history) const
{
    uint64_t idx = pc ^ static_cast<uint64_t>(history);
    return static_cast<int>(idx &
                            static_cast<uint64_t>(params_.gshareEntries -
                                                  1));
}

int
BranchPredictor::chooserIndex(uint64_t pc) const
{
    return static_cast<int>(pc &
                            static_cast<uint64_t>(params_.chooserEntries -
                                                  1));
}

uint32_t
BranchPredictor::history(ThreadId tid) const
{
    return history_[static_cast<size_t>(tid)];
}

BranchPrediction
BranchPredictor::predict(ThreadId tid, uint64_t pc)
{
    ++lookups_;
    uint32_t hist = history_[static_cast<size_t>(tid)];
    uint8_t bim = bimodal_[static_cast<size_t>(bimodalIndex(pc))];
    uint8_t gsh = gshare_[static_cast<size_t>(gshareIndex(pc, hist))];
    uint8_t cho = chooser_[static_cast<size_t>(chooserIndex(pc))];

    BranchPrediction pred;
    pred.taken = (cho >= 2) ? (gsh >= 2) : (bim >= 2);

    // BTB lookup: fully indexed set-associative by pc.
    int sets = params_.btbEntries / params_.btbAssoc;
    int set = static_cast<int>(pc % static_cast<uint64_t>(sets));
    const BtbEntry *base = &btb_[static_cast<size_t>(set) *
                                 static_cast<size_t>(params_.btbAssoc)];
    for (int way = 0; way < params_.btbAssoc; ++way) {
        if (base[way].valid && base[way].pc == pc) {
            pred.targetKnown = true;
            pred.target = base[way].target;
            break;
        }
    }
    if (!pred.targetKnown)
        pred.taken = false; // cannot redirect without a target

    // Speculative history update.
    uint32_t mask = (uint32_t{1} << params_.historyBits) - 1;
    history_[static_cast<size_t>(tid)] =
        ((hist << 1) | (pred.taken ? 1u : 0u)) & mask;
    return pred;
}

void
BranchPredictor::update(ThreadId tid, uint64_t pc, bool taken,
                        uint64_t target, uint32_t history_at_predict)
{
    (void)tid;
    uint8_t &bim = bimodal_[static_cast<size_t>(bimodalIndex(pc))];
    uint8_t &gsh = gshare_[static_cast<size_t>(
        gshareIndex(pc, history_at_predict))];
    uint8_t &cho = chooser_[static_cast<size_t>(chooserIndex(pc))];

    bool bim_correct = (bim >= 2) == taken;
    bool gsh_correct = (gsh >= 2) == taken;
    if (bim_correct != gsh_correct)
        bumpCounter(cho, gsh_correct);
    bumpCounter(bim, taken);
    bumpCounter(gsh, taken);

    if (taken) {
        // Install/refresh the BTB entry.
        int sets = params_.btbEntries / params_.btbAssoc;
        int set = static_cast<int>(pc % static_cast<uint64_t>(sets));
        BtbEntry *base = &btb_[static_cast<size_t>(set) *
                               static_cast<size_t>(params_.btbAssoc)];
        ++btbClock_;
        BtbEntry *victim = &base[0];
        for (int way = 0; way < params_.btbAssoc; ++way) {
            BtbEntry &entry = base[way];
            if (entry.valid && entry.pc == pc) {
                entry.target = target;
                entry.lruStamp = btbClock_;
                return;
            }
            if (!entry.valid) {
                victim = &entry;
            } else if (victim->valid &&
                       entry.lruStamp < victim->lruStamp) {
                victim = &entry;
            }
        }
        victim->valid = true;
        victim->pc = pc;
        victim->target = target;
        victim->lruStamp = btbClock_;
    }
}

void
BranchPredictor::setHistory(ThreadId tid, uint32_t history)
{
    history_[static_cast<size_t>(tid)] = history;
}

void
BranchPredictor::restoreHistory(ThreadId tid, uint32_t history, bool taken)
{
    uint32_t mask = (uint32_t{1} << params_.historyBits) - 1;
    history_[static_cast<size_t>(tid)] =
        ((history << 1) | (taken ? 1u : 0u)) & mask;
}

void
BranchPredictor::saveState(StateWriter &w) const
{
    w.putTag(stateTag("BPRD"));
    w.putVec(bimodal_);
    w.putVec(gshare_);
    w.putVec(chooser_);
    w.putVec(history_);
    w.putVec(btb_);
    w.put<uint64_t>(btbClock_);
    w.put<uint64_t>(lookups_);
    w.put<uint64_t>(mispredicts_);
}

void
BranchPredictor::restoreState(StateReader &r)
{
    r.expectTag(stateTag("BPRD"), "BranchPredictor");
    size_t bimodal = bimodal_.size(), gshare = gshare_.size();
    size_t chooser = chooser_.size(), history = history_.size();
    size_t btb = btb_.size();
    r.getVec(bimodal_);
    r.getVec(gshare_);
    r.getVec(chooser_);
    r.getVec(history_);
    r.getVec(btb_);
    if (bimodal_.size() != bimodal || gshare_.size() != gshare ||
        chooser_.size() != chooser || history_.size() != history ||
        btb_.size() != btb)
        fatal("BranchPredictor::restoreState: geometry mismatch");
    btbClock_ = r.get<uint64_t>();
    lookups_ = r.get<uint64_t>();
    mispredicts_ = r.get<uint64_t>();
}

} // namespace hs
