/**
 * @file
 * Hybrid (bimodal + gshare) branch direction predictor with a BTB.
 *
 * Global history is kept per SMT context; the prediction tables and the
 * BTB are shared among contexts, as in SimpleScalar-style SMT models.
 */

#ifndef HS_BRANCH_PREDICTOR_HH
#define HS_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace hs {

class StateReader;
class StateWriter;

/** Predictor geometry. */
struct BranchPredictorParams
{
    int bimodalEntries = 4096;  ///< 2-bit counters
    int gshareEntries = 4096;   ///< 2-bit counters
    int chooserEntries = 4096;  ///< 2-bit meta counters
    int historyBits = 12;
    int btbEntries = 512;
    int btbAssoc = 4;
    int maxThreads = 8;
};

/** One branch prediction. */
struct BranchPrediction
{
    bool taken = false;
    bool targetKnown = false; ///< BTB hit; target below is valid
    uint64_t target = 0;      ///< predicted target PC (instruction index)
};

/** Hybrid direction predictor + BTB. */
class BranchPredictor
{
  public:
    explicit BranchPredictor(const BranchPredictorParams &params = {});

    /**
     * Predict the branch at @p pc for thread @p tid and speculatively
     * update that thread's global history.
     */
    BranchPrediction predict(ThreadId tid, uint64_t pc);

    /**
     * Train with the resolved outcome and install the target in the BTB.
     * @param history_at_predict the history value captured by predict()
     *        (returned via lastHistory()) so training indexes the same
     *        gshare entry the prediction used.
     */
    void update(ThreadId tid, uint64_t pc, bool taken, uint64_t target,
                uint32_t history_at_predict);

    /**
     * Restore a thread's speculative history after a squash and shift
     * in the resolved outcome of the mispredicted branch.
     */
    void restoreHistory(ThreadId tid, uint32_t history, bool taken);

    /** Set a thread's history register directly (squash rollback to a
     *  pre-prediction checkpoint). */
    void setHistory(ThreadId tid, uint32_t history);

    /** History value the next predict() for @p tid will use. */
    uint32_t history(ThreadId tid) const;

    uint64_t lookups() const { return lookups_; }
    uint64_t mispredicts() const { return mispredicts_; }
    /** Count one misprediction (resolution happens in the pipeline). */
    void notifyMispredict() { ++mispredicts_; }
    void
    resetStats()
    {
        lookups_ = 0;
        mispredicts_ = 0;
    }

    /** Serialise tables, per-thread histories, BTB and statistics
     *  (snapshot support). */
    void saveState(StateWriter &w) const;

    /** Restore state captured by saveState(); the geometry must
     *  match. */
    void restoreState(StateReader &r);

  private:
    struct BtbEntry
    {
        bool valid = false;
        uint64_t pc = 0;
        uint64_t target = 0;
        uint64_t lruStamp = 0;
    };

    static void bumpCounter(uint8_t &ctr, bool up);
    int bimodalIndex(uint64_t pc) const;
    int gshareIndex(uint64_t pc, uint32_t history) const;
    int chooserIndex(uint64_t pc) const;

    BranchPredictorParams params_;
    std::vector<uint8_t> bimodal_;
    std::vector<uint8_t> gshare_;
    std::vector<uint8_t> chooser_; ///< >=2 selects gshare
    std::vector<uint32_t> history_;
    std::vector<BtbEntry> btb_;
    uint64_t btbClock_ = 0;
    uint64_t lookups_ = 0;
    uint64_t mispredicts_ = 0;
};

} // namespace hs

#endif // HS_BRANCH_PREDICTOR_HH
