#include "sim/progress.hh"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "common/log.hh"

namespace hs {

bool
streamIsTty(std::FILE *stream)
{
    int fd = fileno(stream);
    return fd >= 0 && isatty(fd) == 1;
}

double
envWatchdogFactor(double default_factor)
{
    const char *env = std::getenv("HS_WATCHDOG");
    if (!env || !*env)
        return default_factor;
    char *end = nullptr;
    double v = std::strtod(env, &end);
    if (end == env || *end != '\0' || v < 0)
        fatal("HS_WATCHDOG must be a non-negative number, got '%s'",
              env);
    return v;
}

namespace {

/** "12s" / "3.2m" style compact duration. */
void
fmtDuration(char *buf, size_t n, double secs)
{
    if (secs < 60)
        std::snprintf(buf, n, "%.0fs", secs);
    else if (secs < 3600)
        std::snprintf(buf, n, "%.1fm", secs / 60.0);
    else
        std::snprintf(buf, n, "%.1fh", secs / 3600.0);
}

} // namespace

ProgressReporter::ProgressReporter(size_t total, int jobs,
                                   ProgressOptions opts)
    : total_(total), jobs_(jobs > 0 ? jobs : 1), opts_(opts),
      start_(std::chrono::steady_clock::now()), lastPaint_(start_)
{
    watchdog_ = std::thread([this] { watchdogLoop(); });
}

ProgressReporter::~ProgressReporter()
{
    finish();
}

uint64_t
ProgressReporter::slowCells() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return slow_;
}

void
ProgressReporter::statusLine(char *buf, size_t n) const
{
    // ETA: cells left, executed jobs_ at a time, each taking about the
    // median observed cell time. Crude on purpose — it is a progress
    // line, not a scheduler.
    char eta[32] = "";
    if (done_ > memHits_ + diskHits_ && done_ < total_) {
        double median = cellSeconds_.percentile(0.5);
        double left = static_cast<double>(total_ - done_) * median /
                      static_cast<double>(jobs_);
        char d[16];
        fmtDuration(d, sizeof(d), left);
        std::snprintf(eta, sizeof(eta), ", eta %s", d);
    }
    // Each cache tier is named explicitly so a warm --store rerun is
    // visibly "all disk hits" rather than folded into one hit count.
    std::snprintf(buf, n,
                  "[progress] %zu/%zu cells (%zu running, %zu mem "
                  "hit%s, %zu disk hit%s, %zu remote, %zu forked%s)",
                  done_, total_, running_.size(), memHits_,
                  memHits_ == 1 ? "" : "s", diskHits_,
                  diskHits_ == 1 ? "" : "s", remote_, forked_, eta);
}

void
ProgressReporter::render()
{
    char line[160];
    statusLine(line, sizeof(line));
    if (opts_.ansi) {
        size_t len = std::strlen(line);
        // Overwrite in place, blanking any leftover tail.
        std::fprintf(opts_.out, "\r%s", line);
        for (size_t i = len; i < paintedLen_; ++i)
            std::fputc(' ', opts_.out);
        std::fflush(opts_.out);
        paintedLen_ = std::max(paintedLen_, len);
    } else {
        std::fprintf(opts_.out, "%s\n", line);
    }
    lastPaint_ = std::chrono::steady_clock::now();
}

void
ProgressReporter::onEvent(const CellEvent &ev)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (finished_)
        return;
    auto now = std::chrono::steady_clock::now();
    switch (ev.kind) {
      case CellEvent::Kind::Queued:
        return; // nothing to paint: total_ was given up front
      case CellEvent::Kind::Started:
        running_.push_back(
            {ev.index, ev.label ? ev.label : "", now, false});
        break;
      case CellEvent::Kind::PrefixForked:
        ++forked_;
        break;
      case CellEvent::Kind::CacheHit:
      case CellEvent::Kind::DiskHit:
      case CellEvent::Kind::Finished:
      case CellEvent::Kind::RemoteFinished: {
        auto it = std::find_if(running_.begin(), running_.end(),
                               [&](const Running &r) {
                                   return r.index == ev.index;
                               });
        if (it != running_.end())
            running_.erase(it);
        ++done_;
        if (ev.kind == CellEvent::Kind::CacheHit) {
            ++memHits_;
        } else if (ev.kind == CellEvent::Kind::DiskHit) {
            ++diskHits_;
        } else {
            if (ev.kind == CellEvent::Kind::RemoteFinished)
                ++remote_;
            cellSeconds_.observe(ev.hostSeconds);
        }
        break;
      }
    }
    // ANSI redraws on every event (cheap, in place). Plain mode rations
    // itself to one line per interval, plus the last cell.
    double since_paint =
        std::chrono::duration<double>(now - lastPaint_).count();
    if (opts_.ansi || done_ == total_ ||
        since_paint >= opts_.minPlainInterval)
        render();
}

void
ProgressReporter::watchdogLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopped_) {
        cv_.wait_for(lock, std::chrono::milliseconds(200));
        if (stopped_)
            return;
        auto now = std::chrono::steady_clock::now();
        if (opts_.watchdogFactor > 0 && cellSeconds_.count() >= 2) {
            double median = cellSeconds_.percentile(0.5);
            double limit = opts_.watchdogFactor * median;
            for (Running &r : running_) {
                double secs =
                    std::chrono::duration<double>(now - r.since)
                        .count();
                if (!r.flagged && median > 0 && secs > limit) {
                    r.flagged = true;
                    ++slow_;
                    std::fprintf(opts_.out,
                                 "%s[watchdog] cell %zu '%s' running "
                                 "%.1fs (> %.1fx median %.2fs)\n",
                                 opts_.ansi ? "\r\n" : "", r.index,
                                 r.label.c_str(), secs,
                                 opts_.watchdogFactor, median);
                    paintedLen_ = 0;
                    if (opts_.ansi)
                        render();
                }
            }
        }
        // Keep the in-place ETA ticking even between events.
        if (opts_.ansi && done_ > 0 && done_ < total_)
            render();
    }
}

void
ProgressReporter::finish()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (finished_)
            return;
        finished_ = true;
        stopped_ = true;
    }
    cv_.notify_all();
    if (watchdog_.joinable())
        watchdog_.join();

    std::lock_guard<std::mutex> lock(mu_);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
    char d[16];
    fmtDuration(d, sizeof(d), secs);
    std::fprintf(opts_.out,
                 "%s[progress] %zu/%zu cells in %s (%zu mem hit%s, "
                 "%zu disk hit%s, %zu remote, %zu forked%s%llu slow)\n",
                 opts_.ansi ? "\r" : "", done_, total_, d, memHits_,
                 memHits_ == 1 ? "" : "s", diskHits_,
                 diskHits_ == 1 ? "" : "s", remote_, forked_,
                 slow_ ? ", slow cells flagged: " : ", ",
                 static_cast<unsigned long long>(slow_));
    std::fflush(opts_.out);
}

} // namespace hs
