#include "sim/disk_store.hh"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include "common/fault.hh"
#include "common/log.hh"
#include "sim/serialize.hh"

namespace hs {

namespace {

constexpr uint32_t kStoreMagic = 0x31525348; // "HSR1", little-endian

/** Fixed-size .hsr header; the canonical key follows it. */
struct StoreHeader
{
    uint32_t magic = kStoreMagic;
    uint32_t version = kResultFormatVersion;
    uint64_t keyBytes = 0;
    uint64_t payloadBytes = 0;
    uint64_t payloadChecksum = 0;
};

/** mkdir -p for the two-level store layout; EEXIST is success. */
bool
ensureDir(const std::string &path)
{
    if (::mkdir(path.c_str(), 0777) == 0 || errno == EEXIST)
        return true;
    return false;
}

std::string
hashHex(const RunSpec &spec)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(spec.hash()));
    return buf;
}

/** RAII stdio handle so every early return closes the file. */
struct File
{
    std::FILE *f = nullptr;
    explicit File(std::FILE *fp) : f(fp) {}
    ~File()
    {
        if (f)
            std::fclose(f);
    }
};

} // namespace

DiskResultStore::DiskResultStore(std::string dir) : dir_(std::move(dir))
{
    if (dir_.empty())
        fatal("DiskResultStore: empty store directory");
    if (!ensureDir(dir_))
        fatal("DiskResultStore: cannot create store directory '%s': %s",
              dir_.c_str(), std::strerror(errno));
}

std::string
DiskResultStore::entryPath(const RunSpec &spec) const
{
    std::string hex = hashHex(spec);
    return dir_ + "/" + hex.substr(0, 2) + "/" + hex + ".hsr";
}

bool
DiskResultStore::contains(const RunSpec &spec) const
{
    struct stat st;
    return ::stat(entryPath(spec).c_str(), &st) == 0;
}

DiskResultStore::LoadStatus
DiskResultStore::load(const RunSpec &spec, RunResult &out)
{
    const std::string path = entryPath(spec);
    File file(std::fopen(path.c_str(), "rb"));
    if (!file.f) {
        misses_.fetch_add(1);
        return LoadStatus::Miss;
    }

    // From here on every failure is "corrupt": an entry exists but
    // cannot be trusted, so log and let the caller recompute. The
    // validation order matters — magic and version gate the header
    // layout, the config echo (canonical key) gates the addressing,
    // and the checksum gates the payload, so nothing is parsed before
    // the bytes that describe it have been vetted.
    auto reject = [&](const char *why) {
        warn("result store: dropping '%s' (%s); recomputing",
             path.c_str(), why);
        logEvent("store", "record_corrupt", LogSeverity::Warn,
                 {LogField::text("path", path),
                  LogField::text("why", why)});
        corrupt_.fetch_add(1);
        return LoadStatus::Corrupt;
    };

    StoreHeader hdr;
    if (std::fread(&hdr, sizeof(hdr), 1, file.f) != 1)
        return reject("truncated header");
    if (hdr.magic != kStoreMagic)
        return reject("bad magic");
    if (hdr.version != kResultFormatVersion)
        return reject("result-format version mismatch");

    const std::string key = spec.canonicalKey();
    if (hdr.keyBytes != key.size())
        return reject("stale config echo (key length)");
    std::string storedKey(key.size(), '\0');
    if (!key.empty() &&
        std::fread(storedKey.data(), 1, key.size(), file.f) !=
            key.size())
        return reject("truncated config echo");
    if (storedKey != key)
        return reject("stale config echo (key mismatch)");

    // 1 GiB sanity cap: no real result record comes anywhere close,
    // and a corrupt length field must not drive a giant allocation.
    if (hdr.payloadBytes > (1ull << 30))
        return reject("implausible payload length");
    std::vector<uint8_t> payload(static_cast<size_t>(hdr.payloadBytes));
    if (!payload.empty() &&
        std::fread(payload.data(), 1, payload.size(), file.f) !=
            payload.size())
        return reject("truncated payload");
    if (std::fgetc(file.f) != EOF)
        return reject("trailing bytes");
    if (fnv1a64(payload.data(), payload.size()) != hdr.payloadChecksum)
        return reject("payload checksum mismatch");

    out = decodeRunResult(payload);
    hits_.fetch_add(1);
    return LoadStatus::Hit;
}

bool
DiskResultStore::store(const RunSpec &spec, const RunResult &result)
{
    const std::string key = spec.canonicalKey();
    const std::string path = entryPath(spec);
    const std::string bucket = path.substr(0, path.rfind('/'));
    if (!ensureDir(bucket)) {
        warn("result store: cannot create '%s': %s", bucket.c_str(),
             std::strerror(errno));
        return false;
    }

    std::vector<uint8_t> payload = encodeRunResult(result);
    StoreHeader hdr;
    hdr.keyBytes = key.size();
    hdr.payloadBytes = payload.size();
    hdr.payloadChecksum = fnv1a64(payload.data(), payload.size());

    // Write to a hidden per-process temp name in the target directory,
    // then rename() into place: readers never observe a partial file,
    // and two writers racing on one cell end with one of their
    // (identical) records. The pid suffix keeps concurrent processes
    // off each other's temp files.
    std::string tmp =
        bucket + "/.tmp." + std::to_string(::getpid()) + "." +
        path.substr(path.rfind('/') + 1);
    // Chaos sites model the writer-side failures a shared store must
    // absorb: a checksum that rotted (the record publishes but never
    // validates), a write torn halfway by a crash that still reached
    // rename() (e.g. power loss reordering), and a rename that fails
    // outright. All of them must cost at most a recompute.
    if (faultFire("store_checksum_flip"))
        hdr.payloadChecksum ^= 1;
    size_t payloadWrite = payload.size();
    if (faultFire("store_torn_write"))
        payloadWrite = payload.size() / 2;
    {
        File file(std::fopen(tmp.c_str(), "wb"));
        if (!file.f) {
            warn("result store: cannot write '%s': %s", tmp.c_str(),
                 std::strerror(errno));
            return false;
        }
        bool ok =
            std::fwrite(&hdr, sizeof(hdr), 1, file.f) == 1 &&
            (key.empty() ||
             std::fwrite(key.data(), 1, key.size(), file.f) ==
                 key.size()) &&
            (payloadWrite == 0 ||
             std::fwrite(payload.data(), 1, payloadWrite, file.f) ==
                 payloadWrite) &&
            std::fflush(file.f) == 0;
        if (!ok) {
            warn("result store: short write to '%s': %s", tmp.c_str(),
                 std::strerror(errno));
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (faultFire("store_rename_fail")) {
        warn("result store: cannot publish '%s': injected fault",
             path.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("result store: cannot publish '%s': %s", path.c_str(),
             std::strerror(errno));
        logEvent("store", "publish_failed", LogSeverity::Warn,
                 {LogField::text("path", path)});
        std::remove(tmp.c_str());
        return false;
    }
    writes_.fetch_add(1);
    if (faultFire("store_crash")) {
        // A chaos-killed coordinator: the record just published is
        // durable, everything after this write is lost. The manifest
        // resume path must pick the campaign up from this exact gap.
        warn("result store: injected crash after publishing '%s'",
             path.c_str());
        std::_Exit(9);
    }
    return true;
}

bool
validateRecordFile(const std::string &path, std::string &why)
{
    File file(std::fopen(path.c_str(), "rb"));
    if (!file.f) {
        why = std::string("unreadable: ") + std::strerror(errno);
        return false;
    }
    StoreHeader hdr;
    if (std::fread(&hdr, sizeof(hdr), 1, file.f) != 1) {
        why = "truncated header";
        return false;
    }
    if (hdr.magic != kStoreMagic) {
        why = "bad magic";
        return false;
    }
    if (hdr.version != kResultFormatVersion) {
        why = "result-format version mismatch";
        return false;
    }
    // Same sanity caps as load(): a corrupt length field must not
    // drive a giant allocation during a GC sweep either.
    if (hdr.keyBytes > (1ull << 20)) {
        why = "implausible key length";
        return false;
    }
    if (hdr.payloadBytes > (1ull << 30)) {
        why = "implausible payload length";
        return false;
    }
    std::vector<uint8_t> key(static_cast<size_t>(hdr.keyBytes));
    if (!key.empty() &&
        std::fread(key.data(), 1, key.size(), file.f) != key.size()) {
        why = "truncated config echo";
        return false;
    }
    std::vector<uint8_t> payload(static_cast<size_t>(hdr.payloadBytes));
    if (!payload.empty() &&
        std::fread(payload.data(), 1, payload.size(), file.f) !=
            payload.size()) {
        why = "truncated payload";
        return false;
    }
    if (std::fgetc(file.f) != EOF) {
        why = "trailing bytes";
        return false;
    }
    if (fnv1a64(payload.data(), payload.size()) !=
        hdr.payloadChecksum) {
        why = "payload checksum mismatch";
        return false;
    }
    return true;
}

namespace {

/** True when @p name is exactly two hex digits (a bucket directory). */
bool
isBucketName(const char *name)
{
    auto hex = [](char c) {
        return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    };
    return name[0] != '\0' && name[1] != '\0' && name[2] == '\0' &&
           hex(name[0]) && hex(name[1]);
}

/**
 * True for names prune may consider: visible `*.hsr` records. Hidden
 * temp files from interrupted writers start with '.' and stay out.
 */
bool
isRecordName(const char *name)
{
    if (name[0] == '.')
        return false;
    size_t n = std::strlen(name);
    return n > 4 && std::strcmp(name + n - 4, ".hsr") == 0;
}

/** RAII DIR handle. */
struct Dir
{
    DIR *d = nullptr;
    explicit Dir(DIR *dp) : d(dp) {}
    ~Dir()
    {
        if (d)
            ::closedir(d);
    }
};

} // namespace

PruneStats
pruneStore(const std::string &dir, const PruneOptions &opts)
{
    struct stat st;
    if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode))
        fatal("prune: '%s' is not a store directory", dir.c_str());
    Dir root(::opendir(dir.c_str()));
    if (!root.d)
        fatal("prune: cannot open '%s': %s", dir.c_str(),
              std::strerror(errno));

    PruneStats stats;
    const std::time_t now = std::time(nullptr);
    while (dirent *de = ::readdir(root.d)) {
        if (std::strcmp(de->d_name, ".") == 0 ||
            std::strcmp(de->d_name, "..") == 0)
            continue;
        std::string sub = dir + "/" + de->d_name;
        struct stat sst;
        // Only the two-hex-digit bucket directories belong to the
        // store layout; manifests and user strays at the root are
        // never prune's business.
        if (!isBucketName(de->d_name) ||
            ::lstat(sub.c_str(), &sst) != 0 || !S_ISDIR(sst.st_mode)) {
            ++stats.skipped;
            continue;
        }
        Dir bucket(::opendir(sub.c_str()));
        if (!bucket.d) {
            ++stats.skipped;
            continue;
        }
        while (dirent *fe = ::readdir(bucket.d)) {
            if (std::strcmp(fe->d_name, ".") == 0 ||
                std::strcmp(fe->d_name, "..") == 0)
                continue;
            std::string path = sub + "/" + fe->d_name;
            struct stat fst;
            if (!isRecordName(fe->d_name) ||
                ::lstat(path.c_str(), &fst) != 0 ||
                !S_ISREG(fst.st_mode)) {
                ++stats.skipped;
                continue;
            }
            ++stats.scanned;

            bool corrupt = false;
            std::string why;
            if (opts.sweepCorrupt && !validateRecordFile(path, why)) {
                corrupt = true;
                warn("prune: '%s' is corrupt (%s)", path.c_str(),
                     why.c_str());
            }
            // Strict '>' keeps a record sitting exactly on the
            // retention boundary.
            bool tooOld =
                opts.olderThanDays >= 0.0 &&
                std::difftime(now, fst.st_mtime) >
                    opts.olderThanDays * 86400.0;
            if (!corrupt && !tooOld) {
                ++stats.kept;
                continue;
            }
            if (!opts.dryRun && std::remove(path.c_str()) != 0) {
                warn("prune: cannot delete '%s': %s", path.c_str(),
                     std::strerror(errno));
                ++stats.kept;
                continue;
            }
            ++stats.pruned;
            if (corrupt)
                ++stats.corrupt;
            stats.bytesFreed += static_cast<uint64_t>(fst.st_size);
        }
    }
    return stats;
}

DiskResultStore *
envDiskStore()
{
    static std::unique_ptr<DiskResultStore> store = [] {
        const char *env = std::getenv("HS_STORE");
        if (!env || !*env)
            return std::unique_ptr<DiskResultStore>();
        return std::make_unique<DiskResultStore>(env);
    }();
    return store.get();
}

} // namespace hs
