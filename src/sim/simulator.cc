#include "sim/simulator.hh"

#include <algorithm>
#include <chrono>
#include <ostream>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/state_buffer.hh"
#include "common/stats.hh"
#include "thermal/floorplan.hh"

namespace hs {

const char *
dtmModeName(DtmMode mode)
{
    switch (mode) {
      case DtmMode::None: return "none";
      case DtmMode::StopAndGo: return "stop-and-go";
      case DtmMode::SelectiveSedation: return "selective-sedation";
      case DtmMode::DvfsThrottle: return "dvfs-throttle";
      case DtmMode::FetchGating: return "fetch-gating";
      default:
        panic("dtmModeName: bad mode %d", static_cast<int>(mode));
    }
}

std::array<double, numBlocks>
SimConfig::defaultNominalRates()
{
    // A typical two-thread SPEC mix (combined IPC ~2.2, ~30% memory
    // ops, ~20% FP). Sets the "normal operating temperature" of
    // Section 3.2.2 (the integer register file sits near 354 K).
    std::array<double, numBlocks> rates{};
    auto set = [&](Block b, double v) {
        rates[static_cast<size_t>(blockIndex(b))] = v;
    };
    set(Block::Icache, 1.8);
    set(Block::Itb, 1.8);
    set(Block::Bpred, 0.5);
    set(Block::IntMap, 3.0);
    set(Block::FpMap, 0.5);
    set(Block::IntQ, 13.5);
    set(Block::IntReg, 11.5);
    set(Block::FpReg, 1.2);
    set(Block::IntExec, 2.3);
    set(Block::FpAdd, 0.3);
    set(Block::FpMul, 0.2);
    set(Block::LdStQ, 1.1);
    set(Block::Dcache, 1.1);
    set(Block::Dtb, 1.1);
    set(Block::L2, 0.05);
    return rates;
}

/** DtmControl adapter scoped to one core (see simulator.hh). */
class Simulator::CoreControl : public DtmControl
{
  public:
    CoreControl(Simulator &sim, int core) : sim_(sim), core_(core) {}

    void
    stallPipeline(bool stalled) override
    {
        sim_.coreStallPipeline(core_, stalled);
    }
    bool
    pipelineStalled() const override
    {
        return sim_.corePipelineStalled(core_);
    }
    void
    sedateThread(ThreadId tid, bool sedated) override
    {
        sim_.coreSedateThread(core_, tid, sedated);
    }
    void
    throttleThread(ThreadId tid, int every_k) override
    {
        sim_.coreThrottleThread(core_, tid, every_k);
    }
    void
    throttlePipeline(int every_k) override
    {
        sim_.coreThrottlePipeline(core_, every_k);
    }
    int
    numThreads() const override
    {
        return sim_.config_.smt.numThreads;
    }
    bool
    threadActive(ThreadId tid) const override
    {
        return sim_.coreThreadActive(core_, tid);
    }

  private:
    Simulator &sim_;
    int core_;
};

// Out of line: CoreState holds a unique_ptr to the (here complete)
// CoreControl.
Simulator::CoreState::CoreState() = default;
Simulator::CoreState::CoreState(CoreState &&) noexcept = default;
Simulator::CoreState &
Simulator::CoreState::operator=(CoreState &&) noexcept = default;
Simulator::CoreState::~CoreState() = default;

Simulator::Simulator(const SimConfig &config)
    : config_(config),
      numCores_(config.topology.numCores),
      energy_(std::make_unique<EnergyModel>(config.energy))
{
    if (numCores_ < 1)
        fatal("Simulator: topology.numCores must be at least 1");
    if (config_.sensorInterval == 0 || config_.monitorInterval == 0)
        fatal("Simulator: sampling intervals must be positive");
    if (config_.sensorInterval % config_.monitorInterval != 0)
        fatal("Simulator: sensor interval must be a multiple of the "
              "monitor interval");

    // Resolve the thread placement: global context -> (core, slot).
    if (config_.placement.empty())
        coreOf_.assign(static_cast<size_t>(config_.smt.numThreads), 0);
    else
        coreOf_ = config_.placement;
    globalOf_.assign(static_cast<size_t>(numCores_),
                     std::vector<ThreadId>(
                         static_cast<size_t>(config_.smt.numThreads),
                         invalidThreadId));
    slotOf_.resize(coreOf_.size());
    {
        std::vector<int> used(static_cast<size_t>(numCores_), 0);
        for (size_t g = 0; g < coreOf_.size(); ++g) {
            int c = coreOf_[g];
            if (c < 0 || c >= numCores_)
                fatal("Simulator: placement[%zu] = %d is outside "
                      "[0, %d)",
                      g, c, numCores_);
            int slot = used[static_cast<size_t>(c)]++;
            if (slot >= config_.smt.numThreads)
                fatal("Simulator: placement puts more than %d "
                      "workloads on core %d",
                      config_.smt.numThreads, c);
            slotOf_[g] = static_cast<ThreadId>(slot);
            globalOf_[static_cast<size_t>(c)][static_cast<size_t>(slot)] =
                static_cast<ThreadId>(g);
        }
    }

    // One shared die: N tiles of the EV6 floorplan coupled across the
    // tile seams, over one spreader/sink. A 1-core topology builds a
    // network bit-identical to the original single-floorplan one.
    thermal_ = std::make_unique<ThermalModel>(
        Topology(Floorplan::ev6(), config_.topology), config_.thermal);

    cores_.resize(static_cast<size_t>(numCores_));
    for (int c = 0; c < numCores_; ++c) {
        CoreState &core = cores_[static_cast<size_t>(c)];
        core.programs.resize(
            static_cast<size_t>(config_.smt.numThreads));
        core.pipeline = std::make_unique<Pipeline>(config_.smt);
        core.powerSnapshot =
            std::make_unique<ActivityCounters::Snapshot>(
                core.pipeline->activity());
        core.control = std::make_unique<CoreControl>(*this, c);

        switch (config_.dtm) {
          case DtmMode::None:
            break;
          case DtmMode::StopAndGo: {
            auto sg = std::make_unique<StopAndGo>(config_.stopAndGo);
            core.stopAndGo = sg.get();
            core.policies.push_back(std::move(sg));
            break;
          }
          case DtmMode::SelectiveSedation: {
            auto sed = std::make_unique<SelectiveSedation>(
                config_.smt.numThreads, config_.sedation,
                config_.monitorInterval);
            core.sedation = sed.get();
            core.policies.push_back(std::move(sed));
            if (config_.descheduleRepeatOffenders) {
                core.offenderTracker =
                    std::make_unique<OffenderTracker>(
                        config_.smt.numThreads, config_.offenderPolicy);
                core.offenderTracker->setOnDeschedule(
                    [this, c](ThreadId tid) {
                        CoreState &cs = cores_[static_cast<size_t>(c)];
                        cs.descheduled.push_back(tid);
                        if (tracer_)
                            tracer_->emit(cs.pipeline->cycle(),
                                          TraceKind::OsDeschedule, tid,
                                          traceNoBlock, 0.0,
                                          cs.descheduled.size());
                        cs.pipeline->setSedated(tid, true);
                    });
            }
            core.sedation->setOsReport(
                [this, c](const SedationEvent &event) {
                    CoreState &cs = cores_[static_cast<size_t>(c)];
                    if (cs.offenderTracker)
                        cs.offenderTracker->onReport(event);
                    if (userOsReport_)
                        userOsReport_(event);
                });
            // Stop-and-go remains underneath as the safety net
            // (Section 3.2.2).
            auto sg = std::make_unique<StopAndGo>(config_.stopAndGo);
            core.stopAndGo = sg.get();
            core.policies.push_back(std::move(sg));
            break;
          }
          case DtmMode::DvfsThrottle: {
            auto dvfs = std::make_unique<DvfsThrottle>(config_.dvfs);
            core.policies.push_back(std::move(dvfs));
            auto sg = std::make_unique<StopAndGo>(config_.stopAndGo);
            core.stopAndGo = sg.get();
            core.policies.push_back(std::move(sg));
            break;
          }
          case DtmMode::FetchGating: {
            auto gate = std::make_unique<FetchGating>(
                config_.smt.numThreads, config_.fetchGating);
            core.policies.push_back(std::move(gate));
            auto sg = std::make_unique<StopAndGo>(config_.stopAndGo);
            core.stopAndGo = sg.get();
            core.policies.push_back(std::move(sg));
            break;
          }
        }
    }

    if (config_.traceEvents) {
        // One shared ring for the whole die: cores emit in lockstep
        // cycle order and every event is stamped with its core id, so
        // the exported stream is deterministic and the drop-oldest
        // budget covers the die, exactly as it covered the one core.
        tracer_ = std::make_unique<Tracer>(config_.traceCapacity);
        for (CoreState &core : cores_) {
            core.pipeline->setTracer(tracer_.get());
            for (auto &policy : core.policies)
                policy->setTracer(tracer_.get());
        }
    }

    for (CoreState &core : cores_) {
        // The episode detector always runs (it feeds the run-health
        // histograms); without a tracer it simply emits no events.
        core.episodes = std::make_unique<OnlineEpisodeDetector>(
            config_.episodeTriggerTemp, config_.episodeResumeTemp,
            tracer_.get());
        core.episodes->setDurationSinks(&core.histEpisodeHeat,
                                        &core.histEpisodeCool);
        core.sedStart.assign(
            static_cast<size_t>(config_.smt.numThreads), 0);
        core.peakTemp.fill(0.0);
    }
}

Simulator::~Simulator() = default;

Simulator::CoreState &
Simulator::coreAt(int core)
{
    if (core < 0 || core >= numCores_)
        fatal("Simulator: core %d out of range [0, %d)", core,
              numCores_);
    return cores_[static_cast<size_t>(core)];
}

const Simulator::CoreState &
Simulator::coreAt(int core) const
{
    return const_cast<Simulator *>(this)->coreAt(core);
}

Pipeline &
Simulator::pipeline(int core)
{
    return *coreAt(core).pipeline;
}

SelectiveSedation *
Simulator::sedationPolicy(int core)
{
    return coreAt(core).sedation;
}

StopAndGo *
Simulator::stopAndGoPolicy(int core)
{
    return coreAt(core).stopAndGo;
}

OffenderTracker *
Simulator::offenderTracker(int core)
{
    return coreAt(core).offenderTracker.get();
}

void
Simulator::setWorkload(ThreadId tid, Program program)
{
    if (tid < 0 || tid >= static_cast<ThreadId>(coreOf_.size()))
        fatal("setWorkload: thread %d out of range", tid);
    CoreState &core =
        cores_[static_cast<size_t>(coreOf_[static_cast<size_t>(tid)])];
    size_t slot = static_cast<size_t>(slotOf_[static_cast<size_t>(tid)]);
    core.programs[slot] = std::make_unique<Program>(std::move(program));
    core.pipeline->setThreadProgram(static_cast<ThreadId>(slot),
                                    core.programs[slot].get());
    core.hasWork = true;
}

// --- DtmControl ----------------------------------------------------------

void
Simulator::coreStallPipeline(int core, bool stalled)
{
    cores_[static_cast<size_t>(core)].pipeline->setGlobalStall(stalled);
}

bool
Simulator::corePipelineStalled(int core) const
{
    return cores_[static_cast<size_t>(core)].pipeline->globalStalled();
}

void
Simulator::setOsReport(SelectiveSedation::OsReportFn fn)
{
    userOsReport_ = std::move(fn);
    if (!cores_[0].sedation && userOsReport_)
        warn("setOsReport: no sedation policy; callback will not fire");
}

void
Simulator::coreSedateThread(int core, ThreadId tid, bool sedated)
{
    CoreState &cs = cores_[static_cast<size_t>(core)];
    // Threads the OS descheduled stay sedated no matter what the
    // hardware policy decides afterwards.
    if (!sedated) {
        for (ThreadId d : cs.descheduled) {
            if (d == tid)
                return;
        }
    }
    size_t i = static_cast<size_t>(tid);
    if (i < cs.sedStart.size()) {
        if (sedated && cs.sedStart[i] == 0) {
            cs.sedStart[i] = cs.pipeline->cycle() + 1;
        } else if (!sedated && cs.sedStart[i] != 0) {
            cs.histSedation.observe(static_cast<double>(
                cs.pipeline->cycle() - (cs.sedStart[i] - 1)));
            cs.sedStart[i] = 0;
        }
    }
    cs.pipeline->setSedated(tid, sedated);
}

void
Simulator::coreThrottleThread(int core, ThreadId tid, int every_k)
{
    CoreState &cs = cores_[static_cast<size_t>(core)];
    // OS-descheduled threads stay fully sedated.
    if (every_k <= 1) {
        for (ThreadId d : cs.descheduled) {
            if (d == tid)
                return;
        }
    }
    cs.pipeline->setThreadThrottle(tid, every_k);
}

void
Simulator::coreThrottlePipeline(int core, int every_k)
{
    cores_[static_cast<size_t>(core)].pipeline->setThrottle(every_k);
}

bool
Simulator::coreThreadActive(int core, ThreadId tid) const
{
    return cores_[static_cast<size_t>(core)].pipeline->thread(tid).state ==
           ThreadState::Active;
}

void
Simulator::stallPipeline(bool stalled)
{
    coreStallPipeline(0, stalled);
}

bool
Simulator::pipelineStalled() const
{
    return corePipelineStalled(0);
}

void
Simulator::sedateThread(ThreadId tid, bool sedated)
{
    coreSedateThread(0, tid, sedated);
}

void
Simulator::throttleThread(ThreadId tid, int every_k)
{
    coreThrottleThread(0, tid, every_k);
}

void
Simulator::throttlePipeline(int every_k)
{
    coreThrottlePipeline(0, every_k);
}

int
Simulator::numThreads() const
{
    return config_.smt.numThreads;
}

bool
Simulator::threadActive(ThreadId tid) const
{
    return coreThreadActive(0, tid);
}

// --- run loop ------------------------------------------------------------

bool
Simulator::allCoresHalted() const
{
    // A core with no bound programs never reports allHalted() (there
    // is nothing to halt on it); the machine is done when every core
    // that has work halted, and at least one core had work.
    bool any = false;
    for (const CoreState &core : cores_) {
        if (!core.hasWork)
            continue;
        any = true;
        if (!core.pipeline->allHalted())
            return false;
    }
    return any;
}

void
Simulator::initNominalSteadyState()
{
    std::vector<Watts> steady =
        energy_->steadyPower(config_.nominalAccessRates);
    if (numCores_ > 1) {
        // Every tile starts the quantum at normal operation.
        std::vector<Watts> all;
        all.reserve(steady.size() * static_cast<size_t>(numCores_));
        for (int c = 0; c < numCores_; ++c)
            all.insert(all.end(), steady.begin(), steady.end());
        thermal_->initSteadyState(all);
    } else {
        thermal_->initSteadyState(steady);
    }
}

void
Simulator::countEmergencies(CoreState &core)
{
    for (int b = 0; b < numBlocks; ++b) {
        size_t i = static_cast<size_t>(b);
        Kelvin t = core.tempsBuf[i];
        core.peakTemp[i] = std::max(core.peakTemp[i], t);
        if (!core.aboveEmergency[i] && t >= config_.emergencyTemp) {
            core.aboveEmergency[i] = true;
            ++core.emergencies;
            ++core.emergenciesPerBlock[i];
            if (tracer_)
                tracer_->emit(core.pipeline->cycle(),
                              TraceKind::EmergencyUp, -1,
                              static_cast<uint8_t>(b), t,
                              core.emergencies);
        } else if (core.aboveEmergency[i] &&
                   t < config_.emergencyTemp - 0.5) {
            core.aboveEmergency[i] = false;
            if (tracer_)
                tracer_->emit(core.pipeline->cycle(),
                              TraceKind::EmergencyDown, -1,
                              static_cast<uint8_t>(b), t,
                              core.emergenciesPerBlock[i]);
        }
    }
}

void
Simulator::samplePowers()
{
    size_t nb = static_cast<size_t>(numBlocks);

    // All sample buffers are members: this runs every 20 K cycles and
    // must not churn the heap. Per-core window powers concatenate into
    // the shared die's power vector; the RC network steps once.
    thermalPowerBuf_.resize(nb * static_cast<size_t>(numCores_));
    for (int c = 0; c < numCores_; ++c) {
        CoreState &core = cores_[static_cast<size_t>(c)];
        Cycles active = core.pipeline->activeCycles();
        Cycles active_delta = active - core.lastActiveCycles;
        core.lastActiveCycles = active;
        energy_->windowPowerInto(core.pipeline->activity(),
                                 *core.powerSnapshot,
                                 config_.sensorInterval, active_delta,
                                 core.powerBuf);
        std::copy(core.powerBuf.begin(), core.powerBuf.end(),
                  thermalPowerBuf_.begin() +
                      static_cast<ptrdiff_t>(static_cast<size_t>(c) * nb));
    }
}

double
Simulator::sensorDt() const
{
    return static_cast<double>(config_.sensorInterval) /
           config_.energy.frequencyHz;
}

void
Simulator::sampleSensors()
{
    auto prof_start = profiling_ ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
    samplePowers();
    thermal_->step(thermalPowerBuf_, sensorDt());
    finishSensorSample();
    if (profiling_)
        profile_.thermalSeconds +=
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - prof_start)
                .count();
}

void
Simulator::finishSensorSample()
{
    Cycles now = cores_[0].pipeline->cycle();
    size_t nb = static_cast<size_t>(numBlocks);
    double dt = sensorDt();
    energyAccumJ_ += EnergyModel::total(thermalPowerBuf_) * dt;

    Kelvin observed_max = 0.0;
    for (int c = 0; c < numCores_; ++c) {
        CoreState &core = cores_[static_cast<size_t>(c)];
        if (tracer_)
            tracer_->setCoreId(static_cast<uint8_t>(c));

        core.tempsBuf.resize(nb);
        for (int b = 0; b < numBlocks; ++b)
            core.tempsBuf[static_cast<size_t>(b)] =
                thermal_->coreBlockTemp(c, blockFromIndex(b));

        // Emergencies are physical: counted on the true temperatures.
        countEmergencies(core);

        // The episode detector also observes physics, not noisy
        // sensors: Section 3.1's heat/cool structure is a property of
        // the chip.
        core.episodes->sample(
            now, core.tempsBuf[static_cast<size_t>(
                     blockIndex(Block::IntReg))]);

        // Run-health: queue-occupancy distributions sampled with the
        // sensors (fixed-bucket observes, allocation-free).
        core.histRuu.observe(
            static_cast<double>(core.pipeline->ruuOccupancy()));
        core.histLsq.observe(
            static_cast<double>(core.pipeline->lsqOccupancy()));

        if (config_.sensorNoiseK > 0.0) {
            // Policies observe imperfect sensors (one deterministic
            // stream for the die, drawn in core order).
            for (Kelvin &t : core.tempsBuf)
                t += (sensorNoise_.nextDouble() * 2.0 - 1.0) *
                     config_.sensorNoiseK;
        }

        // What the policies are about to see, for runPrefix()'s
        // divergence test: the observed (noised) maximum anywhere on
        // the die, not the physical one.
        Kelvin core_max = *std::max_element(core.tempsBuf.begin(),
                                            core.tempsBuf.end());
        if (c == 0 || core_max > observed_max)
            observed_max = core_max;

        for (auto &policy : core.policies)
            policy->atSensorSample(now, core.tempsBuf, *core.control);
    }
    lastObservedMax_ = observed_max;
    if (tracer_)
        tracer_->setCoreId(0);

    if (config_.recordTempTrace &&
        now - lastTraceAt_ >= config_.tempTraceInterval) {
        lastTraceAt_ = now;
        auto [block, hottest] = thermal_->hottest();
        (void)block;
        tempTrace_.push_back(TempSample{
            now, thermal_->blockTemp(Block::IntReg), hottest,
            thermal_->sinkTemp()});
    }

    ++profile_.sensorSamples;
}

RunResult
Simulator::run()
{
    // Establish normal-operation temperatures (HotSpot warm start) —
    // unless this simulator resumed from a snapshot, whose restored
    // RC-network temperatures already embed the warm start plus the
    // shared prefix's heating.
    if (!resumedFromSnapshot_)
        initNominalSteadyState();

    const Cycles quantum = config_.quantumCycles;
    const Cycles sensor = config_.sensorInterval;
    const Cycles monitor = config_.monitorInterval;

    // Countdowns to the next monitor/sensor boundary replace the two
    // divisions the old loop paid every cycle. They track the same
    // absolute boundaries: toMonitor/toSensor are the cycles left until
    // the next multiple of the respective interval. A resumed run
    // starts at a sensor boundary, where both countdowns are full.
    Cycles toMonitor = monitor;
    Cycles toSensor = sensor;

    const Cycles start_cycle = cores_[0].pipeline->cycle();
    uint64_t stalled_cycles = 0;

    auto wall_start = std::chrono::steady_clock::now();
    while (cores_[0].pipeline->cycle() < quantum) {
        bool all_stalled = true;
        for (const CoreState &core : cores_) {
            if (!core.pipeline->globalStalled()) {
                all_stalled = false;
                break;
            }
        }
        if (all_stalled) {
            // Nothing can change until a policy releases a pipeline at
            // a sensor boundary: fast-forward every core to it.
            // (Stalls begin at sensor samples, so toSensor is the full
            // distance to the next boundary.) Monitor samples are
            // skipped while stalled, as before; re-anchor that
            // countdown to the landing cycle.
            Cycles now = cores_[0].pipeline->cycle();
            Cycles delta = std::min(toSensor, quantum - now);
            if (profiling_) {
                auto t0 = std::chrono::steady_clock::now();
                for (CoreState &core : cores_)
                    core.pipeline->advanceStalled(delta);
                profile_.stallSeconds +=
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
            } else {
                for (CoreState &core : cores_)
                    core.pipeline->advanceStalled(delta);
            }
            stalled_cycles += delta;
            toSensor -= delta;
            Cycles gone = delta % monitor;
            toMonitor = gone < toMonitor ? toMonitor - gone
                                         : toMonitor - gone + monitor;
            if (toSensor == 0) {
                toSensor = sensor;
                sampleSensors();
            }
        } else {
            // Lockstep cycle: stalled cores only account their stall
            // (stop-and-go is per-core now), the rest execute.
            for (size_t c = 0; c < cores_.size(); ++c) {
                CoreState &core = cores_[c];
                if (tracer_)
                    tracer_->setCoreId(static_cast<uint8_t>(c));
                if (core.pipeline->globalStalled())
                    core.pipeline->advanceStalled(1);
                else
                    core.pipeline->tick();
            }
            if (--toMonitor == 0) {
                toMonitor = monitor;
                for (size_t c = 0; c < cores_.size(); ++c) {
                    CoreState &core = cores_[c];
                    if (core.pipeline->globalStalled())
                        continue; // stalled cores skip monitor samples
                    if (tracer_)
                        tracer_->setCoreId(static_cast<uint8_t>(c));
                    for (auto &policy : core.policies)
                        policy->atMonitorSample(
                            core.pipeline->cycle(),
                            core.pipeline->activity());
                }
            }
            if (tracer_)
                tracer_->setCoreId(0);
            if (--toSensor == 0) {
                toSensor = sensor;
                sampleSensors();
            }
        }
        if (allCoresHalted())
            break;
    }
    double host_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    // Per-thread fetch-slot shares over the whole quantum: one
    // observation per scheduled thread, of its fraction of all
    // I-cache fetch slots on its core — how far the hammer starved its
    // victims.
    for (CoreState &core : cores_) {
        uint64_t fetch_total = 0;
        for (ThreadId t = 0; t < config_.smt.numThreads; ++t)
            fetch_total +=
                core.pipeline->activity().count(t, Block::Icache);
        if (fetch_total) {
            for (ThreadId t = 0; t < config_.smt.numThreads; ++t) {
                if (core.pipeline->thread(t).state == ThreadState::Idle)
                    continue;
                core.histFetchShare.observe(
                    static_cast<double>(core.pipeline->activity().count(
                        t, Block::Icache)) /
                    static_cast<double>(fetch_total));
            }
        }
    }

    profile_.totalSeconds += host_seconds;
    profile_.stalledCycles += stalled_cycles;
    profile_.tickedCycles +=
        (cores_[0].pipeline->cycle() - start_cycle) - stalled_cycles;
    // Whatever the loop did not spend sampling sensors or
    // fast-forwarding stalls was cycle-by-cycle execution.
    profile_.tickSeconds = profile_.totalSeconds -
                           profile_.thermalSeconds -
                           profile_.stallSeconds;

    return collectResults(host_seconds);
}

// --- snapshots -----------------------------------------------------------

void
Simulator::save(SimSnapshot &snap) const
{
    auto t0 = std::chrono::steady_clock::now();
    Cycles now = cores_[0].pipeline->cycle();
    if (now % config_.sensorInterval != 0)
        fatal("Simulator::save: cycle %llu is not a sensor boundary "
              "(interval %llu)",
              static_cast<unsigned long long>(now),
              static_cast<unsigned long long>(config_.sensorInterval));
    for (const CoreState &core : cores_) {
        if (core.pipeline->globalStalled())
            fatal("Simulator::save: cannot snapshot a stalled pipeline");
    }
    if (allCoresHalted())
        fatal("Simulator::save: cannot snapshot a halted machine (a "
              "restored run would re-test the halt one cycle later)");

    snap.clear();
    StateWriter w(snap.bytes);
    w.putTag(stateTag("HSS1"));

    // Echo the configuration fields a forked cell must share with the
    // prefix, so restoring into an incompatible cell fails loudly.
    // DTM policy parameters are deliberately absent: cells differ
    // there by design, and policy state below the trigger is inert.
    w.put<int32_t>(config_.smt.numThreads);
    w.put<Cycles>(config_.quantumCycles);
    w.put<Cycles>(config_.sensorInterval);
    w.put<Cycles>(config_.monitorInterval);
    w.put<double>(config_.emergencyTemp);
    w.put<double>(config_.sensorNoiseK);
    w.put<uint8_t>(config_.recordTempTrace ? 1 : 0);
    w.put<double>(config_.thermal.timeScale);
    w.put<double>(config_.thermal.convectionR);
    w.put<uint8_t>(config_.thermal.idealSink ? 1 : 0);
    w.put<double>(config_.thermal.dieShrink);
    w.put<uint8_t>(config_.traceEvents ? 1 : 0);
    w.put<uint32_t>(config_.traceCapacity);
    w.put<double>(config_.episodeTriggerTemp);
    w.put<double>(config_.episodeResumeTemp);
    // Topology axis: a fork must share the die composition and the
    // thread placement (both are in the divergence key, so every
    // member of a prefix group does).
    w.put<int32_t>(numCores_);
    w.put<double>(config_.topology.coreSpacing);
    w.put<double>(config_.topology.couplingScale);
    w.putVec(coreOf_);

    for (const CoreState &core : cores_)
        core.pipeline->saveState(w);
    thermal_->saveState(w);

    w.putTag(stateTag("SIMS"));
    for (const CoreState &core : cores_) {
        w.put<Cycles>(core.lastActiveCycles);
        w.put<uint64_t>(core.emergencies);
        for (uint64_t e : core.emergenciesPerBlock)
            w.put<uint64_t>(e);
        for (bool b : core.aboveEmergency)
            w.put<uint8_t>(b ? 1 : 0);
        for (Kelvin t : core.peakTemp)
            w.put<double>(t);
    }
    w.put<double>(energyAccumJ_);
    for (uint64_t s : sensorNoise_.state())
        w.put<uint64_t>(s);
    w.putVec(tempTrace_);
    w.put<Cycles>(lastTraceAt_);
    for (const CoreState &core : cores_)
        core.powerSnapshot->saveState(w);
    for (const CoreState &core : cores_)
        w.putVec(core.descheduled);

    // Sedation usage monitors: the one piece of policy state that
    // evolves unconditionally below the trigger, so forked sedation
    // cells need the prefix's copy transplanted.
    for (const CoreState &core : cores_) {
        w.put<uint8_t>(core.sedation ? 1 : 0);
        if (core.sedation)
            core.sedation->monitor().saveState(w);
    }

    // Event tracer: traced forks must replay the prefix's event
    // history so their final traces are bit-identical to cold runs'.
    w.put<uint8_t>(tracer_ ? 1 : 0);
    if (tracer_)
        tracer_->saveState(w);

    // The episode detectors always run (their phase machines feed the
    // run-health histograms), so their state is saved unconditionally.
    for (const CoreState &core : cores_)
        core.episodes->saveState(w);

    // Run-health histograms + sedation bookkeeping: forked cells must
    // resume with the prefix's distribution state so their exported
    // histograms match cold runs' bit for bit.
    w.putTag(stateTag("HMET"));
    for (const CoreState &core : cores_) {
        core.histEpisodeHeat.saveState(w);
        core.histEpisodeCool.saveState(w);
        core.histSedation.saveState(w);
        core.histRuu.saveState(w);
        core.histLsq.saveState(w);
        core.histFetchShare.saveState(w);
        w.putVec(core.sedStart);
    }

    snap.cycle = now;
    ++profile_.snapshotOps;
    if (profiling_)
        profile_.snapshotSeconds +=
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
}

void
Simulator::restore(const SimSnapshot &snap)
{
    auto t0 = std::chrono::steady_clock::now();
    if (snap.empty())
        fatal("Simulator::restore: empty snapshot");
    if (cores_[0].pipeline->cycle() != 0)
        fatal("Simulator::restore: only a freshly constructed "
              "simulator can restore (this one is at cycle %llu)",
              static_cast<unsigned long long>(
                  cores_[0].pipeline->cycle()));

    StateReader r(snap.bytes);
    r.expectTag(stateTag("HSS1"), "SimSnapshot header");

    int32_t threads = r.get<int32_t>();
    Cycles quantum = r.get<Cycles>();
    Cycles sensor = r.get<Cycles>();
    Cycles monitor = r.get<Cycles>();
    double emergency = r.get<double>();
    double noise = r.get<double>();
    bool trace = r.get<uint8_t>() != 0;
    double time_scale = r.get<double>();
    double conv_r = r.get<double>();
    bool ideal = r.get<uint8_t>() != 0;
    double shrink = r.get<double>();
    bool etrace = r.get<uint8_t>() != 0;
    uint32_t trace_cap = r.get<uint32_t>();
    double episode_trigger = r.get<double>();
    double episode_resume = r.get<double>();
    int32_t num_cores = r.get<int32_t>();
    double core_spacing = r.get<double>();
    double coupling = r.get<double>();
    std::vector<int> placement;
    r.getVec(placement);
    if (threads != config_.smt.numThreads ||
        quantum != config_.quantumCycles ||
        sensor != config_.sensorInterval ||
        monitor != config_.monitorInterval ||
        emergency != config_.emergencyTemp ||
        noise != config_.sensorNoiseK ||
        trace != config_.recordTempTrace ||
        time_scale != config_.thermal.timeScale ||
        conv_r != config_.thermal.convectionR ||
        ideal != config_.thermal.idealSink ||
        shrink != config_.thermal.dieShrink ||
        etrace != config_.traceEvents ||
        (etrace && trace_cap != config_.traceCapacity) ||
        episode_trigger != config_.episodeTriggerTemp ||
        episode_resume != config_.episodeResumeTemp ||
        num_cores != numCores_ ||
        core_spacing != config_.topology.coreSpacing ||
        coupling != config_.topology.couplingScale ||
        placement != coreOf_)
        fatal("Simulator::restore: snapshot comes from an incompatible "
              "configuration (prefix-invariant fields differ)");

    for (CoreState &core : cores_)
        core.pipeline->restoreState(r);
    thermal_->restoreState(r);

    r.expectTag(stateTag("SIMS"), "Simulator accounting");
    for (CoreState &core : cores_) {
        core.lastActiveCycles = r.get<Cycles>();
        core.emergencies = r.get<uint64_t>();
        for (uint64_t &e : core.emergenciesPerBlock)
            e = r.get<uint64_t>();
        for (size_t i = 0; i < core.aboveEmergency.size(); ++i)
            core.aboveEmergency[i] = r.get<uint8_t>() != 0;
        for (Kelvin &t : core.peakTemp)
            t = r.get<double>();
    }
    energyAccumJ_ = r.get<double>();
    std::array<uint64_t, 4> rng_state;
    for (uint64_t &s : rng_state)
        s = r.get<uint64_t>();
    sensorNoise_.setState(rng_state);
    r.getVec(tempTrace_);
    lastTraceAt_ = r.get<Cycles>();
    for (CoreState &core : cores_)
        core.powerSnapshot->restoreState(r);
    for (CoreState &core : cores_)
        r.getVec(core.descheduled);

    for (CoreState &core : cores_) {
        bool has_monitor = r.get<uint8_t>() != 0;
        if (has_monitor) {
            if (core.sedation)
                core.sedation->monitor().restoreState(
                    r, core.pipeline->activity());
            else
                UsageMonitor::skipState(r);
        } else if (core.sedation) {
            fatal("Simulator::restore: this configuration needs "
                  "usage-monitor state the snapshot does not carry");
        }
    }

    bool has_tracer = r.get<uint8_t>() != 0;
    if (has_tracer) {
        // The config echo above guarantees tracer_ exists here.
        tracer_->restoreState(r);
        // The shared prefix runs under (neutralised) sedation policies
        // and therefore records usage-monitor samples. A cold run of a
        // cell without a sedation policy never emits those; drop them
        // so forked and cold traces match (the trace-side twin of
        // UsageMonitor::skipState above).
        if (!cores_[0].sedation)
            tracer_->dropCategory(TraceCategory::Monitor);
    }
    for (CoreState &core : cores_)
        core.episodes->restoreState(r);

    r.expectTag(stateTag("HMET"), "run-health histograms");
    for (CoreState &core : cores_) {
        core.histEpisodeHeat.restoreState(r);
        core.histEpisodeCool.restoreState(r);
        core.histSedation.restoreState(r);
        core.histRuu.restoreState(r);
        core.histLsq.restoreState(r);
        core.histFetchShare.restoreState(r);
        r.getVec(core.sedStart);
        if (core.sedStart.size() !=
            static_cast<size_t>(config_.smt.numThreads))
            fatal("Simulator::restore: sedation bookkeeping for %zu "
                  "threads, expected %d",
                  core.sedStart.size(), config_.smt.numThreads);
    }
    if (!r.done())
        fatal("Simulator::restore: %zu trailing bytes (snapshot layout "
              "mismatch)",
              r.remaining());

    resumedFromSnapshot_ = true;
    ++profile_.snapshotOps;
    if (profiling_)
        profile_.snapshotSeconds +=
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
}

void
Simulator::beginScout()
{
    if (cores_[0].pipeline->cycle() != 0)
        fatal("Simulator::beginScout: needs a freshly constructed "
              "simulator");
    initNominalSteadyState();
    scoutToMonitor_ = config_.monitorInterval;
    scoutToSensor_ = config_.sensorInterval;
}

Simulator::ScoutChunk
Simulator::runScoutChunk()
{
    // Mirrors run()'s cycle loop exactly (tick, monitor sample, sensor
    // sample, halt test, in that order) so a scout's history is the
    // same history every cold group member would have produced.
    const Cycles quantum = config_.quantumCycles;
    const Cycles monitor = config_.monitorInterval;
    while (cores_[0].pipeline->cycle() < quantum) {
        for (size_t c = 0; c < cores_.size(); ++c) {
            CoreState &core = cores_[c];
            if (core.pipeline->globalStalled())
                fatal("Simulator::runScoutChunk: the pipeline stalled "
                      "— the scout's DTM thresholds were not "
                      "neutralised");
            if (tracer_)
                tracer_->setCoreId(static_cast<uint8_t>(c));
            core.pipeline->tick();
        }
        if (--scoutToMonitor_ == 0) {
            scoutToMonitor_ = monitor;
            for (size_t c = 0; c < cores_.size(); ++c) {
                CoreState &core = cores_[c];
                if (tracer_)
                    tracer_->setCoreId(static_cast<uint8_t>(c));
                for (auto &policy : core.policies)
                    policy->atMonitorSample(core.pipeline->cycle(),
                                            core.pipeline->activity());
            }
        }
        if (tracer_)
            tracer_->setCoreId(0);
        if (--scoutToSensor_ == 0) {
            scoutToSensor_ = config_.sensorInterval;
            samplePowers();
            return ScoutChunk::AtSensor;
        }
        // The halt test is skipped on sensor-boundary cycles (the
        // caller re-tests after finishing the sample), matching
        // run()'s `else if` ordering.
        if (allCoresHalted())
            return ScoutChunk::Halted;
    }
    return ScoutChunk::End;
}

Cycles
Simulator::runPrefix(Kelvin diverge_temp, Cycles stride_samples,
                     SimSnapshot &out)
{
    if (stride_samples == 0)
        stride_samples = 1;

    beginScout();

    const Cycles quantum = config_.quantumCycles;
    const Cycles sensor = config_.sensorInterval;
    Cycles fork_cycle = 0;
    Cycles samples_since_save = 0;

    for (;;) {
        if (runScoutChunk() != ScoutChunk::AtSensor)
            break;
        thermal_->step(thermalPowerBuf_, sensorDt());
        finishSensorSample();
        // Past this boundary some group member's policy could have
        // observed an actionable temperature; the last snapshot
        // already taken stays the fork point.
        if (lastObservedMax_ >= diverge_temp)
            break;
        // Never hand out a snapshot at or beyond a halt: a cold
        // run breaks here, while a restored run would tick once
        // more before re-testing the halt.
        if (allCoresHalted())
            break;
        ++samples_since_save;
        bool last_boundary =
            quantum - cores_[0].pipeline->cycle() < sensor;
        if (samples_since_save >= stride_samples || last_boundary) {
            save(out);
            fork_cycle = cores_[0].pipeline->cycle();
            samples_since_save = 0;
        }
    }
    return fork_cycle;
}

RunResult
Simulator::collectResults(double host_seconds) const
{
    RunResult result;
    result.numCores = numCores_;
    result.cycles = cores_[0].pipeline->cycle();
    // Aggregate view: the most active core's clock (identical to the
    // single core's on a 1-core die); per-core values sit in cores[].
    result.activeCycles = 0;
    for (const CoreState &core : cores_)
        result.activeCycles = std::max(result.activeCycles,
                                       core.pipeline->activeCycles());
    result.hostSeconds = host_seconds;
    result.simCyclesPerHostSec =
        host_seconds > 0.0
            ? static_cast<double>(result.cycles) / host_seconds
            : 0.0;

    // Threads appear in global-context order, each reported against
    // its own core's (per-core) caches and predictor.
    for (size_t g = 0; g < coreOf_.size(); ++g) {
        int c = coreOf_[g];
        const CoreState &core = cores_[static_cast<size_t>(c)];
        ThreadId t = slotOf_[g];
        const ThreadContext &tc = core.pipeline->thread(t);
        if (tc.state == ThreadState::Idle)
            continue;
        const Cache &l1d = core.pipeline->mem().l1d();
        double l1d_missrate = l1d.missRate();
        double l2_missrate = core.pipeline->mem().l2().missRate();
        uint64_t bp_lookups = core.pipeline->bpred().lookups();
        double bp_accuracy =
            bp_lookups
                ? 1.0 - static_cast<double>(
                            core.pipeline->bpred().mispredicts()) /
                            static_cast<double>(bp_lookups)
                : 1.0;
        ThreadResult tr;
        tr.program = tc.program ? tc.program->name() : "";
        tr.core = c;
        tr.committed = tc.committedInsts;
        tr.ipc = result.cycles
                     ? static_cast<double>(tc.committedInsts) /
                           static_cast<double>(result.cycles)
                     : 0.0;
        tr.normalCycles = tc.normalCycles;
        tr.coolingCycles = tc.coolingCycles;
        tr.sedationCycles = tc.sedationCycles;
        tr.intRegAccessRate =
            result.cycles
                ? static_cast<double>(core.pipeline->activity().count(
                      t, Block::IntReg)) /
                      static_cast<double>(result.cycles)
                : 0.0;
        tr.l1dMissRate = l1d_missrate;
        tr.l2MissRate = l2_missrate;
        tr.bpredAccuracy = bp_accuracy;
        uint64_t fp = core.pipeline->activity().count(t, Block::FpAdd) +
                      core.pipeline->activity().count(t, Block::FpMul);
        tr.fpPerInst = tc.committedInsts
                           ? static_cast<double>(fp) /
                                 static_cast<double>(tc.committedInsts)
                           : 0.0;
        result.threads.push_back(std::move(tr));
    }

    // Aggregate the thermal accounting: counters sum across the die,
    // peaks take the per-block maximum over the cores.
    result.emergencies = 0;
    result.emergenciesPerBlock.fill(0);
    result.peakTemp.fill(0.0);
    for (const CoreState &core : cores_) {
        result.emergencies += core.emergencies;
        for (int b = 0; b < numBlocks; ++b) {
            size_t i = static_cast<size_t>(b);
            result.emergenciesPerBlock[i] += core.emergenciesPerBlock[i];
            result.peakTemp[i] =
                std::max(result.peakTemp[i], core.peakTemp[i]);
        }
    }
    result.peakTempOverall = 0;
    for (int b = 0; b < numBlocks; ++b) {
        if (result.peakTemp[static_cast<size_t>(b)] >
            result.peakTempOverall) {
            result.peakTempOverall =
                result.peakTemp[static_cast<size_t>(b)];
            result.hottestBlock = blockFromIndex(b);
        }
    }

    result.stopAndGoTriggers = 0;
    result.coolingStallCycles = 0;
    for (const CoreState &core : cores_) {
        if (core.stopAndGo) {
            result.stopAndGoTriggers += core.stopAndGo->triggers();
            result.coolingStallCycles += core.stopAndGo->stallCycles();
        }
    }
    // Per-core policy actions merge in core order with thread ids
    // remapped to the result's global numbering.
    for (size_t c = 0; c < cores_.size(); ++c) {
        const CoreState &core = cores_[c];
        if (core.sedation) {
            for (SedationEvent e : core.sedation->events()) {
                if (e.thread >= 0 &&
                    static_cast<size_t>(e.thread) < globalOf_[c].size())
                    e.thread = globalOf_[c][static_cast<size_t>(e.thread)];
                result.sedationEvents.push_back(e);
            }
        }
        for (ThreadId d : core.descheduled) {
            ThreadId g = d;
            if (d >= 0 && static_cast<size_t>(d) < globalOf_[c].size())
                g = globalOf_[c][static_cast<size_t>(d)];
            result.descheduledThreads.push_back(g);
        }
    }

    double seconds = static_cast<double>(result.cycles) /
                     config_.energy.frequencyHz;
    result.avgTotalPowerW = seconds > 0 ? energyAccumJ_ / seconds : 0.0;
    result.tempTrace = tempTrace_;
    if (tracer_) {
        tracer_->exportTo(result.traceEvents);
        result.traceEventsDropped = tracer_->dropped();
    }

    if (numCores_ > 1) {
        for (size_t c = 0; c < cores_.size(); ++c) {
            const CoreState &core = cores_[c];
            CoreResult cr;
            cr.core = static_cast<int>(c);
            cr.activeCycles = core.pipeline->activeCycles();
            cr.emergencies = core.emergencies;
            cr.emergenciesPerBlock = core.emergenciesPerBlock;
            cr.peakTemp = core.peakTemp;
            cr.peakTempOverall = 0;
            for (int b = 0; b < numBlocks; ++b) {
                if (core.peakTemp[static_cast<size_t>(b)] >
                    cr.peakTempOverall) {
                    cr.peakTempOverall =
                        core.peakTemp[static_cast<size_t>(b)];
                    cr.hottestBlock = blockFromIndex(b);
                }
            }
            if (core.stopAndGo) {
                cr.stopAndGoTriggers = core.stopAndGo->triggers();
                cr.coolingStallCycles = core.stopAndGo->stallCycles();
            }
            result.cores.push_back(cr);
        }
    }

    // Histogram names keep their historical single-core form on a
    // 1-core die; multi-core dies export one set per core, prefixed.
    auto histName = [&](size_t c, const char *name) {
        return numCores_ == 1 ? std::string(name)
                              : strprintf("core%zu.%s", c, name);
    };
    for (size_t c = 0; c < cores_.size(); ++c) {
        const CoreState &core = cores_[c];
        result.histograms.push_back(
            {histName(c, "sim.episode_heat_cycles"),
             "heating duration of completed heat episodes (cycles)",
             core.histEpisodeHeat});
        result.histograms.push_back(
            {histName(c, "sim.episode_cool_cycles"),
             "cooling duration of completed heat episodes (cycles)",
             core.histEpisodeCool});
        result.histograms.push_back(
            {histName(c, "sim.sedation_span_cycles"),
             "length of completed per-thread sedation spans (cycles)",
             core.histSedation});
        result.histograms.push_back(
            {histName(c, "sim.ruu_occupancy"),
             "RUU entries in use at each sensor sample", core.histRuu});
        result.histograms.push_back(
            {histName(c, "sim.lsq_occupancy"),
             "LSQ entries in use at each sensor sample", core.histLsq});
        result.histograms.push_back(
            {histName(c, "sim.fetch_slot_share"),
             "per-thread share of all fetch slots over the quantum",
             core.histFetchShare});
    }
    return result;
}

namespace {

/** Helper owning the scalars a dump section registers. */
class StatSection
{
  public:
    explicit StatSection(std::string name) : group_(std::move(name)) {}

    void
    add(const std::string &name, double value, const std::string &desc)
    {
        scalars_.push_back(
            std::make_unique<StatScalar>(name, desc));
        scalars_.back()->set(value);
        group_.add(scalars_.back().get());
    }

    void dump(std::ostream &os) const { group_.dump(os); }

  private:
    StatGroup group_;
    std::vector<std::unique_ptr<StatScalar>> scalars_;
};

} // namespace

void
Simulator::dumpStats(std::ostream &os) const
{
    // Per-core groups carry a "coreN." prefix only on multi-core dies,
    // so single-core reports keep their historical bytes.
    auto corePrefix = [&](size_t c) {
        return numCores_ == 1 ? std::string() : strprintf("core%zu.", c);
    };
    {
        const Pipeline &pipe = *cores_[0].pipeline;
        uint64_t total_emergencies = 0;
        for (const CoreState &core : cores_)
            total_emergencies += core.emergencies;
        Cycles active = 0;
        for (const CoreState &core : cores_)
            active = std::max(active, core.pipeline->activeCycles());
        StatSection s("sim");
        s.add("cycles", static_cast<double>(pipe.cycle()),
              "simulated cycles");
        s.add("active_cycles", static_cast<double>(active),
              "cycles the pipeline clock ran");
        s.add("avg_power_w",
              energyAccumJ_ /
                  std::max(1e-12,
                           static_cast<double>(pipe.cycle()) /
                               config_.energy.frequencyHz),
              "average chip power");
        s.add("emergencies", static_cast<double>(total_emergencies),
              "358 K crossings");
        s.dump(os);
    }
    for (size_t c = 0; c < cores_.size(); ++c) {
        const Pipeline &pipe = *cores_[c].pipeline;
        for (ThreadId t = 0; t < config_.smt.numThreads; ++t) {
            const ThreadContext &tc = pipe.thread(t);
            if (tc.state == ThreadState::Idle)
                continue;
            StatSection s(
                strprintf("%sthread%d", corePrefix(c).c_str(), t));
            s.add("program", 0.0, tc.program ? tc.program->name() : "-");
            s.add("committed", static_cast<double>(tc.committedInsts),
                  "committed instructions");
            s.add("ipc",
                  pipe.cycle() ? static_cast<double>(tc.committedInsts) /
                                     static_cast<double>(pipe.cycle())
                               : 0.0,
                  "instructions per cycle");
            s.add("loads", static_cast<double>(tc.committedLoads),
                  "committed loads");
            s.add("stores", static_cast<double>(tc.committedStores),
                  "committed stores");
            s.add("branches",
                  static_cast<double>(tc.committedBranches),
                  "committed control instructions");
            s.add("squashed", static_cast<double>(tc.squashedInsts),
                  "squashed instructions");
            s.add("normal_cycles", static_cast<double>(tc.normalCycles),
                  "cycles in normal operation");
            s.add("cooling_cycles",
                  static_cast<double>(tc.coolingCycles),
                  "cycles stalled by stop-and-go");
            s.add("sedation_cycles",
                  static_cast<double>(tc.sedationCycles),
                  "cycles sedated");
            s.add("intreg_rate",
                  pipe.cycle()
                      ? static_cast<double>(
                            pipe.activity().count(t, Block::IntReg)) /
                            static_cast<double>(pipe.cycle())
                      : 0.0,
                  "integer register file accesses per cycle");
            s.dump(os);
        }
    }
    for (size_t c = 0; c < cores_.size(); ++c) {
        const MemoryHierarchy &mem = cores_[c].pipeline->mem();
        StatSection s(corePrefix(c) + "mem");
        auto cache = [&](const char *name, const Cache &cch) {
            s.add(strprintf("%s.hits", name),
                  static_cast<double>(cch.hits()), "cache hits");
            s.add(strprintf("%s.misses", name),
                  static_cast<double>(cch.misses()), "cache misses");
            s.add(strprintf("%s.miss_rate", name), cch.missRate(),
                  "miss rate");
            s.add(strprintf("%s.writebacks", name),
                  static_cast<double>(cch.writebacks()),
                  "dirty evictions");
        };
        cache("l1i", mem.l1i());
        cache("l1d", mem.l1d());
        cache("l2", mem.l2());
        s.add("mem_writebacks",
              static_cast<double>(mem.memWritebacks()),
              "L2 victims written to memory");
        s.dump(os);
    }
    for (size_t c = 0; c < cores_.size(); ++c) {
        const BranchPredictor &bp = cores_[c].pipeline->bpred();
        StatSection s(corePrefix(c) + "bpred");
        s.add("lookups", static_cast<double>(bp.lookups()),
              "direction predictions");
        s.add("mispredicts", static_cast<double>(bp.mispredicts()),
              "resolved mispredictions");
        s.add("accuracy",
              bp.lookups()
                  ? 1.0 - static_cast<double>(bp.mispredicts()) /
                              static_cast<double>(bp.lookups())
                  : 0.0,
              "prediction accuracy");
        s.dump(os);
    }
    for (size_t c = 0; c < cores_.size(); ++c) {
        StatSection s(corePrefix(c) + "thermal");
        for (int b = 0; b < numBlocks; ++b) {
            Block block = blockFromIndex(b);
            s.add(strprintf("%s.temp_k", blockName(block)),
                  thermal_->coreBlockTemp(static_cast<int>(c), block),
                  "current temperature");
            s.add(strprintf("%s.peak_k", blockName(block)),
                  cores_[c].peakTemp[static_cast<size_t>(b)],
                  "peak temperature this run");
        }
        // The sink is shared by the whole die: report it once, with
        // the last core's section (the only section on one core).
        if (c + 1 == cores_.size())
            s.add("sink_k", thermal_->sinkTemp(),
                  "heat-sink temperature");
        s.dump(os);
    }
    {
        uint64_t triggers = 0, stall_cycles = 0, sed_events = 0,
                 desched = 0;
        bool any_sg = false, any_sed = false;
        for (const CoreState &core : cores_) {
            if (core.stopAndGo) {
                any_sg = true;
                triggers += core.stopAndGo->triggers();
                stall_cycles += core.stopAndGo->stallCycles();
            }
            if (core.sedation) {
                any_sed = true;
                sed_events += core.sedation->events().size();
            }
            desched += core.descheduled.size();
        }
        StatSection s("dtm");
        s.add("mode", 0.0, dtmModeName(config_.dtm));
        if (any_sg) {
            s.add("stop_and_go.triggers", static_cast<double>(triggers),
                  "global stalls");
            s.add("stop_and_go.stall_cycles",
                  static_cast<double>(stall_cycles),
                  "cycles stalled globally");
        }
        if (any_sed) {
            s.add("sedation.events", static_cast<double>(sed_events),
                  "sedation actions");
        }
        s.add("descheduled", static_cast<double>(desched),
              "threads removed by the OS extension");
        s.dump(os);
    }
    if (tracer_) {
        uint64_t episodes_done = 0;
        for (const CoreState &core : cores_)
            episodes_done += core.episodes->completed();
        StatSection s("trace");
        s.add("events_buffered", static_cast<double>(tracer_->size()),
              "events held in the ring");
        s.add("events_emitted", static_cast<double>(tracer_->emitted()),
              "events ever recorded");
        s.add("events_dropped", static_cast<double>(tracer_->dropped()),
              "events lost to ring overflow");
        s.add("episodes_completed", static_cast<double>(episodes_done),
              "heat/cool episodes observed");
        s.dump(os);
    }
}

} // namespace hs
