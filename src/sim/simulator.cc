#include "sim/simulator.hh"

#include <algorithm>
#include <chrono>
#include <ostream>

#include "common/log.hh"
#include "common/rng.hh"
#include "common/state_buffer.hh"
#include "common/stats.hh"
#include "thermal/floorplan.hh"

namespace hs {

const char *
dtmModeName(DtmMode mode)
{
    switch (mode) {
      case DtmMode::None: return "none";
      case DtmMode::StopAndGo: return "stop-and-go";
      case DtmMode::SelectiveSedation: return "selective-sedation";
      case DtmMode::DvfsThrottle: return "dvfs-throttle";
      case DtmMode::FetchGating: return "fetch-gating";
      default:
        panic("dtmModeName: bad mode %d", static_cast<int>(mode));
    }
}

std::array<double, numBlocks>
SimConfig::defaultNominalRates()
{
    // A typical two-thread SPEC mix (combined IPC ~2.2, ~30% memory
    // ops, ~20% FP). Sets the "normal operating temperature" of
    // Section 3.2.2 (the integer register file sits near 354 K).
    std::array<double, numBlocks> rates{};
    auto set = [&](Block b, double v) {
        rates[static_cast<size_t>(blockIndex(b))] = v;
    };
    set(Block::Icache, 1.8);
    set(Block::Itb, 1.8);
    set(Block::Bpred, 0.5);
    set(Block::IntMap, 3.0);
    set(Block::FpMap, 0.5);
    set(Block::IntQ, 13.5);
    set(Block::IntReg, 11.5);
    set(Block::FpReg, 1.2);
    set(Block::IntExec, 2.3);
    set(Block::FpAdd, 0.3);
    set(Block::FpMul, 0.2);
    set(Block::LdStQ, 1.1);
    set(Block::Dcache, 1.1);
    set(Block::Dtb, 1.1);
    set(Block::L2, 0.05);
    return rates;
}

Simulator::Simulator(const SimConfig &config)
    : config_(config),
      programs_(static_cast<size_t>(config.smt.numThreads)),
      pipeline_(std::make_unique<Pipeline>(config.smt)),
      energy_(std::make_unique<EnergyModel>(config.energy)),
      thermal_(std::make_unique<ThermalModel>(Floorplan::ev6(),
                                              config.thermal))
{
    if (config_.sensorInterval == 0 || config_.monitorInterval == 0)
        fatal("Simulator: sampling intervals must be positive");
    if (config_.sensorInterval % config_.monitorInterval != 0)
        fatal("Simulator: sensor interval must be a multiple of the "
              "monitor interval");

    powerSnapshot_ = std::make_unique<ActivityCounters::Snapshot>(
        pipeline_->activity());

    switch (config_.dtm) {
      case DtmMode::None:
        break;
      case DtmMode::StopAndGo: {
        auto sg = std::make_unique<StopAndGo>(config_.stopAndGo);
        stopAndGo_ = sg.get();
        policies_.push_back(std::move(sg));
        break;
      }
      case DtmMode::SelectiveSedation: {
        auto sed = std::make_unique<SelectiveSedation>(
            config_.smt.numThreads, config_.sedation,
            config_.monitorInterval);
        sedation_ = sed.get();
        policies_.push_back(std::move(sed));
        if (config_.descheduleRepeatOffenders) {
            offenderTracker_ = std::make_unique<OffenderTracker>(
                config_.smt.numThreads, config_.offenderPolicy);
            offenderTracker_->setOnDeschedule([this](ThreadId tid) {
                descheduled_.push_back(tid);
                if (tracer_)
                    tracer_->emit(pipeline_->cycle(),
                                  TraceKind::OsDeschedule, tid,
                                  traceNoBlock, 0.0,
                                  descheduled_.size());
                pipeline_->setSedated(tid, true);
            });
        }
        sedation_->setOsReport([this](const SedationEvent &event) {
            if (offenderTracker_)
                offenderTracker_->onReport(event);
            if (userOsReport_)
                userOsReport_(event);
        });
        // Stop-and-go remains underneath as the safety net
        // (Section 3.2.2).
        auto sg = std::make_unique<StopAndGo>(config_.stopAndGo);
        stopAndGo_ = sg.get();
        policies_.push_back(std::move(sg));
        break;
      }
      case DtmMode::DvfsThrottle: {
        auto dvfs = std::make_unique<DvfsThrottle>(config_.dvfs);
        policies_.push_back(std::move(dvfs));
        auto sg = std::make_unique<StopAndGo>(config_.stopAndGo);
        stopAndGo_ = sg.get();
        policies_.push_back(std::move(sg));
        break;
      }
      case DtmMode::FetchGating: {
        auto gate = std::make_unique<FetchGating>(
            config_.smt.numThreads, config_.fetchGating);
        policies_.push_back(std::move(gate));
        auto sg = std::make_unique<StopAndGo>(config_.stopAndGo);
        stopAndGo_ = sg.get();
        policies_.push_back(std::move(sg));
        break;
      }
    }

    if (config_.traceEvents) {
        tracer_ = std::make_unique<Tracer>(config_.traceCapacity);
        pipeline_->setTracer(tracer_.get());
        for (auto &policy : policies_)
            policy->setTracer(tracer_.get());
    }

    // The episode detector always runs (it feeds the run-health
    // histograms); without a tracer it simply emits no events.
    episodes_ = std::make_unique<OnlineEpisodeDetector>(
        config_.episodeTriggerTemp, config_.episodeResumeTemp,
        tracer_.get());
    episodes_->setDurationSinks(&histEpisodeHeat_, &histEpisodeCool_);
    sedStart_.assign(static_cast<size_t>(config_.smt.numThreads), 0);

    peakTemp_.fill(0.0);
}

Simulator::~Simulator() = default;

void
Simulator::setWorkload(ThreadId tid, Program program)
{
    if (tid < 0 || tid >= config_.smt.numThreads)
        fatal("setWorkload: thread %d out of range", tid);
    programs_[static_cast<size_t>(tid)] =
        std::make_unique<Program>(std::move(program));
    pipeline_->setThreadProgram(tid,
                                programs_[static_cast<size_t>(tid)].get());
}

// --- DtmControl ----------------------------------------------------------

void
Simulator::stallPipeline(bool stalled)
{
    pipeline_->setGlobalStall(stalled);
}

bool
Simulator::pipelineStalled() const
{
    return pipeline_->globalStalled();
}

void
Simulator::setOsReport(SelectiveSedation::OsReportFn fn)
{
    userOsReport_ = std::move(fn);
    if (!sedation_ && userOsReport_)
        warn("setOsReport: no sedation policy; callback will not fire");
}

void
Simulator::sedateThread(ThreadId tid, bool sedated)
{
    // Threads the OS descheduled stay sedated no matter what the
    // hardware policy decides afterwards.
    if (!sedated) {
        for (ThreadId d : descheduled_) {
            if (d == tid)
                return;
        }
    }
    size_t i = static_cast<size_t>(tid);
    if (i < sedStart_.size()) {
        if (sedated && sedStart_[i] == 0) {
            sedStart_[i] = pipeline_->cycle() + 1;
        } else if (!sedated && sedStart_[i] != 0) {
            histSedation_.observe(static_cast<double>(
                pipeline_->cycle() - (sedStart_[i] - 1)));
            sedStart_[i] = 0;
        }
    }
    pipeline_->setSedated(tid, sedated);
}

void
Simulator::throttleThread(ThreadId tid, int every_k)
{
    // OS-descheduled threads stay fully sedated.
    if (every_k <= 1) {
        for (ThreadId d : descheduled_) {
            if (d == tid)
                return;
        }
    }
    pipeline_->setThreadThrottle(tid, every_k);
}

void
Simulator::throttlePipeline(int every_k)
{
    pipeline_->setThrottle(every_k);
}

int
Simulator::numThreads() const
{
    return config_.smt.numThreads;
}

bool
Simulator::threadActive(ThreadId tid) const
{
    return pipeline_->thread(tid).state == ThreadState::Active;
}

// --- run loop ------------------------------------------------------------

void
Simulator::countEmergencies(const std::vector<Kelvin> &temps)
{
    for (int b = 0; b < numBlocks; ++b) {
        size_t i = static_cast<size_t>(b);
        Kelvin t = temps[i];
        peakTemp_[i] = std::max(peakTemp_[i], t);
        if (!aboveEmergency_[i] && t >= config_.emergencyTemp) {
            aboveEmergency_[i] = true;
            ++emergencies_;
            ++emergenciesPerBlock_[i];
            if (tracer_)
                tracer_->emit(pipeline_->cycle(),
                              TraceKind::EmergencyUp, -1,
                              static_cast<uint8_t>(b), t, emergencies_);
        } else if (aboveEmergency_[i] &&
                   t < config_.emergencyTemp - 0.5) {
            aboveEmergency_[i] = false;
            if (tracer_)
                tracer_->emit(pipeline_->cycle(),
                              TraceKind::EmergencyDown, -1,
                              static_cast<uint8_t>(b), t,
                              emergenciesPerBlock_[i]);
        }
    }
}

void
Simulator::sampleSensors()
{
    auto prof_start = profiling_ ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point{};
    Cycles now = pipeline_->cycle();
    Cycles active = pipeline_->activeCycles();
    Cycles active_delta = active - lastActiveCycles_;
    lastActiveCycles_ = active;

    // Both sample buffers are members: this runs every 20 K cycles and
    // must not churn the heap.
    energy_->windowPowerInto(pipeline_->activity(), *powerSnapshot_,
                             config_.sensorInterval, active_delta,
                             powerBuf_);
    double dt = static_cast<double>(config_.sensorInterval) /
                config_.energy.frequencyHz;
    thermal_->step(powerBuf_, dt);
    energyAccumJ_ += EnergyModel::total(powerBuf_) * dt;

    tempsBuf_.resize(static_cast<size_t>(numBlocks));
    for (int b = 0; b < numBlocks; ++b)
        tempsBuf_[static_cast<size_t>(b)] =
            thermal_->blockTemp(blockFromIndex(b));

    // Emergencies are physical: counted on the true temperatures.
    countEmergencies(tempsBuf_);

    // The episode detector also observes physics, not noisy sensors:
    // Section 3.1's heat/cool structure is a property of the chip.
    episodes_->sample(
        now,
        tempsBuf_[static_cast<size_t>(blockIndex(Block::IntReg))]);

    // Run-health: queue-occupancy distributions sampled with the
    // sensors (fixed-bucket observes, allocation-free).
    histRuu_.observe(static_cast<double>(pipeline_->ruuOccupancy()));
    histLsq_.observe(static_cast<double>(pipeline_->lsqOccupancy()));

    if (config_.sensorNoiseK > 0.0) {
        // Policies observe imperfect sensors (deterministic stream).
        for (Kelvin &t : tempsBuf_)
            t += (sensorNoise_.nextDouble() * 2.0 - 1.0) *
                 config_.sensorNoiseK;
    }

    // What the policies are about to see, for runPrefix()'s divergence
    // test: the observed (noised) maximum, not the physical one.
    lastObservedMax_ = *std::max_element(tempsBuf_.begin(),
                                         tempsBuf_.end());

    for (auto &policy : policies_)
        policy->atSensorSample(now, tempsBuf_, *this);

    if (config_.recordTempTrace &&
        now - lastTraceAt_ >= config_.tempTraceInterval) {
        lastTraceAt_ = now;
        auto [block, hottest] = thermal_->hottest();
        (void)block;
        tempTrace_.push_back(TempSample{
            now, thermal_->blockTemp(Block::IntReg), hottest,
            thermal_->sinkTemp()});
    }

    ++profile_.sensorSamples;
    if (profiling_)
        profile_.thermalSeconds +=
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - prof_start)
                .count();
}

RunResult
Simulator::run()
{
    // Establish normal-operation temperatures (HotSpot warm start) —
    // unless this simulator resumed from a snapshot, whose restored
    // RC-network temperatures already embed the warm start plus the
    // shared prefix's heating.
    if (!resumedFromSnapshot_)
        thermal_->initSteadyState(
            energy_->steadyPower(config_.nominalAccessRates));

    const Cycles quantum = config_.quantumCycles;
    const Cycles sensor = config_.sensorInterval;
    const Cycles monitor = config_.monitorInterval;

    // Countdowns to the next monitor/sensor boundary replace the two
    // divisions the old loop paid every cycle. They track the same
    // absolute boundaries: toMonitor/toSensor are the cycles left until
    // the next multiple of the respective interval. A resumed run
    // starts at a sensor boundary, where both countdowns are full.
    Cycles toMonitor = monitor;
    Cycles toSensor = sensor;

    const Cycles start_cycle = pipeline_->cycle();
    uint64_t stalled_cycles = 0;

    auto wall_start = std::chrono::steady_clock::now();
    while (pipeline_->cycle() < quantum) {
        if (pipeline_->globalStalled()) {
            // Nothing can change until a policy releases the pipeline
            // at a sensor boundary: fast-forward to it. (Stalls begin
            // at sensor samples, so toSensor is the full distance to
            // the next boundary.) Monitor samples are skipped while
            // stalled, as before; re-anchor that countdown to the
            // landing cycle.
            Cycles now = pipeline_->cycle();
            Cycles delta = std::min(toSensor, quantum - now);
            if (profiling_) {
                auto t0 = std::chrono::steady_clock::now();
                pipeline_->advanceStalled(delta);
                profile_.stallSeconds +=
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
            } else {
                pipeline_->advanceStalled(delta);
            }
            stalled_cycles += delta;
            toSensor -= delta;
            Cycles gone = delta % monitor;
            toMonitor = gone < toMonitor ? toMonitor - gone
                                         : toMonitor - gone + monitor;
            if (toSensor == 0) {
                toSensor = sensor;
                sampleSensors();
            }
        } else {
            pipeline_->tick();
            if (--toMonitor == 0) {
                toMonitor = monitor;
                for (auto &policy : policies_)
                    policy->atMonitorSample(pipeline_->cycle(),
                                            pipeline_->activity());
            }
            if (--toSensor == 0) {
                toSensor = sensor;
                sampleSensors();
            }
        }
        if (pipeline_->allHalted())
            break;
    }
    double host_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    // Per-thread fetch-slot shares over the whole quantum: one
    // observation per scheduled thread, of its fraction of all
    // I-cache fetch slots — how far the hammer starved its victims.
    uint64_t fetch_total = 0;
    for (ThreadId t = 0; t < config_.smt.numThreads; ++t)
        fetch_total += pipeline_->activity().count(t, Block::Icache);
    if (fetch_total) {
        for (ThreadId t = 0; t < config_.smt.numThreads; ++t) {
            if (pipeline_->thread(t).state == ThreadState::Idle)
                continue;
            histFetchShare_.observe(
                static_cast<double>(
                    pipeline_->activity().count(t, Block::Icache)) /
                static_cast<double>(fetch_total));
        }
    }

    profile_.totalSeconds += host_seconds;
    profile_.stalledCycles += stalled_cycles;
    profile_.tickedCycles +=
        (pipeline_->cycle() - start_cycle) - stalled_cycles;
    // Whatever the loop did not spend sampling sensors or
    // fast-forwarding stalls was cycle-by-cycle execution.
    profile_.tickSeconds = profile_.totalSeconds -
                           profile_.thermalSeconds -
                           profile_.stallSeconds;

    return collectResults(host_seconds);
}

// --- snapshots -----------------------------------------------------------

void
Simulator::save(SimSnapshot &snap) const
{
    auto t0 = std::chrono::steady_clock::now();
    Cycles now = pipeline_->cycle();
    if (now % config_.sensorInterval != 0)
        fatal("Simulator::save: cycle %llu is not a sensor boundary "
              "(interval %llu)",
              static_cast<unsigned long long>(now),
              static_cast<unsigned long long>(config_.sensorInterval));
    if (pipeline_->globalStalled())
        fatal("Simulator::save: cannot snapshot a stalled pipeline");
    if (pipeline_->allHalted())
        fatal("Simulator::save: cannot snapshot a halted machine (a "
              "restored run would re-test the halt one cycle later)");

    snap.clear();
    StateWriter w(snap.bytes);
    w.putTag(stateTag("HSS1"));

    // Echo the configuration fields a forked cell must share with the
    // prefix, so restoring into an incompatible cell fails loudly.
    // DTM policy parameters are deliberately absent: cells differ
    // there by design, and policy state below the trigger is inert.
    w.put<int32_t>(config_.smt.numThreads);
    w.put<Cycles>(config_.quantumCycles);
    w.put<Cycles>(config_.sensorInterval);
    w.put<Cycles>(config_.monitorInterval);
    w.put<double>(config_.emergencyTemp);
    w.put<double>(config_.sensorNoiseK);
    w.put<uint8_t>(config_.recordTempTrace ? 1 : 0);
    w.put<double>(config_.thermal.timeScale);
    w.put<double>(config_.thermal.convectionR);
    w.put<uint8_t>(config_.thermal.idealSink ? 1 : 0);
    w.put<double>(config_.thermal.dieShrink);
    w.put<uint8_t>(config_.traceEvents ? 1 : 0);
    w.put<uint32_t>(config_.traceCapacity);
    w.put<double>(config_.episodeTriggerTemp);
    w.put<double>(config_.episodeResumeTemp);

    pipeline_->saveState(w);
    thermal_->saveState(w);

    w.putTag(stateTag("SIMS"));
    w.put<Cycles>(lastActiveCycles_);
    w.put<uint64_t>(emergencies_);
    for (uint64_t e : emergenciesPerBlock_)
        w.put<uint64_t>(e);
    for (bool b : aboveEmergency_)
        w.put<uint8_t>(b ? 1 : 0);
    for (Kelvin t : peakTemp_)
        w.put<double>(t);
    w.put<double>(energyAccumJ_);
    for (uint64_t s : sensorNoise_.state())
        w.put<uint64_t>(s);
    w.putVec(tempTrace_);
    w.put<Cycles>(lastTraceAt_);
    powerSnapshot_->saveState(w);
    w.putVec(descheduled_);

    // Sedation usage monitor: the one piece of policy state that
    // evolves unconditionally below the trigger, so forked sedation
    // cells need the prefix's copy transplanted.
    w.put<uint8_t>(sedation_ ? 1 : 0);
    if (sedation_)
        sedation_->monitor().saveState(w);

    // Event tracer: traced forks must replay the prefix's event
    // history so their final traces are bit-identical to cold runs'.
    w.put<uint8_t>(tracer_ ? 1 : 0);
    if (tracer_)
        tracer_->saveState(w);

    // The episode detector always runs now (its phase machine feeds
    // the run-health histograms), so its state is saved
    // unconditionally.
    episodes_->saveState(w);

    // Run-health histograms + sedation bookkeeping: forked cells must
    // resume with the prefix's distribution state so their exported
    // histograms match cold runs' bit for bit.
    w.putTag(stateTag("HMET"));
    histEpisodeHeat_.saveState(w);
    histEpisodeCool_.saveState(w);
    histSedation_.saveState(w);
    histRuu_.saveState(w);
    histLsq_.saveState(w);
    histFetchShare_.saveState(w);
    w.putVec(sedStart_);

    snap.cycle = now;
    ++profile_.snapshotOps;
    if (profiling_)
        profile_.snapshotSeconds +=
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
}

void
Simulator::restore(const SimSnapshot &snap)
{
    auto t0 = std::chrono::steady_clock::now();
    if (snap.empty())
        fatal("Simulator::restore: empty snapshot");
    if (pipeline_->cycle() != 0)
        fatal("Simulator::restore: only a freshly constructed "
              "simulator can restore (this one is at cycle %llu)",
              static_cast<unsigned long long>(pipeline_->cycle()));

    StateReader r(snap.bytes);
    r.expectTag(stateTag("HSS1"), "SimSnapshot header");

    int32_t threads = r.get<int32_t>();
    Cycles quantum = r.get<Cycles>();
    Cycles sensor = r.get<Cycles>();
    Cycles monitor = r.get<Cycles>();
    double emergency = r.get<double>();
    double noise = r.get<double>();
    bool trace = r.get<uint8_t>() != 0;
    double time_scale = r.get<double>();
    double conv_r = r.get<double>();
    bool ideal = r.get<uint8_t>() != 0;
    double shrink = r.get<double>();
    bool etrace = r.get<uint8_t>() != 0;
    uint32_t trace_cap = r.get<uint32_t>();
    double episode_trigger = r.get<double>();
    double episode_resume = r.get<double>();
    if (threads != config_.smt.numThreads ||
        quantum != config_.quantumCycles ||
        sensor != config_.sensorInterval ||
        monitor != config_.monitorInterval ||
        emergency != config_.emergencyTemp ||
        noise != config_.sensorNoiseK ||
        trace != config_.recordTempTrace ||
        time_scale != config_.thermal.timeScale ||
        conv_r != config_.thermal.convectionR ||
        ideal != config_.thermal.idealSink ||
        shrink != config_.thermal.dieShrink ||
        etrace != config_.traceEvents ||
        (etrace && trace_cap != config_.traceCapacity) ||
        episode_trigger != config_.episodeTriggerTemp ||
        episode_resume != config_.episodeResumeTemp)
        fatal("Simulator::restore: snapshot comes from an incompatible "
              "configuration (prefix-invariant fields differ)");

    pipeline_->restoreState(r);
    thermal_->restoreState(r);

    r.expectTag(stateTag("SIMS"), "Simulator accounting");
    lastActiveCycles_ = r.get<Cycles>();
    emergencies_ = r.get<uint64_t>();
    for (uint64_t &e : emergenciesPerBlock_)
        e = r.get<uint64_t>();
    for (size_t i = 0; i < aboveEmergency_.size(); ++i)
        aboveEmergency_[i] = r.get<uint8_t>() != 0;
    for (Kelvin &t : peakTemp_)
        t = r.get<double>();
    energyAccumJ_ = r.get<double>();
    std::array<uint64_t, 4> rng_state;
    for (uint64_t &s : rng_state)
        s = r.get<uint64_t>();
    sensorNoise_.setState(rng_state);
    r.getVec(tempTrace_);
    lastTraceAt_ = r.get<Cycles>();
    powerSnapshot_->restoreState(r);
    r.getVec(descheduled_);

    bool has_monitor = r.get<uint8_t>() != 0;
    if (has_monitor) {
        if (sedation_)
            sedation_->monitor().restoreState(r, pipeline_->activity());
        else
            UsageMonitor::skipState(r);
    } else if (sedation_) {
        fatal("Simulator::restore: this configuration needs "
              "usage-monitor state the snapshot does not carry");
    }

    bool has_tracer = r.get<uint8_t>() != 0;
    if (has_tracer) {
        // The config echo above guarantees tracer_ exists here.
        tracer_->restoreState(r);
        // The shared prefix runs under a (neutralised) sedation policy
        // and therefore records usage-monitor samples. A cold run of a
        // cell without a sedation policy never emits those; drop them
        // so forked and cold traces match (the trace-side twin of
        // UsageMonitor::skipState above).
        if (!sedation_)
            tracer_->dropCategory(TraceCategory::Monitor);
    }
    episodes_->restoreState(r);

    r.expectTag(stateTag("HMET"), "run-health histograms");
    histEpisodeHeat_.restoreState(r);
    histEpisodeCool_.restoreState(r);
    histSedation_.restoreState(r);
    histRuu_.restoreState(r);
    histLsq_.restoreState(r);
    histFetchShare_.restoreState(r);
    r.getVec(sedStart_);
    if (sedStart_.size() != static_cast<size_t>(config_.smt.numThreads))
        fatal("Simulator::restore: sedation bookkeeping for %zu "
              "threads, expected %d",
              sedStart_.size(), config_.smt.numThreads);
    if (!r.done())
        fatal("Simulator::restore: %zu trailing bytes (snapshot layout "
              "mismatch)",
              r.remaining());

    resumedFromSnapshot_ = true;
    ++profile_.snapshotOps;
    if (profiling_)
        profile_.snapshotSeconds +=
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();
}

Cycles
Simulator::runPrefix(Kelvin diverge_temp, Cycles stride_samples,
                     SimSnapshot &out)
{
    if (pipeline_->cycle() != 0)
        fatal("Simulator::runPrefix: needs a freshly constructed "
              "simulator");
    if (stride_samples == 0)
        stride_samples = 1;

    thermal_->initSteadyState(
        energy_->steadyPower(config_.nominalAccessRates));

    const Cycles quantum = config_.quantumCycles;
    const Cycles sensor = config_.sensorInterval;
    const Cycles monitor = config_.monitorInterval;
    Cycles toMonitor = monitor;
    Cycles toSensor = sensor;
    Cycles fork_cycle = 0;
    Cycles samples_since_save = 0;

    // Mirrors run()'s cycle loop exactly (tick, monitor sample, sensor
    // sample, halt test, in that order) so the prefix's history is the
    // same history every cold group member would have produced.
    while (pipeline_->cycle() < quantum) {
        if (pipeline_->globalStalled())
            fatal("Simulator::runPrefix: the pipeline stalled — the "
                  "prefix simulator's DTM thresholds were not "
                  "neutralised");
        pipeline_->tick();
        if (--toMonitor == 0) {
            toMonitor = monitor;
            for (auto &policy : policies_)
                policy->atMonitorSample(pipeline_->cycle(),
                                        pipeline_->activity());
        }
        if (--toSensor == 0) {
            toSensor = sensor;
            sampleSensors();
            // Past this boundary some group member's policy could have
            // observed an actionable temperature; the last snapshot
            // already taken stays the fork point.
            if (lastObservedMax_ >= diverge_temp)
                break;
            // Never hand out a snapshot at or beyond a halt: a cold
            // run breaks here, while a restored run would tick once
            // more before re-testing the halt.
            if (pipeline_->allHalted())
                break;
            ++samples_since_save;
            bool last_boundary = quantum - pipeline_->cycle() < sensor;
            if (samples_since_save >= stride_samples || last_boundary) {
                save(out);
                fork_cycle = pipeline_->cycle();
                samples_since_save = 0;
            }
        } else if (pipeline_->allHalted()) {
            break;
        }
    }
    return fork_cycle;
}

RunResult
Simulator::collectResults(double host_seconds) const
{
    RunResult result;
    result.cycles = pipeline_->cycle();
    result.activeCycles = pipeline_->activeCycles();
    result.hostSeconds = host_seconds;
    result.simCyclesPerHostSec =
        host_seconds > 0.0
            ? static_cast<double>(result.cycles) / host_seconds
            : 0.0;

    const Cache &l1d = pipeline_->mem().l1d();
    double l1d_missrate = l1d.missRate();
    double l2_missrate = pipeline_->mem().l2().missRate();
    uint64_t bp_lookups = pipeline_->bpred().lookups();
    double bp_accuracy =
        bp_lookups ? 1.0 - static_cast<double>(
                               pipeline_->bpred().mispredicts()) /
                               static_cast<double>(bp_lookups)
                   : 1.0;

    for (ThreadId t = 0; t < config_.smt.numThreads; ++t) {
        const ThreadContext &tc = pipeline_->thread(t);
        if (tc.state == ThreadState::Idle)
            continue;
        ThreadResult tr;
        tr.program = tc.program ? tc.program->name() : "";
        tr.committed = tc.committedInsts;
        tr.ipc = result.cycles
                     ? static_cast<double>(tc.committedInsts) /
                           static_cast<double>(result.cycles)
                     : 0.0;
        tr.normalCycles = tc.normalCycles;
        tr.coolingCycles = tc.coolingCycles;
        tr.sedationCycles = tc.sedationCycles;
        tr.intRegAccessRate =
            result.cycles
                ? static_cast<double>(
                      pipeline_->activity().count(t, Block::IntReg)) /
                      static_cast<double>(result.cycles)
                : 0.0;
        tr.l1dMissRate = l1d_missrate;
        tr.l2MissRate = l2_missrate;
        tr.bpredAccuracy = bp_accuracy;
        uint64_t fp = pipeline_->activity().count(t, Block::FpAdd) +
                      pipeline_->activity().count(t, Block::FpMul);
        tr.fpPerInst = tc.committedInsts
                           ? static_cast<double>(fp) /
                                 static_cast<double>(tc.committedInsts)
                           : 0.0;
        result.threads.push_back(std::move(tr));
    }

    result.emergencies = emergencies_;
    result.emergenciesPerBlock = emergenciesPerBlock_;
    result.peakTemp = peakTemp_;
    result.peakTempOverall = 0;
    for (int b = 0; b < numBlocks; ++b) {
        if (peakTemp_[static_cast<size_t>(b)] > result.peakTempOverall) {
            result.peakTempOverall = peakTemp_[static_cast<size_t>(b)];
            result.hottestBlock = blockFromIndex(b);
        }
    }

    if (stopAndGo_) {
        result.stopAndGoTriggers = stopAndGo_->triggers();
        result.coolingStallCycles = stopAndGo_->stallCycles();
    }
    if (sedation_)
        result.sedationEvents = sedation_->events();
    result.descheduledThreads = descheduled_;

    double seconds = static_cast<double>(result.cycles) /
                     config_.energy.frequencyHz;
    result.avgTotalPowerW = seconds > 0 ? energyAccumJ_ / seconds : 0.0;
    result.tempTrace = tempTrace_;
    if (tracer_) {
        tracer_->exportTo(result.traceEvents);
        result.traceEventsDropped = tracer_->dropped();
    }

    result.histograms = {
        {"sim.episode_heat_cycles",
         "heating duration of completed heat episodes (cycles)",
         histEpisodeHeat_},
        {"sim.episode_cool_cycles",
         "cooling duration of completed heat episodes (cycles)",
         histEpisodeCool_},
        {"sim.sedation_span_cycles",
         "length of completed per-thread sedation spans (cycles)",
         histSedation_},
        {"sim.ruu_occupancy",
         "RUU entries in use at each sensor sample", histRuu_},
        {"sim.lsq_occupancy",
         "LSQ entries in use at each sensor sample", histLsq_},
        {"sim.fetch_slot_share",
         "per-thread share of all fetch slots over the quantum",
         histFetchShare_},
    };
    return result;
}

namespace {

/** Helper owning the scalars a dump section registers. */
class StatSection
{
  public:
    explicit StatSection(std::string name) : group_(std::move(name)) {}

    void
    add(const std::string &name, double value, const std::string &desc)
    {
        scalars_.push_back(
            std::make_unique<StatScalar>(name, desc));
        scalars_.back()->set(value);
        group_.add(scalars_.back().get());
    }

    void dump(std::ostream &os) const { group_.dump(os); }

  private:
    StatGroup group_;
    std::vector<std::unique_ptr<StatScalar>> scalars_;
};

} // namespace

void
Simulator::dumpStats(std::ostream &os) const
{
    const Pipeline &pipe = *pipeline_;
    {
        StatSection s("sim");
        s.add("cycles", static_cast<double>(pipe.cycle()),
              "simulated cycles");
        s.add("active_cycles", static_cast<double>(pipe.activeCycles()),
              "cycles the pipeline clock ran");
        s.add("avg_power_w",
              energyAccumJ_ /
                  std::max(1e-12,
                           static_cast<double>(pipe.cycle()) /
                               config_.energy.frequencyHz),
              "average chip power");
        s.add("emergencies", static_cast<double>(emergencies_),
              "358 K crossings");
        s.dump(os);
    }
    for (ThreadId t = 0; t < config_.smt.numThreads; ++t) {
        const ThreadContext &tc = pipe.thread(t);
        if (tc.state == ThreadState::Idle)
            continue;
        StatSection s(strprintf("thread%d", t));
        s.add("program", 0.0, tc.program ? tc.program->name() : "-");
        s.add("committed", static_cast<double>(tc.committedInsts),
              "committed instructions");
        s.add("ipc",
              pipe.cycle() ? static_cast<double>(tc.committedInsts) /
                                 static_cast<double>(pipe.cycle())
                           : 0.0,
              "instructions per cycle");
        s.add("loads", static_cast<double>(tc.committedLoads),
              "committed loads");
        s.add("stores", static_cast<double>(tc.committedStores),
              "committed stores");
        s.add("branches", static_cast<double>(tc.committedBranches),
              "committed control instructions");
        s.add("squashed", static_cast<double>(tc.squashedInsts),
              "squashed instructions");
        s.add("normal_cycles", static_cast<double>(tc.normalCycles),
              "cycles in normal operation");
        s.add("cooling_cycles", static_cast<double>(tc.coolingCycles),
              "cycles stalled by stop-and-go");
        s.add("sedation_cycles",
              static_cast<double>(tc.sedationCycles),
              "cycles sedated");
        s.add("intreg_rate",
              pipe.cycle()
                  ? static_cast<double>(
                        pipe.activity().count(t, Block::IntReg)) /
                        static_cast<double>(pipe.cycle())
                  : 0.0,
              "integer register file accesses per cycle");
        s.dump(os);
    }
    {
        const MemoryHierarchy &mem = pipe.mem();
        StatSection s("mem");
        auto cache = [&](const char *name, const Cache &c) {
            s.add(strprintf("%s.hits", name),
                  static_cast<double>(c.hits()), "cache hits");
            s.add(strprintf("%s.misses", name),
                  static_cast<double>(c.misses()), "cache misses");
            s.add(strprintf("%s.miss_rate", name), c.missRate(),
                  "miss rate");
            s.add(strprintf("%s.writebacks", name),
                  static_cast<double>(c.writebacks()),
                  "dirty evictions");
        };
        cache("l1i", mem.l1i());
        cache("l1d", mem.l1d());
        cache("l2", mem.l2());
        s.add("mem_writebacks",
              static_cast<double>(mem.memWritebacks()),
              "L2 victims written to memory");
        s.dump(os);
    }
    {
        const BranchPredictor &bp = pipe.bpred();
        StatSection s("bpred");
        s.add("lookups", static_cast<double>(bp.lookups()),
              "direction predictions");
        s.add("mispredicts", static_cast<double>(bp.mispredicts()),
              "resolved mispredictions");
        s.add("accuracy",
              bp.lookups()
                  ? 1.0 - static_cast<double>(bp.mispredicts()) /
                              static_cast<double>(bp.lookups())
                  : 0.0,
              "prediction accuracy");
        s.dump(os);
    }
    {
        StatSection s("thermal");
        for (int b = 0; b < numBlocks; ++b) {
            Block block = blockFromIndex(b);
            s.add(strprintf("%s.temp_k", blockName(block)),
                  thermal_->blockTemp(block), "current temperature");
            s.add(strprintf("%s.peak_k", blockName(block)),
                  peakTemp_[static_cast<size_t>(b)],
                  "peak temperature this run");
        }
        s.add("sink_k", thermal_->sinkTemp(), "heat-sink temperature");
        s.dump(os);
    }
    {
        StatSection s("dtm");
        s.add("mode", 0.0, dtmModeName(config_.dtm));
        if (stopAndGo_) {
            s.add("stop_and_go.triggers",
                  static_cast<double>(stopAndGo_->triggers()),
                  "global stalls");
            s.add("stop_and_go.stall_cycles",
                  static_cast<double>(stopAndGo_->stallCycles()),
                  "cycles stalled globally");
        }
        if (sedation_) {
            s.add("sedation.events",
                  static_cast<double>(sedation_->events().size()),
                  "sedation actions");
        }
        s.add("descheduled",
              static_cast<double>(descheduled_.size()),
              "threads removed by the OS extension");
        s.dump(os);
    }
    if (tracer_) {
        StatSection s("trace");
        s.add("events_buffered", static_cast<double>(tracer_->size()),
              "events held in the ring");
        s.add("events_emitted", static_cast<double>(tracer_->emitted()),
              "events ever recorded");
        s.add("events_dropped", static_cast<double>(tracer_->dropped()),
              "events lost to ring overflow");
        s.add("episodes_completed",
              static_cast<double>(episodes_->completed()),
              "heat/cool episodes observed");
        s.dump(os);
    }
}

} // namespace hs
