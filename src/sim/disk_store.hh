/**
 * @file
 * Persistent, content-addressed store of finished RunResults.
 *
 * Every RunSpec already hashes canonically (FNV-1a over the canonical
 * key, which covers every outcome-determining field), so a finished
 * RunResult is a pure function of its hash: any process on any machine
 * that computes the same hash may reuse the stored bytes. The store
 * lays results out as
 *
 *     <dir>/<hh>/<hash16>.hsr
 *
 * where <hash16> is the 16-hex-digit spec hash and <hh> its first two
 * digits (256-way fan-out keeps directories small on big sweeps). Each
 * .hsr file is a self-validating record:
 *
 *     magic "HSR1" | format version | canonical key | payload length
 *     | payload FNV-1a checksum | payload (serialised RunResult)
 *
 * The full canonical key rides along as the config echo: a lookup only
 * hits when the stored key matches byte-for-byte, so a (vanishingly
 * unlikely) hash collision or a stale entry written by a build whose
 * key layout changed is recomputed instead of served wrong. Writes go
 * through a hidden temp file in the same directory plus rename(), so
 * concurrent writers — sibling workers, other hosts on a shared
 * filesystem — can race on one cell and the loser simply overwrites
 * the winner's identical bytes.
 *
 * Every failure path (missing file, short read, bad magic, version or
 * key mismatch, checksum mismatch, unwritable directory) degrades to a
 * miss: the caller logs and recomputes, never crashes, never serves a
 * wrong result.
 */

#ifndef HS_SIM_DISK_STORE_HH
#define HS_SIM_DISK_STORE_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "sim/results.hh"
#include "sim/run_spec.hh"

namespace hs {

/** On-disk result tier (see file comment for the format). */
class DiskResultStore
{
  public:
    /** Outcome of a load() probe. */
    enum class LoadStatus {
        Hit,     ///< stored result returned
        Miss,    ///< no entry for this spec
        Corrupt  ///< entry exists but failed validation (logged)
    };

    /**
     * Open (creating if needed) the store rooted at @p dir. fatal() if
     * the root cannot be created — a mistyped --store path should fail
     * loudly up front, not silently degrade a whole campaign.
     */
    explicit DiskResultStore(std::string dir);

    DiskResultStore(const DiskResultStore &) = delete;
    DiskResultStore &operator=(const DiskResultStore &) = delete;

    /** Probe the store for @p spec 's result. */
    LoadStatus load(const RunSpec &spec, RunResult &out);

    /**
     * Persist @p result under @p spec 's hash (atomic tmp+rename).
     * @return false (after a warn()) if the write failed; the result
     * is still valid in memory, the campaign just loses persistence.
     */
    bool store(const RunSpec &spec, const RunResult &result);

    /** @return true if a (not-yet-validated) entry exists on disk. */
    bool contains(const RunSpec &spec) const;

    /** Absolute or relative store root this instance serves. */
    const std::string &dir() const { return dir_; }

    /** Path an entry for @p spec lives at (tests / tooling). */
    std::string entryPath(const RunSpec &spec) const;

    uint64_t hits() const { return hits_.load(); }
    uint64_t misses() const { return misses_.load(); }
    /** Entries that existed but failed validation (recomputed). */
    uint64_t corrupt() const { return corrupt_.load(); }
    uint64_t writes() const { return writes_.load(); }

  private:
    std::string dir_;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> corrupt_{0};
    std::atomic<uint64_t> writes_{0};
};

/**
 * Process-wide disk tier configured by the HS_STORE environment
 * variable: the store rooted there on first call (shared by every
 * later caller), or nullptr when HS_STORE is unset/empty.
 */
DiskResultStore *envDiskStore();

/**
 * Structural validation of one .hsr record file — everything load()
 * checks except the config echo, which needs the requesting spec
 * (magic, version, internal lengths vs. file size, trailing bytes,
 * payload checksum). @return false with @p why filled when the
 * record could not have been produced by a completed store() call.
 */
bool validateRecordFile(const std::string &path, std::string &why);

/** What pruneStore() may delete and how loudly. */
struct PruneOptions
{
    /** Delete records whose mtime is more than this many days old.
     *  Negative disables the age rule (corrupt sweep only). */
    double olderThanDays = -1.0;
    /** Report what would be deleted without touching anything. */
    bool dryRun = false;
    /** Also delete records that fail validateRecordFile() — they can
     *  only ever cost a recompute — regardless of age. */
    bool sweepCorrupt = false;
};

/** Outcome of one pruneStore() sweep. */
struct PruneStats
{
    uint64_t scanned = 0;    ///< .hsr records examined
    uint64_t pruned = 0;     ///< records deleted (dry run: would be)
    uint64_t corrupt = 0;    ///< of those, dropped by the corrupt sweep
    uint64_t kept = 0;       ///< records retained
    uint64_t skipped = 0;    ///< non-.hsr entries refused (never deleted)
    uint64_t bytesFreed = 0; ///< total size of pruned records
};

/**
 * Garbage-collect the store rooted at @p dir (the `hs_store prune`
 * subcommand). Only regular `*.hsr` files inside the two-hex-digit
 * bucket directories are ever candidates: manifests, temp files from
 * interrupted writers, and anything else a user may have put in the
 * tree are counted as skipped and refused. fatal() if @p dir is not
 * an existing store root.
 */
PruneStats pruneStore(const std::string &dir, const PruneOptions &opts);

} // namespace hs

#endif // HS_SIM_DISK_STORE_HH
