/**
 * @file
 * Result records for one simulated OS quantum, plus small table
 * formatting helpers shared by the bench harnesses.
 */

#ifndef HS_SIM_RESULTS_HH
#define HS_SIM_RESULTS_HH

#include <array>
#include <ostream>
#include <string>
#include <vector>

#include "common/blocks.hh"
#include "common/types.hh"
#include "core/sedation.hh"
#include "trace/event.hh"
#include "trace/metrics.hh"

namespace hs {

/**
 * One named run-health histogram exported by a run (episode
 * durations, sedation spans, queue occupancy, ...). Tools merge these
 * into the process-wide MetricsRegistry per cell, in submission order.
 */
struct NamedHistogram
{
    std::string name;
    std::string desc;
    Histogram hist;

    bool operator==(const NamedHistogram &) const = default;
};

/** Per-thread outcome of a run. */
struct ThreadResult
{
    std::string program;
    int core = 0; ///< core the context lives on (0 on single-core dies)
    uint64_t committed = 0;
    double ipc = 0.0;
    uint64_t normalCycles = 0;
    uint64_t coolingCycles = 0;   ///< global stop-and-go stalls
    uint64_t sedationCycles = 0;  ///< thread-selective stalls
    double intRegAccessRate = 0.0; ///< accesses/cycle, whole quantum
    double l1dMissRate = 0.0;      ///< (shared cache; whole-run rate)
    double l2MissRate = 0.0;       ///< (shared cache; whole-run rate)
    double bpredAccuracy = 1.0;    ///< (shared predictor; whole-run)
    double fpPerInst = 0.0;        ///< FP-unit accesses per committed

    bool operator==(const ThreadResult &) const = default;
};

/**
 * Per-core outcome of a multi-core run. The legacy top-level RunResult
 * fields aggregate across cores (summed counters, per-block maxima);
 * this record keeps each core's own view. Single-core runs leave
 * RunResult::cores empty so their outputs keep their historical bytes.
 */
struct CoreResult
{
    int core = 0;
    Cycles activeCycles = 0;
    uint64_t emergencies = 0;
    std::array<uint64_t, numBlocks> emergenciesPerBlock{};
    std::array<Kelvin, numBlocks> peakTemp{};
    Kelvin peakTempOverall = 0;
    Block hottestBlock = Block::IntReg;
    uint64_t stopAndGoTriggers = 0;
    Cycles coolingStallCycles = 0;

    bool operator==(const CoreResult &) const = default;
};

/** One downsampled temperature trace point. */
struct TempSample
{
    Cycles cycle = 0;
    Kelvin intRegTemp = 0;
    Kelvin hottestTemp = 0;
    Kelvin sinkTemp = 0;

    bool operator==(const TempSample &) const = default;
};

/** Outcome of one simulated quantum. */
struct RunResult
{
    Cycles cycles = 0;
    Cycles activeCycles = 0;
    std::vector<ThreadResult> threads;

    /** Topology width of the run; per-core views are populated only
     *  when more than one core shares the die. */
    int numCores = 1;
    std::vector<CoreResult> cores;

    uint64_t emergencies = 0; ///< upward crossings of the emergency temp
    std::array<uint64_t, numBlocks> emergenciesPerBlock{};
    std::array<Kelvin, numBlocks> peakTemp{};
    Kelvin peakTempOverall = 0;
    Block hottestBlock = Block::IntReg;

    uint64_t stopAndGoTriggers = 0;
    Cycles coolingStallCycles = 0;
    std::vector<SedationEvent> sedationEvents;
    /** Threads the OS descheduled as repeat offenders (extension). */
    std::vector<ThreadId> descheduledThreads;

    double avgTotalPowerW = 0.0;
    std::vector<TempSample> tempTrace;

    /** Structured event trace (empty unless SimConfig::traceEvents).
     *  Participates in operator==, so the bit-identity tests also pin
     *  down the exact event sequence of prefix-shared runs. */
    std::vector<TraceEvent> traceEvents;
    uint64_t traceEventsDropped = 0; ///< ring-overflow losses

    /**
     * Simulation throughput: host wall-clock seconds spent inside
     * Simulator::run() and simulated cycles per host second. These are
     * measurements of the machine, not of the simulated system — they
     * vary run to run and are therefore excluded from operator==.
     */
    double hostSeconds = 0.0;
    double simCyclesPerHostSec = 0.0;

    /**
     * Run-health histograms (observability, not outcome): excluded
     * from operator== like the host-throughput fields, so the
     * bit-identity contract on the simulated result is untouched.
     * Their own prefix-fork/cold identity is covered separately by
     * tests/test_histograms.cc.
     */
    std::vector<NamedHistogram> histograms;

    /** Fraction helpers for the Figure 6 breakdown. */
    double normalFraction(size_t thread) const;
    double coolingFraction(size_t thread) const;
    double sedationFraction(size_t thread) const;

    /**
     * Field-for-field (bit-identical doubles) comparison of the
     * simulated outcome. The host-throughput fields (hostSeconds,
     * simCyclesPerHostSec) are deliberately NOT compared: two runs of
     * the same spec are "the same result" regardless of how fast the
     * host executed them.
     */
    bool operator==(const RunResult &o) const;
};

/** Degradation of @p measured relative to @p base, in percent. */
double degradationPct(double base, double measured);

/**
 * Emit @p r as a JSON object (17-significant-digit doubles, so values
 * round-trip bit-identically). @p indent is the opening indentation
 * level in two-space steps; the temperature trace is included only
 * when non-empty.
 */
void writeResultJson(std::ostream &os, const RunResult &r, int indent = 0);

/** Column names of the per-thread CSV emission (no trailing comma). */
std::string resultCsvHeader();

/** One CSV row per thread of @p r, each line prefixed by @p prefix. */
void writeResultCsv(std::ostream &os, const RunResult &r,
                    const std::string &prefix = "");

/** Minimal fixed-width table printer for bench output. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::ostream &os) : os_(os) {}

    /** Set column headers; widths derive from header length + 2. */
    void header(const std::vector<std::string> &columns);

    /** Print one row (converted with to_string-style formatting). */
    void row(const std::vector<std::string> &cells);

    /** Format a double with @p digits decimals. */
    static std::string num(double v, int digits = 2);

  private:
    std::ostream &os_;
    std::vector<size_t> widths_;
};

} // namespace hs

#endif // HS_SIM_RESULTS_HH
