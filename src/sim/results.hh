/**
 * @file
 * Result records for one simulated OS quantum, plus small table
 * formatting helpers shared by the bench harnesses.
 */

#ifndef HS_SIM_RESULTS_HH
#define HS_SIM_RESULTS_HH

#include <array>
#include <ostream>
#include <string>
#include <vector>

#include "common/blocks.hh"
#include "common/types.hh"
#include "core/sedation.hh"

namespace hs {

/** Per-thread outcome of a run. */
struct ThreadResult
{
    std::string program;
    uint64_t committed = 0;
    double ipc = 0.0;
    uint64_t normalCycles = 0;
    uint64_t coolingCycles = 0;   ///< global stop-and-go stalls
    uint64_t sedationCycles = 0;  ///< thread-selective stalls
    double intRegAccessRate = 0.0; ///< accesses/cycle, whole quantum
    double l1dMissRate = 0.0;      ///< (shared cache; whole-run rate)
};

/** One downsampled temperature trace point. */
struct TempSample
{
    Cycles cycle = 0;
    Kelvin intRegTemp = 0;
    Kelvin hottestTemp = 0;
    Kelvin sinkTemp = 0;
};

/** Outcome of one simulated quantum. */
struct RunResult
{
    Cycles cycles = 0;
    Cycles activeCycles = 0;
    std::vector<ThreadResult> threads;

    uint64_t emergencies = 0; ///< upward crossings of the emergency temp
    std::array<uint64_t, numBlocks> emergenciesPerBlock{};
    std::array<Kelvin, numBlocks> peakTemp{};
    Kelvin peakTempOverall = 0;
    Block hottestBlock = Block::IntReg;

    uint64_t stopAndGoTriggers = 0;
    Cycles coolingStallCycles = 0;
    std::vector<SedationEvent> sedationEvents;
    /** Threads the OS descheduled as repeat offenders (extension). */
    std::vector<ThreadId> descheduledThreads;

    double avgTotalPowerW = 0.0;
    std::vector<TempSample> tempTrace;

    /** Fraction helpers for the Figure 6 breakdown. */
    double normalFraction(size_t thread) const;
    double coolingFraction(size_t thread) const;
    double sedationFraction(size_t thread) const;
};

/** Minimal fixed-width table printer for bench output. */
class TablePrinter
{
  public:
    explicit TablePrinter(std::ostream &os) : os_(os) {}

    /** Set column headers; widths derive from header length + 2. */
    void header(const std::vector<std::string> &columns);

    /** Print one row (converted with to_string-style formatting). */
    void row(const std::vector<std::string> &cells);

    /** Format a double with @p digits decimals. */
    static std::string num(double v, int digits = 2);

  private:
    std::ostream &os_;
    std::vector<size_t> widths_;
};

} // namespace hs

#endif // HS_SIM_RESULTS_HH
