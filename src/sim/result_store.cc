#include "sim/result_store.hh"

#include "sim/disk_store.hh"

namespace hs {

ResultStore &
ResultStore::global()
{
    static ResultStore store;
    return store;
}

RunResult
ResultStore::getOrCompute(const RunSpec &spec,
                          const std::function<RunResult()> &compute,
                          Source *source)
{
    const std::string key = spec.canonicalKey();

    std::promise<RunResult> promise;
    std::shared_future<RunResult> fut;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = cache_.find(key);
        if (it != cache_.end()) {
            hits_.fetch_add(1);
            fut = it->second;
        } else {
            misses_.fetch_add(1);
            fut = promise.get_future().share();
            cache_.emplace(key, fut);
            owner = true;
        }
    }
    if (!owner) {
        // Blocks only while another worker's identical run is still
        // in flight; completed cells return immediately.
        if (source)
            *source = Source::Memory;
        return fut.get();
    }

    // The owner consults the persistent tier before simulating; a
    // validated disk record fills the in-memory promise exactly as a
    // fresh computation would, so in-flight waiters are oblivious to
    // where the bytes came from.
    if (disk_) {
        RunResult stored;
        if (disk_->load(spec, stored) ==
            DiskResultStore::LoadStatus::Hit) {
            promise.set_value(stored);
            if (source)
                *source = Source::Disk;
            return stored;
        }
    }

    try {
        RunResult r = compute();
        promise.set_value(r);
        if (disk_)
            disk_->store(spec, r);
        if (source)
            *source = Source::Computed;
        return r;
    } catch (...) {
        promise.set_exception(std::current_exception());
        std::lock_guard<std::mutex> lock(mu_);
        cache_.erase(key);
        throw;
    }
}

bool
ResultStore::contains(const RunSpec &spec) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.count(spec.canonicalKey()) > 0;
}

bool
ResultStore::available(const RunSpec &spec) const
{
    return contains(spec) || (disk_ && disk_->contains(spec));
}

void
ResultStore::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    cache_.clear();
    hits_.store(0);
    misses_.store(0);
}

size_t
ResultStore::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
}

} // namespace hs
