/**
 * @file
 * Process-wide memoising store for experiment results.
 *
 * Many of the paper's figures share matrix cells (every harness needs
 * the solo baselines, the default-threshold sedation run appears in
 * three sweeps, ...). The store keys finished RunResults by the
 * RunSpec's canonical key so each distinct cell is simulated exactly
 * once per process, no matter how many tables ask for it.
 *
 * The store is safe for concurrent use by the ParallelRunner's workers
 * and deduplicates *in-flight* computations: if two workers ask for the
 * same key simultaneously, one simulates and the other blocks on the
 * shared future instead of duplicating the work.
 *
 * An optional persistent tier (sim/disk_store.hh) can be attached:
 * lookups then read through to disk before simulating, and freshly
 * computed results write through, so a rerun of a finished campaign —
 * in a new process, on another machine sharing the store directory —
 * serves every cell from disk without simulating anything.
 */

#ifndef HS_SIM_RESULT_STORE_HH
#define HS_SIM_RESULT_STORE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sim/results.hh"
#include "sim/run_spec.hh"

namespace hs {

class DiskResultStore;

class ResultStore
{
  public:
    /** Where a getOrCompute() result actually came from. */
    enum class Source : uint8_t {
        Computed, ///< simulated by @p compute (possibly remotely)
        Memory,   ///< served from this process's cache
        Disk,     ///< served from the attached persistent tier
    };

    ResultStore() = default;
    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /** The process-wide store shared by the bench harnesses. */
    static ResultStore &global();

    /**
     * Attach (or detach with nullptr) a persistent read/write-through
     * tier. Not owned; must outlive the lookups. Attach before any
     * concurrent use.
     */
    void attachDisk(DiskResultStore *disk) { disk_ = disk; }
    DiskResultStore *disk() const { return disk_; }

    /**
     * Return the cached result for @p spec, computing it with
     * @p compute on a miss. Concurrent callers with the same key share
     * one computation. When @p source is non-null it reports which
     * tier satisfied the lookup (in-flight waiters see Memory).
     */
    RunResult getOrCompute(const RunSpec &spec,
                           const std::function<RunResult()> &compute,
                           Source *source = nullptr);

    /** @return true if @p spec 's result is already cached in memory. */
    bool contains(const RunSpec &spec) const;

    /** @return true if any tier (memory or disk) already has @p spec —
     *  i.e. asking for it will not simulate. */
    bool available(const RunSpec &spec) const;

    /** Drop every cached result (tests). */
    void clear();

    /** Number of lookups served from the cache. */
    uint64_t hits() const { return hits_.load(); }
    /** Number of lookups that had to simulate. */
    uint64_t misses() const { return misses_.load(); }
    /** Number of distinct cells stored. */
    size_t size() const;

  private:
    mutable std::mutex mu_;
    std::unordered_map<std::string, std::shared_future<RunResult>> cache_;
    DiskResultStore *disk_ = nullptr;
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
};

} // namespace hs

#endif // HS_SIM_RESULT_STORE_HH
