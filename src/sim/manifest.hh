/**
 * @file
 * Campaign manifest: the persisted identity of one experiment matrix.
 *
 * A campaign is a matrix of RunSpecs plus the store that accumulates
 * their results. The manifest, written to `<store>/manifest.hsm`
 * before any cell simulates, records which cells the campaign is made
 * of (their spec hashes, in submission order) so that an interrupted
 * coordinator — killed mid-sweep, rebooted, OOMed — can be restarted
 * with the same command line and resume: the store's read-through tier
 * already skips every finished cell, and the manifest lets the restart
 * prove it is resuming *this* campaign (and report how much of it is
 * already done) rather than silently mixing two different sweeps in
 * one store.
 *
 * On-disk format (all fields little-endian, fixed width):
 *
 *     magic "HSM1" | format version | matrix hash | cell count
 *     | cell spec hashes... | FNV-1a checksum of the hash array
 *
 * The matrix hash is FNV-1a chained over the cell hashes in order, so
 * it pins both membership and submission order. Writes are atomic
 * (hidden temp file + rename, like .hsr records); every load failure
 * — truncation, bad magic, version skew, checksum mismatch — degrades
 * to "no manifest": the campaign starts fresh and overwrites it,
 * never crashes, never trusts corrupt bytes.
 */

#ifndef HS_SIM_MANIFEST_HH
#define HS_SIM_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/run_spec.hh"

namespace hs {

class DiskResultStore;

/** In-memory image of a manifest.hsm file. */
struct CampaignManifest
{
    uint64_t matrixHash = 0;     ///< FNV-1a over cells[], in order
    std::vector<uint64_t> cells; ///< spec hash per cell, submission order
};

/** Combined hash pinning a matrix's membership and order. */
uint64_t matrixHash(const std::vector<RunSpec> &specs);

/** Build the manifest describing @p specs. */
CampaignManifest makeManifest(const std::vector<RunSpec> &specs);

/**
 * Atomically write @p m to @p path (hidden temp + rename). @return
 * false after a warn() if the write failed — the campaign still runs,
 * it just cannot prove its identity to a future resume.
 */
bool saveManifest(const std::string &path, const CampaignManifest &m);

/** Outcome of a loadManifest() probe. */
enum class ManifestStatus {
    None,    ///< no manifest file at the path
    Ok,      ///< manifest loaded and validated
    Corrupt  ///< file exists but failed validation (logged)
};

/** Load and validate the manifest at @p path into @p out. */
ManifestStatus loadManifest(const std::string &path,
                            CampaignManifest &out);

/** What prepareCampaign() learned about a matrix vs. its store. */
struct CampaignResume
{
    bool resumed = false;     ///< a matching manifest already existed
    uint64_t totalCells = 0;  ///< matrix size
    uint64_t storedCells = 0; ///< cells the store already holds
};

/** Path of the manifest inside a store rooted at @p dir. */
std::string manifestPath(const std::string &dir);

/**
 * Open-or-start the campaign for @p specs against @p store: load any
 * existing manifest, decide whether this is a resume (same matrix
 * hash) or a fresh/replacing campaign, count the cells the store
 * already holds, and (re)write the manifest atomically. Corrupt or
 * mismatched manifests are replaced with a warn(), never fatal — a
 * store is allowed to serve many different campaigns over its life.
 */
CampaignResume prepareCampaign(DiskResultStore &store,
                               const std::vector<RunSpec> &specs);

} // namespace hs

#endif // HS_SIM_MANIFEST_HH
