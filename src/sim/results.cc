#include "sim/results.hh"

#include <iomanip>
#include <sstream>

#include "common/log.hh"

namespace hs {

namespace {

double
fraction(uint64_t part, uint64_t whole)
{
    return whole ? static_cast<double>(part) / static_cast<double>(whole)
                 : 0.0;
}

} // namespace

double
RunResult::normalFraction(size_t thread) const
{
    const ThreadResult &t = threads.at(thread);
    return fraction(t.normalCycles, cycles);
}

double
RunResult::coolingFraction(size_t thread) const
{
    const ThreadResult &t = threads.at(thread);
    return fraction(t.coolingCycles, cycles);
}

double
RunResult::sedationFraction(size_t thread) const
{
    const ThreadResult &t = threads.at(thread);
    return fraction(t.sedationCycles, cycles);
}

void
TablePrinter::header(const std::vector<std::string> &columns)
{
    widths_.clear();
    for (const std::string &c : columns)
        widths_.push_back(c.size() + 2);
    row(columns);
    std::string rule;
    for (size_t w : widths_)
        rule += std::string(w, '-') + " ";
    os_ << rule << "\n";
}

void
TablePrinter::row(const std::vector<std::string> &cells)
{
    for (size_t i = 0; i < cells.size(); ++i) {
        size_t w = i < widths_.size() ? widths_[i] : cells[i].size() + 2;
        os_ << std::left << std::setw(static_cast<int>(w)) << cells[i]
            << " ";
    }
    os_ << "\n";
}

std::string
TablePrinter::num(double v, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << v;
    return os.str();
}

} // namespace hs
