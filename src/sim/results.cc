#include "sim/results.hh"

#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/log.hh"

namespace hs {

namespace {

double
fraction(uint64_t part, uint64_t whole)
{
    return whole ? static_cast<double>(part) / static_cast<double>(whole)
                 : 0.0;
}

} // namespace

double
RunResult::normalFraction(size_t thread) const
{
    const ThreadResult &t = threads.at(thread);
    return fraction(t.normalCycles, cycles);
}

double
RunResult::coolingFraction(size_t thread) const
{
    const ThreadResult &t = threads.at(thread);
    return fraction(t.coolingCycles, cycles);
}

double
RunResult::sedationFraction(size_t thread) const
{
    const ThreadResult &t = threads.at(thread);
    return fraction(t.sedationCycles, cycles);
}

bool
RunResult::operator==(const RunResult &o) const
{
    // hostSeconds / simCyclesPerHostSec intentionally omitted: wall
    // time is a property of the host, not of the simulated quantum.
    return cycles == o.cycles && activeCycles == o.activeCycles &&
           threads == o.threads && numCores == o.numCores &&
           cores == o.cores && emergencies == o.emergencies &&
           emergenciesPerBlock == o.emergenciesPerBlock &&
           peakTemp == o.peakTemp &&
           peakTempOverall == o.peakTempOverall &&
           hottestBlock == o.hottestBlock &&
           stopAndGoTriggers == o.stopAndGoTriggers &&
           coolingStallCycles == o.coolingStallCycles &&
           sedationEvents == o.sedationEvents &&
           descheduledThreads == o.descheduledThreads &&
           avgTotalPowerW == o.avgTotalPowerW &&
           tempTrace == o.tempTrace && traceEvents == o.traceEvents &&
           traceEventsDropped == o.traceEventsDropped;
}

void
TablePrinter::header(const std::vector<std::string> &columns)
{
    widths_.clear();
    for (const std::string &c : columns)
        widths_.push_back(c.size() + 2);
    row(columns);
    std::string rule;
    for (size_t w : widths_)
        rule += std::string(w, '-') + " ";
    os_ << rule << "\n";
}

void
TablePrinter::row(const std::vector<std::string> &cells)
{
    for (size_t i = 0; i < cells.size(); ++i) {
        size_t w = i < widths_.size() ? widths_[i] : cells[i].size() + 2;
        os_ << std::left << std::setw(static_cast<int>(w)) << cells[i]
            << " ";
    }
    os_ << "\n";
}

std::string
TablePrinter::num(double v, int digits)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(digits) << v;
    return os.str();
}

double
degradationPct(double base, double measured)
{
    if (base <= 0)
        return 0.0;
    return (1.0 - measured / base) * 100.0;
}

namespace {

/** %.17g: doubles survive a text round trip bit-identically. */
std::string
jnum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jstr(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

} // namespace

void
writeResultJson(std::ostream &os, const RunResult &r, int indent)
{
    const std::string in0(static_cast<size_t>(indent) * 2, ' ');
    const std::string in1 = in0 + "  ";
    const std::string in2 = in1 + "  ";

    os << in0 << "{\n";
    os << in1 << "\"cycles\": " << r.cycles << ",\n";
    os << in1 << "\"active_cycles\": " << r.activeCycles << ",\n";
    os << in1 << "\"emergencies\": " << r.emergencies << ",\n";
    os << in1 << "\"peak_temp_K\": " << jnum(r.peakTempOverall) << ",\n";
    os << in1 << "\"hottest_block\": " << jstr(blockName(r.hottestBlock))
       << ",\n";
    os << in1 << "\"stop_and_go_triggers\": " << r.stopAndGoTriggers
       << ",\n";
    os << in1 << "\"cooling_stall_cycles\": " << r.coolingStallCycles
       << ",\n";
    os << in1 << "\"avg_power_W\": " << jnum(r.avgTotalPowerW) << ",\n";
    os << in1 << "\"host_seconds\": " << jnum(r.hostSeconds) << ",\n";
    os << in1 << "\"sim_cycles_per_host_sec\": "
       << jnum(r.simCyclesPerHostSec) << ",\n";

    os << in1 << "\"threads\": [\n";
    for (size_t t = 0; t < r.threads.size(); ++t) {
        const ThreadResult &tr = r.threads[t];
        os << in2 << "{\"thread\": " << t;
        // The core axis appears only on multi-core runs, so
        // single-core JSON keeps its historical bytes.
        if (r.numCores > 1)
            os << ", \"core\": " << tr.core;
        os << ", \"program\": "
           << jstr(tr.program) << ", \"committed\": " << tr.committed
           << ", \"ipc\": " << jnum(tr.ipc)
           << ", \"normal_cycles\": " << tr.normalCycles
           << ", \"cooling_cycles\": " << tr.coolingCycles
           << ", \"sedation_cycles\": " << tr.sedationCycles
           << ", \"intreg_per_cycle\": " << jnum(tr.intRegAccessRate)
           << ", \"l1d_miss_rate\": " << jnum(tr.l1dMissRate)
           << ", \"l2_miss_rate\": " << jnum(tr.l2MissRate)
           << ", \"bpred_accuracy\": " << jnum(tr.bpredAccuracy)
           << ", \"fp_per_inst\": " << jnum(tr.fpPerInst) << "}"
           << (t + 1 < r.threads.size() ? "," : "") << "\n";
    }
    os << in1 << "],\n";

    os << in1 << "\"sedation_events\": [\n";
    for (size_t i = 0; i < r.sedationEvents.size(); ++i) {
        const SedationEvent &e = r.sedationEvents[i];
        os << in2 << "{\"cycle\": " << e.cycle << ", \"resource\": "
           << jstr(blockName(e.resource)) << ", \"thread\": "
           << e.thread << ", \"weighted_avg\": " << jnum(e.weightedAvg)
           << "}" << (i + 1 < r.sedationEvents.size() ? "," : "")
           << "\n";
    }
    os << in1 << "],\n";

    os << in1 << "\"descheduled_threads\": [";
    for (size_t i = 0; i < r.descheduledThreads.size(); ++i)
        os << (i ? ", " : "") << r.descheduledThreads[i];
    os << "],\n";

    // Per-block peaks: hs_report's floorplan heatmap needs the whole
    // thermal map, not just the hottest block.
    os << in1 << "\"peak_per_block_K\": {";
    for (int b = 0; b < numBlocks; ++b)
        os << (b ? ", " : "") << jstr(blockName(blockFromIndex(b)))
           << ": " << jnum(r.peakTemp[static_cast<size_t>(b)]);
    os << "}";

    // Per-core views: present only on multi-core runs (the aggregate
    // fields above fold the cores together).
    if (!r.cores.empty()) {
        os << ",\n" << in1 << "\"cores\": [\n";
        for (size_t c = 0; c < r.cores.size(); ++c) {
            const CoreResult &cr = r.cores[c];
            os << in2 << "{\"core\": " << cr.core
               << ", \"active_cycles\": " << cr.activeCycles
               << ", \"emergencies\": " << cr.emergencies
               << ", \"peak_temp_K\": " << jnum(cr.peakTempOverall)
               << ", \"hottest_block\": "
               << jstr(blockName(cr.hottestBlock))
               << ", \"stop_and_go_triggers\": " << cr.stopAndGoTriggers
               << ", \"cooling_stall_cycles\": " << cr.coolingStallCycles
               << ", \"peak_per_block_K\": {";
            for (int b = 0; b < numBlocks; ++b)
                os << (b ? ", " : "")
                   << jstr(blockName(blockFromIndex(b))) << ": "
                   << jnum(cr.peakTemp[static_cast<size_t>(b)]);
            os << "}}" << (c + 1 < r.cores.size() ? "," : "") << "\n";
        }
        os << in1 << "]";
    }

    if (!r.histograms.empty()) {
        os << ",\n" << in1 << "\"histograms\": {\n";
        for (size_t i = 0; i < r.histograms.size(); ++i) {
            os << in2 << jstr(r.histograms[i].name) << ": ";
            r.histograms[i].hist.writeJson(os);
            os << (i + 1 < r.histograms.size() ? "," : "") << "\n";
        }
        os << in1 << "}";
    }

    if (!r.tempTrace.empty()) {
        os << ",\n" << in1 << "\"temp_trace\": [\n";
        for (size_t i = 0; i < r.tempTrace.size(); ++i) {
            const TempSample &s = r.tempTrace[i];
            os << in2 << "{\"cycle\": " << s.cycle << ", \"intreg_K\": "
               << jnum(s.intRegTemp) << ", \"hottest_K\": "
               << jnum(s.hottestTemp) << ", \"sink_K\": "
               << jnum(s.sinkTemp) << "}"
               << (i + 1 < r.tempTrace.size() ? "," : "") << "\n";
        }
        os << in1 << "]";
    }

    // Event-trace summary: only present for traced runs, so untraced
    // JSON output stays byte-identical to what it always was.
    if (!r.traceEvents.empty() || r.traceEventsDropped) {
        os << ",\n"
           << in1 << "\"trace_events\": " << r.traceEvents.size()
           << ",\n"
           << in1 << "\"trace_events_dropped\": "
           << r.traceEventsDropped;
    }
    os << "\n" << in0 << "}";
}

std::string
resultCsvHeader()
{
    return "thread,program,committed,ipc,normal_cycles,cooling_cycles,"
           "sedation_cycles,intreg_per_cycle,l1d_miss_rate,"
           "l2_miss_rate,bpred_accuracy,fp_per_inst,cycles,"
           "emergencies,peak_temp_K,hottest_block,avg_power_W,"
           "host_seconds,sim_cycles_per_host_sec";
}

void
writeResultCsv(std::ostream &os, const RunResult &r,
               const std::string &prefix)
{
    for (size_t t = 0; t < r.threads.size(); ++t) {
        const ThreadResult &tr = r.threads[t];
        os << prefix << t << "," << tr.program << "," << tr.committed
           << "," << jnum(tr.ipc) << "," << tr.normalCycles << ","
           << tr.coolingCycles << "," << tr.sedationCycles << ","
           << jnum(tr.intRegAccessRate) << "," << jnum(tr.l1dMissRate)
           << "," << jnum(tr.l2MissRate) << ","
           << jnum(tr.bpredAccuracy) << "," << jnum(tr.fpPerInst) << ","
           << r.cycles << "," << r.emergencies << ","
           << jnum(r.peakTempOverall) << "," << blockName(r.hottestBlock)
           << "," << jnum(r.avgTotalPowerW) << ","
           << jnum(r.hostSeconds) << ","
           << jnum(r.simCyclesPerHostSec) << "\n";
    }
}

} // namespace hs
