/**
 * @file
 * Binary serialisation of RunSpecs and RunResults.
 *
 * The distributed experiment service moves finished results between
 * processes and machines: the on-disk content-addressed result store
 * persists them across runs, and the TCP worker protocol streams them
 * back to the coordinator. Both reuse the StateBuffer machinery the
 * snapshot subsystem already proves out — a tagged, length-prefixed
 * concatenation of POD fields — extended with length-prefixed strings
 * for the non-POD members (program names, histogram names, assembly
 * text).
 *
 * Doubles are copied bit-for-bit, so a round-tripped RunResult
 * compares equal (operator==) to the original and re-emits
 * byte-identical JSON/CSV artifacts; that is what makes warm
 * store-backed reruns indistinguishable from the cold run that
 * populated the store.
 *
 * kResultFormatVersion names the layout. Both the .hsr file header and
 * the remote handshake's config echo carry it, so a stale store entry
 * or a mismatched worker build is rejected before any payload is
 * parsed.
 */

#ifndef HS_SIM_SERIALIZE_HH
#define HS_SIM_SERIALIZE_HH

#include <cstdint>
#include <vector>

#include "common/state_buffer.hh"
#include "sim/results.hh"
#include "sim/run_spec.hh"

namespace hs {

/** Layout version of the serialised RunSpec/RunResult records. Bump on
 *  any field change; readers reject other versions. */
constexpr uint32_t kResultFormatVersion = 1;

/** FNV-1a 64-bit over an arbitrary byte range (store checksums). */
uint64_t fnv1a64(const uint8_t *data, size_t size,
                 uint64_t seed = 0xcbf29ce484222325ull);

/** Append @p spec to @p w ("SPEC"-tagged section). */
void saveRunSpec(StateWriter &w, const RunSpec &spec);

/** Read a RunSpec written by saveRunSpec(). */
RunSpec loadRunSpec(StateReader &r);

/** Append @p result to @p w ("RRES"-tagged section). */
void saveRunResult(StateWriter &w, const RunResult &result);

/** Read a RunResult written by saveRunResult(). */
RunResult loadRunResult(StateReader &r);

/** Convenience: one whole RunResult as a standalone byte buffer. */
std::vector<uint8_t> encodeRunResult(const RunResult &result);

/** Inverse of encodeRunResult(). fatal() on malformed input — callers
 *  that must survive corruption (the disk store) verify a checksum
 *  first. */
RunResult decodeRunResult(const std::vector<uint8_t> &bytes);

} // namespace hs

#endif // HS_SIM_SERIALIZE_HH
