/**
 * @file
 * Heat/cool episode analysis over temperature traces.
 *
 * Section 3.1 of the paper characterises heat stroke by its episode
 * structure: the hot spot heats from normal operation to the emergency
 * threshold, the pipeline stalls, the resource cools, and the cycle
 * repeats. This module extracts those episodes from a recorded
 * TempSample trace so examples, benches and tests can measure heat-up
 * times, cool-down times and duty cycles of *actual runs* rather than
 * idealised thermal-model step responses.
 */

#ifndef HS_SIM_EPISODES_HH
#define HS_SIM_EPISODES_HH

#include <vector>

#include "sim/results.hh"

namespace hs {

/** One heating-cooling episode of the traced hot spot. */
struct Episode
{
    Cycles riseStart = 0;  ///< trace point where the rise began
    Cycles peakAt = 0;     ///< crossing of the trigger temperature
    Cycles fallEnd = 0;    ///< recovery below the resume temperature

    Cycles heatCycles() const { return peakAt - riseStart; }
    Cycles coolCycles() const { return fallEnd - peakAt; }
    /** Active fraction of this episode (the paper's duty cycle). */
    double
    dutyCycle() const
    {
        Cycles total = fallEnd - riseStart;
        return total ? static_cast<double>(heatCycles()) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/** Aggregate episode statistics. */
struct EpisodeStats
{
    size_t count = 0;
    double meanHeatCycles = 0;
    double meanCoolCycles = 0;
    double meanDutyCycle = 0;
};

/**
 * Extract completed heat/cool episodes from a trace.
 *
 * An episode starts when the traced hot-spot temperature last crossed
 * @p resume_temp on its way up, peaks when it reaches @p trigger_temp,
 * and ends when it falls back below @p resume_temp. Episodes that
 * never reach the trigger, or are still open at the end of the trace,
 * are discarded.
 */
std::vector<Episode> extractEpisodes(const std::vector<TempSample> &trace,
                                     Kelvin trigger_temp,
                                     Kelvin resume_temp);

/** Aggregate a set of episodes. */
EpisodeStats summarizeEpisodes(const std::vector<Episode> &episodes);

class Histogram;
class StateReader;
class StateWriter;
class Tracer;

/**
 * Online version of extractEpisodes(): fed one hot-spot sample at a
 * time by the simulator, it emits EpisodeRiseStart / EpisodePeak /
 * EpisodeEnd trace events as the phase machine advances. The phase
 * machine is byte-for-byte the same as the offline extractor, so the
 * event stream matches what extractEpisodes() would report on the same
 * samples.
 */
class OnlineEpisodeDetector
{
  public:
    OnlineEpisodeDetector(Kelvin trigger_temp, Kelvin resume_temp,
                          Tracer *tracer);

    /** Observe the hot-spot temperature at @p cycle. */
    void sample(Cycles cycle, Kelvin t);

    /**
     * Route every completed episode's heating / cooling durations (in
     * cycles) into @p heat / @p cool. The sinks are owned by the
     * caller and are not serialised — the owner reattaches them after
     * restoreState(). Either may be null.
     */
    void
    setDurationSinks(Histogram *heat, Histogram *cool)
    {
        heatSink_ = heat;
        coolSink_ = cool;
    }

    /** Completed episodes observed so far. */
    uint64_t completed() const { return completed_; }

    void saveState(StateWriter &w) const;
    void restoreState(StateReader &r);

  private:
    enum class Phase : uint8_t { Low = 0, Rising = 1, Cooling = 2 };

    Kelvin trigger_;
    Kelvin resume_;
    Tracer *tracer_;
    Histogram *heatSink_ = nullptr;
    Histogram *coolSink_ = nullptr;
    Phase phase_ = Phase::Low;
    Episode current_{};
    uint64_t completed_ = 0;
};

} // namespace hs

#endif // HS_SIM_EPISODES_HH
