/**
 * @file
 * Live campaign status endpoint.
 *
 * `hs_run --status-port P` starts a StatusServer: a background thread
 * that accepts plain TCP/HTTP connections and answers every request
 * with a Prometheus-style text snapshot of the campaign's counters
 * (cells queued/running/done, cache/disk/remote hits, fault fires,
 * worker heartbeats). Poll it with `curl localhost:P` while a long
 * campaign runs.
 *
 * The server is pure observability: the snapshot callback reads
 * atomic counters maintained off the simulated path, so serving a
 * request can never perturb results. The response is written raw
 * (HTTP/1.0, connection closed after one response) — deliberately not
 * framing.hh frames, which are length-prefixed for peers, not
 * curl-friendly.
 *
 * Environment knob: HS_STATUS_PORT (same as --status-port; the CLI
 * flag wins; must be a port number 1..65535).
 */

#ifndef HS_SIM_STATUS_HH
#define HS_SIM_STATUS_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/framing.hh"

namespace hs {

/**
 * Minimal single-threaded status responder. Construction binds the
 * port (fatal on failure, mirroring `--serve`) and starts the accept
 * loop; destruction stops it. @p snapshot is called once per request
 * from the server thread and must return the plaintext body (already
 * formatted, e.g. "hs_cells_done 12\n...").
 */
class StatusServer
{
  public:
    StatusServer(uint16_t port, std::function<std::string()> snapshot);
    ~StatusServer();

    StatusServer(const StatusServer &) = delete;
    StatusServer &operator=(const StatusServer &) = delete;

    /** Port actually bound (for tests using port 0). */
    uint16_t port() const { return port_; }

  private:
    void serveLoop();

    Socket listener_;
    uint16_t port_ = 0;
    std::function<std::string()> snapshot_;
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

/** @return the HS_STATUS_PORT override (1..65535), or 0 when unset.
 *  fatal() on garbage, matching the other env knobs. */
uint16_t envStatusPort();

} // namespace hs

#endif // HS_SIM_STATUS_HH
