/**
 * @file
 * Top-level simulator: SMT pipeline + Wattch-style energy model +
 * HotSpot-style thermal model + DTM policies, run for one OS quantum.
 *
 * The drive loop follows Section 4 of the paper: the pipeline runs
 * cycle by cycle; every monitorInterval (1 K) cycles the sedation usage
 * monitor samples the activity counters; every sensorInterval (20 K)
 * cycles the block powers for the window are computed, the thermal
 * network is stepped, temperature emergencies are counted, and the DTM
 * policies observe the sensors and act.
 */

#ifndef HS_SIM_SIMULATOR_HH
#define HS_SIM_SIMULATOR_HH

#include <memory>
#include <vector>

#include "core/dtm_policy.hh"
#include "core/dvfs.hh"
#include "core/fetch_gating.hh"
#include "core/offender_tracker.hh"
#include "core/sedation.hh"
#include "core/stop_and_go.hh"
#include "common/rng.hh"
#include "power/energy_model.hh"
#include "sim/results.hh"
#include "smt/pipeline.hh"
#include "thermal/thermal_model.hh"

namespace hs {

/** Which DTM configuration supervises the run. */
enum class DtmMode {
    None,              ///< sensors observed, never acts (ideal sink)
    StopAndGo,         ///< the paper's base case
    SelectiveSedation, ///< the contribution + stop-and-go safety net
    DvfsThrottle,      ///< extension: duty-cycle frequency scaling
    FetchGating        ///< extension: rotating indiscriminate fetch gate
};

/** @return a stable display name for @p mode. */
const char *dtmModeName(DtmMode mode);

/** Full configuration of one run. */
struct SimConfig
{
    SmtParams smt{};
    EnergyParams energy = EnergyParams::defaults();
    ThermalParams thermal{};
    Cycles quantumCycles = 500'000'000; ///< Section 4: one OS quantum
    Cycles sensorInterval = 20'000;     ///< Section 4
    Cycles monitorInterval = 1'000;     ///< Section 3.2.1
    Kelvin emergencyTemp = 358.0;       ///< Section 5
    DtmMode dtm = DtmMode::StopAndGo;
    StopAndGoParams stopAndGo{};
    SedationParams sedation{};
    DvfsParams dvfs{};
    FetchGatingParams fetchGating{};
    /** OS extension (Section 3.3): deschedule repeat offenders after
     *  offenderPolicy.reportsBeforeDeschedule sedation reports. */
    bool descheduleRepeatOffenders = false;
    OffenderPolicy offenderPolicy{};
    /** Gaussian-free uniform sensor error: policies observe
     *  temperature +- up to this many kelvin (Section 5.6 robustness;
     *  emergencies are counted on the true temperatures). */
    double sensorNoiseK = 0.0;
    bool recordTempTrace = false;
    Cycles tempTraceInterval = 100'000;

    /**
     * Nominal per-block access rates (accesses/cycle) used to
     * initialise the thermal network at its normal-operation steady
     * state before the quantum starts (a typical two-thread SPEC mix).
     */
    std::array<double, numBlocks> nominalAccessRates =
        defaultNominalRates();

    /** @return the calibrated typical-activity vector. */
    static std::array<double, numBlocks> defaultNominalRates();
};

/** The heat-stroke simulator. */
class Simulator : public DtmControl
{
  public:
    explicit Simulator(const SimConfig &config = {});
    ~Simulator() override;

    /** Bind a copy of @p program to hardware context @p tid. */
    void setWorkload(ThreadId tid, Program program);

    /** Run one OS quantum and return the results. */
    RunResult run();

    // Component access (examples / tests).
    Pipeline &pipeline() { return *pipeline_; }
    ThermalModel &thermal() { return *thermal_; }
    EnergyModel &energy() { return *energy_; }
    const SimConfig &config() const { return config_; }
    /** The sedation policy if DtmMode::SelectiveSedation, else null. */
    SelectiveSedation *sedationPolicy() { return sedation_; }
    /** The stop-and-go policy (base case or safety net), else null. */
    StopAndGo *stopAndGoPolicy() { return stopAndGo_; }
    /** The OS offender tracker when descheduleRepeatOffenders is set,
     *  else null. */
    OffenderTracker *offenderTracker() { return offenderTracker_.get(); }

    /** Install a user OS-report callback (chained after the internal
     *  offender tracker, if any). */
    void setOsReport(SelectiveSedation::OsReportFn fn);

    /** Write a full statistics report (pipeline, caches, predictor,
     *  thermal, DTM) in the gem5-style `group.stat value # desc`
     *  format. Call after run(). */
    void dumpStats(std::ostream &os) const;

    // DtmControl interface (used by the policies).
    void stallPipeline(bool stalled) override;
    bool pipelineStalled() const override;
    void sedateThread(ThreadId tid, bool sedated) override;
    void throttleThread(ThreadId tid, int every_k) override;
    void throttlePipeline(int every_k) override;
    int numThreads() const override;
    bool threadActive(ThreadId tid) const override;

  private:
    void sampleSensors();
    void countEmergencies(const std::vector<Kelvin> &temps);
    RunResult collectResults(double host_seconds) const;

    SimConfig config_;
    std::vector<std::unique_ptr<Program>> programs_;
    std::unique_ptr<Pipeline> pipeline_;
    std::unique_ptr<EnergyModel> energy_;
    std::unique_ptr<ThermalModel> thermal_;
    std::unique_ptr<ActivityCounters::Snapshot> powerSnapshot_;
    std::vector<std::unique_ptr<DtmPolicy>> policies_;
    SelectiveSedation *sedation_ = nullptr;
    StopAndGo *stopAndGo_ = nullptr;
    std::unique_ptr<OffenderTracker> offenderTracker_;
    SelectiveSedation::OsReportFn userOsReport_;
    std::vector<ThreadId> descheduled_;

    Cycles lastActiveCycles_ = 0;
    uint64_t emergencies_ = 0;
    std::array<uint64_t, numBlocks> emergenciesPerBlock_{};
    std::array<bool, numBlocks> aboveEmergency_{};
    std::array<Kelvin, numBlocks> peakTemp_{};
    double energyAccumJ_ = 0.0;
    Rng sensorNoise_{0xbadcafe5};
    std::vector<TempSample> tempTrace_;
    Cycles lastTraceAt_ = 0;
    std::vector<Watts> powerBuf_;  ///< reused per sensor sample
    std::vector<Kelvin> tempsBuf_; ///< reused per sensor sample
};

} // namespace hs

#endif // HS_SIM_SIMULATOR_HH
