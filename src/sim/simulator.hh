/**
 * @file
 * Top-level simulator: SMT pipeline + Wattch-style energy model +
 * HotSpot-style thermal model + DTM policies, run for one OS quantum.
 *
 * The drive loop follows Section 4 of the paper: the pipeline runs
 * cycle by cycle; every monitorInterval (1 K) cycles the sedation usage
 * monitor samples the activity counters; every sensorInterval (20 K)
 * cycles the block powers for the window are computed, the thermal
 * network is stepped, temperature emergencies are counted, and the DTM
 * policies observe the sensors and act.
 */

#ifndef HS_SIM_SIMULATOR_HH
#define HS_SIM_SIMULATOR_HH

#include <memory>
#include <vector>

#include "core/dtm_policy.hh"
#include "core/dvfs.hh"
#include "core/fetch_gating.hh"
#include "core/offender_tracker.hh"
#include "core/sedation.hh"
#include "core/stop_and_go.hh"
#include "common/rng.hh"
#include "power/energy_model.hh"
#include "sim/episodes.hh"
#include "sim/results.hh"
#include "sim/snapshot.hh"
#include "smt/pipeline.hh"
#include "thermal/thermal_model.hh"
#include "trace/metrics.hh"
#include "trace/tracer.hh"

namespace hs {

/**
 * Wall-clock and cycle attribution across the simulator's cost
 * centres, filled when profiling is enabled (hs_run --profile).
 * tickSeconds is derived at the end of each run() as the loop time not
 * spent in thermal samples or stalled fast-forwarding.
 */
struct SimProfile
{
    uint64_t tickedCycles = 0;   ///< cycles executed via tick()
    uint64_t stalledCycles = 0;  ///< cycles skipped via advanceStalled()
    uint64_t sensorSamples = 0;  ///< thermal/DTM sample points
    uint64_t snapshotOps = 0;    ///< save() + restore() calls
    double totalSeconds = 0.0;   ///< run() wall time
    double tickSeconds = 0.0;    ///< cycle-by-cycle execution
    double thermalSeconds = 0.0; ///< sampleSensors() (power + RC step)
    double stallSeconds = 0.0;   ///< stalled fast-forward bookkeeping
    double snapshotSeconds = 0.0;///< save() + restore() wall time
};

/** Which DTM configuration supervises the run. */
enum class DtmMode {
    None,              ///< sensors observed, never acts (ideal sink)
    StopAndGo,         ///< the paper's base case
    SelectiveSedation, ///< the contribution + stop-and-go safety net
    DvfsThrottle,      ///< extension: duty-cycle frequency scaling
    FetchGating        ///< extension: rotating indiscriminate fetch gate
};

/** @return a stable display name for @p mode. */
const char *dtmModeName(DtmMode mode);

/** Full configuration of one run. */
struct SimConfig
{
    SmtParams smt{};
    EnergyParams energy = EnergyParams::defaults();
    ThermalParams thermal{};
    Cycles quantumCycles = 500'000'000; ///< Section 4: one OS quantum
    Cycles sensorInterval = 20'000;     ///< Section 4
    Cycles monitorInterval = 1'000;     ///< Section 3.2.1
    Kelvin emergencyTemp = 358.0;       ///< Section 5
    DtmMode dtm = DtmMode::StopAndGo;
    StopAndGoParams stopAndGo{};
    SedationParams sedation{};
    DvfsParams dvfs{};
    FetchGatingParams fetchGating{};
    /** OS extension (Section 3.3): deschedule repeat offenders after
     *  offenderPolicy.reportsBeforeDeschedule sedation reports. */
    bool descheduleRepeatOffenders = false;
    OffenderPolicy offenderPolicy{};
    /** Gaussian-free uniform sensor error: policies observe
     *  temperature +- up to this many kelvin (Section 5.6 robustness;
     *  emergencies are counted on the true temperatures). */
    double sensorNoiseK = 0.0;
    bool recordTempTrace = false;
    Cycles tempTraceInterval = 100'000;

    /** Structured event tracing (src/trace): when enabled, DTM state
     *  transitions, threshold crossings, EWMA monitor samples, fetch
     *  gating and heat/cool episode boundaries are recorded into a
     *  bounded in-memory ring and exported into the RunResult. Off by
     *  default: emission sites branch on a null tracer pointer. */
    bool traceEvents = false;
    uint32_t traceCapacity = 1u << 16; ///< ring slots (drop-oldest)
    /** Online episode-detector thresholds (Section 3.1 duty cycle):
     *  mirror the stop-and-go engage/release pair by default. */
    Kelvin episodeTriggerTemp = 358.0;
    Kelvin episodeResumeTemp = 348.5;

    /**
     * Nominal per-block access rates (accesses/cycle) used to
     * initialise the thermal network at its normal-operation steady
     * state before the quantum starts (a typical two-thread SPEC mix).
     */
    std::array<double, numBlocks> nominalAccessRates =
        defaultNominalRates();

    /** @return the calibrated typical-activity vector. */
    static std::array<double, numBlocks> defaultNominalRates();
};

/** The heat-stroke simulator. */
class Simulator : public DtmControl
{
  public:
    explicit Simulator(const SimConfig &config = {});
    ~Simulator() override;

    /** Bind a copy of @p program to hardware context @p tid. */
    void setWorkload(ThreadId tid, Program program);

    /** Run one OS quantum and return the results. */
    RunResult run();

    /**
     * Serialise the complete simulator state into @p snap. Only legal
     * at a sensor boundary with the pipeline neither stalled nor fully
     * halted: those are the only points at which a restored run() can
     * re-enter its loop bit-identically (countdowns restart full, and
     * a halted machine would be re-tested one cycle late).
     */
    void save(SimSnapshot &snap) const;

    /**
     * Resume from @p snap. Only legal on a freshly constructed
     * simulator whose configuration matches the snapshot's
     * prefix-invariant fields and whose workloads are already bound
     * (program text is not serialised). The next run() continues from
     * the snapshot cycle and produces results bit-identical to a cold
     * run of the same configuration.
     */
    void restore(const SimSnapshot &snap);

    /**
     * Run the shared warm-up prefix of an experiment group: execute
     * like run(), but snapshot into @p out every @p stride_samples
     * sensor samples, stopping (without saving) as soon as the
     * observed hottest temperature reaches @p diverge_temp — from that
     * sample on, some group member's DTM policy could act, so the
     * members' futures are no longer provably identical — or the
     * machine halts. The caller must have neutralised this simulator's
     * own DTM thresholds so the prefix itself never acts.
     *
     * @return the cycle of the last snapshot taken (0 = none).
     */
    Cycles runPrefix(Kelvin diverge_temp, Cycles stride_samples,
                     SimSnapshot &out);

    /** Enable cost-centre accounting (see SimProfile). */
    void setProfiling(bool on) { profiling_ = on; }
    const SimProfile &profile() const { return profile_; }

    // Component access (examples / tests).
    Pipeline &pipeline() { return *pipeline_; }
    ThermalModel &thermal() { return *thermal_; }
    EnergyModel &energy() { return *energy_; }
    const SimConfig &config() const { return config_; }
    /** The sedation policy if DtmMode::SelectiveSedation, else null. */
    SelectiveSedation *sedationPolicy() { return sedation_; }
    /** The stop-and-go policy (base case or safety net), else null. */
    StopAndGo *stopAndGoPolicy() { return stopAndGo_; }
    /** The OS offender tracker when descheduleRepeatOffenders is set,
     *  else null. */
    OffenderTracker *offenderTracker() { return offenderTracker_.get(); }

    /** The structured event tracer when traceEvents is set, else null. */
    Tracer *tracer() { return tracer_.get(); }

    /** Install a user OS-report callback (chained after the internal
     *  offender tracker, if any). */
    void setOsReport(SelectiveSedation::OsReportFn fn);

    /** Write a full statistics report (pipeline, caches, predictor,
     *  thermal, DTM) in the gem5-style `group.stat value # desc`
     *  format. Call after run(). */
    void dumpStats(std::ostream &os) const;

    // DtmControl interface (used by the policies).
    void stallPipeline(bool stalled) override;
    bool pipelineStalled() const override;
    void sedateThread(ThreadId tid, bool sedated) override;
    void throttleThread(ThreadId tid, int every_k) override;
    void throttlePipeline(int every_k) override;
    int numThreads() const override;
    bool threadActive(ThreadId tid) const override;

  private:
    void sampleSensors();
    void countEmergencies(const std::vector<Kelvin> &temps);
    RunResult collectResults(double host_seconds) const;

    SimConfig config_;
    std::vector<std::unique_ptr<Program>> programs_;
    std::unique_ptr<Pipeline> pipeline_;
    std::unique_ptr<EnergyModel> energy_;
    std::unique_ptr<ThermalModel> thermal_;
    std::unique_ptr<ActivityCounters::Snapshot> powerSnapshot_;
    std::vector<std::unique_ptr<DtmPolicy>> policies_;
    SelectiveSedation *sedation_ = nullptr;
    StopAndGo *stopAndGo_ = nullptr;
    std::unique_ptr<OffenderTracker> offenderTracker_;
    SelectiveSedation::OsReportFn userOsReport_;
    std::vector<ThreadId> descheduled_;
    std::unique_ptr<Tracer> tracer_;
    std::unique_ptr<OnlineEpisodeDetector> episodes_;

    Cycles lastActiveCycles_ = 0;
    uint64_t emergencies_ = 0;
    std::array<uint64_t, numBlocks> emergenciesPerBlock_{};
    std::array<bool, numBlocks> aboveEmergency_{};
    std::array<Kelvin, numBlocks> peakTemp_{};
    double energyAccumJ_ = 0.0;
    Rng sensorNoise_{0xbadcafe5};
    std::vector<TempSample> tempTrace_;
    Cycles lastTraceAt_ = 0;
    std::vector<Watts> powerBuf_;  ///< reused per sensor sample
    std::vector<Kelvin> tempsBuf_; ///< reused per sensor sample

    /** Run-health histograms: plain members (never registry lookups)
     *  so the hot-path observes stay allocation-free; exported as
     *  RunResult::histograms and serialised through save()/restore()
     *  so prefix-forked cells report the same distributions as cold
     *  runs. */
    Histogram histEpisodeHeat_;
    Histogram histEpisodeCool_;
    Histogram histSedation_;
    Histogram histRuu_;
    Histogram histLsq_;
    Histogram histFetchShare_;
    /** Per-thread sedation bookkeeping: cycle+1 at which the current
     *  sedation span began, 0 when the thread is not sedated. */
    std::vector<Cycles> sedStart_;

    /** Hottest temperature as the policies observed it (after sensor
     *  noise) at the most recent sample; runPrefix()'s divergence
     *  test must see exactly what a cell's policy would see. */
    Kelvin lastObservedMax_ = 0.0;
    bool resumedFromSnapshot_ = false;
    bool profiling_ = false;
    mutable SimProfile profile_; ///< save() is const but accounts here
};

} // namespace hs

#endif // HS_SIM_SIMULATOR_HH
