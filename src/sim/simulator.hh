/**
 * @file
 * Top-level simulator: N SMT cores (pipeline + Wattch-style energy
 * model + DTM policies each) on one shared HotSpot-style thermal die,
 * run for one OS quantum.
 *
 * The drive loop follows Section 4 of the paper: every core's pipeline
 * runs cycle by cycle in lockstep; every monitorInterval (1 K) cycles
 * each core's sedation usage monitor samples its activity counters;
 * every sensorInterval (20 K) cycles the per-block powers of every
 * core are computed, the shared thermal network is stepped once, each
 * core's temperature emergencies are counted, and each core's DTM
 * policies observe that core's sensors and act on that core alone.
 *
 * A 1-core configuration (the default) is exactly the original
 * single-core simulator: same loop, same sampling order, same output
 * bytes. The topology axis (docs/TOPOLOGY.md) only adds state when
 * SimConfig::topology.numCores > 1.
 */

#ifndef HS_SIM_SIMULATOR_HH
#define HS_SIM_SIMULATOR_HH

#include <memory>
#include <vector>

#include "core/dtm_policy.hh"
#include "core/dvfs.hh"
#include "core/fetch_gating.hh"
#include "core/offender_tracker.hh"
#include "core/sedation.hh"
#include "core/stop_and_go.hh"
#include "common/rng.hh"
#include "power/energy_model.hh"
#include "sim/episodes.hh"
#include "sim/results.hh"
#include "sim/snapshot.hh"
#include "smt/pipeline.hh"
#include "thermal/thermal_model.hh"
#include "thermal/topology.hh"
#include "trace/metrics.hh"
#include "trace/tracer.hh"

namespace hs {

/**
 * Wall-clock and cycle attribution across the simulator's cost
 * centres, filled when profiling is enabled (hs_run --profile).
 * tickSeconds is derived at the end of each run() as the loop time not
 * spent in thermal samples or stalled fast-forwarding.
 */
struct SimProfile
{
    uint64_t tickedCycles = 0;   ///< cycles executed via tick()
    uint64_t stalledCycles = 0;  ///< cycles skipped via advanceStalled()
    uint64_t sensorSamples = 0;  ///< thermal/DTM sample points
    uint64_t snapshotOps = 0;    ///< save() + restore() calls
    double totalSeconds = 0.0;   ///< run() wall time
    double tickSeconds = 0.0;    ///< cycle-by-cycle execution
    double thermalSeconds = 0.0; ///< sampleSensors() (power + RC step)
    double stallSeconds = 0.0;   ///< stalled fast-forward bookkeeping
    double snapshotSeconds = 0.0;///< save() + restore() wall time
};

/** Which DTM configuration supervises the run. */
enum class DtmMode {
    None,              ///< sensors observed, never acts (ideal sink)
    StopAndGo,         ///< the paper's base case
    SelectiveSedation, ///< the contribution + stop-and-go safety net
    DvfsThrottle,      ///< extension: duty-cycle frequency scaling
    FetchGating        ///< extension: rotating indiscriminate fetch gate
};

/** @return a stable display name for @p mode. */
const char *dtmModeName(DtmMode mode);

/** Full configuration of one run. */
struct SimConfig
{
    SmtParams smt{}; ///< per-core geometry (numThreads = contexts/core)
    EnergyParams energy = EnergyParams::defaults();
    ThermalParams thermal{};
    /** Die composition (docs/TOPOLOGY.md): how many core tiles share
     *  the spreader/sink, their spacing and the cross-core coupling
     *  knob. numCores = 1 (default) is the original single-core die. */
    TopologyParams topology{};
    /**
     * Core each workload (global thread id) runs on; empty places every
     * workload on core 0. Entries must lie in [0, topology.numCores)
     * and no core may receive more than smt.numThreads workloads.
     */
    std::vector<int> placement;
    Cycles quantumCycles = 500'000'000; ///< Section 4: one OS quantum
    Cycles sensorInterval = 20'000;     ///< Section 4
    Cycles monitorInterval = 1'000;     ///< Section 3.2.1
    Kelvin emergencyTemp = 358.0;       ///< Section 5
    DtmMode dtm = DtmMode::StopAndGo;
    StopAndGoParams stopAndGo{};
    SedationParams sedation{};
    DvfsParams dvfs{};
    FetchGatingParams fetchGating{};
    /** OS extension (Section 3.3): deschedule repeat offenders after
     *  offenderPolicy.reportsBeforeDeschedule sedation reports. */
    bool descheduleRepeatOffenders = false;
    OffenderPolicy offenderPolicy{};
    /** Gaussian-free uniform sensor error: policies observe
     *  temperature +- up to this many kelvin (Section 5.6 robustness;
     *  emergencies are counted on the true temperatures). */
    double sensorNoiseK = 0.0;
    bool recordTempTrace = false;
    Cycles tempTraceInterval = 100'000;

    /** Structured event tracing (src/trace): when enabled, DTM state
     *  transitions, threshold crossings, EWMA monitor samples, fetch
     *  gating and heat/cool episode boundaries are recorded into a
     *  bounded in-memory ring and exported into the RunResult. Off by
     *  default: emission sites branch on a null tracer pointer. */
    bool traceEvents = false;
    uint32_t traceCapacity = 1u << 16; ///< ring slots (drop-oldest)
    /** Online episode-detector thresholds (Section 3.1 duty cycle):
     *  mirror the stop-and-go engage/release pair by default. */
    Kelvin episodeTriggerTemp = 358.0;
    Kelvin episodeResumeTemp = 348.5;

    /**
     * Nominal per-block access rates (accesses/cycle) used to
     * initialise the thermal network at its normal-operation steady
     * state before the quantum starts (a typical two-thread SPEC mix).
     */
    std::array<double, numBlocks> nominalAccessRates =
        defaultNominalRates();

    /** @return the calibrated typical-activity vector. */
    static std::array<double, numBlocks> defaultNominalRates();
};

/** The heat-stroke simulator. */
class Simulator : public DtmControl
{
  public:
    explicit Simulator(const SimConfig &config = {});
    ~Simulator() override;

    /**
     * Bind a copy of @p program to global hardware context @p tid.
     * Global contexts map onto cores through SimConfig::placement: a
     * workload's core is placement[tid] (core 0 when the placement is
     * empty) and its core-local slot is the count of earlier workloads
     * placed on the same core.
     */
    void setWorkload(ThreadId tid, Program program);

    /** Run one OS quantum and return the results. */
    RunResult run();

    /**
     * Serialise the complete simulator state into @p snap. Only legal
     * at a sensor boundary with no core's pipeline stalled and the
     * machine not fully halted: those are the only points at which a
     * restored run() can re-enter its loop bit-identically (countdowns
     * restart full, and a halted machine would be re-tested one cycle
     * late).
     */
    void save(SimSnapshot &snap) const;

    /**
     * Resume from @p snap. Only legal on a freshly constructed
     * simulator whose configuration matches the snapshot's
     * prefix-invariant fields (including topology and placement) and
     * whose workloads are already bound (program text is not
     * serialised). The next run() continues from the snapshot cycle
     * and produces results bit-identical to a cold run of the same
     * configuration.
     */
    void restore(const SimSnapshot &snap);

    /**
     * Run the shared warm-up prefix of an experiment group: execute
     * like run(), but snapshot into @p out every @p stride_samples
     * sensor samples, stopping (without saving) as soon as the
     * observed hottest temperature of any core reaches @p diverge_temp
     * — from that sample on, some group member's DTM policy could act,
     * so the members' futures are no longer provably identical — or
     * the machine halts. The caller must have neutralised this
     * simulator's own DTM thresholds so the prefix itself never acts.
     *
     * @return the cycle of the last snapshot taken (0 = none).
     */
    Cycles runPrefix(Kelvin diverge_temp, Cycles stride_samples,
                     SimSnapshot &out);

    // --- scout-chunk stepping (batch engine, src/sim/batch.*) -------
    // A lockstep driver advances several neutralised scouts one
    // sensor interval at a time and steps their thermal networks
    // together through ThermalModel::stepBatch; runPrefix() is built
    // on the same primitives, so both paths share one cycle loop.

    /** What stopped a runScoutChunk() call. */
    enum class ScoutChunk {
        AtSensor, ///< at a sensor boundary; thermal step pending
        Halted,   ///< every working core halted between boundaries
        End       ///< the quantum is exhausted
    };

    /** Enter scout mode on a fresh simulator: establish the nominal
     *  steady state and arm the boundary countdowns. */
    void beginScout();

    /**
     * Advance the cycle loop to the next sensor boundary, ticking
     * every core and taking monitor samples exactly as run() /
     * runPrefix() would. At the boundary the per-core window powers
     * are already gathered into pendingThermalPower(); the caller
     * must step the thermal model — alone or as one lane of
     * ThermalModel::stepBatch — and then call finishSensorSample().
     * Fatals if a pipeline stalls: scouts run with neutralised DTM
     * thresholds, so a stall means the caller forgot to neutralise.
     */
    ScoutChunk runScoutChunk();

    /** The per-block powers of the sample runScoutChunk() stopped at
     *  (valid until finishSensorSample()). */
    const std::vector<Watts> &pendingThermalPower() const
    {
        return thermalPowerBuf_;
    }

    /** Seconds one sensor interval spans — the thermal step dt. */
    double sensorDt() const;

    /**
     * Complete the sensor sample runScoutChunk() stopped at, after
     * the caller stepped the thermal model: energy accounting,
     * temperature readback, emergency counting, episode detection,
     * run-health histograms, sensor noise, policy evaluation and the
     * temperature trace — byte for byte what the tail of a solo
     * sensor sample does.
     */
    void finishSensorSample();

    /** Hottest (noise-included) temperature any core's policies
     *  observed at the most recent sensor sample. */
    Kelvin lastObservedMax() const { return lastObservedMax_; }

    /** @return true once every core that has work is fully halted. */
    bool machineHalted() const { return allCoresHalted(); }

    /** Enable cost-centre accounting (see SimProfile). */
    void setProfiling(bool on) { profiling_ = on; }
    const SimProfile &profile() const { return profile_; }

    /** Number of composed cores (1 = the classic single-core die). */
    int numCores() const { return numCores_; }

    // Component access (examples / tests); core-indexed where the
    // state became per-core, defaulting to core 0 (the single core).
    Pipeline &pipeline(int core = 0);
    ThermalModel &thermal() { return *thermal_; }
    EnergyModel &energy() { return *energy_; }
    const SimConfig &config() const { return config_; }
    /** Core @p core's sedation policy if DtmMode::SelectiveSedation,
     *  else null. */
    SelectiveSedation *sedationPolicy(int core = 0);
    /** Core @p core's stop-and-go policy (base case or safety net),
     *  else null. */
    StopAndGo *stopAndGoPolicy(int core = 0);
    /** Core @p core's OS offender tracker when
     *  descheduleRepeatOffenders is set, else null. */
    OffenderTracker *offenderTracker(int core = 0);

    /** The structured event tracer when traceEvents is set, else null.
     *  One shared ring: events carry the id of the core they happened
     *  on (TraceEvent::core). */
    Tracer *tracer() { return tracer_.get(); }

    /** Install a user OS-report callback on every core's sedation
     *  policy (chained after the internal offender tracker, if any).
     *  Reported thread ids are core-local. */
    void setOsReport(SelectiveSedation::OsReportFn fn);

    /** Write a full statistics report (pipeline, caches, predictor,
     *  thermal, DTM) in the gem5-style `group.stat value # desc`
     *  format; per-core groups are prefixed `coreN.` on multi-core
     *  dies. Call after run(). */
    void dumpStats(std::ostream &os) const;

    // DtmControl interface, scoped to core 0 (kept so single-core
    // tests and tools can drive the simulator directly; each core's
    // policies act through their own per-core control instead).
    void stallPipeline(bool stalled) override;
    bool pipelineStalled() const override;
    void sedateThread(ThreadId tid, bool sedated) override;
    void throttleThread(ThreadId tid, int every_k) override;
    void throttlePipeline(int every_k) override;
    int numThreads() const override;
    bool threadActive(ThreadId tid) const override;

  private:
    /** DtmControl adapter scoped to one core: the policies of core c
     *  observe core c's sensors and act on core c's pipeline only. */
    class CoreControl;

    /**
     * Everything one core owns: its pipeline and bound programs, its
     * DTM policy instances and their OS extensions, its episode
     * detector, and its share of the run accounting (emergency
     * counters, peaks, run-health histograms, sedation bookkeeping).
     */
    struct CoreState
    {
        std::vector<std::unique_ptr<Program>> programs;
        std::unique_ptr<Pipeline> pipeline;
        std::unique_ptr<ActivityCounters::Snapshot> powerSnapshot;
        std::vector<std::unique_ptr<DtmPolicy>> policies;
        SelectiveSedation *sedation = nullptr;
        StopAndGo *stopAndGo = nullptr;
        std::unique_ptr<OffenderTracker> offenderTracker;
        std::vector<ThreadId> descheduled; ///< core-local thread ids
        std::unique_ptr<OnlineEpisodeDetector> episodes;
        std::unique_ptr<CoreControl> control;
        bool hasWork = false; ///< any program bound to this core

        Cycles lastActiveCycles = 0;
        uint64_t emergencies = 0;
        std::array<uint64_t, numBlocks> emergenciesPerBlock{};
        std::array<bool, numBlocks> aboveEmergency{};
        std::array<Kelvin, numBlocks> peakTemp{};
        /** Run-health histograms: plain members (never registry
         *  lookups) so the hot-path observes stay allocation-free;
         *  exported as RunResult::histograms and serialised through
         *  save()/restore() so prefix-forked cells report the same
         *  distributions as cold runs. */
        Histogram histEpisodeHeat;
        Histogram histEpisodeCool;
        Histogram histSedation;
        Histogram histRuu;
        Histogram histLsq;
        Histogram histFetchShare;
        /** Per-thread sedation bookkeeping: cycle+1 at which the
         *  current sedation span began, 0 when not sedated. */
        std::vector<Cycles> sedStart;
        std::vector<Watts> powerBuf;  ///< reused per sensor sample
        std::vector<Kelvin> tempsBuf; ///< reused per sensor sample

        CoreState();
        CoreState(CoreState &&) noexcept;
        CoreState &operator=(CoreState &&) noexcept;
        ~CoreState();
    };

    void sampleSensors();
    /** Gather every core's window powers into thermalPowerBuf_ (the
     *  first half of a sensor sample, before the thermal step). */
    void samplePowers();
    void countEmergencies(CoreState &core);
    RunResult collectResults(double host_seconds) const;
    /** @return true once every core that has work is fully halted. */
    bool allCoresHalted() const;
    /** Seed the whole die at its normal-operation steady state. */
    void initNominalSteadyState();
    CoreState &coreAt(int core);
    const CoreState &coreAt(int core) const;

    // Per-core DtmControl backends (CoreControl forwards here; the
    // public DtmControl overrides forward to core 0).
    void coreStallPipeline(int core, bool stalled);
    bool corePipelineStalled(int core) const;
    void coreSedateThread(int core, ThreadId tid, bool sedated);
    void coreThrottleThread(int core, ThreadId tid, int every_k);
    void coreThrottlePipeline(int core, int every_k);
    bool coreThreadActive(int core, ThreadId tid) const;

    SimConfig config_;
    int numCores_ = 1;
    /** Resolved placement: core / core-local slot per global thread
     *  id, and the inverse map (invalidThreadId = no workload). */
    std::vector<int> coreOf_;
    std::vector<ThreadId> slotOf_;
    std::vector<std::vector<ThreadId>> globalOf_;
    std::vector<CoreState> cores_;
    std::unique_ptr<EnergyModel> energy_;
    std::unique_ptr<ThermalModel> thermal_;
    SelectiveSedation::OsReportFn userOsReport_;
    std::unique_ptr<Tracer> tracer_;

    double energyAccumJ_ = 0.0;
    Rng sensorNoise_{0xbadcafe5};
    std::vector<TempSample> tempTrace_;
    Cycles lastTraceAt_ = 0;
    /** Concatenated per-core block powers fed to the shared RC
     *  network each sensor sample (reused, never reallocated). */
    std::vector<Watts> thermalPowerBuf_;

    /** Hottest temperature any core's policies observed (after sensor
     *  noise) at the most recent sample; runPrefix()'s divergence
     *  test must see exactly what a cell's policy would see. */
    Kelvin lastObservedMax_ = 0.0;
    /** Boundary countdowns for scout-chunk stepping (armed by
     *  beginScout(), advanced by runScoutChunk()). */
    Cycles scoutToMonitor_ = 0;
    Cycles scoutToSensor_ = 0;
    bool resumedFromSnapshot_ = false;
    bool profiling_ = false;
    mutable SimProfile profile_; ///< save() is const but accounts here
};

} // namespace hs

#endif // HS_SIM_SIMULATOR_HH
