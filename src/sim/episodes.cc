#include "sim/episodes.hh"

#include "common/log.hh"
#include "common/state_buffer.hh"
#include "trace/metrics.hh"
#include "trace/tracer.hh"

namespace hs {

std::vector<Episode>
extractEpisodes(const std::vector<TempSample> &trace,
                Kelvin trigger_temp, Kelvin resume_temp)
{
    if (resume_temp >= trigger_temp)
        fatal("extractEpisodes: resume must be below trigger");

    std::vector<Episode> episodes;
    enum class Phase { Low, Rising, Cooling };
    Phase phase = Phase::Low;
    Episode current;

    for (const TempSample &s : trace) {
        Kelvin t = s.intRegTemp;
        switch (phase) {
          case Phase::Low:
            if (t > resume_temp) {
                current = Episode{};
                current.riseStart = s.cycle;
                phase = Phase::Rising;
            }
            break;
          case Phase::Rising:
            if (t >= trigger_temp) {
                current.peakAt = s.cycle;
                phase = Phase::Cooling;
            } else if (t <= resume_temp) {
                phase = Phase::Low; // aborted rise: not an episode
            }
            break;
          case Phase::Cooling:
            if (t <= resume_temp) {
                current.fallEnd = s.cycle;
                episodes.push_back(current);
                phase = Phase::Low;
            }
            break;
        }
    }
    return episodes;
}

EpisodeStats
summarizeEpisodes(const std::vector<Episode> &episodes)
{
    EpisodeStats stats;
    stats.count = episodes.size();
    if (episodes.empty())
        return stats;
    double heat = 0, cool = 0, duty = 0;
    for (const Episode &e : episodes) {
        heat += static_cast<double>(e.heatCycles());
        cool += static_cast<double>(e.coolCycles());
        duty += e.dutyCycle();
    }
    stats.meanHeatCycles = heat / static_cast<double>(stats.count);
    stats.meanCoolCycles = cool / static_cast<double>(stats.count);
    stats.meanDutyCycle = duty / static_cast<double>(stats.count);
    return stats;
}

OnlineEpisodeDetector::OnlineEpisodeDetector(Kelvin trigger_temp,
                                             Kelvin resume_temp,
                                             Tracer *tracer)
    : trigger_(trigger_temp), resume_(resume_temp), tracer_(tracer)
{
    if (resume_temp >= trigger_temp)
        fatal("OnlineEpisodeDetector: resume must be below trigger");
}

void
OnlineEpisodeDetector::sample(Cycles cycle, Kelvin t)
{
    switch (phase_) {
      case Phase::Low:
        if (t > resume_) {
            current_ = Episode{};
            current_.riseStart = cycle;
            phase_ = Phase::Rising;
            if (tracer_)
                tracer_->emit(cycle, TraceKind::EpisodeRiseStart, -1,
                              traceNoBlock, t);
        }
        break;
      case Phase::Rising:
        if (t >= trigger_) {
            current_.peakAt = cycle;
            phase_ = Phase::Cooling;
            if (tracer_)
                tracer_->emit(cycle, TraceKind::EpisodePeak, -1,
                              traceNoBlock, t,
                              current_.heatCycles());
        } else if (t <= resume_) {
            phase_ = Phase::Low; // aborted rise: not an episode
        }
        break;
      case Phase::Cooling:
        if (t <= resume_) {
            current_.fallEnd = cycle;
            ++completed_;
            if (heatSink_)
                heatSink_->observe(
                    static_cast<double>(current_.heatCycles()));
            if (coolSink_)
                coolSink_->observe(
                    static_cast<double>(current_.coolCycles()));
            if (tracer_)
                tracer_->emit(cycle, TraceKind::EpisodeEnd, -1,
                              traceNoBlock, current_.dutyCycle(),
                              current_.heatCycles());
            phase_ = Phase::Low;
        }
        break;
    }
}

void
OnlineEpisodeDetector::saveState(StateWriter &w) const
{
    w.putTag(stateTag("EPIS"));
    w.put<uint8_t>(static_cast<uint8_t>(phase_));
    w.put<Cycles>(current_.riseStart);
    w.put<Cycles>(current_.peakAt);
    w.put<uint64_t>(completed_);
}

void
OnlineEpisodeDetector::restoreState(StateReader &r)
{
    r.expectTag(stateTag("EPIS"), "OnlineEpisodeDetector state");
    phase_ = static_cast<Phase>(r.get<uint8_t>());
    current_ = Episode{};
    current_.riseStart = r.get<Cycles>();
    current_.peakAt = r.get<Cycles>();
    completed_ = r.get<uint64_t>();
}

} // namespace hs
