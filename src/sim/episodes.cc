#include "sim/episodes.hh"

#include "common/log.hh"

namespace hs {

std::vector<Episode>
extractEpisodes(const std::vector<TempSample> &trace,
                Kelvin trigger_temp, Kelvin resume_temp)
{
    if (resume_temp >= trigger_temp)
        fatal("extractEpisodes: resume must be below trigger");

    std::vector<Episode> episodes;
    enum class Phase { Low, Rising, Cooling };
    Phase phase = Phase::Low;
    Episode current;

    for (const TempSample &s : trace) {
        Kelvin t = s.intRegTemp;
        switch (phase) {
          case Phase::Low:
            if (t > resume_temp) {
                current = Episode{};
                current.riseStart = s.cycle;
                phase = Phase::Rising;
            }
            break;
          case Phase::Rising:
            if (t >= trigger_temp) {
                current.peakAt = s.cycle;
                phase = Phase::Cooling;
            } else if (t <= resume_temp) {
                phase = Phase::Low; // aborted rise: not an episode
            }
            break;
          case Phase::Cooling:
            if (t <= resume_temp) {
                current.fallEnd = s.cycle;
                episodes.push_back(current);
                phase = Phase::Low;
            }
            break;
        }
    }
    return episodes;
}

EpisodeStats
summarizeEpisodes(const std::vector<Episode> &episodes)
{
    EpisodeStats stats;
    stats.count = episodes.size();
    if (episodes.empty())
        return stats;
    double heat = 0, cool = 0, duty = 0;
    for (const Episode &e : episodes) {
        heat += static_cast<double>(e.heatCycles());
        cool += static_cast<double>(e.coolCycles());
        duty += e.dutyCycle();
    }
    stats.meanHeatCycles = heat / static_cast<double>(stats.count);
    stats.meanCoolCycles = cool / static_cast<double>(stats.count);
    stats.meanDutyCycle = duty / static_cast<double>(stats.count);
    return stats;
}

} // namespace hs
