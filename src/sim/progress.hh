/**
 * @file
 * Live run-health display for ParallelRunner matrices.
 *
 * ProgressReporter consumes CellEvents and paints a single-line status
 * (completed/total, cache accounting split by tier — in-memory hits,
 * persistent disk-store hits, cells completed by remote workers —
 * prefix forks, an ETA estimated from the per-cell wall-time
 * histogram) plus a watchdog that flags cells running longer than a
 * configurable multiple of the median cell time.
 * Everything here observes host wall-clock only — it never touches the
 * simulated path, so enabling it cannot perturb results.
 *
 * Output degrades by stream kind: when the output is a TTY the status
 * is redrawn in place with carriage returns; otherwise plain periodic
 * lines are printed (no ANSI, no \r), so logs stay readable under CI
 * and redirection.
 *
 * Environment knobs:
 *  - HS_WATCHDOG: slow-cell threshold as a multiple of the median cell
 *    time (default 4.0; 0 disables; must be a non-negative number).
 */

#ifndef HS_SIM_PROGRESS_HH
#define HS_SIM_PROGRESS_HH

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/runner.hh"
#include "trace/metrics.hh"

namespace hs {

/** How a ProgressReporter paints. */
struct ProgressOptions
{
    /** Redraw one line in place (TTY); false = plain periodic lines. */
    bool ansi = false;
    /** Flag cells running longer than this multiple of the median
     *  finished-cell time (0 disables the watchdog). */
    double watchdogFactor = 4.0;
    /** Plain mode: minimum seconds between status lines. */
    double minPlainInterval = 1.0;
    /** Destination stream (stderr keeps stdout machine-readable). */
    std::FILE *out = stderr;
};

/** Paints matrix progress from CellEvents; thread-safe. */
class ProgressReporter
{
  public:
    /** @param jobs worker count, used only for the ETA estimate. */
    ProgressReporter(size_t total, int jobs, ProgressOptions opts);
    ~ProgressReporter();

    /** Feed one lifecycle event (wire via setCellObserver). */
    void onEvent(const CellEvent &ev);

    /** Stop the watchdog and print the final summary (idempotent). */
    void finish();

    /** Cells the watchdog flagged as slow (tests). */
    uint64_t slowCells() const;

  private:
    struct Running
    {
        size_t index = 0;
        std::string label;
        std::chrono::steady_clock::time_point since;
        bool flagged = false;
    };

    void render();       ///< caller holds mu_
    void statusLine(char *buf, size_t n) const; ///< caller holds mu_
    void watchdogLoop();

    const size_t total_;
    const int jobs_;
    const ProgressOptions opts_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool stopped_ = false;
    bool finished_ = false;
    size_t done_ = 0;      ///< every terminal CellEvent kind
    size_t memHits_ = 0;   ///< served from the in-memory store
    size_t diskHits_ = 0;  ///< served from the persistent store tier
    size_t remote_ = 0;    ///< simulated by TCP workers
    size_t forked_ = 0;
    uint64_t slow_ = 0;
    Histogram cellSeconds_;
    std::vector<Running> running_;
    std::chrono::steady_clock::time_point start_;
    std::chrono::steady_clock::time_point lastPaint_;
    size_t paintedLen_ = 0; ///< ANSI: width to blank on redraw
    std::thread watchdog_;
};

/** @return true when @p stream is attached to a terminal. */
bool streamIsTty(std::FILE *stream);

/** @return the HS_WATCHDOG override, or @p default_factor. */
double envWatchdogFactor(double default_factor = 4.0);

} // namespace hs

#endif // HS_SIM_PROGRESS_HH
