/**
 * @file
 * Declarative experiment specification.
 *
 * A RunSpec names everything that determines the outcome of one
 * simulated OS quantum: the workload mix plus the experiment options
 * (and the handful of direct SimConfig extras the harnesses use). Specs
 * are plain data — they can be built in bulk to describe a whole
 * figure's matrix, hashed into a canonical cache key, executed by the
 * ParallelRunner, and serialised alongside their results.
 *
 * The canonical key covers every field that influences the simulation,
 * so two specs with equal keys are guaranteed to produce bit-identical
 * RunResults (the simulator is deterministic: fixed-seed RNGs, no
 * wall-clock).
 */

#ifndef HS_SIM_RUN_SPEC_HH
#define HS_SIM_RUN_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/experiment.hh"

namespace hs {

/** One thread of a RunSpec's workload mix. */
struct WorkloadSpec
{
    enum class Kind {
        Spec,    ///< synthetic SPEC program by profile name
        Variant, ///< malicious kernel 1..4 (phase lengths track the
                 ///< spec's time scale)
        Asm      ///< assembly text carried in the spec itself
    };

    Kind kind = Kind::Spec;
    std::string name;    ///< profile name (Spec) or display label (Asm)
    int variant = 0;     ///< 1..4 for Kind::Variant
    std::string asmText; ///< program source for Kind::Asm

    /** A SPEC thread by profile name. */
    static WorkloadSpec spec(std::string name);
    /** A malicious-variant thread (1..4). */
    static WorkloadSpec maliciousVariant(int which);
    /** A thread assembled from @p text (hashed by content). */
    static WorkloadSpec assembly(std::string label, std::string text);

    bool operator==(const WorkloadSpec &) const = default;
};

/** Full declarative description of one run. */
struct RunSpec
{
    std::vector<WorkloadSpec> workloads;
    ExperimentOptions opts;

    // Direct SimConfig extras used by the harnesses and hs_run.
    int numThreads = 0;      ///< SMT contexts; 0 = config default,
                             ///< widened to fit the workload list
    double dieShrink = 1.0;  ///< technology-scaling study knob
    double sensorNoiseK = 0.0;
    int descheduleAfter = 0; ///< OS extension: deschedule after N
                             ///< sedation reports (0 = off)
    /** Structured event tracing (SimConfig::traceEvents). Part of the
     *  divergence key: traced and untraced cells must not share a
     *  prefix, and a traced prefix records the events its forks
     *  inherit. */
    bool traceEvents = false;

    /** Die composition (docs/TOPOLOGY.md): core tiles sharing the
     *  spreader/sink. 1 (the default) is the classic single-core die
     *  and leaves the canonical key byte-identical to what it always
     *  was. Part of the divergence key: dies of different shapes never
     *  share a prefix. */
    int numCores = 1;
    /** Core per workload (empty = all on core 0); trajectory state
     *  like numCores, keyed only when numCores > 1. */
    std::vector<int> placement;

    /** Display label for tables/JSON; NOT part of the canonical key. */
    std::string label;

    /**
     * Canonical text form of every outcome-determining field.
     * Equal keys <=> bit-identical results.
     */
    std::string canonicalKey() const;

    /**
     * canonicalKey() minus the policy-only fields (DTM mode, trigger
     * thresholds, deschedule knob). Two specs with equal divergence
     * keys simulate bit-identically up to the first sensor sample at
     * which any of their policies could act, so the experiment engine
     * can run that shared prefix once and fork each cell from a
     * snapshot of it.
     */
    std::string divergenceKey() const;

    /** FNV-1a 64-bit hash of canonicalKey(). */
    uint64_t hash() const;

    bool operator==(const RunSpec &) const = default;

    // --- fluent builders (each returns a modified copy) -------------
    RunSpec withLabel(std::string l) const;
    RunSpec withDtm(DtmMode mode) const;
    RunSpec withSink(SinkType sink) const;
    RunSpec withTraceEvents(bool on) const;
    /** Compose @p cores tiles on one die; @p place maps each workload
     *  to its core (empty = all on core 0). */
    RunSpec withTopology(int cores, std::vector<int> place = {}) const;

  private:
    /** Shared body of canonicalKey() / divergenceKey(): the policy
     *  fields are emitted only when @p with_policy is set. */
    std::string buildKey(bool with_policy) const;
};

/** Spec for @p name running alone. */
RunSpec soloSpec(const std::string &name, const ExperimentOptions &opts);
/** Spec for malicious variant @p variant running alone. */
RunSpec maliciousSoloSpec(int variant, const ExperimentOptions &opts);
/** Spec for @p name co-scheduled with malicious variant @p variant. */
RunSpec withVariantSpec(const std::string &name, int variant,
                        const ExperimentOptions &opts);
/** Spec for two SPEC programs sharing the machine. */
RunSpec specPairSpec(const std::string &a, const std::string &b,
                     const ExperimentOptions &opts);

} // namespace hs

#endif // HS_SIM_RUN_SPEC_HH
