#include "sim/remote.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/fault.hh"
#include "common/log.hh"
#include "common/state_buffer.hh"
#include "sim/runner.hh"
#include "sim/serialize.hh"
#include "sim/simulator.hh"

namespace hs {

bool
parseEndpoints(const std::string &list, std::vector<Endpoint> &out)
{
    out.clear();
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        std::string item =
            list.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        size_t colon = item.rfind(':');
        if (colon == std::string::npos || colon == 0)
            return false;
        std::string host = item.substr(0, colon);
        std::string port = item.substr(colon + 1);
        char *end = nullptr;
        long p = std::strtol(port.c_str(), &end, 10);
        if (end == port.c_str() || *end != '\0' || p < 1 || p > 65535)
            return false;
        out.push_back({host, static_cast<uint16_t>(p)});
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return !out.empty();
}

uint32_t
localCaps()
{
    uint32_t caps = kCapSnapshotCache;
    if (envTelemetry())
        caps |= kCapTelemetry;
    return caps;
}

std::vector<uint8_t>
encodeHello(FrameType type)
{
    return encodeHello(type, localCaps());
}

std::vector<uint8_t>
encodeHello(FrameType type, uint32_t caps)
{
    std::vector<uint8_t> bytes;
    StateWriter w(bytes);
    w.put<uint8_t>(static_cast<uint8_t>(type));
    w.put<uint32_t>(kRemoteMagic);
    w.put<uint32_t>(kRemoteProtocolVersion);
    w.put<uint32_t>(kResultFormatVersion);
    w.put<uint32_t>(caps);
    return bytes;
}

bool
checkHello(const std::vector<uint8_t> &frame, FrameType expected,
           std::string &why, uint32_t *peer_caps)
{
    if (frame.size() != 1 + 4 * sizeof(uint32_t)) {
        why = "malformed handshake frame";
        return false;
    }
    StateReader r(frame);
    if (r.get<uint8_t>() != static_cast<uint8_t>(expected)) {
        why = "unexpected frame type in handshake";
        return false;
    }
    if (r.get<uint32_t>() != kRemoteMagic) {
        why = "not a heat-stroke peer (bad magic)";
        return false;
    }
    if (r.get<uint32_t>() != kRemoteProtocolVersion) {
        why = "protocol version mismatch";
        return false;
    }
    if (r.get<uint32_t>() != kResultFormatVersion) {
        why = "result-format version mismatch (rebuild the peer)";
        return false;
    }
    uint32_t caps = r.get<uint32_t>();
    if (peer_caps)
        *peer_caps = caps;
    return true;
}

std::vector<uint8_t>
encodeJob(uint64_t id, const RunSpec &spec, const SimSnapshot *snap)
{
    std::vector<uint8_t> bytes;
    StateWriter w(bytes);
    w.put<uint8_t>(static_cast<uint8_t>(FrameType::Job));
    w.put<uint64_t>(id);
    saveRunSpec(w, spec);
    w.put<uint8_t>(static_cast<uint8_t>(
        snap ? RemoteJob::SnapMode::Inline : RemoteJob::SnapMode::None));
    if (snap) {
        w.put<uint64_t>(fnv1a64(snap->bytes.data(), snap->bytes.size()));
        w.put<uint64_t>(snap->cycle);
        w.putVec(snap->bytes);
    }
    return bytes;
}

std::vector<uint8_t>
encodeJobRef(uint64_t id, const RunSpec &spec, uint64_t snapshot_hash)
{
    std::vector<uint8_t> bytes;
    StateWriter w(bytes);
    w.put<uint8_t>(static_cast<uint8_t>(FrameType::Job));
    w.put<uint64_t>(id);
    saveRunSpec(w, spec);
    w.put<uint8_t>(static_cast<uint8_t>(RemoteJob::SnapMode::Reference));
    w.put<uint64_t>(snapshot_hash);
    return bytes;
}

RemoteJob
decodeJob(const std::vector<uint8_t> &frame)
{
    StateReader r(frame);
    if (r.get<uint8_t>() != static_cast<uint8_t>(FrameType::Job))
        fatal("decodeJob: not a Job frame");
    RemoteJob job;
    job.id = r.get<uint64_t>();
    job.spec = loadRunSpec(r);
    uint8_t mode = r.get<uint8_t>();
    if (mode > static_cast<uint8_t>(RemoteJob::SnapMode::Reference))
        fatal("decodeJob: bad snapshot mode %u",
              static_cast<unsigned>(mode));
    job.snapMode = static_cast<RemoteJob::SnapMode>(mode);
    if (job.snapMode != RemoteJob::SnapMode::None)
        job.snapshotHash = r.get<uint64_t>();
    if (job.snapMode == RemoteJob::SnapMode::Inline) {
        job.snapshot.cycle = r.get<uint64_t>();
        r.getVec(job.snapshot.bytes);
    }
    if (!r.done())
        fatal("decodeJob: trailing bytes");
    return job;
}

namespace {

void
saveTelemetry(StateWriter &w, const JobTelemetry &tel)
{
    w.put<double>(tel.simSeconds);
    w.put<double>(tel.restoreSeconds);
    w.put<uint64_t>(tel.snapshotBytes);
    w.put<uint8_t>(tel.snapshotFromCache ? 1 : 0);
    w.put<uint64_t>(tel.peakRssKb);
    w.put<uint64_t>(tel.tickedCycles);
    w.put<uint64_t>(tel.stalledCycles);
    w.put<uint64_t>(tel.sensorSamples);
    w.put<double>(tel.tickSeconds);
    w.put<double>(tel.thermalSeconds);
    w.put<double>(tel.stallSeconds);
}

JobTelemetry
loadTelemetry(StateReader &r)
{
    JobTelemetry tel;
    tel.simSeconds = r.get<double>();
    tel.restoreSeconds = r.get<double>();
    tel.snapshotBytes = r.get<uint64_t>();
    tel.snapshotFromCache = r.get<uint8_t>() != 0;
    tel.peakRssKb = r.get<uint64_t>();
    tel.tickedCycles = r.get<uint64_t>();
    tel.stalledCycles = r.get<uint64_t>();
    tel.sensorSamples = r.get<uint64_t>();
    tel.tickSeconds = r.get<double>();
    tel.thermalSeconds = r.get<double>();
    tel.stallSeconds = r.get<double>();
    return tel;
}

} // namespace

std::vector<uint8_t>
encodeResult(uint64_t id, const RunResult &result,
             const JobTelemetry *telemetry)
{
    std::vector<uint8_t> bytes;
    StateWriter w(bytes);
    w.put<uint8_t>(static_cast<uint8_t>(FrameType::Result));
    w.put<uint64_t>(id);
    saveRunResult(w, result);
    w.put<uint8_t>(telemetry ? 1 : 0);
    if (telemetry)
        saveTelemetry(w, *telemetry);
    return bytes;
}

uint64_t
decodeResult(const std::vector<uint8_t> &frame, RunResult &out,
             JobTelemetry *telemetry, bool *has_telemetry)
{
    StateReader r(frame);
    if (r.get<uint8_t>() != static_cast<uint8_t>(FrameType::Result))
        fatal("decodeResult: not a Result frame");
    uint64_t id = r.get<uint64_t>();
    out = loadRunResult(r);
    bool carried = r.get<uint8_t>() != 0;
    if (has_telemetry)
        *has_telemetry = carried;
    if (carried) {
        JobTelemetry tel = loadTelemetry(r);
        if (telemetry)
            *telemetry = tel;
    }
    if (!r.done())
        fatal("decodeResult: trailing bytes");
    return id;
}

std::vector<uint8_t>
encodeHeartbeat(const HeartbeatInfo &hb)
{
    std::vector<uint8_t> bytes;
    StateWriter w(bytes);
    w.put<uint8_t>(static_cast<uint8_t>(FrameType::Heartbeat));
    w.put<uint64_t>(hb.jobsDone);
    w.put<double>(hb.uptimeSeconds);
    w.putString(hb.currentLabel);
    return bytes;
}

HeartbeatInfo
decodeHeartbeat(const std::vector<uint8_t> &frame)
{
    StateReader r(frame);
    if (r.get<uint8_t>() != static_cast<uint8_t>(FrameType::Heartbeat))
        fatal("decodeHeartbeat: not a Heartbeat frame");
    HeartbeatInfo hb;
    hb.jobsDone = r.get<uint64_t>();
    hb.uptimeSeconds = r.get<double>();
    hb.currentLabel = r.getString();
    if (!r.done())
        fatal("decodeHeartbeat: trailing bytes");
    return hb;
}

uint64_t
currentPeakRssKb()
{
#ifdef __linux__
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return 0;
    uint64_t kb = 0;
    char line[256];
    while (std::fgets(line, sizeof(line), f)) {
        if (std::strncmp(line, "VmHWM:", 6) == 0) {
            unsigned long long v = 0;
            if (std::sscanf(line + 6, "%llu", &v) == 1)
                kb = v;
            break;
        }
    }
    std::fclose(f);
    return kb;
#else
    return 0;
#endif
}

namespace {

/// Handshakes should complete immediately; a peer that stalls for 10 s
/// is not a healthy peer.
constexpr int kHandshakeTimeoutMs = 10000;

/** The handshake frame, with a byte flipped when chaos asks for it. */
std::vector<uint8_t>
helloFrame(FrameType type)
{
    std::vector<uint8_t> frame = encodeHello(type);
    if (faultFire("handshake_garbage"))
        frame[1] ^= 0xff; // first magic byte: the peer must refuse
    return frame;
}

/**
 * Background heartbeat pump for one worker connection: every
 * HS_HEARTBEAT_MS it sends jobs-done / uptime / current-cell under the
 * shared send mutex (so result frames never interleave mid-frame).
 * Send failures are ignored — the serve loop notices a vanished
 * coordinator on its own.
 */
class HeartbeatSender
{
  public:
    HeartbeatSender(Socket &conn, std::mutex &sendMu, bool enabled)
        : conn_(conn), sendMu_(sendMu),
          t0_(std::chrono::steady_clock::now())
    {
        if (!enabled)
            return;
        int period = envHeartbeatMs();
        thread_ = std::thread([this, period] { pump(period); });
    }

    ~HeartbeatSender()
    {
        if (!thread_.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

    void jobStarted(const std::string &label)
    {
        std::lock_guard<std::mutex> lock(mu_);
        label_ = label;
    }

    void jobFinished()
    {
        std::lock_guard<std::mutex> lock(mu_);
        label_.clear();
        ++jobsDone_;
    }

  private:
    void pump(int period_ms)
    {
        std::unique_lock<std::mutex> lock(mu_);
        for (;;) {
            if (cv_.wait_for(lock, std::chrono::milliseconds(period_ms),
                             [this] { return stop_; }))
                return;
            HeartbeatInfo hb;
            hb.jobsDone = jobsDone_;
            hb.currentLabel = label_;
            hb.uptimeSeconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0_)
                    .count();
            lock.unlock();
            std::vector<uint8_t> frame = encodeHeartbeat(hb);
            {
                std::lock_guard<std::mutex> sendLock(sendMu_);
                sendFrame(conn_, frame);
            }
            lock.lock();
        }
    }

    Socket &conn_;
    std::mutex &sendMu_;
    std::chrono::steady_clock::time_point t0_;
    std::mutex mu_; ///< guards label_/jobsDone_/stop_
    std::string label_;
    uint64_t jobsDone_ = 0;
    bool stop_ = false;
    std::condition_variable cv_;
    std::thread thread_;
};

/** Serve one coordinator connection. @return true on Shutdown. */
bool
serveConnection(Socket &conn, uint64_t &jobsDone)
{
    std::vector<uint8_t> frame;
    RecvStatus st = recvFrame(conn, frame, kHandshakeTimeoutMs);
    std::string why;
    uint32_t peerCaps = 0;
    if (st != RecvStatus::Ok ||
        !checkHello(frame, FrameType::Hello, why, &peerCaps)) {
        warn("worker: refusing coordinator: %s",
             st == RecvStatus::Ok ? why.c_str() : "no Hello frame");
        return false;
    }
    if (!sendFrame(conn, helloFrame(FrameType::HelloAck)))
        return false;
    uint32_t caps = localCaps() & peerCaps;
    inform("worker: coordinator connected");
    logEvent("worker", "coordinator_connected",
             {LogField::num("caps", static_cast<uint64_t>(caps))});

    std::mutex sendMu;
    HeartbeatSender heartbeat(conn, sendMu,
                              (caps & kCapTelemetry) != 0);
    // Warm-up snapshots this connection has already received, keyed by
    // content hash: repeat jobs of the same divergence group arrive as
    // references instead of re-shipping megabytes of state.
    std::unordered_map<uint64_t, SimSnapshot> snapshotCache;

    for (;;) {
        // Between jobs a worker waits indefinitely: idle is normal.
        st = recvFrame(conn, frame, -1);
        if (st == RecvStatus::Eof) {
            inform("worker: coordinator disconnected");
            return false;
        }
        if (st != RecvStatus::Ok || frame.empty()) {
            warn("worker: dropping broken coordinator connection");
            return false;
        }
        FrameType type = static_cast<FrameType>(frame[0]);
        if (type == FrameType::Shutdown) {
            inform("worker: shutdown requested");
            return true;
        }
        if (type != FrameType::Job) {
            warn("worker: unexpected frame type %u; dropping "
                 "connection",
                 static_cast<unsigned>(frame[0]));
            return false;
        }
        RemoteJob job = decodeJob(frame);
        const SimSnapshot *snap = nullptr;
        bool snapFromCache = false;
        switch (job.snapMode) {
          case RemoteJob::SnapMode::None:
            break;
          case RemoteJob::SnapMode::Inline:
            if (caps & kCapSnapshotCache) {
                snap = &(snapshotCache[job.snapshotHash] =
                             std::move(job.snapshot));
            } else {
                snap = &job.snapshot;
            }
            break;
          case RemoteJob::SnapMode::Reference: {
            auto it = snapshotCache.find(job.snapshotHash);
            if (it == snapshotCache.end()) {
                // Protocol violation: the coordinator believes we hold
                // a snapshot we never saw. Drop the connection so it
                // falls back to computing locally instead of feeding
                // us jobs we cannot run faithfully.
                warn("worker: unknown snapshot reference %016llx; "
                     "dropping connection",
                     static_cast<unsigned long long>(job.snapshotHash));
                return false;
            }
            snap = &it->second;
            snapFromCache = true;
            break;
          }
        }
        inform("worker: job %llu '%s'%s",
               static_cast<unsigned long long>(job.id),
               job.spec.label.c_str(),
               snap ? (snapFromCache ? " (forking from cached prefix)"
                                     : " (forking from shipped prefix)")
                    : "");
        logEvent("worker", "job_start",
                 {LogField::num("job", job.id),
                  LogField::text("label", job.spec.label),
                  LogField::flag("snapshot", snap != nullptr),
                  LogField::flag("snapshot_cached", snapFromCache)});
        heartbeat.jobStarted(job.spec.label);
        if (faultFire("worker_crash")) {
            // The whole point of this site is that the process is
            // gone before the Result frame exists: the coordinator
            // must requeue the cell, not wait on it.
            warn("worker: injected crash before job %llu completes",
                 static_cast<unsigned long long>(job.id));
            std::_Exit(3);
        }

        // Execute exactly like executeFromSnapshot()/executeRunSpec(),
        // but with the simulator in hand so the telemetry block can
        // carry the SimProfile cost centres and restore timing.
        // setProfiling only toggles host-clock accumulation — the
        // profile counters (and the result) are identical either way.
        bool telem = (caps & kCapTelemetry) != 0;
        JobTelemetry tel;
        auto sim = makeSimulator(job.spec);
        sim->setProfiling(telem);
        if (snap) {
            auto r0 = std::chrono::steady_clock::now();
            sim->restore(*snap);
            tel.restoreSeconds =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - r0)
                    .count();
        }
        auto t0 = std::chrono::steady_clock::now();
        RunResult result = sim->run();
        tel.simSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
        if (telem) {
            tel.snapshotBytes = snap ? snap->bytes.size() : 0;
            tel.snapshotFromCache = snapFromCache;
            tel.peakRssKb = currentPeakRssKb();
            const SimProfile &p = sim->profile();
            tel.tickedCycles = p.tickedCycles;
            tel.stalledCycles = p.stalledCycles;
            tel.sensorSamples = p.sensorSamples;
            tel.tickSeconds = p.tickSeconds;
            tel.thermalSeconds = p.thermalSeconds;
            tel.stallSeconds = p.stallSeconds;
        }
        ++jobsDone;
        heartbeat.jobFinished();
        logEvent("worker", "job_done",
                 {LogField::num("job", job.id),
                  LogField::text("label", job.spec.label),
                  LogField::num("sim_s", tel.simSeconds),
                  LogField::num("restore_s", tel.restoreSeconds)});
        std::vector<uint8_t> reply =
            encodeResult(job.id, result, telem ? &tel : nullptr);
        std::lock_guard<std::mutex> sendLock(sendMu);
        if (!sendFrame(conn, reply)) {
            warn("worker: coordinator vanished before the result was "
                 "delivered");
            return false;
        }
    }
}

} // namespace

uint64_t
serveWorker(Socket &listener)
{
    uint64_t jobsDone = 0;
    for (;;) {
        Socket conn = tcpAccept(listener, -1);
        if (!conn.valid())
            continue;
        if (serveConnection(conn, jobsDone))
            return jobsDone;
    }
}

uint64_t
serveWorker(uint16_t port)
{
    Socket listener = tcpListen(port);
    if (!listener.valid())
        fatal("worker: cannot listen on port %u", port);
    inform("worker: serving on port %u", port);
    return serveWorker(listener);
}

bool
RemoteWorker::ensureConnected()
{
    if (state_ == State::Connected)
        return true;
    if (state_ == State::Dead)
        return false;
    state_ = State::Dead; // until the handshake proves otherwise
    sock_ = tcpConnect(ep_.host, ep_.port);
    if (!sock_.valid())
        return false;
    if (!sendFrame(sock_, helloFrame(FrameType::Hello))) {
        warn("worker %s: handshake send failed", ep_.str().c_str());
        return false;
    }
    std::vector<uint8_t> frame;
    RecvStatus st = recvFrame(sock_, frame, kHandshakeTimeoutMs);
    std::string why;
    uint32_t peerCaps = 0;
    if (st != RecvStatus::Ok ||
        !checkHello(frame, FrameType::HelloAck, why, &peerCaps)) {
        warn("worker %s: handshake failed: %s", ep_.str().c_str(),
             st == RecvStatus::Ok ? why.c_str() : "no HelloAck");
        return false;
    }
    caps_ = localCaps() & peerCaps;
    shippedSnapshots_.clear();
    state_ = State::Connected;
    logEvent("remote", "worker_connected",
             {LogField::text("worker", ep_.str()),
              LogField::num("caps", static_cast<uint64_t>(caps_))});
    return true;
}

bool
RemoteWorker::runJob(uint64_t id, const RunSpec &spec,
                     const SimSnapshot *snap, RunResult &out)
{
    if (!ensureConnected())
        return false;
    // Snapshot-by-reference: once a warm-up snapshot has been shipped
    // over this connection, later siblings of the same divergence
    // group send its content hash instead of its bytes.
    std::vector<uint8_t> jobFrame;
    uint64_t snapBytes = snap ? snap->bytes.size() : 0;
    if (snap && (caps_ & kCapSnapshotCache)) {
        uint64_t hash = fnv1a64(snap->bytes.data(), snap->bytes.size());
        if (shippedSnapshots_.count(hash)) {
            jobFrame = encodeJobRef(id, spec, hash);
            telemetry_.snapshotBytesSaved += snapBytes;
        } else {
            jobFrame = encodeJob(id, spec, snap);
            shippedSnapshots_.insert(hash);
            telemetry_.snapshotBytesSent += snapBytes;
        }
    } else {
        jobFrame = encodeJob(id, spec, snap);
        telemetry_.snapshotBytesSent += snapBytes;
    }
    if (!sendFrame(sock_, jobFrame)) {
        warn("worker %s lost (send failed); requeueing cell locally",
             ep_.str().c_str());
        state_ = State::Dead;
        return false;
    }
    std::vector<uint8_t> frame;
    for (;;) {
        RecvStatus st = recvFrame(sock_, frame, envRemoteTimeoutMs());
        if (st != RecvStatus::Ok) {
            warn("worker %s lost (%s); requeueing cell locally",
                 ep_.str().c_str(),
                 st == RecvStatus::Timeout ? "timed out"
                                           : "disconnected");
            state_ = State::Dead;
            return false;
        }
        if (!frame.empty() &&
            frame[0] == static_cast<uint8_t>(FrameType::Heartbeat)) {
            // Liveness, not results: fold and keep waiting. Each
            // heartbeat restarts the job timeout — a worker that still
            // beats is slow, not lost.
            HeartbeatInfo hb = decodeHeartbeat(frame);
            ++telemetry_.heartbeats;
            logEvent("remote", "heartbeat",
                     {LogField::text("worker", ep_.str()),
                      LogField::num("jobs_done", hb.jobsDone),
                      LogField::num("uptime_s", hb.uptimeSeconds),
                      LogField::text("label", hb.currentLabel)});
            continue;
        }
        break;
    }
    JobTelemetry tel;
    bool hasTel = false;
    if (frame.empty() ||
        frame[0] != static_cast<uint8_t>(FrameType::Result) ||
        decodeResult(frame, out, &tel, &hasTel) != id) {
        warn("worker %s answered out of protocol; requeueing cell "
             "locally",
             ep_.str().c_str());
        state_ = State::Dead;
        return false;
    }
    ++telemetry_.jobs;
    if (hasTel) {
        telemetry_.simSeconds += tel.simSeconds;
        telemetry_.restoreSeconds += tel.restoreSeconds;
        telemetry_.peakRssKb = std::max(telemetry_.peakRssKb,
                                        tel.peakRssKb);
        logEvent("remote", "job_telemetry",
                 {LogField::text("worker", ep_.str()),
                  LogField::num("job", id),
                  LogField::text("label", spec.label),
                  LogField::num("sim_s", tel.simSeconds),
                  LogField::num("restore_s", tel.restoreSeconds),
                  LogField::num("snapshot_bytes", tel.snapshotBytes),
                  LogField::flag("snapshot_cached",
                                 tel.snapshotFromCache),
                  LogField::num("rss_kb", tel.peakRssKb),
                  LogField::num("ticked_cycles", tel.tickedCycles),
                  LogField::num("stalled_cycles", tel.stalledCycles),
                  LogField::num("sensor_samples", tel.sensorSamples),
                  LogField::num("tick_s", tel.tickSeconds),
                  LogField::num("thermal_s", tel.thermalSeconds),
                  LogField::num("stall_s", tel.stallSeconds)});
    }
    return true;
}

void
RemoteWorker::sendShutdown()
{
    if (state_ != State::Connected)
        return;
    std::vector<uint8_t> bytes;
    StateWriter w(bytes);
    w.put<uint8_t>(static_cast<uint8_t>(FrameType::Shutdown));
    sendFrame(sock_, bytes);
    sock_.close();
    state_ = State::Fresh;
}

int
envRemoteTimeoutMs(int default_ms)
{
    const char *env = std::getenv("HS_REMOTE_TIMEOUT_MS");
    if (!env || !*env)
        return default_ms;
    char *end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v <= 0)
        fatal("HS_REMOTE_TIMEOUT_MS must be a positive integer, got "
              "'%s'",
              env);
    return static_cast<int>(v);
}

int
envHeartbeatMs(int default_ms)
{
    const char *env = std::getenv("HS_HEARTBEAT_MS");
    if (!env || !*env)
        return default_ms;
    char *end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v <= 0)
        fatal("HS_HEARTBEAT_MS must be a positive integer, got '%s'",
              env);
    return static_cast<int>(v);
}

bool
envTelemetry(bool default_on)
{
    const char *env = std::getenv("HS_TELEMETRY");
    if (!env || !*env)
        return default_on;
    if (std::strcmp(env, "0") == 0)
        return false;
    if (std::strcmp(env, "1") == 0)
        return true;
    fatal("HS_TELEMETRY must be 0 or 1, got '%s'", env);
}

} // namespace hs
