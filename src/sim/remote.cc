#include "sim/remote.hh"

#include <cstdlib>

#include "common/fault.hh"
#include "common/log.hh"
#include "common/state_buffer.hh"
#include "sim/runner.hh"
#include "sim/serialize.hh"

namespace hs {

bool
parseEndpoints(const std::string &list, std::vector<Endpoint> &out)
{
    out.clear();
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        std::string item =
            list.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        size_t colon = item.rfind(':');
        if (colon == std::string::npos || colon == 0)
            return false;
        std::string host = item.substr(0, colon);
        std::string port = item.substr(colon + 1);
        char *end = nullptr;
        long p = std::strtol(port.c_str(), &end, 10);
        if (end == port.c_str() || *end != '\0' || p < 1 || p > 65535)
            return false;
        out.push_back({host, static_cast<uint16_t>(p)});
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return !out.empty();
}

std::vector<uint8_t>
encodeHello(FrameType type)
{
    std::vector<uint8_t> bytes;
    StateWriter w(bytes);
    w.put<uint8_t>(static_cast<uint8_t>(type));
    w.put<uint32_t>(kRemoteMagic);
    w.put<uint32_t>(kRemoteProtocolVersion);
    w.put<uint32_t>(kResultFormatVersion);
    return bytes;
}

bool
checkHello(const std::vector<uint8_t> &frame, FrameType expected,
           std::string &why)
{
    if (frame.size() != 1 + 3 * sizeof(uint32_t)) {
        why = "malformed handshake frame";
        return false;
    }
    StateReader r(frame);
    if (r.get<uint8_t>() != static_cast<uint8_t>(expected)) {
        why = "unexpected frame type in handshake";
        return false;
    }
    if (r.get<uint32_t>() != kRemoteMagic) {
        why = "not a heat-stroke peer (bad magic)";
        return false;
    }
    if (r.get<uint32_t>() != kRemoteProtocolVersion) {
        why = "protocol version mismatch";
        return false;
    }
    if (r.get<uint32_t>() != kResultFormatVersion) {
        why = "result-format version mismatch (rebuild the peer)";
        return false;
    }
    return true;
}

std::vector<uint8_t>
encodeJob(uint64_t id, const RunSpec &spec, const SimSnapshot *snap)
{
    std::vector<uint8_t> bytes;
    StateWriter w(bytes);
    w.put<uint8_t>(static_cast<uint8_t>(FrameType::Job));
    w.put<uint64_t>(id);
    saveRunSpec(w, spec);
    w.put<uint8_t>(snap ? 1 : 0);
    if (snap) {
        w.put<uint64_t>(snap->cycle);
        w.putVec(snap->bytes);
    }
    return bytes;
}

RemoteJob
decodeJob(const std::vector<uint8_t> &frame)
{
    StateReader r(frame);
    if (r.get<uint8_t>() != static_cast<uint8_t>(FrameType::Job))
        fatal("decodeJob: not a Job frame");
    RemoteJob job;
    job.id = r.get<uint64_t>();
    job.spec = loadRunSpec(r);
    job.hasSnapshot = r.get<uint8_t>() != 0;
    if (job.hasSnapshot) {
        job.snapshot.cycle = r.get<uint64_t>();
        r.getVec(job.snapshot.bytes);
    }
    if (!r.done())
        fatal("decodeJob: trailing bytes");
    return job;
}

std::vector<uint8_t>
encodeResult(uint64_t id, const RunResult &result)
{
    std::vector<uint8_t> bytes;
    StateWriter w(bytes);
    w.put<uint8_t>(static_cast<uint8_t>(FrameType::Result));
    w.put<uint64_t>(id);
    saveRunResult(w, result);
    return bytes;
}

uint64_t
decodeResult(const std::vector<uint8_t> &frame, RunResult &out)
{
    StateReader r(frame);
    if (r.get<uint8_t>() != static_cast<uint8_t>(FrameType::Result))
        fatal("decodeResult: not a Result frame");
    uint64_t id = r.get<uint64_t>();
    out = loadRunResult(r);
    if (!r.done())
        fatal("decodeResult: trailing bytes");
    return id;
}

namespace {

/// Handshakes should complete immediately; a peer that stalls for 10 s
/// is not a healthy peer.
constexpr int kHandshakeTimeoutMs = 10000;

/** The handshake frame, with a byte flipped when chaos asks for it. */
std::vector<uint8_t>
helloFrame(FrameType type)
{
    std::vector<uint8_t> frame = encodeHello(type);
    if (faultFire("handshake_garbage"))
        frame[1] ^= 0xff; // first magic byte: the peer must refuse
    return frame;
}

/** Serve one coordinator connection. @return true on Shutdown. */
bool
serveConnection(Socket &conn, uint64_t &jobsDone)
{
    std::vector<uint8_t> frame;
    RecvStatus st = recvFrame(conn, frame, kHandshakeTimeoutMs);
    std::string why;
    if (st != RecvStatus::Ok ||
        !checkHello(frame, FrameType::Hello, why)) {
        warn("worker: refusing coordinator: %s",
             st == RecvStatus::Ok ? why.c_str() : "no Hello frame");
        return false;
    }
    if (!sendFrame(conn, helloFrame(FrameType::HelloAck)))
        return false;
    inform("worker: coordinator connected");

    for (;;) {
        // Between jobs a worker waits indefinitely: idle is normal.
        st = recvFrame(conn, frame, -1);
        if (st == RecvStatus::Eof) {
            inform("worker: coordinator disconnected");
            return false;
        }
        if (st != RecvStatus::Ok || frame.empty()) {
            warn("worker: dropping broken coordinator connection");
            return false;
        }
        FrameType type = static_cast<FrameType>(frame[0]);
        if (type == FrameType::Shutdown) {
            inform("worker: shutdown requested");
            return true;
        }
        if (type != FrameType::Job) {
            warn("worker: unexpected frame type %u; dropping "
                 "connection",
                 static_cast<unsigned>(frame[0]));
            return false;
        }
        RemoteJob job = decodeJob(frame);
        inform("worker: job %llu '%s'%s",
               static_cast<unsigned long long>(job.id),
               job.spec.label.c_str(),
               job.hasSnapshot ? " (forking from shipped prefix)" : "");
        if (faultFire("worker_crash")) {
            // The whole point of this site is that the process is
            // gone before the Result frame exists: the coordinator
            // must requeue the cell, not wait on it.
            warn("worker: injected crash before job %llu completes",
                 static_cast<unsigned long long>(job.id));
            std::_Exit(3);
        }
        RunResult result =
            job.hasSnapshot ? executeFromSnapshot(job.spec, job.snapshot)
                            : executeRunSpec(job.spec);
        ++jobsDone;
        if (!sendFrame(conn, encodeResult(job.id, result))) {
            warn("worker: coordinator vanished before the result was "
                 "delivered");
            return false;
        }
    }
}

} // namespace

uint64_t
serveWorker(Socket &listener)
{
    uint64_t jobsDone = 0;
    for (;;) {
        Socket conn = tcpAccept(listener, -1);
        if (!conn.valid())
            continue;
        if (serveConnection(conn, jobsDone))
            return jobsDone;
    }
}

uint64_t
serveWorker(uint16_t port)
{
    Socket listener = tcpListen(port);
    if (!listener.valid())
        fatal("worker: cannot listen on port %u", port);
    inform("worker: serving on port %u", port);
    return serveWorker(listener);
}

bool
RemoteWorker::ensureConnected()
{
    if (state_ == State::Connected)
        return true;
    if (state_ == State::Dead)
        return false;
    state_ = State::Dead; // until the handshake proves otherwise
    sock_ = tcpConnect(ep_.host, ep_.port);
    if (!sock_.valid())
        return false;
    if (!sendFrame(sock_, helloFrame(FrameType::Hello))) {
        warn("worker %s: handshake send failed", ep_.str().c_str());
        return false;
    }
    std::vector<uint8_t> frame;
    RecvStatus st = recvFrame(sock_, frame, kHandshakeTimeoutMs);
    std::string why;
    if (st != RecvStatus::Ok ||
        !checkHello(frame, FrameType::HelloAck, why)) {
        warn("worker %s: handshake failed: %s", ep_.str().c_str(),
             st == RecvStatus::Ok ? why.c_str() : "no HelloAck");
        return false;
    }
    state_ = State::Connected;
    return true;
}

bool
RemoteWorker::runJob(uint64_t id, const RunSpec &spec,
                     const SimSnapshot *snap, RunResult &out)
{
    if (!ensureConnected())
        return false;
    if (!sendFrame(sock_, encodeJob(id, spec, snap))) {
        warn("worker %s lost (send failed); requeueing cell locally",
             ep_.str().c_str());
        state_ = State::Dead;
        return false;
    }
    std::vector<uint8_t> frame;
    RecvStatus st = recvFrame(sock_, frame, envRemoteTimeoutMs());
    if (st != RecvStatus::Ok) {
        warn("worker %s lost (%s); requeueing cell locally",
             ep_.str().c_str(),
             st == RecvStatus::Timeout ? "timed out" : "disconnected");
        state_ = State::Dead;
        return false;
    }
    if (frame.empty() ||
        frame[0] != static_cast<uint8_t>(FrameType::Result) ||
        decodeResult(frame, out) != id) {
        warn("worker %s answered out of protocol; requeueing cell "
             "locally",
             ep_.str().c_str());
        state_ = State::Dead;
        return false;
    }
    return true;
}

void
RemoteWorker::sendShutdown()
{
    if (state_ != State::Connected)
        return;
    std::vector<uint8_t> bytes;
    StateWriter w(bytes);
    w.put<uint8_t>(static_cast<uint8_t>(FrameType::Shutdown));
    sendFrame(sock_, bytes);
    sock_.close();
    state_ = State::Fresh;
}

int
envRemoteTimeoutMs(int default_ms)
{
    const char *env = std::getenv("HS_REMOTE_TIMEOUT_MS");
    if (!env || !*env)
        return default_ms;
    char *end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v <= 0)
        fatal("HS_REMOTE_TIMEOUT_MS must be a positive integer, got "
              "'%s'",
              env);
    return static_cast<int>(v);
}

} // namespace hs
