#include "sim/run_spec.hh"

#include <cstdio>

#include "common/log.hh"

namespace hs {

WorkloadSpec
WorkloadSpec::spec(std::string name)
{
    WorkloadSpec w;
    w.kind = Kind::Spec;
    w.name = std::move(name);
    return w;
}

WorkloadSpec
WorkloadSpec::maliciousVariant(int which)
{
    if (which < 1 || which > 4)
        fatal("WorkloadSpec: malicious variant must be 1..4, got %d",
              which);
    WorkloadSpec w;
    w.kind = Kind::Variant;
    w.name = "variant" + std::to_string(which);
    w.variant = which;
    return w;
}

WorkloadSpec
WorkloadSpec::assembly(std::string label, std::string text)
{
    WorkloadSpec w;
    w.kind = Kind::Asm;
    w.name = std::move(label);
    w.asmText = std::move(text);
    return w;
}

namespace {

void
appendNum(std::string &out, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

const char *
sinkName(SinkType s)
{
    return s == SinkType::Ideal ? "ideal" : "real";
}

} // namespace

std::string
RunSpec::canonicalKey() const
{
    return buildKey(true);
}

std::string
RunSpec::divergenceKey() const
{
    return buildKey(false);
}

std::string
RunSpec::buildKey(bool with_policy) const
{
    std::string key;
    key.reserve(160);
    key += "ts=";
    appendNum(key, opts.timeScale);
    key += ";sink=";
    key += sinkName(opts.sink);
    if (with_policy) {
        key += ";dtm=";
        key += dtmModeName(opts.dtm);
    }
    key += ";conv=";
    appendNum(key, opts.convectionR);
    if (with_policy) {
        key += ";upper=";
        appendNum(key, opts.upperThreshold);
        key += ";lower=";
        appendNum(key, opts.lowerThreshold);
    }
    key += ";usage=";
    key += opts.sedationUsageThreshold ? '1' : '0';
    key += ";trace=";
    key += opts.recordTempTrace ? '1' : '0';
    key += ";etrace=";
    key += traceEvents ? '1' : '0';
    key += ";nthreads=";
    key += std::to_string(numThreads);
    key += ";shrink=";
    appendNum(key, dieShrink);
    key += ";noise=";
    appendNum(key, sensorNoiseK);
    if (with_policy) {
        key += ";desched=";
        key += std::to_string(descheduleAfter);
    }
    if (numCores > 1) {
        // Emitted only off the single-core default so every
        // pre-topology key (and its FNV hash) is unchanged.
        key += ";cores=";
        key += std::to_string(numCores);
        key += ";place=";
        for (size_t i = 0; i < placement.size(); ++i) {
            if (i)
                key += ',';
            key += std::to_string(placement[i]);
        }
    }
    for (const WorkloadSpec &w : workloads) {
        key += '|';
        switch (w.kind) {
          case WorkloadSpec::Kind::Spec:
            key += "spec:";
            key += w.name;
            break;
          case WorkloadSpec::Kind::Variant:
            key += "variant:";
            key += std::to_string(w.variant);
            break;
          case WorkloadSpec::Kind::Asm:
            key += "asm:";
            // The program text, not the label, determines behaviour.
            key += w.asmText;
            break;
        }
    }
    return key;
}

uint64_t
RunSpec::hash() const
{
    // FNV-1a, 64-bit.
    uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : canonicalKey()) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

RunSpec
RunSpec::withLabel(std::string l) const
{
    RunSpec s = *this;
    s.label = std::move(l);
    return s;
}

RunSpec
RunSpec::withDtm(DtmMode mode) const
{
    RunSpec s = *this;
    s.opts.dtm = mode;
    return s;
}

RunSpec
RunSpec::withSink(SinkType sink) const
{
    RunSpec s = *this;
    s.opts.sink = sink;
    return s;
}

RunSpec
RunSpec::withTraceEvents(bool on) const
{
    RunSpec s = *this;
    s.traceEvents = on;
    return s;
}

RunSpec
RunSpec::withTopology(int cores, std::vector<int> place) const
{
    RunSpec s = *this;
    s.numCores = cores;
    s.placement = std::move(place);
    return s;
}

RunSpec
soloSpec(const std::string &name, const ExperimentOptions &opts)
{
    RunSpec s;
    s.workloads.push_back(WorkloadSpec::spec(name));
    s.opts = opts;
    s.label = name;
    return s;
}

RunSpec
maliciousSoloSpec(int variant, const ExperimentOptions &opts)
{
    RunSpec s;
    s.workloads.push_back(WorkloadSpec::maliciousVariant(variant));
    s.opts = opts;
    s.label = "variant" + std::to_string(variant);
    return s;
}

RunSpec
withVariantSpec(const std::string &name, int variant,
                const ExperimentOptions &opts)
{
    RunSpec s;
    s.workloads.push_back(WorkloadSpec::spec(name));
    s.workloads.push_back(WorkloadSpec::maliciousVariant(variant));
    s.opts = opts;
    s.label = name + "+variant" + std::to_string(variant);
    return s;
}

RunSpec
specPairSpec(const std::string &a, const std::string &b,
             const ExperimentOptions &opts)
{
    RunSpec s;
    s.workloads.push_back(WorkloadSpec::spec(a));
    s.workloads.push_back(WorkloadSpec::spec(b));
    s.opts = opts;
    s.label = a + "+" + b;
    return s;
}

} // namespace hs
