#include "sim/status.hh"

#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "common/log.hh"

namespace hs {

StatusServer::StatusServer(uint16_t port,
                           std::function<std::string()> snapshot)
    : snapshot_(std::move(snapshot))
{
    listener_ = tcpListen(port);
    if (!listener_.valid())
        fatal("status: cannot listen on port %u", port);
    port_ = localPort(listener_);
    inform("status: serving counters on port %u", port_);
    logEvent("status", "listening", {LogField::num("port", port_)});
    thread_ = std::thread([this] { serveLoop(); });
}

StatusServer::~StatusServer()
{
    stop_.store(true);
    if (thread_.joinable())
        thread_.join();
}

void
StatusServer::serveLoop()
{
    while (!stop_.load()) {
        // Short accept timeout so stop_ is honoured promptly.
        Socket conn = tcpAccept(listener_, 200);
        if (!conn.valid())
            continue;
        // Drain whatever request line arrived (we answer anything),
        // then write one complete HTTP/1.0 response and close. The
        // version=0.0.4 content type is the Prometheus text format.
        char buf[1024];
        (void)::recv(conn.fd(), buf, sizeof(buf), MSG_DONTWAIT);
        std::string body = snapshot_ ? snapshot_() : std::string();
        std::string resp =
            "HTTP/1.0 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4\r\n"
            "Content-Length: " + std::to_string(body.size()) + "\r\n"
            "Connection: close\r\n\r\n" + body;
        size_t off = 0;
        while (off < resp.size()) {
            ssize_t n = ::send(conn.fd(), resp.data() + off,
                               resp.size() - off, MSG_NOSIGNAL);
            if (n <= 0)
                break;
            off += static_cast<size_t>(n);
        }
    }
}

uint16_t
envStatusPort()
{
    const char *env = std::getenv("HS_STATUS_PORT");
    if (!env || !*env)
        return 0;
    char *end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || v < 1 || v > 65535)
        fatal("HS_STATUS_PORT must be a port number (1..65535), got "
              "'%s'",
              env);
    return static_cast<uint16_t>(v);
}

} // namespace hs
