#include "sim/batch.hh"

#include <cstdio>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/blocks.hh"
#include "common/log.hh"
#include "core/sedation.hh"
#include "core/usage_monitor.hh"
#include "sim/result_store.hh"
#include "sim/runner.hh"
#include "sim/simulator.hh"
#include "thermal/thermal_model.hh"

namespace hs {
namespace {

/// Sensor samples between batch snapshots (same trailing distance as
/// the prefix engine's kPrefixStrideSamples).
constexpr Cycles kBatchStrideSamples = 4;

/** One policy variant inside a scout: a distinct canonical key and
 *  the spec indices that share it. */
struct Lane
{
    SimConfig cfg;               ///< full config (policy thresholds)
    std::vector<size_t> members; ///< indices into the spec matrix
    bool peeled = false;
    std::shared_ptr<const SimSnapshot> fork; ///< null = run cold
};

/** One lockstep scout: a neutralised simulator advancing the shared
 *  history of up to batchWidth_ lanes. */
struct Scout
{
    std::unique_ptr<Simulator> sim;
    std::vector<Lane> lanes;
    std::shared_ptr<const SimSnapshot> cur; ///< latest stride snapshot
    Cycles samplesSinceSave = 0;
    bool active = false;
    Simulator::ScoutChunk chunk = Simulator::ScoutChunk::End;
    std::string thermalKey; ///< cohort key for multi-RHS stepping
};

/** Scouts whose thermal networks were built from identical parameters
 *  may share one multi-RHS pass (ThermalModel::stepBatch contract).
 *  dt depends on sensorInterval and the clock, so key those too. */
std::string
thermalKeyOf(const SimConfig &cfg)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "%.17g;%.17g;%d;%.17g;%llu;%.17g",
                  cfg.thermal.timeScale, cfg.thermal.convectionR,
                  cfg.thermal.idealSink ? 1 : 0, cfg.thermal.dieShrink,
                  static_cast<unsigned long long>(cfg.sensorInterval),
                  cfg.energy.frequencyHz);
    return buf;
}

/**
 * Could @p cfg 's DTM stack act — or emit a trace event — at the
 * sensor sample @p scout just finished? Policies are strict no-ops
 * while disengaged and under their trigger, and no lane is ever
 * engaged before it peels, so only the engage conditions matter.
 * Conservative by construction: peeling early costs a few shared
 * cycles, peeling late would break bit-identity.
 */
bool
laneWouldAct(const SimConfig &cfg, Simulator &scout)
{
    Kelvin obs = scout.lastObservedMax();
    // Every mode but None carries the stop-and-go safety net.
    bool safety_net = obs >= cfg.stopAndGo.triggerTemp;
    switch (cfg.dtm) {
      case DtmMode::None:
        return false;
      case DtmMode::StopAndGo:
        return safety_net;
      case DtmMode::SelectiveSedation: {
        if (safety_net)
            return true;
        // Thermal trigger; >= upper also covers the SedUpperCross
        // trace emitted at the crossing even when no culprit can be
        // sedated.
        if (!cfg.sedation.useUsageThreshold)
            return obs >= cfg.sedation.upperThreshold;
        // Usage ablation: mirror the trigger scan against the scout's
        // own monitor, which (below any trigger) evolved identically
        // to the lane's. Pre-peel nothing is sedated, so the policy's
        // !isSedated() filter is vacuous here.
        const SelectiveSedation *sed = scout.sedationPolicy(0);
        if (sed == nullptr)
            fatal("BatchRunner: scout lost its sedation monitor");
        const UsageMonitor &mon = sed->monitor();
        int nt = scout.numThreads();
        for (ThreadId t = 0; t < nt; ++t) {
            if (!scout.threadActive(t))
                continue;
            for (int b = 0; b < numBlocks; ++b)
                if (mon.weightedAvg(t, blockFromIndex(b)) >=
                    cfg.sedation.usageThreshold)
                    return true;
        }
        return false;
      }
      case DtmMode::DvfsThrottle:
        return safety_net || obs >= cfg.dvfs.triggerTemp;
      case DtmMode::FetchGating:
        return safety_net || obs >= cfg.fetchGating.triggerTemp;
    }
    return true; // unreachable; peel (always safe) if it ever isn't
}

} // namespace

BatchRunner::BatchRunner(int batch_width, ResultStore *store)
    : batchWidth_(batch_width), store_(store)
{
    if (batch_width < 2)
        fatal("BatchRunner: batch width must be >= 2, got %d",
              batch_width);
}

std::vector<std::shared_ptr<const SimSnapshot>>
BatchRunner::buildForkSnapshots(const std::vector<RunSpec> &specs,
                                std::vector<char> &handled)
{
    std::vector<std::shared_ptr<const SimSnapshot>> snaps(specs.size());
    handled.assign(specs.size(), 0);

    // Group cells by shared history, preserving first-seen order so
    // scout construction (and with it every fork) is deterministic.
    struct Group
    {
        std::vector<size_t> members;
    };
    std::vector<Group> groups;
    std::unordered_map<std::string, size_t> gindex;
    for (size_t i = 0; i < specs.size(); ++i) {
        auto [it, fresh] =
            gindex.emplace(specs[i].divergenceKey(), groups.size());
        if (fresh)
            groups.emplace_back();
        groups[it->second].members.push_back(i);
    }

    // Build scouts: one lane per distinct fresh canonical key, chunked
    // into scouts of at most batchWidth_ lanes.
    std::vector<Scout> scouts;
    for (Group &g : groups) {
        const RunSpec &rep = specs[g.members.front()];
        if (rep.numCores > 1)
            continue; // multi-core batching deferred → prefix/solo
        std::vector<Lane> lanes;
        std::unordered_map<std::string, size_t> lindex;
        for (size_t i : g.members) {
            std::string key = specs[i].canonicalKey();
            auto it = lindex.find(key);
            if (it == lindex.end()) {
                if (store_ != nullptr && store_->available(specs[i]))
                    continue; // cached lanes need no fork snapshot
                it = lindex.emplace(std::move(key), lanes.size()).first;
                Lane lane;
                lane.cfg = runSpecConfig(specs[i]);
                lanes.push_back(std::move(lane));
            }
            lanes[it->second].members.push_back(i);
        }
        if (lanes.size() < 2)
            continue; // a scout only pays for itself with >= 2 lanes
        for (size_t i : g.members)
            handled[i] = 1;
        ++stats_.groups;
        stats_.lanes += lanes.size();
        for (size_t base = 0; base < lanes.size();
             base += static_cast<size_t>(batchWidth_)) {
            size_t end = std::min(
                base + static_cast<size_t>(batchWidth_), lanes.size());
            Scout s;
            s.lanes.assign(std::make_move_iterator(lanes.begin() +
                                                   static_cast<long>(base)),
                           std::make_move_iterator(lanes.begin() +
                                                   static_cast<long>(end)));
            s.sim = makePrefixSimulator(
                specs[s.lanes.front().members.front()]);
            s.thermalKey = thermalKeyOf(s.lanes.front().cfg);
            scouts.push_back(std::move(s));
        }
    }
    if (scouts.empty())
        return snaps;

    // A scout is done: account its cycles and hand every lane its
    // fork. Lanes still riding fork from the latest stride snapshot
    // (the forced last-boundary save when the quantum ran out, the
    // pre-halt snapshot when the machine drained). A null fork means
    // the lane runs cold.
    auto finish = [&](Scout &s) {
        stats_.scoutCycles += s.sim->pipeline(0).cycle();
        for (Lane &lane : s.lanes) {
            if (!lane.peeled) {
                lane.fork = s.cur;
                ++stats_.riddenLanes;
            }
            if (lane.fork) {
                stats_.savedCycles += lane.fork->cycle;
                for (size_t i : lane.members)
                    snaps[i] = lane.fork;
            }
        }
    };

    // The lockstep driver: advance every scout to its next sensor
    // boundary, cohort same-shape thermal networks through one
    // multi-RHS pass, then peel/save per scout.
    for (Scout &s : scouts) {
        s.sim->beginScout();
        s.active = true;
    }
    size_t active = scouts.size();
    ThermalBatchScratch scratch;
    std::vector<Scout *> sampling;
    std::vector<ThermalModel *> models;
    std::vector<const std::vector<Watts> *> powers;
    std::vector<size_t> cohort;
    std::vector<char> done;

    while (active > 0) {
        sampling.clear();
        for (Scout &s : scouts) {
            if (!s.active)
                continue;
            s.chunk = s.sim->runScoutChunk();
            if (s.chunk == Simulator::ScoutChunk::AtSensor)
                sampling.push_back(&s);
        }

        // Multi-RHS thermal step per cohort of compatible scouts.
        done.assign(sampling.size(), 0);
        for (size_t i = 0; i < sampling.size(); ++i) {
            if (done[i])
                continue;
            cohort.clear();
            models.clear();
            powers.clear();
            for (size_t j = i; j < sampling.size(); ++j) {
                if (done[j] ||
                    sampling[j]->thermalKey != sampling[i]->thermalKey)
                    continue;
                done[j] = 1;
                cohort.push_back(j);
                models.push_back(&sampling[j]->sim->thermal());
                powers.push_back(&sampling[j]->sim->pendingThermalPower());
            }
            ThermalModel::stepBatch(models, powers,
                                    sampling[i]->sim->sensorDt(),
                                    scratch);
            ++stats_.thermalBatchSteps;
            stats_.thermalBatchLanes += models.size();
            for (size_t j : cohort)
                sampling[j]->sim->finishSensorSample();
        }

        for (Scout &s : scouts) {
            if (!s.active)
                continue;
            if (s.chunk != Simulator::ScoutChunk::AtSensor) {
                finish(s);
                s.active = false;
                --active;
                continue;
            }
            // Peel lanes whose policy could have acted at this sample
            // — strictly before this boundary's save, so every fork
            // precedes the lane's first possible action.
            bool all_peeled = true;
            for (Lane &lane : s.lanes) {
                if (lane.peeled)
                    continue;
                if (laneWouldAct(lane.cfg, *s.sim)) {
                    lane.peeled = true;
                    lane.fork = s.cur;
                    ++stats_.peeledLanes;
                } else {
                    all_peeled = false;
                }
            }
            if (s.sim->machineHalted() || all_peeled) {
                finish(s);
                s.active = false;
                --active;
                continue;
            }
            ++s.samplesSinceSave;
            const SimConfig &cfg = s.sim->config();
            bool last_boundary =
                cfg.quantumCycles - s.sim->pipeline(0).cycle() <
                cfg.sensorInterval;
            if (s.samplesSinceSave >= kBatchStrideSamples ||
                last_boundary) {
                // A fresh snapshot per save: peeled lanes keep
                // pointers to the boundary they peeled at.
                auto snap = std::make_shared<SimSnapshot>();
                s.sim->save(*snap);
                s.cur = std::move(snap);
                s.samplesSinceSave = 0;
            }
        }
    }
    return snaps;
}

} // namespace hs
