#include "sim/manifest.hh"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "common/log.hh"
#include "sim/disk_store.hh"
#include "sim/serialize.hh"

namespace hs {

namespace {

constexpr uint32_t kManifestMagic = 0x314d5348; // "HSM1", little-endian
constexpr uint32_t kManifestVersion = 1;

/** Fixed-size manifest header; the cell hash array follows it. */
struct ManifestHeader
{
    uint32_t magic = kManifestMagic;
    uint32_t version = kManifestVersion;
    uint64_t matrixHash = 0;
    uint64_t cellCount = 0;
};

/** RAII stdio handle so every early return closes the file. */
struct File
{
    std::FILE *f = nullptr;
    explicit File(std::FILE *fp) : f(fp) {}
    ~File()
    {
        if (f)
            std::fclose(f);
    }
};

uint64_t
cellsChecksum(const std::vector<uint64_t> &cells)
{
    return fnv1a64(reinterpret_cast<const uint8_t *>(cells.data()),
                   cells.size() * sizeof(uint64_t));
}

} // namespace

uint64_t
matrixHash(const std::vector<RunSpec> &specs)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (const RunSpec &spec : specs) {
        uint64_t cell = spec.hash();
        h = fnv1a64(reinterpret_cast<const uint8_t *>(&cell),
                    sizeof(cell), h);
    }
    return h;
}

CampaignManifest
makeManifest(const std::vector<RunSpec> &specs)
{
    CampaignManifest m;
    m.cells.reserve(specs.size());
    for (const RunSpec &spec : specs)
        m.cells.push_back(spec.hash());
    m.matrixHash = matrixHash(specs);
    return m;
}

bool
saveManifest(const std::string &path, const CampaignManifest &m)
{
    ManifestHeader hdr;
    hdr.matrixHash = m.matrixHash;
    hdr.cellCount = m.cells.size();
    uint64_t checksum = cellsChecksum(m.cells);

    // Same publication protocol as .hsr records: a hidden per-process
    // temp name in the target directory plus rename(), so a restart
    // racing a dying coordinator never reads a half-written manifest.
    size_t slash = path.rfind('/');
    std::string tmp =
        (slash == std::string::npos ? std::string()
                                    : path.substr(0, slash + 1)) +
        ".tmp." + std::to_string(::getpid()) + "." +
        path.substr(slash == std::string::npos ? 0 : slash + 1);
    {
        File file(std::fopen(tmp.c_str(), "wb"));
        if (!file.f) {
            warn("manifest: cannot write '%s': %s", tmp.c_str(),
                 std::strerror(errno));
            logEvent("manifest", "write_failed", LogSeverity::Warn,
                     {LogField::text("path", tmp)});
            return false;
        }
        bool ok =
            std::fwrite(&hdr, sizeof(hdr), 1, file.f) == 1 &&
            (m.cells.empty() ||
             std::fwrite(m.cells.data(), sizeof(uint64_t),
                         m.cells.size(), file.f) == m.cells.size()) &&
            std::fwrite(&checksum, sizeof(checksum), 1, file.f) == 1 &&
            std::fflush(file.f) == 0;
        if (!ok) {
            warn("manifest: short write to '%s': %s", tmp.c_str(),
                 std::strerror(errno));
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("manifest: cannot publish '%s': %s", path.c_str(),
             std::strerror(errno));
        logEvent("manifest", "publish_failed", LogSeverity::Warn,
                 {LogField::text("path", path)});
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

ManifestStatus
loadManifest(const std::string &path, CampaignManifest &out)
{
    File file(std::fopen(path.c_str(), "rb"));
    if (!file.f)
        return ManifestStatus::None;

    auto reject = [&](const char *why) {
        warn("manifest: ignoring '%s' (%s)", path.c_str(), why);
        logEvent("manifest", "manifest_corrupt", LogSeverity::Warn,
                 {LogField::text("path", path),
                  LogField::text("why", why)});
        return ManifestStatus::Corrupt;
    };

    ManifestHeader hdr;
    if (std::fread(&hdr, sizeof(hdr), 1, file.f) != 1)
        return reject("truncated header");
    if (hdr.magic != kManifestMagic)
        return reject("bad magic");
    if (hdr.version != kManifestVersion)
        return reject("manifest version mismatch");
    // 16M cells ~ 128 MiB of hashes: far beyond any real campaign, and
    // a corrupt count must not drive a giant allocation.
    if (hdr.cellCount > (1ull << 24))
        return reject("implausible cell count");

    std::vector<uint64_t> cells(static_cast<size_t>(hdr.cellCount));
    if (!cells.empty() &&
        std::fread(cells.data(), sizeof(uint64_t), cells.size(),
                   file.f) != cells.size())
        return reject("truncated cell list");
    uint64_t checksum = 0;
    if (std::fread(&checksum, sizeof(checksum), 1, file.f) != 1)
        return reject("truncated checksum");
    if (std::fgetc(file.f) != EOF)
        return reject("trailing bytes");
    if (checksum != cellsChecksum(cells))
        return reject("cell list checksum mismatch");

    // Internal consistency: the header's matrix hash must re-derive
    // from the cell list it rode in with.
    uint64_t h = 0xcbf29ce484222325ull;
    for (uint64_t cell : cells)
        h = fnv1a64(reinterpret_cast<const uint8_t *>(&cell),
                    sizeof(cell), h);
    if (h != hdr.matrixHash)
        return reject("matrix hash mismatch");

    out.matrixHash = hdr.matrixHash;
    out.cells = std::move(cells);
    return ManifestStatus::Ok;
}

std::string
manifestPath(const std::string &dir)
{
    return dir + "/manifest.hsm";
}

CampaignResume
prepareCampaign(DiskResultStore &store,
                const std::vector<RunSpec> &specs)
{
    CampaignManifest fresh = makeManifest(specs);
    const std::string path = manifestPath(store.dir());

    CampaignResume res;
    res.totalCells = specs.size();

    CampaignManifest prev;
    switch (loadManifest(path, prev)) {
      case ManifestStatus::Ok:
        if (prev.matrixHash == fresh.matrixHash) {
            res.resumed = true;
        } else {
            // Not an error: one store may serve many campaigns. The
            // manifest simply follows the most recent one.
            warn("manifest: store '%s' last served a different "
                 "campaign (%zu cells); starting this one",
                 store.dir().c_str(), prev.cells.size());
            logEvent("manifest", "campaign_switch", LogSeverity::Warn,
                     {LogField::text("store", store.dir()),
                      LogField::num("prev_cells",
                                    (uint64_t)prev.cells.size())});
        }
        break;
      case ManifestStatus::Corrupt:
        break; // already warned; replace it
      case ManifestStatus::None:
        break;
    }

    for (const RunSpec &spec : specs)
        if (store.contains(spec))
            ++res.storedCells;

    saveManifest(path, fresh);
    return res;
}

} // namespace hs
