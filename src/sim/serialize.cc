#include "sim/serialize.hh"

namespace hs {

uint64_t
fnv1a64(const uint8_t *data, size_t size, uint64_t seed)
{
    uint64_t h = seed;
    for (size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

void
saveRunSpec(StateWriter &w, const RunSpec &spec)
{
    w.putTag(stateTag("SPEC"));
    w.put<uint64_t>(spec.workloads.size());
    for (const WorkloadSpec &wl : spec.workloads) {
        w.put<uint8_t>(static_cast<uint8_t>(wl.kind));
        w.putString(wl.name);
        w.put<int32_t>(wl.variant);
        w.putString(wl.asmText);
    }
    w.put<double>(spec.opts.timeScale);
    w.put<uint8_t>(static_cast<uint8_t>(spec.opts.sink));
    w.put<uint8_t>(static_cast<uint8_t>(spec.opts.dtm));
    w.put<double>(spec.opts.convectionR);
    w.put<double>(spec.opts.upperThreshold);
    w.put<double>(spec.opts.lowerThreshold);
    w.put<uint8_t>(spec.opts.sedationUsageThreshold ? 1 : 0);
    w.put<uint8_t>(spec.opts.recordTempTrace ? 1 : 0);
    w.put<int32_t>(spec.numThreads);
    w.put<double>(spec.dieShrink);
    w.put<double>(spec.sensorNoiseK);
    w.put<int32_t>(spec.descheduleAfter);
    w.put<uint8_t>(spec.traceEvents ? 1 : 0);
    w.put<int32_t>(spec.numCores);
    w.putVec(spec.placement);
    w.putString(spec.label);
}

RunSpec
loadRunSpec(StateReader &r)
{
    r.expectTag(stateTag("SPEC"), "RunSpec");
    RunSpec spec;
    uint64_t n = r.get<uint64_t>();
    spec.workloads.resize(static_cast<size_t>(n));
    for (WorkloadSpec &wl : spec.workloads) {
        wl.kind = static_cast<WorkloadSpec::Kind>(r.get<uint8_t>());
        wl.name = r.getString();
        wl.variant = r.get<int32_t>();
        wl.asmText = r.getString();
    }
    spec.opts.timeScale = r.get<double>();
    spec.opts.sink = static_cast<SinkType>(r.get<uint8_t>());
    spec.opts.dtm = static_cast<DtmMode>(r.get<uint8_t>());
    spec.opts.convectionR = r.get<double>();
    spec.opts.upperThreshold = r.get<double>();
    spec.opts.lowerThreshold = r.get<double>();
    spec.opts.sedationUsageThreshold = r.get<uint8_t>() != 0;
    spec.opts.recordTempTrace = r.get<uint8_t>() != 0;
    spec.numThreads = r.get<int32_t>();
    spec.dieShrink = r.get<double>();
    spec.sensorNoiseK = r.get<double>();
    spec.descheduleAfter = r.get<int32_t>();
    spec.traceEvents = r.get<uint8_t>() != 0;
    spec.numCores = r.get<int32_t>();
    r.getVec(spec.placement);
    spec.label = r.getString();
    return spec;
}

namespace {

void
saveThreadResult(StateWriter &w, const ThreadResult &t)
{
    w.putString(t.program);
    w.put<int32_t>(t.core);
    w.put<uint64_t>(t.committed);
    w.put<double>(t.ipc);
    w.put<uint64_t>(t.normalCycles);
    w.put<uint64_t>(t.coolingCycles);
    w.put<uint64_t>(t.sedationCycles);
    w.put<double>(t.intRegAccessRate);
    w.put<double>(t.l1dMissRate);
    w.put<double>(t.l2MissRate);
    w.put<double>(t.bpredAccuracy);
    w.put<double>(t.fpPerInst);
}

ThreadResult
loadThreadResult(StateReader &r)
{
    ThreadResult t;
    t.program = r.getString();
    t.core = r.get<int32_t>();
    t.committed = r.get<uint64_t>();
    t.ipc = r.get<double>();
    t.normalCycles = r.get<uint64_t>();
    t.coolingCycles = r.get<uint64_t>();
    t.sedationCycles = r.get<uint64_t>();
    t.intRegAccessRate = r.get<double>();
    t.l1dMissRate = r.get<double>();
    t.l2MissRate = r.get<double>();
    t.bpredAccuracy = r.get<double>();
    t.fpPerInst = r.get<double>();
    return t;
}

} // namespace

void
saveRunResult(StateWriter &w, const RunResult &result)
{
    w.putTag(stateTag("RRES"));
    w.put<uint64_t>(result.cycles);
    w.put<uint64_t>(result.activeCycles);
    w.put<uint64_t>(result.threads.size());
    for (const ThreadResult &t : result.threads)
        saveThreadResult(w, t);
    w.put<int32_t>(result.numCores);
    w.putVec(result.cores); // CoreResult is fixed-size POD
    w.put<uint64_t>(result.emergencies);
    w.put(result.emergenciesPerBlock);
    w.put(result.peakTemp);
    w.put<double>(result.peakTempOverall);
    w.put<uint8_t>(static_cast<uint8_t>(result.hottestBlock));
    w.put<uint64_t>(result.stopAndGoTriggers);
    w.put<uint64_t>(result.coolingStallCycles);
    w.putVec(result.sedationEvents);
    w.putVec(result.descheduledThreads);
    w.put<double>(result.avgTotalPowerW);
    w.putVec(result.tempTrace);
    w.putVec(result.traceEvents);
    w.put<uint64_t>(result.traceEventsDropped);
    w.put<double>(result.hostSeconds);
    w.put<double>(result.simCyclesPerHostSec);
    w.put<uint64_t>(result.histograms.size());
    for (const NamedHistogram &h : result.histograms) {
        w.putString(h.name);
        w.putString(h.desc);
        h.hist.saveState(w);
    }
}

RunResult
loadRunResult(StateReader &r)
{
    r.expectTag(stateTag("RRES"), "RunResult");
    RunResult result;
    result.cycles = r.get<uint64_t>();
    result.activeCycles = r.get<uint64_t>();
    uint64_t nthreads = r.get<uint64_t>();
    result.threads.resize(static_cast<size_t>(nthreads));
    for (ThreadResult &t : result.threads)
        t = loadThreadResult(r);
    result.numCores = r.get<int32_t>();
    r.getVec(result.cores);
    result.emergencies = r.get<uint64_t>();
    result.emergenciesPerBlock =
        r.get<std::array<uint64_t, numBlocks>>();
    result.peakTemp = r.get<std::array<Kelvin, numBlocks>>();
    result.peakTempOverall = r.get<double>();
    result.hottestBlock = static_cast<Block>(r.get<uint8_t>());
    result.stopAndGoTriggers = r.get<uint64_t>();
    result.coolingStallCycles = r.get<uint64_t>();
    r.getVec(result.sedationEvents);
    r.getVec(result.descheduledThreads);
    result.avgTotalPowerW = r.get<double>();
    r.getVec(result.tempTrace);
    r.getVec(result.traceEvents);
    result.traceEventsDropped = r.get<uint64_t>();
    result.hostSeconds = r.get<double>();
    result.simCyclesPerHostSec = r.get<double>();
    uint64_t nhists = r.get<uint64_t>();
    result.histograms.resize(static_cast<size_t>(nhists));
    for (NamedHistogram &h : result.histograms) {
        h.name = r.getString();
        h.desc = r.getString();
        h.hist.restoreState(r);
    }
    return result;
}

std::vector<uint8_t>
encodeRunResult(const RunResult &result)
{
    std::vector<uint8_t> bytes;
    StateWriter w(bytes);
    saveRunResult(w, result);
    return bytes;
}

RunResult
decodeRunResult(const std::vector<uint8_t> &bytes)
{
    StateReader r(bytes);
    RunResult result = loadRunResult(r);
    if (!r.done())
        fatal("decodeRunResult: %zu trailing bytes after the result "
              "record",
              r.remaining());
    return result;
}

} // namespace hs
