/**
 * @file
 * TCP worker sharding for the experiment engine.
 *
 * A worker process (`hs_run --serve PORT`) listens for a coordinator,
 * executes the RunSpecs it is sent, and streams the finished RunResults
 * back. The coordinator (`hs_run --workers host:port,...`) treats each
 * connected worker as one extra lane of its thread pool: local threads
 * and remote dispatchers pull cells from the same queue, and results
 * fold in submission order, so the artifacts are identical to a purely
 * local run.
 *
 * Wire protocol (all messages are framing.hh length-prefixed frames;
 * the first payload byte is the FrameType):
 *
 *   coordinator -> worker   Hello     magic, protocol version, result
 *                                     format version (config echo)
 *   worker -> coordinator   HelloAck  the same triple, the worker's own
 *   coordinator -> worker   Job       job id, RunSpec, optional warm-up
 *                                     snapshot (so the worker forks
 *                                     from the group's shared prefix
 *                                     exactly like a local cell)
 *   worker -> coordinator   Result    job id, RunResult
 *   coordinator -> worker   Shutdown  serve loop returns
 *
 * Both sides validate the handshake triple before anything else: a
 * mismatched build (different protocol or serialised-record layout)
 * is refused up front instead of misparsing payloads. After a worker
 * vanishes mid-job (disconnect, timeout), the coordinator marks it
 * dead and the dispatcher computes that cell — and any further cells
 * it pulls — locally, so no cell is ever dropped.
 *
 * Simulations are deterministic, so where a cell runs cannot change
 * its result: a remote RunResult round-trips bit-for-bit through the
 * serialiser and is indistinguishable from a local one.
 *
 * Environment knobs:
 *  - HS_REMOTE_TIMEOUT_MS: per-job coordinator-side wait before a
 *    worker is declared lost (default 600000; positive integer).
 */

#ifndef HS_SIM_REMOTE_HH
#define HS_SIM_REMOTE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/framing.hh"
#include "sim/results.hh"
#include "sim/run_spec.hh"
#include "sim/snapshot.hh"

namespace hs {

/** Protocol identifier ("HSRP") exchanged in the handshake. */
constexpr uint32_t kRemoteMagic = 0x50525348;
/** Bump on any wire-protocol change; peers must match exactly. */
constexpr uint32_t kRemoteProtocolVersion = 1;

/** First payload byte of every frame. */
enum class FrameType : uint8_t {
    Hello = 1,
    HelloAck = 2,
    Job = 3,
    Result = 4,
    Shutdown = 5,
};

/** One worker address. */
struct Endpoint
{
    std::string host;
    uint16_t port = 0;

    std::string str() const { return host + ":" + std::to_string(port); }
};

/**
 * Parse "host:port[,host:port]..." into @p out.
 * @return false on any malformed entry (empty host, bad port).
 */
bool parseEndpoints(const std::string &list, std::vector<Endpoint> &out);

/** Handshake frame: FrameType + magic + protocol + format version. */
std::vector<uint8_t> encodeHello(FrameType type);

/**
 * Validate a Hello/HelloAck frame against this build's versions.
 * @return false with @p why filled when the peer must be refused.
 */
bool checkHello(const std::vector<uint8_t> &frame, FrameType expected,
                std::string &why);

/** A job as shipped to a worker. */
struct RemoteJob
{
    uint64_t id = 0;
    RunSpec spec;
    bool hasSnapshot = false;
    SimSnapshot snapshot;
};

std::vector<uint8_t> encodeJob(uint64_t id, const RunSpec &spec,
                               const SimSnapshot *snap);
RemoteJob decodeJob(const std::vector<uint8_t> &frame);

std::vector<uint8_t> encodeResult(uint64_t id, const RunResult &result);
/** @return the job id; fills @p out. */
uint64_t decodeResult(const std::vector<uint8_t> &frame, RunResult &out);

/**
 * Worker-side serve loop on an already-listening socket: accept a
 * coordinator, handshake, execute Jobs until the connection closes
 * (then re-accept) or a Shutdown frame arrives (then return).
 * @return the number of jobs executed.
 */
uint64_t serveWorker(Socket &listener);

/** Convenience for `hs_run --serve`: listen on @p port (fatal on bind
 *  failure) and serve. */
uint64_t serveWorker(uint16_t port);

/**
 * Coordinator-side handle on one worker. Used by exactly one
 * dispatcher thread; connects lazily on the first job and stays dead
 * after any failure (the dispatcher then computes locally).
 */
class RemoteWorker
{
  public:
    explicit RemoteWorker(Endpoint ep) : ep_(std::move(ep)) {}

    const Endpoint &endpoint() const { return ep_; }

    /** @return false once the worker has been declared lost. */
    bool alive() const { return state_ != State::Dead; }
    /** True after at least one successful handshake. */
    bool connected() const { return state_ == State::Connected; }

    /** Connect + handshake if not yet attempted. */
    bool ensureConnected();

    /**
     * Run @p spec on the worker (forking from @p snap when non-null).
     * Blocks up to HS_REMOTE_TIMEOUT_MS for the result. On any failure
     * the worker is marked dead and the caller runs the cell locally.
     */
    bool runJob(uint64_t id, const RunSpec &spec, const SimSnapshot *snap,
                RunResult &out);

    /** Politely stop the worker's serve loop (best effort). */
    void sendShutdown();

  private:
    enum class State { Fresh, Connected, Dead };

    Endpoint ep_;
    Socket sock_;
    State state_ = State::Fresh;
};

/** @return the HS_REMOTE_TIMEOUT_MS override, or @p default_ms. */
int envRemoteTimeoutMs(int default_ms = 600000);

} // namespace hs

#endif // HS_SIM_REMOTE_HH
