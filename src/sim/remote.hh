/**
 * @file
 * TCP worker sharding for the experiment engine.
 *
 * A worker process (`hs_run --serve PORT`) listens for a coordinator,
 * executes the RunSpecs it is sent, and streams the finished RunResults
 * back. The coordinator (`hs_run --workers host:port,...`) treats each
 * connected worker as one extra lane of its thread pool: local threads
 * and remote dispatchers pull cells from the same queue, and results
 * fold in submission order, so the artifacts are identical to a purely
 * local run.
 *
 * Wire protocol (all messages are framing.hh length-prefixed frames;
 * the first payload byte is the FrameType):
 *
 *   coordinator -> worker   Hello     magic, protocol version, result
 *                                     format version, capability bits
 *   worker -> coordinator   HelloAck  the same tuple, the worker's own
 *   coordinator -> worker   Job       job id, RunSpec, optional warm-up
 *                                     snapshot — inline on first use,
 *                                     by content hash on repeats when
 *                                     both sides negotiated the
 *                                     snapshot-cache capability
 *   worker -> coordinator   Result    job id, RunResult, optional
 *                                     per-job telemetry block
 *   worker -> coordinator   Heartbeat jobs done, uptime, current cell
 *                                     (periodic, telemetry cap only)
 *   coordinator -> worker   Shutdown  serve loop returns
 *
 * Both sides validate the handshake tuple before anything else: a
 * mismatched build (different protocol or serialised-record layout)
 * is refused up front instead of misparsing payloads. The capability
 * word is negotiated as the AND of both sides' bits, so either side
 * can decline telemetry or snapshot caching unilaterally. After a
 * worker vanishes mid-job (disconnect, timeout), the coordinator marks
 * it dead and the dispatcher computes that cell — and any further
 * cells it pulls — locally, so no cell is ever dropped.
 *
 * Simulations are deterministic, so where a cell runs cannot change
 * its result: a remote RunResult round-trips bit-for-bit through the
 * serialiser and is indistinguishable from a local one. Telemetry
 * rides in sidecar structs (JobTelemetry, WorkerTelemetry) that never
 * touch RunResult or the canonical artifacts.
 *
 * Environment knobs:
 *  - HS_REMOTE_TIMEOUT_MS: per-job coordinator-side wait before a
 *    worker is declared lost (default 600000; positive integer).
 *  - HS_TELEMETRY: 0 drops the telemetry capability bit on this side
 *    (default 1; must be 0 or 1).
 *  - HS_HEARTBEAT_MS: worker heartbeat period (default 1000; positive
 *    integer).
 */

#ifndef HS_SIM_REMOTE_HH
#define HS_SIM_REMOTE_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/framing.hh"
#include "sim/results.hh"
#include "sim/run_spec.hh"
#include "sim/snapshot.hh"

namespace hs {

/** Protocol identifier ("HSRP") exchanged in the handshake. */
constexpr uint32_t kRemoteMagic = 0x50525348;
/** Bump on any wire-protocol change; peers must match exactly.
 *  v2: capability word in the handshake, snapshot-by-reference jobs,
 *  telemetry blocks on Result frames, Heartbeat frames. */
constexpr uint32_t kRemoteProtocolVersion = 2;

/** Capability bits carried in the handshake (negotiated by AND). */
constexpr uint32_t kCapTelemetry = 1u << 0;     ///< telemetry + heartbeats
constexpr uint32_t kCapSnapshotCache = 1u << 1; ///< snapshot-by-reference

/** This build's capability word (HS_TELEMETRY=0 drops telemetry). */
uint32_t localCaps();

/** First payload byte of every frame. */
enum class FrameType : uint8_t {
    Hello = 1,
    HelloAck = 2,
    Job = 3,
    Result = 4,
    Shutdown = 5,
    Heartbeat = 6,
};

/** One worker address. */
struct Endpoint
{
    std::string host;
    uint16_t port = 0;

    std::string str() const { return host + ":" + std::to_string(port); }
};

/**
 * Parse "host:port[,host:port]..." into @p out.
 * @return false on any malformed entry (empty host, bad port).
 */
bool parseEndpoints(const std::string &list, std::vector<Endpoint> &out);

/** Handshake frame: FrameType + magic + protocol + format + caps. */
std::vector<uint8_t> encodeHello(FrameType type);
std::vector<uint8_t> encodeHello(FrameType type, uint32_t caps);

/**
 * Validate a Hello/HelloAck frame against this build's versions.
 * @return false with @p why filled when the peer must be refused.
 * On success @p peer_caps (may be null) receives the peer's raw
 * capability word.
 */
bool checkHello(const std::vector<uint8_t> &frame, FrameType expected,
                std::string &why, uint32_t *peer_caps = nullptr);

/**
 * Host-side execution cost of one remote job. Pure observability —
 * every field is machine- and load-dependent, so none of this may ever
 * feed into RunResult, the canonical artifacts, or anything compared
 * for bit-identity.
 */
struct JobTelemetry
{
    double simSeconds = 0;       ///< wall time inside Simulator::run()
    double restoreSeconds = 0;   ///< snapshot deserialize+restore time
    uint64_t snapshotBytes = 0;  ///< warm-up snapshot size (0 = cold)
    bool snapshotFromCache = false; ///< served from the worker cache
    uint64_t peakRssKb = 0;      ///< worker process VmHWM after the job
    // SimProfile cost-centre breakdown (counters are deterministic,
    // the seconds are host measurements).
    uint64_t tickedCycles = 0;
    uint64_t stalledCycles = 0;
    uint64_t sensorSamples = 0;
    double tickSeconds = 0;
    double thermalSeconds = 0;
    double stallSeconds = 0;
};

/** One periodic worker liveness report. */
struct HeartbeatInfo
{
    uint64_t jobsDone = 0;     ///< jobs completed on this connection
    double uptimeSeconds = 0;  ///< seconds since the connection opened
    std::string currentLabel;  ///< label of the job in flight ("" idle)
};

/**
 * Per-worker fleet counters the coordinator folds from Result
 * telemetry blocks and Heartbeat frames. Host-dependent, sidecar-only
 * (reported via RemoteStats, never via artifacts).
 */
struct WorkerTelemetry
{
    std::string endpoint;
    uint64_t jobs = 0;            ///< jobs this worker completed
    uint64_t heartbeats = 0;      ///< heartbeat frames folded
    double simSeconds = 0;        ///< total remote simulation wall time
    double restoreSeconds = 0;    ///< total snapshot restore time
    uint64_t snapshotBytesSent = 0;  ///< inline snapshot payloads
    uint64_t snapshotBytesSaved = 0; ///< bytes elided via references
    uint64_t peakRssKb = 0;       ///< max RSS the worker reported
};

/** A job as shipped to a worker. */
struct RemoteJob
{
    /** How the warm-up snapshot travels. */
    enum class SnapMode : uint8_t {
        None = 0,     ///< cold cell
        Inline = 1,   ///< full snapshot payload in this frame
        Reference = 2 ///< content hash of a previously shipped snapshot
    };

    uint64_t id = 0;
    RunSpec spec;
    SnapMode snapMode = SnapMode::None;
    uint64_t snapshotHash = 0; ///< fnv1a64 of snapshot.bytes
    SimSnapshot snapshot;      ///< payload (Inline only)

    bool hasSnapshot() const { return snapMode != SnapMode::None; }
};

/** Encode a cold or inline-snapshot job (hash computed from @p snap). */
std::vector<uint8_t> encodeJob(uint64_t id, const RunSpec &spec,
                               const SimSnapshot *snap);
/** Encode a snapshot-by-reference job. */
std::vector<uint8_t> encodeJobRef(uint64_t id, const RunSpec &spec,
                                  uint64_t snapshot_hash);
RemoteJob decodeJob(const std::vector<uint8_t> &frame);

std::vector<uint8_t> encodeResult(uint64_t id, const RunResult &result,
                                  const JobTelemetry *telemetry = nullptr);
/**
 * @return the job id; fills @p out. When the frame carries a telemetry
 * block and @p telemetry is non-null it is filled and @p has_telemetry
 * (may be null) set.
 */
uint64_t decodeResult(const std::vector<uint8_t> &frame, RunResult &out,
                      JobTelemetry *telemetry = nullptr,
                      bool *has_telemetry = nullptr);

std::vector<uint8_t> encodeHeartbeat(const HeartbeatInfo &hb);
HeartbeatInfo decodeHeartbeat(const std::vector<uint8_t> &frame);

/**
 * Worker-side serve loop on an already-listening socket: accept a
 * coordinator, handshake, execute Jobs until the connection closes
 * (then re-accept) or a Shutdown frame arrives (then return).
 * @return the number of jobs executed.
 */
uint64_t serveWorker(Socket &listener);

/** Convenience for `hs_run --serve`: listen on @p port (fatal on bind
 *  failure) and serve. */
uint64_t serveWorker(uint16_t port);

/**
 * Coordinator-side handle on one worker. Used by exactly one
 * dispatcher thread; connects lazily on the first job and stays dead
 * after any failure (the dispatcher then computes locally).
 */
class RemoteWorker
{
  public:
    explicit RemoteWorker(Endpoint ep) : ep_(std::move(ep))
    {
        telemetry_.endpoint = ep_.str();
    }

    const Endpoint &endpoint() const { return ep_; }

    /** @return false once the worker has been declared lost. */
    bool alive() const { return state_ != State::Dead; }
    /** True after at least one successful handshake. */
    bool connected() const { return state_ == State::Connected; }

    /** Negotiated capability word (valid once connected). */
    uint32_t caps() const { return caps_; }

    /** Connect + handshake if not yet attempted. */
    bool ensureConnected();

    /**
     * Run @p spec on the worker (forking from @p snap when non-null).
     * Blocks up to HS_REMOTE_TIMEOUT_MS for the result; Heartbeat
     * frames arriving in between are folded into telemetry() and reset
     * the wait. On any failure the worker is marked dead and the
     * caller runs the cell locally.
     */
    bool runJob(uint64_t id, const RunSpec &spec, const SimSnapshot *snap,
                RunResult &out);

    /** Politely stop the worker's serve loop (best effort). */
    void sendShutdown();

    /** Fleet counters folded so far (read after the dispatcher quits;
     *  a single dispatcher thread owns this worker). */
    const WorkerTelemetry &telemetry() const { return telemetry_; }

  private:
    enum class State { Fresh, Connected, Dead };

    Endpoint ep_;
    Socket sock_;
    State state_ = State::Fresh;
    uint32_t caps_ = 0;
    WorkerTelemetry telemetry_;
    /** Content hashes of snapshots this connection already shipped. */
    std::unordered_set<uint64_t> shippedSnapshots_;
};

/** @return the HS_REMOTE_TIMEOUT_MS override, or @p default_ms. */
int envRemoteTimeoutMs(int default_ms = 600000);

/** @return the HS_HEARTBEAT_MS override, or @p default_ms. */
int envHeartbeatMs(int default_ms = 1000);

/** @return false iff HS_TELEMETRY=0 (default true; strict 0/1). */
bool envTelemetry(bool default_on = true);

/** @return this process's peak RSS in KiB (0 where unsupported). */
uint64_t currentPeakRssKb();

} // namespace hs

#endif // HS_SIM_REMOTE_HH
