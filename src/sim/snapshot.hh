/**
 * @file
 * A full-fidelity simulator checkpoint.
 *
 * One contiguous POD byte stream captures everything a run's future
 * depends on: the pipeline slot pool and thread contexts, caches,
 * branch predictor, activity counters, RC-network temperatures,
 * accounting, RNG streams and (when present) the sedation usage
 * monitor. Simulator::save() fills it at a sensor boundary and
 * Simulator::restore() resumes a freshly constructed simulator from it
 * bit-identically, which is what lets the experiment engine simulate a
 * shared warm-up prefix once and fork every matrix cell from it.
 */

#ifndef HS_SIM_SNAPSHOT_HH
#define HS_SIM_SNAPSHOT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace hs {

/** Serialized simulator state, produced by Simulator::save(). */
struct SimSnapshot
{
    std::vector<uint8_t> bytes; ///< contiguous POD state stream
    Cycles cycle = 0;           ///< cycle the snapshot was taken at

    bool empty() const { return bytes.empty(); }
    size_t sizeBytes() const { return bytes.size(); }

    void
    clear()
    {
        bytes.clear();
        cycle = 0;
    }
};

} // namespace hs

#endif // HS_SIM_SNAPSHOT_HH
