/**
 * @file
 * Canned experiment configurations for reproducing the paper's
 * evaluation (Section 5), shared by the bench harnesses, examples and
 * integration tests.
 *
 * Experiments are time-scaled by default (scale S: thermal
 * capacitances / S, quantum / S, malicious phase lengths / S) so the
 * full harness runs in minutes while preserving the number and shape
 * of heat/cool episodes per quantum. Set the HS_SCALE environment
 * variable to 1 for paper-scale runs (500 M cycles per quantum).
 */

#ifndef HS_SIM_EXPERIMENT_HH
#define HS_SIM_EXPERIMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hh"
#include "workload/generator.hh"
#include "workload/malicious.hh"

namespace hs {

/** Heat-sink configuration of a run (Section 5.3). */
enum class SinkType {
    Ideal,     ///< infinite heat removal; DTM never engages
    Realistic  ///< Table 1 packaging (0.8 K/W convection)
};

/** Options describing one experiment run. */
struct ExperimentOptions
{
    double timeScale = 50.0; ///< see file comment; 1.0 = paper scale
    SinkType sink = SinkType::Realistic;
    DtmMode dtm = DtmMode::StopAndGo;
    double convectionR = 0.8;   ///< K/W (Section 5.5 sweeps this)
    Kelvin upperThreshold = 356.0; ///< sedation (Section 5.6 sweeps)
    Kelvin lowerThreshold = 355.0;
    bool sedationUsageThreshold = false; ///< ablation (Section 3.2.1)
    bool recordTempTrace = false;

    /** @return options with the HS_SCALE env override applied. */
    static ExperimentOptions fromEnv();

    bool operator==(const ExperimentOptions &) const = default;
};

/**
 * @return the effective time scale (HS_SCALE env or the default).
 * fatal() if HS_SCALE is set to anything but a positive number.
 */
double envTimeScale(double default_scale = 25.0);

/**
 * Benchmark subset selected by the HS_BENCH_SET environment variable:
 * "quick" (4 benchmarks), "paper" (the 10 shown in the paper's
 * figures; the default), or "full" (all 18 profiles). fatal() on any
 * other value.
 */
std::vector<std::string> benchmarkSet();

/** Build the full SimConfig for @p opts. */
SimConfig makeSimConfig(const ExperimentOptions &opts);

/** Malicious kernel parameters matched to the option's time scale. */
MaliciousParams makeMaliciousParams(const ExperimentOptions &opts);

/** Run one SPEC program alone. */
RunResult runSolo(const std::string &spec, const ExperimentOptions &opts);

/** Run a malicious variant (1..3) alone. */
RunResult runMaliciousSolo(int variant, const ExperimentOptions &opts);

/** Run a SPEC program together with malicious variant (1..3). */
RunResult runWithVariant(const std::string &spec, int variant,
                         const ExperimentOptions &opts);

/** Run two SPEC programs together (Section 5.7). */
RunResult runSpecPair(const std::string &a, const std::string &b,
                      const ExperimentOptions &opts);

} // namespace hs

#endif // HS_SIM_EXPERIMENT_HH
