#include "sim/experiment.hh"

#include <cmath>
#include <cstdlib>

#include "common/log.hh"

namespace hs {

double
envTimeScale(double default_scale)
{
    const char *env = std::getenv("HS_SCALE");
    if (!env || !*env)
        return default_scale;
    char *end = nullptr;
    double v = std::strtod(env, &end);
    if (end == env || *end != '\0' || v <= 0)
        fatal("HS_SCALE must be a positive number (1 = paper scale), "
              "got '%s'", env);
    return v;
}

std::vector<std::string>
benchmarkSet()
{
    const char *env = std::getenv("HS_BENCH_SET");
    std::string which = env ? env : "paper";
    if (which == "quick")
        return {"gcc", "crafty", "mcf", "applu"};
    if (which == "full") {
        std::vector<std::string> names;
        for (const SpecProfile &p : specSuite())
            names.push_back(p.name);
        return names;
    }
    if (which == "paper")
        return paperFigureBenchmarks();
    fatal("HS_BENCH_SET must be one of quick, paper, full; got '%s'",
          which.c_str());
}

ExperimentOptions
ExperimentOptions::fromEnv()
{
    ExperimentOptions opts;
    opts.timeScale = envTimeScale(opts.timeScale);
    return opts;
}

SimConfig
makeSimConfig(const ExperimentOptions &opts)
{
    SimConfig cfg;
    double s = opts.timeScale;
    if (s <= 0)
        fatal("experiment: time scale must be positive");

    cfg.quantumCycles = static_cast<Cycles>(
        std::llround(500e6 / s)); // Section 4: one OS quantum
    cfg.thermal.timeScale = s;
    cfg.thermal.idealSink = opts.sink == SinkType::Ideal;
    cfg.thermal.convectionR = opts.convectionR;
    cfg.dtm = opts.sink == SinkType::Ideal ? DtmMode::None : opts.dtm;

    cfg.sedation.upperThreshold = opts.upperThreshold;
    cfg.sedation.lowerThreshold = opts.lowerThreshold;
    cfg.sedation.useUsageThreshold = opts.sedationUsageThreshold;
    // Twice the ~12.5 ms cooling time (Section 3.2.2), in cycles,
    // matched to the thermal scale.
    cfg.sedation.recheckCycles = static_cast<Cycles>(
        std::llround(2.0 * 0.0125 * cfg.energy.frequencyHz / s));
    // Keep the EWMA window matched to the (scaled) hot-spot formation
    // time: ~0.5 M cycles at paper scale (Section 4, x = 1/512),
    // shorter for scaled runs.
    cfg.sedation.ewmaShift = s >= 4.0 ? 7 : 9;

    cfg.recordTempTrace = opts.recordTempTrace;
    return cfg;
}

MaliciousParams
makeMaliciousParams(const ExperimentOptions &opts)
{
    return MaliciousParams{}.scaled(opts.timeScale);
}

namespace {

RunResult
runTwo(Program a, Program b, const ExperimentOptions &opts)
{
    Simulator sim(makeSimConfig(opts));
    sim.setWorkload(0, std::move(a));
    sim.setWorkload(1, std::move(b));
    return sim.run();
}

} // namespace

RunResult
runSolo(const std::string &spec, const ExperimentOptions &opts)
{
    Simulator sim(makeSimConfig(opts));
    sim.setWorkload(0, synthesizeSpec(spec));
    return sim.run();
}

RunResult
runMaliciousSolo(int variant, const ExperimentOptions &opts)
{
    Simulator sim(makeSimConfig(opts));
    sim.setWorkload(0, makeVariant(variant, makeMaliciousParams(opts)));
    return sim.run();
}

RunResult
runWithVariant(const std::string &spec, int variant,
               const ExperimentOptions &opts)
{
    return runTwo(synthesizeSpec(spec),
                  makeVariant(variant, makeMaliciousParams(opts)), opts);
}

RunResult
runSpecPair(const std::string &a, const std::string &b,
            const ExperimentOptions &opts)
{
    return runTwo(synthesizeSpec(a), synthesizeSpec(b), opts);
}

} // namespace hs
