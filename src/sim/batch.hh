/**
 * @file
 * Batched lockstep simulation (the batch engine).
 *
 * A divergence group (cells that differ only in DTM policy fields,
 * RunSpec::divergenceKey()) shares one simulated history until the
 * first sensor sample at which some member's policy could act. The
 * prefix-sharing engine (PR 3) exploits that with a single
 * conservative bound: one warm-up stops at the *group minimum* acting
 * temperature, and cells that can act on usage alone never share at
 * all.
 *
 * The batch engine replaces the bound with per-cell *lanes*. One
 * neutralised scout simulator advances the shared history one sensor
 * interval at a time (Simulator::runScoutChunk()); at every sample
 * each lane's policy thresholds are evaluated against what the scout
 * observed — the noised hottest temperature, and for the usage
 * ablation the scout's own EWMA monitor, which below any trigger
 * evolves identically in every member. A lane whose policy could act
 * (or emit a trace event) peels out of the batch with the last stride
 * snapshot strictly preceding that sample; lanes that never act ride
 * to the end of the quantum and fork from the final boundary
 * snapshot. Every lane then finishes through the existing solo path
 * (executeFromSnapshot), so batched results are bit-identical to cold
 * runs by construction.
 *
 * Scouts of *different* groups run in lockstep too: scouts whose
 * thermal configurations match advance their RC networks through one
 * multi-RHS CSR pass per sensor sample (ThermalModel::stepBatch) —
 * the structure-of-arrays kernel this PR adds to src/thermal.
 *
 * Batching engages on matrix sweeps with at least two fresh sibling
 * cells per group; single runs and multi-core topologies fall back to
 * the solo / prefix paths (docs/PERFORMANCE.md).
 */

#ifndef HS_SIM_BATCH_HH
#define HS_SIM_BATCH_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/run_spec.hh"
#include "sim/snapshot.hh"

namespace hs {

class ResultStore;

/** Batch-engine counters (engine summaries and benches; deliberately
 *  absent from the metrics registry so JSON artifacts stay
 *  byte-identical across batch widths). */
struct BatchStats
{
    uint64_t groups = 0;       ///< divergence groups batch-scouted
    uint64_t lanes = 0;        ///< policy lanes tracked across scouts
    uint64_t peeledLanes = 0;  ///< lanes peeled at a could-act sample
    uint64_t riddenLanes = 0;  ///< lanes that rode to quantum end/halt
    uint64_t scoutCycles = 0;  ///< cycles simulated by batch scouts
    uint64_t savedCycles = 0;  ///< fork cycles summed over all lanes
    uint64_t thermalBatchSteps = 0; ///< multi-RHS kernel invocations
    uint64_t thermalBatchLanes = 0; ///< lane-steps through the kernel
};

/**
 * Phase one of ParallelRunner::run() when batching is enabled:
 * lockstep-scout every eligible divergence group and hand each cell a
 * fork snapshot (or none, meaning it must run cold).
 */
class BatchRunner
{
  public:
    /**
     * @param batch_width max lanes per scout (>= 2; width 1 is the
     *        solo path and never constructs a BatchRunner)
     * @param store memoisation store: fully cached lanes are not
     *        tracked (their members will cache-hit anyway)
     */
    BatchRunner(int batch_width, ResultStore *store);

    /**
     * Scout every eligible group of @p specs. Returns one snapshot
     * pointer per spec (null = simulate cold) and sets @p handled for
     * every member of a group the batch phase took responsibility
     * for, so the prefix-sharing fallback skips them.
     */
    std::vector<std::shared_ptr<const SimSnapshot>>
    buildForkSnapshots(const std::vector<RunSpec> &specs,
                       std::vector<char> &handled);

    const BatchStats &stats() const { return stats_; }

  private:
    int batchWidth_;
    ResultStore *store_;
    BatchStats stats_;
};

} // namespace hs

#endif // HS_SIM_BATCH_HH
